package sparsity

import (
	"math"
	"sort"

	"repro/internal/tensor"
)

// AllocTrial is one point of the Appendix-B.1 allocation search: a choice
// of per-group keep fractions with its resulting MLP density and measured
// perplexity.
type AllocTrial struct {
	RhoIn, RhoGLU float64
	Density       float64
	PPL           float64
}

// ParetoFront returns the trials not dominated in (density, ppl): a trial
// is kept when no other trial has both lower-or-equal density and strictly
// lower perplexity. Results are sorted by density.
func ParetoFront(trials []AllocTrial) []AllocTrial {
	sorted := make([]AllocTrial, len(trials))
	copy(sorted, trials)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Density != sorted[j].Density {
			return sorted[i].Density < sorted[j].Density
		}
		return sorted[i].PPL < sorted[j].PPL
	})
	var front []AllocTrial
	best := math.Inf(1)
	for _, tr := range sorted {
		if tr.PPL < best {
			front = append(front, tr)
			best = tr.PPL
		}
	}
	return front
}

// FitLogitLinear fits logit(ρ_in) = a + b·logit(density) to the Pareto
// front by least squares, the linear-in-logit-space model of Figure 12.
func FitLogitLinear(front []AllocTrial) (a, b float64) {
	if len(front) == 0 {
		return 0, 1
	}
	if len(front) == 1 {
		return tensor.Logit(front[0].RhoIn) - tensor.Logit(front[0].Density), 1
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(front))
	for _, tr := range front {
		x := tensor.Logit(tr.Density)
		y := tensor.Logit(tr.RhoIn)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return sy/n - sx/n, 1
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b
}

// FittedAllocator maps a target MLP density to (ρ_in, ρ_glu) using fitted
// logit-linear coefficients, enforcing the density constraint
// (2·ρ_in + ρ_glu)/3 = target by solving for ρ_glu and clamping.
type FittedAllocator struct {
	A, B float64
}

// Allocate returns the keep fractions for a target density.
func (f FittedAllocator) Allocate(target float64) (rhoIn, rhoGLU float64) {
	if target <= 0 {
		return 0.02, 0.02
	}
	if target >= 1 {
		return 1, 1
	}
	rhoIn = tensor.Expit(f.A + f.B*tensor.Logit(target))
	rhoGLU = 3*target - 2*rhoIn
	if rhoGLU > 1 {
		rhoIn += (rhoGLU - 1) / 2
		rhoGLU = 1
	}
	if rhoGLU < 0.02 {
		rhoIn -= (0.02 - rhoGLU) / 2
		rhoGLU = 0.02
	}
	rhoIn = clamp01(rhoIn, 0.02)
	return rhoIn, rhoGLU
}

func clamp01(x, lo float64) float64 {
	if x < lo {
		return lo
	}
	if x > 1 {
		return 1
	}
	return x
}
