package sparsity

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// GLUPrune is "GLU pruning" (Figure 5a / Eq. 4): compute the GLU
// activations densely, then keep only the top-K magnitude activations when
// applying W_d. Only one of the three matrices sparsifies, so MLP density
// is bounded below by 2/3.
type GLUPrune struct {
	// RhoGLU is the fraction of GLU activations kept.
	RhoGLU float64

	// scratch reused across calls (schemes are used sequentially; parallel
	// evaluations give each worker its own copy via Clone).
	h, score, y tensor.Vec
	glu         nn.MLPScratch
}

// Name implements Scheme.
func (s *GLUPrune) Name() string { return "glu" }

// CloneStateless implements StatefulScheme.
func (s *GLUPrune) CloneStateless() Scheme { return &GLUPrune{RhoGLU: s.RhoGLU} }

// Forward implements Scheme.
func (s *GLUPrune) Forward(_ int, x tensor.Vec, mlp *nn.GLUMLP, _ CacheView) (tensor.Vec, TokenAccess) {
	s.h = mlp.GLUInto(x, resize(s.h, mlp.DFF), &s.glu)
	k := keepCount(s.RhoGLU, mlp.DFF)
	s.score = absScores(s.h, resize(s.score, mlp.DFF))
	idx := tensor.TopKIndices(s.score, k)
	s.y = tensor.MatVecSparse(mlp.Down.P.W, s.h, idx, resize(s.y, mlp.Dim))
	var ta TokenAccess
	ta.Groups[GroupUpRows] = GroupAccess{Kind: AccessDense}
	ta.Groups[GroupGateRows] = GroupAccess{Kind: AccessDense}
	ta.Groups[GroupDown] = GroupAccess{Kind: AccessSparse, Units: idx}
	return s.y, ta
}

// GLUOracle is "GLU pruning (oracle)": identical output to GLUPrune, but
// the access record pretends a perfect predictor identified the top-K GLU
// activations in advance, so all three matrices sparsify to the same unit
// set. It upper-bounds what any predictive scheme could achieve (Table 1).
type GLUOracle struct {
	// Rho is the fraction of GLU units kept (equals the MLP density).
	Rho float64

	h, score, y tensor.Vec
	glu         nn.MLPScratch
}

// Name implements Scheme.
func (s *GLUOracle) Name() string { return "glu-oracle" }

// CloneStateless implements StatefulScheme.
func (s *GLUOracle) CloneStateless() Scheme { return &GLUOracle{Rho: s.Rho} }

// Forward implements Scheme.
func (s *GLUOracle) Forward(_ int, x tensor.Vec, mlp *nn.GLUMLP, _ CacheView) (tensor.Vec, TokenAccess) {
	s.h = mlp.GLUInto(x, resize(s.h, mlp.DFF), &s.glu)
	k := keepCount(s.Rho, mlp.DFF)
	s.score = absScores(s.h, resize(s.score, mlp.DFF))
	idx := tensor.TopKIndices(s.score, k)
	s.y = tensor.MatVecSparse(mlp.Down.P.W, s.h, idx, resize(s.y, mlp.Dim))
	var ta TokenAccess
	ta.Groups[GroupUpRows] = GroupAccess{Kind: AccessSparse, Units: idx}
	ta.Groups[GroupGateRows] = GroupAccess{Kind: AccessSparse, Units: idx}
	ta.Groups[GroupDown] = GroupAccess{Kind: AccessSparse, Units: idx}
	return s.y, ta
}

// GatePrune is "Gate pruning" (Figure 5b / Eq. 5): evaluate σ(W_g x)
// densely, keep the top-K partial activations, and restrict W_u rows and
// W_d columns to that set.
type GatePrune struct {
	// Rho is the fraction of intermediate units kept.
	Rho float64

	g, score, y tensor.Vec
}

// Name implements Scheme.
func (s *GatePrune) Name() string { return "gate" }

// CloneStateless implements StatefulScheme.
func (s *GatePrune) CloneStateless() Scheme { return &GatePrune{Rho: s.Rho} }

// Forward implements Scheme.
func (s *GatePrune) Forward(_ int, x tensor.Vec, mlp *nn.GLUMLP, _ CacheView) (tensor.Vec, TokenAccess) {
	s.g = tensor.MatVec(mlp.Gate.P.W, x, resize(s.g, mlp.DFF))
	s.score = resize(s.score, mlp.DFF)
	for i, v := range s.g {
		a := mlp.Act.Apply(v)
		if a < 0 {
			a = -a
		}
		s.score[i] = a
	}
	k := keepCount(s.Rho, mlp.DFF)
	idx := tensor.TopKIndices(s.score, k)
	s.y = sparseRowsOutput(mlp, x, s.g, idx, resize(s.y, mlp.Dim))
	var ta TokenAccess
	ta.Groups[GroupGateRows] = GroupAccess{Kind: AccessDense}
	ta.Groups[GroupUpRows] = GroupAccess{Kind: AccessSparse, Units: idx}
	ta.Groups[GroupDown] = GroupAccess{Kind: AccessSparse, Units: idx}
	return s.y, ta
}

// sparseRowsOutput computes Σ_{i∈idx} W_d[:,i] · (W_u[i,:]·x) · σ(g_i)
// given precomputed gate pre-activations g, into out (allocated when nil).
func sparseRowsOutput(mlp *nn.GLUMLP, x, g tensor.Vec, idx []int, out tensor.Vec) tensor.Vec {
	if out == nil {
		out = tensor.NewVec(mlp.Dim)
	} else {
		out.Zero()
	}
	wd := mlp.Down.P.W
	for _, i := range idx {
		u := tensor.Vec(mlp.Up.P.W.Data[i*mlp.Dim : (i+1)*mlp.Dim]).Dot(x)
		hi := u * mlp.Act.Apply(g[i])
		if hi == 0 {
			continue
		}
		for r := 0; r < mlp.Dim; r++ {
			out[r] += wd.Data[r*mlp.DFF+i] * hi
		}
	}
	return out
}

// UpPrune is "Up pruning": the mirror of GatePrune — evaluate W_u x
// densely, keep the top-K |u_i|, and restrict W_g rows and W_d columns.
type UpPrune struct {
	// Rho is the fraction of intermediate units kept.
	Rho float64

	u, score, y tensor.Vec
}

// Name implements Scheme.
func (s *UpPrune) Name() string { return "up" }

// CloneStateless implements StatefulScheme.
func (s *UpPrune) CloneStateless() Scheme { return &UpPrune{Rho: s.Rho} }

// Forward implements Scheme.
func (s *UpPrune) Forward(_ int, x tensor.Vec, mlp *nn.GLUMLP, _ CacheView) (tensor.Vec, TokenAccess) {
	s.u = tensor.MatVec(mlp.Up.P.W, x, resize(s.u, mlp.DFF))
	k := keepCount(s.Rho, mlp.DFF)
	s.score = absScores(s.u, resize(s.score, mlp.DFF))
	idx := tensor.TopKIndices(s.score, k)
	s.y = resize(s.y, mlp.Dim)
	y := s.y
	y.Zero()
	wd := mlp.Down.P.W
	for _, i := range idx {
		gi := tensor.Vec(mlp.Gate.P.W.Data[i*mlp.Dim : (i+1)*mlp.Dim]).Dot(x)
		hi := s.u[i] * mlp.Act.Apply(gi)
		if hi == 0 {
			continue
		}
		for r := 0; r < mlp.Dim; r++ {
			y[r] += wd.Data[r*mlp.DFF+i] * hi
		}
	}
	var ta TokenAccess
	ta.Groups[GroupUpRows] = GroupAccess{Kind: AccessDense}
	ta.Groups[GroupGateRows] = GroupAccess{Kind: AccessSparse, Units: idx}
	ta.Groups[GroupDown] = GroupAccess{Kind: AccessSparse, Units: idx}
	return y, ta
}

// CATS is contextually-aware thresholding (Lee et al., 2024): like
// GatePrune but with a fixed per-layer threshold on |σ(W_g x)| calibrated
// offline, so the kept count varies per token.
type CATS struct {
	// Thresholds holds one calibrated threshold per layer.
	Thresholds []float32

	g, y tensor.Vec
}

// Name implements Scheme.
func (s *CATS) Name() string { return "cats" }

// CloneStateless implements StatefulScheme; the calibrated thresholds are
// shared (read-only during Forward).
func (s *CATS) CloneStateless() Scheme { return &CATS{Thresholds: s.Thresholds} }

// Forward implements Scheme.
func (s *CATS) Forward(layer int, x tensor.Vec, mlp *nn.GLUMLP, _ CacheView) (tensor.Vec, TokenAccess) {
	if layer >= len(s.Thresholds) {
		panic(fmt.Sprintf("sparsity: CATS has %d thresholds, layer %d requested", len(s.Thresholds), layer))
	}
	thr := s.Thresholds[layer]
	s.g = tensor.MatVec(mlp.Gate.P.W, x, resize(s.g, mlp.DFF))
	g := s.g
	idx := make([]int, 0, mlp.DFF/2)
	for i, v := range g {
		a := mlp.Act.Apply(v)
		if a < 0 {
			a = -a
		}
		if a >= thr {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 { // keep at least the strongest unit
		best, bestV := 0, float32(-1)
		for i, v := range g {
			a := mlp.Act.Apply(v)
			if a < 0 {
				a = -a
			}
			if a > bestV {
				best, bestV = i, a
			}
		}
		idx = append(idx, best)
	}
	s.y = sparseRowsOutput(mlp, x, g, idx, resize(s.y, mlp.Dim))
	var ta TokenAccess
	ta.Groups[GroupGateRows] = GroupAccess{Kind: AccessDense}
	ta.Groups[GroupUpRows] = GroupAccess{Kind: AccessSparse, Units: idx}
	ta.Groups[GroupDown] = GroupAccess{Kind: AccessSparse, Units: idx}
	return s.y, ta
}

// ScoreFunc produces predictor logits over the dff intermediate units for
// an MLP input (DejaVu-style). Supplied by the predictor package.
type ScoreFunc func(layer int, x tensor.Vec) tensor.Vec

// Predictive is predictive GLU pruning (Figure 5c / Eq. 6): a trained
// predictor selects the unit set before any MLP weight is read, so all
// three matrices sparsify — when the predictor is right.
type Predictive struct {
	// Rho is the fraction of intermediate units kept.
	Rho float64
	// Score returns predictor logits per unit. It must be safe for
	// concurrent calls (the predictor package's ScoreFunc is pure).
	Score ScoreFunc
	// ParamsPerLayer is the predictor parameter count per layer, reported
	// so memory accounting can include predictor overhead.
	ParamsPerLayer int

	yScratch tensor.Vec
}

// Name implements Scheme.
func (s *Predictive) Name() string { return "dejavu" }

// CloneStateless implements StatefulScheme.
func (s *Predictive) CloneStateless() Scheme {
	return &Predictive{Rho: s.Rho, Score: s.Score, ParamsPerLayer: s.ParamsPerLayer}
}

// Forward implements Scheme.
func (s *Predictive) Forward(layer int, x tensor.Vec, mlp *nn.GLUMLP, _ CacheView) (tensor.Vec, TokenAccess) {
	scores := s.Score(layer, x)
	k := keepCount(s.Rho, mlp.DFF)
	idx := tensor.TopKIndices(scores, k)
	s.yScratch = resize(s.yScratch, mlp.Dim)
	y := s.yScratch
	y.Zero()
	wd := mlp.Down.P.W
	for _, i := range idx {
		u := tensor.Vec(mlp.Up.P.W.Data[i*mlp.Dim : (i+1)*mlp.Dim]).Dot(x)
		g := tensor.Vec(mlp.Gate.P.W.Data[i*mlp.Dim : (i+1)*mlp.Dim]).Dot(x)
		hi := u * mlp.Act.Apply(g)
		if hi == 0 {
			continue
		}
		for r := 0; r < mlp.Dim; r++ {
			y[r] += wd.Data[r*mlp.DFF+i] * hi
		}
	}
	var ta TokenAccess
	ta.Groups[GroupUpRows] = GroupAccess{Kind: AccessSparse, Units: idx}
	ta.Groups[GroupGateRows] = GroupAccess{Kind: AccessSparse, Units: idx}
	ta.Groups[GroupDown] = GroupAccess{Kind: AccessSparse, Units: idx}
	return y, ta
}
