// Package sparsity implements the paper's core contribution: dynamic
// sparsification schemes for gated-MLP blocks. It provides the baselines of
// Section 3 (GLU / Gate / Up / predictive-GLU pruning, CATS), the proposed
// Dynamic Input Pruning (Section 4), and the cache-aware re-weighting of
// Section 5 (Eq. 10 / Algorithm 1), plus the calibration utilities for
// thresholds and for the up/gate/down density allocation of Appendix B.1.
//
// A Scheme computes the sparse MLP output for one token at one layer and
// reports a TokenAccess: exactly which weight units it touched, grouped the
// way a weight cache would fetch them. The hardware simulator replays those
// accesses to price the token in DRAM/Flash traffic; the evaluation harness
// also integrates them into measured MLP density.
package sparsity

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// GroupID identifies a cacheable weight group within one MLP layer. A
// scheme prunes each matrix along one axis only, so the unit universe per
// group is fixed:
//
//   - GroupUpGate: units are input dimensions; unit i is column i of W_u
//     plus column i of W_g fetched as a bundle (2·dff weights). Used by
//     input-pruning schemes (DIP).
//   - GroupUpRows / GroupGateRows: units are intermediate (GLU) dimensions;
//     unit i is row i of the matrix (dim weights). Used by schemes that
//     prune on GLU-axis structure (Gate/Up/predictive pruning, CATS).
//   - GroupDown: units are intermediate dimensions; unit i is column i of
//     W_d (dim weights). Used by every scheme.
type GroupID int

const (
	GroupUpGate GroupID = iota
	GroupUpRows
	GroupGateRows
	GroupDown
	NumGroups
)

// String names the group.
func (g GroupID) String() string {
	switch g {
	case GroupUpGate:
		return "upgate-cols"
	case GroupUpRows:
		return "up-rows"
	case GroupGateRows:
		return "gate-rows"
	case GroupDown:
		return "down-cols"
	default:
		return "invalid"
	}
}

// GroupUnits returns the number of units group g has for an MLP of the
// given dimensions, and the number of scalar weights per unit.
func GroupUnits(g GroupID, dim, dff int) (units, weightsPerUnit int) {
	switch g {
	case GroupUpGate:
		return dim, 2 * dff
	case GroupUpRows, GroupGateRows:
		return dff, dim
	case GroupDown:
		return dff, dim
	default:
		return 0, 0
	}
}

// AccessKind classifies how a scheme touched a group this token.
type AccessKind int

const (
	// AccessUnused means the scheme never touches this group (its weights
	// are represented by another group or not stored at all).
	AccessUnused AccessKind = iota
	// AccessDense means every unit of the group was read.
	AccessDense
	// AccessSparse means only the listed units were read.
	AccessSparse
)

// GroupAccess records one group's usage for one token.
type GroupAccess struct {
	Kind  AccessKind
	Units []int // valid when Kind == AccessSparse
}

// TokenAccess records the weight traffic of one MLP evaluation.
type TokenAccess struct {
	Groups [NumGroups]GroupAccess
}

// WeightsTouched returns how many scalar weights the access reads for an
// MLP with the given dimensions.
func (ta *TokenAccess) WeightsTouched(dim, dff int) int {
	total := 0
	for g := GroupID(0); g < NumGroups; g++ {
		acc := ta.Groups[g]
		units, per := GroupUnits(g, dim, dff)
		switch acc.Kind {
		case AccessDense:
			total += units * per
		case AccessSparse:
			total += len(acc.Units) * per
		}
	}
	return total
}

// Density returns WeightsTouched over the full MLP weight count 3·dim·dff.
func (ta *TokenAccess) Density(dim, dff int) float64 {
	return float64(ta.WeightsTouched(dim, dff)) / float64(3*dim*dff)
}

// CacheView exposes the DRAM cache state to cache-aware schemes. A nil
// CacheView (or one that always reports false) reduces DIP-CA to DIP.
type CacheView interface {
	// Cached reports whether unit u of group g at the given layer currently
	// resides in DRAM.
	Cached(layer int, g GroupID, unit int) bool
}

// Scheme computes a sparse MLP forward pass for single tokens.
type Scheme interface {
	// Name identifies the scheme in tables and logs.
	Name() string
	// Forward computes the MLP output for x at the given layer and reports
	// the weight units it read. cache may be nil; only cache-aware schemes
	// consult it.
	Forward(layer int, x tensor.Vec, mlp *nn.GLUMLP, cache CacheView) (tensor.Vec, TokenAccess)
}

// StatefulScheme is implemented by schemes that carry per-call scratch
// buffers (and are therefore not safe for concurrent Forward calls). A
// parallel evaluation clones one such scheme per worker via Clone.
type StatefulScheme interface {
	Scheme
	// CloneStateless returns a copy sharing the scheme's configuration and
	// calibration but none of its scratch state.
	CloneStateless() Scheme
}

// Clone returns a Scheme safe to use from another goroutine: stateful
// schemes are copied without their scratch, stateless ones are returned
// as-is. Calibration data (thresholds, predictor weights) is shared — it is
// read-only during Forward.
func Clone(s Scheme) Scheme {
	if s == nil {
		return nil
	}
	if cs, ok := s.(StatefulScheme); ok {
		return cs.CloneStateless()
	}
	return s
}

// Dense is the no-pruning baseline.
type Dense struct{}

// Name implements Scheme.
func (Dense) Name() string { return "dense" }

// Forward implements Scheme: the full MLP, reading every weight. Dense
// traffic is reported on the row-axis groups (the natural storage layout).
func (Dense) Forward(_ int, x tensor.Vec, mlp *nn.GLUMLP, _ CacheView) (tensor.Vec, TokenAccess) {
	var ta TokenAccess
	ta.Groups[GroupUpRows] = GroupAccess{Kind: AccessDense}
	ta.Groups[GroupGateRows] = GroupAccess{Kind: AccessDense}
	ta.Groups[GroupDown] = GroupAccess{Kind: AccessDense}
	return mlp.Apply(x), ta
}

// keepCount converts a density ρ into a unit count over n units, clamped
// to [1, n] so a scheme never prunes everything.
func keepCount(rho float64, n int) int {
	k := int(rho*float64(n) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// absScores fills dst with |src|.
func absScores(src, dst tensor.Vec) tensor.Vec {
	if dst == nil {
		dst = tensor.NewVec(len(src))
	}
	for i, v := range src {
		if v < 0 {
			dst[i] = -v
		} else {
			dst[i] = v
		}
	}
	return dst
}
