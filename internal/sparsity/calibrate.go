package sparsity

import (
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// ThresholdMode selects the GLU thresholding strategy compared in Figure 4.
type ThresholdMode int

const (
	// ThresholdGlobal applies one fixed threshold to every layer.
	ThresholdGlobal ThresholdMode = iota
	// ThresholdPerLayer applies a calibrated per-layer threshold.
	ThresholdPerLayer
	// ThresholdPerToken keeps the top-K per token (equivalent to GLUPrune).
	ThresholdPerToken
)

// String names the mode.
func (m ThresholdMode) String() string {
	switch m {
	case ThresholdGlobal:
		return "global"
	case ThresholdPerLayer:
		return "per-layer"
	case ThresholdPerToken:
		return "per-token"
	default:
		return "invalid"
	}
}

// GLUThreshold is GLU pruning with magnitude thresholds instead of top-K,
// used for the Figure 4 comparison. Per-token mode reduces to GLUPrune.
type GLUThreshold struct {
	Mode ThresholdMode
	// Global is the single threshold for ThresholdGlobal mode.
	Global float32
	// PerLayer holds a threshold per layer for ThresholdPerLayer mode.
	PerLayer []float32
	// Rho is the per-token keep fraction for ThresholdPerToken mode.
	Rho float64
	// LastDensity records the GLU keep fraction of the most recent call per
	// layer, letting Figure 4 report per-layer achieved densities.
	LastDensity []float64
}

// Name implements Scheme.
func (s *GLUThreshold) Name() string { return "glu-threshold-" + s.Mode.String() }

// CloneStateless implements StatefulScheme: the clone shares the calibrated
// thresholds (read-only) but records its own LastDensity, so concurrent
// evaluations never write the same slice. Callers wanting the per-layer
// densities must read them from the instance they actually ran.
func (s *GLUThreshold) CloneStateless() Scheme {
	c := &GLUThreshold{Mode: s.Mode, Global: s.Global, PerLayer: s.PerLayer, Rho: s.Rho}
	if s.LastDensity != nil {
		c.LastDensity = make([]float64, len(s.LastDensity))
	}
	return c
}

// Forward implements Scheme.
func (s *GLUThreshold) Forward(layer int, x tensor.Vec, mlp *nn.GLUMLP, _ CacheView) (tensor.Vec, TokenAccess) {
	h := mlp.GLU(x, nil)
	var idx []int
	switch s.Mode {
	case ThresholdPerToken:
		idx = tensor.TopKIndices(absScores(h, nil), keepCount(s.Rho, mlp.DFF))
	default:
		thr := s.Global
		if s.Mode == ThresholdPerLayer {
			thr = s.PerLayer[layer]
		}
		for i, v := range h {
			a := v
			if a < 0 {
				a = -a
			}
			if a >= thr {
				idx = append(idx, i)
			}
		}
	}
	if len(s.LastDensity) > layer {
		s.LastDensity[layer] = float64(len(idx)) / float64(mlp.DFF)
	}
	y := tensor.MatVecSparse(mlp.Down.P.W, h, idx, nil)
	var ta TokenAccess
	ta.Groups[GroupUpRows] = GroupAccess{Kind: AccessDense}
	ta.Groups[GroupGateRows] = GroupAccess{Kind: AccessDense}
	ta.Groups[GroupDown] = GroupAccess{Kind: AccessSparse, Units: idx}
	return y, ta
}

// LayerStats collects per-layer activation magnitudes from a calibration
// run: the absolute GLU activations, the absolute gate activations
// σ(W_g x), and the absolute MLP inputs.
type LayerStats struct {
	AbsGLU  [][]float32 // [layer][sample]
	AbsGate [][]float32
	AbsIn   [][]float32
}

// CollectStats runs the dense model over the calibration tokens (windowed)
// and gathers the activation statistics every scheme calibration needs.
// maxTokens bounds the number of MLP evaluations recorded per layer.
func CollectStats(m *model.Model, tokens []int, win, maxTokens int) *LayerStats {
	L := len(m.Blocks)
	st := &LayerStats{
		AbsGLU:  make([][]float32, L),
		AbsGate: make([][]float32, L),
		AbsIn:   make([][]float32, L),
	}
	count := 0
	hook := func(layer int, x tensor.Vec) tensor.Vec {
		mlp := m.Blocks[layer].MLP
		if layer == 0 {
			count++
		}
		if count <= maxTokens {
			u := tensor.MatVec(mlp.Up.P.W, x, nil)
			g := tensor.MatVec(mlp.Gate.P.W, x, nil)
			for i := range u {
				ga := mlp.Act.Apply(g[i])
				h := u[i] * ga
				if h < 0 {
					h = -h
				}
				if ga < 0 {
					ga = -ga
				}
				st.AbsGLU[layer] = append(st.AbsGLU[layer], h)
				st.AbsGate[layer] = append(st.AbsGate[layer], ga)
			}
			for _, v := range x {
				if v < 0 {
					v = -v
				}
				st.AbsIn[layer] = append(st.AbsIn[layer], v)
			}
		}
		return mlp.Apply(x)
	}
	for start := 0; start+win <= len(tokens) && count < maxTokens; start += win {
		m.Forward(tokens[start:start+win], hook)
	}
	return st
}

// GlobalThreshold returns the single threshold achieving the target mean
// GLU keep density across all layers.
func (st *LayerStats) GlobalThreshold(rho float64) float32 {
	var all []float32
	for _, layer := range st.AbsGLU {
		all = append(all, layer...)
	}
	return tensor.Quantile(all, 1-rho)
}

// PerLayerThresholds returns per-layer thresholds each achieving the
// target GLU keep density on the calibration distribution.
func (st *LayerStats) PerLayerThresholds(rho float64) []float32 {
	out := make([]float32, len(st.AbsGLU))
	for l, vals := range st.AbsGLU {
		out[l] = tensor.Quantile(vals, 1-rho)
	}
	return out
}

// CATSThresholds returns per-layer thresholds on |σ(W_g x)| achieving the
// target keep density, the CATS calibration.
func (st *LayerStats) CATSThresholds(rho float64) []float32 {
	out := make([]float32, len(st.AbsGate))
	for l, vals := range st.AbsGate {
		out[l] = tensor.Quantile(vals, 1-rho)
	}
	return out
}

// NewCATS calibrates a CATS scheme at the given intermediate keep fraction
// using calibration tokens.
func NewCATS(m *model.Model, tokens []int, win int, rho float64) *CATS {
	st := CollectStats(m, tokens, win, 512)
	return &CATS{Thresholds: st.CATSThresholds(rho)}
}
