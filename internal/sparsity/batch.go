package sparsity

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Fused (multi-RHS) scheme evaluation: ForwardBatch computes one MLP layer
// for B concurrent sessions in a single pass, walking each weight matrix
// once for the whole batch instead of once per session. Per-session
// sparsity stays per-session — every column keeps its own scores, masks,
// unit lists, and cache view — only the weight traversal is shared, via the
// tensor package's *Batch kernels with per-column masks/unit lists.
//
// Determinism contract: ForwardBatch(column b) is bit-identical to
// schemes[b].Forward on the same input — same output floats, same
// TokenAccess kinds, and the same unit lists in the same order (the order
// feeds both sparse accumulation and cache replacement). Enforced by
// TestForwardBatchMatchesPerSessionForwardBitForBit.

// BatchScratch holds the reusable buffers of fused ForwardBatch calls. A
// zero value is ready; buffers grow lazily and are reused, so steady-state
// fused decode does not allocate here. The unit lists handed out through
// TokenAccess.Units alias this scratch and stay valid until the next
// ForwardBatch on the same scratch — callers that defer cache commits must
// copy them (the eval layer's pending buffers already do).
type BatchScratch struct {
	u, g, h *tensor.Mat
	score   tensor.Vec
	xcol    tensor.Vec
	zcol    tensor.Vec
	ycol    tensor.Vec
	topk    tensor.TopKScratch
	sparse  tensor.SparseBatchScratch
	idxsA   [][]int
	idxsB   [][]int

	dips    []*DIP
	glus    []*GLUPrune
	oracles []*GLUOracle
	gates   []*GatePrune
	ups     []*UpPrune
	cats    []*CATS
}

// growIdxs sizes a per-column unit-list table to B columns, keeping the
// per-column backing arrays.
func growIdxs(idxs [][]int, B int) [][]int {
	for len(idxs) < B {
		idxs = append(idxs, nil)
	}
	return idxs[:B]
}

// collect gathers schemes into dst when every element has concrete type T.
func collect[T Scheme](dst []T, schemes []Scheme) ([]T, bool) {
	dst = dst[:0]
	for _, sc := range schemes {
		t, ok := sc.(T)
		if !ok {
			return dst, false
		}
		dst = append(dst, t)
	}
	return dst, true
}

// ForwardBatch evaluates one MLP layer for the B sessions whose post-norm
// inputs are the columns of xs (dim × B), writing each session's block
// output into the matching column of out (dim × B) and its weight-access
// record into tas[b]. schemes[b] and caches[b] are session b's scheme
// instance and cache view (views may be nil or differ per session).
//
// Homogeneous batches of the fusable schemes (dense, dip/dip-ca, glu,
// glu-oracle, gate, up, cats) take a fused path: dense stages run as
// multi-RHS kernels and sparse stages carry per-column unit lists.
// Mixed-type batches and schemes without a fused path (dejavu) fall back to
// per-column Forward calls — still bit-identical, just unfused.
func ForwardBatch(layer int, schemes []Scheme, xs *tensor.Mat, mlp *nn.GLUMLP, caches []CacheView, out *tensor.Mat, tas []TokenAccess, s *BatchScratch) {
	B := xs.Cols
	if len(schemes) != B || len(caches) != B || len(tas) != B {
		panic("sparsity: ForwardBatch batch width mismatch")
	}
	if out == nil || out.Rows != mlp.Dim || out.Cols != B {
		panic("sparsity: ForwardBatch out shape mismatch")
	}
	// Dispatch on the first scheme's concrete type, then verify the batch is
	// homogeneous for that type; heterogeneous batches fall through.
	switch schemes[0].(type) {
	case *DIP:
		if dips, ok := collect(s.dips[:0], schemes); ok {
			s.dips = dips
			forwardBatchDIP(layer, dips, xs, mlp, caches, out, tas, s)
			return
		}
	case *GLUPrune:
		if glus, ok := collect(s.glus[:0], schemes); ok {
			s.glus = glus
			forwardBatchGLU(glus, xs, mlp, out, tas, s)
			return
		}
	case *GLUOracle:
		if oracles, ok := collect(s.oracles[:0], schemes); ok {
			s.oracles = oracles
			forwardBatchGLUOracle(oracles, xs, mlp, out, tas, s)
			return
		}
	case *GatePrune:
		if gates, ok := collect(s.gates[:0], schemes); ok {
			s.gates = gates
			forwardBatchGate(gates, xs, mlp, out, tas, s)
			return
		}
	case *UpPrune:
		if ups, ok := collect(s.ups[:0], schemes); ok {
			s.ups = ups
			forwardBatchUp(ups, xs, mlp, out, tas, s)
			return
		}
	case *CATS:
		if cats, ok := collect(s.cats[:0], schemes); ok {
			s.cats = cats
			forwardBatchCATS(layer, cats, xs, mlp, out, tas, s)
			return
		}
	case Dense:
		allDense := true
		for _, sc := range schemes[1:] {
			if _, ok := sc.(Dense); !ok {
				allDense = false
				break
			}
		}
		if allDense {
			forwardBatchDense(xs, mlp, out, tas, s)
			return
		}
	}
	// Fallback: per-column single-RHS evaluation (mixed or unfusable batch).
	for b, sc := range schemes {
		s.xcol = xs.Col(b, tensor.Reuse(s.xcol, mlp.Dim))
		y, ta := sc.Forward(layer, s.xcol, mlp, caches[b])
		out.SetCol(b, y)
		tas[b] = ta
	}
}

// colAbsScores fills dst with |xs[:, b]|.
func colAbsScores(xs *tensor.Mat, b int, dst tensor.Vec) tensor.Vec {
	B := xs.Cols
	for i := range dst {
		v := xs.Data[i*B+b]
		if v < 0 {
			v = -v
		}
		dst[i] = v
	}
	return dst
}

// forwardBatchDense is the fused no-pruning path: one ApplyBatch for the
// whole batch, dense access records per session.
func forwardBatchDense(xs *tensor.Mat, mlp *nn.GLUMLP, out *tensor.Mat, tas []TokenAccess, s *BatchScratch) {
	B := xs.Cols
	s.u = tensor.MatVecBatch(mlp.Up.P.W, xs, tensor.ReuseMat(s.u, mlp.DFF, B))
	s.g = tensor.MatVecBatch(mlp.Gate.P.W, xs, tensor.ReuseMat(s.g, mlp.DFF, B))
	s.h = tensor.ReuseMat(s.h, mlp.DFF, B)
	for i, g := range s.g.Data {
		s.h.Data[i] = s.u.Data[i] * mlp.Act.Apply(g)
	}
	tensor.MatVecBatch(mlp.Down.P.W, s.h, out)
	for b := range tas {
		tas[b] = TokenAccess{}
		tas[b].Groups[GroupUpRows] = GroupAccess{Kind: AccessDense}
		tas[b].Groups[GroupGateRows] = GroupAccess{Kind: AccessDense}
		tas[b].Groups[GroupDown] = GroupAccess{Kind: AccessDense}
	}
}

// forwardBatchDIP fuses Dynamic Input Pruning (and its cache-aware variant)
// across the batch: stages 1 and 3 score each column independently —
// per-session masks, per-session cache views — while stages 2 and the down
// projection run as sparse multi-RHS kernels over the per-column unit
// lists.
func forwardBatchDIP(layer int, dips []*DIP, xs *tensor.Mat, mlp *nn.GLUMLP, caches []CacheView, out *tensor.Mat, tas []TokenAccess, s *BatchScratch) {
	dim, dff := mlp.Dim, mlp.DFF
	B := xs.Cols
	// Stage 1: per-column input pruning.
	s.idxsA = growIdxs(s.idxsA, B)
	for b, d := range dips {
		s.score = colAbsScores(xs, b, tensor.Reuse(s.score, dim))
		d.reweight(s.score, layer, GroupUpGate, caches[b])
		kIn := keepCount(d.RhoIn, dim)
		s.idxsA[b] = tensor.TopKIndicesInto(s.score, kIn, &s.topk, s.idxsA[b])
	}
	// Stage 2: fused approximate GLU over the pruned input columns.
	s.u = tensor.MatVecSparseBatch(mlp.Up.P.W, xs, s.idxsA, tensor.ReuseMat(s.u, dff, B), &s.sparse)
	s.g = tensor.MatVecSparseBatch(mlp.Gate.P.W, xs, s.idxsA, tensor.ReuseMat(s.g, dff, B), &s.sparse)
	s.h = tensor.ReuseMat(s.h, dff, B)
	for i, g := range s.g.Data {
		s.h.Data[i] = s.u.Data[i] * mlp.Act.Apply(g)
	}
	// Stage 3: per-column GLU pruning on the approximate activations.
	s.idxsB = growIdxs(s.idxsB, B)
	for b, d := range dips {
		s.score = colAbsScores(s.h, b, tensor.Reuse(s.score, dff))
		d.reweight(s.score, layer, GroupDown, caches[b])
		kGLU := keepCount(d.RhoGLU, dff)
		s.idxsB[b] = tensor.TopKIndicesInto(s.score, kGLU, &s.topk, s.idxsB[b])
	}
	tensor.MatVecSparseBatch(mlp.Down.P.W, s.h, s.idxsB, out, &s.sparse)
	for b := range tas {
		tas[b] = TokenAccess{}
		tas[b].Groups[GroupUpGate] = GroupAccess{Kind: AccessSparse, Units: s.idxsA[b]}
		tas[b].Groups[GroupDown] = GroupAccess{Kind: AccessSparse, Units: s.idxsB[b]}
	}
}

// forwardBatchGLU fuses GLU pruning: the dense GLU runs as two multi-RHS
// products, the top-K masks stay per column, and the down projection is a
// sparse multi-RHS product over the per-column unit lists.
func forwardBatchGLU(glus []*GLUPrune, xs *tensor.Mat, mlp *nn.GLUMLP, out *tensor.Mat, tas []TokenAccess, s *BatchScratch) {
	s.idxsA = batchGLUStage(xs, mlp, s, func(b int) float64 { return glus[b].RhoGLU })
	tensor.MatVecSparseBatch(mlp.Down.P.W, s.h, s.idxsA, out, &s.sparse)
	for b := range tas {
		tas[b] = TokenAccess{}
		tas[b].Groups[GroupUpRows] = GroupAccess{Kind: AccessDense}
		tas[b].Groups[GroupGateRows] = GroupAccess{Kind: AccessDense}
		tas[b].Groups[GroupDown] = GroupAccess{Kind: AccessSparse, Units: s.idxsA[b]}
	}
}

// forwardBatchGLUOracle is forwardBatchGLU with the oracle's access record:
// all three groups sparsify to the selected unit set.
func forwardBatchGLUOracle(oracles []*GLUOracle, xs *tensor.Mat, mlp *nn.GLUMLP, out *tensor.Mat, tas []TokenAccess, s *BatchScratch) {
	s.idxsA = batchGLUStage(xs, mlp, s, func(b int) float64 { return oracles[b].Rho })
	tensor.MatVecSparseBatch(mlp.Down.P.W, s.h, s.idxsA, out, &s.sparse)
	for b := range tas {
		tas[b] = TokenAccess{}
		tas[b].Groups[GroupUpRows] = GroupAccess{Kind: AccessSparse, Units: s.idxsA[b]}
		tas[b].Groups[GroupGateRows] = GroupAccess{Kind: AccessSparse, Units: s.idxsA[b]}
		tas[b].Groups[GroupDown] = GroupAccess{Kind: AccessSparse, Units: s.idxsA[b]}
	}
}

// batchGLUStage computes the fused dense GLU into s.h and the per-column
// top-K unit lists for the given keep fractions, returning the lists.
func batchGLUStage(xs *tensor.Mat, mlp *nn.GLUMLP, s *BatchScratch, rho func(b int) float64) [][]int {
	dff := mlp.DFF
	B := xs.Cols
	s.u = tensor.MatVecBatch(mlp.Up.P.W, xs, tensor.ReuseMat(s.u, dff, B))
	s.g = tensor.MatVecBatch(mlp.Gate.P.W, xs, tensor.ReuseMat(s.g, dff, B))
	s.h = tensor.ReuseMat(s.h, dff, B)
	for i, g := range s.g.Data {
		s.h.Data[i] = s.u.Data[i] * mlp.Act.Apply(g)
	}
	idxs := growIdxs(s.idxsA, B)
	for b := 0; b < B; b++ {
		s.score = colAbsScores(s.h, b, tensor.Reuse(s.score, dff))
		k := keepCount(rho(b), dff)
		idxs[b] = tensor.TopKIndicesInto(s.score, k, &s.topk, idxs[b])
	}
	return idxs
}

// forwardBatchGate fuses Gate pruning's dense stage (one multi-RHS product
// over W_g); the per-unit row walks keep their per-column unit sets and run
// per column.
func forwardBatchGate(gates []*GatePrune, xs *tensor.Mat, mlp *nn.GLUMLP, out *tensor.Mat, tas []TokenAccess, s *BatchScratch) {
	dff := mlp.DFF
	B := xs.Cols
	s.g = tensor.MatVecBatch(mlp.Gate.P.W, xs, tensor.ReuseMat(s.g, dff, B))
	s.idxsA = growIdxs(s.idxsA, B)
	for b, gp := range gates {
		s.score = tensor.Reuse(s.score, dff)
		s.zcol = s.g.Col(b, tensor.Reuse(s.zcol, dff))
		for i, v := range s.zcol {
			a := mlp.Act.Apply(v)
			if a < 0 {
				a = -a
			}
			s.score[i] = a
		}
		k := keepCount(gp.Rho, dff)
		s.idxsA[b] = tensor.TopKIndicesInto(s.score, k, &s.topk, s.idxsA[b])
		s.xcol = xs.Col(b, tensor.Reuse(s.xcol, mlp.Dim))
		s.ycol = sparseRowsOutput(mlp, s.xcol, s.zcol, s.idxsA[b], tensor.Reuse(s.ycol, mlp.Dim))
		out.SetCol(b, s.ycol)
		tas[b] = TokenAccess{}
		tas[b].Groups[GroupGateRows] = GroupAccess{Kind: AccessDense}
		tas[b].Groups[GroupUpRows] = GroupAccess{Kind: AccessSparse, Units: s.idxsA[b]}
		tas[b].Groups[GroupDown] = GroupAccess{Kind: AccessSparse, Units: s.idxsA[b]}
	}
}

// forwardBatchUp fuses Up pruning's dense stage (one multi-RHS product over
// W_u); the sparse stage runs per column.
func forwardBatchUp(ups []*UpPrune, xs *tensor.Mat, mlp *nn.GLUMLP, out *tensor.Mat, tas []TokenAccess, s *BatchScratch) {
	dim, dff := mlp.Dim, mlp.DFF
	B := xs.Cols
	s.u = tensor.MatVecBatch(mlp.Up.P.W, xs, tensor.ReuseMat(s.u, dff, B))
	s.idxsA = growIdxs(s.idxsA, B)
	wd := mlp.Down.P.W
	for b, up := range ups {
		s.zcol = s.u.Col(b, tensor.Reuse(s.zcol, dff))
		s.score = absScores(s.zcol, tensor.Reuse(s.score, dff))
		k := keepCount(up.Rho, dff)
		s.idxsA[b] = tensor.TopKIndicesInto(s.score, k, &s.topk, s.idxsA[b])
		s.xcol = xs.Col(b, tensor.Reuse(s.xcol, dim))
		s.ycol = tensor.Reuse(s.ycol, dim)
		y := s.ycol
		y.Zero()
		for _, i := range s.idxsA[b] {
			gi := tensor.Vec(mlp.Gate.P.W.Data[i*dim : (i+1)*dim]).Dot(s.xcol)
			hi := s.zcol[i] * mlp.Act.Apply(gi)
			if hi == 0 {
				continue
			}
			for r := 0; r < dim; r++ {
				y[r] += wd.Data[r*dff+i] * hi
			}
		}
		out.SetCol(b, y)
		tas[b] = TokenAccess{}
		tas[b].Groups[GroupUpRows] = GroupAccess{Kind: AccessDense}
		tas[b].Groups[GroupGateRows] = GroupAccess{Kind: AccessSparse, Units: s.idxsA[b]}
		tas[b].Groups[GroupDown] = GroupAccess{Kind: AccessSparse, Units: s.idxsA[b]}
	}
}

// forwardBatchCATS fuses CATS's dense stage (one multi-RHS product over
// W_g); thresholding and the per-unit row walks run per column.
func forwardBatchCATS(layer int, cats []*CATS, xs *tensor.Mat, mlp *nn.GLUMLP, out *tensor.Mat, tas []TokenAccess, s *BatchScratch) {
	dff := mlp.DFF
	B := xs.Cols
	s.g = tensor.MatVecBatch(mlp.Gate.P.W, xs, tensor.ReuseMat(s.g, dff, B))
	s.idxsA = growIdxs(s.idxsA, B)
	for b, c := range cats {
		if layer >= len(c.Thresholds) {
			panic(fmt.Sprintf("sparsity: CATS has %d thresholds, layer %d requested", len(c.Thresholds), layer))
		}
		thr := c.Thresholds[layer]
		s.zcol = s.g.Col(b, tensor.Reuse(s.zcol, dff))
		idx := s.idxsA[b][:0]
		for i, v := range s.zcol {
			a := mlp.Act.Apply(v)
			if a < 0 {
				a = -a
			}
			if a >= thr {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 { // keep at least the strongest unit
			best, bestV := 0, float32(-1)
			for i, v := range s.zcol {
				a := mlp.Act.Apply(v)
				if a < 0 {
					a = -a
				}
				if a > bestV {
					best, bestV = i, a
				}
			}
			idx = append(idx, best)
		}
		s.idxsA[b] = idx
		s.xcol = xs.Col(b, tensor.Reuse(s.xcol, mlp.Dim))
		s.ycol = sparseRowsOutput(mlp, s.xcol, s.zcol, idx, tensor.Reuse(s.ycol, mlp.Dim))
		out.SetCol(b, s.ycol)
		tas[b] = TokenAccess{}
		tas[b].Groups[GroupGateRows] = GroupAccess{Kind: AccessDense}
		tas[b].Groups[GroupUpRows] = GroupAccess{Kind: AccessSparse, Units: idx}
		tas[b].Groups[GroupDown] = GroupAccess{Kind: AccessSparse, Units: idx}
	}
}
