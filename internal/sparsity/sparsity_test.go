package sparsity

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func newTestMLP(seed uint64, dim, dff int, act nn.Activation) *nn.GLUMLP {
	rng := tensor.NewRNG(seed)
	return nn.NewGLUMLP("m", dim, dff, act, rng)
}

func randVec(seed uint64, n int) tensor.Vec {
	rng := tensor.NewRNG(seed)
	v := tensor.NewVec(n)
	for i := range v {
		v[i] = rng.NormFloat32()
	}
	return v
}

func vecClose(a, b tensor.Vec, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > tol {
			return false
		}
	}
	return true
}

func TestDenseMatchesMLP(t *testing.T) {
	mlp := newTestMLP(1, 8, 16, nn.ActSiLU)
	x := randVec(2, 8)
	y, ta := Dense{}.Forward(0, x, mlp, nil)
	want := mlp.Apply(x)
	if !vecClose(y, want, 1e-6) {
		t.Fatal("dense scheme diverges from MLP")
	}
	if d := ta.Density(8, 16); math.Abs(d-1) > 1e-9 {
		t.Fatalf("dense density = %v, want 1", d)
	}
}

// All schemes at keep fraction 1 must reproduce the dense output exactly.
func TestSchemesAtFullDensityMatchDense(t *testing.T) {
	mlp := newTestMLP(3, 8, 16, nn.ActSiLU)
	pred := func(layer int, x tensor.Vec) tensor.Vec { return tensor.NewVec(16) }
	schemes := []Scheme{
		&GLUPrune{RhoGLU: 1},
		&GLUOracle{Rho: 1},
		&GatePrune{Rho: 1},
		&UpPrune{Rho: 1},
		&Predictive{Rho: 1, Score: pred},
		&DIP{RhoIn: 1, RhoGLU: 1, Gamma: 1},
		&CATS{Thresholds: []float32{0}}, // threshold 0 keeps everything
	}
	x := randVec(4, 8)
	want := mlp.Apply(x)
	for _, s := range schemes {
		y, ta := s.Forward(0, x, mlp, nil)
		if !vecClose(y, want, 1e-4) {
			t.Fatalf("%s at full density diverges from dense", s.Name())
		}
		if d := ta.Density(8, 16); math.Abs(d-1) > 0.01 {
			t.Fatalf("%s at full density reports density %v", s.Name(), d)
		}
	}
}

// GLU pruning keeping k largest must equal zeroing the rest of GLU(x).
func TestGLUPruneExactness(t *testing.T) {
	f := func(seed uint64) bool {
		mlp := newTestMLP(seed, 6, 12, nn.ActSiLU)
		x := randVec(seed+1, 6)
		s := &GLUPrune{RhoGLU: 0.5}
		y, ta := s.Forward(0, x, mlp, nil)
		// Reference: dense GLU, keep top 6 by |h|, then dense W_d.
		h := mlp.GLU(x, nil)
		mask := tensor.TopKAbsMask(h, 6, nil)
		for i := range h {
			if !mask[i] {
				h[i] = 0
			}
		}
		want := tensor.MatVec(mlp.Down.P.W, h, nil)
		if !vecClose(y, want, 1e-4) {
			return false
		}
		// Density = (2 + 0.5)/3.
		return math.Abs(ta.Density(6, 12)-(2+0.5)/3) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGLUOracleOutputsEqualGLUPrune(t *testing.T) {
	mlp := newTestMLP(5, 8, 16, nn.ActSiLU)
	x := randVec(6, 8)
	a, taA := (&GLUPrune{RhoGLU: 0.5}).Forward(0, x, mlp, nil)
	b, taB := (&GLUOracle{Rho: 0.5}).Forward(0, x, mlp, nil)
	if !vecClose(a, b, 1e-5) {
		t.Fatal("oracle output should equal GLU pruning output")
	}
	// But the oracle touches far fewer weights.
	if taB.WeightsTouched(8, 16) >= taA.WeightsTouched(8, 16) {
		t.Fatal("oracle should touch fewer weights than GLU pruning")
	}
	if d := taB.Density(8, 16); math.Abs(d-0.5) > 0.01 {
		t.Fatalf("oracle density = %v, want 0.5", d)
	}
}

func TestGatePruneDensity(t *testing.T) {
	mlp := newTestMLP(7, 8, 16, nn.ActSiLU)
	x := randVec(8, 8)
	_, ta := (&GatePrune{Rho: 0.25}).Forward(0, x, mlp, nil)
	want := (1 + 2*0.25) / 3
	if d := ta.Density(8, 16); math.Abs(d-want) > 0.01 {
		t.Fatalf("gate density = %v, want %v", d, want)
	}
}

func TestUpPruneUsesUpScores(t *testing.T) {
	mlp := newTestMLP(9, 6, 10, nn.ActSiLU)
	x := randVec(10, 6)
	y, ta := (&UpPrune{Rho: 0.5}).Forward(0, x, mlp, nil)
	// Reference: keep top |W_u x| rows.
	u := tensor.MatVec(mlp.Up.P.W, x, nil)
	idx := tensor.TopKIndices(absScores(u, nil), 5)
	h := tensor.NewVec(10)
	g := tensor.MatVec(mlp.Gate.P.W, x, nil)
	for _, i := range idx {
		h[i] = u[i] * mlp.Act.Apply(g[i])
	}
	want := tensor.MatVec(mlp.Down.P.W, h, nil)
	if !vecClose(y, want, 1e-4) {
		t.Fatal("up pruning output mismatch")
	}
	if ta.Groups[GroupUpRows].Kind != AccessDense {
		t.Fatal("up pruning should read W_u densely")
	}
}

func TestPredictiveUsesScores(t *testing.T) {
	mlp := newTestMLP(11, 6, 8, nn.ActSiLU)
	x := randVec(12, 6)
	// A predictor that always scores unit 3 highest.
	pred := func(layer int, xx tensor.Vec) tensor.Vec {
		s := tensor.NewVec(8)
		s[3] = 10
		return s
	}
	y, ta := (&Predictive{Rho: 1.0 / 8, Score: pred}).Forward(0, x, mlp, nil)
	// Only unit 3 active.
	u := tensor.Vec(mlp.Up.P.W.Data[3*6 : 4*6]).Dot(x)
	g := tensor.Vec(mlp.Gate.P.W.Data[3*6 : 4*6]).Dot(x)
	h3 := u * mlp.Act.Apply(g)
	want := mlp.Down.P.W.Col(3, nil)
	want.Scale(h3)
	if !vecClose(y, want, 1e-4) {
		t.Fatal("predictive output mismatch")
	}
	if got := ta.Groups[GroupDown].Units; len(got) != 1 || got[0] != 3 {
		t.Fatalf("predictive access = %v", got)
	}
}

func TestCATSVariableDensity(t *testing.T) {
	mlp := newTestMLP(13, 8, 16, nn.ActSiLU)
	s := &CATS{Thresholds: []float32{0.2}}
	// Different inputs give different kept counts.
	n1 := len(mustAccess(t, s, mlp, randVec(14, 8)).Groups[GroupDown].Units)
	n2 := len(mustAccess(t, s, mlp, randVec(15, 8)).Groups[GroupDown].Units)
	n3 := len(mustAccess(t, s, mlp, randVec(16, 8)).Groups[GroupDown].Units)
	if n1 == n2 && n2 == n3 {
		t.Fatalf("CATS keep counts identical (%d); expected variation", n1)
	}
	// A huge threshold still keeps at least one unit.
	s2 := &CATS{Thresholds: []float32{1e9}}
	if n := len(mustAccess(t, s2, mlp, randVec(17, 8)).Groups[GroupDown].Units); n != 1 {
		t.Fatalf("CATS with huge threshold kept %d units, want 1", n)
	}
}

func mustAccess(t *testing.T, s Scheme, mlp *nn.GLUMLP, x tensor.Vec) TokenAccess {
	t.Helper()
	_, ta := s.Forward(0, x, mlp, nil)
	return ta
}

func TestDIPDensityMatchesTarget(t *testing.T) {
	for _, target := range []float64{0.3, 0.4, 0.5, 0.6, 0.8} {
		s := NewDIP(target)
		if got := s.TargetDensity(); math.Abs(got-target) > 0.02 {
			t.Fatalf("allocation for %v gives density %v", target, got)
		}
		mlp := newTestMLP(19, 32, 64, nn.ActSiLU)
		x := randVec(20, 32)
		_, ta := s.Forward(0, x, mlp, nil)
		if got := ta.Density(32, 64); math.Abs(got-target) > 0.05 {
			t.Fatalf("measured density %v for target %v", got, target)
		}
	}
}

func TestDIPApproximationImprovesWithDensity(t *testing.T) {
	// Averaged over inputs, lower density must mean higher approximation
	// error (pointwise monotonicity is not guaranteed because the GLU
	// approximation is nonlinear in the input mask).
	mlp := newTestMLP(21, 16, 32, nn.ActSiLU)
	const nInputs = 32
	avgErr := func(target float64) float64 {
		s := NewDIP(target)
		var total float64
		for i := 0; i < nInputs; i++ {
			x := randVec(uint64(100+i), 16)
			dense := mlp.Apply(x)
			y, _ := s.Forward(0, x, mlp, nil)
			for j := range y {
				d := float64(y[j] - dense[j])
				total += d * d
			}
		}
		return total / nInputs
	}
	e25, e50, e75, e100 := avgErr(0.25), avgErr(0.5), avgErr(0.75), avgErr(1.0)
	if !(e25 > e50 && e50 > e75 && e75 > e100) {
		t.Fatalf("DIP error not decreasing in density: %.4g %.4g %.4g %.4g", e25, e50, e75, e100)
	}
	if e100 > 1e-8 {
		t.Fatalf("DIP at density 1 has error %v", e100)
	}
}

// A fake cache view for DIP-CA tests.
type fakeCache struct{ cached map[[3]int]bool }

func (f *fakeCache) Cached(layer int, g GroupID, unit int) bool {
	return f.cached[[3]int{layer, int(g), unit}]
}

func TestDIPCAPrefersCachedUnits(t *testing.T) {
	mlp := newTestMLP(23, 16, 32, nn.ActSiLU)
	x := randVec(24, 16)
	plain := &DIP{RhoIn: 0.5, RhoGLU: 0.5, Gamma: 1}
	_, taPlain := plain.Forward(0, x, mlp, nil)
	// Cache exactly the complement of the plain selection on the input
	// side, with a strong penalty: DIP-CA should now pick mostly cached
	// units whose magnitudes are only slightly smaller.
	selected := map[int]bool{}
	for _, u := range taPlain.Groups[GroupUpGate].Units {
		selected[u] = true
	}
	fc := &fakeCache{cached: map[[3]int]bool{}}
	for i := 0; i < 16; i++ {
		if !selected[i] {
			fc.cached[[3]int{0, int(GroupUpGate), i}] = true
		}
	}
	ca := &DIP{RhoIn: 0.5, RhoGLU: 0.5, Gamma: 0.01, CacheAware: true}
	_, taCA := ca.Forward(0, x, mlp, fc)
	hits := 0
	for _, u := range taCA.Groups[GroupUpGate].Units {
		if fc.cached[[3]int{0, int(GroupUpGate), u}] {
			hits++
		}
	}
	if hits < 6 { // 8 selected, complement has 8 cached candidates
		t.Fatalf("DIP-CA selected only %d cached units under strong penalty", hits)
	}
}

func TestDIPCAGammaOneEqualsDIP(t *testing.T) {
	mlp := newTestMLP(25, 12, 24, nn.ActSiLU)
	x := randVec(26, 12)
	fc := &fakeCache{cached: map[[3]int]bool{{0, int(GroupUpGate), 0}: true}}
	a, _ := (&DIP{RhoIn: 0.5, RhoGLU: 0.5, Gamma: 1, CacheAware: true}).Forward(0, x, mlp, fc)
	b, _ := (&DIP{RhoIn: 0.5, RhoGLU: 0.5, Gamma: 1}).Forward(0, x, mlp, nil)
	if !vecClose(a, b, 1e-6) {
		t.Fatal("gamma=1 DIP-CA should equal plain DIP")
	}
}

func TestDIPCANilCacheEqualsDIP(t *testing.T) {
	mlp := newTestMLP(27, 12, 24, nn.ActSiLU)
	x := randVec(28, 12)
	a, _ := NewDIPCA(0.5, 0.2).Forward(0, x, mlp, nil)
	b, _ := NewDIP(0.5).Forward(0, x, mlp, nil)
	if !vecClose(a, b, 1e-6) {
		t.Fatal("DIP-CA with nil cache should equal DIP")
	}
}

func TestAllocateDIPConstraint(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		target := 0.05 + 0.9*rng.Float64()
		rin, rglu := AllocateDIP(target)
		if rin <= 0 || rin > 1 || rglu <= 0 || rglu > 1 {
			return false
		}
		return math.Abs((2*rin+rglu)/3-target) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// The calibrated allocation (Appendix B.1, regenerated by fig12) gives
	// the input side more density than the down projection at mid-range
	// sparsity: pruning residual-stream coordinates is the more damaging
	// approximation on the trained analogs.
	rin, rglu := AllocateDIP(0.5)
	if rin <= rglu {
		t.Fatalf("expected rhoIn > rhoGLU at 50%% density, got %v vs %v", rin, rglu)
	}
}

func TestAllocateDIPExtremes(t *testing.T) {
	rin, rglu := AllocateDIP(0)
	if rin <= 0 || rglu <= 0 {
		t.Fatal("zero target must not zero the allocation")
	}
	rin, rglu = AllocateDIP(1)
	if rin != 1 || rglu != 1 {
		t.Fatal("full target should keep everything")
	}
}

func TestGroupUnits(t *testing.T) {
	u, per := GroupUnits(GroupUpGate, 8, 16)
	if u != 8 || per != 32 {
		t.Fatalf("upgate units=%d per=%d", u, per)
	}
	u, per = GroupUnits(GroupDown, 8, 16)
	if u != 16 || per != 8 {
		t.Fatalf("down units=%d per=%d", u, per)
	}
	// Sum over a full-density access must equal 3*dim*dff.
	var ta TokenAccess
	ta.Groups[GroupUpRows] = GroupAccess{Kind: AccessDense}
	ta.Groups[GroupGateRows] = GroupAccess{Kind: AccessDense}
	ta.Groups[GroupDown] = GroupAccess{Kind: AccessDense}
	if got := ta.WeightsTouched(8, 16); got != 3*8*16 {
		t.Fatalf("dense access weights = %d", got)
	}
	// Same total via the upgate representation.
	var ta2 TokenAccess
	all := make([]int, 8)
	for i := range all {
		all[i] = i
	}
	ta2.Groups[GroupUpGate] = GroupAccess{Kind: AccessDense}
	ta2.Groups[GroupDown] = GroupAccess{Kind: AccessDense}
	if got := ta2.WeightsTouched(8, 16); got != 3*8*16 {
		t.Fatalf("upgate dense access weights = %d", got)
	}
}

func TestGroupIDStrings(t *testing.T) {
	seen := map[string]bool{}
	for g := GroupID(0); g < NumGroups; g++ {
		s := g.String()
		if s == "invalid" || seen[s] {
			t.Fatalf("bad group name %q", s)
		}
		seen[s] = true
	}
}

func TestParetoFront(t *testing.T) {
	trials := []AllocTrial{
		{Density: 0.3, PPL: 10},
		{Density: 0.3, PPL: 8},  // dominates previous
		{Density: 0.5, PPL: 9},  // dominated (higher density, higher ppl than 8)
		{Density: 0.5, PPL: 6},  // on front
		{Density: 0.7, PPL: 6},  // dominated (same ppl, more density)
		{Density: 0.8, PPL: 5},  // on front
		{Density: 0.9, PPL: 50}, // dominated
	}
	front := ParetoFront(trials)
	if len(front) != 3 {
		t.Fatalf("front = %+v", front)
	}
	if front[0].PPL != 8 || front[1].PPL != 6 || front[2].PPL != 5 {
		t.Fatalf("front wrong: %+v", front)
	}
}

func TestFitLogitLinearRecoversLine(t *testing.T) {
	// Generate points exactly on logit(rin) = 0.5 + 1.2*logit(d).
	var front []AllocTrial
	for _, d := range []float64{0.2, 0.35, 0.5, 0.65, 0.8} {
		rin := tensor.Expit(0.5 + 1.2*tensor.Logit(d))
		front = append(front, AllocTrial{Density: d, RhoIn: rin})
	}
	a, b := FitLogitLinear(front)
	if math.Abs(a-0.5) > 1e-6 || math.Abs(b-1.2) > 1e-6 {
		t.Fatalf("fit = (%v, %v), want (0.5, 1.2)", a, b)
	}
}

func TestFittedAllocatorConstraint(t *testing.T) {
	alloc := FittedAllocator{A: 0.3, B: 1.1}
	for _, d := range []float64{0.2, 0.4, 0.5, 0.7, 0.9} {
		rin, rglu := alloc.Allocate(d)
		if rin < 0.02 || rin > 1 || rglu < 0.02 || rglu > 1 {
			t.Fatalf("allocation out of range: %v %v", rin, rglu)
		}
	}
	if rin, _ := alloc.Allocate(0); rin <= 0 {
		t.Fatal("zero target should clamp")
	}
	if rin, rglu := alloc.Allocate(1); rin != 1 || rglu != 1 {
		t.Fatal("unit target should keep everything")
	}
}

func TestFitLogitLinearDegenerate(t *testing.T) {
	if _, b := FitLogitLinear(nil); b != 1 {
		t.Fatal("empty fit should default slope 1")
	}
	one := []AllocTrial{{Density: 0.5, RhoIn: 0.4}}
	a, b := FitLogitLinear(one)
	if b != 1 {
		t.Fatal("single-point fit should default slope 1")
	}
	// The single point must lie on the returned line.
	got := tensor.Expit(a + b*tensor.Logit(0.5))
	if math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("single-point fit misses the point: %v", got)
	}
	same := []AllocTrial{{Density: 0.5, RhoIn: 0.3}, {Density: 0.5, RhoIn: 0.31}}
	FitLogitLinear(same) // must not panic on zero x-variance
}

func TestThresholdModeString(t *testing.T) {
	if ThresholdGlobal.String() != "global" || ThresholdPerLayer.String() != "per-layer" || ThresholdPerToken.String() != "per-token" {
		t.Fatal("mode names wrong")
	}
}

func TestGLUThresholdModes(t *testing.T) {
	mlp := newTestMLP(31, 8, 16, nn.ActSiLU)
	x := randVec(32, 8)
	// Per-token at rho=0.5 equals GLUPrune.
	a, _ := (&GLUThreshold{Mode: ThresholdPerToken, Rho: 0.5}).Forward(0, x, mlp, nil)
	b, _ := (&GLUPrune{RhoGLU: 0.5}).Forward(0, x, mlp, nil)
	if !vecClose(a, b, 1e-5) {
		t.Fatal("per-token threshold should equal top-K GLU pruning")
	}
	// Threshold 0 keeps everything (non-negative magnitudes).
	s := &GLUThreshold{Mode: ThresholdGlobal, Global: 0, LastDensity: make([]float64, 1)}
	y, _ := s.Forward(0, x, mlp, nil)
	if !vecClose(y, mlp.Apply(x), 1e-5) {
		t.Fatal("zero threshold should be dense")
	}
	if s.LastDensity[0] != 1 {
		t.Fatalf("LastDensity = %v, want 1", s.LastDensity[0])
	}
	// A huge global threshold prunes everything.
	s2 := &GLUThreshold{Mode: ThresholdGlobal, Global: 1e9, LastDensity: make([]float64, 1)}
	y2, _ := s2.Forward(0, x, mlp, nil)
	for _, v := range y2 {
		if v != 0 {
			t.Fatal("huge threshold should zero the output")
		}
	}
}

func TestKeepCount(t *testing.T) {
	if keepCount(0.5, 10) != 5 {
		t.Fatal("keepCount 0.5/10")
	}
	if keepCount(0, 10) != 1 {
		t.Fatal("keepCount floor")
	}
	if keepCount(2, 10) != 10 {
		t.Fatal("keepCount ceiling")
	}
}
