package sparsity

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// DIP is Dynamic Input Pruning (Section 4, Eq. 7–8), optionally with the
// cache-aware re-weighting of Section 5 (Eq. 10 / Algorithm 1):
//
//  1. keep the top-K_in input coordinates by |x| (re-weighted by cache
//     state when Gamma < 1 and a CacheView is present), pruning the
//     corresponding columns of W_u and W_g;
//  2. compute the approximate GLU activations with the pruned matrices;
//  3. keep the top-K_glu intermediate units by |GLU~(x)| (again optionally
//     re-weighted), pruning the corresponding columns of W_d.
//
// No predictor is involved: the mask is derived from activations the
// decoder computes anyway.
type DIP struct {
	// RhoIn is the fraction of input coordinates kept (W_u/W_g columns).
	RhoIn float64
	// RhoGLU is the fraction of intermediate units kept (W_d columns).
	RhoGLU float64
	// Gamma is the cache-aware penalty on non-cached units (Eq. 10).
	// Gamma == 1 disables re-weighting (plain DIP); the paper tunes 0.2.
	Gamma float64
	// CacheAware names the scheme "dip-ca" and enables re-weighting.
	CacheAware bool

	// scratch buffers reused across calls (schemes are used sequentially;
	// parallel evaluations give each worker its own copy via Clone).
	scoreIn, scoreGLU, u, g, h, y tensor.Vec
}

// CloneStateless implements StatefulScheme.
func (s *DIP) CloneStateless() Scheme {
	return &DIP{RhoIn: s.RhoIn, RhoGLU: s.RhoGLU, Gamma: s.Gamma, CacheAware: s.CacheAware}
}

// NewDIP returns plain DIP with the density allocation for the target MLP
// density (Appendix B.1).
func NewDIP(targetDensity float64) *DIP {
	rin, rglu := AllocateDIP(targetDensity)
	return &DIP{RhoIn: rin, RhoGLU: rglu, Gamma: 1}
}

// NewDIPCA returns cache-aware DIP with penalty gamma (the paper fixes 0.2).
func NewDIPCA(targetDensity, gamma float64) *DIP {
	rin, rglu := AllocateDIP(targetDensity)
	return &DIP{RhoIn: rin, RhoGLU: rglu, Gamma: gamma, CacheAware: true}
}

// Name implements Scheme.
func (s *DIP) Name() string {
	if s.CacheAware {
		return "dip-ca"
	}
	return "dip"
}

// TargetDensity returns the MLP density implied by the allocation.
func (s *DIP) TargetDensity() float64 { return (2*s.RhoIn + s.RhoGLU) / 3 }

// IsCacheAware reports whether the scheme's masks depend on cache state
// (used by the evaluation harness to reject invalid Belady replays).
func (s *DIP) IsCacheAware() bool { return s.CacheAware && s.Gamma < 1 }

// reweight applies Eq. 10 in place: s_i = |x_i|·(c_i + γ(1−c_i)) / ‖x‖∞.
// The ‖x‖∞ normalization keeps γ comparable across tokens with different
// dynamic ranges; it does not change the ranking for a fixed token but is
// retained for fidelity with the paper (and because Figure 10's γ sweep
// reports the normalized scores).
func (s *DIP) reweight(scores tensor.Vec, layer int, group GroupID, cache CacheView) {
	if !s.CacheAware || s.Gamma >= 1 || cache == nil {
		return
	}
	norm := scores.MaxAbs()
	if norm == 0 {
		norm = 1
	}
	inv := 1 / norm
	gamma := float32(s.Gamma)
	for i := range scores {
		w := gamma
		if cache.Cached(layer, group, i) {
			w = 1
		}
		scores[i] *= w * inv
	}
}

// Forward implements Scheme.
func (s *DIP) Forward(layer int, x tensor.Vec, mlp *nn.GLUMLP, cache CacheView) (tensor.Vec, TokenAccess) {
	dim, dff := mlp.Dim, mlp.DFF
	// Stage 1: input pruning.
	s.scoreIn = absScores(x, resize(s.scoreIn, dim))
	s.reweight(s.scoreIn, layer, GroupUpGate, cache)
	kIn := keepCount(s.RhoIn, dim)
	inIdx := tensor.TopKIndices(s.scoreIn, kIn)
	// Stage 2: approximate GLU with pruned input columns.
	s.u = resize(s.u, dff)
	s.g = resize(s.g, dff)
	tensor.MatVecSparse(mlp.Up.P.W, x, inIdx, s.u)
	tensor.MatVecSparse(mlp.Gate.P.W, x, inIdx, s.g)
	s.h = resize(s.h, dff)
	for i := range s.h {
		s.h[i] = s.u[i] * mlp.Act.Apply(s.g[i])
	}
	// Stage 3: GLU pruning on the approximate activations.
	s.scoreGLU = absScores(s.h, resize(s.scoreGLU, dff))
	s.reweight(s.scoreGLU, layer, GroupDown, cache)
	kGLU := keepCount(s.RhoGLU, dff)
	gluIdx := tensor.TopKIndices(s.scoreGLU, kGLU)
	s.y = resize(s.y, dim)
	y := tensor.MatVecSparse(mlp.Down.P.W, s.h, gluIdx, s.y)
	var ta TokenAccess
	ta.Groups[GroupUpGate] = GroupAccess{Kind: AccessSparse, Units: inIdx}
	ta.Groups[GroupDown] = GroupAccess{Kind: AccessSparse, Units: gluIdx}
	return y, ta
}

// resize is the package-local shorthand for tensor.Reuse.
func resize(v tensor.Vec, n int) tensor.Vec { return tensor.Reuse(v, n) }

// AllocateDIP maps a target MLP density ρ to the per-group keep fractions
// (ρ_in for the W_u/W_g columns, ρ_glu for the W_d columns) subject to
// (2·ρ_in + ρ_glu)/3 = ρ. Following Appendix B.1, the rule is a linear
// model in logit space, logit(ρ_in) = a + b·logit(ρ), with (a, b) fitted
// on the Pareto front of a (ρ_in, ρ_glu) grid search over WikiText-style
// perplexity (the fig12 experiment regenerates that calibration). On the
// trained analogs the front allocates the *input* side more density than
// the down projection — pruning residual-stream coordinates is the more
// damaging of DIP's two approximations.
func AllocateDIP(target float64) (rhoIn, rhoGLU float64) {
	const (
		fitA = 0.62
		fitB = 1.53
	)
	if target <= 0 {
		return 0.02, 0.02
	}
	if target >= 1 {
		return 1, 1
	}
	rhoIn = tensor.Expit(fitA + fitB*tensor.Logit(target))
	rhoGLU = 3*target - 2*rhoIn
	// Enforce the density constraint within (0.02, 1] on both fractions.
	if rhoGLU < 0.02 {
		rhoIn -= (0.02 - rhoGLU) / 2
		rhoGLU = 0.02
	}
	if rhoGLU > 1 {
		rhoIn += (rhoGLU - 1) / 2
		rhoGLU = 1
	}
	if rhoIn > 1 {
		rhoGLU += 2 * (rhoIn - 1)
		rhoIn = 1
	}
	if rhoIn < 0.02 {
		rhoIn = 0.02
	}
	if rhoGLU > 1 {
		rhoGLU = 1
	}
	return rhoIn, rhoGLU
}
