package sparsity

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Per-token scheme costs at the paper-scale analog dimensions (dim 64,
// dff 192): these bound how much CPU the mask computation itself adds on
// top of the masked matvecs.

func benchScheme(b *testing.B, s Scheme) {
	mlp := nn.NewGLUMLP("m", 64, 192, nn.ActSiLU, tensor.NewRNG(1))
	rng := tensor.NewRNG(2)
	x := tensor.NewVec(64)
	for i := range x {
		x[i] = rng.NormFloat32()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Forward(0, x, mlp, nil)
	}
}

func BenchmarkSchemeDense(b *testing.B)  { benchScheme(b, Dense{}) }
func BenchmarkSchemeDIP50(b *testing.B)  { benchScheme(b, NewDIP(0.5)) }
func BenchmarkSchemeGate50(b *testing.B) { benchScheme(b, &GatePrune{Rho: 0.25}) }
func BenchmarkSchemeUp50(b *testing.B)   { benchScheme(b, &UpPrune{Rho: 0.25}) }
func BenchmarkSchemeGLU(b *testing.B)    { benchScheme(b, &GLUPrune{RhoGLU: 0.5}) }

func BenchmarkSchemeDIPCA50(b *testing.B) {
	mlp := nn.NewGLUMLP("m", 64, 192, nn.ActSiLU, tensor.NewRNG(1))
	rng := tensor.NewRNG(2)
	x := tensor.NewVec(64)
	for i := range x {
		x[i] = rng.NormFloat32()
	}
	fc := &fakeCache{cached: map[[3]int]bool{}}
	for i := 0; i < 32; i++ {
		fc.cached[[3]int{0, int(GroupUpGate), i}] = true
		fc.cached[[3]int{0, int(GroupDown), i * 3}] = true
	}
	s := NewDIPCA(0.5, 0.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Forward(0, x, mlp, fc)
	}
}
