package sparsity

import (
	"fmt"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// parityView is a deterministic fake CacheView: unit u of layer l is
// "cached" when (u+l+salt) is even. Different salts per session make the
// cache-aware reweighting genuinely per-column.
type parityView struct{ salt int }

func (v parityView) Cached(layer int, _ GroupID, unit int) bool {
	return (unit+layer+v.salt)%2 == 0
}

func batchCols(vecs []tensor.Vec) *tensor.Mat {
	m := tensor.NewMat(len(vecs[0]), len(vecs))
	for b, v := range vecs {
		m.SetCol(b, v)
	}
	return m
}

func accessEqual(a, b *TokenAccess) error {
	for g := GroupID(0); g < NumGroups; g++ {
		ga, gb := a.Groups[g], b.Groups[g]
		if ga.Kind != gb.Kind {
			return fmt.Errorf("group %v kind %v vs %v", g, ga.Kind, gb.Kind)
		}
		if len(ga.Units) != len(gb.Units) {
			return fmt.Errorf("group %v has %d vs %d units", g, len(ga.Units), len(gb.Units))
		}
		for i := range ga.Units {
			if ga.Units[i] != gb.Units[i] {
				return fmt.Errorf("group %v unit %d is %d vs %d (order matters)", g, i, ga.Units[i], gb.Units[i])
			}
		}
	}
	return nil
}

// Every scheme's fused path (and the fallback) must reproduce per-session
// Forward bit for bit: outputs, access kinds, and unit lists in order —
// with per-session parameters and per-session cache views differing across
// the batch.
func TestForwardBatchMatchesPerSessionForwardBitForBit(t *testing.T) {
	rng := tensor.NewRNG(21)
	mlp := nn.NewGLUMLP("m", 20, 60, nn.ActSiLU, rng)
	const B = 4
	thr := make([]float32, 3)
	for l := range thr {
		thr[l] = 0.02 * float32(l+1)
	}
	cases := []struct {
		name string
		mk   func(b int) Scheme
	}{
		{"dense", func(int) Scheme { return Dense{} }},
		{"dip", func(b int) Scheme { return NewDIP(0.4 + 0.1*float64(b)) }},
		{"dip-ca", func(b int) Scheme { return NewDIPCA(0.5, 0.2) }},
		{"glu", func(b int) Scheme { return &GLUPrune{RhoGLU: 0.3 + 0.1*float64(b)} }},
		{"glu-oracle", func(b int) Scheme { return &GLUOracle{Rho: 0.3 + 0.1*float64(b)} }},
		{"gate", func(b int) Scheme { return &GatePrune{Rho: 0.3 + 0.1*float64(b)} }},
		{"up", func(b int) Scheme { return &UpPrune{Rho: 0.3 + 0.1*float64(b)} }},
		{"cats", func(int) Scheme { return &CATS{Thresholds: thr} }},
		{"mixed-fallback", func(b int) Scheme {
			if b%2 == 0 {
				return NewDIP(0.5)
			}
			return &GLUPrune{RhoGLU: 0.4}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			batchSchemes := make([]Scheme, B)
			soloSchemes := make([]Scheme, B)
			views := make([]CacheView, B)
			for b := 0; b < B; b++ {
				batchSchemes[b] = tc.mk(b)
				soloSchemes[b] = tc.mk(b)
				if b%2 == 1 { // mix nil and non-nil views across the batch
					views[b] = parityView{salt: b}
				}
			}
			var scratch BatchScratch
			out := tensor.NewMat(mlp.Dim, B)
			tas := make([]TokenAccess, B)
			for layer := 0; layer < 3; layer++ {
				xs := make([]tensor.Vec, B)
				for b := range xs {
					xs[b] = tensor.NewVec(mlp.Dim)
					for i := range xs[b] {
						xs[b][i] = rng.NormFloat32()
					}
				}
				ForwardBatch(layer, batchSchemes, batchCols(xs), mlp, views, out, tas, &scratch)
				for b := 0; b < B; b++ {
					want, wantTA := soloSchemes[b].Forward(layer, xs[b], mlp, views[b])
					for i := range want {
						if out.At(i, b) != want[i] {
							t.Fatalf("layer %d col %d: out[%d] = %v, single %v",
								layer, b, i, out.At(i, b), want[i])
						}
					}
					if err := accessEqual(&tas[b], &wantTA); err != nil {
						t.Fatalf("layer %d col %d: TokenAccess diverged: %v", layer, b, err)
					}
				}
			}
		})
	}
}

// Predictive schemes have no fused path; the fallback must still be
// bit-identical (it is literally per-column Forward).
func TestForwardBatchFallsBackForPredictive(t *testing.T) {
	rng := tensor.NewRNG(5)
	mlp := nn.NewGLUMLP("m", 12, 36, nn.ActSiLU, rng)
	score := func(layer int, x tensor.Vec) tensor.Vec {
		s := tensor.NewVec(mlp.DFF)
		for i := range s {
			s[i] = x[i%len(x)] * float32(layer+1)
		}
		return s
	}
	const B = 3
	schemes := make([]Scheme, B)
	solo := make([]Scheme, B)
	for b := range schemes {
		schemes[b] = &Predictive{Rho: 0.4, Score: score}
		solo[b] = &Predictive{Rho: 0.4, Score: score}
	}
	xs := make([]tensor.Vec, B)
	for b := range xs {
		xs[b] = tensor.NewVec(mlp.Dim)
		for i := range xs[b] {
			xs[b][i] = rng.NormFloat32()
		}
	}
	var scratch BatchScratch
	out := tensor.NewMat(mlp.Dim, B)
	tas := make([]TokenAccess, B)
	ForwardBatch(0, schemes, batchCols(xs), mlp, make([]CacheView, B), out, tas, &scratch)
	for b := range xs {
		want, wantTA := solo[b].Forward(0, xs[b], mlp, nil)
		for i := range want {
			if out.At(i, b) != want[i] {
				t.Fatalf("col %d out[%d] = %v, single %v", b, i, out.At(i, b), want[i])
			}
		}
		if err := accessEqual(&tas[b], &wantTA); err != nil {
			t.Fatalf("col %d: %v", b, err)
		}
	}
}
