// Package parallel is the shared worker-pool layer for the repository: a
// blocked-range executor sized from GOMAXPROCS (overridable via the
// REPRO_PROCS environment variable or SetProcs) that the tensor kernels,
// the nn token loops, and the experiment drivers all use.
//
// Design notes:
//
//   - For/ForWorker split [0, n) into at most Procs() contiguous blocks and
//     run them on helper goroutines drawn from a global token bucket. When
//     no helper token is available — including when a parallel region nests
//     inside another — blocks run inline on the caller, so nesting can never
//     deadlock and total concurrency stays bounded by Procs().
//   - Determinism contract: every index is processed exactly once and block
//     boundaries depend only on (n, grain, Procs()), never on scheduling.
//     Callers write disjoint output slots per index, so results are
//     bit-identical for any worker count; Procs()==1 degenerates to a plain
//     loop with no goroutines and no channel traffic.
//   - ForWorker passes a stable worker (block) id in [0, Workers(n, grain)),
//     letting callers keep per-worker scratch arenas: slot w is only ever
//     touched by the goroutine running block w.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// limiter is an immutable snapshot of the pool configuration; SetProcs swaps
// the whole snapshot so in-flight For calls keep a consistent view.
type limiter struct {
	procs  int
	tokens chan struct{}
}

var lim atomic.Pointer[limiter]

func init() {
	n := runtime.GOMAXPROCS(0)
	if s := os.Getenv("REPRO_PROCS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	SetProcs(n)
}

// Procs returns the current worker-pool size.
func Procs() int { return lim.Load().procs }

// SetProcs resizes the pool to n workers (clamped to ≥ 1). n == 1 makes
// every For call run serially inline. Safe to call concurrently with For;
// regions already running keep their previous size.
func SetProcs(n int) {
	if n < 1 {
		n = 1
	}
	l := &limiter{procs: n, tokens: make(chan struct{}, n-1)}
	for i := 0; i < n-1; i++ {
		l.tokens <- struct{}{}
	}
	lim.Store(l)
}

// plan returns the number of blocks and the block size For will use for a
// range of n items with the given minimum grain per block.
func plan(n, grain, procs int) (blocks, chunk int) {
	if grain < 1 {
		grain = 1
	}
	w := (n + grain - 1) / grain
	if w > procs {
		w = procs
	}
	if w < 1 {
		w = 1
	}
	chunk = (n + w - 1) / w
	blocks = (n + chunk - 1) / chunk
	return blocks, chunk
}

// Workers returns the number of blocks (and therefore distinct worker ids)
// that ForWorker will use for the same (n, grain) under the current pool
// size. Use it to size per-worker scratch slices.
func Workers(n, grain int) int {
	if n <= 0 {
		return 0
	}
	blocks, _ := plan(n, grain, Procs())
	return blocks
}

// For runs fn over [0, n) as parallel blocks of at least grain items.
// fn(lo, hi) must be safe to call concurrently for disjoint ranges.
func For(n, grain int, fn func(lo, hi int)) {
	ForWorker(n, grain, func(_, lo, hi int) { fn(lo, hi) })
}

// ForWorker is For with a stable worker id per block: fn(w, lo, hi) is the
// only invocation that receives id w, so fn may use w to index caller-owned
// scratch without synchronization.
func ForWorker(n, grain int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	l := lim.Load()
	blocks, chunk := plan(n, grain, l.procs)
	if blocks <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 1; w < blocks; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		select {
		case <-l.tokens:
			wg.Add(1)
			go func(w, lo, hi int) {
				defer func() {
					l.tokens <- struct{}{}
					wg.Done()
				}()
				fn(w, lo, hi)
			}(w, lo, hi)
		default:
			// Pool saturated (or nested region): run on the caller.
			fn(w, lo, hi)
		}
	}
	fn(0, 0, chunk)
	wg.Wait()
}

// Do runs the given functions, concurrently when workers are available, and
// returns after all complete.
func Do(fns ...func()) {
	For(len(fns), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fns[i]()
		}
	})
}
