package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeOnce(t *testing.T) {
	defer SetProcs(Procs())
	for _, procs := range []int{1, 2, 3, 8} {
		SetProcs(procs)
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			for _, grain := range []int{1, 3, 16, 1000} {
				hits := make([]int32, n)
				For(n, grain, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("procs=%d n=%d grain=%d: index %d visited %d times", procs, n, grain, i, h)
					}
				}
			}
		}
	}
}

func TestForWorkerIdsAreStableAndBounded(t *testing.T) {
	defer SetProcs(Procs())
	SetProcs(4)
	n, grain := 100, 5
	nw := Workers(n, grain)
	if nw < 1 || nw > 4 {
		t.Fatalf("Workers(%d,%d) = %d, want in [1,4]", n, grain, nw)
	}
	owner := make([]int32, n)
	var seen sync.Map
	ForWorker(n, grain, func(w, lo, hi int) {
		if w < 0 || w >= nw {
			t.Errorf("worker id %d out of range [0,%d)", w, nw)
		}
		if _, dup := seen.LoadOrStore(w, true); dup {
			t.Errorf("worker id %d handed out twice", w)
		}
		for i := lo; i < hi; i++ {
			atomic.StoreInt32(&owner[i], int32(w))
		}
	})
	for i := 1; i < n; i++ {
		if owner[i] < owner[i-1] {
			t.Fatalf("blocks not contiguous ascending: owner[%d]=%d < owner[%d]=%d", i, owner[i], i-1, owner[i-1])
		}
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	defer SetProcs(Procs())
	SetProcs(2)
	var total atomic.Int64
	For(8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(8, 1, func(lo2, hi2 int) {
				for j := lo2; j < hi2; j++ {
					total.Add(1)
				}
			})
		}
	})
	if total.Load() != 64 {
		t.Fatalf("nested For processed %d items, want 64", total.Load())
	}
}

func TestSerialProcsRunsInline(t *testing.T) {
	defer SetProcs(Procs())
	SetProcs(1)
	before := runtime.NumGoroutine()
	var calls int // no synchronization: must be caller-only
	For(100, 1, func(lo, hi int) { calls += hi - lo })
	if calls != 100 {
		t.Fatalf("serial For processed %d items", calls)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("serial For spawned goroutines: %d -> %d", before, after)
	}
}

func TestDoRunsAll(t *testing.T) {
	defer SetProcs(Procs())
	SetProcs(4)
	var a, b, c atomic.Bool
	Do(func() { a.Store(true) }, func() { b.Store(true) }, func() { c.Store(true) })
	if !a.Load() || !b.Load() || !c.Load() {
		t.Fatal("Do skipped a function")
	}
}

func TestConcurrentForCallers(t *testing.T) {
	defer SetProcs(Procs())
	SetProcs(4)
	var wg sync.WaitGroup
	var total atomic.Int64
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			For(1000, 10, func(lo, hi int) { total.Add(int64(hi - lo)) })
		}()
	}
	wg.Wait()
	if total.Load() != 8000 {
		t.Fatalf("concurrent For processed %d items, want 8000", total.Load())
	}
}
