package tensor

import (
	"fmt"
	"math"
)

// SymMat is a dense symmetric matrix in float64, used by the OBS-style
// weight-update machinery (SparseGPT, GPTQ) where float32 accumulation is
// too lossy.
type SymMat struct {
	N    int
	Data []float64
}

// NewSymMat returns a zeroed n×n symmetric matrix.
func NewSymMat(n int) *SymMat {
	return &SymMat{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *SymMat) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *SymMat) Set(i, j int, x float64) { m.Data[i*m.N+j] = x }

// AddOuterF64 accumulates alpha · x xᵀ into m (x as float32 input data).
func (m *SymMat) AddOuterF64(alpha float64, x Vec) {
	if len(x) != m.N {
		panic("tensor: SymMat.AddOuterF64 length mismatch")
	}
	for i := 0; i < m.N; i++ {
		xi := alpha * float64(x[i])
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.N : (i+1)*m.N]
		for j := 0; j < m.N; j++ {
			row[j] += xi * float64(x[j])
		}
	}
}

// AddDiag adds lambda to every diagonal element.
func (m *SymMat) AddDiag(lambda float64) {
	for i := 0; i < m.N; i++ {
		m.Data[i*m.N+i] += lambda
	}
}

// MeanDiag returns the mean of the diagonal.
func (m *SymMat) MeanDiag() float64 {
	var s float64
	for i := 0; i < m.N; i++ {
		s += m.Data[i*m.N+i]
	}
	return s / float64(m.N)
}

// Cholesky computes the lower-triangular factor L with m = L Lᵀ. It
// returns an error when the matrix is not positive definite.
func (m *SymMat) Cholesky() (*SymMat, error) {
	n := m.N
	l := NewSymMat(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("tensor: Cholesky failed at pivot %d (%v)", i, sum)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// Inverse returns m⁻¹ via its Cholesky factorization.
func (m *SymMat) Inverse() (*SymMat, error) {
	l, err := m.Cholesky()
	if err != nil {
		return nil, err
	}
	n := m.N
	// Invert L (lower triangular) in place into linv.
	linv := NewSymMat(n)
	for i := 0; i < n; i++ {
		linv.Set(i, i, 1/l.At(i, i))
		for j := 0; j < i; j++ {
			var sum float64
			for k := j; k < i; k++ {
				sum += l.At(i, k) * linv.At(k, j)
			}
			linv.Set(i, j, -sum/l.At(i, i))
		}
	}
	// m⁻¹ = L⁻ᵀ L⁻¹.
	inv := NewSymMat(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var sum float64
			for k := i; k < n; k++ { // linv is lower: linv[k,i], linv[k,j] nonzero for k ≥ max(i,j)
				sum += linv.At(k, i) * linv.At(k, j)
			}
			inv.Set(i, j, sum)
			inv.Set(j, i, sum)
		}
	}
	return inv, nil
}

// CholUpper computes the upper-triangular factor U with m = Uᵀ U, the form
// GPTQ/SparseGPT use for the inverse Hessian (Hinv = Uᵀ U with U upper).
// It is the transpose of the lower Cholesky factor.
func (m *SymMat) CholUpper() (*SymMat, error) {
	l, err := m.Cholesky()
	if err != nil {
		return nil, err
	}
	n := m.N
	u := NewSymMat(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			u.Set(j, i, l.At(i, j))
		}
	}
	return u, nil
}
