package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint32() == c.Uint32() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds produced %d/1000 identical draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of range: %v", x)
		}
		sum += x
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f far from 0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(11)
	seen := make(map[int]int)
	for i := 0; i < 10000; i++ {
		x := r.Intn(7)
		if x < 0 || x >= 7 {
			t.Fatalf("Intn(7) = %d out of range", x)
		}
		seen[x]++
	}
	for v := 0; v < 7; v++ {
		if seen[v] < 10000/7/2 {
			t.Fatalf("Intn value %d badly under-represented: %d", v, seen[v])
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(3)
	var sum, sumsq float64
	const n = 50000
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %.4f", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %.4f", variance)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestVecOps(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	v.Add(w)
	if v[0] != 5 || v[2] != 9 {
		t.Fatalf("Add wrong: %v", v)
	}
	v.AddScaled(-1, w)
	if v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("AddScaled wrong: %v", v)
	}
	v.Scale(2)
	if v[1] != 4 {
		t.Fatalf("Scale wrong: %v", v)
	}
	if got := (Vec{-3, 2}).MaxAbs(); got != 3 {
		t.Fatalf("MaxAbs = %v", got)
	}
	if got := (Vec{}).MaxAbs(); got != 0 {
		t.Fatalf("MaxAbs empty = %v", got)
	}
	if got := (Vec{3, 4}).Norm2(); math.Abs(float64(got)-5) > 1e-6 {
		t.Fatalf("Norm2 = %v", got)
	}
	if got := (Vec{1, 2, 3}).Mean(); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestMatVec(t *testing.T) {
	m := NewMatFrom(2, 3, []float32{1, 2, 3, 4, 5, 6})
	out := MatVec(m, Vec{1, 0, -1}, nil)
	if out[0] != -2 || out[1] != -2 {
		t.Fatalf("MatVec = %v", out)
	}
}

func TestMatTVecAccumulates(t *testing.T) {
	m := NewMatFrom(2, 2, []float32{1, 2, 3, 4})
	out := Vec{10, 10}
	MatTVec(m, Vec{1, 1}, out)
	if out[0] != 14 || out[1] != 16 {
		t.Fatalf("MatTVec = %v", out)
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMat(2, 2)
	AddOuter(m, 2, Vec{1, 2}, Vec{3, 4})
	want := []float32{6, 8, 12, 16}
	for i, x := range want {
		if m.Data[i] != x {
			t.Fatalf("AddOuter = %v, want %v", m.Data, want)
		}
	}
}

func TestMatMul(t *testing.T) {
	a := NewMatFrom(2, 2, []float32{1, 2, 3, 4})
	b := NewMatFrom(2, 2, []float32{5, 6, 7, 8})
	c := MatMul(a, b)
	want := []float32{19, 22, 43, 50}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul = %v", c.Data)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := NewRNG(9)
	m := NewMat(5, 7)
	m.RandNorm(r, 1)
	tt := m.T().T()
	for i := range m.Data {
		if tt.Data[i] != m.Data[i] {
			t.Fatal("transpose twice is not identity")
		}
	}
}

func TestColRoundTrip(t *testing.T) {
	m := NewMatFrom(2, 3, []float32{1, 2, 3, 4, 5, 6})
	c := m.Col(1, nil)
	if c[0] != 2 || c[1] != 5 {
		t.Fatalf("Col = %v", c)
	}
	m.SetCol(1, Vec{9, 10})
	if m.At(0, 1) != 9 || m.At(1, 1) != 10 {
		t.Fatal("SetCol failed")
	}
}

// Property: masked matvec with an all-true mask equals the dense matvec.
func TestMaskedMatVecAllTrueEqualsDense(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		rows, cols := 3+r.Intn(8), 3+r.Intn(8)
		m := NewMat(rows, cols)
		m.RandNorm(r, 1)
		x := NewVec(cols)
		for i := range x {
			x[i] = r.NormFloat32()
		}
		mask := make([]bool, cols)
		for i := range mask {
			mask[i] = true
		}
		dense := MatVec(m, x, nil)
		masked := MaskedMatVecCols(m, x, mask, nil)
		for i := range dense {
			if math.Abs(float64(dense[i]-masked[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: masked matvec equals dense matvec on an input with pruned
// coordinates zeroed out.
func TestMaskedMatVecEqualsZeroedInput(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		rows, cols := 2+r.Intn(6), 2+r.Intn(10)
		m := NewMat(rows, cols)
		m.RandNorm(r, 1)
		x := NewVec(cols)
		mask := make([]bool, cols)
		for i := range x {
			x[i] = r.NormFloat32()
			mask[i] = r.Float64() < 0.5
		}
		masked := MaskedMatVecCols(m, x, mask, nil)
		zeroed := x.Clone()
		for i := range zeroed {
			if !mask[i] {
				zeroed[i] = 0
			}
		}
		dense := MatVec(m, zeroed, nil)
		for i := range dense {
			if math.Abs(float64(dense[i]-masked[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatVecSparse over the active index list matches MaskedMatVecCols.
func TestMatVecSparseMatchesMask(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		rows, cols := 2+r.Intn(6), 2+r.Intn(10)
		m := NewMat(rows, cols)
		m.RandNorm(r, 1)
		x := NewVec(cols)
		mask := make([]bool, cols)
		var idx []int
		for i := range x {
			x[i] = r.NormFloat32()
			if r.Float64() < 0.5 {
				mask[i] = true
				idx = append(idx, i)
			}
		}
		a := MaskedMatVecCols(m, x, mask, nil)
		b := MatVecSparse(m, x, idx, nil)
		for i := range a {
			if math.Abs(float64(a[i]-b[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(20)
		logits := NewVec(n)
		for i := range logits {
			logits[i] = r.NormFloat32() * 10
		}
		p := Softmax(logits, nil)
		var sum float64
		for _, x := range p {
			if x < 0 {
				return false
			}
			sum += float64(x)
		}
		return math.Abs(sum-1) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	logits := Vec{1, 2, 3}
	shifted := Vec{101, 102, 103}
	a := Softmax(logits, nil)
	b := Softmax(shifted, nil)
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > 1e-5 {
			t.Fatalf("softmax not shift invariant: %v vs %v", a, b)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp(Vec{0, 0})
	if math.Abs(got-math.Log(2)) > 1e-6 {
		t.Fatalf("LogSumExp = %v", got)
	}
	// Large values must not overflow.
	got = LogSumExp(Vec{1000, 1000})
	if math.Abs(got-(1000+math.Log(2))) > 1e-3 {
		t.Fatalf("LogSumExp overflow: %v", got)
	}
}

func TestSiLU(t *testing.T) {
	if SiLU(0) != 0 {
		t.Fatal("SiLU(0) != 0")
	}
	if got := SiLU(10); math.Abs(float64(got)-10) > 1e-3 {
		t.Fatalf("SiLU(10) = %v, want ~10", got)
	}
	if got := SiLU(-10); math.Abs(float64(got)) > 1e-3 {
		t.Fatalf("SiLU(-10) = %v, want ~0", got)
	}
	// Gradient check against finite differences.
	for _, x := range []float32{-3, -1, -0.1, 0, 0.1, 1, 3} {
		const h = 1e-3
		num := (SiLU(x+h) - SiLU(x-h)) / (2 * h)
		if math.Abs(float64(num-SiLUGrad(x))) > 1e-2 {
			t.Fatalf("SiLUGrad(%v) = %v, finite diff %v", x, SiLUGrad(x), num)
		}
	}
}

func TestReLU(t *testing.T) {
	if ReLU(-1) != 0 || ReLU(2) != 2 {
		t.Fatal("ReLU wrong")
	}
	if ReLUGrad(-1) != 0 || ReLUGrad(2) != 1 {
		t.Fatal("ReLUGrad wrong")
	}
}

func TestTopKIndicesExact(t *testing.T) {
	score := Vec{5, 1, 9, 3, 7}
	idx := TopKIndices(score, 2)
	seen := map[int]bool{}
	for _, i := range idx {
		seen[i] = true
	}
	if !seen[2] || !seen[4] || len(idx) != 2 {
		t.Fatalf("TopKIndices = %v, want {2,4}", idx)
	}
}

func TestTopKIndicesEdgeCases(t *testing.T) {
	if got := TopKIndices(Vec{1, 2}, 0); len(got) != 0 {
		t.Fatalf("k=0 should give empty, got %v", got)
	}
	if got := TopKIndices(Vec{1, 2}, 5); len(got) != 2 {
		t.Fatalf("k>n should give all, got %v", got)
	}
	if got := TopKIndices(Vec{}, 3); len(got) != 0 {
		t.Fatalf("empty input: %v", got)
	}
}

func TestTopKIndicesTiesDeterministic(t *testing.T) {
	score := Vec{1, 1, 1, 1}
	a := TopKIndices(score, 2)
	b := TopKIndices(score, 2)
	am := map[int]bool{}
	for _, i := range a {
		am[i] = true
	}
	for _, i := range b {
		if !am[i] {
			t.Fatalf("tie-breaking not deterministic: %v vs %v", a, b)
		}
	}
	// Lower indices win ties.
	if !am[0] || !am[1] {
		t.Fatalf("expected indices 0,1 to win ties, got %v", a)
	}
}

// Property: TopKIndices returns exactly the k largest values (as a multiset).
func TestTopKIndicesMatchesSort(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(50)
		k := r.Intn(n + 1)
		score := NewVec(n)
		for i := range score {
			score[i] = r.NormFloat32()
		}
		idx := TopKIndices(score, k)
		if len(idx) != k {
			return false
		}
		order := ArgsortDesc(score)
		want := map[int]bool{}
		for _, i := range order[:k] {
			want[i] = true
		}
		for _, i := range idx {
			if !want[i] {
				// Allow equal-value swaps.
				minKept := float32(math.Inf(1))
				for _, w := range order[:k] {
					if score[w] < minKept {
						minKept = score[w]
					}
				}
				if score[i] != minKept {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKAbsMask(t *testing.T) {
	mask := TopKAbsMask(Vec{-5, 1, 3, -2}, 2, nil)
	if !mask[0] || !mask[2] || mask[1] || mask[3] {
		t.Fatalf("TopKAbsMask = %v", mask)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float32{1, 2, 3, 4, 5}
	if got := Quantile(vals, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(vals, 1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(vals, 0.5); got != 3 {
		t.Fatalf("q0.5 = %v", got)
	}
	if got := Quantile(vals, 0.25); got != 2 {
		t.Fatalf("q0.25 = %v", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	// Input must not be modified.
	vals2 := []float32{3, 1, 2}
	Quantile(vals2, 0.5)
	if vals2[0] != 3 || vals2[1] != 1 {
		t.Fatal("Quantile modified its input")
	}
}

func TestHistogram(t *testing.T) {
	counts, edges := Histogram([]float32{0.1, 0.2, 0.9, -5, 99}, 2, 0, 1)
	if len(edges) != 3 {
		t.Fatalf("edges = %v", edges)
	}
	if counts[0] != 3 || counts[1] != 2 { // -5 clamps low, 99 clamps high
		t.Fatalf("counts = %v", counts)
	}
}

func TestLogitExpitInverse(t *testing.T) {
	for _, p := range []float64{0.01, 0.3, 0.5, 0.77, 0.99} {
		if got := Expit(Logit(p)); math.Abs(got-p) > 1e-9 {
			t.Fatalf("Expit(Logit(%v)) = %v", p, got)
		}
	}
	// Clamping prevents infinities.
	if math.IsInf(Logit(0), 0) || math.IsInf(Logit(1), 0) {
		t.Fatal("Logit should clamp extremes")
	}
}

func TestArgsortDesc(t *testing.T) {
	idx := ArgsortDesc(Vec{1, 3, 2})
	if idx[0] != 1 || idx[1] != 2 || idx[2] != 0 {
		t.Fatalf("ArgsortDesc = %v", idx)
	}
}
