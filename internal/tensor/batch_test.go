package tensor

import (
	"testing"

	"repro/internal/parallel"
)

// batchOf packs B vectors as the columns of a Mat (the multi-RHS layout).
func batchOf(vecs []Vec) *Mat {
	n := len(vecs[0])
	m := NewMat(n, len(vecs))
	for b, v := range vecs {
		m.SetCol(b, v)
	}
	return m
}

func randVecs(rng *RNG, B, n int, zeroFrac float64) []Vec {
	vs := make([]Vec, B)
	for b := range vs {
		v := NewVec(n)
		for i := range v {
			v[i] = rng.NormFloat32()
			if zeroFrac > 0 && rng.Float64() < zeroFrac {
				v[i] = 0
			}
		}
		vs[b] = v
	}
	return vs
}

// The batched kernels' whole contract: each output column must be
// bit-for-bit equal to an independent single-RHS call — including masked
// and sparse variants with differing per-column masks/unit lists, at sizes
// on both sides of the parallel cutoff, for any worker count.
func TestBatchKernelsMatchSingleRHSBitForBit(t *testing.T) {
	defer parallel.SetProcs(parallel.Procs())
	shapes := []struct{ rows, cols, B int }{
		{5, 3, 1},
		{17, 9, 3},
		{64, 48, 8},   // below the cutoff at B=1, above fused
		{256, 192, 4}, // above the cutoff even single-RHS
	}
	for _, procs := range []int{1, 8} {
		parallel.SetProcs(procs)
		for _, sh := range shapes {
			rng := NewRNG(uint64(sh.rows*1000 + sh.B))
			m := NewMat(sh.rows, sh.cols)
			m.RandNorm(rng, 1)
			xs := randVecs(rng, sh.B, sh.cols, 0.2) // exact zeros exercise skips
			ys := randVecs(rng, sh.B, sh.rows, 0.2)

			// MatVecBatch.
			got := MatVecBatch(m, batchOf(xs), nil)
			for b, x := range xs {
				want := MatVec(m, x, nil)
				for i := range want {
					if got.At(i, b) != want[i] {
						t.Fatalf("procs=%d %dx%dxB%d MatVecBatch[%d,%d] = %v, single %v",
							procs, sh.rows, sh.cols, sh.B, i, b, got.At(i, b), want[i])
					}
				}
			}

			// MatTVecBatch (accumulating form: seed outputs with garbage).
			acc := NewMat(sh.cols, sh.B)
			wantAcc := make([]Vec, sh.B)
			for b := 0; b < sh.B; b++ {
				for j := 0; j < sh.cols; j++ {
					acc.Set(j, b, float32(j%7)-3)
				}
				wantAcc[b] = acc.Col(b, nil)
			}
			MatTVecBatch(m, batchOf(ys), acc)
			for b, y := range ys {
				MatTVec(m, y, wantAcc[b])
				for j := range wantAcc[b] {
					if acc.At(j, b) != wantAcc[b][j] {
						t.Fatalf("procs=%d MatTVecBatch[%d,%d] = %v, single %v",
							procs, j, b, acc.At(j, b), wantAcc[b][j])
					}
				}
			}

			// MaskedMatVecColsBatch with a different mask per column.
			masks := make([][]bool, sh.B)
			for b := range masks {
				masks[b] = make([]bool, sh.cols)
				for j := range masks[b] {
					masks[b][j] = rng.Float64() < 0.5
				}
			}
			gotM := MaskedMatVecColsBatch(m, batchOf(xs), masks, nil)
			for b, x := range xs {
				want := MaskedMatVecCols(m, x, masks[b], nil)
				for i := range want {
					if gotM.At(i, b) != want[i] {
						t.Fatalf("procs=%d MaskedMatVecColsBatch[%d,%d] = %v, single %v",
							procs, i, b, gotM.At(i, b), want[i])
					}
				}
			}

			// MatVecSparseBatch with a different unit list per column
			// (different lengths and orders, too).
			idxs := make([][]int, sh.B)
			for b := range idxs {
				k := 1 + int(rng.Float64()*float64(sh.cols-1))
				perm := rng.Perm(sh.cols)
				idxs[b] = perm[:k]
			}
			gotS := MatVecSparseBatch(m, batchOf(xs), idxs, nil, nil)
			for b, x := range xs {
				want := MatVecSparse(m, x, idxs[b], nil)
				for i := range want {
					if gotS.At(i, b) != want[i] {
						t.Fatalf("procs=%d MatVecSparseBatch[%d,%d] = %v, single %v",
							procs, i, b, gotS.At(i, b), want[i])
					}
				}
			}
		}
	}
}

// Batched kernels must also agree with themselves across worker counts
// (the blocked ranges change, the accumulation order must not).
func TestBatchKernelsDeterministicAcrossWorkerCounts(t *testing.T) {
	defer parallel.SetProcs(parallel.Procs())
	rng := NewRNG(99)
	m := NewMat(256, 192)
	m.RandNorm(rng, 1)
	xs := batchOf(randVecs(rng, 8, 192, 0))

	parallel.SetProcs(1)
	serial := MatVecBatch(m, xs, nil)
	parallel.SetProcs(8)
	par := MatVecBatch(m, xs, nil)
	for i := range serial.Data {
		if serial.Data[i] != par.Data[i] {
			t.Fatalf("MatVecBatch element %d differs across worker counts: %v vs %v",
				i, serial.Data[i], par.Data[i])
		}
	}
}

// TopKIndicesInto must return the same indices in the same order as
// TopKIndices — the order feeds sparse accumulation and cache access, so
// it is part of the bit-for-bit contract, not a nicety.
func TestTopKIndicesIntoMatchesTopKIndices(t *testing.T) {
	rng := NewRNG(7)
	var scratch TopKScratch
	var idx []int
	for _, n := range []int{1, 5, 64, 192} {
		score := NewVec(n)
		for i := range score {
			score[i] = rng.NormFloat32()
			if i%5 == 0 && i > 0 {
				score[i] = score[i-1] // exercise tie-breaking
			}
		}
		for _, k := range []int{0, 1, n / 2, n - 1, n, n + 3} {
			want := TopKIndices(score, k)
			idx = TopKIndicesInto(score, k, &scratch, idx)
			if len(idx) != len(want) {
				t.Fatalf("n=%d k=%d: Into returned %d indices, want %d", n, k, len(idx), len(want))
			}
			for i := range want {
				if idx[i] != want[i] {
					t.Fatalf("n=%d k=%d: index %d is %d, want %d (order matters)", n, k, i, idx[i], want[i])
				}
			}
		}
	}
}

func TestReuseMatAndGrowAndAddColTo(t *testing.T) {
	m := NewMat(3, 2)
	if ReuseMat(m, 3, 2) != m {
		t.Fatal("ReuseMat reallocated a matching matrix")
	}
	if got := ReuseMat(m, 2, 3); got != m || got.Rows != 2 || got.Cols != 3 {
		t.Fatal("ReuseMat must reshape in place over a sufficient backing array")
	}
	if got := ReuseMat(m, 4, 4); got == m || got.Rows != 4 || got.Cols != 4 {
		t.Fatal("ReuseMat must reallocate when the backing array is too small")
	}
	if ReuseMat(nil, 1, 1) == nil {
		t.Fatal("ReuseMat(nil) must allocate")
	}

	v := NewVec(8)
	if got := Grow(v, 4); cap(got) != cap(v) || len(got) != 4 {
		t.Fatalf("Grow shrink reallocated: len %d cap %d", len(got), cap(got))
	}
	if got := Grow(v, 16); len(got) != 16 {
		t.Fatalf("Grow extend returned len %d", len(got))
	}

	m = NewMat(3, 2)
	m.Set(0, 1, 2)
	m.Set(1, 1, 3)
	m.Set(2, 1, 5)
	dst := Vec{10, 20, 30}
	m.AddColTo(1, dst)
	if dst[0] != 12 || dst[1] != 23 || dst[2] != 35 {
		t.Fatalf("AddColTo = %v", dst)
	}
}
