// Package tensor provides the minimal dense linear-algebra substrate used
// by the rest of the repository: float32 vectors and row-major matrices,
// a deterministic seeded random number generator, and the reductions and
// selection routines (top-k, quantiles) that the sparsity schemes build on.
//
// Everything is pure Go and single-allocation-conscious: matvec and the
// masked variants are the inner loops of both training and the hardware
// simulator, so they avoid bounds-check-hostile patterns and interface
// indirection.
package tensor

import "math"

// RNG is a PCG-XSH-RR 64/32 pseudo-random generator. It is deterministic
// for a given seed across platforms, which the experiment drivers rely on
// to make every table and figure reproducible bit-for-bit.
type RNG struct {
	state uint64
	inc   uint64
	// cached spare normal variate for Box-Muller
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{inc: (seed << 1) | 1}
	r.state = seed + 0x9E3779B97F4A7C15
	r.Uint32()
	r.state += seed
	r.Uint32()
	return r
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method.
	bound := uint32(n)
	threshold := -bound % bound
	for {
		x := r.Uint32()
		m := uint64(x) * uint64(bound)
		if uint32(m) >= threshold {
			return int(m >> 32)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint32()>>8) / (1 << 24)
}

// Norm returns a standard normal variate via Box-Muller.
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	mul := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * mul
	r.hasSpare = true
	return u * mul
}

// NormFloat32 returns a standard normal variate as float32.
func (r *RNG) NormFloat32() float32 { return float32(r.Norm()) }

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split returns a new generator whose stream is independent of r's, derived
// from r's state plus a salt. Used to give each model component its own
// stream so adding a component never perturbs another's initialization.
func (r *RNG) Split(salt uint64) *RNG {
	return NewRNG(r.Uint64() ^ (salt * 0x9E3779B97F4A7C15))
}
