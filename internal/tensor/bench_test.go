package tensor

import "testing"

// Kernel micro-benchmarks: these are the inner loops of training, sparse
// inference and the simulator; regressions here slow every experiment.

func benchMat(rows, cols int) (*Mat, Vec) {
	rng := NewRNG(1)
	m := NewMat(rows, cols)
	m.RandNorm(rng, 1)
	x := NewVec(cols)
	for i := range x {
		x[i] = rng.NormFloat32()
	}
	return m, x
}

func BenchmarkMatVec192x64(b *testing.B) {
	m, x := benchMat(192, 64)
	out := NewVec(192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVec(m, x, out)
	}
}

func BenchmarkMatVecSparseHalf(b *testing.B) {
	m, x := benchMat(192, 64)
	idx := make([]int, 32)
	for i := range idx {
		idx[i] = i * 2
	}
	out := NewVec(192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVecSparse(m, x, idx, out)
	}
}

func BenchmarkMatTVec192x64(b *testing.B) {
	m, _ := benchMat(192, 64)
	y := NewVec(192)
	for i := range y {
		y[i] = float32(i%5) - 2
	}
	out := NewVec(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Zero()
		MatTVec(m, y, out)
	}
}

func BenchmarkTopK64of192(b *testing.B) {
	rng := NewRNG(2)
	score := NewVec(192)
	for i := range score {
		score[i] = rng.NormFloat32()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopKIndices(score, 64)
	}
}

func BenchmarkSoftmax39(b *testing.B) {
	rng := NewRNG(3)
	logits := NewVec(39)
	for i := range logits {
		logits[i] = rng.NormFloat32() * 4
	}
	out := NewVec(39)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Softmax(logits, out)
	}
}

func BenchmarkAddOuter(b *testing.B) {
	m, x := benchMat(192, 64)
	y := NewVec(192)
	for i := range y {
		y[i] = float32(i%3) - 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddOuter(m, 1e-6, y, x)
	}
}
