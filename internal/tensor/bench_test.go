package tensor

import "testing"

// Kernel micro-benchmarks: these are the inner loops of training, sparse
// inference and the simulator; regressions here slow every experiment.

func benchMat(rows, cols int) (*Mat, Vec) {
	rng := NewRNG(1)
	m := NewMat(rows, cols)
	m.RandNorm(rng, 1)
	x := NewVec(cols)
	for i := range x {
		x[i] = rng.NormFloat32()
	}
	return m, x
}

func BenchmarkMatVec192x64(b *testing.B) {
	m, x := benchMat(192, 64)
	out := NewVec(192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVec(m, x, out)
	}
}

func BenchmarkMatVecSparseHalf(b *testing.B) {
	m, x := benchMat(192, 64)
	idx := make([]int, 32)
	for i := range idx {
		idx[i] = i * 2
	}
	out := NewVec(192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVecSparse(m, x, idx, out)
	}
}

func BenchmarkMatTVec192x64(b *testing.B) {
	m, _ := benchMat(192, 64)
	y := NewVec(192)
	for i := range y {
		y[i] = float32(i%5) - 2
	}
	out := NewVec(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Zero()
		MatTVec(m, y, out)
	}
}

// benchBatch builds a B-wide multi-RHS batch for the batched kernels.
func benchBatch(rows, cols, B int) (*Mat, *Mat) {
	rng := NewRNG(4)
	m := NewMat(rows, cols)
	m.RandNorm(rng, 1)
	xs := NewMat(cols, B)
	xs.RandNorm(rng, 1)
	return m, xs
}

// BenchmarkMatVecBatch8 is the fused kernel at batch 8; compare against
// BenchmarkMatVecBatch8Unfused, which issues the same work as 8 single-RHS
// calls (the serving engine's unfused tick shape).
func BenchmarkMatVecBatch8(b *testing.B) {
	m, xs := benchBatch(192, 64, 8)
	out := NewMat(192, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVecBatch(m, xs, out)
	}
}

func BenchmarkMatVecBatch8Unfused(b *testing.B) {
	m, _ := benchBatch(192, 64, 8)
	cols := make([]Vec, 8)
	outs := make([]Vec, 8)
	rng := NewRNG(5)
	for i := range cols {
		cols[i] = NewVec(64)
		for j := range cols[i] {
			cols[i][j] = rng.NormFloat32()
		}
		outs[i] = NewVec(192)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := range cols {
			MatVec(m, cols[c], outs[c])
		}
	}
}

// BenchmarkMatVecSparseBatch8 fuses 8 half-density sparse products with
// differing per-column unit lists — the DIP serving hot path.
func BenchmarkMatVecSparseBatch8(b *testing.B) {
	m, xs := benchBatch(192, 64, 8)
	idxs := make([][]int, 8)
	for bi := range idxs {
		idxs[bi] = make([]int, 32)
		for i := range idxs[bi] {
			idxs[bi][i] = (i*2 + bi) % 64
		}
	}
	out := NewMat(192, 8)
	var scratch SparseBatchScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVecSparseBatch(m, xs, idxs, out, &scratch)
	}
}

// BenchmarkMaskedMatVecColsBatch8 is the masked variant with per-column
// masks.
func BenchmarkMaskedMatVecColsBatch8(b *testing.B) {
	m, xs := benchBatch(192, 64, 8)
	masks := make([][]bool, 8)
	for bi := range masks {
		masks[bi] = make([]bool, 64)
		for j := range masks[bi] {
			masks[bi][j] = (j+bi)%2 == 0
		}
	}
	out := NewMat(192, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaskedMatVecColsBatch(m, xs, masks, out)
	}
}

// BenchmarkMatTVecBatch8 is the fused transpose product at batch 8.
func BenchmarkMatTVecBatch8(b *testing.B) {
	m, _ := benchBatch(192, 64, 8)
	xs := NewMat(192, 8)
	xs.RandNorm(NewRNG(6), 1)
	out := NewMat(64, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Zero()
		MatTVecBatch(m, xs, out)
	}
}

func BenchmarkTopK64of192(b *testing.B) {
	rng := NewRNG(2)
	score := NewVec(192)
	for i := range score {
		score[i] = rng.NormFloat32()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopKIndices(score, 64)
	}
}

func BenchmarkSoftmax39(b *testing.B) {
	rng := NewRNG(3)
	logits := NewVec(39)
	for i := range logits {
		logits[i] = rng.NormFloat32() * 4
	}
	out := NewVec(39)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Softmax(logits, out)
	}
}

func BenchmarkAddOuter(b *testing.B) {
	m, x := benchMat(192, 64)
	y := NewVec(192)
	for i := range y {
		y[i] = float32(i%3) - 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddOuter(m, 1e-6, y, x)
	}
}
