package tensor

import (
	"fmt"
	"math"

	"repro/internal/parallel"
)

// parallelFlops is the scalar-multiply count below which the matrix kernels
// stay on the caller's goroutine. Blocked-range parallel execution only pays
// for itself on genuinely large operations; the miniature analog matrices
// (≤ ~12k flops per matvec) always take the serial path, keeping the hot
// per-token loops free of scheduling overhead. Each parallel block gets at
// least this much work, so results are bit-identical to serial execution:
// every output element is produced by the same accumulation order regardless
// of worker count.
const parallelFlops = 1 << 15

// rowGrain returns the minimum rows per parallel block so one block carries
// at least parallelFlops scalar multiplies.
func rowGrain(cols int) int {
	if cols < 1 {
		return parallelFlops
	}
	g := parallelFlops / cols
	if g < 1 {
		g = 1
	}
	return g
}

// Vec is a dense float32 vector.
type Vec []float32

// NewVec returns a zeroed vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Reuse returns v when it already has length n, else a fresh zeroed vector.
// The shared reuse-or-allocate idiom of every scratch buffer in the repo;
// contents of a reused v are unspecified — callers must overwrite or Zero.
func Reuse(v Vec, n int) Vec {
	if len(v) != n {
		return NewVec(n)
	}
	return v
}

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Zero sets every element of v to 0.
func (v Vec) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every element of v to x.
func (v Vec) Fill(x float32) {
	for i := range v {
		v[i] = x
	}
}

// Add accumulates w into v element-wise. Lengths must match.
func (v Vec) Add(w Vec) {
	if len(v) != len(w) {
		panic("tensor: Vec.Add length mismatch")
	}
	for i := range v {
		v[i] += w[i]
	}
}

// AddScaled accumulates alpha*w into v.
func (v Vec) AddScaled(alpha float32, w Vec) {
	if len(v) != len(w) {
		panic("tensor: Vec.AddScaled length mismatch")
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
}

// Scale multiplies every element of v by alpha.
func (v Vec) Scale(alpha float32) {
	for i := range v {
		v[i] *= alpha
	}
}

// Dot returns the inner product of v and w.
func (v Vec) Dot(w Vec) float32 {
	if len(v) != len(w) {
		panic("tensor: Vec.Dot length mismatch")
	}
	var s float32
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vec) Norm2() float32 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return float32(math.Sqrt(s))
}

// MaxAbs returns the maximum absolute value in v (the L∞ norm). It returns
// 0 for an empty vector.
func (v Vec) MaxAbs() float32 {
	var m float32
	for _, x := range v {
		a := x
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of the elements of v in float64 precision.
func (v Vec) Sum() float64 {
	var s float64
	for _, x := range v {
		s += float64(x)
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty vector.
func (v Vec) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// Mat is a dense row-major matrix with Rows x Cols elements.
type Mat struct {
	Rows, Cols int
	Data       []float32
}

// NewMat returns a zeroed Rows x Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("tensor: NewMat with negative dimension")
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// NewMatFrom wraps data (length rows*cols) without copying.
func NewMatFrom(rows, cols int, data []float32) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: NewMatFrom data length %d != %d*%d", len(data), rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, x float32) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Mat) Row(i int) Vec { return Vec(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Col copies column j into dst (allocating if dst is nil) and returns it.
func (m *Mat) Col(j int, dst Vec) Vec {
	if dst == nil {
		dst = NewVec(m.Rows)
	}
	if len(dst) != m.Rows {
		panic("tensor: Mat.Col dst length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Data[i*m.Cols+j]
	}
	return dst
}

// SetCol writes src into column j.
func (m *Mat) SetCol(j int, src Vec) {
	if len(src) != m.Rows {
		panic("tensor: Mat.SetCol src length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] = src[i]
	}
}

// T returns the transpose of m as a new matrix.
func (m *Mat) T() *Mat {
	out := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range row {
			out.Data[j*m.Rows+i] = x
		}
	}
	return out
}

// RandNorm fills m with N(0, std²) values from rng.
func (m *Mat) RandNorm(rng *RNG, std float32) {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat32() * std
	}
}

// MatVec computes out = m · x where x has length m.Cols and out has length
// m.Rows. out is allocated when nil.
func MatVec(m *Mat, x Vec, out Vec) Vec {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: MatVec x length %d != cols %d", len(x), m.Cols))
	}
	if out == nil {
		out = NewVec(m.Rows)
	}
	if len(out) != m.Rows {
		panic("tensor: MatVec out length mismatch")
	}
	if m.Rows*m.Cols <= parallelFlops {
		matVecRange(m, x, out, 0, m.Rows)
		return out
	}
	parallel.For(m.Rows, rowGrain(m.Cols), func(lo, hi int) {
		matVecRange(m, x, out, lo, hi)
	})
	return out
}

func matVecRange(m *Mat, x, out Vec, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float32
		for j, w := range row {
			s += w * x[j]
		}
		out[i] = s
	}
}

// MatTVec computes out = mᵀ · x where x has length m.Rows and out has
// length m.Cols. out is allocated when nil, and is NOT zeroed when
// provided — callers that reuse buffers must zero first. This accumulate
// form is what backprop needs (dL/dx += Wᵀ dL/dy).
func MatTVec(m *Mat, x Vec, out Vec) Vec {
	if len(x) != m.Rows {
		panic("tensor: MatTVec x length mismatch")
	}
	if out == nil {
		out = NewVec(m.Cols)
	}
	if len(out) != m.Cols {
		panic("tensor: MatTVec out length mismatch")
	}
	if m.Rows*m.Cols <= parallelFlops {
		matTVecRange(m, x, out, 0, m.Cols)
		return out
	}
	// Parallelize over disjoint column ranges: each out[j] still accumulates
	// contributions in ascending-row order, so results match serial exactly.
	grain := rowGrain(m.Rows)
	parallel.For(m.Cols, grain, func(jlo, jhi int) {
		matTVecRange(m, x, out, jlo, jhi)
	})
	return out
}

func matTVecRange(m *Mat, x, out Vec, jlo, jhi int) {
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols+jlo : i*m.Cols+jhi]
		o := out[jlo:jhi]
		for j, w := range row {
			o[j] += w * xi
		}
	}
}

// AddOuter accumulates alpha * a bᵀ into m, where a has length m.Rows and b
// has length m.Cols. This is the weight-gradient update dW += dy xᵀ.
func AddOuter(m *Mat, alpha float32, a, b Vec) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic("tensor: AddOuter dimension mismatch")
	}
	if m.Rows*m.Cols <= parallelFlops {
		addOuterRange(m, alpha, a, b, 0, m.Rows)
		return
	}
	parallel.For(m.Rows, rowGrain(m.Cols), func(lo, hi int) {
		addOuterRange(m, alpha, a, b, lo, hi)
	})
}

func addOuterRange(m *Mat, alpha float32, a, b Vec, lo, hi int) {
	for i := lo; i < hi; i++ {
		ai := alpha * a[i]
		if ai == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			row[j] += ai * b[j]
		}
	}
}

// MatMul returns a·b for a (n×k) and b (k×m).
func MatMul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic("tensor: MatMul inner dimension mismatch")
	}
	out := NewMat(a.Rows, b.Cols)
	work := a.Rows * a.Cols * b.Cols
	if work <= parallelFlops {
		matMulRange(a, b, out, 0, a.Rows)
		return out
	}
	parallel.For(a.Rows, rowGrain(a.Cols*b.Cols), func(lo, hi int) {
		matMulRange(a, b, out, lo, hi)
	})
	return out
}

func matMulRange(a, b, out *Mat, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MaskedMatVecCols computes out = m~ · x where m~ keeps only the columns j
// with active[j] true (equivalently, skips input coordinates whose column
// was pruned). This is the W~ x product at the heart of every dynamic
// sparsity scheme (Eq. 3 of the paper).
func MaskedMatVecCols(m *Mat, x Vec, active []bool, out Vec) Vec {
	if len(x) != m.Cols || len(active) != m.Cols {
		panic("tensor: MaskedMatVecCols dimension mismatch")
	}
	if out == nil {
		out = NewVec(m.Rows)
	}
	if m.Rows*m.Cols <= parallelFlops {
		maskedMatVecColsRange(m, x, active, out, 0, m.Rows)
		return out
	}
	parallel.For(m.Rows, rowGrain(m.Cols), func(lo, hi int) {
		maskedMatVecColsRange(m, x, active, out, lo, hi)
	})
	return out
}

func maskedMatVecColsRange(m *Mat, x Vec, active []bool, out Vec, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float32
		for j, w := range row {
			if active[j] {
				s += w * x[j]
			}
		}
		out[i] = s
	}
}

// MatVecSparse computes out = m · x using only the input coordinates listed
// in idx (x's other coordinates are treated as pruned). idx must be a list
// of valid column indices; duplicates are summed twice and are a caller bug.
func MatVecSparse(m *Mat, x Vec, idx []int, out Vec) Vec {
	if out == nil {
		out = NewVec(m.Rows)
	}
	if len(out) != m.Rows {
		panic("tensor: MatVecSparse out length mismatch")
	}
	out.Zero()
	if m.Rows*len(idx) <= parallelFlops {
		matVecSparseRange(m, x, idx, out, 0, m.Rows)
		return out
	}
	parallel.For(m.Rows, rowGrain(len(idx)), func(lo, hi int) {
		matVecSparseRange(m, x, idx, out, lo, hi)
	})
	return out
}

func matVecSparseRange(m *Mat, x Vec, idx []int, out Vec, lo, hi int) {
	for _, j := range idx {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for i := lo; i < hi; i++ {
			out[i] += m.Data[i*m.Cols+j] * xj
		}
	}
}
