package tensor

import (
	"testing"

	"repro/internal/parallel"
)

// Kernel results must be bit-identical for any worker count: each output
// element is produced by the same accumulation order regardless of how the
// row/column range is blocked. The sizes here exceed parallelFlops so the
// parallel path actually engages.
func TestKernelsBitIdenticalAcrossProcs(t *testing.T) {
	defer parallel.SetProcs(parallel.Procs())
	rng := NewRNG(42)
	const rows, cols = 300, 256 // rows*cols > parallelFlops
	m := NewMat(rows, cols)
	m.RandNorm(rng, 1)
	x := NewVec(cols)
	xr := NewVec(rows)
	for i := range x {
		x[i] = rng.NormFloat32()
	}
	for i := range xr {
		xr[i] = rng.NormFloat32()
	}
	idx := rng.Perm(cols)[:cols/2]
	active := make([]bool, cols)
	for i := range active {
		active[i] = rng.Float64() < 0.5
	}
	b := NewMat(cols, rows)
	b.RandNorm(rng, 1)

	type result struct {
		mv, mtv, mmv, sp Vec
		outer            *Mat
		mm               *Mat
	}
	run := func(procs int) result {
		parallel.SetProcs(procs)
		var r result
		r.mv = MatVec(m, x, nil)
		r.mtv = MatTVec(m, xr, nil)
		r.mmv = MaskedMatVecCols(m, x, active, nil)
		r.sp = MatVecSparse(m, x, idx, nil)
		r.outer = m.Clone()
		AddOuter(r.outer, 0.5, xr, x)
		r.mm = MatMul(m, b)
		return r
	}
	serial := run(1)
	for _, procs := range []int{2, 4, 7} {
		par := run(procs)
		checkVec := func(name string, a, b Vec) {
			t.Helper()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("procs=%d: %s[%d] = %v != serial %v", procs, name, i, b[i], a[i])
				}
			}
		}
		checkVec("MatVec", serial.mv, par.mv)
		checkVec("MatTVec", serial.mtv, par.mtv)
		checkVec("MaskedMatVecCols", serial.mmv, par.mmv)
		checkVec("MatVecSparse", serial.sp, par.sp)
		checkVec("AddOuter", Vec(serial.outer.Data), Vec(par.outer.Data))
		checkVec("MatMul", Vec(serial.mm.Data), Vec(par.mm.Data))
	}
}

func TestQuantileMatchesSortReference(t *testing.T) {
	rng := NewRNG(7)
	cases := [][]float32{
		{3},
		{1, 2},
		{5, 5, 5, 5, 5}, // equal runs must not degrade quickselect
		{0, 0, 0, 1, 2, 0, 0},
	}
	big := make([]float32, 4001)
	for i := range big {
		big[i] = rng.NormFloat32()
	}
	cases = append(cases, big)
	zeros := make([]float32, 2000) // ReLU-style zero spike
	for i := range zeros[:200] {
		zeros[i] = rng.NormFloat32()
	}
	cases = append(cases, zeros)
	for ci, vals := range cases {
		for _, q := range []float64{0, 0.001, 0.25, 0.5, 0.77, 0.999, 1} {
			got := Quantile(vals, q)
			want := sortQuantileRef(vals, q)
			if got != want {
				t.Fatalf("case %d q=%v: Quantile=%v, sort reference=%v", ci, q, got, want)
			}
		}
	}
}

// sortQuantileRef is the original sort-based implementation, kept as the
// reference the quickselect version must match bit-for-bit.
func sortQuantileRef(values []float32, q float64) float32 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float32, len(values))
	copy(sorted, values)
	for i := 1; i < len(sorted); i++ { // insertion sort: reference only
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := float32(pos - float64(lo))
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
