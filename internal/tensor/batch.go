package tensor

import (
	"fmt"

	"repro/internal/parallel"
)

// Multi-RHS (batched) kernels: each takes B input vectors packed as the
// columns of a Mat and walks every weight row once, accumulating into B
// outputs. The batch layout is column-per-vector — a Mat with Rows equal to
// the vector length and Cols equal to the batch width B, so row j holds the
// B sessions' j-th coordinates contiguously, which is exactly the stride the
// fused inner loops want.
//
// Determinism contract: every output column is produced by the same
// floating-point accumulation order as the corresponding single-RHS kernel,
// so a batched call is bit-for-bit equal to B independent single-RHS calls
// (enforced by TestBatchKernelsMatchSingleRHSBitForBit). The parallel
// cutoff follows the single-RHS rule with the flop count scaled by B:
// blocked ranges split output rows only, never the accumulation order.

// ReuseMat returns m reshaped to rows × cols, reallocating only when the
// backing array is too small. The Mat analogue of Reuse, plus in-place
// reshape: a batch arena whose width follows a draining batch keeps one
// backing array instead of reallocating on every width change. Contents of
// a reused m are unspecified — callers must overwrite or Zero.
func ReuseMat(m *Mat, rows, cols int) *Mat {
	if m == nil {
		return NewMat(rows, cols)
	}
	if m.Rows == rows && m.Cols == cols {
		return m
	}
	if cap(m.Data) < rows*cols {
		return NewMat(rows, cols)
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:rows*cols]
	return m
}

// Grow returns v truncated or extended to length n, reallocating only when
// the capacity is insufficient. Unlike Reuse it keeps one backing array
// across calls with varying n — the shape of per-step score buffers whose
// length follows a growing KV history. Contents are unspecified.
func Grow(v Vec, n int) Vec { return grow(v, n) }

// grow is the generic reuse-if-capacity-suffices helper behind Grow (and
// the scratch index buffers of TopKIndicesInto).
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// AddColTo accumulates column j of m into dst (dst[i] += m[i][j]) — the
// batched residual-stream update, reading one strided column without
// materializing it.
func (m *Mat) AddColTo(j int, dst Vec) {
	if len(dst) != m.Rows {
		panic("tensor: Mat.AddColTo dst length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] += m.Data[i*m.Cols+j]
	}
}

// MatVecBatch computes out = m · xs for all B columns of xs at once. xs is
// m.Cols × B (column b = right-hand side b) and out is m.Rows × B
// (allocated when nil). Each weight row is walked once, accumulating into
// the B outputs in ascending-column order — bit-identical to B MatVec calls.
func MatVecBatch(m *Mat, xs *Mat, out *Mat) *Mat {
	if xs.Rows != m.Cols {
		panic(fmt.Sprintf("tensor: MatVecBatch xs rows %d != cols %d", xs.Rows, m.Cols))
	}
	B := xs.Cols
	if out == nil {
		out = NewMat(m.Rows, B)
	}
	if out.Rows != m.Rows || out.Cols != B {
		panic("tensor: MatVecBatch out shape mismatch")
	}
	if m.Rows*m.Cols*B <= parallelFlops {
		matVecBatchRange(m, xs, out, 0, m.Rows)
		return out
	}
	parallel.For(m.Rows, rowGrain(m.Cols*B), func(lo, hi int) {
		matVecBatchRange(m, xs, out, lo, hi)
	})
	return out
}

func matVecBatchRange(m, xs, out *Mat, lo, hi int) {
	B := xs.Cols
	for i := lo; i < hi; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*B : (i+1)*B]
		// Up to eight accumulators stay in registers across the row walk, so
		// each weight load feeds eight multiply-adds without a store per
		// element; the array-pointer view of the xs row drops the per-element
		// bounds checks. Per output the accumulation is still ascending j —
		// identical to MatVec.
		b := 0
		for ; b+8 <= B; b += 8 {
			var s0, s1, s2, s3, s4, s5, s6, s7 float32
			off := b
			for _, w := range row {
				xr := (*[8]float32)(xs.Data[off : off+8])
				s0 += w * xr[0]
				s1 += w * xr[1]
				s2 += w * xr[2]
				s3 += w * xr[3]
				s4 += w * xr[4]
				s5 += w * xr[5]
				s6 += w * xr[6]
				s7 += w * xr[7]
				off += B
			}
			orow[b], orow[b+1], orow[b+2], orow[b+3] = s0, s1, s2, s3
			orow[b+4], orow[b+5], orow[b+6], orow[b+7] = s4, s5, s6, s7
		}
		for ; b+4 <= B; b += 4 {
			var s0, s1, s2, s3 float32
			off := b
			for _, w := range row {
				xr := (*[4]float32)(xs.Data[off : off+4])
				s0 += w * xr[0]
				s1 += w * xr[1]
				s2 += w * xr[2]
				s3 += w * xr[3]
				off += B
			}
			orow[b], orow[b+1], orow[b+2], orow[b+3] = s0, s1, s2, s3
		}
		for ; b < B; b++ {
			var s float32
			off := b
			for _, w := range row {
				s += w * xs.Data[off]
				off += B
			}
			orow[b] = s
		}
	}
}

// MatTVecBatch computes out += mᵀ · xs for all B columns at once. xs is
// m.Rows × B and out is m.Cols × B (allocated when nil, NOT zeroed when
// provided — the accumulate form of MatTVec). Per output column the
// contributions arrive in ascending-row order with the same zero-input skip
// as the single-RHS kernel, so results are bit-identical to B MatTVec calls.
func MatTVecBatch(m *Mat, xs *Mat, out *Mat) *Mat {
	if xs.Rows != m.Rows {
		panic("tensor: MatTVecBatch xs rows mismatch")
	}
	B := xs.Cols
	if out == nil {
		out = NewMat(m.Cols, B)
	}
	if out.Rows != m.Cols || out.Cols != B {
		panic("tensor: MatTVecBatch out shape mismatch")
	}
	if m.Rows*m.Cols*B <= parallelFlops {
		matTVecBatchRange(m, xs, out, 0, m.Cols)
		return out
	}
	// Parallelize over disjoint output-row (weight-column) ranges, exactly
	// like MatTVec: each out[j][b] accumulates in ascending-row order.
	parallel.For(m.Cols, rowGrain(m.Rows*B), func(jlo, jhi int) {
		matTVecBatchRange(m, xs, out, jlo, jhi)
	})
	return out
}

func matTVecBatchRange(m, xs, out *Mat, jlo, jhi int) {
	B := xs.Cols
	for i := 0; i < m.Rows; i++ {
		xrow := xs.Data[i*B : (i+1)*B]
		row := m.Data[i*m.Cols+jlo : i*m.Cols+jhi]
		for jj, w := range row {
			orow := out.Data[(jlo+jj)*B : (jlo+jj+1)*B]
			for b, x := range xrow {
				if x == 0 {
					continue
				}
				orow[b] += w * x
			}
		}
	}
}

// MaskedMatVecColsBatch computes out = m~ · xs where each column b keeps
// only the input coordinates with active[b][j] true — B sessions' W~ x
// products with differing per-session masks, fused into one walk over the
// weight rows. active must hold B masks of length m.Cols. Bit-identical to
// B MaskedMatVecCols calls.
func MaskedMatVecColsBatch(m *Mat, xs *Mat, active [][]bool, out *Mat) *Mat {
	B := xs.Cols
	if xs.Rows != m.Cols || len(active) != B {
		panic("tensor: MaskedMatVecColsBatch dimension mismatch")
	}
	for _, a := range active {
		if len(a) != m.Cols {
			panic("tensor: MaskedMatVecColsBatch mask length mismatch")
		}
	}
	if out == nil {
		out = NewMat(m.Rows, B)
	}
	if out.Rows != m.Rows || out.Cols != B {
		panic("tensor: MaskedMatVecColsBatch out shape mismatch")
	}
	if m.Rows*m.Cols*B <= parallelFlops {
		maskedMatVecColsBatchRange(m, xs, active, out, 0, m.Rows)
		return out
	}
	parallel.For(m.Rows, rowGrain(m.Cols*B), func(lo, hi int) {
		maskedMatVecColsBatchRange(m, xs, active, out, lo, hi)
	})
	return out
}

func maskedMatVecColsBatchRange(m, xs *Mat, active [][]bool, out *Mat, lo, hi int) {
	B := xs.Cols
	for i := lo; i < hi; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*B : (i+1)*B]
		// Register-tile pairs of columns (masks differ per column, so each
		// accumulator keeps its own branch); per output the accumulation is
		// ascending j with the mask skip — identical to MaskedMatVecCols.
		b := 0
		for ; b+2 <= B; b += 2 {
			a0, a1 := active[b], active[b+1]
			var s0, s1 float32
			for j, w := range row {
				base := j*B + b
				if a0[j] {
					s0 += w * xs.Data[base]
				}
				if a1[j] {
					s1 += w * xs.Data[base+1]
				}
			}
			orow[b], orow[b+1] = s0, s1
		}
		for ; b < B; b++ {
			a := active[b]
			var s float32
			for j, w := range row {
				if a[j] {
					s += w * xs.Data[j*B+b]
				}
			}
			orow[b] = s
		}
	}
}

// SparseBatchScratch holds MatVecSparseBatch's gathered (unit, value)
// pairs. A zero value is ready; buffers grow lazily and are reused, so
// steady-state fused decode does not allocate here. One scratch must not be
// shared across concurrent calls.
type SparseBatchScratch struct {
	js     []int32
	xv     []float32
	starts []int
	tmp    []float32
}

// sparseColsCrossover is the mean pairs-per-column below which the serial
// sparse kernel switches to the column-major walk: with short unit lists
// the row-major fused walk pays its per-(row, column) loop setup more often
// than it computes, while the column-major walk amortizes setup over whole
// output columns exactly like the single-RHS kernel.
const sparseColsCrossover = 32

// MatVecSparseBatch computes out = m · xs using, for each column b, only
// the input coordinates listed in idxs[b] — B sessions' sparse products
// with differing per-session unit lists, fused into one pass over the
// output rows (each weight row stays hot while all B sessions consume it).
// out is zeroed first, like MatVecSparse; scratch may be nil to allocate
// internally. Per output column the contributions accumulate in idxs[b]
// order with the same zero-input skip, so results are bit-identical to B
// MatVecSparse calls.
func MatVecSparseBatch(m *Mat, xs *Mat, idxs [][]int, out *Mat, scratch *SparseBatchScratch) *Mat {
	B := xs.Cols
	if len(idxs) != B {
		panic("tensor: MatVecSparseBatch idxs length mismatch")
	}
	if out == nil {
		out = NewMat(m.Rows, B)
	}
	if out.Rows != m.Rows || out.Cols != B {
		panic("tensor: MatVecSparseBatch out shape mismatch")
	}
	var local SparseBatchScratch
	s := scratch
	if s == nil {
		s = &local
	}
	// Gather each column's non-zero (unit, value) pairs once, up front.
	// Dropping the zero entries here is exactly MatVecSparse's per-element
	// skip — zeros contribute no accumulation step either way — applied once
	// instead of once per output row, and it leaves the row walk branchless.
	if cap(s.starts) < B+1 {
		s.starts = make([]int, B+1)
	}
	s.starts = s.starts[:B+1]
	s.js = s.js[:0]
	s.xv = s.xv[:0]
	for b, idx := range idxs {
		s.starts[b] = len(s.js)
		for _, j := range idx {
			x := xs.Data[j*B+b]
			if x == 0 {
				continue
			}
			s.js = append(s.js, int32(j))
			s.xv = append(s.xv, x)
		}
	}
	s.starts[B] = len(s.js)
	total := len(s.js)
	if m.Rows*total <= parallelFlops {
		if total < sparseColsCrossover*B {
			matVecSparseBatchCols(m, s, out)
		} else {
			matVecSparseBatchRange(m, s, out, 0, m.Rows)
		}
		return out
	}
	parallel.For(m.Rows, rowGrain(total), func(lo, hi int) {
		matVecSparseBatchRange(m, s, out, lo, hi)
	})
	return out
}

// matVecSparseBatchCols is the serial short-list path: one column at a
// time, unit-outer/row-inner into a contiguous accumulator — the exact
// structure (and floating-point order) of matVecSparseRange — then a
// scatter into the column. Used below sparseColsCrossover pairs per column.
func matVecSparseBatchCols(m *Mat, s *SparseBatchScratch, out *Mat) {
	B := out.Cols
	rows := m.Rows
	if cap(s.tmp) < rows {
		s.tmp = make([]float32, rows)
	}
	tmp := s.tmp[:rows]
	for b := 0; b < B; b++ {
		jb := s.js[s.starts[b]:s.starts[b+1]]
		xb := s.xv[s.starts[b]:s.starts[b+1]]
		for i := range tmp {
			tmp[i] = 0
		}
		for t, j := range jb {
			x := xb[t]
			off := int(j)
			for i := 0; i < rows; i++ {
				tmp[i] += m.Data[off] * x
				off += m.Cols
			}
		}
		for i, v := range tmp {
			out.Data[i*B+b] = v
		}
	}
}

func matVecSparseBatchRange(m *Mat, s *SparseBatchScratch, out *Mat, lo, hi int) {
	B := out.Cols
	for i := lo; i < hi; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*B : (i+1)*B]
		for b := 0; b < B; b++ {
			jb := s.js[s.starts[b]:s.starts[b+1]]
			xb := s.xv[s.starts[b]:s.starts[b+1]]
			var acc float32
			for t, j := range jb {
				acc += mrow[j] * xb[t]
			}
			orow[b] = acc
		}
	}
}
