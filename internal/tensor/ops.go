package tensor

import (
	"math"
	"sort"
)

// Sigmoid returns 1/(1+e^-x).
func Sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// SiLU returns x·sigmoid(x), the activation used by SwiGLU MLPs.
func SiLU(x float32) float32 { return x * Sigmoid(x) }

// SiLUGrad returns d SiLU(x)/dx = sigmoid(x)·(1 + x·(1-sigmoid(x))).
func SiLUGrad(x float32) float32 {
	s := Sigmoid(x)
	return s * (1 + x*(1-s))
}

// ReLU returns max(x, 0).
func ReLU(x float32) float32 {
	if x > 0 {
		return x
	}
	return 0
}

// ReLUGrad returns 1 for x>0 else 0.
func ReLUGrad(x float32) float32 {
	if x > 0 {
		return 1
	}
	return 0
}

// Softmax writes the softmax of logits into out (allocated when nil) and
// returns it. Numerically stabilized by max subtraction.
func Softmax(logits Vec, out Vec) Vec {
	if out == nil {
		out = NewVec(len(logits))
	}
	if len(out) != len(logits) {
		panic("tensor: Softmax out length mismatch")
	}
	if len(logits) == 0 {
		return out
	}
	maxv := logits[0]
	for _, x := range logits[1:] {
		if x > maxv {
			maxv = x
		}
	}
	var sum float64
	for i, x := range logits {
		e := math.Exp(float64(x - maxv))
		out[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// LogSumExp returns log Σ exp(logits_i) computed stably.
func LogSumExp(logits Vec) float64 {
	if len(logits) == 0 {
		return math.Inf(-1)
	}
	maxv := logits[0]
	for _, x := range logits[1:] {
		if x > maxv {
			maxv = x
		}
	}
	var sum float64
	for _, x := range logits {
		sum += math.Exp(float64(x - maxv))
	}
	return float64(maxv) + math.Log(sum)
}

// TopKIndices returns the indices of the k largest values of score, in no
// particular order. k is clamped to [0, len(score)]. Ties are broken by
// lower index to keep results deterministic. The selection is O(n log k)
// via a binary min-heap over (value, index) pairs.
func TopKIndices(score Vec, k int) []int {
	return TopKIndicesInto(score, k, nil, nil)
}

// TopKScratch holds the reusable heap of TopKIndicesInto.
type TopKScratch struct {
	heap []hv
}

// hv is one heap entry of the top-k selection.
type hv struct {
	v float32
	i int
}

// TopKIndicesInto is TopKIndices with caller-owned storage: the selection
// heap comes from s and the result is appended to idx[:0] (both may be nil
// to allocate). The returned indices are identical — including order — to
// TopKIndices on the same input, so per-token hot loops can drop the two
// allocations per call without perturbing downstream accumulation or cache
// access order.
func TopKIndicesInto(score Vec, k int, s *TopKScratch, idx []int) []int {
	n := len(score)
	if k >= n {
		idx = grow(idx, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	if k <= 0 {
		return nil
	}
	var local TopKScratch
	if s == nil {
		s = &local
	}
	// Min-heap of the current top-k: heap[0] is the smallest kept value.
	if cap(s.heap) < k {
		s.heap = make([]hv, k)
	}
	heap := s.heap[:k]
	for i := 0; i < k; i++ {
		heap[i] = hv{score[i], i}
	}
	for i := k/2 - 1; i >= 0; i-- {
		siftDownHV(heap, i)
	}
	h0 := heap[0]
	for i := k; i < n; i++ {
		v := score[i]
		// Inlined "heap[0] < candidate" (ties lose to the lower index, so a
		// candidate with v == h0.v never displaces the root): this is the hot
		// comparison — most elements lose to the current minimum and never
		// touch the heap.
		if v < h0.v || (v == h0.v && i > h0.i) {
			continue
		}
		heap[0] = hv{v, i}
		siftDownHV(heap, 0)
		h0 = heap[0]
	}
	idx = grow(idx, k)
	for i, h := range heap {
		idx[i] = h.i
	}
	return idx
}

// lessHV orders heap entries: smaller value first, ties broken so the
// higher index is "smaller" (loses, keeping results deterministic).
func lessHV(a, b hv) bool {
	if a.v != b.v {
		return a.v < b.v
	}
	return a.i > b.i
}

// siftDownHV restores the min-heap property from pos downward.
func siftDownHV(heap []hv, pos int) {
	k := len(heap)
	for {
		l, r := 2*pos+1, 2*pos+2
		smallest := pos
		if l < k && lessHV(heap[l], heap[smallest]) {
			smallest = l
		}
		if r < k && lessHV(heap[r], heap[smallest]) {
			smallest = r
		}
		if smallest == pos {
			return
		}
		heap[pos], heap[smallest] = heap[smallest], heap[pos]
		pos = smallest
	}
}

// TopKAbsMask returns a boolean mask keeping the k largest-magnitude
// entries of x. This is the per-token top-K thresholding of Section 3.1.
// scratch, when non-nil and of matching length, holds the |x| scores and is
// overwritten — callers in per-token loops pass a reused buffer to avoid
// one allocation per call; pass nil to allocate internally.
func TopKAbsMask(x Vec, k int, scratch Vec) []bool {
	score := Reuse(scratch, len(x))
	for i, v := range x {
		if v < 0 {
			score[i] = -v
		} else {
			score[i] = v
		}
	}
	mask := make([]bool, len(x))
	for _, i := range TopKIndices(score, k) {
		mask[i] = true
	}
	return mask
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the values using linear
// interpolation between order statistics. The input is not modified. The
// order statistics are found by quickselect in expected O(n) rather than a
// full sort; results are identical to the sort-based computation.
func Quantile(values []float32, q float64) float32 {
	n := len(values)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		m := values[0]
		for _, v := range values[1:] {
			if v < m {
				m = v
			}
		}
		return m
	}
	if q >= 1 {
		m := values[0]
		for _, v := range values[1:] {
			if v > m {
				m = v
			}
		}
		return m
	}
	buf := make([]float32, n)
	copy(buf, values)
	pos := q * float64(n-1)
	lo := int(pos)
	frac := float32(pos - float64(lo))
	a := selectKth(buf, lo)
	if lo+1 >= n {
		return a
	}
	// selectKth leaves buf[lo+1:] ≥ buf[lo], so the next order statistic is
	// the minimum of the right partition.
	b := buf[lo+1]
	for _, v := range buf[lo+2:] {
		if v < b {
			b = v
		}
	}
	return a*(1-frac) + b*frac
}

// selectKth partially orders buf so buf[k] holds the k-th smallest value,
// with buf[:k] ≤ buf[k] ≤ buf[k+1:]. Iterative quickselect with
// median-of-three Hoare partitioning (robust to runs of equal values, e.g.
// the exact-zero spikes of ReLU activations).
func selectKth(buf []float32, k int) float32 {
	lo, hi := 0, len(buf)-1
	for lo < hi {
		j := hoarePartition(buf, lo, hi)
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	return buf[k]
}

// hoarePartition partitions buf[lo:hi+1] around a median-of-three pivot and
// returns j such that buf[lo..j] ≤ pivot ≤ buf[j+1..hi].
func hoarePartition(buf []float32, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if buf[mid] < buf[lo] {
		buf[mid], buf[lo] = buf[lo], buf[mid]
	}
	if buf[hi] < buf[lo] {
		buf[hi], buf[lo] = buf[lo], buf[hi]
	}
	if buf[hi] < buf[mid] {
		buf[hi], buf[mid] = buf[mid], buf[hi]
	}
	pivot := buf[mid]
	i, j := lo-1, hi+1
	for {
		for {
			i++
			if buf[i] >= pivot {
				break
			}
		}
		for {
			j--
			if buf[j] <= pivot {
				break
			}
		}
		if i >= j {
			return j
		}
		buf[i], buf[j] = buf[j], buf[i]
	}
}

// Histogram buckets values into nbins equal-width bins over [min, max] and
// returns the counts plus the bin edges (nbins+1 values). Values outside
// the range are clamped into the first/last bin.
func Histogram(values []float32, nbins int, minV, maxV float32) (counts []int, edges []float32) {
	counts = make([]int, nbins)
	edges = make([]float32, nbins+1)
	width := (maxV - minV) / float32(nbins)
	for i := range edges {
		edges[i] = minV + float32(i)*width
	}
	if width <= 0 {
		return counts, edges
	}
	for _, v := range values {
		b := int((v - minV) / width)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts, edges
}

// Logit returns log(p/(1-p)) with p clamped away from {0,1}.
func Logit(p float64) float64 {
	const eps = 1e-6
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	return math.Log(p / (1 - p))
}

// Expit is the inverse of Logit.
func Expit(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// ArgsortDesc returns the indices that sort score in descending order,
// breaking ties by lower index.
func ArgsortDesc(score Vec) []int {
	idx := make([]int, len(score))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return score[idx[a]] > score[idx[b]] })
	return idx
}
