package tensor

import (
	"math"
	"sort"
)

// Sigmoid returns 1/(1+e^-x).
func Sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// SiLU returns x·sigmoid(x), the activation used by SwiGLU MLPs.
func SiLU(x float32) float32 { return x * Sigmoid(x) }

// SiLUGrad returns d SiLU(x)/dx = sigmoid(x)·(1 + x·(1-sigmoid(x))).
func SiLUGrad(x float32) float32 {
	s := Sigmoid(x)
	return s * (1 + x*(1-s))
}

// ReLU returns max(x, 0).
func ReLU(x float32) float32 {
	if x > 0 {
		return x
	}
	return 0
}

// ReLUGrad returns 1 for x>0 else 0.
func ReLUGrad(x float32) float32 {
	if x > 0 {
		return 1
	}
	return 0
}

// Softmax writes the softmax of logits into out (allocated when nil) and
// returns it. Numerically stabilized by max subtraction.
func Softmax(logits Vec, out Vec) Vec {
	if out == nil {
		out = NewVec(len(logits))
	}
	if len(out) != len(logits) {
		panic("tensor: Softmax out length mismatch")
	}
	if len(logits) == 0 {
		return out
	}
	maxv := logits[0]
	for _, x := range logits[1:] {
		if x > maxv {
			maxv = x
		}
	}
	var sum float64
	for i, x := range logits {
		e := math.Exp(float64(x - maxv))
		out[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// LogSumExp returns log Σ exp(logits_i) computed stably.
func LogSumExp(logits Vec) float64 {
	if len(logits) == 0 {
		return math.Inf(-1)
	}
	maxv := logits[0]
	for _, x := range logits[1:] {
		if x > maxv {
			maxv = x
		}
	}
	var sum float64
	for _, x := range logits {
		sum += math.Exp(float64(x - maxv))
	}
	return float64(maxv) + math.Log(sum)
}

// TopKIndices returns the indices of the k largest values of score, in no
// particular order. k is clamped to [0, len(score)]. Ties are broken by
// lower index to keep results deterministic. The selection is O(n log k)
// via a binary min-heap over (value, index) pairs.
func TopKIndices(score Vec, k int) []int {
	n := len(score)
	if k >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	if k <= 0 {
		return nil
	}
	// Min-heap of the current top-k: heap[0] is the smallest kept value.
	type hv struct {
		v float32
		i int
	}
	heap := make([]hv, k)
	less := func(a, b hv) bool {
		if a.v != b.v {
			return a.v < b.v
		}
		return a.i > b.i // higher index loses ties
	}
	siftDown := func(pos int) {
		for {
			l, r := 2*pos+1, 2*pos+2
			smallest := pos
			if l < k && less(heap[l], heap[smallest]) {
				smallest = l
			}
			if r < k && less(heap[r], heap[smallest]) {
				smallest = r
			}
			if smallest == pos {
				return
			}
			heap[pos], heap[smallest] = heap[smallest], heap[pos]
			pos = smallest
		}
	}
	for i := 0; i < k; i++ {
		heap[i] = hv{score[i], i}
	}
	for i := k/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for i := k; i < n; i++ {
		cand := hv{score[i], i}
		if less(heap[0], cand) {
			heap[0] = cand
			siftDown(0)
		}
	}
	idx := make([]int, k)
	for i, h := range heap {
		idx[i] = h.i
	}
	return idx
}

// TopKAbsMask returns a boolean mask keeping the k largest-magnitude
// entries of x. This is the per-token top-K thresholding of Section 3.1.
func TopKAbsMask(x Vec, k int) []bool {
	score := NewVec(len(x))
	for i, v := range x {
		if v < 0 {
			score[i] = -v
		} else {
			score[i] = v
		}
	}
	mask := make([]bool, len(x))
	for _, i := range TopKIndices(score, k) {
		mask[i] = true
	}
	return mask
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the values using linear
// interpolation between order statistics. The input is not modified.
func Quantile(values []float32, q float64) float32 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float32, len(values))
	copy(sorted, values)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := float32(pos - float64(lo))
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram buckets values into nbins equal-width bins over [min, max] and
// returns the counts plus the bin edges (nbins+1 values). Values outside
// the range are clamped into the first/last bin.
func Histogram(values []float32, nbins int, minV, maxV float32) (counts []int, edges []float32) {
	counts = make([]int, nbins)
	edges = make([]float32, nbins+1)
	width := (maxV - minV) / float32(nbins)
	for i := range edges {
		edges[i] = minV + float32(i)*width
	}
	if width <= 0 {
		return counts, edges
	}
	for _, v := range values {
		b := int((v - minV) / width)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts, edges
}

// Logit returns log(p/(1-p)) with p clamped away from {0,1}.
func Logit(p float64) float64 {
	const eps = 1e-6
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	return math.Log(p / (1 - p))
}

// Expit is the inverse of Logit.
func Expit(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// ArgsortDesc returns the indices that sort score in descending order,
// breaking ties by lower index.
func ArgsortDesc(score Vec) []int {
	idx := make([]int, len(score))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return score[idx[a]] > score[idx[b]] })
	return idx
}
