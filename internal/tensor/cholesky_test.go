package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

// randSPD builds a random symmetric positive definite matrix A Aᵀ + I.
func randSPD(seed uint64, n int) *SymMat {
	rng := NewRNG(seed)
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			a[i][j] = rng.Norm()
		}
	}
	m := NewSymMat(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a[i][k] * a[j][k]
			}
			if i == j {
				s += float64(n)
			}
			m.Set(i, j, s)
		}
	}
	return m
}

func TestCholeskyReconstructs(t *testing.T) {
	f := func(seed uint64) bool {
		n := 3 + int(seed%6)
		m := randSPD(seed, n)
		l, err := m.Cholesky()
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += l.At(i, k) * l.At(j, k)
				}
				if math.Abs(s-m.At(i, j)) > 1e-8*(1+math.Abs(m.At(i, j))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m := NewSymMat(2)
	m.Set(0, 0, 1)
	m.Set(1, 1, -1)
	if _, err := m.Cholesky(); err == nil {
		t.Fatal("expected failure on indefinite matrix")
	}
}

func TestInverse(t *testing.T) {
	f := func(seed uint64) bool {
		n := 2 + int(seed%6)
		m := randSPD(seed, n)
		inv, err := m.Inverse()
		if err != nil {
			return false
		}
		// m · inv ≈ I
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += m.At(i, k) * inv.At(k, j)
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(s-want) > 1e-7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCholUpperReconstructs(t *testing.T) {
	f := func(seed uint64) bool {
		n := 2 + int(seed%6)
		m := randSPD(seed+99, n)
		u, err := m.CholUpper()
		if err != nil {
			return false
		}
		// Uᵀ U == m, and U is upper triangular.
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				if u.At(i, j) != 0 {
					return false
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += u.At(k, i) * u.At(k, j)
				}
				if math.Abs(s-m.At(i, j)) > 1e-8*(1+math.Abs(m.At(i, j))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSymMatHelpers(t *testing.T) {
	m := NewSymMat(3)
	m.AddDiag(2)
	if m.MeanDiag() != 2 {
		t.Fatalf("MeanDiag = %v", m.MeanDiag())
	}
	m.AddOuterF64(1, Vec{1, 2, 3})
	if m.At(0, 1) != 2 || m.At(2, 2) != 11 {
		t.Fatalf("AddOuterF64 wrong: %v", m.Data)
	}
}
