package data

import "fmt"

// Tokenizer maps the corpus alphabet to small contiguous token ids. It is
// a fixed character-level vocabulary covering everything the grammar can
// emit, so a tokenizer built today decodes checkpoints trained yesterday.
type Tokenizer struct {
	idOf   [256]int16
	charOf []byte
}

// Alphabet is the full character set the grammar can produce.
const Alphabet = " abcdefghijklmnopqrstuvwxyz.,0123456789"

// NewTokenizer returns the fixed corpus tokenizer.
func NewTokenizer() *Tokenizer {
	t := &Tokenizer{charOf: []byte(Alphabet)}
	for i := range t.idOf {
		t.idOf[i] = -1
	}
	for i, c := range t.charOf {
		t.idOf[c] = int16(i)
	}
	return t
}

// VocabSize returns the number of token ids.
func (t *Tokenizer) VocabSize() int { return len(t.charOf) }

// Encode converts text to token ids. Unknown characters map to the space
// token rather than failing, so corrupted MC candidates always encode.
func (t *Tokenizer) Encode(s string) []int {
	ids := make([]int, 0, len(s))
	for i := 0; i < len(s); i++ {
		id := t.idOf[s[i]]
		if id < 0 {
			id = 0
		}
		ids = append(ids, int(id))
	}
	return ids
}

// Decode converts token ids back to text. It panics on out-of-range ids,
// which indicate a programming error rather than bad data.
func (t *Tokenizer) Decode(ids []int) string {
	out := make([]byte, len(ids))
	for i, id := range ids {
		if id < 0 || id >= len(t.charOf) {
			panic(fmt.Sprintf("data: Decode id %d out of range [0,%d)", id, len(t.charOf)))
		}
		out[i] = t.charOf[id]
	}
	return string(out)
}
