package data

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestSentenceWellFormed(t *testing.T) {
	rng := tensor.NewRNG(1)
	for i := 0; i < 200; i++ {
		s := Sentence(rng)
		if !strings.HasSuffix(s, ". ") {
			t.Fatalf("sentence missing terminator: %q", s)
		}
		if len(strings.Fields(s)) < 3 {
			t.Fatalf("sentence too short: %q", s)
		}
	}
}

func TestSentenceAgreement(t *testing.T) {
	rng := tensor.NewRNG(2)
	singular := map[string]bool{}
	for _, v := range singularVerbs {
		singular[v] = true
	}
	plural := map[string]bool{}
	for _, v := range pluralVerbs {
		plural[v] = true
	}
	pluralSubj := map[string]bool{}
	for _, s := range pluralSubjects {
		pluralSubj[s] = true
	}
	for i := 0; i < 500; i++ {
		s := Sentence(rng)
		words := strings.Fields(s)
		isPlural := false
		for subj := range pluralSubj {
			if strings.HasPrefix(s, subj+" ") {
				isPlural = true
			}
		}
		// Find the main verb: the first word from either class.
		for _, w := range words {
			if singular[w] {
				if isPlural {
					t.Fatalf("agreement violation (plural subj, singular verb): %q", s)
				}
				break
			}
			if plural[w] {
				if !isPlural {
					t.Fatalf("agreement violation (singular subj, plural verb): %q", s)
				}
				break
			}
		}
	}
}

func TestCorpusLengthAndDeterminism(t *testing.T) {
	a := Corpus(tensor.NewRNG(5), 1000)
	b := Corpus(tensor.NewRNG(5), 1000)
	if a != b {
		t.Fatal("corpus generation not deterministic")
	}
	if len(a) < 1000 {
		t.Fatalf("corpus too short: %d", len(a))
	}
	c := Corpus(tensor.NewRNG(6), 1000)
	if a == c {
		t.Fatal("different seeds gave identical corpora")
	}
}

func TestSplitsDisjointStreams(t *testing.T) {
	s := NewSplits(7, 2000, 500)
	if s.Train == s.Calib || s.Calib == s.Valid || s.Valid == s.Test {
		t.Fatal("splits are not from independent streams")
	}
	if len(s.Train) < 2000 || len(s.Test) < 500 {
		t.Fatal("split lengths wrong")
	}
}

func TestTokenizerRoundTrip(t *testing.T) {
	tok := NewTokenizer()
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		s := Sentence(rng)
		// Strip trailing space ambiguity: round trip must be exact since
		// all grammar characters are in the alphabet.
		return tok.Decode(tok.Encode(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenizerUnknownMapsToSpace(t *testing.T) {
	tok := NewTokenizer()
	ids := tok.Encode("A!") // uppercase and punctuation not in alphabet
	for _, id := range ids {
		if id != 0 {
			t.Fatalf("unknown char should map to 0, got %v", ids)
		}
	}
}

func TestTokenizerVocabCoversAlphabet(t *testing.T) {
	tok := NewTokenizer()
	if tok.VocabSize() != len(Alphabet) {
		t.Fatalf("vocab size %d != alphabet %d", tok.VocabSize(), len(Alphabet))
	}
	ids := tok.Encode(Alphabet)
	for i, id := range ids {
		if id != i {
			t.Fatalf("alphabet position %d encoded as %d", i, id)
		}
	}
}

func TestDecodePanicsOnBadID(t *testing.T) {
	tok := NewTokenizer()
	defer func() {
		if recover() == nil {
			t.Fatal("Decode should panic on out-of-range id")
		}
	}()
	tok.Decode([]int{9999})
}

func TestGenerateTaskShape(t *testing.T) {
	for _, kind := range TaskKinds() {
		items := GenerateTask(kind, 25, tensor.NewRNG(9))
		if len(items) != 25 {
			t.Fatalf("%v: got %d items", kind, len(items))
		}
		for _, it := range items {
			if len(it.Choices) != NumChoices {
				t.Fatalf("%v: wrong choice count", kind)
			}
			if it.Answer < 0 || it.Answer >= NumChoices {
				t.Fatalf("%v: answer index %d", kind, it.Answer)
			}
			correct := it.Choices[it.Answer]
			for i, c := range it.Choices {
				if i != it.Answer && c == correct {
					t.Fatalf("%v: distractor equals answer: %q", kind, c)
				}
			}
		}
	}
}

func TestGenerateTaskCorruptionsDiffer(t *testing.T) {
	// Agreement corruption must change the verb number, order corruption
	// must permute words, spelling must change characters.
	items := GenerateTask(TaskAgreement, 50, tensor.NewRNG(3))
	pluralVerbSet := map[string]bool{}
	for _, v := range pluralVerbs {
		pluralVerbSet[v] = true
	}
	singularVerbSet := map[string]bool{}
	for _, v := range singularVerbs {
		singularVerbSet[v] = true
	}
	for _, it := range items {
		correctVerb := strings.Fields(it.Choices[it.Answer])[0]
		for i, c := range it.Choices {
			if i == it.Answer {
				continue
			}
			wrongVerb := strings.Fields(c)[0]
			if singularVerbSet[correctVerb] && !pluralVerbSet[wrongVerb] {
				t.Fatalf("distractor verb %q not opposite number of %q", wrongVerb, correctVerb)
			}
			if pluralVerbSet[correctVerb] && !singularVerbSet[wrongVerb] {
				t.Fatalf("distractor verb %q not opposite number of %q", wrongVerb, correctVerb)
			}
		}
	}
}

func TestTaskKindString(t *testing.T) {
	names := map[string]bool{}
	for _, k := range TaskKinds() {
		names[k.String()] = true
	}
	if len(names) != int(numTaskKinds) {
		t.Fatalf("task kind names not unique: %v", names)
	}
	if TaskKind(99).String() != "unknown" {
		t.Fatal("unknown kind should stringify as unknown")
	}
}

func TestGenerateTaskDeterminism(t *testing.T) {
	a := GenerateTask(TaskOrder, 10, tensor.NewRNG(4))
	b := GenerateTask(TaskOrder, 10, tensor.NewRNG(4))
	for i := range a {
		if a[i].Prompt != b[i].Prompt || a[i].Answer != b[i].Answer {
			t.Fatal("task generation not deterministic")
		}
		for j := range a[i].Choices {
			if a[i].Choices[j] != b[i].Choices[j] {
				t.Fatal("task generation not deterministic")
			}
		}
	}
}
