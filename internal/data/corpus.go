// Package data provides the synthetic workloads that stand in for the
// paper's datasets. A seeded stochastic grammar generates a character-level
// corpus (the WikiText-2 / SlimPajama substitute) with enough structure —
// word classes, subject/verb agreement, optional relative clauses — that a
// small trained LM reaches a perplexity far below the uniform baseline and
// degrades smoothly as its MLPs are pruned. Multiple-choice tasks (the
// MMLU / Table-5 substitute) ask a model to rank a true continuation
// against systematically corrupted ones.
package data

import (
	"strings"

	"repro/internal/tensor"
)

// Word classes for the grammar. Singular subjects pair with singular verb
// forms and plural with plural, giving the LM a long-range agreement signal.
var (
	singularSubjects = []string{"the fox", "a crow", "the tiny owl", "one dog", "the old cat", "a red crab", "the wolf", "a small hen"}
	pluralSubjects   = []string{"the foxes", "two crows", "the owls", "many dogs", "the cats", "some crabs", "the wolves", "five hens"}
	singularVerbs    = []string{"eats", "sees", "chases", "finds", "likes", "hides", "takes", "wants"}
	pluralVerbs      = []string{"eat", "see", "chase", "find", "like", "hide", "take", "want"}
	objects          = []string{"a fish", "the corn", "a worm", "the ball", "some bread", "a leaf", "the stone", "a berry", "the seed", "an egg"}
	adverbs          = []string{"quickly", "slowly", "quietly", "often", "rarely", "gladly", "badly", "early"}
	places           = []string{"near the river", "in the field", "by the barn", "under the tree", "on the hill", "at the pond"}
	relSingular      = []string{"that sleeps", "that waits", "that sings", "that jumps"}
	relPlural        = []string{"that sleep", "that wait", "that sing", "that jump"}
)

// Sentence draws one grammatical sentence from the grammar using rng.
func Sentence(rng *tensor.RNG) string {
	var b strings.Builder
	plural := rng.Float64() < 0.5
	if plural {
		b.WriteString(pluralSubjects[rng.Intn(len(pluralSubjects))])
	} else {
		b.WriteString(singularSubjects[rng.Intn(len(singularSubjects))])
	}
	if rng.Float64() < 0.25 { // optional relative clause keeps agreement distance long
		b.WriteByte(' ')
		if plural {
			b.WriteString(relPlural[rng.Intn(len(relPlural))])
		} else {
			b.WriteString(relSingular[rng.Intn(len(relSingular))])
		}
	}
	if rng.Float64() < 0.5 {
		b.WriteByte(' ')
		b.WriteString(adverbs[rng.Intn(len(adverbs))])
	}
	b.WriteByte(' ')
	if plural {
		b.WriteString(pluralVerbs[rng.Intn(len(pluralVerbs))])
	} else {
		b.WriteString(singularVerbs[rng.Intn(len(singularVerbs))])
	}
	b.WriteByte(' ')
	b.WriteString(objects[rng.Intn(len(objects))])
	if rng.Float64() < 0.4 {
		b.WriteByte(' ')
		b.WriteString(places[rng.Intn(len(places))])
	}
	b.WriteString(". ")
	return b.String()
}

// Corpus generates text of at least n characters by concatenating sentences.
func Corpus(rng *tensor.RNG, n int) string {
	var b strings.Builder
	b.Grow(n + 64)
	for b.Len() < n {
		b.WriteString(Sentence(rng))
	}
	return b.String()
}

// Splits bundles the four corpus roles used across the paper: training the
// base LM, calibrating thresholds/predictors/quantizers, validating
// hyper-parameters (e.g. γ), and final test perplexity.
type Splits struct {
	Train, Calib, Valid, Test string
}

// NewSplits generates the four disjoint-stream splits from a master seed.
func NewSplits(seed uint64, trainLen, otherLen int) Splits {
	master := tensor.NewRNG(seed)
	return Splits{
		Train: Corpus(master.Split(1), trainLen),
		Calib: Corpus(master.Split(2), otherLen),
		Valid: Corpus(master.Split(3), otherLen),
		Test:  Corpus(master.Split(4), otherLen),
	}
}
