package data

import (
	"strings"

	"repro/internal/tensor"
)

// MCItem is one multiple-choice question: a shared prompt, NumChoices
// candidate continuations, and the index of the correct one. The evaluation
// harness scores each continuation's log-likelihood given the prompt and
// picks the argmax, mirroring how the LM Evaluation Harness scores MMLU.
type MCItem struct {
	Prompt  string
	Choices []string
	Answer  int
}

// NumChoices is the number of candidates per item, matching 4-way MMLU.
const NumChoices = 4

// TaskKind enumerates the corruption families, standing in for the
// different benchmarks in the paper's Table 5. Each family damages the true
// continuation along a different linguistic axis, so methods that preserve
// different parts of the computation rank differently across tasks.
type TaskKind int

const (
	// TaskAgreement corrupts subject/verb number agreement ("the fox eat").
	TaskAgreement TaskKind = iota
	// TaskOrder swaps adjacent words in the continuation.
	TaskOrder
	// TaskLexical substitutes a word with one from the wrong class.
	TaskLexical
	// TaskSpelling injects character-level typos.
	TaskSpelling
	// TaskCoherence offers continuations of other, unrelated sentences.
	TaskCoherence
	numTaskKinds
)

// TaskKinds lists all task families in presentation order.
func TaskKinds() []TaskKind {
	out := make([]TaskKind, numTaskKinds)
	for i := range out {
		out[i] = TaskKind(i)
	}
	return out
}

// String names the task family.
func (k TaskKind) String() string {
	switch k {
	case TaskAgreement:
		return "agreement"
	case TaskOrder:
		return "order"
	case TaskLexical:
		return "lexical"
	case TaskSpelling:
		return "spelling"
	case TaskCoherence:
		return "coherence"
	default:
		return "unknown"
	}
}

// splitSentence cuts a generated sentence into a prompt (subject part) and
// continuation (verb phrase onward). The continuation begins at the verb,
// so agreement with the prompt's subject is exactly what is being tested.
func splitSentence(rng *tensor.RNG) (prompt, cont string, plural bool) {
	plural = rng.Float64() < 0.5
	var b strings.Builder
	if plural {
		b.WriteString(pluralSubjects[rng.Intn(len(pluralSubjects))])
	} else {
		b.WriteString(singularSubjects[rng.Intn(len(singularSubjects))])
	}
	prompt = b.String() + " "
	var c strings.Builder
	if plural {
		c.WriteString(pluralVerbs[rng.Intn(len(pluralVerbs))])
	} else {
		c.WriteString(singularVerbs[rng.Intn(len(singularVerbs))])
	}
	c.WriteByte(' ')
	c.WriteString(objects[rng.Intn(len(objects))])
	c.WriteString(".")
	return prompt, c.String(), plural
}

func swapVerbNumber(cont string, plural bool, rng *tensor.RNG) string {
	words := strings.Fields(cont)
	if len(words) == 0 {
		return cont
	}
	if plural {
		words[0] = singularVerbs[rng.Intn(len(singularVerbs))]
	} else {
		words[0] = pluralVerbs[rng.Intn(len(pluralVerbs))]
	}
	return strings.Join(words, " ")
}

func swapAdjacent(cont string, rng *tensor.RNG) string {
	words := strings.Fields(cont)
	if len(words) < 2 {
		return cont + " " + cont
	}
	i := rng.Intn(len(words) - 1)
	words[i], words[i+1] = words[i+1], words[i]
	return strings.Join(words, " ")
}

func wrongClassWord(cont string, rng *tensor.RNG) string {
	words := strings.Fields(cont)
	if len(words) == 0 {
		return cont
	}
	// Replace the verb with an adverb: syntactically invalid continuation.
	words[0] = adverbs[rng.Intn(len(adverbs))]
	return strings.Join(words, " ")
}

func typo(cont string, rng *tensor.RNG) string {
	b := []byte(cont)
	nerr := 1 + rng.Intn(2)
	for e := 0; e < nerr && len(b) > 0; e++ {
		i := rng.Intn(len(b))
		b[i] = Alphabet[1+rng.Intn(26)] // random lowercase letter
	}
	return string(b)
}

// GenerateTask produces n items of the given kind using rng.
func GenerateTask(kind TaskKind, n int, rng *tensor.RNG) []MCItem {
	items := make([]MCItem, 0, n)
	for len(items) < n {
		prompt, cont, plural := splitSentence(rng)
		choices := make([]string, NumChoices)
		answer := rng.Intn(NumChoices)
		used := map[string]bool{cont: true}
		corrupt := func() string {
			for tries := 0; tries < 20; tries++ {
				var c string
				switch kind {
				case TaskAgreement:
					c = swapVerbNumber(cont, plural, rng)
				case TaskOrder:
					c = swapAdjacent(cont, rng)
				case TaskLexical:
					c = wrongClassWord(cont, rng)
				case TaskSpelling:
					c = typo(cont, rng)
				case TaskCoherence:
					_, c, _ = splitSentence(rng)
					if plural { // force an agreement break so it's detectably wrong
						c = swapVerbNumber(c, true, rng)
					}
				}
				if !used[c] {
					used[c] = true
					return c
				}
			}
			return cont + " no"
		}
		for i := range choices {
			if i == answer {
				choices[i] = cont
			} else {
				choices[i] = corrupt()
			}
		}
		items = append(items, MCItem{Prompt: prompt, Choices: choices, Answer: answer})
	}
	return items
}
