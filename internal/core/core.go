// Package core is the front door to the paper's contribution: Dynamic
// Input Pruning (DIP) and Cache-Aware masking (DIP-CA). It re-exports the
// small set of types a downstream user composes — the pruning scheme, the
// cache simulator, the hardware plan, and the coupled evaluator — without
// requiring them to learn the internal package layout:
//
//	m := core.TrainedModel(...)            // or model.LoadCheckpointFile
//	scheme := core.NewDIPCA(0.5, 0.2)      // 50% MLP density, γ = 0.2
//	point, _ := core.Evaluate(m, scheme, tokens, core.DefaultSystem())
//	fmt.Println(point.PPL, point.Throughput, point.HitRate)
//
// The deeper packages remain available for research use: sparsity (all
// baseline schemes), cache (eviction policies), hwsim (device planning),
// eval (instrumentation), experiments (the paper's tables and figures).
package core

import (
	"repro/internal/cache"
	"repro/internal/eval"
	"repro/internal/hwsim"
	"repro/internal/model"
	"repro/internal/sparsity"
)

// Scheme is a dynamic MLP sparsification strategy (sparsity.Scheme).
type Scheme = sparsity.Scheme

// DIP is the Dynamic Input Pruning scheme (sparsity.DIP).
type DIP = sparsity.DIP

// Point is one evaluated operating point (eval.Point).
type Point = eval.Point

// Device is a simulated memory system (hwsim.Device).
type Device = hwsim.Device

// System bundles the coupled-evaluation settings (eval.SystemConfig).
type System = eval.SystemConfig

// NewDIP returns plain DIP at the target MLP density with the calibrated
// up/gate-vs-down allocation.
func NewDIP(density float64) *DIP { return sparsity.NewDIP(density) }

// NewDIPCA returns cache-aware DIP with penalty gamma (the paper uses 0.2).
func NewDIPCA(density, gamma float64) *DIP { return sparsity.NewDIPCA(density, gamma) }

// Dense returns the no-pruning baseline scheme.
func Dense() Scheme { return sparsity.Dense{} }

// DefaultSystem returns the paper's main setting: an A18-class device with
// DRAM fitting half the 4-bit model and an LFU weight cache.
func DefaultSystem() System {
	return System{Device: hwsim.A18Like(), Policy: cache.PolicyLFU}
}

// Evaluate runs the scheme over the token stream with the DRAM cache and
// transfer meter coupled, returning perplexity, measured density, cache
// hit rate and simulated throughput.
func Evaluate(m *model.Model, s Scheme, tokens []int, cfg System) (Point, error) {
	return eval.SystemEvaluate(m, s, tokens, cfg)
}

// Quality evaluates perplexity and measured MLP density without hardware
// coupling (the Tables 1/3/4 protocol).
func Quality(m *model.Model, s Scheme, tokens []int, win int) (ppl, density float64) {
	return eval.PerplexityUnderScheme(m, s, tokens, win)
}
