package core

import (
	"testing"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
)

func TestFacadeEndToEnd(t *testing.T) {
	tok := data.NewTokenizer()
	splits := data.NewSplits(71, 12000, 2500)
	cfg := model.Config{
		Name: model.Mistral7BSim, Vocab: tok.VocabSize(), Dim: 16, Layers: 2,
		Heads: 2, KVHeads: 1, DFF: 32, MaxSeq: 32, Act: nn.ActSiLU,
	}
	m := model.New(cfg, 19)
	opts := model.DefaultTrainOpts()
	opts.Steps = 60
	opts.Batch = 2
	opts.SeqLen = 31
	if _, err := model.Train(m, tok.Encode(splits.Train), opts); err != nil {
		t.Fatal(err)
	}
	test := tok.Encode(splits.Test)[:800]

	ppl, density := Quality(m, NewDIP(0.5), test, 32)
	if ppl <= 1 || density < 0.4 || density > 0.6 {
		t.Fatalf("quality = (%v, %v)", ppl, density)
	}
	ppl2, d2 := Quality(m, Dense(), test, 32)
	if ppl2 > ppl || d2 != 1 {
		t.Fatalf("dense quality = (%v, %v) vs dip %v", ppl2, d2, ppl)
	}

	pt, err := Evaluate(m, NewDIPCA(0.5, 0.2), test, DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if pt.Throughput <= 0 || pt.HitRate <= 0 {
		t.Fatalf("point = %+v", pt)
	}
}
