package cluster

import (
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/serving"
)

// Load is one node's placement signal at routing time.
type Load struct {
	// Queued is the node's admission-queue depth; Active its occupied batch
	// slots; Slots its configured batch width.
	Queued, Active, Slots int
}

// Router places arrivals (and failover migrants) on nodes. Route receives
// the request, the routable candidate node indices in ascending order
// (never empty — drained and failed nodes are already excluded), and every
// node's current Load, and returns one of the candidates. Implementations
// must be pure functions of their arguments — no internal mutable state —
// so placement is deterministic and replayable for a fixed trace.
type Router interface {
	Name() string
	Route(req serving.Request, cand []int, loads []Load) int
}

// RouterNames lists the built-in routing policies, in the order ParseRouter
// documents them.
func RouterNames() []string { return []string{"hash", "least-loaded", "slo"} }

// ParseRouter resolves a dipbench -router name.
func ParseRouter(name string) (Router, error) {
	switch name {
	case "hash":
		return ConsistentHash(), nil
	case "least-loaded":
		return LeastLoaded(), nil
	case "slo":
		return SLOAware(), nil
	}
	return nil, fmt.Errorf("cluster: unknown router %q (hash|least-loaded|slo)", name)
}

// tenantKey is the session-affinity key: the request ID's tenant prefix
// (everything before the first '/'), or the whole ID when it has none. All
// of one tenant's sessions hash identically, so a skewed tenant mix
// hot-spots a node under hash routing — exactly the pathology the
// least-loaded and SLO-aware routers exist to avoid.
func tenantKey(req serving.Request) string {
	if i := strings.IndexByte(req.ID, '/'); i >= 0 {
		return req.ID[:i]
	}
	return req.ID
}

func hash64(s string, node, replica int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d", s, node, replica)
	return h.Sum64()
}

// consistentHash places by session affinity on a virtual-node ring: each
// candidate node owns vnodeReplicas ring points, the key hashes to a ring
// position, and the nearest point clockwise wins. Ring points depend only
// on (node, replica), so removing a node (drain, failure) remaps only the
// keys it owned — the consistent-hashing property — and the lookup is a
// pure scan over candidates, no precomputed state.
type consistentHash struct{}

const vnodeReplicas = 16

// ConsistentHash returns the session-affinity router ("hash").
func ConsistentHash() Router { return consistentHash{} }

func (consistentHash) Name() string { return "hash" }

func (consistentHash) Route(req serving.Request, cand []int, loads []Load) int {
	key := hash64(tenantKey(req), 0, 0)
	best, bestDist := cand[0], ^uint64(0)
	for _, n := range cand {
		for r := 0; r < vnodeReplicas; r++ {
			dist := hash64("vnode", n, r) - key // clockwise distance, mod 2^64
			if dist < bestDist {
				best, bestDist = n, dist
			}
		}
	}
	return best
}

// leastLoaded places on the candidate with the fewest held sessions
// (queue depth + active slots), lowest index on ties.
type leastLoaded struct{}

// LeastLoaded returns the load-balancing router ("least-loaded").
func LeastLoaded() Router { return leastLoaded{} }

func (leastLoaded) Name() string { return "least-loaded" }

func (leastLoaded) Route(req serving.Request, cand []int, loads []Load) int {
	return minLoad(cand, loads)
}

func minLoad(cand []int, loads []Load) int {
	best := cand[0]
	for _, n := range cand[1:] {
		if loads[n].Queued+loads[n].Active < loads[best].Queued+loads[best].Active {
			best = n
		}
	}
	return best
}

// sloAware reserves capacity for interactive work: deadline-less (batch)
// requests are load-balanced across every candidate except the reserved
// one — the lowest-indexed routable node — which only deadlined requests
// may use. With one candidate left the reservation vanishes. Deadlined
// requests load-balance over all candidates, so under a batch-heavy mix
// the reserved node's slots stay free for the latency-sensitive class.
type sloAware struct{}

// SLOAware returns the capacity-reserving router ("slo").
func SLOAware() Router { return sloAware{} }

func (sloAware) Name() string { return "slo" }

func (sloAware) Route(req serving.Request, cand []int, loads []Load) int {
	if req.SLO.DeadlineTicks > 0 || len(cand) == 1 {
		return minLoad(cand, loads)
	}
	return minLoad(cand[1:], loads)
}
