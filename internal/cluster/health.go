package cluster

import (
	"fmt"

	"repro/internal/serving/faults"
	"repro/internal/serving/obs"
)

// This file is the cluster's failure-detection layer: the per-node health
// state machine, the deterministic heartbeat failure detector, and the
// bridge from unscripted node chaos (faults.NodePlan) into the same
// lifecycle machine the scripted Failures feed.
//
// Ground truth and the detector's view are deliberately separate. Ground
// truth — is node n actually down at tick t? — is a pure function of the
// scripted failure windows and the chaos plan's stateless crash draws. The
// detector only sees heartbeats: one per node per tick, dropped while the
// node is dead (or by chaos in flight), delayed by GrayLag while the node
// is gray. The gap between the two views is the detection lag the reports
// price: requests routed onto a dead-but-not-yet-confirmed node are
// stranded, and failover migration happens at the confirmation tick, not
// the failure tick.

// Health is the detector's view of one node.
type Health int

const (
	// Healthy nodes take placements normally.
	Healthy Health = iota
	// Suspect nodes missed MissSuspect consecutive heartbeats; the router
	// avoids them while any healthy candidate remains.
	Suspect
	// Down nodes missed MissConfirm heartbeats and were evacuated; they
	// take no placements until a heartbeat returns.
	Down
	// Rejoining nodes came back from Down and are in warm-up probation:
	// they take placements only while lightly loaded, and return to
	// Healthy once the probation window passes with live heartbeats.
	Rejoining
)

// String names the health state; the names double as obs event details
// (see obs.DetailNames), which the keep-in-sync tests pin.
func (h Health) String() string {
	switch h {
	case Healthy:
		return obs.DetailHealthy
	case Suspect:
		return obs.DetailSuspect
	case Down:
		return obs.DetailDown
	case Rejoining:
		return obs.DetailRejoining
	default:
		return "invalid"
	}
}

// HealthNames lists the health states in declaration order.
func HealthNames() []string {
	return []string{obs.DetailHealthy, obs.DetailSuspect, obs.DetailDown, obs.DetailRejoining}
}

// DetectModes lists the failure-detector modes ParseDetectMode accepts.
func DetectModes() []string { return []string{"heartbeat", "oracle", "off"} }

// Detect tunes the cluster's failure detector. The zero value is the
// heartbeat detector at the default thresholds.
type Detect struct {
	// Mode selects the detector: "heartbeat" (the default — suspicion
	// counted from missed heartbeats, failover at confirmation),
	// "oracle" (zero detection lag: confirmation at the ground-truth
	// crash tick, the upper bound any real detector is priced against),
	// or "off" (no detection and no failover — stranded work stays
	// frozen on the dead node until its restart, the lower bound).
	Mode string
	// MissSuspect is how many consecutive missed heartbeats mark a node
	// Suspect (0 = default 2; clamped to MissConfirm when larger).
	MissSuspect int
	// MissConfirm is how many consecutive missed heartbeats confirm a
	// node Down and trigger failover (0 = default 4).
	MissConfirm int
	// ProbationTicks is the warm-up window a rejoining node serves before
	// it counts as fully Healthy again (0 = default 8).
	ProbationTicks int
}

// Validate reports the first invalid Detect field by name.
func (d Detect) Validate() error {
	switch d.Mode {
	case "", "heartbeat", "oracle", "off":
	default:
		return fmt.Errorf("cluster: Detect.Mode must be one of heartbeat|oracle|off, got %q", d.Mode)
	}
	if d.MissSuspect < 0 {
		return fmt.Errorf("cluster: Detect.MissSuspect must be non-negative (0 = default 2), got %d", d.MissSuspect)
	}
	if d.MissConfirm < 0 {
		return fmt.Errorf("cluster: Detect.MissConfirm must be non-negative (0 = default 4), got %d", d.MissConfirm)
	}
	if d.ProbationTicks < 0 {
		return fmt.Errorf("cluster: Detect.ProbationTicks must be non-negative (0 = default 8), got %d", d.ProbationTicks)
	}
	return nil
}

// withDefaults resolves zero fields and clamps MissSuspect ≤ MissConfirm.
func (d Detect) withDefaults() Detect {
	if d.Mode == "" {
		d.Mode = "heartbeat"
	}
	if d.MissSuspect == 0 {
		d.MissSuspect = 2
	}
	if d.MissConfirm == 0 {
		d.MissConfirm = 4
	}
	if d.MissSuspect > d.MissConfirm {
		d.MissSuspect = d.MissConfirm
	}
	if d.ProbationTicks == 0 {
		d.ProbationTicks = 8
	}
	return d
}

// grayFaults adapts a node's slot-level fault injector to the cluster's
// chaos plan: while the node is in a gray window it decodes at dipped
// capacity (GraySlots offline), on top of whatever the inner plan injects.
// Pure functions of (tick, node) only, so the wrapper is race-free under
// the parallel node fan-out.
type grayFaults struct {
	inner faults.Injector // may be nil
	plan  *faults.NodePlan
	node  int
}

func (g grayFaults) Name() string {
	if g.inner != nil {
		return g.inner.Name() + "+gray"
	}
	return "gray"
}

func (g grayFaults) StepFault(tick, slot int) bool {
	return g.inner != nil && g.inner.StepFault(tick, slot)
}

func (g grayFaults) Revoke(tick, slot int) bool {
	return g.inner != nil && g.inner.Revoke(tick, slot)
}

func (g grayFaults) Cancel(tick, slot int) bool {
	return g.inner != nil && g.inner.Cancel(tick, slot)
}

func (g grayFaults) Offline(tick int) int {
	off := 0
	if g.inner != nil {
		off = g.inner.Offline(tick)
	}
	if g.plan.Gray(tick, g.node) && !g.plan.Dead(tick, g.node) {
		if s := g.plan.Config().GraySlots; s > off {
			off = s
		}
	}
	return off
}

// deadAt is ground truth: whether node is actually down at tick, from the
// scripted failure windows or the chaos plan's stateless crash draws.
func (c *Cluster) deadAt(tick, node int) bool {
	for _, f := range c.cfg.Failures {
		if f.Node == node && tick >= f.Tick && tick < f.Tick+f.Ticks {
			return true
		}
	}
	return c.plan != nil && c.plan.Dead(tick, node)
}

// grayAt reports whether the node is in a gray window (dead wins over gray).
func (c *Cluster) grayAt(tick, node int) bool {
	return c.plan != nil && c.plan.Gray(tick, node) && !c.deadAt(tick, node)
}

// emits reports whether the heartbeat the node would send at tick leaves
// the node at all: dead nodes send nothing, and chaos can drop one in
// flight.
func (c *Cluster) emits(tick, node int) bool {
	if c.deadAt(tick, node) {
		return false
	}
	return c.plan == nil || !c.plan.DropHeartbeat(tick, node)
}

// heartbeatAt reports whether a heartbeat from node arrives at tick: the
// beat emitted at e lands at e+lag(e), where lag is 0 for a healthy node
// and GrayLag for a gray one — so a gray node's beats run late and the
// detector flaps it into Suspect.
func (c *Cluster) heartbeatAt(tick, node int) bool {
	if c.emits(tick, node) && !c.grayAt(tick, node) {
		return true
	}
	if c.plan != nil {
		e := tick - c.plan.Config().GrayLag
		if e >= 0 && c.emits(e, node) && c.grayAt(e, node) {
			return true
		}
	}
	return false
}

// missesAt counts the consecutive ticks up to and including tick with no
// heartbeat arrival from node, capped at MissConfirm (past the confirmation
// threshold the exact count no longer matters). The backward scan keeps the
// count a pure function of the tick clock, so fast-forwarded idle ticks
// can never skew the detector.
func (c *Cluster) missesAt(tick, node int) int {
	bound := c.detect.MissConfirm
	for d := 0; d <= bound && d <= tick; d++ {
		if c.heartbeatAt(tick-d, node) {
			return d
		}
	}
	if tick < bound {
		return tick + 1
	}
	return bound
}

// emitHealth emits one detector event on the node's recorder (no-op with
// tracing off). Detector events carry Slot -1 and the health-state detail.
func (c *Cluster) emitHealth(tick, node int, kind obs.Kind, detail string) {
	if c.recs[node] != nil {
		c.recs[node].Emit(obs.Event{Tick: tick, Slot: -1, Kind: kind, Detail: detail})
	}
}

// confirmDown declares the node Down and fails it over: detection lag is
// measured against the ground-truth crash tick when the node is genuinely
// dead (a false-positive confirm has no lag to measure), active sessions
// are evacuated with their live stream and cache state, and every stranded
// request re-routes with retry backoff.
func (c *Cluster) confirmDown(tick, node int) error {
	c.health[node] = Down
	c.confirms++
	c.emitHealth(tick, node, obs.KindConfirm, obs.DetailDown)
	if c.wasDead[node] {
		c.detectLagN[node] += tick - c.crashTick[node]
		c.lagMeasured++
	}
	migs := c.nodes[node].Evacuate(tick)
	for _, mig := range migs {
		if mig.Entry.Sess == nil && c.strandAttempts[mig.Entry.Index] > 0 {
			// Retry accounting for stranded requests: the re-route backs
			// off like a faulted session's retry, de-synchronized by the
			// seeded jitter, so failover does not thundering-herd the
			// survivors.
			nb := tick + c.retry.Backoff(c.cfg.Seed, mig.Entry.Index, c.strandAttempts[mig.Entry.Index])
			if nb > mig.Entry.NotBefore {
				mig.Entry.NotBefore = nb
			}
		}
	}
	return c.migrate(migs, tick)
}

// detectTick runs one serial detector pass over every node, in node order,
// before the tick's routing: ground-truth crash/restart edges feed the
// lifecycle tallies, and the configured detector advances each node's
// health state. With chaos off and every node healthy this is a pure
// scalar scan — zero allocations per tick (pinned by a test).
func (c *Cluster) detectTick(tick int) error {
	for n := range c.nodes {
		dead := c.deadAt(tick, n)
		if dead && !c.wasDead[n] {
			c.crashTick[n] = tick
			c.crashes[n]++
			c.failures++
		}
		if dead {
			c.failTicks[n]++
			c.deadTicks++
		}
		c.wasDead[n] = dead
		switch c.mode {
		case detOff:
			continue
		case detOracle:
			// The zero-lag oracle: confirmation at the crash tick itself,
			// rejoin probation identical to the heartbeat detector — the
			// only difference between the two modes is detection lag.
			switch {
			case dead && c.health[n] != Down:
				if err := c.confirmDown(tick, n); err != nil {
					return err
				}
			case !dead && c.health[n] == Down:
				c.startRejoin(tick, n)
			case c.health[n] == Rejoining && tick >= c.probation[n]:
				c.health[n] = Healthy
				c.emitHealth(tick, n, obs.KindRejoin, obs.DetailHealthy)
			}
			continue
		}
		// Heartbeat detector.
		beat := c.heartbeatAt(tick, n)
		if !beat && c.health[n] != Down {
			c.hbMisses++
			c.emitHealth(tick, n, obs.KindHeartbeatMiss, "")
		}
		switch c.health[n] {
		case Down:
			if beat {
				// A heartbeat from a Down node is the rejoin signal —
				// whether the node really restarted or the confirm was a
				// false positive, the same probation path re-absorbs it.
				c.startRejoin(tick, n)
			}
		case Rejoining:
			switch {
			case c.missesAt(tick, n) >= c.detect.MissConfirm:
				// Crashed again during probation.
				if err := c.confirmDown(tick, n); err != nil {
					return err
				}
			case tick >= c.probation[n] && beat:
				c.health[n] = Healthy
				c.emitHealth(tick, n, obs.KindRejoin, obs.DetailHealthy)
			}
		default: // Healthy or Suspect
			switch m := c.missesAt(tick, n); {
			case m >= c.detect.MissConfirm:
				if err := c.confirmDown(tick, n); err != nil {
					return err
				}
			case m >= c.detect.MissSuspect:
				if c.health[n] == Healthy {
					c.health[n] = Suspect
					c.suspects++
					c.emitHealth(tick, n, obs.KindSuspect, obs.DetailSuspect)
				}
			default:
				// Heartbeats resumed before confirmation: quietly clear
				// the suspicion.
				c.health[n] = Healthy
			}
		}
	}
	if len(c.parked) > 0 {
		// A prior failover found no routable node; re-place the parked
		// migrants now that the detector pass may have readmitted one
		// (migrate re-parks whatever still has nowhere to go).
		c.refreshLoads()
		if len(c.routable(tick)) > 0 {
			migs := c.parked
			c.parked = nil
			if err := c.migrate(migs, tick); err != nil {
				return err
			}
		}
	}
	return nil
}

// startRejoin moves a Down node into warm-up probation.
func (c *Cluster) startRejoin(tick, node int) {
	c.health[node] = Rejoining
	c.probation[node] = tick + c.detect.ProbationTicks
	c.rejoinsN[node]++
	c.emitHealth(tick, node, obs.KindRejoin, obs.DetailRejoining)
}

// noteStrand records a placement that landed on a ground-truth-dead node:
// the request sits frozen until the detector confirms the node Down (or,
// detector off, until the node restarts). Each strand bumps the request's
// attempt count, which scales its failover backoff.
func (c *Cluster) noteStrand(node, tick, idx int, id string) {
	if !c.wasDead[node] {
		return
	}
	c.strandedN[node]++
	c.strandAttempts[idx]++
	if c.recs[node] != nil {
		c.recs[node].Emit(obs.Event{Tick: tick, Slot: -1, Kind: obs.KindStrand, Session: id})
	}
}

// armed reports whether the clock must advance tick by tick for the
// detector: unscripted chaos can draw a crash on any tick, and any node
// that is dead or not plainly Healthy has pending detector transitions.
// With chaos off and every node healthy the cluster fast-forwards exactly
// as before.
func (c *Cluster) armed() bool {
	if c.plan != nil || len(c.parked) > 0 || len(c.held) > 0 {
		return true
	}
	for n := range c.nodes {
		if c.wasDead[n] || c.health[n] != Healthy {
			return true
		}
	}
	return false
}
