package cluster

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/hwsim"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/serving"
	"repro/internal/serving/obs"
	"repro/internal/sparsity"
)

// zoo holds one trained tiny model shared across the package's tests —
// the same recipe the serving tests use (those helpers are
// package-internal).
var zoo struct {
	m      *model.Model
	tokens []int
}

func trained(t *testing.T) {
	t.Helper()
	if zoo.m != nil {
		return
	}
	tok := data.NewTokenizer()
	splits := data.NewSplits(73, 14000, 6000)
	cfg := model.Config{
		Name: model.Mistral7BSim, Vocab: tok.VocabSize(), Dim: 16, Layers: 2,
		Heads: 2, KVHeads: 1, DFF: 32, MaxSeq: 32, Act: nn.ActSiLU,
	}
	m := model.New(cfg, 29)
	opts := model.DefaultTrainOpts()
	opts.Steps = 100
	opts.Batch = 2
	opts.SeqLen = 31
	if _, err := model.Train(m, tok.Encode(splits.Train), opts); err != nil {
		t.Fatal(err)
	}
	zoo.m = m
	zoo.tokens = tok.Encode(splits.Test)
}

func sysCfg() eval.SystemConfig {
	return eval.SystemConfig{Device: hwsim.A18Like(), Policy: cache.PolicyLFU}
}

// requests builds n DIP-CA sessions with tenant-prefixed IDs ("<tenant>/sNN")
// over distinct slices of the test split.
func requests(t *testing.T, n int, tenant func(i int) string, wins func(i int) int, slo func(i int) serving.SLO) []serving.Request {
	t.Helper()
	reqs := make([]serving.Request, n)
	for i := range reqs {
		lo, hi := i*256, i*256+wins(i)*32
		if hi > len(zoo.tokens) {
			t.Fatalf("test split too short for session %d (%d > %d)", i, hi, len(zoo.tokens))
		}
		reqs[i] = serving.Request{
			ID:     fmt.Sprintf("%s/s%02d", tenant(i), i),
			Scheme: sparsity.NewDIPCA(0.5, 0.2),
			Tokens: zoo.tokens[lo:hi],
			SLO:    slo(i),
		}
	}
	return reqs
}

func nodeCfg(arb serving.ArbPolicy, slots int, noFuse bool) serving.Config {
	return serving.Config{
		System: sysCfg(), Arb: arb, Sched: serving.EDF(),
		MaxActive: slots, Quantum: 4, Seed: 11, NoFuse: noFuse,
	}
}

func TestRouterNamesRoundTripThroughParser(t *testing.T) {
	for _, name := range RouterNames() {
		r, err := ParseRouter(name)
		if err != nil || r.Name() != name {
			t.Errorf("router %q does not round-trip: %v", name, err)
		}
	}
	if _, err := ParseRouter("nope"); err == nil || !strings.Contains(err.Error(), "least-loaded") {
		t.Errorf("unknown router error does not list known names: %v", err)
	}
}

// The SLO-aware router must keep the reserved node (lowest routable index)
// free of deadline-less work while deadlined requests may use any node.
func TestSLOAwareReservesCapacityForDeadlinedClasses(t *testing.T) {
	r := SLOAware()
	loads := []Load{{Queued: 0, Active: 0, Slots: 2}, {Queued: 5, Active: 2, Slots: 2}, {Queued: 6, Active: 2, Slots: 2}}
	cand := []int{0, 1, 2}
	batch := serving.Request{ID: "t/b", SLO: serving.SLO{Class: "batch"}}
	if got := r.Route(batch, cand, loads); got == 0 {
		t.Fatalf("batch request landed on the reserved node 0")
	}
	interactive := serving.Request{ID: "t/i", SLO: serving.SLO{Class: "interactive", DeadlineTicks: 8}}
	if got := r.Route(interactive, cand, loads); got != 0 {
		t.Fatalf("deadlined request routed to %d, want the idle reserved node 0", got)
	}
	// With one candidate left the reservation vanishes.
	if got := r.Route(batch, []int{2}, loads); got != 2 {
		t.Fatalf("sole-candidate routing returned %d, want 2", got)
	}
}

// Consistent-hash routing is session-affine: every session of one tenant
// lands on the same node while candidates are stable, and removing a node
// only remaps the keys it owned.
func TestConsistentHashIsTenantAffineAndStableUnderNodeLoss(t *testing.T) {
	r := ConsistentHash()
	loads := make([]Load, 4)
	all := []int{0, 1, 2, 3}
	home := r.Route(serving.Request{ID: "hot/s00"}, all, loads)
	for i := 1; i < 8; i++ {
		req := serving.Request{ID: fmt.Sprintf("hot/s%02d", i)}
		if got := r.Route(req, all, loads); got != home {
			t.Fatalf("tenant hot split across nodes %d and %d", home, got)
		}
	}
	// Remove a node the tenant does not live on: placement must not move.
	survivors := make([]int, 0, 3)
	removed := (home + 1) % 4
	for _, n := range all {
		if n != removed {
			survivors = append(survivors, n)
		}
	}
	if got := r.Route(serving.Request{ID: "hot/s00"}, survivors, loads); got != home {
		t.Fatalf("removing unrelated node %d moved tenant hot from %d to %d", removed, home, got)
	}
}

// clusterGrid runs the drain+failover scenario used by the determinism
// test: three heterogeneous nodes (different arbitration and batch
// widths), a mid-run failure on node 1, a later drain of node 2, Poisson
// arrivals, tracing on.
func clusterGrid(t *testing.T, router Router, noFuse bool) (*Report, []obs.Event) {
	t.Helper()
	reqs := requests(t, 8,
		func(i int) string {
			if i%3 == 0 {
				return "hot"
			}
			return fmt.Sprintf("t%d", i%3)
		},
		func(i int) int { return 2 + i%2 },
		func(i int) serving.SLO {
			if i%2 == 0 {
				return serving.SLO{Class: "interactive", Priority: 2, DeadlineTicks: 64}
			}
			return serving.SLO{Class: "batch"}
		})
	w, err := serving.PoissonArrivals(reqs, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Nodes: []serving.Config{
			nodeCfg(serving.ArbExclusive, 2, noFuse),
			nodeCfg(serving.ArbFairShare, 1, noFuse),
			nodeCfg(serving.ArbExclusive, 1, noFuse),
		},
		Router: router, Seed: 19,
		DrainTick: 9, DrainNode: 2,
		Failures:  []Failure{{Node: 1, Tick: 5, Ticks: 12}},
		Obs:       &obs.Config{Window: 8},
	}
	c, err := New(zoo.m, cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.ReconcileObs(); err != nil {
		t.Fatal(err)
	}
	return rep, c.Events()
}

// stripWall zeroes the host-measured annotations — the only fields outside
// the determinism contract.
func stripWall(rep *Report) {
	rep.Wall = serving.WallClock{}
	for i := range rep.Nodes {
		rep.Nodes[i].Report.Wall = serving.WallClock{}
	}
}

// The acceptance pin: the whole cluster — rolled-up report, per-node
// reports, and the merged per-node event logs — must be bit-identical
// across worker counts and the fused/unfused decode paths, for every
// router policy, through a run that exercises failover migration AND an
// administrative drain. Run under -race this also proves the parallel
// node fan-out never races.
func TestClusterDeterministicAcrossWorkerCountsAndFuse(t *testing.T) {
	trained(t)
	defer parallel.SetProcs(parallel.Procs())
	for _, name := range RouterNames() {
		router, err := ParseRouter(name)
		if err != nil {
			t.Fatal(err)
		}
		var baseRep *Report
		var baseLog []byte
		for _, noFuse := range []bool{false, true} {
			for _, procs := range []int{4, 1} {
				parallel.SetProcs(procs)
				rep, events := clusterGrid(t, router, noFuse)
				stripWall(rep)
				if rep.Migrations == 0 {
					t.Fatalf("router %s: failover scenario produced no migrations", name)
				}
				if rep.Drains != 1 || rep.Failures != 1 {
					t.Fatalf("router %s: lifecycle ran %d drains / %d failures, want 1/1", name, rep.Drains, rep.Failures)
				}
				var buf bytes.Buffer
				if err := obs.WriteJSONL(&buf, events); err != nil {
					t.Fatal(err)
				}
				if baseRep == nil {
					baseRep, baseLog = rep, buf.Bytes()
					continue
				}
				if !reflect.DeepEqual(baseRep, rep) {
					t.Fatalf("router %s: report diverges at noFuse=%v procs=%d", name, noFuse, procs)
				}
				if !bytes.Equal(baseLog, buf.Bytes()) {
					t.Fatalf("router %s: merged event log diverges at noFuse=%v procs=%d", name, noFuse, procs)
				}
			}
		}
	}
}

// The cluster analogue of TestPreemptedSessionMatchesUninterruptedSolo:
// an exclusive-arbitration session evacuated off a failing node mid-decode
// migrates — its live stream and private cache carried through
// Release/Regrant — and must still reproduce an uninterrupted solo
// SystemEvaluate bit for bit. DIP-CA is the hard case: its masks read the
// session's cache state every token, so any loss of cache state across
// the node hop would change the output.
func TestClusterMigratedExclusiveSessionMatchesUninterruptedSolo(t *testing.T) {
	trained(t)
	reqs := requests(t, 2,
		func(i int) string { return "solo" },
		func(i int) int { return 3 },
		func(i int) serving.SLO { return serving.SLO{} })
	cfg := Config{
		Nodes: []serving.Config{
			nodeCfg(serving.ArbExclusive, 1, false),
			nodeCfg(serving.ArbExclusive, 1, false),
		},
		Router: LeastLoaded(), Seed: 5,
		// Node 1 fails at tick 2 — mid-decode for whichever session it
		// holds (each stream needs ~24 ticks) — and stays down for good.
		Failures: []Failure{{Node: 1, Tick: 2, Ticks: 1000}},
	}
	c, err := New(zoo.m, cfg, serving.FixedBatch(reqs))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migrations != 1 {
		t.Fatalf("expected exactly one migrated session, got %d", rep.Migrations)
	}
	if rep.MigratedWaitTicks <= 0 {
		t.Fatalf("migrated session shows no cross-node queueing (wait %d ticks)", rep.MigratedWaitTicks)
	}
	seen := 0
	for _, nr := range rep.Nodes {
		for _, sm := range nr.Report.Sessions {
			seen++
			if sm.Outcome != serving.OutcomeOK {
				t.Fatalf("session %q finished %q, want ok", sm.ID, sm.Outcome)
			}
			solo, err := eval.SystemEvaluate(zoo.m, sparsity.NewDIPCA(0.5, 0.2), reqs[sm.Index].Tokens, sysCfg())
			if err != nil {
				t.Fatal(err)
			}
			if sm.Point != solo {
				t.Fatalf("session %q diverged from solo evaluation:\nserved %+v\nsolo   %+v", sm.ID, sm.Point, solo)
			}
		}
	}
	if seen != len(reqs) {
		t.Fatalf("%d sessions reported across nodes, want %d", seen, len(reqs))
	}
	// Both sessions must have ended up on the surviving node.
	if n := len(rep.Nodes[0].Report.Sessions); n != 2 {
		t.Fatalf("surviving node reports %d sessions, want 2 (the migrant included)", n)
	}
}

// The routing headline, pinned: on a skewed tenant mix (every session one
// tenant) consistent-hash serializes the whole load on the tenant's home
// node while least-loaded spreads it, so least-loaded must strictly win
// SLO attainment. The deadline is tuned so two sessions per node attain
// and a six-deep serial queue misses from the third on.
func TestLeastLoadedBeatsConsistentHashOnSkewedTenants(t *testing.T) {
	trained(t)
	run := func(router Router) *Report {
		reqs := requests(t, 6,
			func(i int) string { return "hot" },
			func(i int) int { return 2 },
			func(i int) serving.SLO {
				return serving.SLO{Class: "interactive", Priority: 2, DeadlineTicks: 20}
			})
		cfg := Config{
			Nodes: []serving.Config{
				nodeCfg(serving.ArbExclusive, 1, false),
				nodeCfg(serving.ArbExclusive, 1, false),
				nodeCfg(serving.ArbExclusive, 1, false),
			},
			Router: router, Seed: 5,
		}
		c, err := New(zoo.m, cfg, serving.FixedBatch(reqs))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	hash := run(ConsistentHash())
	ll := run(LeastLoaded())
	if placed := len(hash.Placements); placed != 3 {
		t.Fatalf("placement vector has %d entries, want 3", placed)
	}
	if hash.Imbalance != 3 {
		t.Fatalf("hash routing imbalance = %v, want 3 (whole tenant on one node)", hash.Imbalance)
	}
	if ll.Imbalance != 1 {
		t.Fatalf("least-loaded imbalance = %v, want 1 (perfect spread)", ll.Imbalance)
	}
	if ll.SLOAttainRate <= hash.SLOAttainRate {
		t.Fatalf("least-loaded attainment %v does not beat consistent-hash %v on the skewed trace",
			ll.SLOAttainRate, hash.SLOAttainRate)
	}
}

// Draining must stop placements onto the node, migrate its queue, and let
// its active session finish locally — with every session still served
// exactly once across the cluster.
func TestDrainStopsPlacementAndMigratesQueue(t *testing.T) {
	trained(t)
	reqs := requests(t, 4,
		func(i int) string { return fmt.Sprintf("t%d", i) },
		func(i int) int { return 2 },
		func(i int) serving.SLO { return serving.SLO{} })
	cfg := Config{
		Nodes: []serving.Config{
			nodeCfg(serving.ArbExclusive, 1, false),
			nodeCfg(serving.ArbExclusive, 1, false),
		},
		Router: LeastLoaded(), Seed: 5,
		DrainTick: 1, DrainNode: 1,
	}
	c, err := New(zoo.m, cfg, serving.FixedBatch(reqs))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drains != 1 || !rep.Nodes[1].Drained {
		t.Fatalf("drain not recorded: drains=%d node1.Drained=%v", rep.Drains, rep.Nodes[1].Drained)
	}
	// Four sessions landed 2/2 at tick 0; the drain at tick 1 moved node
	// 1's queued entry to node 0, so node 1 finishes only the session it
	// was actively decoding.
	if n0, n1 := len(rep.Nodes[0].Report.Sessions), len(rep.Nodes[1].Report.Sessions); n0 != 3 || n1 != 1 {
		t.Fatalf("sessions split %d/%d across nodes, want 3/1 after the drain migration", n0, n1)
	}
	if rep.Sessions != 4 {
		t.Fatalf("cluster reports %d sessions, want 4", rep.Sessions)
	}
	for _, nr := range rep.Nodes {
		for _, sm := range nr.Report.Sessions {
			if sm.Outcome != serving.OutcomeOK {
				t.Fatalf("session %q finished %q, want ok", sm.ID, sm.Outcome)
			}
		}
	}
	if rep.Nodes[1].Placements != 2 {
		t.Fatalf("node 1 credited %d placements, want the 2 made before the drain", rep.Nodes[1].Placements)
	}
}
