package cluster

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/serving"
	"repro/internal/serving/obs"
)

// NodeReport is one replica's slice of the cluster run.
type NodeReport struct {
	Node int
	// Drained / FailedTicks record the node's lifecycle: whether it was
	// administratively drained, and how many executed ticks it spent
	// ground-truth dead.
	Drained     bool
	FailedTicks int
	// Crashes counts ground-truth outage onsets (scripted and unscripted);
	// DetectLagTicks sums, over this node's confirmed real crashes, the
	// ticks between the crash and the detector's confirmation.
	Crashes        int
	DetectLagTicks int
	// StrandedRequests counts placements the router made onto this node
	// while it was already dead; Rejoins counts its returns from Down into
	// warm-up probation.
	StrandedRequests int
	Rejoins          int
	// Placements counts arrivals the router admitted to this node
	// (migrations excluded — a migrated session keeps its original
	// placement credit).
	Placements int
	// Report is the node's own engine report. Sessions appear on the node
	// they finished on; a migrated session is struck from its source.
	Report *serving.Report
}

// Report rolls one cluster run up: the per-node reports plus router and
// lifecycle metrics. Apart from Wall (and each node report's Wall), every
// field is deterministic — bit-identical across runs, worker counts, and
// decode paths for a fixed seed.
type Report struct {
	Router   string
	Workload string
	Ticks    int
	Nodes    []NodeReport

	// Rollup over every node's sessions: counts, token totals, exact
	// cluster-wide cache hit rate (from the nodes' raw hit/miss totals),
	// and latency/queueing percentiles recomputed over the merged session
	// set — not averaged node ratios.
	Sessions    int
	TotalTokens int
	GoodTokens  int
	// SimTokS / Goodput sum the node rates: replicas decode concurrently,
	// each against its own simulated memory system.
	SimTokS float64
	Goodput float64
	HitRate float64

	QueueP50, QueueP99           float64
	TurnaroundP50, TurnaroundP99 float64
	Deadlined, Attained          int
	SLOAttainRate                float64
	Classes                      []serving.ClassMetrics

	Preemptions, Retries, Failed, Shed int

	// Router metrics: per-node placement counts, imbalance (max/mean
	// placements — 1.0 is a perfect spread), and cross-node queueing: the
	// total and per-migrant mean ticks migrated sessions spent suspended
	// (their ResumeDelayTicks, which spans the node hop).
	Placements        []int
	Imbalance         float64
	Migrations        int
	// Requeues counts fresh (not-yet-admitted) queue entries re-routed off
	// a draining or failing node — placement paperwork, not live-stream
	// migrations.
	Requeues          int
	MigratedWaitTicks int
	MeanMigrantWait   float64

	// Lifecycle tallies: drains performed and ground-truth crash onsets.
	Drains, Failures int

	// Failure-detector metrics. HeartbeatMisses/Suspects/Confirms/Rejoins
	// tally the detector's transitions; Stranded counts placements made
	// onto already-dead nodes (re-routed with backoff at confirmation —
	// or, detector off, frozen until the node restarts). DetectLagTicks
	// sums crash→confirmation lag over confirms of genuinely dead nodes
	// and MeanDetectLag is its per-confirm mean — the measured cost the
	// zero-lag oracle mode sets to 0. Availability is the fraction of
	// node-ticks the cluster's nodes were actually up.
	HeartbeatMisses int
	Suspects        int
	Confirms        int
	Rejoins         int
	Stranded        int
	DetectLagTicks  int
	MeanDetectLag   float64
	Availability    float64

	// Counts is the merged per-node event tally when Config.Obs was set
	// (nil otherwise) — the input to ReconcileObs.
	Counts *obs.Counts

	// Wall is the host-measured annotation, outside the determinism
	// contract.
	Wall serving.WallClock
}

func (c *Cluster) report(ticks int, wall time.Duration) *Report {
	r := &Report{
		Router: c.router.Name(), Workload: c.w.Name(), Ticks: ticks,
		Placements: append([]int(nil), c.placements...),
		Migrations: c.migrations, Requeues: c.requeues,
		Drains: c.drains, Failures: c.failures,
		HeartbeatMisses: c.hbMisses, Suspects: c.suspects, Confirms: c.confirms,
		Wall: serving.WallClock{Seconds: wall.Seconds()},
	}
	var hits, misses int64
	var sessions []serving.SessionMetrics
	for n, e := range c.nodes {
		nr := e.Finalize(ticks)
		r.Nodes = append(r.Nodes, NodeReport{
			Node: n, Drained: c.drained[n], FailedTicks: c.failTicks[n],
			Crashes: c.crashes[n], DetectLagTicks: c.detectLagN[n],
			StrandedRequests: c.strandedN[n], Rejoins: c.rejoinsN[n],
			Placements: c.placements[n], Report: nr,
		})
		r.Rejoins += c.rejoinsN[n]
		r.Stranded += c.strandedN[n]
		r.DetectLagTicks += c.detectLagN[n]
		r.TotalTokens += nr.TotalTokens
		r.GoodTokens += nr.GoodTokens
		r.SimTokS += nr.SimTokS
		r.Goodput += nr.Goodput
		hits += nr.CacheHits
		misses += nr.CacheMisses
		r.Preemptions += nr.Preemptions
		r.Retries += nr.Retries
		r.Failed += nr.Failed
		r.Shed += nr.Shed
		sessions = append(sessions, nr.Sessions...)
	}
	r.Sessions = len(sessions)
	if t := hits + misses; t > 0 {
		r.HitRate = float64(hits) / float64(t)
	}
	if r.Wall.Seconds > 0 {
		r.Wall.TokS = float64(r.TotalTokens) / r.Wall.Seconds
	}
	queues := make([]float64, 0, len(sessions))
	turns := make([]float64, 0, len(sessions))
	byClass := map[string][]serving.SessionMetrics{}
	for _, sm := range sessions {
		if sm.Outcome != serving.OutcomeShed {
			queues = append(queues, float64(sm.QueueTicks))
		}
		if sm.Outcome == serving.OutcomeOK {
			turns = append(turns, sm.Turnaround)
		}
		if sm.DeadlineTick != serving.NoDeadline && sm.Outcome != serving.OutcomeCancelled {
			r.Deadlined++
			if sm.Attained {
				r.Attained++
			}
		}
		if c.migrated[sm.Index] {
			r.MigratedWaitTicks += sm.ResumeDelayTicks
		}
		class := sm.SLO.Class
		if class == "" {
			class = "default"
		}
		byClass[class] = append(byClass[class], sm)
	}
	r.QueueP50 = serving.Percentile(queues, 0.50)
	r.QueueP99 = serving.Percentile(queues, 0.99)
	r.TurnaroundP50 = serving.Percentile(turns, 0.50)
	r.TurnaroundP99 = serving.Percentile(turns, 0.99)
	r.SLOAttainRate = 1
	if r.Deadlined > 0 {
		r.SLOAttainRate = float64(r.Attained) / float64(r.Deadlined)
	}
	if r.Migrations > 0 {
		r.MeanMigrantWait = float64(r.MigratedWaitTicks) / float64(r.Migrations)
	}
	if c.lagMeasured > 0 {
		r.MeanDetectLag = float64(r.DetectLagTicks) / float64(c.lagMeasured)
	}
	r.Availability = 1
	if ticks > 0 && len(c.nodes) > 0 {
		r.Availability = 1 - float64(c.deadTicks)/float64(ticks*len(c.nodes))
	}
	if total := sum(r.Placements); total > 0 {
		mean := float64(total) / float64(len(r.Placements))
		maxP := 0
		for _, p := range r.Placements {
			if p > maxP {
				maxP = p
			}
		}
		r.Imbalance = float64(maxP) / mean
	}
	names := make([]string, 0, len(byClass))
	for name := range byClass {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r.Classes = append(r.Classes, classMetrics(name, byClass[name]))
	}
	if c.cfg.Obs != nil {
		merged := obs.Counts{}
		for _, rec := range c.recs {
			merged.Add(rec.Counts())
		}
		r.Counts = &merged
	}
	return r
}

// classMetrics mirrors the single-engine per-class aggregation over the
// merged cluster session set.
func classMetrics(name string, sms []serving.SessionMetrics) serving.ClassMetrics {
	cm := serving.ClassMetrics{Class: name, Sessions: len(sms)}
	queues := make([]float64, 0, len(sms))
	turns := make([]float64, 0, len(sms))
	for _, sm := range sms {
		if sm.Outcome != serving.OutcomeShed {
			queues = append(queues, float64(sm.QueueTicks))
		}
		if sm.Outcome == serving.OutcomeOK {
			turns = append(turns, sm.Turnaround)
		}
		if sm.DeadlineTick != serving.NoDeadline && sm.Outcome != serving.OutcomeCancelled {
			cm.Deadlined++
			if sm.Attained {
				cm.Attained++
			}
		}
	}
	cm.AttainRate = 1
	if cm.Deadlined > 0 {
		cm.AttainRate = float64(cm.Attained) / float64(cm.Deadlined)
	}
	cm.QueueP50 = serving.Percentile(queues, 0.50)
	cm.QueueP99 = serving.Percentile(queues, 0.99)
	cm.TurnaroundP50 = serving.Percentile(turns, 0.50)
	cm.TurnaroundP99 = serving.Percentile(turns, 0.99)
	return cm
}

func sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// ReconcileObs cross-checks the merged per-node event counts against the
// rolled-up report — the cluster analogue of serving.Report.ReconcileObs.
// Per-node reconciliation cannot hold under migration (a session admits on
// its source and finishes on its target), but the cluster-wide sums must:
// both sides count each decision exactly once on whichever node made it.
func (r *Report) ReconcileObs() error {
	if r.Counts == nil {
		return fmt.Errorf("cluster: report carries no merged event counts (run with Config.Obs set)")
	}
	var okFinishes, shedSessions, admitted int
	var stepFaults, revocations, cancellations int
	for _, nr := range r.Nodes {
		stepFaults += nr.Report.StepFaults
		revocations += nr.Report.Revocations
		cancellations += nr.Report.Cancellations
		for _, sm := range nr.Report.Sessions {
			switch sm.Outcome {
			case serving.OutcomeOK:
				okFinishes++
				admitted++
			case serving.OutcomeShed:
				shedSessions++
			default:
				admitted++
			}
		}
	}
	c := *r.Counts
	checks := []struct {
		name            string
		events, counter int
	}{
		{"arrivals vs reported sessions", c.Arrivals, r.Sessions},
		{"admit events vs admitted sessions", c.Admits, admitted},
		{"migrate-suspend events vs Report.Migrations", c.Migrations, r.Migrations},
		{"step-fault events vs node step faults", c.StepFaults, stepFaults},
		{"revocation events vs node revocations", c.Revocations, revocations},
		{"cancel-fault events vs node cancellations", c.Cancellations, cancellations},
		{"cancelled finish events vs node cancellations", c.Cancelled, cancellations},
		{"retry events vs Report.Retries", c.Retries, r.Retries},
		{"fault-suspend events vs Report.Retries", c.FaultSuspends, r.Retries},
		{"failed finish events vs Report.Failed", c.Failed, r.Failed},
		{"preemption suspend events vs Report.Preemptions", c.Preemptions, r.Preemptions},
		{"shed+degrade events vs Report.Shed", c.ShedArrivals + c.Degraded, r.Shed},
		{"shed+degrade events vs shed sessions", c.ShedArrivals + c.Degraded, shedSessions},
		{"ok finish events vs ok sessions", c.FinishedOK, okFinishes},
		{"heartbeat-miss events vs Report.HeartbeatMisses", c.HeartbeatMisses, r.HeartbeatMisses},
		{"suspect events vs Report.Suspects", c.Suspects, r.Suspects},
		{"confirm events vs Report.Confirms", c.Confirms, r.Confirms},
		{"rejoin events vs Report.Rejoins", c.Rejoins, r.Rejoins},
		{"strand events vs Report.Stranded", c.Stranded, r.Stranded},
	}
	for _, ck := range checks {
		if ck.events != ck.counter {
			return fmt.Errorf("cluster: observability reconciliation failed on %s: %d event(s) vs %d",
				ck.name, ck.events, ck.counter)
		}
	}
	return nil
}
