package cluster

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/parallel"
	"repro/internal/serving"
	"repro/internal/serving/faults"
	"repro/internal/serving/obs"
	"repro/internal/sparsity"
)

// chaosCluster builds the pinned unscripted-chaos scenario the detector
// tests share: three single-slot exclusive nodes, nine deadlined sessions
// on Poisson arrivals, seeded node chaos (crashes with timed restarts),
// and the requested detector mode. Everything is deterministic for the
// pinned seeds, so the assertions on it are exact pins, not expectations.
func chaosCluster(t *testing.T, mode string, noFuse bool, chaosSeed uint64, rate float64) *Cluster {
	t.Helper()
	reqs := requests(t, 9,
		func(i int) string { return fmt.Sprintf("t%d", i%4) },
		func(i int) int { return 2 },
		func(i int) serving.SLO {
			return serving.SLO{Class: "interactive", Priority: 2, DeadlineTicks: 64}
		})
	w, err := serving.PoissonArrivals(reqs, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Nodes: []serving.Config{
			nodeCfg(serving.ArbExclusive, 1, noFuse),
			nodeCfg(serving.ArbExclusive, 1, noFuse),
			nodeCfg(serving.ArbExclusive, 1, noFuse),
		},
		Router: LeastLoaded(), Seed: 23,
		Chaos:  faults.NodeChaos{Seed: chaosSeed, CrashRate: rate, RecoverTicks: 20},
		Detect: Detect{Mode: mode},
		Obs:    &obs.Config{Window: 8},
	}
	c, err := New(zoo.m, cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func runChaos(t *testing.T, mode string, noFuse bool, chaosSeed uint64, rate float64) (*Report, []obs.Event) {
	t.Helper()
	c := chaosCluster(t, mode, noFuse, chaosSeed, rate)
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.ReconcileObs(); err != nil {
		t.Fatal(err)
	}
	return rep, c.Events()
}

// The health-state names double as obs event details; both directions of
// that contract are pinned here (dipbench re-checks it at the CLI layer).
func TestHealthNamesAreObsDetails(t *testing.T) {
	states := []Health{Healthy, Suspect, Down, Rejoining}
	names := HealthNames()
	if len(states) != len(names) {
		t.Fatalf("HealthNames lists %d names for %d states", len(names), len(states))
	}
	details := obs.DetailNames()
	for i, h := range states {
		if h.String() != names[i] {
			t.Errorf("state %d stringifies to %q, HealthNames says %q", i, h.String(), names[i])
		}
		found := false
		for _, d := range details {
			if d == h.String() {
				found = true
			}
		}
		if !found {
			t.Errorf("health state %q is not a registered obs detail", h.String())
		}
	}
	for _, mode := range DetectModes() {
		if err := (Detect{Mode: mode}).Validate(); err != nil {
			t.Errorf("listed detector mode %q does not validate: %v", mode, err)
		}
	}
}

// Satellite: lifecycle/chaos validation — conflicting or out-of-range
// configs must come back as named errors at New, not as mid-run surprises.
func TestClusterLifecycleValidationNamedErrors(t *testing.T) {
	trained(t)
	reqs := requests(t, 2,
		func(i int) string { return "v" },
		func(i int) int { return 2 },
		func(i int) serving.SLO { return serving.SLO{} })
	base := func() Config {
		return Config{
			Nodes: []serving.Config{
				nodeCfg(serving.ArbExclusive, 1, false),
				nodeCfg(serving.ArbExclusive, 1, false),
			},
			Router: LeastLoaded(), Seed: 5,
		}
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"failure overlapping drain", func(c *Config) {
			c.DrainTick, c.DrainNode = 10, 1
			c.Failures = []Failure{{Node: 1, Tick: 6, Ticks: 8}}
		}, "overlaps the drain"},
		{"crash rate above one", func(c *Config) { c.Chaos.CrashRate = 1.5 }, "CrashRate"},
		{"negative crash rate", func(c *Config) { c.Chaos.CrashRate = -0.1 }, "CrashRate"},
		{"gray rate above one", func(c *Config) { c.Chaos.GrayRate = 2 }, "GrayRate"},
		{"drop rate above one", func(c *Config) { c.Chaos.DropRate = 1.01 }, "DropRate"},
		{"negative recover ticks", func(c *Config) {
			c.Chaos.CrashRate, c.Chaos.RecoverTicks = 0.1, -1
		}, "RecoverTicks"},
		{"unknown detector mode", func(c *Config) { c.Detect.Mode = "psychic" }, "Detect.Mode"},
		{"negative confirm threshold", func(c *Config) { c.Detect.MissConfirm = -2 }, "MissConfirm"},
		{"negative probation", func(c *Config) { c.Detect.ProbationTicks = -1 }, "ProbationTicks"},
		{"chaos on a single node", func(c *Config) {
			c.Nodes = c.Nodes[:1]
			c.Chaos.CrashRate = 0.1
		}, "at least 2 nodes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			if _, err := New(zoo.m, cfg, serving.FixedBatch(reqs)); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not name %q", err, tc.want)
			}
		})
	}
	// A failure strictly before the drain on the same node stays legal.
	cfg := base()
	cfg.DrainTick, cfg.DrainNode = 40, 1
	cfg.Failures = []Failure{{Node: 1, Tick: 6, Ticks: 8}}
	if _, err := New(zoo.m, cfg, serving.FixedBatch(reqs)); err != nil {
		t.Fatalf("failure ending before the drain rejected: %v", err)
	}
}

// The headline, pinned on a seeded chaos trace with crashes and recoveries:
// detection lag is a real, measured cost. The zero-lag oracle bounds the
// heartbeat detector from above, the detector-off run (stranded work frozen
// until restart) from below, and the detector's mean lag is strictly
// positive while the oracle's is exactly zero.
func TestDetectionLagIsPricedAgainstOracleAndOff(t *testing.T) {
	trained(t)
	hb, _ := runChaos(t, "heartbeat", false, 29, 0.02)
	or, _ := runChaos(t, "oracle", false, 29, 0.02)
	off, _ := runChaos(t, "off", false, 29, 0.02)

	if hb.Failures == 0 || hb.Rejoins == 0 {
		t.Fatalf("scenario broken: %d crashes, %d rejoins — chaos did not exercise crash+recover", hb.Failures, hb.Rejoins)
	}
	if hb.DetectLagTicks <= 0 || hb.MeanDetectLag <= 0 {
		t.Fatalf("heartbeat detector shows no detection lag: total %d mean %v", hb.DetectLagTicks, hb.MeanDetectLag)
	}
	if or.DetectLagTicks != 0 || or.MeanDetectLag != 0 {
		t.Fatalf("oracle detector shows nonzero lag: total %d mean %v", or.DetectLagTicks, or.MeanDetectLag)
	}
	if off.Confirms != 0 || off.Migrations != 0 {
		t.Fatalf("detector-off run still confirmed (%d) or failed over (%d)", off.Confirms, off.Migrations)
	}
	if hb.Confirms == 0 || hb.Migrations == 0 {
		t.Fatalf("heartbeat detector never failed over: %d confirms, %d migrations", hb.Confirms, hb.Migrations)
	}
	if or.SLOAttainRate < hb.SLOAttainRate {
		t.Fatalf("zero-lag oracle attains %v, below the lagged detector's %v", or.SLOAttainRate, hb.SLOAttainRate)
	}
	if hb.SLOAttainRate <= off.SLOAttainRate {
		t.Fatalf("detector attainment %v does not beat the detector-off baseline %v", hb.SLOAttainRate, off.SLOAttainRate)
	}
	if hb.Availability <= 0 || hb.Availability >= 1 {
		t.Fatalf("availability %v not in (0, 1) despite real outages", hb.Availability)
	}
	// The two detecting modes replay the same trace and see the same ground
	// truth (the off run drags on longer, so later chaos draws may add
	// crashes there — run length is part of ground truth, not a free knob).
	if hb.Failures != or.Failures {
		t.Fatalf("detector modes disagree on ground-truth crashes: hb=%d oracle=%d", hb.Failures, or.Failures)
	}
}

// The chaos acceptance pin: one unscripted crash+recover run — detector,
// stranded placements, rejoins and all — must be bit-identical across
// worker counts and the fused/unfused decode paths: rolled-up report via
// DeepEqual, merged event log byte for byte. Run under -race this also
// proves the detector and the gray-fault wrapper never race the node
// fan-out.
func TestClusterChaosDeterministicAcrossWorkerCountsAndFuse(t *testing.T) {
	trained(t)
	defer parallel.SetProcs(parallel.Procs())
	var baseRep *Report
	var baseLog []byte
	for _, noFuse := range []bool{false, true} {
		for _, procs := range []int{4, 1} {
			parallel.SetProcs(procs)
			rep, events := runChaos(t, "heartbeat", noFuse, 19, 0.04)
			stripWall(rep)
			if rep.Rejoins == 0 || rep.Stranded == 0 || rep.DetectLagTicks == 0 {
				t.Fatalf("scenario broken at noFuse=%v procs=%d: rejoins=%d stranded=%d lag=%d",
					noFuse, procs, rep.Rejoins, rep.Stranded, rep.DetectLagTicks)
			}
			var buf bytes.Buffer
			if err := obs.WriteJSONL(&buf, events); err != nil {
				t.Fatal(err)
			}
			if baseRep == nil {
				baseRep, baseLog = rep, buf.Bytes()
				continue
			}
			if !reflect.DeepEqual(baseRep, rep) {
				t.Fatalf("chaos report diverges at noFuse=%v procs=%d", noFuse, procs)
			}
			if !bytes.Equal(baseLog, buf.Bytes()) {
				t.Fatalf("merged chaos event log diverges at noFuse=%v procs=%d", noFuse, procs)
			}
		}
	}
}

// A crashed node that recovers rejoins behind warm-up probation and then
// serves new sessions bit-identical to a node that never failed: the
// session placed onto the rejoined node must reproduce an uninterrupted
// solo SystemEvaluate exactly — cold caches change nothing about a fresh
// session's decode.
func TestRejoinedNodeServesNewSessionsBitIdenticalToSolo(t *testing.T) {
	trained(t)
	// Fixed arrival ticks via a trace: session "a" at tick 0 lands on node
	// 0 and decodes throughout; node 1 crashes at tick 1, restarts at tick
	// 9, and is mid-probation when "b" arrives at tick 12 — the least-loaded
	// router places "b" on the rejoining node (one unit of warm-up work is
	// allowed) while node 0 is still busy.
	entries := []serving.TraceEntry{
		{ID: "a", Tick: 0, Tokens: 96, Start: 0},
		{ID: "b", Tick: 12, Tokens: 96, Start: 256},
	}
	w, err := serving.TraceWorkload(entries, serving.TraceBinder{
		Corpus: zoo.tokens,
		Scheme: func(string) (sparsity.Scheme, error) { return sparsity.NewDIPCA(0.5, 0.2), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Nodes: []serving.Config{
			nodeCfg(serving.ArbExclusive, 1, false),
			nodeCfg(serving.ArbExclusive, 1, false),
		},
		Router: LeastLoaded(), Seed: 5,
		Failures: []Failure{{Node: 1, Tick: 1, Ticks: 8}},
		Obs:      &obs.Config{},
	}
	c, err := New(zoo.m, cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.ReconcileObs(); err != nil {
		t.Fatal(err)
	}
	n1 := rep.Nodes[1]
	if n1.Crashes != 1 || n1.Rejoins != 1 {
		t.Fatalf("node 1 lifecycle: %d crashes, %d rejoins, want 1/1", n1.Crashes, n1.Rejoins)
	}
	if len(n1.Report.Sessions) != 1 || n1.Report.Sessions[0].ID != "b" {
		t.Fatalf("rejoined node served %+v, want exactly session b", n1.Report.Sessions)
	}
	sm := n1.Report.Sessions[0]
	if sm.Outcome != serving.OutcomeOK {
		t.Fatalf("session b finished %q, want ok", sm.Outcome)
	}
	solo, err := eval.SystemEvaluate(zoo.m, sparsity.NewDIPCA(0.5, 0.2), zoo.tokens[256:352], sysCfg())
	if err != nil {
		t.Fatal(err)
	}
	if sm.Point != solo {
		t.Fatalf("rejoined node diverged from a never-failed node:\nserved %+v\nsolo   %+v", sm.Point, solo)
	}
	if rep.Stranded != 0 || rep.Migrations != 0 {
		t.Fatalf("scenario drifted: %d stranded, %d migrations, want a clean rejoin placement", rep.Stranded, rep.Migrations)
	}
}

// Satellite: the fair/greedy suspend-resume spec, pinned at cluster level.
// A session evacuated off a crashed fair-share (or greedy) node releases
// its partition, so the failover resume re-fills a cold cache: with a
// cache-independent scheme (plain DIP, as in the single-engine spec) decode
// quality stays bit-equal to the same session in an undisturbed cluster,
// the cache hit rate strictly drops, and the wasted re-prefill work is
// priced in cluster goodput — same tokens, strictly lower goodput.
func TestClusterFailoverUnderFairAndGreedyPaysReprefillNotQuality(t *testing.T) {
	trained(t)
	for _, arb := range []serving.ArbPolicy{serving.ArbFairShare, serving.ArbGreedy} {
		run := func(fail bool) *Report {
			reqs := make([]serving.Request, 2)
			for i := range reqs {
				lo := i * 256
				reqs[i] = serving.Request{
					ID:     fmt.Sprintf("solo/s%02d", i),
					Scheme: sparsity.NewDIP(0.5),
					Tokens: zoo.tokens[lo : lo+96],
				}
			}
			cfg := Config{
				Nodes: []serving.Config{
					nodeCfg(arb, 1, false),
					nodeCfg(arb, 1, false),
				},
				Router: LeastLoaded(), Seed: 5,
			}
			if fail {
				// Node 1 crashes at tick 2 — mid-decode for its session —
				// and never comes back; the detector confirms and evacuates.
				cfg.Failures = []Failure{{Node: 1, Tick: 2, Ticks: 1000}}
			}
			c, err := New(zoo.m, cfg, serving.FixedBatch(reqs))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}
		base := run(false)
		fail := run(true)
		if fail.Migrations != 1 {
			t.Fatalf("arb=%v: expected exactly one failover migration, got %d", arb, fail.Migrations)
		}
		sess := func(r *Report, id string) serving.SessionMetrics {
			for _, nr := range r.Nodes {
				for _, sm := range nr.Report.Sessions {
					if sm.ID == id {
						return sm
					}
				}
			}
			t.Fatalf("arb=%v: no session %q", arb, id)
			return serving.SessionMetrics{}
		}
		for _, id := range []string{"solo/s00", "solo/s01"} {
			b, f := sess(base, id), sess(fail, id)
			if f.Outcome != serving.OutcomeOK {
				t.Fatalf("arb=%v: session %q finished %q, want ok", arb, id, f.Outcome)
			}
			if f.Point.PPL != b.Point.PPL || f.Point.Density != b.Point.Density {
				t.Fatalf("arb=%v: failover changed session %q decode quality:\nfail %+v\nbase %+v", arb, id, f.Point, b.Point)
			}
		}
		// The migrated session (node 1's at placement, finishing on node 0)
		// pays the cold re-prefill in hit rate.
		migrated := ""
		for _, sm := range base.Nodes[1].Report.Sessions {
			migrated = sm.ID
		}
		if migrated == "" {
			t.Fatalf("arb=%v: baseline placed nothing on node 1", arb)
		}
		bm, fm := sess(base, migrated), sess(fail, migrated)
		if fm.Point.HitRate >= bm.Point.HitRate {
			t.Fatalf("arb=%v: cold failover resume did not cost session %q hit rate: %v vs %v",
				arb, migrated, fm.Point.HitRate, bm.Point.HitRate)
		}
		// Same tokens served, strictly lower goodput: the re-prefill ticks
		// are wasted work the cluster pays for.
		if fail.TotalTokens != base.TotalTokens || fail.GoodTokens != base.GoodTokens {
			t.Fatalf("arb=%v: failover changed token totals: %d/%d vs %d/%d",
				arb, fail.TotalTokens, fail.GoodTokens, base.TotalTokens, base.GoodTokens)
		}
		if fail.Goodput >= base.Goodput {
			t.Fatalf("arb=%v: failover wasted work is not priced in goodput: %v vs %v",
				arb, fail.Goodput, base.Goodput)
		}
	}
}

// Satellite: with chaos off and every node healthy the detector pass is a
// pure scalar scan — zero allocations per tick, so clusters that never
// crash pay nothing for the detection machinery.
func TestDetectTickZeroAllocWhenChaosOff(t *testing.T) {
	trained(t)
	reqs := requests(t, 2,
		func(i int) string { return "z" },
		func(i int) int { return 2 },
		func(i int) serving.SLO { return serving.SLO{} })
	c, err := New(zoo.m, Config{
		Nodes: []serving.Config{
			nodeCfg(serving.ArbExclusive, 1, false),
			nodeCfg(serving.ArbExclusive, 1, false),
		},
		Router: LeastLoaded(), Seed: 5,
	}, serving.FixedBatch(reqs))
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := c.detectTick(7); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("detector pass allocates %v objects/tick with chaos off, want 0", allocs)
	}
}
