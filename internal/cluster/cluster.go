// Package cluster is the deterministic simulated cluster: N replica
// serving.Engines on one shared tick clock behind a pluggable session
// Router, with per-node configs (heterogeneous cache budgets, schedulers,
// arbitration), node lifecycle — administrative drain and fault-injected
// node failure with failover — and a cluster-level Report that rolls up
// the per-node reports plus router metrics.
//
// The control plane is serial and runs on tick boundaries in node order:
// same-tick arrivals are shuffled by the cluster's seeded RNG and routed
// one at a time (each placement sees the loads left by the previous one),
// lifecycle transitions fire before routing so a draining or failed node
// never receives new work, and migrants are re-placed through the same
// router. Only the node decode ticks fan out over internal/parallel, with
// results collected in node index order, so the whole cluster — the
// rolled-up Report and the merged per-node event logs — is bit-identical
// across worker counts, fused/unfused decode, and REPRO_PROCS.
//
// Failover moves live state: a failing node parks its active sessions
// through the capacity-dip suspension machinery, then every queued entry
// — suspended streams included — migrates to surviving nodes, carrying
// private cache state through the eval.Stream Release/Regrant hooks (the
// simulated analogue of shipping KV/cache state with the session). A
// migrated exclusive-arbitration session is therefore bit-identical to an
// uninterrupted solo run, the same invariant the single engine holds for
// preemption.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/serving"
	"repro/internal/serving/obs"
	"repro/internal/tensor"
)

// Failure schedules a fault-injected node outage: at Tick the node parks
// its batch (capacity dip), evacuates its queue to surviving nodes, and
// stays unroutable for Ticks ticks.
type Failure struct {
	Node, Tick, Ticks int
}

// Config tunes the cluster.
type Config struct {
	// Nodes carries one serving.Config per replica; heterogeneous budgets,
	// schedulers, and arbitration are allowed. Node Obs recorders must be
	// nil — the cluster owns per-node recorders (see Obs).
	Nodes []serving.Config
	// Router places arrivals and migrants (nil = ConsistentHash).
	Router Router
	// Seed drives the cluster's same-tick arrival shuffle.
	Seed uint64
	// DrainTick > 0 administratively drains DrainNode at that tick: the
	// node stops receiving placements, its queue migrates, and its active
	// sessions decode to completion locally. Requires at least two nodes.
	DrainTick int
	DrainNode int
	// Failures schedules node outages (see Failure). Requires ≥ 2 nodes.
	Failures []Failure
	// Obs, when non-nil, attaches one recorder per node; the cluster report
	// then carries the merged event counts and Events() returns the k-way
	// merged per-node logs.
	Obs *obs.Config
}

// Cluster drives N replica engines on one shared tick clock.
type Cluster struct {
	cfg    Config
	w      serving.Workload
	reqs   []serving.Request
	router Router
	nodes  []*serving.Engine
	recs   []*obs.Recorder // per node; nil entries with Obs unset

	drained     []bool
	failedUntil []int // node is unroutable while tick < failedUntil[node]
	failTicks   []int // per node: total outage ticks consumed
	fconsumed   []bool
	placements  []int
	migrated    map[int]bool // request indices that crossed nodes
	migrations  int          // suspended-session migrations (fresh re-routes excluded)
	requeues    int          // fresh queue entries re-routed by drain/failover
	drains      int
	failures    int
	order       int
	ran         bool

	cand    []int
	loads   []Load
	shuffle []int
}

// New validates the topology and builds one engine per node against the
// shared workload. Every engine plans the full request universe, so a
// session can migrate to any node and keep its pricing.
func New(m *model.Model, cfg Config, w serving.Workload) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	if cfg.Router == nil {
		cfg.Router = ConsistentHash()
	}
	if cfg.DrainTick < 0 {
		return nil, fmt.Errorf("cluster: negative drain tick %d", cfg.DrainTick)
	}
	if cfg.DrainTick > 0 {
		if len(cfg.Nodes) < 2 {
			return nil, fmt.Errorf("cluster: draining needs at least 2 nodes, have %d", len(cfg.Nodes))
		}
		if cfg.DrainNode < 0 || cfg.DrainNode >= len(cfg.Nodes) {
			return nil, fmt.Errorf("cluster: drain node %d outside the %d-node cluster", cfg.DrainNode, len(cfg.Nodes))
		}
	}
	for _, f := range cfg.Failures {
		if len(cfg.Nodes) < 2 {
			return nil, fmt.Errorf("cluster: failover needs at least 2 nodes, have %d", len(cfg.Nodes))
		}
		if f.Node < 0 || f.Node >= len(cfg.Nodes) {
			return nil, fmt.Errorf("cluster: failure node %d outside the %d-node cluster", f.Node, len(cfg.Nodes))
		}
		if f.Tick < 0 || f.Ticks <= 0 {
			return nil, fmt.Errorf("cluster: failure at tick %d for %d ticks is not a future outage", f.Tick, f.Ticks)
		}
	}
	if cfg.DrainTick > 0 || len(cfg.Failures) > 0 {
		// Migration moves live streams between nodes, and a stream's
		// deferred-commit mode is fixed at construction: shared and
		// partitioned arbitration cannot exchange sessions.
		shared := cfg.Nodes[0].Arb == serving.ArbShared
		for i, nc := range cfg.Nodes[1:] {
			if (nc.Arb == serving.ArbShared) != shared {
				return nil, fmt.Errorf("cluster: node %d mixes shared and partitioned arbitration; migration cannot cross that boundary", i+1)
			}
		}
	}
	c := &Cluster{
		cfg: cfg, w: w, reqs: w.Requests(), router: cfg.Router,
		nodes:       make([]*serving.Engine, len(cfg.Nodes)),
		recs:        make([]*obs.Recorder, len(cfg.Nodes)),
		drained:     make([]bool, len(cfg.Nodes)),
		failedUntil: make([]int, len(cfg.Nodes)),
		failTicks:   make([]int, len(cfg.Nodes)),
		fconsumed:   make([]bool, len(cfg.Failures)),
		placements:  make([]int, len(cfg.Nodes)),
		migrated:    map[int]bool{},
		loads:       make([]Load, len(cfg.Nodes)),
	}
	for i, nc := range cfg.Nodes {
		if nc.Obs != nil {
			return nil, fmt.Errorf("cluster: node %d carries its own recorder; set Config.Obs instead", i)
		}
		if cfg.Obs != nil {
			c.recs[i] = obs.NewRecorder(*cfg.Obs)
			nc.Obs = c.recs[i]
		}
		e, err := serving.NewEngine(m, nc, w)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		c.nodes[i] = e
	}
	return c, nil
}

// Nodes returns the number of replicas.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Events returns the merged per-node event logs (nil without Config.Obs):
// each event stamped with its node, interleaved by (tick, node) with
// intra-node order preserved — see obs.MergeEvents.
func (c *Cluster) Events() []obs.Event {
	if c.cfg.Obs == nil {
		return nil
	}
	logs := make([][]obs.Event, len(c.recs))
	for i, r := range c.recs {
		logs[i] = r.Events()
	}
	return obs.MergeEvents(logs...)
}

// routable collects the nodes accepting placements at tick, in ascending
// node order.
func (c *Cluster) routable(tick int) []int {
	c.cand = c.cand[:0]
	for n := range c.nodes {
		if c.drained[n] || tick < c.failedUntil[n] {
			continue
		}
		c.cand = append(c.cand, n)
	}
	return c.cand
}

// refreshLoads snapshots every node's load signal for the router.
func (c *Cluster) refreshLoads() []Load {
	for n, e := range c.nodes {
		c.loads[n] = Load{Queued: e.QueueDepth(), Active: e.ActiveCount(), Slots: e.Slots()}
	}
	return c.loads
}

// route picks the node for one request among the currently routable nodes.
func (c *Cluster) route(req serving.Request, tick int) (int, error) {
	cand := c.routable(tick)
	if len(cand) == 0 {
		return 0, fmt.Errorf("cluster: no routable node at tick %d (all drained or failed)", tick)
	}
	n := c.router.Route(req, cand, c.refreshLoads())
	for _, ok := range cand {
		if n == ok {
			return n, nil
		}
	}
	return 0, fmt.Errorf("cluster: router %q placed %q on unroutable node %d", c.router.Name(), req.ID, n)
}

// migrate re-places extracted queue entries on surviving nodes, one at a
// time through the router (each placement sees the loads the previous one
// left). The source is already marked drained or failed, so it is not a
// candidate. Suspended-session migrants count toward the migration metric;
// fresh entries are just re-routed paperwork.
func (c *Cluster) migrate(migs []*serving.Migrant, tick int) error {
	for _, mig := range migs {
		node, err := c.route(mig.Entry.Req, tick)
		if err != nil {
			return fmt.Errorf("cluster: migrating %q: %w", mig.Entry.Req.ID, err)
		}
		if err := c.nodes[node].Accept(mig, tick); err != nil {
			return err
		}
		if mig.Entry.Sess != nil {
			c.migrations++
			c.migrated[mig.Entry.Index] = true
		} else {
			c.requeues++
		}
	}
	return nil
}

// lifecycle applies drain and failure transitions due at tick, in node
// order, before any routing: a node entering drain or an outage never
// receives that tick's arrivals, and its migrants re-route to survivors.
func (c *Cluster) lifecycle(tick int) error {
	for n := range c.nodes {
		if c.cfg.DrainTick > 0 && n == c.cfg.DrainNode && !c.drained[n] && tick >= c.cfg.DrainTick {
			c.drained[n] = true
			c.drains++
			if err := c.migrate(c.nodes[n].ExtractQueue(tick), tick); err != nil {
				return err
			}
		}
		for fi, f := range c.cfg.Failures {
			if f.Node != n || c.fconsumed[fi] || tick < f.Tick || tick >= f.Tick+f.Ticks {
				continue
			}
			c.fconsumed[fi] = true
			c.failures++
			c.failTicks[n] += f.Ticks
			if f.Tick+f.Ticks > c.failedUntil[n] {
				c.failedUntil[n] = f.Tick + f.Ticks
			}
			if err := c.migrate(c.nodes[n].Evacuate(tick), tick); err != nil {
				return err
			}
		}
	}
	return nil
}

// nextLifecycle reports the earliest future lifecycle boundary the clock
// must not skip: a pending drain or an unconsumed failure onset.
func (c *Cluster) nextLifecycle(tick int) (next int, ok bool) {
	if c.cfg.DrainTick > tick && !c.drained[c.cfg.DrainNode] {
		next, ok = c.cfg.DrainTick, true
	}
	for fi, f := range c.cfg.Failures {
		if !c.fconsumed[fi] && f.Tick > tick && (!ok || f.Tick < next) {
			next, ok = f.Tick, true
		}
	}
	return next, ok
}

// Run drains the workload across the cluster and returns the rolled-up
// report. The loop mirrors a single engine's: lifecycle, then routed
// arrivals, then one parallel node tick with index-ordered collection,
// then either a clock increment or a fast-forward to the next event.
func (c *Cluster) Run() (*Report, error) {
	if c.ran {
		return nil, fmt.Errorf("cluster: cluster already ran")
	}
	c.ran = true
	wallStart := time.Now()
	for _, e := range c.nodes {
		if err := e.Begin(); err != nil {
			return nil, err
		}
	}
	rng := tensor.NewRNG(c.cfg.Seed)
	var finished []serving.Finished
	type stepResult struct {
		fin     []serving.Finished
		stepped bool
		err     error
	}
	steps := make([]stepResult, len(c.nodes))
	tick := 0
	for !c.w.Done() || c.busy() {
		if err := c.lifecycle(tick); err != nil {
			return nil, err
		}
		arrivals := c.w.Next(tick, finished)
		finished = finished[:0]
		if len(arrivals) > 1 {
			perm := rng.Perm(len(arrivals))
			c.shuffle = c.shuffle[:0]
			for _, j := range perm {
				c.shuffle = append(c.shuffle, arrivals[j])
			}
			arrivals = c.shuffle
		}
		for _, idx := range arrivals {
			if idx < 0 || idx >= len(c.reqs) {
				return nil, fmt.Errorf("cluster: workload %q yielded request index %d outside its %d-request universe",
					c.w.Name(), idx, len(c.reqs))
			}
			node, err := c.route(c.reqs[idx], tick)
			if err != nil {
				return nil, err
			}
			shed, err := c.nodes[node].Inject(idx, tick, c.order)
			if err != nil {
				return nil, err
			}
			if shed {
				finished = append(finished, serving.Finished{Index: idx, ID: c.reqs[idx].ID, Tick: tick})
			} else {
				c.order++
				c.placements[node]++
			}
		}
		// One cluster tick: every node steps concurrently — node state is
		// disjoint and recorders are per-node — and results are collected
		// in node index order, so the merged outcome is order-independent
		// of the worker pool.
		parallel.For(len(c.nodes), 1, func(lo, hi int) {
			for n := lo; n < hi; n++ {
				fin, stepped, err := c.nodes[n].StepTick(tick)
				steps[n] = stepResult{fin: fin, stepped: stepped, err: err}
			}
		})
		stepped := false
		for n := range steps {
			if steps[n].err != nil {
				return nil, fmt.Errorf("cluster: node %d: %w", n, steps[n].err)
			}
			finished = append(finished, steps[n].fin...)
			stepped = stepped || steps[n].stepped
		}
		if !stepped {
			next, ok := c.w.NextArrival()
			if ok && next <= tick {
				ok = false
			}
			for _, e := range c.nodes {
				if nt, nok := e.NextEvent(tick); nok && (!ok || nt < next) {
					next, ok = nt, true
				}
			}
			if nt, nok := c.nextLifecycle(tick); nok && (!ok || nt < next) {
				next, ok = nt, true
			}
			if len(finished) > 0 && (!ok || tick+1 < next) {
				next, ok = tick+1, true
			}
			if !ok {
				if c.w.Done() && c.queued() == 0 {
					break
				}
				return nil, fmt.Errorf("cluster: workload %q stalled at tick %d: not done, nothing active, next arrival %d (ok=%v)",
					c.w.Name(), tick, next, ok)
			}
			tick = next
			continue
		}
		tick++
	}
	return c.report(tick, time.Since(wallStart)), nil
}

func (c *Cluster) busy() bool {
	for _, e := range c.nodes {
		if e.Busy() {
			return true
		}
	}
	return false
}

func (c *Cluster) queued() int {
	total := 0
	for _, e := range c.nodes {
		total += e.QueueDepth()
	}
	return total
}
