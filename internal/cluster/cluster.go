// Package cluster is the deterministic simulated cluster: N replica
// serving.Engines on one shared tick clock behind a pluggable session
// Router, with per-node configs (heterogeneous cache budgets, schedulers,
// arbitration), node lifecycle — administrative drain, scripted and
// unscripted node failure with detector-driven failover, recovery, and
// rejoin — and a cluster-level Report that rolls up the per-node reports
// plus router and detector metrics.
//
// The control plane is serial and runs on tick boundaries in node order:
// same-tick arrivals are shuffled by the cluster's seeded RNG and routed
// one at a time (each placement sees the loads left by the previous one),
// lifecycle transitions and the failure-detector pass fire before routing,
// and migrants are re-placed through the same router. Only the node decode
// ticks fan out over internal/parallel, with results collected in node
// index order, so the whole cluster — the rolled-up Report and the merged
// per-node event logs — is bit-identical across worker counts,
// fused/unfused decode, and REPRO_PROCS.
//
// Failure is not free: nodes go down unannounced — on a scripted Failure
// tick or an unscripted chaos draw — and the cluster only learns of it
// through the heartbeat failure detector (see Detect and health.go).
// Between the crash and the confirmation the router still trusts the dead
// node: placements made in that window are stranded and re-routed with
// retry backoff only at confirmation, and failover migration happens at
// the confirmation tick, not the failure tick — detection lag is a real,
// measured cost. A crashed node restarts after its outage, rejoins behind
// a warm-up probation, and serves new sessions bit-identically to a node
// that never failed.
//
// Failover moves live state: a confirmed-down node parks its active
// sessions through the capacity-dip suspension machinery, then every
// queued entry — suspended streams included — migrates to surviving
// nodes, carrying private cache state through the eval.Stream
// Release/Regrant hooks (the simulated analogue of shipping KV/cache
// state with the session). A migrated exclusive-arbitration session is
// therefore bit-identical to an uninterrupted solo run, the same
// invariant the single engine holds for preemption.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/serving"
	"repro/internal/serving/faults"
	"repro/internal/serving/obs"
	"repro/internal/tensor"
)

// Failure schedules one scripted node outage: the node crashes at Tick —
// unannounced; the failure detector has to notice — and restarts at
// Tick+Ticks. Scripted failures feed the same lifecycle machine as
// unscripted chaos (Config.Chaos).
type Failure struct {
	Node, Tick, Ticks int
}

// Config tunes the cluster.
type Config struct {
	// Nodes carries one serving.Config per replica; heterogeneous budgets,
	// schedulers, and arbitration are allowed. Node Obs recorders must be
	// nil — the cluster owns per-node recorders (see Obs).
	Nodes []serving.Config
	// Router places arrivals and migrants (nil = ConsistentHash).
	Router Router
	// Seed drives the cluster's same-tick arrival shuffle.
	Seed uint64
	// DrainTick > 0 administratively drains DrainNode at that tick: the
	// node stops receiving placements, its queue migrates, and its active
	// sessions decode to completion locally. Requires at least two nodes.
	// A scripted Failure may not overlap the drain on the same node.
	DrainTick int
	DrainNode int
	// Failures schedules node outages (see Failure). Requires ≥ 2 nodes.
	Failures []Failure
	// Chaos schedules unscripted node lifecycle chaos — seeded crashes
	// with timed restarts, gray windows, heartbeat drops (see
	// faults.NodeChaos). The zero value is off; enabling it requires ≥ 2
	// nodes.
	Chaos faults.NodeChaos
	// Detect tunes the failure detector watching the nodes' heartbeats
	// (see Detect); the zero value is the heartbeat detector at default
	// thresholds.
	Detect Detect
	// Retry shapes the backoff applied when stranded requests re-route at
	// confirmation; the zero value uses the faults defaults.
	Retry faults.RetryPolicy
	// Obs, when non-nil, attaches one recorder per node; the cluster report
	// then carries the merged event counts and Events() returns the k-way
	// merged per-node logs.
	Obs *obs.Config
}

// Cluster drives N replica engines on one shared tick clock.
type Cluster struct {
	cfg    Config
	w      serving.Workload
	reqs   []serving.Request
	router Router
	nodes  []*serving.Engine
	recs   []*obs.Recorder // per node; nil entries with Obs unset

	drained    []bool
	failTicks  []int // per node: executed ticks spent ground-truth dead
	placements []int
	migrated   map[int]bool       // request indices that crossed nodes
	parked     []*serving.Migrant // migrants with nowhere to go during a total outage
	held       []int              // arrivals held at the ingress during a total outage
	migrations int                // suspended-session migrations (fresh re-routes excluded)
	requeues   int          // fresh queue entries re-routed by drain/failover
	drains     int
	failures   int // ground-truth crash onsets (scripted and unscripted)
	order      int
	ran        bool

	// Failure detection (see health.go). Ground truth: wasDead mirrors
	// deadAt at the last detector pass, crashTick the latest onset.
	// Detector view: health, probation, and the tallies the report rolls
	// up. strandAttempts counts, per request index, how many times a
	// placement landed on a dead node — the attempt number its failover
	// backoff is drawn from.
	plan           *faults.NodePlan // nil with chaos off
	detect         Detect           // defaulted
	mode           int              // detHeartbeat | detOracle | detOff
	retry          faults.RetryPolicy
	health         []Health
	wasDead        []bool
	crashTick      []int
	probation      []int
	crashes        []int
	detectLagN     []int
	strandedN      []int
	rejoinsN       []int
	strandAttempts map[int]int
	hbMisses       int
	suspects       int
	confirms       int
	lagMeasured    int // confirms of genuinely dead nodes (the lag samples)
	deadTicks      int // total node-ticks spent ground-truth dead
	stallHorizon   int

	cand    []int
	loads   []Load
	shuffle []int
}

// Detector modes, parsed from Detect.Mode.
const (
	detHeartbeat = iota
	detOracle
	detOff
)

// New validates the topology and builds one engine per node against the
// shared workload. Every engine plans the full request universe, so a
// session can migrate to any node and keep its pricing.
func New(m *model.Model, cfg Config, w serving.Workload) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	if cfg.Router == nil {
		cfg.Router = ConsistentHash()
	}
	if cfg.DrainTick < 0 {
		return nil, fmt.Errorf("cluster: negative drain tick %d", cfg.DrainTick)
	}
	if cfg.DrainTick > 0 {
		if len(cfg.Nodes) < 2 {
			return nil, fmt.Errorf("cluster: draining needs at least 2 nodes, have %d", len(cfg.Nodes))
		}
		if cfg.DrainNode < 0 || cfg.DrainNode >= len(cfg.Nodes) {
			return nil, fmt.Errorf("cluster: drain node %d outside the %d-node cluster", cfg.DrainNode, len(cfg.Nodes))
		}
	}
	maxOutageEnd := 0
	for i, f := range cfg.Failures {
		if len(cfg.Nodes) < 2 {
			return nil, fmt.Errorf("cluster: failover needs at least 2 nodes, have %d", len(cfg.Nodes))
		}
		if f.Node < 0 || f.Node >= len(cfg.Nodes) {
			return nil, fmt.Errorf("cluster: failure node %d outside the %d-node cluster", f.Node, len(cfg.Nodes))
		}
		if f.Tick < 0 || f.Ticks <= 0 {
			return nil, fmt.Errorf("cluster: failure at tick %d for %d ticks is not a future outage", f.Tick, f.Ticks)
		}
		if cfg.DrainTick > 0 && f.Node == cfg.DrainNode && f.Tick+f.Ticks > cfg.DrainTick {
			// A node cannot be administratively drained and crashed at
			// once: the drain promises its active sessions finish locally,
			// the outage would freeze them.
			return nil, fmt.Errorf("cluster: failure %d overlaps the drain of node %d: outage [%d, %d) crosses the drain at tick %d",
				i, cfg.DrainNode, f.Tick, f.Tick+f.Ticks, cfg.DrainTick)
		}
		if f.Tick+f.Ticks > maxOutageEnd {
			maxOutageEnd = f.Tick + f.Ticks
		}
	}
	if err := cfg.Chaos.Validate(); err != nil {
		return nil, err
	}
	if cfg.Chaos.Enabled() && len(cfg.Nodes) < 2 {
		return nil, fmt.Errorf("cluster: node chaos needs at least 2 nodes, have %d", len(cfg.Nodes))
	}
	if err := cfg.Detect.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Retry.Validate(); err != nil {
		return nil, err
	}
	if cfg.DrainTick > 0 || len(cfg.Failures) > 0 || cfg.Chaos.Enabled() {
		// Migration moves live streams between nodes, and a stream's
		// deferred-commit mode is fixed at construction: shared and
		// partitioned arbitration cannot exchange sessions.
		shared := cfg.Nodes[0].Arb == serving.ArbShared
		for i, nc := range cfg.Nodes[1:] {
			if (nc.Arb == serving.ArbShared) != shared {
				return nil, fmt.Errorf("cluster: node %d mixes shared and partitioned arbitration; migration cannot cross that boundary", i+1)
			}
		}
	}
	c := &Cluster{
		cfg: cfg, w: w, reqs: w.Requests(), router: cfg.Router,
		nodes:          make([]*serving.Engine, len(cfg.Nodes)),
		recs:           make([]*obs.Recorder, len(cfg.Nodes)),
		drained:        make([]bool, len(cfg.Nodes)),
		failTicks:      make([]int, len(cfg.Nodes)),
		placements:     make([]int, len(cfg.Nodes)),
		migrated:       map[int]bool{},
		loads:          make([]Load, len(cfg.Nodes)),
		detect:         cfg.Detect.withDefaults(),
		retry:          cfg.Retry.WithDefaults(),
		health:         make([]Health, len(cfg.Nodes)),
		wasDead:        make([]bool, len(cfg.Nodes)),
		crashTick:      make([]int, len(cfg.Nodes)),
		probation:      make([]int, len(cfg.Nodes)),
		crashes:        make([]int, len(cfg.Nodes)),
		detectLagN:     make([]int, len(cfg.Nodes)),
		strandedN:      make([]int, len(cfg.Nodes)),
		rejoinsN:       make([]int, len(cfg.Nodes)),
		strandAttempts: map[int]int{},
	}
	switch c.detect.Mode {
	case "oracle":
		c.mode = detOracle
	case "off":
		c.mode = detOff
	default:
		c.mode = detHeartbeat
	}
	chaos := cfg.Chaos.WithDefaults()
	if cfg.Chaos.Enabled() {
		plan, err := faults.NewNodePlan(cfg.Chaos)
		if err != nil {
			return nil, err
		}
		c.plan = plan
	}
	// The stall horizon bounds how long the clock may advance with no
	// engine progress — frozen outages resolve within the scripted windows
	// plus the chaos restart, detection, and probation horizons; anything
	// beyond that is a livelock, reported instead of spun on.
	c.stallHorizon = maxOutageEnd + cfg.DrainTick +
		16*chaos.RecoverTicks + chaos.GrayTicks +
		c.detect.MissConfirm + c.detect.ProbationTicks + 256
	for i, nc := range cfg.Nodes {
		if nc.Obs != nil {
			return nil, fmt.Errorf("cluster: node %d carries its own recorder; set Config.Obs instead", i)
		}
		if cfg.Obs != nil {
			c.recs[i] = obs.NewRecorder(*cfg.Obs)
			nc.Obs = c.recs[i]
		}
		if c.plan != nil && chaos.GrayRate > 0 {
			// Gray windows dip the node's decode capacity through the
			// ordinary slot-level fault machinery.
			nc.Faults = grayFaults{inner: nc.Faults, plan: c.plan, node: i}
		}
		e, err := serving.NewEngine(m, nc, w)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		c.nodes[i] = e
	}
	return c, nil
}

// Nodes returns the number of replicas.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Events returns the merged per-node event logs (nil without Config.Obs):
// each event stamped with its node, interleaved by (tick, node) with
// intra-node order preserved — see obs.MergeEvents.
func (c *Cluster) Events() []obs.Event {
	if c.cfg.Obs == nil {
		return nil
	}
	logs := make([][]obs.Event, len(c.recs))
	for i, r := range c.recs {
		logs[i] = r.Events()
	}
	return obs.MergeEvents(logs...)
}

// routable collects the nodes accepting placements at tick, in ascending
// node order, gated by the detector's health view: Down nodes never take
// work, Suspect nodes only when no other candidate remains, and Rejoining
// nodes only while lightly loaded (warm-up probation — below half their
// slots of held work). Dead-but-still-Healthy nodes stay routable: the
// detector has not noticed yet, and placements onto them strand. Assumes
// c.loads is fresh (route refreshes it first).
func (c *Cluster) routable(tick int) []int {
	c.cand = c.cand[:0]
	for n := range c.nodes {
		if c.drained[n] {
			continue
		}
		switch c.health[n] {
		case Down, Suspect:
			continue
		case Rejoining:
			if c.loads[n].Queued+c.loads[n].Active >= warmCap(c.loads[n].Slots) {
				continue
			}
		}
		c.cand = append(c.cand, n)
	}
	if len(c.cand) == 0 {
		// Fall back to Suspect (and fully warmed Rejoining) nodes rather
		// than dropping traffic; only confirmed-Down nodes stay excluded.
		for n := range c.nodes {
			if !c.drained[n] && c.health[n] != Down {
				c.cand = append(c.cand, n)
			}
		}
	}
	return c.cand
}

// warmCap is the held-work ceiling a Rejoining node may take placements
// under: half its batch width, at least one.
func warmCap(slots int) int {
	cap := (slots + 1) / 2
	if cap < 1 {
		cap = 1
	}
	return cap
}

// refreshLoads snapshots every node's load signal for the router.
func (c *Cluster) refreshLoads() []Load {
	for n, e := range c.nodes {
		c.loads[n] = Load{Queued: e.QueueDepth(), Active: e.ActiveCount(), Slots: e.Slots()}
	}
	return c.loads
}

// route picks the node for one request among the currently routable nodes.
func (c *Cluster) route(req serving.Request, tick int) (int, error) {
	c.refreshLoads()
	cand := c.routable(tick)
	if len(cand) == 0 {
		return 0, fmt.Errorf("cluster: no routable node at tick %d (all drained or down)", tick)
	}
	n := c.router.Route(req, cand, c.loads)
	for _, ok := range cand {
		if n == ok {
			return n, nil
		}
	}
	return 0, fmt.Errorf("cluster: router %q placed %q on unroutable node %d", c.router.Name(), req.ID, n)
}

// migrate re-places extracted queue entries on surviving nodes, one at a
// time through the router (each placement sees the loads the previous one
// left). The source is already marked drained or failed, so it is not a
// candidate. Suspended-session migrants count toward the migration metric;
// fresh entries are just re-routed paperwork.
func (c *Cluster) migrate(migs []*serving.Migrant, tick int) error {
	for _, mig := range migs {
		c.refreshLoads()
		if len(c.routable(tick)) == 0 {
			// Total outage: every surviving node is down or drained. The
			// migrant parks in the control plane and re-places on the first
			// detector pass that finds a routable node again.
			c.parked = append(c.parked, mig)
			continue
		}
		node, err := c.route(mig.Entry.Req, tick)
		if err != nil {
			return fmt.Errorf("cluster: migrating %q: %w", mig.Entry.Req.ID, err)
		}
		if err := c.nodes[node].Accept(mig, tick); err != nil {
			return err
		}
		if mig.Entry.Sess != nil {
			c.migrations++
			c.migrated[mig.Entry.Index] = true
		} else {
			c.requeues++
			// A re-route can itself land on a dead-but-unsuspected node.
			c.noteStrand(node, tick, mig.Entry.Index, mig.Entry.Req.ID)
		}
	}
	return nil
}

// lifecycle applies the transitions due at tick, in node order, before any
// routing: the administrative drain first, then one failure-detector pass
// (ground-truth crash/restart edges, health transitions, and any
// confirmation-triggered failover — see health.go). A node entering drain
// or confirmed Down never receives that tick's arrivals, and its migrants
// re-route to survivors.
func (c *Cluster) lifecycle(tick int) error {
	for n := range c.nodes {
		if c.cfg.DrainTick > 0 && n == c.cfg.DrainNode && !c.drained[n] && tick >= c.cfg.DrainTick {
			c.drained[n] = true
			c.drains++
			if err := c.migrate(c.nodes[n].ExtractQueue(tick), tick); err != nil {
				return err
			}
		}
	}
	return c.detectTick(tick)
}

// nextLifecycle reports the earliest future lifecycle boundary the clock
// must not skip. While the detector is armed — chaos can draw a crash on
// any tick, or some node is dead or mid-transition — that is every tick;
// otherwise only a pending drain or scripted failure onset pins the clock.
func (c *Cluster) nextLifecycle(tick int) (next int, ok bool) {
	if c.armed() {
		return tick + 1, true
	}
	if c.cfg.DrainTick > tick && !c.drained[c.cfg.DrainNode] {
		next, ok = c.cfg.DrainTick, true
	}
	for _, f := range c.cfg.Failures {
		if f.Tick > tick && (!ok || f.Tick < next) {
			next, ok = f.Tick, true
		}
	}
	return next, ok
}

// Run drains the workload across the cluster and returns the rolled-up
// report. The loop mirrors a single engine's: lifecycle, then routed
// arrivals, then one parallel node tick with index-ordered collection,
// then either a clock increment or a fast-forward to the next event.
func (c *Cluster) Run() (*Report, error) {
	if c.ran {
		return nil, fmt.Errorf("cluster: cluster already ran")
	}
	c.ran = true
	wallStart := time.Now() //lint:allow wallclock Wall annotation origin; the cluster advances only on the shared tick clock
	for _, e := range c.nodes {
		if err := e.Begin(); err != nil {
			return nil, err
		}
	}
	rng := tensor.NewRNG(c.cfg.Seed)
	var finished []serving.Finished
	type stepResult struct {
		fin     []serving.Finished
		stepped bool
		err     error
	}
	steps := make([]stepResult, len(c.nodes))
	// place routes one request index onto a node and injects it. During a
	// total outage — every surviving node down or drained — the request
	// waits at the cluster ingress instead and is injected when the
	// detector readmits a node; its SLO clock starts at that later
	// injection tick.
	place := func(idx, tick int) error {
		c.refreshLoads()
		if len(c.routable(tick)) == 0 {
			c.held = append(c.held, idx)
			return nil
		}
		node, err := c.route(c.reqs[idx], tick)
		if err != nil {
			return err
		}
		shed, err := c.nodes[node].Inject(idx, tick, c.order)
		if err != nil {
			return err
		}
		if shed {
			finished = append(finished, serving.Finished{Index: idx, ID: c.reqs[idx].ID, Tick: tick})
		} else {
			c.order++
			c.placements[node]++
			// The detector may still trust a node that is already dead; a
			// placement onto one is stranded until the confirmation
			// re-routes it.
			c.noteStrand(node, tick, idx, c.reqs[idx].ID)
		}
		return nil
	}
	tick, lastProgress := 0, 0
	for !c.w.Done() || c.busy() || len(c.parked) > 0 || len(c.held) > 0 {
		if err := c.lifecycle(tick); err != nil {
			return nil, err
		}
		if len(c.held) > 0 {
			// Drain the ingress hold ahead of this tick's arrivals, in the
			// order the requests were held (place re-holds whatever still
			// finds no routable node).
			held := c.held
			c.held = nil
			for _, idx := range held {
				if err := place(idx, tick); err != nil {
					return nil, err
				}
			}
		}
		arrivals := c.w.Next(tick, finished)
		finished = finished[:0]
		if len(arrivals) > 1 {
			perm := rng.Perm(len(arrivals))
			c.shuffle = c.shuffle[:0]
			for _, j := range perm {
				c.shuffle = append(c.shuffle, arrivals[j])
			}
			arrivals = c.shuffle
		}
		for _, idx := range arrivals {
			if idx < 0 || idx >= len(c.reqs) {
				return nil, fmt.Errorf("cluster: workload %q yielded request index %d outside its %d-request universe",
					c.w.Name(), idx, len(c.reqs))
			}
			if err := place(idx, tick); err != nil {
				return nil, err
			}
		}
		// One cluster tick: every live node steps concurrently — node
		// state is disjoint and recorders are per-node — and results are
		// collected in node index order, so the merged outcome is
		// order-independent of the worker pool. Ground-truth-dead nodes
		// are frozen: their queues and suspended sessions hold state but
		// nothing decodes until restart (or evacuation at confirmation).
		parallel.For(len(c.nodes), 1, func(lo, hi int) {
			for n := lo; n < hi; n++ {
				if c.wasDead[n] {
					steps[n] = stepResult{}
					continue
				}
				fin, stepped, err := c.nodes[n].StepTick(tick)
				steps[n] = stepResult{fin: fin, stepped: stepped, err: err}
			}
		})
		stepped := false
		for n := range steps {
			if steps[n].err != nil {
				return nil, fmt.Errorf("cluster: node %d: %w", n, steps[n].err)
			}
			finished = append(finished, steps[n].fin...)
			stepped = stepped || steps[n].stepped
		}
		if stepped || len(arrivals) > 0 {
			lastProgress = tick
		}
		if tick-lastProgress > c.stallHorizon {
			return nil, fmt.Errorf("cluster: no node progressed for %d ticks (tick %d): work is frozen beyond every restart and probation horizon",
				c.stallHorizon, tick)
		}
		if !stepped {
			next, ok := c.w.NextArrival()
			if ok && next <= tick {
				ok = false
			}
			for _, e := range c.nodes {
				if nt, nok := e.NextEvent(tick); nok && (!ok || nt < next) {
					next, ok = nt, true
				}
			}
			if nt, nok := c.nextLifecycle(tick); nok && (!ok || nt < next) {
				next, ok = nt, true
			}
			if len(finished) > 0 && (!ok || tick+1 < next) {
				next, ok = tick+1, true
			}
			if !ok {
				if c.w.Done() && c.queued() == 0 {
					break
				}
				return nil, fmt.Errorf("cluster: workload %q stalled at tick %d: not done, nothing active, next arrival %d (ok=%v)",
					c.w.Name(), tick, next, ok)
			}
			tick = next
			continue
		}
		tick++
	}
	return c.report(tick, time.Since(wallStart)), nil //lint:allow wallclock feeds Report.Wall only; every other report field is tick-clocked
}

func (c *Cluster) busy() bool {
	for _, e := range c.nodes {
		if e.Busy() {
			return true
		}
	}
	return false
}

func (c *Cluster) queued() int {
	total := len(c.parked) + len(c.held)
	for _, e := range c.nodes {
		total += e.QueueDepth()
	}
	return total
}
