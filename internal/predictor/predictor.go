// Package predictor implements DejaVu-style sparsity predictors (Liu et
// al., 2023): one small MLP per transformer layer that maps the MLP input
// to per-unit logits, trained with cross-entropy against binary targets —
// the top-10% largest GLU activations for SwiGLU models, or the naturally
// active (non-zero) units for ReLU models. Section 3.3 of the paper shows
// these predictors work on ReLU-fied models and fail on SwiGLU ones; the
// fig6 experiment reproduces that contrast with this implementation.
package predictor

import (
	"io"
	"math"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// Predictor is a two-layer ReLU MLP: dim → hidden → dff logits.
type Predictor struct {
	L1, L2 *nn.Linear
	Hidden int
}

// NewPredictor allocates a predictor for one layer.
func NewPredictor(layer, dim, hidden, dff int, rng *tensor.RNG) *Predictor {
	return &Predictor{
		L1:     nn.NewLinear("pred.l1", hidden, dim, rng),
		L2:     nn.NewLinear("pred.l2", dff, hidden, rng),
		Hidden: hidden,
	}
}

// Params implements nn.Module.
func (p *Predictor) Params() []*nn.Param { return []*nn.Param{p.L1.P, p.L2.P} }

// Score returns the per-unit logits for input x.
func (p *Predictor) Score(x tensor.Vec) tensor.Vec {
	h := tensor.MatVec(p.L1.P.W, x, nil)
	for i, v := range h {
		h[i] = tensor.ReLU(v)
	}
	return tensor.MatVec(p.L2.P.W, h, nil)
}

// trainStep accumulates gradients of the per-unit sigmoid cross-entropy
// against the binary targets and returns the loss.
func (p *Predictor) trainStep(x tensor.Vec, target []bool) float64 {
	h := tensor.MatVec(p.L1.P.W, x, nil)
	hr := h.Clone()
	for i, v := range hr {
		hr[i] = tensor.ReLU(v)
	}
	logits := tensor.MatVec(p.L2.P.W, hr, nil)
	var loss float64
	dlogits := tensor.NewVec(len(logits))
	for i, lg := range logits {
		pi := tensor.Sigmoid(lg)
		y := float32(0)
		if target[i] {
			y = 1
		}
		// Stable BCE: log(1+exp(-|z|)) + max(z,0) − z·y.
		z := float64(lg)
		if z > 0 {
			loss += z - z*float64(y) + logOnePlusExp(-z)
		} else {
			loss += -z*float64(y) + logOnePlusExp(z)
		}
		dlogits[i] = (pi - y) / float32(len(logits))
	}
	tensor.AddOuter(p.L2.P.G, 1, dlogits, hr)
	dh := tensor.MatTVec(p.L2.P.W, dlogits, nil)
	for i := range dh {
		if h[i] <= 0 {
			dh[i] = 0
		}
	}
	tensor.AddOuter(p.L1.P.G, 1, dh, x)
	return loss / float64(len(logits))
}

func logOnePlusExp(z float64) float64 {
	// z ≤ 0 here, so exp(z) ≤ 1 and this is stable.
	return math.Log1p(math.Exp(z))
}

// Set is one predictor per layer plus the target fraction they were
// trained for.
type Set struct {
	Per []*Predictor
	// TopFrac is the positive-target fraction used in training (0.10).
	TopFrac float64
}

// TrainOpts configures predictor training.
type TrainOpts struct {
	// Hidden is the predictor hidden width (the paper uses 1000 units on
	// 4k-wide models; scaled here). Defaults to dim/2.
	Hidden int
	// Epochs over the collected calibration activations (default 8).
	Epochs int
	// MaxTokens bounds calibration MLP evaluations per layer (default 384).
	MaxTokens int
	// LR is the Adam learning rate (default 3e-3).
	LR float32
	// TopFrac is the positive-target fraction (default 0.10).
	TopFrac float64
	Seed    uint64
	Log     io.Writer
}

// DefaultTrainOpts mirrors the paper's protocol at reproduction scale.
func DefaultTrainOpts() TrainOpts {
	return TrainOpts{Epochs: 8, MaxTokens: 384, LR: 3e-3, TopFrac: 0.10, Seed: 77}
}

// Train fits one predictor per layer on the model's calibration
// activations. Targets are the TopFrac largest |GLU| units per token for
// SwiGLU models; for ReLU models the naturally active units are used.
func Train(m *model.Model, tokens []int, win int, opts TrainOpts) *Set {
	if opts.Hidden == 0 {
		opts.Hidden = m.Cfg.Dim / 2
	}
	if opts.Epochs == 0 {
		opts.Epochs = 8
	}
	if opts.MaxTokens == 0 {
		opts.MaxTokens = 384
	}
	if opts.LR == 0 {
		opts.LR = 3e-3
	}
	if opts.TopFrac == 0 {
		opts.TopFrac = 0.10
	}
	L := len(m.Blocks)
	rng := tensor.NewRNG(opts.Seed)
	// Collect (x, target) pairs per layer.
	type sample struct {
		x      tensor.Vec
		target []bool
	}
	samples := make([][]sample, L)
	count := 0
	scratch := tensor.NewVec(m.Cfg.DFF) // reused |GLU| score buffer
	hook := func(layer int, x tensor.Vec) tensor.Vec {
		mlp := m.Blocks[layer].MLP
		if layer == 0 {
			count++
		}
		if count <= opts.MaxTokens {
			h := mlp.GLU(x, nil)
			var target []bool
			if m.Cfg.Act == nn.ActReLU {
				target = make([]bool, len(h))
				anyActive := false
				for i, v := range h {
					if v != 0 {
						target[i] = true
						anyActive = true
					}
				}
				if !anyActive {
					target = tensor.TopKAbsMask(h, 1, scratch)
				}
			} else {
				k := int(opts.TopFrac*float64(len(h)) + 0.5)
				if k < 1 {
					k = 1
				}
				target = tensor.TopKAbsMask(h, k, scratch)
			}
			samples[layer] = append(samples[layer], sample{x: x.Clone(), target: target})
			return tensor.MatVec(mlp.Down.P.W, h, nil)
		}
		return mlp.Apply(x)
	}
	for start := 0; start+win <= len(tokens) && count < opts.MaxTokens; start += win {
		m.Forward(tokens[start:start+win], hook)
	}
	// Pre-draw every layer's init stream and epoch permutations serially —
	// the exact order the sequential implementation consumed the parent RNG —
	// so per-layer training can fan out across workers while remaining
	// bit-identical to a serial run.
	set := &Set{TopFrac: opts.TopFrac, Per: make([]*Predictor, L)}
	inits := make([]*tensor.RNG, L)
	perms := make([][][]int, L)
	for l := 0; l < L; l++ {
		inits[l] = rng.Split(uint64(l))
		perms[l] = make([][]int, opts.Epochs)
		for ep := 0; ep < opts.Epochs; ep++ {
			perms[l][ep] = rng.Perm(len(samples[l]))
		}
	}
	parallel.For(L, 1, func(lo, hi int) {
		for l := lo; l < hi; l++ {
			p := NewPredictor(l, m.Cfg.Dim, opts.Hidden, m.Cfg.DFF, inits[l])
			opt := nn.NewAdam(opts.LR)
			for ep := 0; ep < opts.Epochs; ep++ {
				for _, i := range perms[l][ep] {
					s := samples[l][i]
					p.trainStep(s.x, s.target)
					opt.Step(p.Params(), 1)
				}
			}
			set.Per[l] = p
		}
	})
	return set
}

// ScoreFunc adapts the set to the sparsity.Predictive interface.
func (s *Set) ScoreFunc() sparsity.ScoreFunc {
	return func(layer int, x tensor.Vec) tensor.Vec {
		return s.Per[layer].Score(x)
	}
}

// ParamCount returns the total predictor weights (the DejaVu memory
// overhead reported in Section 6.2).
func (s *Set) ParamCount() int {
	n := 0
	for _, p := range s.Per {
		n += nn.CountParams(p)
	}
	return n
}

// RecallAtK measures, over evaluation tokens, the mean fraction of the
// true top-K GLU units that the predictor ranks in its own top-K — the
// quantity that determines predictive pruning quality (Figure 6).
func RecallAtK(m *model.Model, s *Set, tokens []int, win int, rho float64, maxTokens int) float64 {
	var total float64
	var n int
	count := 0
	scratch := tensor.NewVec(m.Cfg.DFF)
	hook := func(layer int, x tensor.Vec) tensor.Vec {
		mlp := m.Blocks[layer].MLP
		if layer == 0 {
			count++
		}
		if count <= maxTokens {
			h := mlp.GLU(x, nil)
			k := int(rho*float64(len(h)) + 0.5)
			if k < 1 {
				k = 1
			}
			truth := tensor.TopKAbsMask(h, k, scratch)
			predIdx := tensor.TopKIndices(s.Per[layer].Score(x), k)
			hit := 0
			for _, i := range predIdx {
				if truth[i] {
					hit++
				}
			}
			total += float64(hit) / float64(k)
			n++
			return tensor.MatVec(mlp.Down.P.W, h, nil)
		}
		return mlp.Apply(x)
	}
	for start := 0; start+win <= len(tokens) && count < maxTokens; start += win {
		m.Forward(tokens[start:start+win], hook)
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}
