package predictor

import (
	"testing"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

func trainedTiny(t *testing.T, act nn.Activation, seed uint64) (*model.Model, []int, []int) {
	t.Helper()
	tok := data.NewTokenizer()
	splits := data.NewSplits(41, 12000, 2500)
	cfg := model.Config{
		Name: "tiny-pred", Vocab: tok.VocabSize(), Dim: 16, Layers: 2,
		Heads: 2, KVHeads: 1, DFF: 48, MaxSeq: 32, Act: act,
	}
	m := model.New(cfg, seed)
	opts := model.DefaultTrainOpts()
	opts.Steps = 80
	opts.Batch = 2
	opts.SeqLen = 31
	if _, err := model.Train(m, tok.Encode(splits.Train), opts); err != nil {
		t.Fatal(err)
	}
	return m, tok.Encode(splits.Calib), tok.Encode(splits.Valid)
}

func TestPredictorLearnsPlantedRule(t *testing.T) {
	// Synthetic task: unit i is "active" iff x[i mod dim] > 0 — a linearly
	// decidable rule the predictor must learn nearly perfectly.
	rng := tensor.NewRNG(1)
	dim, dff := 8, 16
	p := NewPredictor(0, dim, 16, dff, rng)
	opt := nn.NewAdam(5e-3)
	var first, last float64
	for it := 0; it < 1500; it++ {
		x := tensor.NewVec(dim)
		for j := range x {
			x[j] = rng.NormFloat32()
		}
		target := make([]bool, dff)
		for i := 0; i < dff; i++ {
			target[i] = x[i%dim] > 0
		}
		loss := p.trainStep(x, target)
		if it == 0 {
			first = loss
		}
		last = loss
		opt.Step(p.Params(), 1)
	}
	if last > first/2 {
		t.Fatalf("predictor failed to learn planted rule: %.4f -> %.4f", first, last)
	}
	// Check accuracy on fresh samples.
	correct, total := 0, 0
	for s := 0; s < 50; s++ {
		x := tensor.NewVec(dim)
		for j := range x {
			x[j] = rng.NormFloat32()
		}
		scores := p.Score(x)
		for i := 0; i < dff; i++ {
			pred := scores[i] > 0
			want := x[i%dim] > 0
			if pred == want {
				correct++
			}
			total++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.85 {
		t.Fatalf("planted-rule accuracy %.3f too low", acc)
	}
}

func TestReluPredictableSwigluNot(t *testing.T) {
	// The Section 3.3 result: the same predictor protocol achieves far
	// higher top-K recall on a ReLU model than on a SwiGLU model.
	relu, reluCalib, reluValid := trainedTiny(t, nn.ActReLU, 7)
	silu, siluCalib, siluValid := trainedTiny(t, nn.ActSiLU, 7)
	opts := DefaultTrainOpts()
	opts.Epochs = 6
	opts.MaxTokens = 256
	pr := Train(relu, reluCalib, 31, opts)
	ps := Train(silu, siluCalib, 31, opts)
	recallRelu := RecallAtK(relu, pr, reluValid, 31, 0.5, 128)
	recallSilu := RecallAtK(silu, ps, siluValid, 31, 0.5, 128)
	t.Logf("recall@50%%: relu=%.3f silu=%.3f", recallRelu, recallSilu)
	if recallRelu <= recallSilu {
		t.Fatalf("expected ReLU recall (%.3f) above SwiGLU recall (%.3f)", recallRelu, recallSilu)
	}
	if recallRelu < 0.6 {
		t.Fatalf("ReLU model should be predictable, recall %.3f", recallRelu)
	}
}

func TestScoreFuncAndParamCount(t *testing.T) {
	m, calib, _ := trainedTiny(t, nn.ActSiLU, 9)
	opts := DefaultTrainOpts()
	opts.Epochs = 1
	opts.MaxTokens = 64
	set := Train(m, calib, 31, opts)
	if len(set.Per) != len(m.Blocks) {
		t.Fatal("one predictor per layer expected")
	}
	sf := set.ScoreFunc()
	x := tensor.NewVec(m.Cfg.Dim)
	x[0] = 1
	s := sf(1, x)
	if len(s) != m.Cfg.DFF {
		t.Fatalf("score length %d, want %d", len(s), m.Cfg.DFF)
	}
	wantPer := m.Cfg.Dim*(m.Cfg.Dim/2) + (m.Cfg.Dim/2)*m.Cfg.DFF
	if set.ParamCount() != wantPer*len(m.Blocks) {
		t.Fatalf("param count %d, want %d", set.ParamCount(), wantPer*len(m.Blocks))
	}
	// The set plugs into the Predictive scheme.
	scheme := &sparsity.Predictive{Rho: 0.5, Score: sf, ParamsPerLayer: wantPer}
	y, ta := scheme.Forward(0, x, m.Blocks[0].MLP, nil)
	if len(y) != m.Cfg.Dim {
		t.Fatal("scheme output wrong size")
	}
	if len(ta.Groups[sparsity.GroupDown].Units) != m.Cfg.DFF/2 {
		t.Fatal("scheme kept wrong unit count")
	}
}

func TestRecallAtKEmptyStream(t *testing.T) {
	m, calib, _ := trainedTiny(t, nn.ActSiLU, 11)
	opts := DefaultTrainOpts()
	opts.Epochs = 1
	opts.MaxTokens = 32
	set := Train(m, calib, 31, opts)
	if got := RecallAtK(m, set, []int{1, 2}, 31, 0.5, 10); got != 0 {
		t.Fatalf("too-short stream recall = %v, want 0", got)
	}
}
