package model

import (
	"fmt"

	"repro/internal/nn"
)

// The simulated model family. Names carry a "-sim" suffix to make explicit
// that these are scaled-down analogs of the paper's models (see DESIGN.md,
// "Substitutions"): the relative ordering of widths/depths matches the real
// family (Phi-3-Medium largest, Phi-3-Mini smallest), which is what the
// cross-model comparisons in Tables 1–4 exercise.
const (
	Phi3MedSim    = "phi3med-sim"
	Llama8BSim    = "llama8b-sim"
	Mistral7BSim  = "mistral7b-sim"
	Phi3MiniSim   = "phi3mini-sim"
	ReluFiedSim   = "relufied-sim" // TurboSparse-Mistral analog
	DefaultVocab  = 39             // len(data.Alphabet)
	DefaultMaxSeq = 96
)

// Scale selects the size regime: ScaleTest keeps unit tests and benches
// fast on one core; ScalePaper is used by cmd/dipbench for the full
// experiment suite.
type Scale int

const (
	// ScaleTest is the miniature regime for go test / go test -bench.
	ScaleTest Scale = iota
	// ScalePaper is the full regime for regenerating tables and figures.
	ScalePaper
)

// ConfigFor returns the architecture for a named model analog at a scale.
func ConfigFor(name string, scale Scale) (Config, error) {
	type dims struct{ dim, layers, heads, kv, dff int }
	var d dims
	switch name {
	case Phi3MedSim:
		d = dims{64, 4, 4, 2, 192}
	case Llama8BSim:
		d = dims{48, 4, 4, 2, 144}
	case Mistral7BSim:
		d = dims{48, 3, 4, 2, 144}
	case Phi3MiniSim:
		d = dims{32, 3, 4, 2, 96}
	case ReluFiedSim:
		d = dims{48, 3, 4, 2, 144}
	default:
		return Config{}, fmt.Errorf("model: unknown analog %q", name)
	}
	if scale == ScaleTest {
		d.dim /= 2
		d.dff /= 2
		if d.layers > 2 {
			d.layers = 2
		}
		if d.dim%d.heads != 0 {
			d.heads = 2
		}
	}
	act := nn.ActSiLU
	if name == ReluFiedSim {
		act = nn.ActReLU
	}
	return Config{
		Name:    name,
		Vocab:   DefaultVocab,
		Dim:     d.dim,
		Layers:  d.layers,
		Heads:   d.heads,
		KVHeads: d.kv,
		DFF:     d.dff,
		MaxSeq:  DefaultMaxSeq,
		Act:     act,
	}, nil
}

// AnalogNames lists the four SwiGLU analogs in the order tables present
// them (Phi3Med, Phi3Mini, Llama8B, Mistral7B).
func AnalogNames() []string {
	return []string{Phi3MedSim, Phi3MiniSim, Llama8BSim, Mistral7BSim}
}
