package model

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestSamplerGreedy(t *testing.T) {
	s := &Sampler{}
	if got := s.Next(tensor.Vec{0.1, 5, 0.3}); got != 1 {
		t.Fatalf("greedy = %d", got)
	}
}

func TestSamplerTopKRestricts(t *testing.T) {
	s := &Sampler{Temperature: 1, TopK: 2, Seed: 3}
	logits := tensor.Vec{10, 9, -50, -50, -50}
	for i := 0; i < 200; i++ {
		got := s.Next(logits)
		if got != 0 && got != 1 {
			t.Fatalf("top-2 sampling drew token %d", got)
		}
	}
}

func TestSamplerTopPRestricts(t *testing.T) {
	// Token 0 has ~99% mass; nucleus 0.5 must always pick it.
	s := &Sampler{Temperature: 1, TopP: 0.5, Seed: 7}
	logits := tensor.Vec{10, 1, 1, 1}
	for i := 0; i < 100; i++ {
		if got := s.Next(logits); got != 0 {
			t.Fatalf("nucleus sampling drew token %d", got)
		}
	}
}

func TestSamplerTemperatureSpreads(t *testing.T) {
	logits := tensor.Vec{1, 0.9, 0.8, 0.7}
	cold := &Sampler{Temperature: 0.01, Seed: 1}
	hot := &Sampler{Temperature: 5, Seed: 1}
	count := func(s *Sampler) map[int]int {
		c := map[int]int{}
		for i := 0; i < 500; i++ {
			c[s.Next(logits)]++
		}
		return c
	}
	coldC, hotC := count(cold), count(hot)
	if coldC[0] < 450 {
		t.Fatalf("cold sampling should concentrate: %v", coldC)
	}
	if hotC[0] > 400 {
		t.Fatalf("hot sampling should spread: %v", hotC)
	}
	// Hot sampling still covers every token eventually.
	for i := 0; i < 4; i++ {
		if hotC[i] == 0 {
			t.Fatalf("hot sampling never drew token %d: %v", i, hotC)
		}
	}
}

func TestSamplerDeterministicPerSeed(t *testing.T) {
	logits := tensor.Vec{1, 1, 1}
	a := &Sampler{Temperature: 1, Seed: 42}
	b := &Sampler{Temperature: 1, Seed: 42}
	for i := 0; i < 50; i++ {
		if a.Next(logits) != b.Next(logits) {
			t.Fatal("same-seed samplers diverged")
		}
	}
}

func TestGenerateWith(t *testing.T) {
	m := New(tinyConfig(), 83)
	s := &Sampler{Temperature: 0.9, TopK: 5, Seed: 11}
	out := GenerateWith(m, []int{1, 2}, 8, s, nil)
	if len(out) != 8 {
		t.Fatalf("generated %d tokens", len(out))
	}
	for _, id := range out {
		if id < 0 || id >= m.Cfg.Vocab {
			t.Fatalf("invalid token %d", id)
		}
	}
	// Distribution sanity: greedy GenerateWith matches Generate greedy.
	g1 := GenerateWith(m, []int{1, 2}, 5, &Sampler{}, nil)
	g2 := Generate(m, []int{1, 2}, 5, 0, 9, nil)
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatal("greedy GenerateWith disagrees with Generate")
		}
	}
	// Sampler statistics: probabilities proportional within the nucleus.
	probs := map[int]int{}
	s2 := &Sampler{Temperature: 1, Seed: 5}
	logits := tensor.Vec{2, 1, 0}
	for i := 0; i < 3000; i++ {
		probs[s2.Next(logits)]++
	}
	p := tensor.Softmax(tensor.Vec{2, 1, 0}, nil)
	for i := 0; i < 3; i++ {
		want := float64(p[i])
		got := float64(probs[i]) / 3000
		if math.Abs(got-want) > 0.05 {
			t.Fatalf("token %d frequency %.3f, want %.3f", i, got, want)
		}
	}
}
