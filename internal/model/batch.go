package model

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// BatchMLPHook replaces the dense MLP for a whole batch of decode steps:
// xs (Dim × B) holds the post-norm MLP inputs of the B sessions and the
// hook must write each session's block output into the matching column of
// out (Dim × B). It is the batched analogue of MLPHook; the sparsity
// package's ForwardBatch provides implementations for every scheme.
type BatchMLPHook func(layer int, xs *tensor.Mat, out *tensor.Mat)

// DecodeBatch is the scratch arena of fused multi-session decode steps: the
// per-slot residual vectors, the gathered batch matrices handed to the
// multi-RHS kernels, and the nn-level scratch. A zero value is ready to
// use; everything is sized lazily and reused across steps, so a
// steady-state StepBatch allocates nothing here (the only per-step
// allocations are the appended KV entries, as in the single path).
type DecodeBatch struct {
	x      []tensor.Vec // per-slot residual streams
	buf    tensor.Vec   // per-slot norm staging (serial across slots)
	xn     *tensor.Mat  // Dim × B post-norm gather
	aOut   *tensor.Mat  // Dim × B attention outputs
	mOut   *tensor.Mat  // Dim × B MLP outputs
	nf     *tensor.Mat  // Dim × B final-norm gather
	logits *tensor.Mat  // Vocab × B
	kvs    []*nn.KVCache
	attn   nn.AttnBatchScratch
	mlp    nn.MLPBatchScratch
}

// ensure sizes the arena for a batch of width B over model m.
func (s *DecodeBatch) ensure(m *Model, B int) {
	dim := m.Cfg.Dim
	for len(s.x) < B {
		s.x = append(s.x, tensor.NewVec(dim))
	}
	if len(s.x) > 0 && len(s.x[0]) != dim {
		for b := range s.x {
			s.x[b] = tensor.NewVec(dim)
		}
	}
	s.buf = tensor.Reuse(s.buf, dim)
	s.xn = tensor.ReuseMat(s.xn, dim, B)
	s.aOut = tensor.ReuseMat(s.aOut, dim, B)
	s.mOut = tensor.ReuseMat(s.mOut, dim, B)
	s.nf = tensor.ReuseMat(s.nf, dim, B)
	s.logits = tensor.ReuseMat(s.logits, m.Cfg.Vocab, B)
	s.kvs = s.kvs[:0]
}

// StepBatch consumes one token id per decoder in a single fused pass and
// returns the next-token logits as the columns of a Vocab × B matrix owned
// by the arena (valid until the next StepBatch on the same arena). Each
// decoder keeps its own KV caches and position; the shared work — the
// attention projections, the dense MLP (or the batched hook), and the
// output head — runs as multi-RHS kernels that walk each weight matrix once
// for the whole batch.
//
// The per-decoder MLPHook installed by NewDecoder is NOT consulted: hook
// replaces it for the whole batch (pass nil for the dense model). Apart
// from that substitution, StepBatch is bit-identical per column to calling
// decs[b].Step(ids[b]) independently — same KV appends, same accumulation
// orders — which is what makes the serving engine's fused and per-session
// paths interchangeable.
func (m *Model) StepBatch(decs []*Decoder, ids []int, hook BatchMLPHook, s *DecodeBatch) *tensor.Mat {
	B := len(decs)
	if B == 0 || len(ids) != B {
		panic("model: StepBatch batch/ids length mismatch")
	}
	s.ensure(m, B)
	for b, d := range decs {
		if d.m != m {
			panic("model: StepBatch decoder belongs to a different model")
		}
		if d.pos >= m.Cfg.MaxSeq {
			panic("model: decoder exceeded MaxSeq")
		}
		x := s.x[b]
		copy(x, m.Embed.Tok.W.Row(ids[b]))
		x.Add(m.Embed.Pos.W.Row(d.pos))
		d.pos++
	}
	for l, blk := range m.Blocks {
		for b := range decs {
			blk.Norm1.Apply(s.x[b], s.buf)
			s.xn.SetCol(b, s.buf)
		}
		s.kvs = s.kvs[:0]
		for _, d := range decs {
			s.kvs = append(s.kvs, d.caches[l])
		}
		blk.Attn.StepBatch(s.xn, s.kvs, s.aOut, &s.attn)
		for b := range decs {
			s.aOut.AddColTo(b, s.x[b])
			blk.Norm2.Apply(s.x[b], s.buf)
			s.xn.SetCol(b, s.buf)
		}
		if hook != nil {
			hook(l, s.xn, s.mOut)
		} else {
			blk.MLP.ApplyBatch(s.xn, s.mOut, &s.mlp)
		}
		for b := range decs {
			s.mOut.AddColTo(b, s.x[b])
		}
	}
	for b := range decs {
		m.NormF.Apply(s.x[b], s.buf)
		s.nf.SetCol(b, s.buf)
	}
	return tensor.MatVecBatch(m.Head.P.W, s.nf, s.logits)
}
