package model

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/nn"
)

// checkpoint format: magic, config fields (little-endian uint32 each, with
// the name length-prefixed), then the nn parameter container.
var ckptMagic = [4]byte{'D', 'I', 'P', 'C'}

// SaveCheckpoint writes the model (config + weights) to w.
func SaveCheckpoint(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(ckptMagic[:]); err != nil {
		return err
	}
	name := []byte(m.Cfg.Name)
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
		return err
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	fields := []uint32{
		uint32(m.Cfg.Vocab), uint32(m.Cfg.Dim), uint32(m.Cfg.Layers),
		uint32(m.Cfg.Heads), uint32(m.Cfg.KVHeads), uint32(m.Cfg.DFF),
		uint32(m.Cfg.MaxSeq), uint32(m.Cfg.Act),
	}
	for _, f := range fields {
		if err := binary.Write(bw, binary.LittleEndian, f); err != nil {
			return err
		}
	}
	if err := nn.SaveParams(bw, m.Params()); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint and returns
// the reconstructed model.
func LoadCheckpoint(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("model: reading checkpoint magic: %w", err)
	}
	if magic != ckptMagic {
		return nil, fmt.Errorf("model: bad checkpoint magic %q", magic[:])
	}
	var nameLen uint32
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	if nameLen > 1<<12 {
		return nil, fmt.Errorf("model: implausible name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, err
	}
	var fields [8]uint32
	for i := range fields {
		if err := binary.Read(br, binary.LittleEndian, &fields[i]); err != nil {
			return nil, err
		}
	}
	cfg := Config{
		Name:  string(nameBuf),
		Vocab: int(fields[0]), Dim: int(fields[1]), Layers: int(fields[2]),
		Heads: int(fields[3]), KVHeads: int(fields[4]), DFF: int(fields[5]),
		MaxSeq: int(fields[6]), Act: nn.Activation(fields[7]),
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := New(cfg, 0)
	if err := nn.LoadParams(br, m.Params()); err != nil {
		return nil, err
	}
	return m, nil
}

// SaveCheckpointFile writes the model to path, creating parent-less files
// atomically via a temp file + rename.
func SaveCheckpointFile(path string, m *Model) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := SaveCheckpoint(f, m); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpointFile reads a model checkpoint from path.
func LoadCheckpointFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCheckpoint(f)
}
