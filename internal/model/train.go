package model

import (
	"fmt"
	"io"

	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TrainOpts controls From-scratch language-model training.
type TrainOpts struct {
	Steps   int
	Batch   int     // sequences per optimizer step
	SeqLen  int     // tokens per sequence
	LR      float32 // base Adam learning rate
	Warmup  int     // warmup steps for the cosine schedule
	Seed    uint64  // window-sampling seed
	Log     io.Writer
	LogEach int
}

// DefaultTrainOpts returns the settings used by the experiment drivers.
func DefaultTrainOpts() TrainOpts {
	return TrainOpts{Steps: 300, Batch: 4, SeqLen: 64, LR: 3e-3, Warmup: 20, Seed: 1234, LogEach: 50}
}

// Train fits the model on the token stream with Adam, sampling random
// windows each step, and returns the final running loss (nats/token).
func Train(m *Model, tokens []int, opts TrainOpts) (float64, error) {
	if opts.SeqLen >= m.Cfg.MaxSeq {
		opts.SeqLen = m.Cfg.MaxSeq - 1
	}
	if len(tokens) < opts.SeqLen+2 {
		return 0, fmt.Errorf("model: training stream of %d tokens too short for seqlen %d", len(tokens), opts.SeqLen)
	}
	rng := tensor.NewRNG(opts.Seed)
	opt := nn.NewAdam(opts.LR)
	params := m.Params()
	running := 0.0
	for step := 0; step < opts.Steps; step++ {
		var batchLoss float64
		for b := 0; b < opts.Batch; b++ {
			start := rng.Intn(len(tokens) - opts.SeqLen - 1)
			ids := tokens[start : start+opts.SeqLen]
			targets := tokens[start+1 : start+opts.SeqLen+1]
			batchLoss += m.TrainStep(ids, targets)
		}
		batchLoss /= float64(opts.Batch)
		// Average the accumulated gradients over the batch.
		if opts.Batch > 1 {
			inv := float32(1) / float32(opts.Batch)
			for _, p := range params {
				for i := range p.G.Data {
					p.G.Data[i] *= inv
				}
			}
		}
		opt.Step(params, nn.CosineLR(step, opts.Warmup, opts.Steps))
		if running == 0 {
			running = batchLoss
		} else {
			running = 0.95*running + 0.05*batchLoss
		}
		if opts.Log != nil && opts.LogEach > 0 && (step+1)%opts.LogEach == 0 {
			fmt.Fprintf(opts.Log, "step %4d/%d loss %.4f ppl %.3f\n", step+1, opts.Steps, running, nn.Perplexity(running))
		}
	}
	if err := nn.CheckFinite(m); err != nil {
		return running, err
	}
	return running, nil
}

// Perplexity evaluates teacher-forced perplexity of the model (with
// optional MLP hook) over the token stream, chunked into windows of
// winLen tokens. Predictions use each window's tokens 1..n; the first
// token of each window is context only.
//
// Windows are independent for the dense model, so with a nil hook they fan
// out across the worker pool; per-window partial sums are reduced in window
// order, making the result bit-identical for any worker count. Hooked
// evaluation stays sequential — hooks may carry state across tokens.
func Perplexity(m *Model, tokens []int, winLen int, hook MLPHook) float64 {
	if winLen >= m.Cfg.MaxSeq {
		winLen = m.Cfg.MaxSeq
	}
	nWin := 0
	if winLen > 0 {
		nWin = len(tokens) / winLen
	}
	if nWin == 0 {
		return 0
	}
	ces := make([]float64, nWin)
	counts := make([]int, nWin)
	window := func(w int) {
		ids := tokens[w*winLen : (w+1)*winLen]
		logits := m.Forward(ids, hook)
		var ce float64
		for t := 0; t+1 < len(ids); t++ {
			lse := tensor.LogSumExp(logits[t])
			ce += lse - float64(logits[t][ids[t+1]])
			counts[w]++
		}
		ces[w] = ce
	}
	if hook == nil {
		parallel.For(nWin, 1, func(lo, hi int) {
			for w := lo; w < hi; w++ {
				window(w)
			}
		})
	} else {
		for w := 0; w < nWin; w++ {
			window(w)
		}
	}
	var totalCE float64
	var count int
	for w := 0; w < nWin; w++ {
		totalCE += ces[w]
		count += counts[w]
	}
	if count == 0 {
		return 0
	}
	return nn.Perplexity(totalCE / float64(count))
}

// ContinuationLogProb returns the mean per-token log-probability of the
// continuation tokens given the prompt tokens, under an optional hook.
// This is the scoring rule for multiple-choice evaluation.
func ContinuationLogProb(m *Model, prompt, cont []int, hook MLPHook) float64 {
	if len(cont) == 0 {
		return 0
	}
	ids := append(append([]int{}, prompt...), cont...)
	if len(ids) > m.Cfg.MaxSeq {
		ids = ids[len(ids)-m.Cfg.MaxSeq:]
	}
	logits := m.Forward(ids, hook)
	// Position t predicts ids[t+1]; continuation tokens occupy the tail.
	first := len(ids) - len(cont)
	var lp float64
	for t := first - 1; t+1 < len(ids); t++ {
		lse := tensor.LogSumExp(logits[t])
		lp += float64(logits[t][ids[t+1]]) - lse
	}
	return lp / float64(len(cont))
}

// Generate samples n tokens autoregressively after consuming the prompt,
// using temperature sampling (temp ≤ 0 means greedy argmax). The hook
// applies to both prompt ingestion and generation, so cache-aware schemes
// warm their caches on the prompt exactly as a device would.
func Generate(m *Model, prompt []int, n int, temp float64, seed uint64, hook MLPHook) []int {
	dec := m.NewDecoder(hook)
	rng := tensor.NewRNG(seed)
	var logits tensor.Vec
	for _, id := range prompt {
		logits = dec.Step(id)
	}
	out := make([]int, 0, n)
	for i := 0; i < n && dec.Pos() < m.Cfg.MaxSeq; i++ {
		next := sample(logits, temp, rng)
		out = append(out, next)
		if dec.Pos() >= m.Cfg.MaxSeq {
			break
		}
		logits = dec.Step(next)
	}
	return out
}

func sample(logits tensor.Vec, temp float64, rng *tensor.RNG) int {
	if temp <= 0 {
		best, bestV := 0, logits[0]
		for i, v := range logits {
			if v > bestV {
				best, bestV = i, v
			}
		}
		return best
	}
	scaled := logits.Clone()
	scaled.Scale(float32(1 / temp))
	p := tensor.Softmax(scaled, scaled)
	r := rng.Float32()
	var cum float32
	for i, pi := range p {
		cum += pi
		if r < cum {
			return i
		}
	}
	return len(p) - 1
}
