// Package model assembles the nn layers into a decoder-only transformer
// language model (RMSNorm → GQA attention → RMSNorm → gated MLP, with
// residual connections), provides deterministic training from scratch,
// teacher-forced scoring, incremental decoding, and checkpointing.
//
// Inference entry points accept an MLPHook: a function that replaces the
// dense MLP forward at each (layer, token). The sparsity package supplies
// hooks implementing every pruning scheme in the paper; passing a nil hook
// evaluates the dense model. Tokens flow through each layer in sequence
// order, so hooks that carry state across tokens (the DRAM cache of
// DIP-CA) observe the same order a real decoder would.
package model

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// mlpTokenGrain is the minimum tokens per parallel block in the dense
// inference loops (matches the nn package's sequence-loop granularity).
const mlpTokenGrain = 4

// Config describes a model architecture.
type Config struct {
	Name    string
	Vocab   int
	Dim     int
	Layers  int
	Heads   int
	KVHeads int
	DFF     int
	MaxSeq  int
	Act     nn.Activation
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Vocab <= 0 || c.Dim <= 0 || c.Layers <= 0 || c.DFF <= 0 || c.MaxSeq <= 0:
		return fmt.Errorf("model: non-positive dimension in config %+v", c)
	case c.Dim%c.Heads != 0:
		return fmt.Errorf("model: dim %d not divisible by heads %d", c.Dim, c.Heads)
	case c.Heads%c.KVHeads != 0:
		return fmt.Errorf("model: heads %d not divisible by kv heads %d", c.Heads, c.KVHeads)
	}
	return nil
}

// Block is one transformer layer.
type Block struct {
	Norm1 *nn.RMSNorm
	Attn  *nn.Attention
	Norm2 *nn.RMSNorm
	MLP   *nn.GLUMLP
}

// Model is the assembled language model.
type Model struct {
	Cfg    Config
	Embed  *nn.Embedding
	Blocks []*Block
	NormF  *nn.RMSNorm
	Head   *nn.Linear
}

// New builds a model with freshly initialized weights from the seed.
func New(cfg Config, seed uint64) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := tensor.NewRNG(seed)
	m := &Model{Cfg: cfg}
	m.Embed = nn.NewEmbedding(cfg.Vocab, cfg.MaxSeq, cfg.Dim, rng.Split(1))
	for l := 0; l < cfg.Layers; l++ {
		b := &Block{
			Norm1: nn.NewRMSNorm(fmt.Sprintf("b%d.norm1", l), cfg.Dim),
			Attn:  nn.NewAttention(fmt.Sprintf("b%d.attn", l), cfg.Dim, cfg.Heads, cfg.KVHeads, rng.Split(uint64(10+l))),
			Norm2: nn.NewRMSNorm(fmt.Sprintf("b%d.norm2", l), cfg.Dim),
			MLP:   nn.NewGLUMLP(fmt.Sprintf("b%d.mlp", l), cfg.Dim, cfg.DFF, cfg.Act, rng.Split(uint64(100+l))),
		}
		m.Blocks = append(m.Blocks, b)
	}
	m.NormF = nn.NewRMSNorm("normf", cfg.Dim)
	m.Head = nn.NewLinear("head", cfg.Vocab, cfg.Dim, rng.Split(2))
	return m
}

// Params implements nn.Module.
func (m *Model) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, m.Embed.Params()...)
	for _, b := range m.Blocks {
		ps = append(ps, b.Norm1.Params()...)
		ps = append(ps, b.Attn.Params()...)
		ps = append(ps, b.Norm2.Params()...)
		ps = append(ps, b.MLP.Params()...)
	}
	ps = append(ps, m.NormF.Params()...)
	ps = append(ps, m.Head.Params()...)
	return ps
}

// MLPWeightCount returns the total scalar weights in all MLP blocks — the
// denominator for MLP-density metrics.
func (m *Model) MLPWeightCount() int {
	n := 0
	for _, b := range m.Blocks {
		n += b.MLP.WeightCount()
	}
	return n
}

// StaticWeightCount returns the weights outside the MLPs (embeddings,
// attention, norms, head) — the portion pinned in DRAM by the simulator.
func (m *Model) StaticWeightCount() int {
	return nn.CountParams(m) - m.MLPWeightCount()
}

// MLPHook replaces the dense MLP at inference time. x is the post-norm
// input to the MLP of the given layer; the hook returns the block output to
// be added to the residual stream.
type MLPHook func(layer int, x tensor.Vec) tensor.Vec

// fwdScratch is one worker's reusable buffers for the dense token loops of
// Forward: the post-norm input, the MLP intermediates, and the MLP output.
type fwdScratch struct {
	buf, out tensor.Vec
	mlp      nn.MLPScratch
}

// Forward computes logits for every position with optional MLP hook. It is
// the inference path: activations are not retained for backprop.
//
// With a nil hook (the dense model) the per-layer MLP loop and the head
// projection fan out across the worker pool with per-worker scratch, making
// the hot path free of per-token allocations. With a hook the MLP loop
// stays strictly sequential in token order: hooks that carry state across
// tokens (the DRAM cache of DIP-CA, trace recorders, density meters) must
// observe the same order a real decoder would.
func (m *Model) Forward(ids []int, hook MLPHook) []tensor.Vec {
	xs := m.Embed.Forward(ids)
	n := len(xs)
	nw := parallel.Workers(n, mlpTokenGrain)
	scr := make([]fwdScratch, nw)
	var hookBuf tensor.Vec
	if hook != nil {
		hookBuf = tensor.NewVec(m.Cfg.Dim)
	}
	for l, b := range m.Blocks {
		normed := make([]tensor.Vec, n)
		parallel.For(n, mlpTokenGrain, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				normed[t] = b.Norm1.Apply(xs[t], nil)
			}
		})
		attnOut, _ := b.Attn.Forward(normed)
		for t := range xs {
			xs[t].Add(attnOut[t])
		}
		if hook != nil {
			for _, x := range xs {
				b.Norm2.Apply(x, hookBuf)
				x.Add(hook(l, hookBuf))
			}
			continue
		}
		parallel.ForWorker(n, mlpTokenGrain, func(w, lo, hi int) {
			s := workerScratch(scr, w, m.Cfg.Dim)
			for t := lo; t < hi; t++ {
				b.Norm2.Apply(xs[t], s.buf)
				b.MLP.ApplyInto(s.buf, s.out, &s.mlp)
				xs[t].Add(s.out)
			}
		})
	}
	logits := make([]tensor.Vec, n)
	parallel.ForWorker(n, mlpTokenGrain, func(w, lo, hi int) {
		s := workerScratch(scr, w, m.Cfg.Dim)
		for t := lo; t < hi; t++ {
			m.NormF.Apply(xs[t], s.buf)
			logits[t] = m.Head.Apply(s.buf, nil)
		}
	})
	return logits
}

// workerScratch returns worker w's scratch slot, sized on first use. A
// worker id beyond the slice (possible only if the pool is resized while a
// Forward is in flight — SetProcs is documented safe concurrently with For)
// gets a private throwaway scratch rather than an out-of-range panic.
func workerScratch(scr []fwdScratch, w, dim int) *fwdScratch {
	s := &fwdScratch{}
	if w < len(scr) {
		s = &scr[w]
	}
	if s.buf == nil {
		s.buf = tensor.NewVec(dim)
		s.out = tensor.NewVec(dim)
	}
	return s
}

// Decoder performs incremental token-by-token decoding with per-layer KV
// caches, honoring the same MLP hook contract as Forward.
type Decoder struct {
	m      *Model
	caches []*nn.KVCache
	pos    int
	hook   MLPHook
	// Per-session scratch: decoding is sequential by nature, so one set of
	// buffers serves every step without reallocation.
	buf, out tensor.Vec
	mlp      nn.MLPScratch
}

// NewDecoder returns a fresh decoding session.
func (m *Model) NewDecoder(hook MLPHook) *Decoder {
	caches := make([]*nn.KVCache, len(m.Blocks))
	for i := range caches {
		caches[i] = &nn.KVCache{}
	}
	return &Decoder{
		m:      m,
		caches: caches,
		hook:   hook,
		buf:    tensor.NewVec(m.Cfg.Dim),
		out:    tensor.NewVec(m.Cfg.Dim),
	}
}

// Pos returns the number of tokens consumed so far.
func (d *Decoder) Pos() int { return d.pos }

// Reset rewinds the decoder to position zero, truncating the KV caches in
// place and keeping the scratch buffers — a fresh context window without
// reallocation. The hook and its state carry over.
func (d *Decoder) Reset() {
	d.pos = 0
	for _, c := range d.caches {
		c.Ks = c.Ks[:0]
		c.Vs = c.Vs[:0]
	}
}

// Step consumes one token id and returns the logits for the next token.
// It panics when the positional table is exhausted.
func (d *Decoder) Step(id int) tensor.Vec {
	if d.pos >= d.m.Cfg.MaxSeq {
		panic("model: decoder exceeded MaxSeq")
	}
	x := d.m.Embed.At(id, d.pos)
	d.pos++
	buf := d.buf
	for l, b := range d.m.Blocks {
		b.Norm1.Apply(x, buf)
		attnOut := b.Attn.Step(buf, d.caches[l])
		x.Add(attnOut)
		b.Norm2.Apply(x, buf)
		var out tensor.Vec
		if d.hook != nil {
			out = d.hook(l, buf)
		} else {
			out = b.MLP.ApplyInto(buf, d.out, &d.mlp)
		}
		x.Add(out)
	}
	d.m.NormF.Apply(x, buf)
	return d.m.Head.Apply(buf, nil)
}

// TrainStep runs one forward/backward pass over a sequence, accumulating
// gradients into the parameters, and returns the mean cross-entropy.
// targets[t] is the token that should follow ids[t].
func (m *Model) TrainStep(ids, targets []int) float64 {
	logits, back := m.forwardTrain(ids)
	dlogits := make([]tensor.Vec, len(logits))
	for i := range dlogits {
		dlogits[i] = tensor.NewVec(m.Cfg.Vocab)
	}
	loss := nn.CrossEntropy(logits, targets, dlogits)
	back(dlogits)
	return loss
}

// DistillStep runs a forward/backward pass with a knowledge-distillation
// loss against fixed teacher logits (mean KL(teacher‖student)), returning
// the loss. Used for LoRA fine-tuning.
func (m *Model) DistillStep(ids []int, teacher []tensor.Vec) float64 {
	logits, back := m.forwardTrain(ids)
	dlogits := make([]tensor.Vec, len(logits))
	for i := range dlogits {
		dlogits[i] = tensor.NewVec(m.Cfg.Vocab)
	}
	loss := nn.KLDivergence(teacher, logits, dlogits)
	back(dlogits)
	return loss
}

// forwardTrain runs the full forward pass retaining every layer context and
// returns the logits plus a backward closure that accumulates parameter
// gradients when fed ∂loss/∂logits.
func (m *Model) forwardTrain(ids []int) ([]tensor.Vec, func([]tensor.Vec)) {
	xs := m.Embed.Forward(ids)
	type blockBack func(dxs []tensor.Vec) []tensor.Vec
	var backs []blockBack
	for _, b := range m.Blocks {
		b := b
		// Attention sub-block with residual.
		normed, n1ctx := b.Norm1.Forward(xs)
		attnOut, actx := b.Attn.Forward(normed)
		pre := xs
		xs = addSeq(pre, attnOut)
		backs = append(backs, func(dxs []tensor.Vec) []tensor.Vec {
			dattn := b.Attn.Backward(dxs, actx)
			dpre := b.Norm1.Backward(dattn, n1ctx)
			return addSeq(dxs, dpre) // residual: gradient flows both ways
		})
		// MLP sub-block with residual.
		normed2, n2ctx := b.Norm2.Forward(xs)
		mlpOut, mctx := b.MLP.Forward(normed2)
		pre2 := xs
		xs = addSeq(pre2, mlpOut)
		backs = append(backs, func(dxs []tensor.Vec) []tensor.Vec {
			dmlp := b.MLP.Backward(dxs, mctx)
			dpre := b.Norm2.Backward(dmlp, n2ctx)
			return addSeq(dxs, dpre)
		})
	}
	normedF, nfctx := m.NormF.Forward(xs)
	logits, hctx := m.Head.Forward(normedF)
	backward := func(dlogits []tensor.Vec) {
		dnf := m.Head.Backward(dlogits, hctx)
		dxs := m.NormF.Backward(dnf, nfctx)
		for i := len(backs) - 1; i >= 0; i-- {
			dxs = backs[i](dxs)
		}
		m.Embed.Backward(dxs, ids)
	}
	return logits, backward
}

// addSeq returns element-wise a[t] + b[t] as fresh vectors.
func addSeq(a, b []tensor.Vec) []tensor.Vec {
	out := make([]tensor.Vec, len(a))
	for t := range a {
		v := a[t].Clone()
		v.Add(b[t])
		out[t] = v
	}
	return out
}
