package model

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func tinyConfig() Config {
	return Config{
		Name: "tiny", Vocab: 11, Dim: 16, Layers: 2, Heads: 2, KVHeads: 1,
		DFF: 24, MaxSeq: 32, Act: nn.ActSiLU,
	}
}

func TestConfigValidate(t *testing.T) {
	good := tinyConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Heads = 3 // 16 % 3 != 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected divisibility error")
	}
	bad2 := good
	bad2.KVHeads = 3
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected kv divisibility error")
	}
	bad3 := good
	bad3.Vocab = 0
	if err := bad3.Validate(); err == nil {
		t.Fatal("expected non-positive error")
	}
}

func TestModelEndToEndGradients(t *testing.T) {
	m := New(tinyConfig(), 7)
	ids := []int{1, 4, 2, 9, 0, 3}
	targets := []int{4, 2, 9, 0, 3, 5}
	loss := func() float64 {
		logits := m.Forward(ids, nil)
		return nn.CrossEntropy(logits, targets, nil)
	}
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	m.TrainStep(ids, targets)
	rng := tensor.NewRNG(31)
	checked := 0
	for _, p := range m.Params() {
		for c := 0; c < 3; c++ {
			i := rng.Intn(p.Size())
			analytic, numeric := nn.GradCheck(p, i, loss, 1e-2)
			scale := math.Max(math.Abs(analytic), math.Abs(numeric))
			if scale < 1e-4 {
				continue
			}
			if math.Abs(analytic-numeric)/scale > 0.08 {
				t.Fatalf("%s[%d]: analytic %.6g vs numeric %.6g", p.Name, i, analytic, numeric)
			}
			checked++
		}
		p.ZeroGrad()
	}
	if checked < 10 {
		t.Fatalf("too few gradient entries checked: %d", checked)
	}
}

func TestTrainingLearnsGrammar(t *testing.T) {
	tok := data.NewTokenizer()
	splits := data.NewSplits(11, 20000, 3000)
	cfg := tinyConfig()
	cfg.Vocab = tok.VocabSize()
	m := New(cfg, 5)
	testTokens := tok.Encode(splits.Test)
	before := Perplexity(m, testTokens[:1500], 31, nil)
	opts := DefaultTrainOpts()
	opts.Steps = 120
	opts.Batch = 2
	opts.SeqLen = 31
	if _, err := Train(m, tok.Encode(splits.Train), opts); err != nil {
		t.Fatal(err)
	}
	after := Perplexity(m, testTokens[:1500], 31, nil)
	if after >= before {
		t.Fatalf("training did not reduce perplexity: %.3f -> %.3f", before, after)
	}
	// The grammar is highly compressible; even a short run should land far
	// below the uniform baseline (vocab size).
	if after > float64(cfg.Vocab)/2 {
		t.Fatalf("perplexity %.3f suspiciously high after training", after)
	}
}

func TestDecoderMatchesForward(t *testing.T) {
	m := New(tinyConfig(), 13)
	ids := []int{3, 1, 4, 1, 5, 9, 2, 6}
	logits := m.Forward(ids, nil)
	dec := m.NewDecoder(nil)
	for t2, id := range ids {
		lg := dec.Step(id)
		for i := range lg {
			if math.Abs(float64(lg[i]-logits[t2][i])) > 1e-4 {
				t.Fatalf("decoder logits diverge at pos %d idx %d: %v vs %v", t2, i, lg[i], logits[t2][i])
			}
		}
	}
	if dec.Pos() != len(ids) {
		t.Fatal("decoder position wrong")
	}
}

func TestHookInvocationOrder(t *testing.T) {
	m := New(tinyConfig(), 17)
	ids := []int{1, 2, 3}
	var calls []int
	hook := func(layer int, x tensor.Vec) tensor.Vec {
		calls = append(calls, layer)
		return m.Blocks[layer].MLP.Apply(x)
	}
	m.Forward(ids, hook)
	// Per layer, tokens in order: layer0 x3, then layer1 x3.
	want := []int{0, 0, 0, 1, 1, 1}
	if len(calls) != len(want) {
		t.Fatalf("hook called %d times, want %d", len(calls), len(want))
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("hook order %v, want %v", calls, want)
		}
	}
}

func TestDenseHookMatchesNilHook(t *testing.T) {
	m := New(tinyConfig(), 19)
	ids := []int{5, 6, 7, 8}
	a := m.Forward(ids, nil)
	b := m.Forward(ids, func(layer int, x tensor.Vec) tensor.Vec {
		return m.Blocks[layer].MLP.Apply(x)
	})
	for t2 := range a {
		for i := range a[t2] {
			if math.Abs(float64(a[t2][i]-b[t2][i])) > 1e-5 {
				t.Fatal("dense hook changes output")
			}
		}
	}
}

func TestPerplexityUniformUntrained(t *testing.T) {
	// A zero-initialized head gives near-uniform predictions only after
	// training; instead check perplexity is finite and positive, and that
	// an empty stream yields 0.
	m := New(tinyConfig(), 23)
	toks := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2}
	p := Perplexity(m, toks, 6, nil)
	if p <= 1 || math.IsInf(p, 0) || math.IsNaN(p) {
		t.Fatalf("perplexity = %v", p)
	}
	if Perplexity(m, []int{1}, 6, nil) != 0 {
		t.Fatal("too-short stream should yield 0")
	}
}

func TestContinuationLogProb(t *testing.T) {
	m := New(tinyConfig(), 29)
	prompt := []int{1, 2, 3}
	cont := []int{4, 5}
	lp := ContinuationLogProb(m, prompt, cont, nil)
	if lp >= 0 || math.IsNaN(lp) {
		t.Fatalf("log prob = %v", lp)
	}
	if got := ContinuationLogProb(m, prompt, nil, nil); got != 0 {
		t.Fatal("empty continuation should score 0")
	}
	// Long inputs are truncated from the left rather than panicking.
	long := make([]int, 200)
	_ = ContinuationLogProb(m, long, cont, nil)
}

func TestGenerateRespectsLengthAndVocab(t *testing.T) {
	m := New(tinyConfig(), 37)
	out := Generate(m, []int{1, 2}, 10, 0.8, 99, nil)
	if len(out) != 10 {
		t.Fatalf("generated %d tokens, want 10", len(out))
	}
	for _, id := range out {
		if id < 0 || id >= m.Cfg.Vocab {
			t.Fatalf("generated invalid token %d", id)
		}
	}
	// Greedy generation is deterministic.
	a := Generate(m, []int{1, 2}, 5, 0, 1, nil)
	b := Generate(m, []int{1, 2}, 5, 0, 2, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("greedy generation should ignore the seed")
		}
	}
}

func TestGenerateStopsAtMaxSeq(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxSeq = 8
	m := New(cfg, 41)
	out := Generate(m, []int{1, 2, 3}, 100, 0, 1, nil)
	if len(out) > cfg.MaxSeq-len([]int{1, 2, 3})+1 {
		t.Fatalf("generated %d tokens past MaxSeq", len(out))
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	m := New(tinyConfig(), 43)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m2.Cfg != m.Cfg {
		t.Fatalf("config mismatch: %+v vs %+v", m2.Cfg, m.Cfg)
	}
	ids := []int{1, 2, 3, 4}
	a := m.Forward(ids, nil)
	b := m2.Forward(ids, nil)
	for t2 := range a {
		for i := range a[t2] {
			if a[t2][i] != b[t2][i] {
				t.Fatal("loaded model differs")
			}
		}
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	m := New(tinyConfig(), 47)
	path := t.TempDir() + "/ck.bin"
	if err := SaveCheckpointFile(path, m); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Cfg.Name != "tiny" {
		t.Fatal("name not preserved")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, err := LoadCheckpoint(bytes.NewReader([]byte("garbage data here"))); err == nil {
		t.Fatal("expected error on garbage")
	}
}

func TestConfigFor(t *testing.T) {
	for _, name := range append(AnalogNames(), ReluFiedSim) {
		for _, scale := range []Scale{ScaleTest, ScalePaper} {
			cfg, err := ConfigFor(name, scale)
			if err != nil {
				t.Fatal(err)
			}
			if err := cfg.Validate(); err != nil {
				t.Fatalf("%s at scale %d: %v", name, scale, err)
			}
		}
	}
	if _, err := ConfigFor("nope", ScaleTest); err == nil {
		t.Fatal("expected unknown-analog error")
	}
	// ReLU-fied analog uses ReLU.
	cfg, _ := ConfigFor(ReluFiedSim, ScalePaper)
	if cfg.Act != nn.ActReLU {
		t.Fatal("relufied analog should use ReLU")
	}
	// Size ordering: med > mini.
	med, _ := ConfigFor(Phi3MedSim, ScalePaper)
	mini, _ := ConfigFor(Phi3MiniSim, ScalePaper)
	if med.Dim <= mini.Dim {
		t.Fatal("phi3med analog should be wider than phi3mini")
	}
}

func TestWeightCounts(t *testing.T) {
	m := New(tinyConfig(), 53)
	mlp := m.MLPWeightCount()
	if mlp != 2*3*16*24 {
		t.Fatalf("MLPWeightCount = %d", mlp)
	}
	total := nn.CountParams(m)
	if m.StaticWeightCount() != total-mlp {
		t.Fatal("static/MLP partition doesn't sum to total")
	}
}

func TestDistillStepReducesKL(t *testing.T) {
	cfg := tinyConfig()
	teacherM := New(cfg, 61)
	student := New(cfg, 67)
	ids := []int{1, 2, 3, 4, 5}
	teacherLogits := teacherM.Forward(ids, nil)
	opt := nn.NewAdam(5e-3)
	first := -1.0
	var last float64
	for i := 0; i < 60; i++ {
		kl := student.DistillStep(ids, teacherLogits)
		if first < 0 {
			first = kl
		}
		last = kl
		opt.Step(student.Params(), 1)
	}
	if last >= first {
		t.Fatalf("distillation did not reduce KL: %v -> %v", first, last)
	}
}
