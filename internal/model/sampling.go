package model

import (
	"sort"

	"repro/internal/tensor"
)

// Sampler configures autoregressive decoding. The zero value is greedy
// argmax; Temperature > 0 enables stochastic sampling, optionally
// restricted to the TopK most likely tokens and/or the TopP nucleus.
type Sampler struct {
	// Temperature scales logits before sampling; ≤ 0 means greedy.
	Temperature float64
	// TopK, when > 0, restricts sampling to the K most likely tokens.
	TopK int
	// TopP, when in (0, 1), restricts sampling to the smallest set of
	// tokens whose cumulative probability reaches TopP (nucleus sampling).
	TopP float64
	// Seed initializes the sampler's private RNG.
	Seed uint64

	rng *tensor.RNG
}

// Next draws the next token id from the logits.
func (s *Sampler) Next(logits tensor.Vec) int {
	if s.Temperature <= 0 {
		best, bestV := 0, logits[0]
		for i, v := range logits {
			if v > bestV {
				best, bestV = i, v
			}
		}
		return best
	}
	if s.rng == nil {
		s.rng = tensor.NewRNG(s.Seed)
	}
	scaled := logits.Clone()
	scaled.Scale(float32(1 / s.Temperature))
	p := tensor.Softmax(scaled, scaled)
	type cand struct {
		id int
		p  float32
	}
	cands := make([]cand, len(p))
	for i, pi := range p {
		cands[i] = cand{i, pi}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].p > cands[b].p })
	cut := len(cands)
	if s.TopK > 0 && s.TopK < cut {
		cut = s.TopK
	}
	if s.TopP > 0 && s.TopP < 1 {
		var cum float32
		for i := 0; i < cut; i++ {
			cum += cands[i].p
			if float64(cum) >= s.TopP {
				cut = i + 1
				break
			}
		}
	}
	cands = cands[:cut]
	var total float32
	for _, c := range cands {
		total += c.p
	}
	r := s.rng.Float32() * total
	var cum float32
	for _, c := range cands {
		cum += c.p
		if r < cum {
			return c.id
		}
	}
	return cands[len(cands)-1].id
}

// GenerateWith samples n tokens after the prompt using the sampler,
// honoring the MLP hook (like Generate, but with top-k/top-p control).
func GenerateWith(m *Model, prompt []int, n int, s *Sampler, hook MLPHook) []int {
	dec := m.NewDecoder(hook)
	var logits tensor.Vec
	for _, id := range prompt {
		logits = dec.Step(id)
	}
	out := make([]int, 0, n)
	for i := 0; i < n && dec.Pos() < m.Cfg.MaxSeq; i++ {
		next := s.Next(logits)
		out = append(out, next)
		if dec.Pos() >= m.Cfg.MaxSeq {
			break
		}
		logits = dec.Step(next)
	}
	return out
}
