// Package experiments contains one driver per table and figure of the
// paper's evaluation (see DESIGN.md's experiment index). Each driver takes
// a Lab — a cache of trained model analogs, corpus splits, predictors and
// adapters at a chosen scale — and returns renderable Tables with the same
// rows/series the paper reports. cmd/dipbench and bench_test.go share
// these drivers.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/data"
	"repro/internal/lora"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/predictor"
	"repro/internal/prune"
	"repro/internal/sparsity"
)

// Lab prepares and memoizes every expensive artifact the drivers need.
// Memoization is per key: two goroutines asking for different artifacts
// build them concurrently, while a second request for an in-flight key
// blocks until the first build finishes. Every build is deterministic in
// isolation (its own seeds, no shared mutable inputs), so results do not
// depend on build order or worker count.
type Lab struct {
	Scale model.Scale
	// CheckpointDir, when non-empty, persists trained base models across
	// processes (written by cmd/diptrain, read by cmd/dipbench).
	CheckpointDir string
	// Log receives progress lines (nil silences).
	Log io.Writer
	// ServeSeed seeds the serving engine's arrival-shuffle RNG and the
	// Poisson arrival trace (dipbench -seed), making the serve scenario's
	// admission order and arrival timing reproducible.
	ServeSeed uint64
	// ServeSmoke shrinks the serve scenario to a CI-sized smoke run
	// (dipbench -small).
	ServeSmoke bool
	// ServeWorkload restricts the serve grid to one workload kind (dipbench
	// -workload: fixed|poisson|closed|trace; "" sweeps the open/closed-loop
	// kinds).
	ServeWorkload string
	// ServeSched restricts the serve grid to one scheduler (dipbench -sched:
	// fcfs|prio|edf; "" sweeps all).
	ServeSched string
	// ServePreempt restricts the serve grid to one preemption policy
	// (dipbench -preempt: none|deadline|prio; "" sweeps none and deadline,
	// smoke runs default to none).
	ServePreempt string
	// ServeArb restricts the serve grid to one arbitration policy (dipbench
	// -arb: exclusive|fair|greedy|shared; "" sweeps fair and shared — the
	// two contended regimes).
	ServeArb string
	// ServeRate overrides the Poisson arrival rate in requests per tick
	// (dipbench -rate; 0 = arrival rate ≈ service rate).
	ServeRate float64
	// ServeSLO overrides the interactive class's deadline in ticks (dipbench
	// -slo; 0 = a generous scale-derived default).
	ServeSLO int
	// ServeTrace is the trace file (JSON or CSV) replayed by the trace
	// workload (dipbench -trace).
	ServeTrace string
	// ServeFuse selects the serving decode path (dipbench -fuse): "on" (or
	// "", the default) uses the fused multi-RHS batched step, "off" the
	// per-session path, and "both" runs every grid cell through both paths,
	// asserts their simulated reports are bit-identical, and records both
	// wall throughputs.
	ServeFuse string
	// ServeFaults enables seeded fault injection in the serve and chaos
	// scenarios (dipbench -faults): the overall transient-fault rate of the
	// faults.Mix plan, in [0, 1]. Zero disables injection in serve and keeps
	// the chaos grid's default rate sweep.
	ServeFaults float64
	// ServeRetry overrides the per-request retry budget under fault
	// injection (dipbench -retry: total attempts; 0 = the engine default 3,
	// 1 = no recovery).
	ServeRetry int
	// ServeShed sets the admission-control queue budget under fault
	// injection (dipbench -shed; 0 = no shedding). A positive budget also
	// enables graceful degradation of queued best-effort work.
	ServeShed int
	// ServeEvents enables structured event tracing and names the path
	// prefix for the per-cell event logs (dipbench -events; each grid cell
	// writes <prefix>-<cell>.<ext>). Empty disables tracing unless
	// ServeObsWindow asks for windowed telemetry.
	ServeEvents string
	// ServeEventsFormat picks the event-log encoding (dipbench
	// -events-format; an obs format name, "" = JSONL).
	ServeEventsFormat string
	// ServeObsWindow sets the moving-window width in simulated ticks for
	// the windowed telemetry snapshot (dipbench -obs-window; 0 = the obs
	// package default). A positive width enables tracing even without
	// ServeEvents, surfacing the snapshot on each cell's report.
	ServeObsWindow int
	// ServeNodes restricts the cluster scenario to one replica count
	// (dipbench -nodes; 0 sweeps 1 and 3). Setting it on dipbench also
	// routes -serve to the cluster grid.
	ServeNodes int
	// ServeRouter restricts the cluster grid to one routing policy
	// (dipbench -router: hash|least-loaded|slo; "" sweeps all).
	ServeRouter string
	// ServeDrainTick overrides the tick at which the cluster drain scenario
	// drains its last node (dipbench -drain-tick; 0 = one service time into
	// the run).
	ServeDrainTick int
	// ServeNodeChaos enables unscripted node chaos in the cluster grid
	// (dipbench -node-chaos): the per-node per-tick crash probability, in
	// [0, 1]. Positive values add a chaos replay per multi-node cell, run
	// through the heartbeat detector, the zero-lag oracle, and with
	// detection off, pricing detection lag in the chaos_* columns.
	ServeNodeChaos float64
	// ServeDetectMiss overrides the heartbeat detector's confirmation
	// threshold in consecutive missed heartbeats (dipbench -detect-miss;
	// 0 = the cluster default 4).
	ServeDetectMiss int
	// ServeRecoverTicks overrides how long a chaos-crashed node stays down
	// before restarting (dipbench -recover-ticks; 0 = half a service time).
	ServeRecoverTicks int

	tok    *data.Tokenizer
	splits data.Splits
	once   sync.Once

	mu   sync.Mutex
	memo map[string]*labEntry

	logMu sync.Mutex
}

// labEntry is one memoized artifact slot with per-key build locking.
type labEntry struct {
	once sync.Once
	val  any
}

// memoize returns the artifact for key, running build at most once per key.
func (l *Lab) memoize(key string, build func() any) any {
	l.mu.Lock()
	if l.memo == nil {
		l.memo = make(map[string]*labEntry)
	}
	e, ok := l.memo[key]
	if !ok {
		e = &labEntry{}
		l.memo[key] = e
	}
	l.mu.Unlock()
	e.once.Do(func() { e.val = build() })
	return e.val
}

// NewLab returns a lab at the given scale.
func NewLab(scale model.Scale) *Lab {
	return &Lab{Scale: scale, memo: make(map[string]*labEntry)}
}

func (l *Lab) logf(format string, args ...any) {
	if l.Log != nil {
		l.logMu.Lock()
		fmt.Fprintf(l.Log, format+"\n", args...)
		l.logMu.Unlock()
	}
}

// Warm trains the named analogs (every analog when none are given)
// concurrently across the worker pool. Each model's training is seeded by
// its name, so warm-up order cannot change any result.
func (l *Lab) Warm(names ...string) {
	if len(names) == 0 {
		names = model.AnalogNames()
	}
	parallel.For(len(names), 1, func(lo, hi int) {
		for _, n := range names[lo:hi] {
			l.Model(n)
		}
	})
}

func (l *Lab) init() {
	l.once.Do(func() {
		l.tok = data.NewTokenizer()
		trainLen, otherLen := 60000, 12000
		if l.Scale == model.ScalePaper {
			trainLen, otherLen = 200000, 30000
		}
		l.splits = data.NewSplits(2024, trainLen, otherLen)
	})
}

// Tokenizer returns the corpus tokenizer.
func (l *Lab) Tokenizer() *data.Tokenizer {
	l.init()
	return l.tok
}

// CalibTokens returns the calibration split as token ids.
func (l *Lab) CalibTokens() []int {
	l.init()
	return l.tok.Encode(l.splits.Calib)
}

// ValidTokens returns the validation split as token ids.
func (l *Lab) ValidTokens() []int {
	l.init()
	return l.tok.Encode(l.splits.Valid)
}

// TestTokens returns up to n test tokens (n ≤ 0 means the scale default).
func (l *Lab) TestTokens(n int) []int {
	l.init()
	toks := l.tok.Encode(l.splits.Test)
	if n <= 0 {
		n = 2000
		if l.Scale == model.ScalePaper {
			n = 8000
		}
	}
	if n < len(toks) {
		toks = toks[:n]
	}
	return toks
}

// EvalWin returns the perplexity window length for the scale.
func (l *Lab) EvalWin() int { return 64 }

// MCItems returns a task battery of the given kind sized for the scale.
func (l *Lab) MCItems(kind data.TaskKind, seed uint64) []data.MCItem {
	l.init()
	n := 30
	if l.Scale == model.ScalePaper {
		n = 120
	}
	return data.GenerateTask(kind, n, rng(seed))
}

// MixedMCItems returns a blend across task kinds, the MMLU stand-in.
func (l *Lab) MixedMCItems(seed uint64) []data.MCItem {
	l.init()
	per := 10
	if l.Scale == model.ScalePaper {
		per = 30
	}
	var items []data.MCItem
	for i, kind := range data.TaskKinds() {
		items = append(items, data.GenerateTask(kind, per, rng(seed+uint64(i)))...)
	}
	return items
}

// trainOpts returns the per-scale training configuration.
func (l *Lab) trainOpts() model.TrainOpts {
	opts := model.DefaultTrainOpts()
	if l.Scale == model.ScaleTest {
		opts.Steps = 120
		opts.Batch = 2
		opts.SeqLen = 48
	} else {
		opts.Steps = 350
		opts.Batch = 4
		opts.SeqLen = 64
	}
	return opts
}

// Model returns the trained analog, training (or loading a checkpoint) on
// first use.
func (l *Lab) Model(name string) *model.Model {
	l.init()
	return l.memoize("model/"+name, func() any {
		if l.CheckpointDir != "" {
			path := l.checkpointPath(name)
			if m, err := model.LoadCheckpointFile(path); err == nil {
				l.logf("loaded %s from %s", name, path)
				return m
			}
		}
		cfg, err := model.ConfigFor(name, l.Scale)
		if err != nil {
			panic(err)
		}
		m := model.New(cfg, 1000+hash(name))
		l.logf("training %s (%d params)...", name, countParams(m))
		opts := l.trainOpts()
		opts.Seed = 500 + hash(name)
		if _, err := model.Train(m, l.tok.Encode(l.splits.Train), opts); err != nil {
			panic(fmt.Sprintf("experiments: training %s: %v", name, err))
		}
		if l.CheckpointDir != "" {
			if err := os.MkdirAll(l.CheckpointDir, 0o755); err == nil {
				if err := model.SaveCheckpointFile(l.checkpointPath(name), m); err != nil {
					l.logf("warning: saving %s checkpoint: %v", name, err)
				}
			}
		}
		return m
	}).(*model.Model)
}

func (l *Lab) checkpointPath(name string) string {
	scale := "test"
	if l.Scale == model.ScalePaper {
		scale = "paper"
	}
	return filepath.Join(l.CheckpointDir, fmt.Sprintf("%s-%s.ckpt", name, scale))
}

// Predictors returns trained DejaVu predictors for the analog.
func (l *Lab) Predictors(name string) *predictor.Set {
	m := l.Model(name)
	return l.memoize("preds/"+name, func() any {
		l.logf("training predictors for %s...", name)
		opts := predictor.DefaultTrainOpts()
		if l.Scale == model.ScaleTest {
			opts.Epochs = 4
			opts.MaxTokens = 192
		}
		return predictor.Train(m, l.CalibTokens(), l.EvalWin(), opts)
	}).(*predictor.Set)
}

// SparseGPT returns a cached SparseGPT-pruned copy of the analog.
func (l *Lab) SparseGPT(name string, pattern prune.Pattern, sparsityFrac float64) *model.Model {
	m := l.Model(name)
	key := fmt.Sprintf("sparsegpt/%s/%v/%.2f", name, pattern, sparsityFrac)
	return l.memoize(key, func() any {
		l.logf("sparsegpt %s...", key)
		opts := prune.DefaultOpts()
		opts.Sparsity = sparsityFrac
		p, err := prune.SparseGPTModel(m, l.CalibTokens(), l.EvalWin(), pattern, opts)
		if err != nil {
			panic(fmt.Sprintf("experiments: %s: %v", key, err))
		}
		return p
	}).(*model.Model)
}

// CalibStats returns the memoized calibration activation statistics for the
// analog (512 recorded MLP evaluations, the NewCATS setting). Collecting
// stats is a full dense calibration pass; sharing one collection across
// every CATS density avoids repeating it per operating point.
func (l *Lab) CalibStats(name string) *sparsity.LayerStats {
	m := l.Model(name)
	return l.memoize("calibstats/"+name, func() any {
		l.logf("collecting calibration stats for %s...", name)
		return sparsity.CollectStats(m, l.CalibTokens(), l.EvalWin(), 512)
	}).(*sparsity.LayerStats)
}

// CATS returns a calibrated CATS scheme at the intermediate keep rate.
func (l *Lab) CATS(name string, rho float64) *sparsity.CATS {
	st := l.CalibStats(name)
	key := fmt.Sprintf("cats/%s/%.3f", name, rho)
	return l.memoize(key, func() any {
		return &sparsity.CATS{Thresholds: st.CATSThresholds(rho)}
	}).(*sparsity.CATS)
}

// Fused returns the analog with LoRA adapters trained for the scheme and
// fused in (memoized by model + scheme name + density key).
func (l *Lab) Fused(name string, scheme sparsity.Scheme, densityKey string, adaptGate bool) *model.Model {
	m := l.Model(name)
	key := fmt.Sprintf("fused/%s/%s/%s", name, scheme.Name(), densityKey)
	return l.memoize(key, func() any {
		l.logf("training LoRA for %s...", key)
		opts := lora.DefaultTrainOpts()
		opts.AdaptGate = adaptGate
		if l.Scale == model.ScaleTest {
			opts.Iterations = 250
			opts.MaxTokens = 128
		} else {
			opts.Iterations = 700
		}
		adapters, err := lora.Train(m, sparsity.Clone(scheme), l.CalibTokens(), l.EvalWin(), opts)
		if err != nil {
			panic(fmt.Sprintf("experiments: lora %s: %v", key, err))
		}
		f, err := lora.Fuse(m, adapters)
		if err != nil {
			panic(fmt.Sprintf("experiments: fuse %s: %v", key, err))
		}
		return f
	}).(*model.Model)
}

func hash(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func countParams(m *model.Model) int {
	n := 0
	for _, p := range m.Params() {
		n += p.Size()
	}
	return n
}
