package experiments

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/parallel"
)

// renderAll renders a driver's tables to one string.
func renderAll(t *testing.T, run func(*Lab) ([]*Table, error)) string {
	t.Helper()
	tables, err := run(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tab := range tables {
		tab.Render(&buf)
	}
	return buf.String()
}

// The parallelism contract: a driver run with the pool pinned to one worker
// and a run fanned out over many workers must produce bit-identical tables
// — every grid point is an independent deterministic computation collected
// in index order, and the tensor/nn layers preserve per-element accumulation
// order regardless of blocking.
func TestParallelRunsMatchSerialBitForBit(t *testing.T) {
	defer parallel.SetProcs(parallel.Procs())
	many := runtime.NumCPU() * 4 // force real fan-out even on small machines
	if many < 8 {
		many = 8
	}

	// Warm lab artifacts under the parallel pool first, so both passes see
	// identical memoized models (artifact builds are order-independent by
	// construction — each is seeded by its own key).
	parallel.SetProcs(many)
	parTab2 := renderAll(t, Table2)
	parPPL := renderAll(t, Fig10)
	parTrends := renderAll(t, Fig2)
	parAbl := renderAll(t, AblAlloc)

	parallel.SetProcs(1)
	serTab2 := renderAll(t, Table2)
	serPPL := renderAll(t, Fig10)
	serTrends := renderAll(t, Fig2)
	serAbl := renderAll(t, AblAlloc)

	for _, c := range []struct{ name, ser, par string }{
		{"tab2", serTab2, parTab2},
		{"fig10", serPPL, parPPL},
		{"fig2", serTrends, parTrends},
		{"abl-alloc", serAbl, parAbl},
	} {
		if c.ser != c.par {
			t.Errorf("%s: parallel output differs from serial output\n--- serial ---\n%s\n--- parallel ---\n%s", c.name, c.ser, c.par)
		}
	}
}
