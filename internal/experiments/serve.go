package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/eval"
	"repro/internal/hwsim"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/sparsity"
)

// Serve benchmarks the multi-stream serving engine (internal/serving): K
// independent DIP-CA sessions decode distinct token streams against one
// shared DRAM cache budget, swept over session counts and arbitration
// policies. It reports host wall-clock aggregate throughput (the
// parallelization win over the single-stream baseline), simulated device
// throughput and per-session latency percentiles, and the cache hit rate
// under contention. Unlike the paper-reproduction drivers this table
// measures the host, so wall columns vary run to run; the sim columns are
// deterministic for a fixed -seed.
func Serve(l *Lab) ([]*Table, error) {
	name := model.Phi3MedSim
	m := l.Model(name)
	toks := l.TestTokens(0)
	win := l.EvalWin()
	sessTokens := l.evalTokens() / 4
	counts := []int{1, 2, 4, 8}
	if l.Scale == model.ScalePaper {
		counts = []int{1, 4, 8, 16}
	}
	if l.ServeSmoke {
		counts = []int{1, 4}
		sessTokens = 2 * win
	}
	scheme := sparsity.NewDIPCA(0.5, 0.2)
	sys := eval.SystemConfig{Device: hwsim.A18Like(), Policy: cache.PolicyLFU, Win: win}

	// Session i decodes its own slice of the test split; lengths vary by up
	// to two windows so slots free at different ticks and continuous
	// batching has something to backfill.
	makeReqs := func(k int) []serving.Request {
		reqs := make([]serving.Request, k)
		for i := range reqs {
			n := sessTokens + (i%3)*win
			start := 0
			if len(toks) > n {
				start = (i * 997) % (len(toks) - n)
			}
			reqs[i] = serving.Request{
				ID:     fmt.Sprintf("s%02d", i),
				Scheme: scheme,
				Tokens: toks[start : start+n],
			}
		}
		return reqs
	}
	// Batch width is a serving-policy knob, not a host property: capping it
	// below the largest session count exercises queueing and slot backfill,
	// while the wall-clock fan-out inside a tick is still bounded by the
	// worker pool.
	slotCap := 4
	if l.Scale == model.ScalePaper {
		slotCap = 8
	}
	slotsFor := func(k int) int {
		if k < slotCap {
			return k
		}
		return slotCap
	}
	run := func(k int, arb serving.ArbPolicy) (*serving.Report, error) {
		e, err := serving.NewEngine(m, serving.Config{
			System: sys, Arb: arb, MaxActive: slotsFor(k), Quantum: 8, Seed: l.ServeSeed,
		}, makeReqs(k))
		if err != nil {
			return nil, err
		}
		return e.Run()
	}

	out := &Table{
		ID:    "serve",
		Title: "Multi-stream serving: DIP-CA sessions under a shared cache budget (LFU, A18-class device)",
		Columns: []string{"policy", "sessions", "slots", "wall_tok_s", "speedup",
			"sim_tok_s", "hit_rate", "mean_ppl", "p50_lat_ms", "p99_lat_ms"},
	}
	baseline := 0.0
	for _, k := range counts {
		policies := serving.Policies()
		if k == 1 {
			// Every policy degenerates to a solo stream at K=1.
			policies = []serving.ArbPolicy{serving.ArbExclusive}
		}
		for _, arb := range policies {
			rep, err := run(k, arb)
			if err != nil {
				return nil, err
			}
			var ppl float64
			for _, sm := range rep.Sessions {
				ppl += sm.Point.PPL
			}
			ppl /= float64(len(rep.Sessions))
			label := arb.String()
			if k == 1 {
				label = "solo"
				baseline = rep.WallTokS
			}
			speedup := 0.0
			if baseline > 0 {
				speedup = rep.WallTokS / baseline
			}
			out.AddRow(label, k, slotsFor(k), rep.WallTokS, speedup, rep.SimTokS, rep.HitRate,
				ppl, rep.SimLatencyP50*1e3, rep.SimLatencyP99*1e3)
		}
	}
	out.Notes = append(out.Notes,
		"wall_tok_s/speedup measure the host (sessions fan out over the worker pool); expect speedup > 1 on >= 2 cores",
		"sim columns price the device model and are deterministic for a fixed -seed (admission order)",
		"exclusive over-commits the budget (no-contention bound); fair/greedy partition it; shared is one contended cache",
	)
	return []*Table{out}, nil
}
