package experiments

import (
	"bytes"
	"fmt"
	"os"
	"reflect"

	"repro/internal/cache"
	"repro/internal/eval"
	"repro/internal/hwsim"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/serving/faults"
	"repro/internal/serving/obs"
	"repro/internal/sparsity"
)

// Serve benchmarks the multi-stream serving engine (internal/serving) over
// a grid of workload × scheduler × preemptor × arbitration: K DIP-CA
// sessions in two SLO classes (interactive: high priority with a deadline;
// batch: best effort) arrive through a workload — all at once (fixed), as a
// seeded open-loop Poisson trace, as a closed loop with think time, or
// replayed from a trace file — and are admitted by a pluggable scheduler
// (FCFS, strict priority, or earliest-deadline-first), with an optional
// preemptor suspending running best-effort sessions when deadlined entries
// outrank them, against a shared DRAM cache budget. Every reported metric runs on the simulated tick clock
// (queueing delay, turnaround, per-token latency, SLO attainment, hit rate
// under contention) and is bit-identical for a fixed -seed; host wall
// throughput rides along as the final annotation column.
func Serve(l *Lab) ([]*Table, error) {
	name := model.Phi3MedSim
	m := l.Model(name)
	toks := l.TestTokens(0)
	win := l.EvalWin()
	sessTokens := l.evalTokens() / 4
	k := 8
	if l.Scale == model.ScalePaper {
		k = 16
	}
	if l.ServeSmoke {
		k = 6
		sessTokens = 2 * win
	}
	scheme := sparsity.NewDIPCA(0.5, 0.2)
	sys := eval.SystemConfig{Device: hwsim.A18Like(), Policy: cache.PolicyLFU, Win: win}
	// Batch width is a serving-policy knob, not a host property: capping it
	// below the session count exercises queueing and slot backfill, while
	// the wall-clock fan-out inside a tick is still bounded by the worker
	// pool.
	slotCap := 4
	if l.Scale == model.ScalePaper {
		slotCap = 8
	}
	slots := k
	if slots > slotCap {
		slots = slotCap
	}
	const quantum = 8
	// svcTicks bounds one session's pure decode time (the longest stream at
	// quantum tokens per tick); arrival rates, think times, and the default
	// deadline are expressed in these service units so the scenario scales
	// with -scale and -small.
	maxStream := sessTokens + 2*win
	svcTicks := (maxStream + quantum - 1) / quantum
	deadline := l.ServeSLO
	if deadline <= 0 {
		// Generous: enough for a full wave of queueing ahead of you.
		deadline = (k/slots + 2) * svcTicks
	}

	// Session i decodes its own slice of the test split; lengths vary by up
	// to two windows so slots free at different ticks and continuous
	// batching has something to backfill. Even submissions are interactive
	// (priority 2, deadlined), odd are batch (best effort).
	// The trace file is loaded once; the grid re-binds the parsed entries
	// per cell (each engine consumes its own workload cursor).
	var traceEntries []serving.TraceEntry
	if l.ServeWorkload == "trace" {
		if l.ServeTrace == "" {
			return nil, fmt.Errorf("serve: the trace workload needs a trace file (dipbench -trace)")
		}
		f, err := os.Open(l.ServeTrace)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		entries, err := serving.ParseTrace(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		traceEntries = entries
	}

	makeReqs := func() []serving.Request {
		reqs := make([]serving.Request, k)
		for i := range reqs {
			n := sessTokens + (i%3)*win
			start := 0
			if len(toks) > n {
				start = (i * 997) % (len(toks) - n)
			}
			slo := serving.SLO{Class: "batch"}
			if i%2 == 0 {
				slo = serving.SLO{Class: "interactive", Priority: 2, DeadlineTicks: deadline}
			}
			reqs[i] = serving.Request{
				ID:     fmt.Sprintf("s%02d", i),
				Scheme: scheme,
				Tokens: toks[start : start+n],
				SLO:    slo,
			}
		}
		return reqs
	}
	newWorkload := func(kind string) (serving.Workload, error) {
		switch kind {
		case "fixed":
			return serving.FixedBatch(makeReqs()), nil
		case "poisson":
			rate := l.ServeRate
			if rate <= 0 {
				// Arrival rate ≈ aggregate service rate: enough load to form
				// queues without unbounded backlog.
				rate = float64(slots) / float64(svcTicks)
			}
			return serving.PoissonArrivals(makeReqs(), rate, l.ServeSeed+1)
		case "closed":
			users := slots
			if users < 2 {
				users = 2
			}
			reqs := makeReqs()
			scripts := make([][]serving.Request, users)
			for i, r := range reqs {
				scripts[i%users] = append(scripts[i%users], r)
			}
			return serving.ClosedLoop(scripts, svcTicks/2)
		case "trace":
			return serving.TraceWorkload(traceEntries, serving.TraceBinder{
				Corpus: toks,
				Scheme: func(name string) (sparsity.Scheme, error) {
					switch name {
					case "", "dipca":
						return scheme, nil
					case "dip":
						return sparsity.NewDIP(0.5), nil
					}
					return nil, fmt.Errorf("serve: trace scheme %q not in the binder table (dip|dipca)", name)
				},
			})
		}
		return nil, fmt.Errorf("serve: unknown workload %q (known: %v)", kind, serving.WorkloadNames())
	}

	workloads := []string{"fixed", "poisson", "closed"}
	scheds := []serving.Scheduler{serving.FCFS(), serving.Priority(), serving.EDF()}
	arbs := []serving.ArbPolicy{serving.ArbFairShare, serving.ArbShared}
	preempts := []serving.Preemptor{serving.NoPreempt(), serving.DeadlinePreempt()}
	if l.ServeSmoke {
		workloads = []string{"fixed", "poisson"}
		scheds = []serving.Scheduler{serving.FCFS(), serving.EDF()}
		preempts = []serving.Preemptor{serving.NoPreempt()}
	}
	if l.ServeWorkload != "" {
		workloads = []string{l.ServeWorkload}
	}
	if l.ServeSched != "" {
		s, err := serving.ParseScheduler(l.ServeSched)
		if err != nil {
			return nil, err
		}
		scheds = []serving.Scheduler{s}
	}
	if l.ServePreempt != "" {
		p, err := serving.ParsePreemptor(l.ServePreempt)
		if err != nil {
			return nil, err
		}
		preempts = []serving.Preemptor{p}
	}
	if l.ServeArb != "" {
		a, err := serving.ParseArbPolicy(l.ServeArb)
		if err != nil {
			return nil, err
		}
		arbs = []serving.ArbPolicy{a}
	}

	fuse := l.ServeFuse
	if fuse == "" {
		fuse = "on"
	}
	if fuse != "on" && fuse != "off" && fuse != "both" {
		return nil, fmt.Errorf("serve: unknown -fuse mode %q (on|off|both)", fuse)
	}
	cols := []string{"workload", "sched", "preempt", "policy", "sessions", "slots",
		"sim_tok_s", "goodput", "hit_rate", "mean_ppl", "p50_lat_ms", "p99_lat_ms",
		"queue_p50_t", "turn_p99_t", "slo_attain", "preempts", "retries", "shed"}
	if l.obsTracing() {
		// Windowed telemetry from the observability snapshot: decode rate
		// and queue depth over the trailing -obs-window ticks at finish.
		// Inserted before the fused/wall tail so the wall annotation(s)
		// stay the trailing columns the determinism checks strip.
		cols = append(cols, "win_tok_t", "win_q_depth")
	}
	cols = append(cols, "fused", "wall_tok_s")
	if fuse == "both" {
		cols = append(cols, "wall_unfused_tok_s")
	}
	out := &Table{
		ID:      "serve",
		Title:   "Workload grid: DIP-CA sessions, SLO classes, and pluggable schedulers under a shared cache budget (LFU, A18-class device)",
		Columns: cols,
	}
	// Wall-throughput aggregates for the fuse-comparison summary table.
	var fusedTokens, unfusedTokens int
	var fusedSeconds, unfusedSeconds float64
	// -faults threads the seeded chaos plan through every grid cell; the
	// cells stay bit-identical for a fixed seed because fault draws are pure
	// functions of (seed, tick, slot).
	var plan faults.Injector
	if l.ServeFaults > 0 {
		p, err := faults.Mix(l.ServeFaults, l.ServeSeed+2)
		if err != nil {
			return nil, err
		}
		plan = p
	}
	runCell := func(kind string, sched serving.Scheduler, pre serving.Preemptor, arb serving.ArbPolicy, noFuse bool) (*serving.Report, *obs.Recorder, error) {
		w, err := newWorkload(kind)
		if err != nil {
			return nil, nil, err
		}
		rec := l.obsRecorder()
		e, err := serving.NewEngine(m, serving.Config{
			System: sys, Arb: arb, Sched: sched, Preempt: pre,
			MaxActive: slots, Quantum: quantum, Seed: l.ServeSeed, NoFuse: noFuse,
			Faults: plan, Retry: faults.RetryPolicy{MaxAttempts: l.ServeRetry},
			ShedQueueBudget: l.ServeShed, Degrade: l.ServeShed > 0,
			Obs: rec,
		}, w)
		if err != nil {
			return nil, nil, err
		}
		rep, err := e.Run()
		if err != nil {
			return nil, nil, err
		}
		if rec != nil {
			// The reconciliation invariant is cheap; holding it on every
			// cell means an exported event log always sums to the report
			// beside it.
			if err := rep.ReconcileObs(); err != nil {
				return nil, nil, fmt.Errorf("serve: %s/%s/%s/%s: %w", kind, sched.Name(), pre.Name(), arb, err)
			}
		}
		return rep, rec, nil
	}
	for _, kind := range workloads {
		for _, sched := range scheds {
			for _, pre := range preempts {
				for _, arb := range arbs {
					rep, rec, err := runCell(kind, sched, pre, arb, fuse == "off")
					if err != nil {
						return nil, err
					}
					var unfusedWall serving.WallClock
					if fuse == "both" {
						unfused, urec, err := runCell(kind, sched, pre, arb, true)
						if err != nil {
							return nil, err
						}
						// The fused path's whole contract: apart from the wall
						// annotation, both reports must be bit-identical.
						unfusedWall = unfused.Wall
						fw, uw := rep.Wall, unfused.Wall
						rep.Wall, unfused.Wall = serving.WallClock{}, serving.WallClock{}
						if !reflect.DeepEqual(rep, unfused) {
							return nil, fmt.Errorf("serve: %s/%s/%s/%s: fused report diverged from the per-session path",
								kind, sched.Name(), pre.Name(), arb)
						}
						rep.Wall, unfused.Wall = fw, uw
						if rec != nil {
							// Stronger than the report check: the full event
							// stream must match byte for byte too.
							var fb, ub bytes.Buffer
							if err := obs.WriteJSONL(&fb, rec.Events()); err != nil {
								return nil, err
							}
							if err := obs.WriteJSONL(&ub, urec.Events()); err != nil {
								return nil, err
							}
							if !bytes.Equal(fb.Bytes(), ub.Bytes()) {
								return nil, fmt.Errorf("serve: %s/%s/%s/%s: event log diverged between fused and per-session paths",
									kind, sched.Name(), pre.Name(), arb)
							}
						}
						fusedTokens += rep.TotalTokens
						fusedSeconds += fw.Seconds
						unfusedTokens += unfused.TotalTokens
						unfusedSeconds += uw.Seconds
					}
					if err := l.writeCellEvents(fmt.Sprintf("%s-%s-%s-%s", kind, sched.Name(), pre.Name(), arb), rec); err != nil {
						return nil, err
					}
					var ppl float64
					ok := 0
					for _, sm := range rep.Sessions {
						if sm.Outcome == serving.OutcomeOK {
							ppl += sm.Point.PPL
							ok++
						}
					}
					if ok > 0 {
						ppl /= float64(ok)
					}
					row := []any{kind, sched.Name(), pre.Name(), arb.String(), len(rep.Sessions), slots,
						rep.SimTokS, rep.Goodput, rep.HitRate, ppl,
						rep.SimLatencyP50 * 1e3, rep.SimLatencyP99 * 1e3,
						rep.QueueP50, rep.TurnaroundP99, rep.SLOAttainRate, rep.Preemptions,
						rep.Retries, rep.Shed}
					if l.obsTracing() {
						row = append(row, rep.Obs.TokensPerTick, rep.Obs.MeanQueueDepth)
					}
					row = append(row, fuse, rep.Wall.TokS)
					if fuse == "both" {
						row = append(row, unfusedWall.TokS)
					}
					out.AddRow(row...)
				}
			}
		}
	}
	out.Notes = append(out.Notes,
		"every column except wall_tok_s runs on the simulated tick clock and is bit-identical for a fixed -seed, any worker count",
		"queue_p50_t / turn_p99_t are arrival→admission and arrival→finish percentiles in ticks; slo_attain is over deadlined sessions",
	)
	for _, kind := range workloads {
		if kind != "trace" {
			out.Notes = append(out.Notes, fmt.Sprintf(
				"generated interactive sessions carry priority 2 and a %d-tick deadline; batch sessions are best-effort (dipbench -slo overrides)", deadline))
			break
		}
	}
	out.Notes = append(out.Notes,
		"preempt=deadline suspends the loosest-deadline running session when a queued entry's deadline is strictly earlier (stream state kept, resumed later); preempts counts mid-run suspensions",
		"fair partitions the cache budget across slots; shared is one contended cache with slot-order commits",
		"goodput counts only tokens of sessions that completed OK (retried prefixes, failed, cancelled, and shed work excluded); without -faults it equals sim_tok_s",
		"wall_tok_s is the host annotation (sessions fan out over the worker pool); it varies run to run",
		"fused=on decodes the batch through the multi-RHS kernels (one weight walk per tick); -fuse off|both selects the per-session path or both",
	)
	if l.obsTracing() {
		out.Notes = append(out.Notes,
			"win_tok_t / win_q_depth are the trailing -obs-window decode rate and mean queue depth from the observability snapshot; with -events each cell also wrote <prefix>-<cell> event logs, reconciled against the report counters",
		)
	}
	tables := []*Table{out}
	if fuse == "both" {
		cmp := &Table{
			ID:      "serve-fuse",
			Title:   "Fused vs per-session decode: aggregate wall throughput over the whole grid",
			Columns: []string{"cells", "fused_tok_s", "unfused_tok_s", "speedup"},
			Notes: []string{
				"every cell's simulated report was verified bit-identical across the two paths before timing was compared",
				"aggregate wall tok/s = total decoded tokens / total engine wall seconds per path, summed over the grid",
			},
		}
		ft, ut := 0.0, 0.0
		if fusedSeconds > 0 {
			ft = float64(fusedTokens) / fusedSeconds
		}
		if unfusedSeconds > 0 {
			ut = float64(unfusedTokens) / unfusedSeconds
		}
		speedup := 0.0
		if ut > 0 {
			speedup = ft / ut
		}
		cmp.AddRow(len(out.Rows), ft, ut, speedup)
		tables = append(tables, cmp)
	}
	return tables, nil
}
