package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
)

// RenderCSV writes the table as CSV with a leading comment row carrying the
// id and title, so plotting scripts can regenerate the paper's figures
// from `dipbench -out` artifacts.
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
