package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/serving/obs"
)

// obsTracing reports whether the lab's flags ask the serving scenarios to
// attach an event recorder (either to export per-cell logs, or just to
// surface the windowed-telemetry snapshot on each report).
func (l *Lab) obsTracing() bool { return l.ServeEvents != "" || l.ServeObsWindow > 0 }

// obsRecorder builds a fresh recorder for one grid cell. Recorders are
// single-run (Bind rejects reuse), so every engine gets its own. Tracing is
// always on for grid cells — every cell's report gets reconciled against
// its event log, whether or not the user asked for exports — while the
// extra telemetry columns and per-cell log files stay gated on obsTracing.
func (l *Lab) obsRecorder() *obs.Recorder {
	return obs.NewRecorder(obs.Config{Window: l.ServeObsWindow})
}

// obsFormat resolves the lab's event-log format ("" defaults to JSONL).
func (l *Lab) obsFormat() (string, error) {
	if l.ServeEventsFormat == "" {
		return obs.FormatJSONL, nil
	}
	return obs.ParseFormat(l.ServeEventsFormat)
}

// writeCellEvents exports one cell's event log to
// <ServeEvents>-<cell>.<ext>, creating parent directories as needed. A nil
// recorder or an unset -events prefix is a no-op.
func (l *Lab) writeCellEvents(cell string, rec *obs.Recorder) error {
	if rec == nil {
		return nil
	}
	return l.writeCellEventLog(cell, rec.Events())
}

// writeCellEventLog is writeCellEvents for a pre-merged event slice — the
// cluster scenario's node logs arrive already merged onto the shared tick
// timeline rather than inside one recorder.
func (l *Lab) writeCellEventLog(cell string, events []obs.Event) error {
	if l.ServeEvents == "" {
		return nil
	}
	format, err := l.obsFormat()
	if err != nil {
		return err
	}
	path := fmt.Sprintf("%s-%s%s", l.ServeEvents, cell, obs.FormatExt(format))
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Export(f, format, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
