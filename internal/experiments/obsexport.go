package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/serving/obs"
)

// obsTracing reports whether the lab's flags ask the serving scenarios to
// attach an event recorder (either to export per-cell logs, or just to
// surface the windowed-telemetry snapshot on each report).
func (l *Lab) obsTracing() bool { return l.ServeEvents != "" || l.ServeObsWindow > 0 }

// obsRecorder builds a fresh recorder for one grid cell. Recorders are
// single-run (Bind rejects reuse), so every engine gets its own. Returns
// nil — tracing off, the engine's zero-overhead path — when the lab has no
// observability flags set.
func (l *Lab) obsRecorder() *obs.Recorder {
	if !l.obsTracing() {
		return nil
	}
	return obs.NewRecorder(obs.Config{Window: l.ServeObsWindow})
}

// obsFormat resolves the lab's event-log format ("" defaults to JSONL).
func (l *Lab) obsFormat() (string, error) {
	if l.ServeEventsFormat == "" {
		return obs.FormatJSONL, nil
	}
	return obs.ParseFormat(l.ServeEventsFormat)
}

// writeCellEvents exports one cell's event log to
// <ServeEvents>-<cell>.<ext>, creating parent directories as needed. A nil
// recorder or an unset -events prefix is a no-op.
func (l *Lab) writeCellEvents(cell string, rec *obs.Recorder) error {
	if l.ServeEvents == "" || rec == nil {
		return nil
	}
	format, err := l.obsFormat()
	if err != nil {
		return err
	}
	path := fmt.Sprintf("%s-%s%s", l.ServeEvents, cell, obs.FormatExt(format))
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Export(f, format, rec.Events()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
