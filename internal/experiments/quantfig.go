package experiments

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/hwsim"
	"repro/internal/model"
	"repro/internal/prune"
	"repro/internal/quant"
	"repro/internal/sparsity"
)

// memoryMB computes the paper-scale DRAM footprint of the Phi-3-Medium
// analog: pinned static share plus the MLP bytes at the method's effective
// bits/weight, scaled by the dynamic density for +DIP points.
func memoryMB(m *model.Model, bytesPerWeight, density float64) float64 {
	paper := hwsim.PaperModelBytes[m.Cfg.Name]
	const staticFraction = 0.15
	// Paper footprints assume INT4 (0.5 B/w); rescale the MLP share.
	mlpBytes := (1 - staticFraction) * paper * (bytesPerWeight / 0.5) * density
	return (staticFraction*paper + mlpBytes) / 1e6
}

// Fig9 compares and combines DIP with quantization and static pruning on
// the memory/perplexity plane (paper Figure 9).
func Fig9(l *Lab) ([]*Table, error) {
	name := model.Phi3MedSim
	m := l.Model(name)
	test := l.TestTokens(0)
	win := l.EvalWin()
	calib := l.CalibTokens()
	out := &Table{
		ID:      "fig9",
		Title:   "DIP vs and with quantization / static pruning (memory-perplexity plane)",
		Columns: []string{"config", "memory_mb", "ppl"},
	}
	densePPL := model.Perplexity(m, test, win, nil)
	out.AddRow("dense-fp16", memoryMB(m, 2.0, 1), densePPL)

	// Blockwise quantization at 2/3/4 bits.
	bqBits := []int{2, 3, 4}
	if l.Scale == model.ScaleTest {
		bqBits = []int{2, 4}
	}
	bqModels := map[int]*model.Model{}
	for _, bits := range bqBits {
		opts := quant.DefaultBQOpts(bits)
		qm, err := quant.BQModel(m, calib, win, opts)
		if err != nil {
			return nil, fmt.Errorf("bq%d: %w", bits, err)
		}
		bqModels[bits] = qm
		ppl := model.Perplexity(qm, test, win, nil)
		out.AddRow(fmt.Sprintf("bq%d", bits), memoryMB(m, quant.BQBytesPerWeight(opts), 1), ppl)
	}
	// Vector quantization at 2/3 bits.
	vqBits := []int{2, 3}
	if l.Scale == model.ScaleTest {
		vqBits = []int{3}
	}
	vqModels := map[int]*model.Model{}
	for _, bits := range vqBits {
		opts := quant.DefaultVQOpts(bits)
		qm := quant.VQModel(m, opts)
		vqModels[bits] = qm
		ppl := model.Perplexity(qm, test, win, nil)
		out.AddRow(fmt.Sprintf("vq%d", bits), memoryMB(m, quant.VQBytesPerWeight(opts), 1), ppl)
	}
	// SparseGPT at 4-bit storage with the 1-bit mask overhead.
	for _, s := range []float64{0.5} {
		pm := l.SparseGPT(name, prune.Unstructured, s)
		ppl := model.Perplexity(pm, test, win, nil)
		bpw := 0.5 + prune.MaskOverheadBits/8 // 4-bit payload + mask bit
		out.AddRow(fmt.Sprintf("sparsegpt-%.0f%%+bq4", 100*s), memoryMB(m, bpw, 1-s), ppl)
	}
	// BQ4+DIP and VQ3+DIP density sweeps: dynamic sparsity on top of a
	// quantized model.
	densities := []float64{0.4, 0.5, 0.65, 0.8}
	if l.Scale == model.ScaleTest {
		densities = []float64{0.5, 0.8}
	}
	if qm, ok := bqModels[4]; ok {
		for _, d := range densities {
			ppl, meas := eval.PerplexityUnderScheme(qm, sparsity.NewDIP(d), test, win)
			out.AddRow(fmt.Sprintf("bq4+dip@%.2f", d), memoryMB(m, quant.BQBytesPerWeight(quant.DefaultBQOpts(4)), meas), ppl)
		}
	}
	if qm, ok := vqModels[3]; ok {
		for _, d := range densities {
			ppl, meas := eval.PerplexityUnderScheme(qm, sparsity.NewDIP(d), test, win)
			out.AddRow(fmt.Sprintf("vq3+dip@%.2f", d), memoryMB(m, quant.VQBytesPerWeight(quant.DefaultVQOpts(3)), meas), ppl)
		}
	}
	out.Notes = append(out.Notes,
		"paper Figure 9: BQ4+DIP beats more aggressive static quantization; DIP composes with quantizers")
	return []*Table{out}, nil
}
