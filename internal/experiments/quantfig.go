package experiments

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/hwsim"
	"repro/internal/model"
	"repro/internal/prune"
	"repro/internal/quant"
	"repro/internal/sparsity"
)

// memoryMB computes the paper-scale DRAM footprint of the Phi-3-Medium
// analog: pinned static share plus the MLP bytes at the method's effective
// bits/weight, scaled by the dynamic density for +DIP points.
func memoryMB(m *model.Model, bytesPerWeight, density float64) float64 {
	paper := hwsim.PaperModelBytes[m.Cfg.Name]
	const staticFraction = 0.15
	// Paper footprints assume INT4 (0.5 B/w); rescale the MLP share.
	mlpBytes := (1 - staticFraction) * paper * (bytesPerWeight / 0.5) * density
	return (staticFraction*paper + mlpBytes) / 1e6
}

// Fig9 compares and combines DIP with quantization and static pruning on
// the memory/perplexity plane (paper Figure 9).
func Fig9(l *Lab) ([]*Table, error) {
	name := model.Phi3MedSim
	m := l.Model(name)
	test := l.TestTokens(0)
	win := l.EvalWin()
	calib := l.CalibTokens()
	out := &Table{
		ID:      "fig9",
		Title:   "DIP vs and with quantization / static pruning (memory-perplexity plane)",
		Columns: []string{"config", "memory_mb", "ppl"},
	}
	densePPL := model.Perplexity(m, test, win, nil)
	out.AddRow("dense-fp16", memoryMB(m, 2.0, 1), densePPL)

	// Quantizer builds and their dense evaluations are independent; fan
	// them out, then emit rows in the fixed bq/vq/sparsegpt order.
	bqBits := []int{2, 3, 4}
	if l.Scale == model.ScaleTest {
		bqBits = []int{2, 4}
	}
	vqBits := []int{2, 3}
	if l.Scale == model.ScaleTest {
		vqBits = []int{3}
	}
	bqModels := make([]*model.Model, len(bqBits))
	bqPPL := make([]float64, len(bqBits))
	vqModels := make([]*model.Model, len(vqBits))
	vqPPL := make([]float64, len(vqBits))
	var sgPPL float64
	if err := forEach(len(bqBits)+len(vqBits)+1, func(i int) error {
		switch {
		case i < len(bqBits):
			bits := bqBits[i]
			qm, err := quant.BQModel(m, calib, win, quant.DefaultBQOpts(bits))
			if err != nil {
				return fmt.Errorf("bq%d: %w", bits, err)
			}
			bqModels[i] = qm
			bqPPL[i] = model.Perplexity(qm, test, win, nil)
		case i < len(bqBits)+len(vqBits):
			bits := vqBits[i-len(bqBits)]
			qm := quant.VQModel(m, quant.DefaultVQOpts(bits))
			vqModels[i-len(bqBits)] = qm
			vqPPL[i-len(bqBits)] = model.Perplexity(qm, test, win, nil)
		default:
			// SparseGPT at 4-bit storage with the 1-bit mask overhead.
			pm := l.SparseGPT(name, prune.Unstructured, 0.5)
			sgPPL = model.Perplexity(pm, test, win, nil)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for i, bits := range bqBits {
		out.AddRow(fmt.Sprintf("bq%d", bits), memoryMB(m, quant.BQBytesPerWeight(quant.DefaultBQOpts(bits)), 1), bqPPL[i])
	}
	for i, bits := range vqBits {
		out.AddRow(fmt.Sprintf("vq%d", bits), memoryMB(m, quant.VQBytesPerWeight(quant.DefaultVQOpts(bits)), 1), vqPPL[i])
	}
	bpw := 0.5 + prune.MaskOverheadBits/8 // 4-bit payload + mask bit
	out.AddRow("sparsegpt-50%+bq4", memoryMB(m, bpw, 0.5), sgPPL)
	// BQ4+DIP and VQ3+DIP density sweeps: dynamic sparsity on top of a
	// quantized model.
	densities := []float64{0.4, 0.5, 0.65, 0.8}
	if l.Scale == model.ScaleTest {
		densities = []float64{0.5, 0.8}
	}
	sweep := func(qm *model.Model, label string, bytesPerWeight float64) error {
		type dipRes struct{ ppl, meas float64 }
		results := make([]dipRes, len(densities))
		if err := forEach(len(densities), func(i int) error {
			ppl, meas := eval.PerplexityUnderScheme(qm, sparsity.NewDIP(densities[i]), test, win)
			results[i] = dipRes{ppl, meas}
			return nil
		}); err != nil {
			return err
		}
		for i, d := range densities {
			out.AddRow(fmt.Sprintf("%s+dip@%.2f", label, d), memoryMB(m, bytesPerWeight, results[i].meas), results[i].ppl)
		}
		return nil
	}
	for i, bits := range bqBits {
		if bits == 4 {
			if err := sweep(bqModels[i], "bq4", quant.BQBytesPerWeight(quant.DefaultBQOpts(4))); err != nil {
				return nil, err
			}
		}
	}
	for i, bits := range vqBits {
		if bits == 3 {
			if err := sweep(vqModels[i], "vq3", quant.VQBytesPerWeight(quant.DefaultVQOpts(3))); err != nil {
				return nil, err
			}
		}
	}
	out.Notes = append(out.Notes,
		"paper Figure 9: BQ4+DIP beats more aggressive static quantization; DIP composes with quantizers")
	return []*Table{out}, nil
}
