package experiments

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/predictor"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// Fig3 reproduces the GLU activation-magnitude histograms contrasting a
// SwiGLU model (near-zero mass concentrated but few exact zeros) with its
// ReLU-fied counterpart (a large spike of exact zeros).
func Fig3(l *Lab) ([]*Table, error) {
	out := &Table{
		ID:      "fig3",
		Title:   "GLU activation magnitude distribution: SwiGLU vs ReLU-fied",
		Columns: []string{"model", "bin_lo", "bin_hi", "density"},
	}
	summary := &Table{
		ID:      "fig3-zeros",
		Title:   "Exact/near-zero GLU activation fraction",
		Columns: []string{"model", "exact_zero_frac", "below_1e-3_of_max"},
	}
	names := []string{model.Mistral7BSim, model.ReluFiedSim}
	l.Warm(names...)
	stats := make([]*sparsity.LayerStats, len(names))
	if err := forEach(len(names), func(i int) error {
		stats[i] = sparsity.CollectStats(l.Model(names[i]), l.CalibTokens(), l.EvalWin(), 256)
		return nil
	}); err != nil {
		return nil, err
	}
	for ni, name := range names {
		st := stats[ni]
		var all []float32
		lastLayer := len(st.AbsGLU) - 1
		all = append(all, st.AbsGLU[lastLayer]...) // the paper plots layer 31; we use the last layer
		maxV := float32(0)
		for _, v := range all {
			if v > maxV {
				maxV = v
			}
		}
		if maxV == 0 {
			maxV = 1
		}
		counts, edges := tensor.Histogram(all, 12, 0, maxV)
		total := len(all)
		for b := 0; b < len(counts); b++ {
			out.AddRow(name, float64(edges[b]), float64(edges[b+1]), float64(counts[b])/float64(total))
		}
		zeros, tiny := 0, 0
		for _, v := range all {
			if v == 0 {
				zeros++
			}
			if v < 1e-3*maxV {
				tiny++
			}
		}
		summary.AddRow(name, float64(zeros)/float64(total), float64(tiny)/float64(total))
	}
	summary.Notes = append(summary.Notes,
		"SwiGLU has almost no exact zeros; the ReLU-fied analog is naturally sparse (paper Section 2/Figure 3)")
	return []*Table{out, summary}, nil
}

// Fig4 compares the three GLU thresholding strategies at 50% mean GLU
// density: a single global threshold, calibrated per-layer thresholds, and
// per-token top-K. It reports the per-layer achieved density and the test
// perplexity of each strategy.
func Fig4(l *Lab) ([]*Table, error) {
	name := model.Mistral7BSim
	m := l.Model(name)
	st := sparsity.CollectStats(m, l.CalibTokens(), l.EvalWin(), 256)
	const rho = 0.5
	strategies := []*sparsity.GLUThreshold{
		{Mode: sparsity.ThresholdGlobal, Global: st.GlobalThreshold(rho)},
		{Mode: sparsity.ThresholdPerLayer, PerLayer: st.PerLayerThresholds(rho)},
		{Mode: sparsity.ThresholdPerToken, Rho: rho},
	}
	perLayer := &Table{
		ID:      "fig4",
		Title:   "Layer activation density per GLU thresholding strategy @50% target",
		Columns: []string{"strategy", "layer", "mean_density"},
	}
	ppls := &Table{
		ID:      "fig4-ppl",
		Title:   "Perplexity per thresholding strategy",
		Columns: []string{"strategy", "ppl"},
	}
	test := l.TestTokens(0)
	dense := model.Perplexity(m, test, l.EvalWin(), nil)
	L := len(m.Blocks)
	for _, s := range strategies {
		s.LastDensity = make([]float64, L)
		sums := make([]float64, L)
		n := 0
		hook := func(layer int, x tensor.Vec) tensor.Vec {
			y, _ := s.Forward(layer, x, m.Blocks[layer].MLP, nil)
			sums[layer] += s.LastDensity[layer]
			if layer == 0 {
				n++
			}
			return y
		}
		ppl := model.Perplexity(m, test, l.EvalWin(), hook)
		for layer := 0; layer < L; layer++ {
			perLayer.AddRow(s.Mode.String(), layer, sums[layer]/float64(n))
		}
		ppls.AddRow(s.Mode.String(), ppl)
	}
	ppls.AddRow("dense", dense)
	ppls.Notes = append(ppls.Notes,
		"paper Figure 4: global threshold collapses early layers and hurts ppl; per-layer ≈ per-token")
	return []*Table{perLayer, ppls}, nil
}

// Fig6 contrasts GLU pruning (oracle ranking by true |GLU|) against
// predictive GLU pruning (DejaVu predictors) on the SwiGLU analog and its
// ReLU-fied counterpart across GLU density levels, measured by mixed-task
// multiple-choice accuracy and predictor top-K recall.
func Fig6(l *Lab) ([]*Table, error) {
	out := &Table{
		ID:      "fig6",
		Title:   "GLU vs predictive pruning on SwiGLU and ReLU-fied analogs",
		Columns: []string{"model", "strategy", "glu_density", "mc_acc_%", "pred_recall"},
	}
	densities := []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	if l.Scale == model.ScaleTest {
		densities = []float64{0.25, 0.5, 1.0}
	}
	items := l.MixedMCItems(99)
	names := []string{model.Mistral7BSim, model.ReluFiedSim}
	l.Warm(names...)
	// Fan out the full (name × density) grid: per cell one GLU-pruned
	// accuracy, one predictive accuracy, and one recall measurement.
	type fig6Cell struct {
		accG, accP, recall float64
	}
	denseAccs := make([]float64, len(names))
	cells := make([]fig6Cell, len(names)*len(densities))
	if err := forEach(len(names)*(1+len(densities)), func(i int) error {
		ni := i / (1 + len(densities))
		name := names[ni]
		m := l.Model(name)
		di := i%(1+len(densities)) - 1
		if di < 0 {
			denseAccs[ni] = eval.MCAccuracy(m, nil, l.Tokenizer(), items)
			return nil
		}
		rho := densities[di]
		preds := l.Predictors(name)
		c := &cells[ni*len(densities)+di]
		c.accG = eval.MCAccuracy(m, &sparsity.GLUPrune{RhoGLU: rho}, l.Tokenizer(), items)
		pred := &sparsity.Predictive{Rho: rho, Score: preds.ScoreFunc(), ParamsPerLayer: preds.ParamCount() / len(m.Blocks)}
		c.accP = eval.MCAccuracy(m, pred, l.Tokenizer(), items)
		c.recall = predictorRecall(l, name, rho)
		return nil
	}); err != nil {
		return nil, err
	}
	for ni, name := range names {
		out.AddRow(name, "dense", 1.0, denseAccs[ni], "-")
		for di, rho := range densities {
			c := cells[ni*len(densities)+di]
			out.AddRow(name, "glu", rho, c.accG, "-")
			out.AddRow(name, "glu-predictive", rho, c.accP, fmt.Sprintf("%.3f", c.recall))
		}
	}
	out.Notes = append(out.Notes,
		"paper Figure 6: predictive pruning tracks GLU pruning on the ReLU-fied model and collapses on SwiGLU")
	return []*Table{out}, nil
}

func predictorRecall(l *Lab, name string, rho float64) float64 {
	m := l.Model(name)
	preds := l.Predictors(name)
	maxTokens := 96
	if l.Scale == model.ScalePaper {
		maxTokens = 256
	}
	return predictor.RecallAtK(m, preds, l.ValidTokens(), l.EvalWin(), rho, maxTokens)
}
