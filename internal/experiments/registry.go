package experiments

import (
	"fmt"
	"sort"
)

// registry maps experiment ids to drivers.
var registry = map[string]Driver{
	"fig2":      Fig2,
	"fig3":      Fig3,
	"fig4":      Fig4,
	"fig6":      Fig6,
	"fig8":      Fig8,
	"fig9":      Fig9,
	"fig10":     Fig10,
	"fig11":     Fig11,
	"fig12":     Fig12,
	"fig14":     Fig14,
	"tab1":      Table1,
	"tab2":      Table2,
	"tab3":      Table3,
	"tab4":      Table4,
	"tab5":      Table5,
	"tab6":      Table6,
	"tab7":      Table7,
	"abl-alloc": AblAlloc,
	"serve":     Serve,
	"chaos":     Chaos,
	"cluster":   ClusterServe,
}

// IDs lists the registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id against the lab.
func Run(l *Lab, id string) ([]*Table, error) {
	d, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	return d(l)
}
