package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/eval"
	"repro/internal/hwsim"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/serving/faults"
	"repro/internal/sparsity"
)

// Chaos measures the serving engine's robustness machinery under seeded
// fault injection: the same open-loop Poisson trace is replayed across a
// grid of fault rate × recovery policy × arbitration × preemptor, with a
// faults.Mix plan (transient step faults, grant revocations, request
// cancellations, capacity dips) driving the chaos and retry/backoff plus
// admission-control shedding driving the recovery. Every cell runs on the
// simulated tick clock with stateless per-(seed, tick, slot) fault draws,
// so the whole grid is bit-identical for a fixed -seed, any worker count,
// either decode path. The companion chaos-recovery table summarizes the
// headline comparison per rate: SLO attainment with recovery on versus a
// no-recovery baseline (retry budget 1, no shedding) on the identical
// trace and fault schedule.
func Chaos(l *Lab) ([]*Table, error) {
	name := model.Phi3MedSim
	m := l.Model(name)
	toks := l.TestTokens(0)
	win := l.EvalWin()
	sessTokens := l.evalTokens() / 4
	k := 8
	if l.Scale == model.ScalePaper {
		k = 12
	}
	if l.ServeSmoke {
		k = 6
		sessTokens = 2 * win
	}
	scheme := sparsity.NewDIP(0.5)
	sys := eval.SystemConfig{Device: hwsim.A18Like(), Policy: cache.PolicyLFU, Win: win}
	slots := 2
	const quantum = 8
	maxStream := sessTokens + 2*win
	svcTicks := (maxStream + quantum - 1) / quantum
	deadline := l.ServeSLO
	if deadline <= 0 {
		deadline = (k/slots + 2) * svcTicks
	}
	rate := l.ServeRate
	if rate <= 0 {
		rate = float64(slots) / float64(svcTicks)
	}

	makeWorkload := func() (serving.Workload, error) {
		reqs := make([]serving.Request, k)
		for i := range reqs {
			n := sessTokens + (i%3)*win
			start := 0
			if len(toks) > n {
				start = (i * 997) % (len(toks) - n)
			}
			slo := serving.SLO{Class: "batch"}
			if i%2 == 0 {
				slo = serving.SLO{Class: "interactive", Priority: 2, DeadlineTicks: deadline}
			}
			reqs[i] = serving.Request{
				ID:     fmt.Sprintf("c%02d", i),
				Scheme: scheme,
				Tokens: toks[start : start+n],
				SLO:    slo,
			}
		}
		return serving.PoissonArrivals(reqs, rate, l.ServeSeed+1)
	}

	faultRates := []float64{0.02, 0.05}
	if l.ServeFaults > 0 {
		faultRates = []float64{l.ServeFaults}
	}
	retryAttempts := l.ServeRetry
	if retryAttempts <= 0 {
		retryAttempts = 3
	}
	shedBudget := l.ServeShed
	if shedBudget <= 0 {
		shedBudget = 2 * slots
	}
	arbs := []serving.ArbPolicy{serving.ArbFairShare, serving.ArbExclusive}
	preempts := []serving.Preemptor{serving.NoPreempt(), serving.DeadlinePreempt()}
	if l.ServeSmoke {
		arbs = []serving.ArbPolicy{serving.ArbFairShare}
	}
	if l.ServeArb != "" {
		a, err := serving.ParseArbPolicy(l.ServeArb)
		if err != nil {
			return nil, err
		}
		arbs = []serving.ArbPolicy{a}
	}
	if l.ServePreempt != "" {
		p, err := serving.ParsePreemptor(l.ServePreempt)
		if err != nil {
			return nil, err
		}
		preempts = []serving.Preemptor{p}
	}

	runCell := func(frate float64, recover bool, pre serving.Preemptor, arb serving.ArbPolicy) (*serving.Report, error) {
		plan, err := faults.Mix(frate, l.ServeSeed+2)
		if err != nil {
			return nil, err
		}
		rec := l.obsRecorder()
		cfg := serving.Config{
			System: sys, Arb: arb, Sched: serving.EDF(), Preempt: pre,
			MaxActive: slots, Quantum: quantum, Seed: l.ServeSeed,
			Faults: plan, Retry: faults.RetryPolicy{MaxAttempts: 1},
			Obs:    rec,
		}
		if recover {
			cfg.Retry = faults.RetryPolicy{MaxAttempts: retryAttempts}
			cfg.ShedQueueBudget = shedBudget
			cfg.Degrade = true
		}
		w, err := makeWorkload()
		if err != nil {
			return nil, err
		}
		e, err := serving.NewEngine(m, cfg, w)
		if err != nil {
			return nil, err
		}
		rep, err := e.Run()
		if err != nil {
			return nil, err
		}
		if rec != nil {
			if err := rep.ReconcileObs(); err != nil {
				return nil, fmt.Errorf("chaos: rate %v %s/%s: %w", frate, pre.Name(), arb, err)
			}
			mode := "none"
			if recover {
				mode = "recovery"
			}
			cell := fmt.Sprintf("%v-%s-%s-%s", frate, mode, pre.Name(), arb)
			if err := l.writeCellEvents(cell, rec); err != nil {
				return nil, err
			}
		}
		return rep, nil
	}

	out := &Table{
		ID:    "chaos",
		Title: "Fault injection grid: seeded chaos (step faults, revocations, cancels, capacity dips) vs retry/backoff + load shedding",
		Columns: []string{"fault_rate", "recovery", "preempt", "policy", "sessions",
			"sim_tok_s", "goodput", "faults", "retries", "failed", "shed",
			"slo_attain", "mean_recover_t", "dip_slot_t"},
	}
	type ratePair struct {
		base, rec  float64 // summed attainment across cells
		cells      int
		recRetries int
		recGoodput float64
	}
	pairs := make([]ratePair, len(faultRates))
	for ri, frate := range faultRates {
		for _, recover := range []bool{false, true} {
			for _, pre := range preempts {
				for _, arb := range arbs {
					rep, err := runCell(frate, recover, pre, arb)
					if err != nil {
						return nil, err
					}
					mode := "none"
					if recover {
						mode = "retry+shed"
					}
					nFaults := rep.StepFaults + rep.Revocations + rep.Cancellations
					out.AddRow(frate, mode, pre.Name(), arb.String(), len(rep.Sessions),
						rep.SimTokS, rep.Goodput, nFaults, rep.Retries, rep.Failed, rep.Shed,
						rep.SLOAttainRate, rep.MeanRecoverTicks, rep.DipSlotTicks)
					if recover {
						pairs[ri].rec += rep.SLOAttainRate
						pairs[ri].recRetries += rep.Retries
						pairs[ri].recGoodput += rep.Goodput
					} else {
						pairs[ri].base += rep.SLOAttainRate
						pairs[ri].cells++
					}
				}
			}
		}
	}
	out.Notes = append(out.Notes,
		"fault draws are pure functions of (seed, tick, slot): every cell is bit-identical for a fixed -seed, any worker count, fused or per-session decode",
		"recovery=none runs the identical fault schedule with a single attempt and no shedding; retry+shed adds seeded exponential backoff and admission-control load shedding with graceful degradation",
		"goodput counts only tokens of sessions that completed OK — (sim_tok_s − goodput) prices retried prefixes and failed/cancelled work",
		"mean_recover_t is the mean ticks from a fault-triggered suspension to the session decoding again; dip_slot_t is slot-ticks of capacity lost to dips",
	)
	summary := &Table{
		ID:    "chaos-recovery",
		Title: "Recovery headline: mean SLO attainment with retry+shedding vs the no-recovery baseline, identical fault schedule",
		Columns: []string{"fault_rate", "cells", "attain_base", "attain_recovery",
			"goodput_recovery", "retries"},
		Notes: []string{
			"attainment is averaged over the preempt × arbitration cells at each rate; both columns replay the same seeded trace and fault schedule",
		},
	}
	for ri, frate := range faultRates {
		n := float64(pairs[ri].cells)
		summary.AddRow(frate, pairs[ri].cells, pairs[ri].base/n, pairs[ri].rec/n,
			pairs[ri].recGoodput/n, pairs[ri].recRetries)
	}
	return []*Table{out, summary}, nil
}
