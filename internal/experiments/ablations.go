package experiments

import (
	"repro/internal/cache"
	"repro/internal/eval"
	"repro/internal/hwsim"
	"repro/internal/model"
	"repro/internal/sparsity"
)

// AblAlloc reproduces the paper's Appendix-A negative finding: allocating
// the DRAM cache budget non-uniformly across layers (weighted by each
// layer's recorded miss traffic) "did not find significant improvements"
// over the uniform split. The driver measures both allocations on the same
// token stream and reports the throughput/hit-rate delta.
func AblAlloc(l *Lab) ([]*Table, error) {
	name := model.Phi3MedSim
	m := l.Model(name)
	test := l.TestTokens(0)
	if l.Scale == model.ScaleTest && len(test) > 768 {
		test = test[:768]
	} else if len(test) > 3072 {
		test = test[:3072]
	}
	out := &Table{
		ID:      "abl-alloc",
		Title:   "Uniform vs trace-weighted per-layer cache allocation (DIP @ 50%, LFU)",
		Columns: []string{"allocation", "density", "ppl", "tok_s", "hit_rate"},
	}
	win := l.EvalWin()
	densities := []float64{0.4, 0.5, 0.6}
	type ablRes struct{ uni, wtd eval.Point }
	results := make([]ablRes, len(densities))
	// Each density is independent (own scheme instance, own caches); the
	// uniform/recording/weighted sequence within a density stays ordered.
	if err := forEach(len(densities), func(i int) error {
		density := densities[i]
		s := sparsity.NewDIP(density)
		groups := hwsim.ProbeGroups(s, m)
		// Uniform baseline.
		uni, err := runPlanned(l, m, s, test, win, groups, nil)
		if err != nil {
			return err
		}
		// Trace-weighted: record one pass, derive per-layer weights.
		rec := cache.NewTraceRecorder()
		recHook := eval.Hook(m, s, eval.HookOpts{Recorder: rec})
		for start := 0; start+win <= len(test); start += win {
			m.Forward(test[start:start+win], recHook)
		}
		weights := hwsim.LayerWeightsFromTrace(rec, len(m.Blocks))
		wtd, err := runPlanned(l, m, s, test, win, groups, weights)
		if err != nil {
			return err
		}
		results[i] = ablRes{uni, wtd}
		return nil
	}); err != nil {
		return nil, err
	}
	for i, density := range densities {
		r := results[i]
		out.AddRow("uniform", density, r.uni.PPL, r.uni.Throughput, r.uni.HitRate)
		out.AddRow("trace-weighted", density, r.wtd.PPL, r.wtd.Throughput, r.wtd.HitRate)
	}
	out.Notes = append(out.Notes,
		"paper Appendix A: non-uniform allocation gives no significant improvement — DIP's per-token unit counts are constant per layer, so miss pressure is already uniform")
	return []*Table{out}, nil
}

// runPlanned evaluates a scheme under a custom plan (optionally with
// non-uniform layer weights applied).
func runPlanned(l *Lab, m *model.Model, s sparsity.Scheme, test []int, win int, groups [sparsity.NumGroups]bool, weights []float64) (eval.Point, error) {
	plan, err := hwsim.NewPlan(m, hwsim.A18Like(), hwsim.PlanOpts{Groups: groups})
	if err != nil {
		return eval.Point{}, err
	}
	if weights != nil {
		if err := plan.ApplyLayerWeights(weights); err != nil {
			return eval.Point{}, err
		}
	}
	mc := plan.NewCache(cache.PolicyLFU)
	meter := plan.NewMeter()
	acc := eval.NewDensityAccumulator(m)
	hook := eval.Hook(m, s, eval.HookOpts{Cache: mc, Meter: meter, Density: acc})
	ppl := model.Perplexity(m, test, win, hook)
	st := mc.TotalStats()
	return eval.Point{
		Scheme: s.Name(), Density: acc.Mean(), PPL: ppl,
		Throughput: meter.Throughput(), HitRate: st.HitRate(), LatencyS: meter.Latency(),
	}, nil
}
