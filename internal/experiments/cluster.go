package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/hwsim"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/serving/faults"
	"repro/internal/serving/obs"
	"repro/internal/sparsity"
)

// ClusterServe benchmarks the deterministic sim-cluster (internal/cluster):
// N replica serving engines on one shared tick clock behind a pluggable
// session router, over a grid of node count × router policy × arbitration.
// The trace is deliberately tenant-skewed — ~75% of sessions belong to one
// "hot" tenant — so the session-affine hash router hot-spots a node while
// least-loaded and SLO-aware spread the same trace, and the imbalance and
// attainment columns price the difference. Each multi-node cell also
// replays the identical trace through two lifecycle scenarios: an
// administrative drain of the last node (placements stop, its queue
// migrates) and a fault-injected node failure (the node's sessions are
// evacuated mid-decode and fail over, live stream and cache state carried
// across the hop). Every column except the wall annotation runs on the
// simulated tick clock and is bit-identical for a fixed -seed, any worker
// count, either decode path; every run's rolled-up report is reconciled
// against its merged per-node event log.
func ClusterServe(l *Lab) ([]*Table, error) {
	name := model.Phi3MedSim
	m := l.Model(name)
	toks := l.TestTokens(0)
	win := l.EvalWin()
	sessTokens := l.evalTokens() / 4
	k := 12
	if l.Scale == model.ScalePaper {
		k = 24
	}
	if l.ServeSmoke {
		k = 9
		sessTokens = 2 * win
	}
	scheme := sparsity.NewDIPCA(0.5, 0.2)
	sys := eval.SystemConfig{Device: hwsim.A18Like(), Policy: cache.PolicyLFU, Win: win}
	const slotsPerNode = 2
	const quantum = 8
	maxStream := sessTokens + 2*win
	svcTicks := (maxStream + quantum - 1) / quantum
	nodesAxis := []int{1, 3}
	if l.ServeNodes > 0 {
		nodesAxis = []int{l.ServeNodes}
	}
	maxNodes := 0
	for _, n := range nodesAxis {
		if n > maxNodes {
			maxNodes = n
		}
	}
	// The deadline is sized so the spread cluster attains it while a
	// hot-spotted node's serial backlog misses from the third wave on.
	deadline := l.ServeSLO
	if deadline <= 0 {
		waves := k / (slotsPerNode * maxNodes)
		if waves < 1 {
			waves = 1
		}
		deadline = (waves + 2) * svcTicks
	}

	makeWorkload := func(nodes int) (serving.Workload, error) {
		reqs := make([]serving.Request, k)
		for i := range reqs {
			n := sessTokens + (i%3)*win
			start := 0
			if len(toks) > n {
				start = (i * 997) % (len(toks) - n)
			}
			// Skew: three of four sessions belong to the hot tenant; the
			// rest are singleton tenants. The router's affinity key is the
			// prefix before '/'.
			tenant := fmt.Sprintf("t%02d", i)
			if i%4 != 3 {
				tenant = "hot"
			}
			slo := serving.SLO{Class: "batch"}
			if i%2 == 0 {
				slo = serving.SLO{Class: "interactive", Priority: 2, DeadlineTicks: deadline}
			}
			reqs[i] = serving.Request{
				ID:     fmt.Sprintf("%s/s%02d", tenant, i),
				Scheme: scheme,
				Tokens: toks[start : start+n],
				SLO:    slo,
			}
		}
		rate := l.ServeRate
		if rate <= 0 {
			// Arrival rate ≈ the cell's aggregate service rate, so every
			// node count faces the same per-capacity load.
			rate = float64(nodes*slotsPerNode) / float64(svcTicks)
		}
		return serving.PoissonArrivals(reqs, rate, l.ServeSeed+1)
	}

	routers := cluster.RouterNames()
	if l.ServeRouter != "" {
		if _, err := cluster.ParseRouter(l.ServeRouter); err != nil {
			return nil, err
		}
		routers = []string{l.ServeRouter}
	}
	arbs := []serving.ArbPolicy{serving.ArbExclusive, serving.ArbFairShare}
	if l.ServeArb != "" {
		a, err := serving.ParseArbPolicy(l.ServeArb)
		if err != nil {
			return nil, err
		}
		arbs = []serving.ArbPolicy{a}
	}
	fuse := l.ServeFuse
	if fuse == "" {
		fuse = "on"
	}
	if fuse != "on" && fuse != "off" && fuse != "both" {
		return nil, fmt.Errorf("cluster: unknown -fuse mode %q (on|off|both)", fuse)
	}

	// runScenario replays one seeded trace through a cluster configured for
	// the cell, optionally with a drain or failure scripted in. failNode
	// picks the outage target for the "fail" scenario.
	runScenario := func(nodes int, routerName string, arb serving.ArbPolicy, noFuse bool, scenario string, failNode int) (*cluster.Report, []obs.Event, error) {
		router, err := cluster.ParseRouter(routerName)
		if err != nil {
			return nil, nil, err
		}
		nodeCfgs := make([]serving.Config, nodes)
		for i := range nodeCfgs {
			nodeCfgs[i] = serving.Config{
				System: sys, Arb: arb, Sched: serving.EDF(),
				MaxActive: slotsPerNode, Quantum: quantum,
				Seed: l.ServeSeed, NoFuse: noFuse,
			}
		}
		cfg := cluster.Config{
			Nodes: nodeCfgs, Router: router, Seed: l.ServeSeed,
			Obs: &obs.Config{Window: l.ServeObsWindow},
		}
		switch scenario {
		case "steady":
		case "drain":
			cfg.DrainTick = l.ServeDrainTick
			if cfg.DrainTick <= 0 {
				cfg.DrainTick = svcTicks
			}
			cfg.DrainNode = nodes - 1
		case "fail":
			cfg.Failures = []cluster.Failure{{Node: failNode, Tick: svcTicks / 2, Ticks: svcTicks}}
		case "chaos-heartbeat", "chaos-oracle", "chaos-off":
			rt := l.ServeRecoverTicks
			if rt <= 0 {
				rt = svcTicks / 2
			}
			cfg.Chaos = faults.NodeChaos{
				Seed: l.ServeSeed + 2, CrashRate: l.ServeNodeChaos, RecoverTicks: rt,
			}
			cfg.Detect = cluster.Detect{
				Mode:        strings.TrimPrefix(scenario, "chaos-"),
				MissConfirm: l.ServeDetectMiss,
			}
		}
		w, err := makeWorkload(nodes)
		if err != nil {
			return nil, nil, err
		}
		c, err := cluster.New(m, cfg, w)
		if err != nil {
			return nil, nil, err
		}
		rep, err := c.Run()
		if err != nil {
			return nil, nil, err
		}
		if err := rep.ReconcileObs(); err != nil {
			return nil, nil, fmt.Errorf("cluster: n%d/%s/%s/%s: %w", nodes, routerName, arb, scenario, err)
		}
		return rep, c.Events(), nil
	}

	cols := []string{"nodes", "router", "policy", "sessions", "slots",
		"sim_tok_s", "goodput", "hit_rate", "slo_attain", "imbalance",
		"queue_p50_t", "turn_p99_t", "drain_moved", "drain_attain",
		"fail_migr", "fail_goodput",
		"detect_lag", "rejoins", "stranded",
		"chaos_attain", "oracle_attain", "off_attain",
		"fused", "wall_tok_s"}
	if fuse == "both" {
		cols = append(cols, "wall_unfused_tok_s")
	}
	out := &Table{
		ID:      "cluster",
		Title:   "Sim-cluster grid: session routing, drain, and failover across replica engines on a skewed-tenant trace",
		Columns: cols,
	}
	for _, nodes := range nodesAxis {
		rs := routers
		if nodes == 1 && l.ServeRouter == "" {
			// With one node every router degenerates to the same placement;
			// one representative row is enough.
			rs = routers[:1]
		}
		for _, routerName := range rs {
			for _, arb := range arbs {
				rep, events, err := runScenario(nodes, routerName, arb, fuse == "off", "steady", 0)
				if err != nil {
					return nil, err
				}
				var unfusedWall serving.WallClock
				if fuse == "both" {
					unfused, uevents, err := runScenario(nodes, routerName, arb, true, "steady", 0)
					if err != nil {
						return nil, err
					}
					unfusedWall = unfused.Wall
					fw := rep.Wall
					stripClusterWall(rep)
					stripClusterWall(unfused)
					if !reflect.DeepEqual(rep, unfused) {
						return nil, fmt.Errorf("cluster: n%d/%s/%s: fused report diverged from the per-session path",
							nodes, routerName, arb)
					}
					var fb, ub bytes.Buffer
					if err := obs.WriteJSONL(&fb, events); err != nil {
						return nil, err
					}
					if err := obs.WriteJSONL(&ub, uevents); err != nil {
						return nil, err
					}
					if !bytes.Equal(fb.Bytes(), ub.Bytes()) {
						return nil, fmt.Errorf("cluster: n%d/%s/%s: merged event log diverged between fused and per-session paths",
							nodes, routerName, arb)
					}
					rep.Wall = fw
				}
				if err := l.writeCellEventLog(fmt.Sprintf("n%d-%s-%s-steady", nodes, routerName, arb), events); err != nil {
					return nil, err
				}
				drainMoved, drainAttain := any("-"), any("-")
				failMigr, failGoodput := any("-"), any("-")
				if nodes > 1 {
					drain, devents, err := runScenario(nodes, routerName, arb, fuse == "off", "drain", 0)
					if err != nil {
						return nil, err
					}
					if err := l.writeCellEventLog(fmt.Sprintf("n%d-%s-%s-drain", nodes, routerName, arb), devents); err != nil {
						return nil, err
					}
					drainMoved, drainAttain = drain.Migrations+drain.Requeues, drain.SLOAttainRate
					// The failover replay targets the steady run's
					// most-loaded node (lowest index on ties) — the
					// worst-case outage, and a pure function of the steady
					// placements so the whole row stays deterministic.
					hottest := 0
					for n, p := range rep.Placements {
						if p > rep.Placements[hottest] {
							hottest = n
						}
					}
					fail, fevents, err := runScenario(nodes, routerName, arb, fuse == "off", "fail", hottest)
					if err != nil {
						return nil, err
					}
					if err := l.writeCellEventLog(fmt.Sprintf("n%d-%s-%s-fail", nodes, routerName, arb), fevents); err != nil {
						return nil, err
					}
					failMigr, failGoodput = fail.Migrations, fail.Goodput
				}
				detectLag, rejoins, stranded := any("-"), any("-"), any("-")
				chaosAttain, oracleAttain, offAttain := any("-"), any("-"), any("-")
				if nodes > 1 && l.ServeNodeChaos > 0 {
					// The chaos replay: the same trace under unscripted
					// crash+recover chaos, once per detector mode. The
					// heartbeat run is the measured system, the zero-lag
					// oracle bounds it from above, and the detector-off run
					// (stranded work frozen until restart) from below.
					hb, cevents, err := runScenario(nodes, routerName, arb, fuse == "off", "chaos-heartbeat", 0)
					if err != nil {
						return nil, err
					}
					if err := l.writeCellEventLog(fmt.Sprintf("n%d-%s-%s-chaos", nodes, routerName, arb), cevents); err != nil {
						return nil, err
					}
					oracle, _, err := runScenario(nodes, routerName, arb, fuse == "off", "chaos-oracle", 0)
					if err != nil {
						return nil, err
					}
					offRep, _, err := runScenario(nodes, routerName, arb, fuse == "off", "chaos-off", 0)
					if err != nil {
						return nil, err
					}
					detectLag, rejoins, stranded = hb.MeanDetectLag, hb.Rejoins, hb.Stranded
					chaosAttain, oracleAttain, offAttain = hb.SLOAttainRate, oracle.SLOAttainRate, offRep.SLOAttainRate
				}
				row := []any{nodes, routerName, arb.String(), rep.Sessions, slotsPerNode,
					rep.SimTokS, rep.Goodput, rep.HitRate, rep.SLOAttainRate, rep.Imbalance,
					rep.QueueP50, rep.TurnaroundP99, drainMoved, drainAttain,
					failMigr, failGoodput,
					detectLag, rejoins, stranded,
					chaosAttain, oracleAttain, offAttain,
					fuse, rep.Wall.TokS}
				if fuse == "both" {
					row = append(row, unfusedWall.TokS)
				}
				out.AddRow(row...)
			}
		}
	}
	out.Notes = append(out.Notes,
		"every column except wall_tok_s runs on the shared simulated tick clock and is bit-identical for a fixed -seed, any worker count, fused or per-session decode",
		fmt.Sprintf("the trace is tenant-skewed (3 of 4 sessions share one tenant); interactive sessions carry priority 2 and a %d-tick deadline (dipbench -slo overrides)", deadline),
		"imbalance is max/mean per-node placements (1.0 = perfect spread); the session-affine hash router concentrates the hot tenant on one node by design",
		"drain_* replays the cell's trace with the last node administratively drained mid-run: placements stop, its queue moves to survivors (drain_moved counts migrations + fresh re-routes), active sessions finish locally",
		"fail_* replays it with the steady run's most-loaded node failing mid-run: active sessions are evacuated and fail over with their stream and cache state carried to surviving nodes (fail_migr counts live-stream migrations)",
		"every run's rolled-up report is reconciled against its merged per-node event log (cluster-level: per-node books cannot balance under migration)",
	)
	if l.ServeNodeChaos > 0 {
		out.Notes = append(out.Notes,
			fmt.Sprintf("chaos_* replays the cell's trace under unscripted node chaos (-node-chaos %g: seeded per-tick crash draws with timed restarts and rejoin probation): detect_lag is the heartbeat detector's mean crash-to-confirmation lag in ticks, stranded counts placements made onto dead-but-unconfirmed nodes, and chaos/oracle/off_attain price that lag — the zero-lag oracle bounds the detector from above, detection-off (work frozen until restart) from below", l.ServeNodeChaos))
	}
	if l.ServeEvents != "" {
		out.Notes = append(out.Notes,
			"with -events each scenario wrote <prefix>-n<N>-<router>-<arb>-<scenario> merged event logs (node field disambiguates replicas)")
	}
	return []*Table{out}, nil
}

// stripClusterWall zeroes the host-measured annotations on a cluster report
// so the fused/per-session determinism check compares only the simulated
// state.
func stripClusterWall(rep *cluster.Report) {
	rep.Wall = serving.WallClock{}
	for i := range rep.Nodes {
		rep.Nodes[i].Report.Wall = serving.WallClock{}
	}
}
