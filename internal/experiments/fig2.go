package experiments

import (
	"fmt"
	"math"
)

// Figure 2 compares released-LLM sizes against NPU speed and DRAM capacity
// trends. The series below are the public data points the paper plots
// (Apple-silicon NPU TOPS and iPhone DRAM from Wikipedia; largest released
// LLM per year from Zhao et al., 2023). The driver reproduces the figure's
// analytical content: exponential fits for NPU speed and model size versus
// a linear fit for DRAM, demonstrating the widening memory gap.
type trendPoint struct {
	Year  int
	Value float64
}

var (
	npuTOPS = []trendPoint{
		{2017, 0.6}, {2018, 5}, {2019, 6}, {2020, 11}, {2021, 15.8},
		{2022, 17}, {2023, 35}, {2024, 38},
	}
	dramGB = []trendPoint{
		{2017, 3}, {2018, 4}, {2019, 4}, {2020, 6}, {2021, 6},
		{2022, 6}, {2023, 8}, {2024, 8},
	}
	modelBParams = []trendPoint{
		{2018, 0.34}, {2019, 11}, {2020, 175}, {2021, 530},
		{2022, 540}, {2023, 1000}, {2024, 1800},
	}
)

// expFit fits v = a·exp(b·(year−y0)) by least squares in log space and
// returns the annual growth factor exp(b) and R².
func expFit(points []trendPoint) (growth, r2 float64) {
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		xs[i] = float64(p.Year - points[0].Year)
		ys[i] = math.Log(p.Value)
	}
	b, r := linFit(xs, ys)
	return math.Exp(b), r
}

// linFit returns the least-squares slope and R² of y on x.
func linFit(xs, ys []float64) (slope, r2 float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	slope = (n*sxy - sx*sy) / den
	// R² from the correlation coefficient.
	num := n*sxy - sx*sy
	den2 := math.Sqrt(den * (n*syy - sy*sy))
	if den2 == 0 {
		return slope, 1
	}
	r := num / den2
	return slope, r * r
}

// Fig2 regenerates the trend comparison.
func Fig2(l *Lab) ([]*Table, error) {
	series := &Table{
		ID:      "fig2",
		Title:   "NPU speed, DRAM capacity and LLM size by year",
		Columns: []string{"year", "npu_tops", "dram_gb", "model_b_params"},
	}
	byYear := map[int][3]string{}
	get := func(y int) [3]string {
		if v, ok := byYear[y]; ok {
			return v
		}
		return [3]string{"-", "-", "-"}
	}
	for _, p := range npuTOPS {
		v := get(p.Year)
		v[0] = format(p.Value)
		byYear[p.Year] = v
	}
	for _, p := range dramGB {
		v := get(p.Year)
		v[1] = format(p.Value)
		byYear[p.Year] = v
	}
	for _, p := range modelBParams {
		v := get(p.Year)
		v[2] = format(p.Value)
		byYear[p.Year] = v
	}
	for y := 2017; y <= 2024; y++ {
		v := get(y)
		series.AddRow(y, v[0], v[1], v[2])
	}

	npuGrowth, npuR2 := expFit(npuTOPS)
	modelGrowth, modelR2 := expFit(modelBParams)
	var dxs, dys []float64
	for _, p := range dramGB {
		dxs = append(dxs, float64(p.Year-dramGB[0].Year))
		dys = append(dys, p.Value)
	}
	dramSlope, dramR2 := linFit(dxs, dys)
	fits := &Table{
		ID:      "fig2-fits",
		Title:   "Trend fits: exponential NPU/model growth vs linear DRAM growth",
		Columns: []string{"series", "fit", "annual_rate", "r2"},
	}
	fits.AddRow("npu_tops", "exponential", npuGrowth, npuR2)
	fits.AddRow("model_b_params", "exponential", modelGrowth, modelR2)
	fits.AddRow("dram_gb", "linear(GB/yr)", dramSlope, dramR2)
	fits.Notes = append(fits.Notes,
		"paper's claim: compute and model size grow exponentially while DRAM grows ~linearly (<1 GB/year)")
	return []*Table{series, fits}, nil
}

// format renders a trend value without trailing zeros.
func format(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	for len(s) > 1 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 1 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}
