package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/model"
)

// sharedLab is trained once per test process at miniature scale.
var sharedLab = NewLab(model.ScaleTest)

func cell(t *testing.T, tab *Table, rowMatch map[string]string, col string) string {
	t.Helper()
	colIdx := -1
	for i, c := range tab.Columns {
		if c == col {
			colIdx = i
		}
	}
	if colIdx < 0 {
		t.Fatalf("table %s has no column %q", tab.ID, col)
	}
	for _, row := range tab.Rows {
		ok := true
		for mc, mv := range rowMatch {
			mi := -1
			for i, c := range tab.Columns {
				if c == mc {
					mi = i
				}
			}
			if mi < 0 || row[mi] != mv {
				ok = false
				break
			}
		}
		if ok {
			return row[colIdx]
		}
	}
	t.Fatalf("table %s has no row matching %v", tab.ID, rowMatch)
	return ""
}

func cellF(t *testing.T, tab *Table, rowMatch map[string]string, col string) float64 {
	t.Helper()
	s := cell(t, tab, rowMatch, col)
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func findTable(t *testing.T, tables []*Table, id string) *Table {
	t.Helper()
	for _, tab := range tables {
		if tab.ID == id {
			return tab
		}
	}
	t.Fatalf("no table with id %q", id)
	return nil
}

func TestFig2TrendShapes(t *testing.T) {
	tables, err := Fig2(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	fits := findTable(t, tables, "fig2-fits")
	npu := cellF(t, fits, map[string]string{"series": "npu_tops"}, "annual_rate")
	mdl := cellF(t, fits, map[string]string{"series": "model_b_params"}, "annual_rate")
	dram := cellF(t, fits, map[string]string{"series": "dram_gb"}, "annual_rate")
	if npu < 1.2 || mdl < 1.5 {
		t.Fatalf("exponential growth rates too low: npu %v model %v", npu, mdl)
	}
	if dram > 1.5 {
		t.Fatalf("DRAM slope %v GB/yr implausibly steep", dram)
	}
}

func TestFig3ZeroContrast(t *testing.T) {
	tables, err := Fig3(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	z := findTable(t, tables, "fig3-zeros")
	swiglu := cellF(t, z, map[string]string{"model": model.Mistral7BSim}, "exact_zero_frac")
	relu := cellF(t, z, map[string]string{"model": model.ReluFiedSim}, "exact_zero_frac")
	if relu <= swiglu {
		t.Fatalf("ReLU zero fraction %v should exceed SwiGLU %v", relu, swiglu)
	}
	if relu < 0.2 {
		t.Fatalf("ReLU model should be naturally sparse, zero frac %v", relu)
	}
	if swiglu > 0.05 {
		t.Fatalf("SwiGLU model should have almost no exact zeros, got %v", swiglu)
	}
}

func TestFig4GlobalThresholdIsWorst(t *testing.T) {
	tables, err := Fig4(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	ppl := findTable(t, tables, "fig4-ppl")
	global := cellF(t, ppl, map[string]string{"strategy": "global"}, "ppl")
	perLayer := cellF(t, ppl, map[string]string{"strategy": "per-layer"}, "ppl")
	perToken := cellF(t, ppl, map[string]string{"strategy": "per-token"}, "ppl")
	dense := cellF(t, ppl, map[string]string{"strategy": "dense"}, "ppl")
	if global < perLayer || global < perToken {
		t.Fatalf("global (%v) should be worst: per-layer %v per-token %v", global, perLayer, perToken)
	}
	if perToken < dense-0.01 {
		t.Fatalf("per-token ppl %v below dense %v", perToken, dense)
	}
}

func TestFig6PredictorGap(t *testing.T) {
	tables, err := Fig6(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	tab := findTable(t, tables, "fig6")
	// At 50% GLU density, recall on the ReLU-fied analog must beat the
	// SwiGLU analog.
	rSwiglu := cellF(t, tab, map[string]string{"model": model.Mistral7BSim, "strategy": "glu-predictive", "glu_density": "0.500"}, "pred_recall")
	rRelu := cellF(t, tab, map[string]string{"model": model.ReluFiedSim, "strategy": "glu-predictive", "glu_density": "0.500"}, "pred_recall")
	if rRelu <= rSwiglu {
		t.Fatalf("predictor recall: relu %v should exceed swiglu %v", rRelu, rSwiglu)
	}
}

func TestTable1DIPBeatsBaselines(t *testing.T) {
	tables, err := Table1(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	tab := findTable(t, tables, "tab1")
	// Orderings that hold even at the miniature test scale (the full
	// DIP-vs-gate separation needs paper scale and aggressive sparsity;
	// see EXPERIMENTS.md and TestTable4 notes).
	name := model.Phi3MedSim
	dense := cellF(t, tab, map[string]string{"model": name, "method": "dense"}, "ppl")
	oracle := cellF(t, tab, map[string]string{"model": name, "method": "glu-oracle"}, "ppl")
	dip := cellF(t, tab, map[string]string{"model": name, "method": "dip"}, "ppl")
	dipLora := cellF(t, tab, map[string]string{"model": name, "method": "dip+lora"}, "ppl")
	up := cellF(t, tab, map[string]string{"model": name, "method": "up"}, "ppl")
	if oracle < dense-0.05 {
		t.Fatalf("oracle ppl %v below dense %v", oracle, dense)
	}
	if oracle > dense*1.1 {
		t.Fatalf("oracle ppl %v should be near dense %v", oracle, dense)
	}
	if dip >= up {
		t.Fatalf("DIP ppl %v should beat up pruning %v", dip, up)
	}
	if dipLora > dip+0.02 {
		t.Fatalf("DIP+LoRA ppl %v should not exceed DIP %v", dipLora, dip)
	}
	// DIP density must sit near the 50% target.
	d := cellF(t, tab, map[string]string{"model": name, "method": "dip"}, "measured_density")
	if d < 0.4 || d > 0.6 {
		t.Fatalf("DIP measured density %v far from 0.5", d)
	}
}

func TestTable2DIPCAWins(t *testing.T) {
	tables, err := Table2(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	tab := findTable(t, tables, "tab2")
	name := model.Phi3MedSim
	dense := cellF(t, tab, map[string]string{"model": name, "method": "dense"}, "tok_s_@+0.5ppl")
	dipca := cellF(t, tab, map[string]string{"model": name, "method": "dip-ca"}, "tok_s_@+0.5ppl")
	dip := cellF(t, tab, map[string]string{"model": name, "method": "dip"}, "tok_s_@+0.5ppl")
	if dipca <= dense {
		t.Fatalf("DIP-CA throughput %v should beat dense %v", dipca, dense)
	}
	// At miniature scale DIP-CA's perplexity cost can push its qualifying
	// density above plain DIP's, so only require it to stay competitive;
	// the strict DIP-CA > DIP separation is a paper-scale result (see
	// EXPERIMENTS.md tab2, where it holds with margin).
	if dipca < 0.7*dip {
		t.Fatalf("DIP-CA throughput %v collapsed relative to DIP %v", dipca, dip)
	}
	sizes := findTable(t, tables, "tab2-sizes")
	gb := cellF(t, sizes, map[string]string{"model": name}, "model_gb")
	if gb < 7 || gb > 8 {
		t.Fatalf("phi3med analog should map to ~7.4 GB, got %v", gb)
	}
}

func TestFig10GammaSweepShape(t *testing.T) {
	tables, err := Fig10(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	sweep := findTable(t, tables, "fig10")
	// Throughput at γ=0.2 must exceed γ=1 (plain DIP).
	t02 := cellF(t, sweep, map[string]string{"gamma": "0.200"}, "tok_s")
	t1 := cellF(t, sweep, map[string]string{"gamma": "1.000"}, "tok_s")
	if t02 <= t1 {
		t.Fatalf("γ=0.2 throughput %v should exceed γ=1 %v", t02, t1)
	}
	// Perplexity at extreme γ (cache dictates everything) must be worse
	// than plain DIP.
	pTiny := cellF(t, sweep, map[string]string{"gamma": "0.001"}, "ppl")
	p1 := cellF(t, sweep, map[string]string{"gamma": "1.000"}, "ppl")
	if pTiny < p1 {
		t.Fatalf("extreme γ ppl %v should be worse than plain DIP %v", pTiny, p1)
	}
}

func TestFig11PolicyOrdering(t *testing.T) {
	tables, err := Fig11(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	tab := findTable(t, tables, "fig11")
	// At the mid density, no-cache ≤ LRU/LFU ≤ Belady in throughput.
	d := "0.600"
	none := cellF(t, tab, map[string]string{"config": "dip-nocache", "density": d}, "tok_s")
	lfu := cellF(t, tab, map[string]string{"config": "dip-lfu", "density": d}, "tok_s")
	bel := cellF(t, tab, map[string]string{"config": "dip-belady", "density": d}, "tok_s")
	if none > lfu {
		t.Fatalf("no-cache %v should not beat LFU %v", none, lfu)
	}
	if lfu > bel*1.0001 {
		t.Fatalf("LFU %v should not beat Belady %v", lfu, bel)
	}
	// Belady hit rate bounds LFU's at equal density.
	hLFU := cellF(t, tab, map[string]string{"config": "dip-lfu", "density": d}, "hit_rate")
	hBel := cellF(t, tab, map[string]string{"config": "dip-belady", "density": d}, "hit_rate")
	if hLFU > hBel+1e-9 {
		t.Fatalf("LFU hit rate %v above Belady %v", hLFU, hBel)
	}
}

func TestFig12FitSane(t *testing.T) {
	tables, err := Fig12(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	fit := findTable(t, tables, "fig12")
	for _, row := range fit.Rows {
		for _, col := range []int{1, 2, 3, 4} {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil || v <= 0 || v > 1 {
				t.Fatalf("allocation out of range in row %v", row)
			}
		}
	}
	front := findTable(t, tables, "fig12-front")
	if len(front.Rows) < 2 {
		t.Fatalf("pareto front too small: %d rows", len(front.Rows))
	}
}

func TestFig9Composes(t *testing.T) {
	tables, err := Fig9(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	tab := findTable(t, tables, "fig9")
	// BQ4 memory < dense-fp16 memory; BQ4+DIP memory < BQ4 memory.
	dense := cellF(t, tab, map[string]string{"config": "dense-fp16"}, "memory_mb")
	bq4 := cellF(t, tab, map[string]string{"config": "bq4"}, "memory_mb")
	bq4dip := cellF(t, tab, map[string]string{"config": "bq4+dip@0.50"}, "memory_mb")
	if !(bq4 < dense && bq4dip < bq4) {
		t.Fatalf("memory ordering wrong: dense %v bq4 %v bq4+dip %v", dense, bq4, bq4dip)
	}
	// BQ2 quality worse than BQ4.
	p2 := cellF(t, tab, map[string]string{"config": "bq2"}, "ppl")
	p4 := cellF(t, tab, map[string]string{"config": "bq4"}, "ppl")
	if p4 > p2 {
		t.Fatalf("bq4 ppl %v should beat bq2 %v", p4, p2)
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	if len(IDs()) != 21 {
		t.Fatalf("expected 21 experiments, got %d: %v", len(IDs()), IDs())
	}
	if _, err := Run(sharedLab, "nope"); err == nil {
		t.Fatal("unknown id should error")
	}
	// serve runs at its CI smoke size here; its wall-clock columns vary per
	// run, so only the structural checks below apply.
	sharedLab.ServeSmoke = true
	defer func() { sharedLab.ServeSmoke = false }()
	// Smoke-run the cheap drivers not covered above through the registry.
	for _, id := range []string{"tab5", "tab6", "tab7", "fig8", "fig14", "tab3", "tab4", "abl-alloc", "serve", "chaos"} {
		tables, err := Run(sharedLab, id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", id)
		}
		for _, tab := range tables {
			if len(tab.Rows) == 0 {
				t.Fatalf("%s table %s empty", id, tab.ID)
			}
			var buf bytes.Buffer
			tab.Render(&buf)
			if !strings.Contains(buf.String(), tab.ID) {
				t.Fatalf("render missing id for %s", tab.ID)
			}
		}
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Columns: []string{"a", "bb"}}
	tab.AddRow("verylongcell", 1.23456)
	tab.Notes = append(tab.Notes, "a note")
	var buf bytes.Buffer
	tab.Render(&buf)
	s := buf.String()
	if !strings.Contains(s, "verylongcell") || !strings.Contains(s, "1.235") || !strings.Contains(s, "note: a note") {
		t.Fatalf("render wrong:\n%s", s)
	}
}

func TestRenderCSV(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Columns: []string{"a", "b"}}
	tab.AddRow("v", 1.5)
	tab.AddRow("w,comma", 2.0)
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "# x: t\n") {
		t.Fatalf("missing comment header: %q", s)
	}
	if !strings.Contains(s, "a,b\n") || !strings.Contains(s, "v,1.500") {
		t.Fatalf("csv body wrong: %q", s)
	}
	if !strings.Contains(s, "\"w,comma\"") {
		t.Fatalf("comma cell not quoted: %q", s)
	}
}
