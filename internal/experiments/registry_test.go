package experiments

import (
	"bytes"
	"go/ast"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// srcPkg parses the package source exactly once, through the shared lint
// loader — the same parse code path the repolint analyzers and dipbench's
// keep-in-sync tests use.
var srcPkg = sync.OnceValues(func() (*lint.Package, error) { return lint.ParseDir(".") })

// driverFuncNames returns every exported top-level function with the
// Driver signature func(*Lab) ([]*Table, error), sorted.
func driverFuncNames(t *testing.T) []string {
	t.Helper()
	pkg, err := srcPkg()
	if err != nil {
		t.Fatal(err)
	}
	return lint.ExportedFuncs(pkg, isDriverSignature)
}

// isDriverSignature matches func(*Lab) ([]*Table, error) structurally.
func isDriverSignature(ft *ast.FuncType) bool {
	if ft.Params == nil || len(ft.Params.List) != 1 ||
		ft.Results == nil || len(ft.Results.List) != 2 {
		return false
	}
	in, ok := ft.Params.List[0].Type.(*ast.StarExpr)
	if !ok || !isIdent(in.X, "Lab") {
		return false
	}
	out, ok := ft.Results.List[0].Type.(*ast.ArrayType)
	if !ok {
		return false
	}
	elem, ok := out.Elt.(*ast.StarExpr)
	if !ok || !isIdent(elem.X, "Table") {
		return false
	}
	return isIdent(ft.Results.List[1].Type, "error")
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

// Every exported function with the Driver signature must be registered —
// an unregistered driver is dead code invisible to dipbench -list and the
// CI sweeps.
func TestEveryExportedDriverIsRegistered(t *testing.T) {
	registered := make(map[string]string) // func name -> id
	for id, d := range registry {
		full := runtime.FuncForPC(reflect.ValueOf(d).Pointer()).Name()
		name := full[strings.LastIndex(full, ".")+1:]
		if prev, dup := registered[name]; dup {
			t.Fatalf("driver %s registered under both %q and %q", name, prev, id)
		}
		registered[name] = id
	}
	exported := driverFuncNames(t)
	if len(exported) == 0 {
		t.Fatal("found no exported drivers in the package source")
	}
	for _, name := range exported {
		if _, ok := registered[name]; !ok {
			t.Errorf("exported driver %s is not in the registry", name)
		}
	}
	if len(registered) != len(exported) {
		t.Errorf("registry has %d drivers, source exports %d: %v vs %v",
			len(registered), len(exported), registered, exported)
	}
}

// Run on an unknown id must name every known id, sorted, so a typo'd
// invocation is self-correcting.
func TestRunUnknownIDListsSortedKnownIDs(t *testing.T) {
	ids := IDs()
	if !sort.StringsAreSorted(ids) {
		t.Fatalf("IDs() not sorted: %v", ids)
	}
	_, err := Run(sharedLab, "definitely-not-an-experiment")
	if err == nil {
		t.Fatal("unknown id must error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"definitely-not-an-experiment"`) {
		t.Fatalf("error does not quote the unknown id: %v", err)
	}
	pos := -1
	for _, id := range ids {
		next := strings.Index(msg, id)
		if next < 0 {
			t.Fatalf("error omits known id %q: %v", id, err)
		}
		if next < pos {
			t.Fatalf("known ids not listed in sorted order: %v", err)
		}
		pos = next
	}
}

// Golden-file test: RenderCSV's exact byte output is a published artifact
// (plotting scripts parse it), so drift must be deliberate. Regenerate with
//
//	UPDATE_CSV_GOLDEN=1 go test ./internal/experiments -run TestRenderCSVGolden
func TestRenderCSVGolden(t *testing.T) {
	tab := &Table{
		ID:    "serve",
		Title: "Workload grid, miniature",
		Columns: []string{"workload", "sched", "policy", "sessions",
			"sim_tok_s", "slo_attain"},
	}
	tab.AddRow("fixed", "fcfs", "shared", 6, 12.345678, 1.0)
	tab.AddRow("poisson", "edf", "fair", 6, 9.87, 0.5)
	tab.AddRow("trace, replay", "prio", "greedy", 3, float32(2.5), 0.0)
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "render_csv.golden")
	if os.Getenv("UPDATE_CSV_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("RenderCSV drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, buf.Bytes(), want)
	}
}
