package experiments

import (
	"strconv"
	"testing"

	"repro/internal/model"
)

// Focused shape tests for the drivers that TestRegistryRunsEverything only
// smoke-runs.

func TestTable4AggressiveSparsityOrdering(t *testing.T) {
	tables, err := Table4(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	tab := findTable(t, tables, "tab4")
	name := model.Phi3MedSim
	dense := cellF(t, tab, map[string]string{"model": name, "method": "dense"}, "ppl")
	oracle := cellF(t, tab, map[string]string{"model": name, "method": "glu-oracle"}, "ppl")
	dip := cellF(t, tab, map[string]string{"model": name, "method": "dip"}, "ppl")
	up := cellF(t, tab, map[string]string{"model": name, "method": "up"}, "ppl")
	// At 40% density the oracle stays near dense while real methods pay.
	if oracle > dense*1.15 {
		t.Fatalf("oracle ppl %v far from dense %v at 40%%", oracle, dense)
	}
	if dip <= dense {
		t.Fatalf("DIP at 40%% (%v) should cost perplexity over dense (%v)", dip, dense)
	}
	// Up pruning (scoring by partial activations) trails DIP at aggressive
	// sparsity — the Table 4 shape that survives miniature scale.
	if dip >= up {
		t.Fatalf("DIP %v should beat up pruning %v at 40%%", dip, up)
	}
}

func TestTable5TaskSpread(t *testing.T) {
	tables, err := Table5(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	tab := findTable(t, tables, "tab5")
	// Every accuracy is a valid percentage and the dense model beats 4-way
	// chance on the character-statistics task.
	for _, row := range tab.Rows {
		acc, err := strconv.ParseFloat(row[3], 64)
		if err != nil || acc < 0 || acc > 100 {
			t.Fatalf("bad accuracy row %v", row)
		}
	}
	spelling := cellF(t, tab, map[string]string{
		"model": model.Phi3MedSim, "method": "dense", "task": "spelling"}, "acc_%")
	if spelling < 40 {
		t.Fatalf("dense spelling accuracy %v near chance", spelling)
	}
}

func TestTables6And7Monotonicity(t *testing.T) {
	t6, err := Table6(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	tab6 := findTable(t, t6, "tab6")
	// Dense throughput strictly increases with DRAM size.
	small := cellF(t, tab6, map[string]string{"device": "dram-2gb", "method": "dense"}, "tok_s_@+0.5ppl")
	big := cellF(t, tab6, map[string]string{"device": "dram-6gb", "method": "dense"}, "tok_s_@+0.5ppl")
	if big <= small {
		t.Fatalf("dense throughput should grow with DRAM: %v -> %v", small, big)
	}
	t7, err := Table7(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	tab7 := findTable(t, t7, "tab7")
	slow := cellF(t, tab7, map[string]string{"device": "flash-0.5GBs", "method": "dense"}, "tok_s_@+0.5ppl")
	fast := cellF(t, tab7, map[string]string{"device": "flash-2GBs", "method": "dense"}, "tok_s_@+0.5ppl")
	if fast <= slow {
		t.Fatalf("dense throughput should grow with flash speed: %v -> %v", slow, fast)
	}
	// Flash is the bottleneck: 4× bandwidth buys ≥2× throughput for dense.
	if fast < 2*slow {
		t.Fatalf("flash scaling too weak: %v vs %v", fast, slow)
	}
}

func TestAblAllocNegativeFinding(t *testing.T) {
	tables, err := AblAlloc(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	tab := findTable(t, tables, "abl-alloc")
	uni := cellF(t, tab, map[string]string{"allocation": "uniform", "density": "0.500"}, "tok_s")
	wtd := cellF(t, tab, map[string]string{"allocation": "trace-weighted", "density": "0.500"}, "tok_s")
	// The paper's negative finding: no *significant* improvement. Allow
	// ±15% either way but flag a large swing in either direction.
	ratio := wtd / uni
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("non-uniform allocation changed throughput by %.0f%%; expected a null result", 100*(ratio-1))
	}
	// Quality must be identical — allocation never touches the masks'
	// inputs for plain DIP.
	puni := cellF(t, tab, map[string]string{"allocation": "uniform", "density": "0.500"}, "ppl")
	pwtd := cellF(t, tab, map[string]string{"allocation": "trace-weighted", "density": "0.500"}, "ppl")
	if puni != pwtd {
		t.Fatalf("allocation changed plain-DIP perplexity: %v vs %v", puni, pwtd)
	}
}

func TestFig14CoversOtherAnalogs(t *testing.T) {
	tables, err := Fig14(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatal("no tables")
	}
	for _, tab := range tables {
		if len(tab.Rows) < 3 {
			t.Fatalf("table %s too small", tab.ID)
		}
	}
}
