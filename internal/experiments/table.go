package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/tensor"
)

// Table is one renderable experiment artifact: a titled grid with notes.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row; values are stringified with %v except
// float64, which renders with 3 decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes an aligned plain-text rendering.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", width, c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Driver runs one experiment against a lab.
type Driver func(l *Lab) ([]*Table, error)

// rng is a tiny helper for seeded generators in drivers.
func rng(seed uint64) *tensor.RNG { return tensor.NewRNG(seed) }
