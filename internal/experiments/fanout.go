package experiments

import "repro/internal/parallel"

// forEach fans fn out over [0, n) on the worker pool and returns the first
// error by index. Drivers use it to evaluate independent grid points
// (densities, gammas, devices, methods) concurrently while assembling table
// rows in deterministic index order afterwards — parallel runs emit
// bit-identical tables to serial ones.
func forEach(n int, fn func(i int) error) error {
	errs := make([]error, n)
	parallel.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			errs[i] = fn(i)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
