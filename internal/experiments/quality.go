package experiments

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/prune"
	"repro/internal/sparsity"
)

// methodEval is one (scheme or surgically-modified model) evaluated for
// quality: the model to run and the scheme to mask it with (nil scheme =
// dense evaluation, used for statically pruned models).
type methodEval struct {
	label  string
	m      *model.Model
	scheme sparsity.Scheme
}

// qualityMethods builds the Table-1 method grid for one analog at an MLP
// density target. includeSemi adds the 2:4/4:8 SparseGPT variants (Table 1
// only).
func qualityMethods(l *Lab, name string, density float64, includeSemi bool) []methodEval {
	m := l.Model(name)
	// Intermediate-axis keep rate for Gate/Up/CATS at this MLP density:
	// density = (1 + 2ρ)/3 → ρ = (3·density − 1)/2.
	rowRho := (3*density - 1) / 2
	if rowRho < 0.02 {
		rowRho = 0.02
	}
	preds := l.Predictors(name)
	dip := sparsity.NewDIP(density)
	cats := l.CATS(name, rowRho)
	evals := []methodEval{
		{"dense", m, nil},
		{"glu-oracle", m, &sparsity.GLUOracle{Rho: density}},
		{"sparsegpt-unstructured", l.SparseGPT(name, prune.Unstructured, 1-density), nil},
	}
	if includeSemi {
		evals = append(evals,
			methodEval{"sparsegpt-2:4", l.SparseGPT(name, prune.Semi2of4, 0.5), nil},
			methodEval{"sparsegpt-4:8", l.SparseGPT(name, prune.Semi4of8, 0.5), nil},
		)
	}
	evals = append(evals,
		methodEval{"gate", m, &sparsity.GatePrune{Rho: rowRho}},
		methodEval{"up", m, &sparsity.UpPrune{Rho: rowRho}},
		methodEval{"dejavu", m, &sparsity.Predictive{Rho: density, Score: preds.ScoreFunc(), ParamsPerLayer: preds.ParamCount() / len(m.Blocks)}},
		methodEval{"cats", m, cats},
		methodEval{"cats+lora", l.Fused(name, cats, fmt.Sprintf("%.2f", rowRho), false), cats},
		methodEval{"dip", m, dip},
		methodEval{"dip+lora", l.Fused(name, dip, fmt.Sprintf("%.2f", density), true), dip},
	)
	return evals
}

// qualityTable runs the Table 1/3/4 grid at one density.
func qualityTable(l *Lab, id string, density float64, includeSemi bool) ([]*Table, error) {
	out := &Table{
		ID:      id,
		Title:   fmt.Sprintf("Dynamic sparsity methods at %.0f%% MLP density: perplexity and mixed-task accuracy", 100*density),
		Columns: []string{"method", "model", "ppl", "mc_acc_%", "measured_density"},
	}
	names := model.AnalogNames()
	if l.Scale == model.ScaleTest {
		names = names[:2] // keep tests fast; the paper grid runs all four
		out.Notes = append(out.Notes, "test scale: first two analogs only")
	}
	items := l.MixedMCItems(7)
	test := l.TestTokens(0)
	l.Warm(names...)
	// Build each analog's method list (training predictors / pruned / fused
	// artifacts on first use) with analogs in parallel, then evaluate the
	// whole (name × method) grid concurrently. Shared schemes (CATS between
	// "cats" and "cats+lora", DIP between "dip" and "dip+lora") are cloned
	// per cell so scratch state is never shared.
	methods := make([][]methodEval, len(names))
	if err := forEach(len(names), func(ni int) error {
		methods[ni] = qualityMethods(l, names[ni], density, includeSemi)
		return nil
	}); err != nil {
		return nil, err
	}
	type cellRes struct{ ppl, acc, d float64 }
	results := make([][]cellRes, len(names))
	if err := forEach(len(names), func(ni int) error {
		results[ni] = make([]cellRes, len(methods[ni]))
		return forEach(len(methods[ni]), func(mi int) error {
			me := methods[ni][mi]
			scheme := sparsity.Clone(me.scheme)
			var r cellRes
			if scheme == nil {
				r.ppl = model.Perplexity(me.m, test, l.EvalWin(), nil)
				r.d = 1
				if me.label != "dense" {
					r.d = 1 - prune.MLPSparsity(me.m) // statically pruned
				}
			} else {
				r.ppl, r.d = eval.PerplexityUnderScheme(me.m, scheme, test, l.EvalWin())
			}
			r.acc = eval.MCAccuracy(me.m, scheme, l.Tokenizer(), items)
			results[ni][mi] = r
			return nil
		})
	}); err != nil {
		return nil, err
	}
	for ni, name := range names {
		for mi, me := range methods[ni] {
			r := results[ni][mi]
			out.AddRow(me.label, name, r.ppl, r.acc, r.d)
		}
	}
	out.Notes = append(out.Notes,
		"density ignores predictor/mask overheads, as in the paper's Table 1 footnote")
	return []*Table{out}, nil
}

// Table1 is the 50%-density method grid (paper Table 1).
func Table1(l *Lab) ([]*Table, error) { return qualityTable(l, "tab1", 0.5, true) }

// Table3 is the 60%-density grid (paper Table 3).
func Table3(l *Lab) ([]*Table, error) { return qualityTable(l, "tab3", 0.6, false) }

// Table4 is the 40%-density grid (paper Table 4).
func Table4(l *Lab) ([]*Table, error) { return qualityTable(l, "tab4", 0.4, false) }

// Table5 evaluates the per-task battery at 50% MLP density (paper Table 5:
// ARC/BoolQ/... replaced by the synthetic task families).
func Table5(l *Lab) ([]*Table, error) {
	out := &Table{
		ID:      "tab5",
		Title:   "Accuracy at 50% MLP density across task families",
		Columns: []string{"model", "method", "task", "acc_%"},
	}
	const density = 0.5
	names := model.AnalogNames()
	if l.Scale == model.ScaleTest {
		names = names[:1]
	}
	for _, name := range names {
		m := l.Model(name)
		preds := l.Predictors(name)
		methods := []methodEval{
			{"dense", m, nil},
			{"glu-oracle", m, &sparsity.GLUOracle{Rho: density}},
			{"sparsegpt-unstructured", l.SparseGPT(name, prune.Unstructured, 0.5), nil},
			{"dejavu", m, &sparsity.Predictive{Rho: density, Score: preds.ScoreFunc()}},
			{"cats", m, l.CATS(name, 0.25)},
			{"dip", m, sparsity.NewDIP(density)},
		}
		kinds := data.TaskKinds()
		itemsByKind := make([][]data.MCItem, len(kinds))
		for ki, kind := range kinds {
			itemsByKind[ki] = l.MCItems(kind, 300+uint64(kind))
		}
		accs := make([]float64, len(kinds)*len(methods))
		if err := forEach(len(accs), func(i int) error {
			me := methods[i%len(methods)]
			accs[i] = eval.MCAccuracy(me.m, sparsity.Clone(me.scheme), l.Tokenizer(), itemsByKind[i/len(methods)])
			return nil
		}); err != nil {
			return nil, err
		}
		for i, acc := range accs {
			out.AddRow(name, methods[i%len(methods)].label, kinds[i/len(methods)].String(), acc)
		}
	}
	return []*Table{out}, nil
}

// Fig8 sweeps MLP density and reports the perplexity and accuracy Pareto
// curves for the Phi-3-Medium analog (paper Figure 8; Figure 14 runs the
// same sweep on the other analogs via the model parameter of dipbench).
func Fig8(l *Lab) ([]*Table, error) {
	return densitySweep(l, "fig8", model.Phi3MedSim)
}

func densitySweep(l *Lab, id, name string) ([]*Table, error) {
	out := &Table{
		ID:      id,
		Title:   fmt.Sprintf("Quality vs MLP density sweep on %s", name),
		Columns: []string{"method", "density", "ppl", "mc_acc_%"},
	}
	m := l.Model(name)
	preds := l.Predictors(name)
	densities := []float64{0.3, 0.4, 0.5, 0.6, 0.8}
	if l.Scale == model.ScaleTest {
		densities = []float64{0.4, 0.6}
	}
	items := l.MixedMCItems(11)
	test := l.TestTokens(0)
	densePPL := model.Perplexity(m, test, l.EvalWin(), nil)
	denseAcc := eval.MCAccuracy(m, nil, l.Tokenizer(), items)
	out.AddRow("dense", 1.0, densePPL, denseAcc)
	// Flatten the (density × method) sweep and fan it out; emit rows from
	// the indexed results in the original order.
	type sweepCell struct {
		label   string
		density float64
		me      methodEval
	}
	var cells []sweepCell
	for _, density := range densities {
		rowRho := (3*density - 1) / 2
		if rowRho < 0.02 {
			rowRho = 0.02
		}
		methods := []methodEval{
			{"sparsegpt-unstructured", l.SparseGPT(name, prune.Unstructured, 1-density), nil},
			{"dejavu", m, &sparsity.Predictive{Rho: density, Score: preds.ScoreFunc()}},
			{"cats", m, l.CATS(name, rowRho)},
			{"dip", m, sparsity.NewDIP(density)},
		}
		if l.Scale == model.ScalePaper {
			methods = append(methods,
				methodEval{"sparsegpt-2:4", l.SparseGPT(name, prune.Semi2of4, 0.5), nil},
				methodEval{"sparsegpt-4:8", l.SparseGPT(name, prune.Semi4of8, 0.5), nil},
			)
		}
		for _, me := range methods {
			// Semi-structured points are fixed at 50% sparsity; skip
			// repeats at other densities.
			if (me.label == "sparsegpt-2:4" || me.label == "sparsegpt-4:8") && density != 0.5 {
				continue
			}
			cells = append(cells, sweepCell{me.label, density, me})
		}
	}
	type sweepRes struct{ ppl, acc float64 }
	results := make([]sweepRes, len(cells))
	if err := forEach(len(cells), func(i int) error {
		me := cells[i].me
		scheme := sparsity.Clone(me.scheme)
		var r sweepRes
		if scheme == nil {
			r.ppl = model.Perplexity(me.m, test, l.EvalWin(), nil)
		} else {
			r.ppl, _ = eval.PerplexityUnderScheme(me.m, scheme, test, l.EvalWin())
		}
		r.acc = eval.MCAccuracy(me.m, scheme, l.Tokenizer(), items)
		results[i] = r
		return nil
	}); err != nil {
		return nil, err
	}
	for i, c := range cells {
		out.AddRow(c.label, c.density, results[i].ppl, results[i].acc)
	}
	out.Notes = append(out.Notes,
		"paper Figure 8: DIP dominates static and predictive baselines at every density")
	return []*Table{out}, nil
}

// Fig14 runs the Figure 8 sweep on the remaining analogs (paper Fig. 14).
func Fig14(l *Lab) ([]*Table, error) {
	names := []string{model.Phi3MiniSim, model.Llama8BSim, model.Mistral7BSim}
	if l.Scale == model.ScaleTest {
		names = names[:1]
	}
	var tables []*Table
	for _, n := range names {
		ts, err := densitySweep(l, "fig14-"+n, n)
		if err != nil {
			return nil, err
		}
		tables = append(tables, ts...)
	}
	return tables, nil
}
