package experiments

import (
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/sparsity"
)

// Fig12 reproduces the Appendix-B.1 density-allocation calibration: a grid
// of (ρ_in, ρ_glu) trials, the Pareto front in the (density, perplexity)
// plane, the linear fit in logit space, and the fitted allocator's
// predictions versus the built-in AllocateDIP rule.
func Fig12(l *Lab) ([]*Table, error) {
	name := model.Mistral7BSim
	m := l.Model(name)
	test := l.TestTokens(0)
	if len(test) > 1536 && l.Scale == model.ScaleTest {
		test = test[:1536]
	}
	grid := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	if l.Scale == model.ScaleTest {
		grid = []float64{0.3, 0.6, 1.0}
	}
	trials := &Table{
		ID:      "fig12-trials",
		Title:   "Allocation trials: (rho_in, rho_glu) grid",
		Columns: []string{"rho_in", "rho_glu", "mlp_density", "ppl"},
	}
	// The (rho_in × rho_glu) grid points are independent evaluations; fan
	// them out and assemble rows in grid order afterwards.
	all := make([]sparsity.AllocTrial, len(grid)*len(grid))
	if err := forEach(len(all), func(i int) error {
		rin, rglu := grid[i/len(grid)], grid[i%len(grid)]
		s := &sparsity.DIP{RhoIn: rin, RhoGLU: rglu, Gamma: 1}
		ppl, density := eval.PerplexityUnderScheme(m, s, test, l.EvalWin())
		all[i] = sparsity.AllocTrial{RhoIn: rin, RhoGLU: rglu, Density: density, PPL: ppl}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, tr := range all {
		trials.AddRow(tr.RhoIn, tr.RhoGLU, tr.Density, tr.PPL)
	}
	front := sparsity.ParetoFront(all)
	frontT := &Table{
		ID:      "fig12-front",
		Title:   "Pareto-optimal allocations",
		Columns: []string{"rho_in", "rho_glu", "mlp_density", "ppl"},
	}
	for _, tr := range front {
		frontT.AddRow(tr.RhoIn, tr.RhoGLU, tr.Density, tr.PPL)
	}
	a, b := sparsity.FitLogitLinear(front)
	fit := &Table{
		ID:      "fig12",
		Title:   "Logit-linear Pareto fit and allocator comparison",
		Columns: []string{"target_density", "fitted_rho_in", "fitted_rho_glu", "default_rho_in", "default_rho_glu"},
	}
	alloc := sparsity.FittedAllocator{A: a, B: b}
	for _, d := range []float64{0.3, 0.4, 0.5, 0.6, 0.7} {
		fr, fg := alloc.Allocate(d)
		dr, dg := sparsity.AllocateDIP(d)
		fit.AddRow(d, fr, fg, dr, dg)
	}
	fit.Notes = append(fit.Notes,
		"fit: logit(rho_in) = a + b*logit(density)",
		"on the narrow analogs the Pareto front allocates the input side (W_u/W_g) more density than W_d,",
		"the opposite of the paper's 4k-wide models — residual-stream redundancy scales with width (see EXPERIMENTS.md)")
	return []*Table{trials, frontT, fit}, nil
}
