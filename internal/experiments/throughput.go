package experiments

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/eval"
	"repro/internal/hwsim"
	"repro/internal/model"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// throughputFamily is one method whose density can be swept for operating
// points. makeScheme returns the scheme at a target MLP density.
type throughputFamily struct {
	label      string
	makeScheme func(density float64) sparsity.Scheme
	// minDensity is the lowest admissible target (GLU pruning can't go
	// below 2/3, Gate/Up below 1/3).
	minDensity float64
}

func throughputFamilies(l *Lab, name string) []throughputFamily {
	return []throughputFamily{
		{"glu", func(d float64) sparsity.Scheme {
			return &sparsity.GLUPrune{RhoGLU: 3*d - 2}
		}, 0.70},
		{"up", func(d float64) sparsity.Scheme {
			return &sparsity.UpPrune{Rho: (3*d - 1) / 2}
		}, 0.36},
		{"cats", func(d float64) sparsity.Scheme {
			return l.CATS(name, (3*d-1)/2)
		}, 0.36},
		{"dip", func(d float64) sparsity.Scheme {
			return sparsity.NewDIP(d)
		}, 0.25},
		{"dip-ca", func(d float64) sparsity.Scheme {
			return sparsity.NewDIPCA(d, 0.2)
		}, 0.25},
	}
}

func sweepDensities(l *Lab, minD float64) []float64 {
	all := []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	if l.Scale == model.ScaleTest {
		all = []float64{0.4, 0.6, 0.8}
	}
	var out []float64
	for _, d := range all {
		if d >= minD {
			out = append(out, d)
		}
	}
	return out
}

// evalTokens bounds the coupled-evaluation stream per scale.
func (l *Lab) evalTokens() int {
	if l.Scale == model.ScalePaper {
		return 4096
	}
	return 768
}

// operatingPoints sweeps one family's densities under a device/policy.
// Each density is an independent coupled evaluation (own cache, own meter,
// own scheme clone), so the sweep fans out over the worker pool.
func operatingPoints(l *Lab, name string, fam throughputFamily, dev hwsim.Device, policy cache.Policy) ([]eval.Point, error) {
	m := l.Model(name)
	test := l.TestTokens(0)
	densities := sweepDensities(l, fam.minDensity)
	pts := make([]eval.Point, len(densities))
	err := forEach(len(densities), func(i int) error {
		d := densities[i]
		// Clone: makeScheme may hand back a lab-memoized scheme (CATS)
		// whose scratch must not be shared across concurrent evaluations.
		s := sparsity.Clone(fam.makeScheme(d))
		pt, err := eval.SystemEvaluate(m, s, test, eval.SystemConfig{
			Device: dev, Policy: policy, MaxTokens: l.evalTokens(), Win: l.EvalWin(),
		})
		if err != nil {
			return fmt.Errorf("%s @%.2f: %w", fam.label, d, err)
		}
		pts[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pts, nil
}

// densePoint evaluates the dense baseline under the device.
func densePoint(l *Lab, name string, dev hwsim.Device) (eval.Point, error) {
	m := l.Model(name)
	return eval.SystemEvaluate(m, sparsity.Dense{}, l.TestTokens(0), eval.SystemConfig{
		Device: dev, Policy: cache.PolicyLFU, MaxTokens: l.evalTokens(), Win: l.EvalWin(),
	})
}

// Table2 reproduces the throughput comparison: best tok/s under +0.2 and
// +0.5 perplexity budgets with DRAM fitting ~50% of each 4-bit model.
func Table2(l *Lab) ([]*Table, error) {
	sizes := &Table{
		ID:      "tab2-sizes",
		Title:   "Model and DRAM sizes (paper-scale bytes)",
		Columns: []string{"model", "model_gb", "dram_gb"},
	}
	out := &Table{
		ID:      "tab2",
		Title:   "Throughput at +0.2 / +0.5 perplexity budgets (LFU cache, INT4, DRAM ≈ 50% model)",
		Columns: []string{"model", "method", "tok_s_@+0.2ppl", "tok_s_@+0.5ppl", "density_@+0.5", "hit_rate_@+0.5"},
	}
	dev := hwsim.A18Like()
	names := model.AnalogNames()
	if l.Scale == model.ScaleTest {
		names = names[:2]
		out.Notes = append(out.Notes, "test scale: first two analogs only")
	}
	// Warm the analogs concurrently, then fan out the whole (name × method)
	// grid — each cell is an independent coupled evaluation. Rows are
	// assembled from the indexed results afterwards, preserving the serial
	// table order exactly.
	l.Warm(names...)
	type nameRes struct {
		modelBytes float64
		dense      eval.Point
		fams       []throughputFamily
		pts        [][]eval.Point
	}
	results := make([]nameRes, len(names))
	err := forEach(len(names), func(ni int) error {
		name := names[ni]
		m := l.Model(name)
		plan, err := hwsim.NewPlan(m, dev, hwsim.PlanOpts{Groups: hwsim.ProbeGroups(sparsity.NewDIP(0.5), m)})
		if err != nil {
			return err
		}
		r := &results[ni]
		r.modelBytes = plan.ModelBytes
		r.fams = throughputFamilies(l, name)
		r.pts = make([][]eval.Point, len(r.fams))
		return forEach(1+len(r.fams), func(i int) error {
			if i == 0 {
				dense, err := densePoint(l, name, dev)
				if err != nil {
					return err
				}
				r.dense = dense
				return nil
			}
			pts, err := operatingPoints(l, name, r.fams[i-1], dev, cache.PolicyLFU)
			if err != nil {
				return err
			}
			r.pts[i-1] = pts
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	for ni, name := range names {
		r := &results[ni]
		sizes.AddRow(name, r.modelBytes/1e9, dev.DRAMFraction*r.modelBytes/1e9)
		dense := r.dense
		out.AddRow(name, "dense", dense.Throughput, dense.Throughput, 1.0, dense.HitRate)
		for fi, fam := range r.fams {
			pts := r.pts[fi]
			row := []any{name, fam.label}
			best02, ok02 := eval.BestThroughput(pts, dense.PPL+0.2*pplScale(dense.PPL))
			best05, ok05 := eval.BestThroughput(pts, dense.PPL+0.5*pplScale(dense.PPL))
			if ok02 {
				row = append(row, best02.Throughput)
			} else {
				row = append(row, "-")
			}
			if ok05 {
				row = append(row, best05.Throughput, best05.Density, best05.HitRate)
			} else {
				row = append(row, "-", "-", "-")
			}
			out.AddRow(row...)
		}
	}
	out.Notes = append(out.Notes,
		"perplexity budgets scale with the dense perplexity (the paper's absolute +0.2/+0.5 assume ppl ≈ 4-6)")
	return []*Table{sizes, out}, nil
}

// pplScale normalizes the paper's absolute perplexity budgets (defined for
// models with dense ppl ≈ 4-6) to the analog's dense perplexity.
func pplScale(densePPL float64) float64 {
	return math.Max(1, densePPL/5)
}

// Fig10 reports (left) the per-layer normalized |GLU| quantiles that
// motivate cache-aware re-weighting and (right) the γ sweep of throughput
// and perplexity.
func Fig10(l *Lab) ([]*Table, error) {
	name := model.Phi3MedSim
	m := l.Model(name)
	st := sparsity.CollectStats(m, l.CalibTokens(), l.EvalWin(), 192)
	dist := &Table{
		ID:      "fig10-dist",
		Title:   "Normalized |GLU| quantiles per layer (heavy head, flat middle)",
		Columns: []string{"layer", "p30", "p50", "p80", "p99", "max"},
	}
	for layer, vals := range st.AbsGLU {
		maxV := float32(0)
		for _, v := range vals {
			if v > maxV {
				maxV = v
			}
		}
		if maxV == 0 {
			maxV = 1
		}
		q := func(p float64) float64 { return float64(quantile32(vals, p) / maxV) }
		dist.AddRow(layer, q(0.30), q(0.50), q(0.80), q(0.99), 1.0)
	}
	dist.Notes = append(dist.Notes,
		"activations between the 30th and 80th percentile sit within one order of magnitude — re-ranking them is cheap (Section 6.4)")

	sweep := &Table{
		ID:      "fig10",
		Title:   "Effect of the DIP-CA γ penalty at 50% density (LFU cache)",
		Columns: []string{"gamma", "ppl", "tok_s", "hit_rate"},
	}
	gammas := []float64{1e-5, 1e-3, 0.05, 0.1, 0.2, 0.3, 0.5, 1.0}
	if l.Scale == model.ScaleTest {
		gammas = []float64{1e-3, 0.2, 1.0}
	}
	test := l.TestTokens(0)
	gpts := make([]eval.Point, len(gammas))
	err := forEach(len(gammas), func(i int) error {
		pt, err := eval.SystemEvaluate(m, sparsity.NewDIPCA(0.5, gammas[i]), test, eval.SystemConfig{
			Device: hwsim.A18Like(), Policy: cache.PolicyLFU, MaxTokens: l.evalTokens(), Win: l.EvalWin(),
		})
		if err != nil {
			return err
		}
		gpts[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, g := range gammas {
		sweep.AddRow(g, gpts[i].PPL, gpts[i].Throughput, gpts[i].HitRate)
	}
	sweep.Notes = append(sweep.Notes,
		"paper Figure 10 (right): γ ≈ 0.1–0.3 maximizes throughput at minor perplexity cost; γ=1 is plain DIP")
	return []*Table{dist, sweep}, nil
}

func quantile32(vals []float32, p float64) float32 {
	return tensor.Quantile(vals, p)
}

// Fig11 compares cache eviction policies against cache-aware masking on
// the throughput/perplexity plane.
func Fig11(l *Lab) ([]*Table, error) {
	name := model.Phi3MedSim
	m := l.Model(name)
	out := &Table{
		ID:      "fig11",
		Title:   "Eviction policies vs cache-aware masking (DIP @ swept densities)",
		Columns: []string{"config", "density", "ppl", "tok_s", "hit_rate"},
	}
	test := l.TestTokens(0)
	dense, err := densePoint(l, name, hwsim.A18Like())
	if err != nil {
		return nil, err
	}
	out.AddRow("dense", 1.0, dense.PPL, dense.Throughput, dense.HitRate)
	configs := []struct {
		label  string
		policy cache.Policy
		ca     bool
	}{
		{"dip-nocache", cache.PolicyNone, false},
		{"dip-lru", cache.PolicyLRU, false},
		{"dip-lfu", cache.PolicyLFU, false},
		{"dip-belady", cache.PolicyBelady, false},
		{"dip-ca-lfu", cache.PolicyLFU, true},
	}
	densities := sweepDensities(l, 0.25)
	grid := make([]eval.Point, len(configs)*len(densities))
	err = forEach(len(grid), func(i int) error {
		cfg := configs[i/len(densities)]
		d := densities[i%len(densities)]
		var s sparsity.Scheme
		if cfg.ca {
			s = sparsity.NewDIPCA(d, 0.2)
		} else {
			s = sparsity.NewDIP(d)
		}
		pt, err := eval.SystemEvaluate(m, s, test, eval.SystemConfig{
			Device: hwsim.A18Like(), Policy: cfg.policy, MaxTokens: l.evalTokens(), Win: l.EvalWin(),
		})
		if err != nil {
			return err
		}
		grid[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, pt := range grid {
		out.AddRow(configs[i/len(densities)].label, densities[i%len(densities)], pt.PPL, pt.Throughput, pt.HitRate)
	}
	out.Notes = append(out.Notes,
		"paper Figure 11: LFU ≈ LRU ≲ Belady, all well below DIP-CA at equal perplexity")
	return []*Table{out}, nil
}

// Table6 ablates DRAM size (the paper's 2/4/6 GB cases map to DRAM
// fractions of the model footprint).
func Table6(l *Lab) ([]*Table, error) {
	return deviceAblation(l, "tab6", "DRAM size ablation (Phi-3-Medium analog, +0.5 ppl budget)",
		[]hwsim.Device{
			{Name: "dram-2gb", DRAMBandwidth: 60e9, FlashBandwidth: 1e9, DRAMFraction: 0.27},
			{Name: "dram-4gb", DRAMBandwidth: 60e9, FlashBandwidth: 1e9, DRAMFraction: 0.54},
			{Name: "dram-6gb", DRAMBandwidth: 60e9, FlashBandwidth: 1e9, DRAMFraction: 0.81},
		})
}

// Table7 ablates Flash read speed.
func Table7(l *Lab) ([]*Table, error) {
	return deviceAblation(l, "tab7", "Flash read speed ablation (Phi-3-Medium analog, +0.5 ppl budget)",
		[]hwsim.Device{
			{Name: "flash-0.5GBs", DRAMBandwidth: 60e9, FlashBandwidth: 0.5e9, DRAMFraction: 0.5},
			{Name: "flash-1GBs", DRAMBandwidth: 60e9, FlashBandwidth: 1e9, DRAMFraction: 0.5},
			{Name: "flash-2GBs", DRAMBandwidth: 60e9, FlashBandwidth: 2e9, DRAMFraction: 0.5},
		})
}

func deviceAblation(l *Lab, id, title string, devices []hwsim.Device) ([]*Table, error) {
	name := model.Phi3MedSim
	out := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"device", "method", "tok_s_@+0.5ppl", "hit_rate"},
	}
	allFams := throughputFamilies(l, name)
	// The ablation tables track dense, GLU, Up, CATS, DIP-CA (paper).
	keep := map[string]bool{"glu": true, "up": true, "cats": true, "dip-ca": true}
	var fams []throughputFamily
	for _, fam := range allFams {
		if keep[fam.label] {
			fams = append(fams, fam)
		}
	}
	// The full (device × method) grid fans out: every cell owns its cache
	// and meter, and rows are emitted in index order afterwards.
	type cellRes struct {
		dense eval.Point
		pts   []eval.Point
	}
	cols := 1 + len(fams)
	grid := make([]cellRes, len(devices)*cols)
	err := forEach(len(grid), func(i int) error {
		dev := devices[i/cols]
		mi := i % cols
		if mi == 0 {
			dense, err := densePoint(l, name, dev)
			if err != nil {
				return err
			}
			grid[i].dense = dense
			return nil
		}
		pts, err := operatingPoints(l, name, fams[mi-1], dev, cache.PolicyLFU)
		if err != nil {
			return err
		}
		grid[i].pts = pts
		return nil
	})
	if err != nil {
		return nil, err
	}
	for di, dev := range devices {
		dense := grid[di*cols].dense
		out.AddRow(dev.Name, "dense", dense.Throughput, dense.HitRate)
		for fi, fam := range fams {
			pts := grid[di*cols+1+fi].pts
			best, ok := eval.BestThroughput(pts, dense.PPL+0.5*pplScale(dense.PPL))
			if !ok {
				out.AddRow(dev.Name, fam.label, "-", "-")
				continue
			}
			out.AddRow(dev.Name, fam.label, best.Throughput, best.HitRate)
		}
	}
	return []*Table{out}, nil
}
