package lora

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

func TestApplyDelta(t *testing.T) {
	rng := tensor.NewRNG(1)
	base := tensor.NewMat(4, 3)
	base.RandNorm(rng, 1)
	a := NewAdapter("t", 4, 3, 2, rng)
	// Give B nonzero values.
	a.B.W.RandNorm(rng, 1)
	dst := tensor.NewMat(4, 3)
	applyDelta(dst, base, a)
	delta := a.Delta()
	for i := range dst.Data {
		want := base.Data[i] + delta.Data[i]
		if math.Abs(float64(dst.Data[i]-want)) > 1e-5 {
			t.Fatalf("applyDelta[%d] = %v, want %v", i, dst.Data[i], want)
		}
	}
}

func TestZeroInitAdapterIsIdentity(t *testing.T) {
	rng := tensor.NewRNG(2)
	a := NewAdapter("t", 5, 4, 2, rng)
	d := a.Delta()
	for _, x := range d.Data {
		if x != 0 {
			t.Fatal("B zero-init should give zero delta")
		}
	}
}

func TestAdapterGradFiniteDifference(t *testing.T) {
	rng := tensor.NewRNG(3)
	a := NewAdapter("t", 3, 4, 2, rng)
	a.B.W.RandNorm(rng, 0.5)
	xin := tensor.Vec{0.5, -1, 2, 0.3}
	dout := tensor.Vec{1, -0.5, 2}
	// Loss = dout · (B A xin); gradient of loss w.r.t. A, B entries.
	loss := func() float64 {
		z := tensor.MatVec(a.A.W, xin, nil)
		y := tensor.MatVec(a.B.W, z, nil)
		var s float64
		for i := range y {
			s += float64(dout[i] * y[i])
		}
		return s
	}
	a.A.ZeroGrad()
	a.B.ZeroGrad()
	adapterGrad(a, dout, xin)
	for _, p := range a.Params() {
		for i := 0; i < p.Size(); i++ {
			analytic, numeric := nn.GradCheck(p, i, loss, 1e-3)
			if math.Abs(analytic-numeric) > 1e-2*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %v numeric %v", p.Name, i, analytic, numeric)
			}
		}
	}
}

func trainedTiny(t *testing.T) (*model.Model, []int, []int) {
	t.Helper()
	tok := data.NewTokenizer()
	splits := data.NewSplits(51, 14000, 3000)
	cfg := model.Config{
		Name: "tiny-lora", Vocab: tok.VocabSize(), Dim: 16, Layers: 2,
		Heads: 2, KVHeads: 1, DFF: 32, MaxSeq: 32, Act: nn.ActSiLU,
	}
	m := model.New(cfg, 13)
	opts := model.DefaultTrainOpts()
	opts.Steps = 100
	opts.Batch = 2
	opts.SeqLen = 31
	if _, err := model.Train(m, tok.Encode(splits.Train), opts); err != nil {
		t.Fatal(err)
	}
	return m, tok.Encode(splits.Calib), tok.Encode(splits.Test)
}

func schemePPL(m *model.Model, s sparsity.Scheme, toks []int) float64 {
	hook := func(layer int, x tensor.Vec) tensor.Vec {
		y, _ := s.Forward(layer, x, m.Blocks[layer].MLP, nil)
		return y
	}
	return model.Perplexity(m, toks, 31, hook)
}

func TestLoRARecoversDIPLoss(t *testing.T) {
	m, calib, test := trainedTiny(t)
	test = test[:1500]
	scheme := sparsity.NewDIP(0.4)
	before := schemePPL(m, scheme, test)
	dense := model.Perplexity(m, test, 31, nil)
	opts := DefaultTrainOpts()
	opts.Iterations = 600
	adapters, err := Train(m, scheme, calib, 31, opts)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := Fuse(m, adapters)
	if err != nil {
		t.Fatal(err)
	}
	after := schemePPL(fused, scheme, test)
	t.Logf("dense %.3f, DIP %.3f, DIP+LoRA %.3f", dense, before, after)
	if after >= before {
		t.Fatalf("LoRA did not improve sparse ppl: %.4f -> %.4f", before, after)
	}
	// Fused model evaluated densely should stay close to the original
	// dense model (adapters were trained for the sparse path but fused
	// weights shouldn't destroy the dense behavior either).
	fusedDense := model.Perplexity(fused, test, 31, nil)
	if fusedDense > dense*3 {
		t.Fatalf("fusion damaged the model: %v vs %v", fusedDense, dense)
	}
}

func TestFuseValidatesLayerCount(t *testing.T) {
	m, _, _ := trainedTiny(t)
	if _, err := Fuse(m, make([]LayerAdapters, 1)); err == nil {
		t.Fatal("expected layer-count error")
	}
}

func TestFuseZeroAdaptersIsIdentity(t *testing.T) {
	m, _, _ := trainedTiny(t)
	rng := tensor.NewRNG(5)
	ads := make([]LayerAdapters, len(m.Blocks))
	for l := range ads {
		ads[l] = LayerAdapters{
			Up:   NewAdapter("u", m.Cfg.DFF, m.Cfg.Dim, 2, rng),
			Gate: NewAdapter("g", m.Cfg.DFF, m.Cfg.Dim, 2, rng),
			Down: NewAdapter("d", m.Cfg.Dim, m.Cfg.DFF, 2, rng),
		}
	}
	fused, err := Fuse(m, ads)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Forward([]int{1, 2, 3}, nil)
	b := fused.Forward([]int{1, 2, 3}, nil)
	for t2 := range a {
		for i := range a[t2] {
			if a[t2][i] != b[t2][i] {
				t.Fatal("zero adapters should fuse to identity")
			}
		}
	}
}

func TestExtractMasks(t *testing.T) {
	var ta sparsity.TokenAccess
	ta.Groups[sparsity.GroupUpGate] = sparsity.GroupAccess{Kind: sparsity.AccessSparse, Units: []int{1, 3}}
	ta.Groups[sparsity.GroupDown] = sparsity.GroupAccess{Kind: sparsity.AccessSparse, Units: []int{0, 2}}
	in, glu := extractMasks(&ta, 4, 6)
	if len(in) != 2 || in[0] != 1 {
		t.Fatalf("in = %v", in)
	}
	if len(glu) != 2 || glu[1] != 2 {
		t.Fatalf("glu = %v", glu)
	}
	// Dense down access → all units.
	var ta2 sparsity.TokenAccess
	ta2.Groups[sparsity.GroupDown] = sparsity.GroupAccess{Kind: sparsity.AccessDense}
	in2, glu2 := extractMasks(&ta2, 4, 6)
	if in2 != nil || len(glu2) != 6 {
		t.Fatalf("dense extract wrong: %v %v", in2, glu2)
	}
}

func TestTrainWorksWithCATS(t *testing.T) {
	m, calib, test := trainedTiny(t)
	test = test[:1000]
	cats := sparsity.NewCATS(m, calib, 31, 0.3)
	before := schemePPL(m, cats, test)
	opts := DefaultTrainOpts()
	opts.AdaptGate = false // paper: CATS adapts up and down only
	opts.Iterations = 400
	adapters, err := Train(m, cats, calib, 31, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, ad := range adapters {
		if ad.Gate != nil {
			t.Fatal("gate adapter should be absent for CATS")
		}
	}
	fused, err := Fuse(m, adapters)
	if err != nil {
		t.Fatal(err)
	}
	after := schemePPL(fused, cats, test)
	t.Logf("CATS %.3f -> CATS+LoRA %.3f", before, after)
	if after >= before*1.05 {
		t.Fatalf("CATS+LoRA much worse than CATS: %.4f -> %.4f", before, after)
	}
}
