// Package lora implements the lightweight low-rank adapters of Section 4
// (Eq. 9): rank-r matrices A, B added to the up, gate and down projections
// so that the *sparsified* MLP with W' = W + B·A matches the dense MLP.
// Adapters are applied before column selection and fused into the base
// weights afterwards, so inference carries no extra memory or compute.
//
// Training difference from the paper, documented in DESIGN.md: the paper
// distills end-to-end against dense logits; this implementation distills
// layer-locally — each layer's adapters minimize ‖MLP_sparse,W'(x) −
// MLP_dense,W(x)‖² over calibration activations, with the pruning masks
// treated as constants (straight-through). Layer-local reconstruction is
// the same relaxation GPTQ/SparseGPT use and preserves the paper's
// qualitative result: adapters recover a large share of the sparsification
// loss, with larger gains at aggressive sparsity.
package lora

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// Adapter is one low-rank pair: ΔW = B·A with A (r×in) and B (out×r).
type Adapter struct {
	A, B *nn.Param
	Rank int
}

// NewAdapter allocates an adapter with standard LoRA init: A random, B
// zero, so ΔW = 0 at the start of training.
func NewAdapter(name string, out, in, rank int, rng *tensor.RNG) *Adapter {
	a := &Adapter{
		A:    nn.NewParam(name+".A", rank, in),
		B:    nn.NewParam(name+".B", out, rank),
		Rank: rank,
	}
	a.A.Init(rng, float32(1/math.Sqrt(float64(in))))
	return a
}

// Params returns the learnable parameters.
func (a *Adapter) Params() []*nn.Param { return []*nn.Param{a.A, a.B} }

// Delta materializes B·A.
func (a *Adapter) Delta() *tensor.Mat {
	return tensor.MatMul(a.B.W, a.A.W)
}

// LayerAdapters carries the three adapters of one MLP block. Any of the
// fields may be nil (CATS adapts only up and down, per the paper).
type LayerAdapters struct {
	Up, Gate, Down *Adapter
}

// TrainOpts configures adapter fine-tuning.
type TrainOpts struct {
	// Rank of the adapters (paper: 32 at 4k width; default dim/8, min 2).
	Rank int
	// Iterations of Adam over the calibration samples (default 400).
	Iterations int
	// MaxTokens bounds calibration MLP evaluations per layer (default 256).
	MaxTokens int
	LR        float32
	Seed      uint64
	// AdaptGate controls whether the gate matrix receives an adapter
	// (true for DIP, false for CATS, following Section 6.1).
	AdaptGate bool
}

// DefaultTrainOpts returns the settings used by the experiment drivers.
func DefaultTrainOpts() TrainOpts {
	return TrainOpts{Iterations: 400, MaxTokens: 256, LR: 2e-3, Seed: 55, AdaptGate: true}
}

// Train fits adapters for every layer so the scheme's sparse MLP output
// matches the dense output on calibration activations. The scheme is
// evaluated against a temporary fused model each iteration via explicit
// delta application, with masks recomputed per sample (straight-through).
func Train(m *model.Model, scheme sparsity.Scheme, tokens []int, win int, opts TrainOpts) ([]LayerAdapters, error) {
	if opts.Rank == 0 {
		opts.Rank = m.Cfg.Dim / 8
	}
	if opts.Rank < 2 {
		opts.Rank = 2
	}
	if opts.Iterations == 0 {
		opts.Iterations = 400
	}
	if opts.MaxTokens == 0 {
		opts.MaxTokens = 256
	}
	if opts.LR == 0 {
		opts.LR = 2e-3
	}
	rng := tensor.NewRNG(opts.Seed)
	// Collect calibration MLP inputs and dense outputs per layer.
	L := len(m.Blocks)
	ins := make([][]tensor.Vec, L)
	outs := make([][]tensor.Vec, L)
	count := 0
	hook := func(layer int, x tensor.Vec) tensor.Vec {
		mlp := m.Blocks[layer].MLP
		y := mlp.Apply(x)
		if layer == 0 {
			count++
		}
		if count <= opts.MaxTokens {
			ins[layer] = append(ins[layer], x.Clone())
			outs[layer] = append(outs[layer], y.Clone())
		}
		return y
	}
	for start := 0; start+win <= len(tokens) && count < opts.MaxTokens; start += win {
		m.Forward(tokens[start:start+win], hook)
	}
	adapters := make([]LayerAdapters, L)
	for l := 0; l < L; l++ {
		if len(ins[l]) == 0 {
			return nil, fmt.Errorf("lora: no calibration samples for layer %d", l)
		}
		ad, err := trainLayer(m.Blocks[l].MLP, scheme, l, ins[l], outs[l], opts, rng.Split(uint64(l)))
		if err != nil {
			return nil, err
		}
		adapters[l] = ad
	}
	return adapters, nil
}

// trainLayer fits one layer's adapters by straight-through gradient descent
// on the masked reconstruction loss.
func trainLayer(mlp *nn.GLUMLP, scheme sparsity.Scheme, layer int, xs, ys []tensor.Vec, opts TrainOpts, rng *tensor.RNG) (LayerAdapters, error) {
	dim, dff := mlp.Dim, mlp.DFF
	ad := LayerAdapters{
		Up:   NewAdapter(fmt.Sprintf("l%d.up", layer), dff, dim, opts.Rank, rng.Split(1)),
		Down: NewAdapter(fmt.Sprintf("l%d.down", layer), dim, dff, opts.Rank, rng.Split(2)),
	}
	params := append(ad.Up.Params(), ad.Down.Params()...)
	if opts.AdaptGate {
		ad.Gate = NewAdapter(fmt.Sprintf("l%d.gate", layer), dff, dim, opts.Rank, rng.Split(3))
		params = append(params, ad.Gate.Params()...)
	}
	opt := nn.NewAdam(opts.LR)
	fused := cloneMLP(mlp)
	for it := 0; it < opts.Iterations; it++ {
		i := rng.Intn(len(xs))
		x, yStar := xs[i], ys[i]
		// Refresh the fused weights with the current adapters.
		applyDelta(fused.Up.P.W, mlp.Up.P.W, ad.Up)
		applyDelta(fused.Down.P.W, mlp.Down.P.W, ad.Down)
		if ad.Gate != nil {
			applyDelta(fused.Gate.P.W, mlp.Gate.P.W, ad.Gate)
		} else {
			copy(fused.Gate.P.W.Data, mlp.Gate.P.W.Data)
		}
		// Masked forward through the scheme on the fused weights.
		y, ta := scheme.Forward(layer, x, fused, nil)
		inIdx, gluIdx := extractMasks(&ta, dim, dff)
		// Straight-through backward with fixed masks.
		dy := tensor.NewVec(dim)
		for j := range dy {
			dy[j] = 2 * (y[j] - yStar[j])
		}
		backwardMasked(fused, ad, x, dy, inIdx, gluIdx)
		opt.Step(params, 1)
	}
	return ad, nil
}

// extractMasks derives the active input-column set (nil = all) and the
// active GLU-unit set from a TokenAccess.
func extractMasks(ta *sparsity.TokenAccess, dim, dff int) (inIdx, gluIdx []int) {
	if g := ta.Groups[sparsity.GroupUpGate]; g.Kind == sparsity.AccessSparse {
		inIdx = g.Units
	}
	switch d := ta.Groups[sparsity.GroupDown]; d.Kind {
	case sparsity.AccessSparse:
		gluIdx = d.Units
	default:
		gluIdx = make([]int, dff)
		for i := range gluIdx {
			gluIdx[i] = i
		}
	}
	return inIdx, gluIdx
}

// backwardMasked accumulates adapter gradients for one sample through the
// masked GLU computation (masks fixed).
func backwardMasked(mlp *nn.GLUMLP, ad LayerAdapters, x, dy tensor.Vec, inIdx, gluIdx []int) {
	dim, dff := mlp.Dim, mlp.DFF
	// Recompute the masked intermediates on the fused weights.
	var u, g tensor.Vec
	if inIdx == nil {
		u = tensor.MatVec(mlp.Up.P.W, x, nil)
		g = tensor.MatVec(mlp.Gate.P.W, x, nil)
	} else {
		u = tensor.MatVecSparse(mlp.Up.P.W, x, inIdx, nil)
		g = tensor.MatVecSparse(mlp.Gate.P.W, x, inIdx, nil)
	}
	h := tensor.NewVec(dff)
	hMask := make([]bool, dff)
	for _, i := range gluIdx {
		hMask[i] = true
		h[i] = u[i] * mlp.Act.Apply(g[i])
	}
	// xm: input with pruned coordinates zeroed (what W_u/W_g effectively saw).
	xm := x
	if inIdx != nil {
		xm = tensor.NewVec(dim)
		for _, j := range inIdx {
			xm[j] = x[j]
		}
	}
	// Down adapter: y = (Wd + Bd Ad) h_masked.
	adapterGrad(ad.Down, dy, h)
	dh := tensor.MatTVec(mlp.Down.P.W, dy, nil)
	du := tensor.NewVec(dff)
	dg := tensor.NewVec(dff)
	for i := 0; i < dff; i++ {
		if !hMask[i] {
			continue
		}
		act := mlp.Act.Apply(g[i])
		du[i] = dh[i] * act
		dg[i] = dh[i] * u[i] * mlp.Act.Grad(g[i])
	}
	adapterGrad(ad.Up, du, xm)
	if ad.Gate != nil {
		adapterGrad(ad.Gate, dg, xm)
	}
}

// adapterGrad accumulates dA, dB for ΔW = B·A given upstream gradient dout
// (w.r.t. the matrix output) and the matrix input xin:
// dB += dout·(A xin)ᵀ, dA += (Bᵀ dout)·xinᵀ.
func adapterGrad(a *Adapter, dout, xin tensor.Vec) {
	z := tensor.MatVec(a.A.W, xin, nil)
	tensor.AddOuter(a.B.G, 1, dout, z)
	dz := tensor.MatTVec(a.B.W, dout, nil)
	tensor.AddOuter(a.A.G, 1, dz, xin)
}

// applyDelta writes base + B·A into dst.
func applyDelta(dst, base *tensor.Mat, a *Adapter) {
	copy(dst.Data, base.Data)
	// dst += B·A, computed as rank-r outer products.
	r := a.Rank
	for k := 0; k < r; k++ {
		bcol := a.B.W.Col(k, nil)
		arow := a.A.W.Row(k)
		for i := 0; i < dst.Rows; i++ {
			bi := bcol[i]
			if bi == 0 {
				continue
			}
			row := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			for j := range row {
				row[j] += bi * arow[j]
			}
		}
	}
}

func cloneMLP(mlp *nn.GLUMLP) *nn.GLUMLP {
	c := nn.NewGLUMLP("fused", mlp.Dim, mlp.DFF, mlp.Act, tensor.NewRNG(0))
	copy(c.Up.P.W.Data, mlp.Up.P.W.Data)
	copy(c.Gate.P.W.Data, mlp.Gate.P.W.Data)
	copy(c.Down.P.W.Data, mlp.Down.P.W.Data)
	return c
}

// Fuse returns a copy of m with every layer's adapters folded into the MLP
// weights (Eq. 9's fusion step). The returned model is evaluated with the
// same sparsity schemes as the original — adapters add no runtime cost.
func Fuse(m *model.Model, adapters []LayerAdapters) (*model.Model, error) {
	if len(adapters) != len(m.Blocks) {
		return nil, fmt.Errorf("lora: %d adapter sets for %d layers", len(adapters), len(m.Blocks))
	}
	clone := model.New(m.Cfg, 0)
	src, dst := m.Params(), clone.Params()
	for i := range src {
		copy(dst[i].W.Data, src[i].W.Data)
	}
	for l, ad := range adapters {
		mlp := clone.Blocks[l].MLP
		if ad.Up != nil {
			applyDelta(mlp.Up.P.W, m.Blocks[l].MLP.Up.P.W, ad.Up)
		}
		if ad.Gate != nil {
			applyDelta(mlp.Gate.P.W, m.Blocks[l].MLP.Gate.P.W, ad.Gate)
		}
		if ad.Down != nil {
			applyDelta(mlp.Down.P.W, m.Blocks[l].MLP.Down.P.W, ad.Down)
		}
	}
	return clone, nil
}
