// Package quant implements the quantization baselines of Section 6.3:
// blockwise uniform quantization with GPTQ-style error propagation (BQ:
// Frantar et al., 2022) and vector quantization with k-means codebooks (VQ:
// van Baalen et al., 2024, simplified to 2-d sub-vectors). Both quantize
// the MLP matrices of a model copy in place and report effective
// bytes-per-weight including bookkeeping overheads, which drives the
// memory axis of Figure 9.
package quant

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/prune"
	"repro/internal/tensor"
)

// Method identifies a quantizer for reporting.
type Method struct {
	// Kind is "bq" or "vq".
	Kind string
	// Bits per weight for the payload (excluding overheads).
	Bits int
}

// String names the method, e.g. "bq4" or "vq3".
func (m Method) String() string { return fmt.Sprintf("%s%d", m.Kind, m.Bits) }

// BQOpts configures blockwise quantization.
type BQOpts struct {
	Bits int
	// GroupSize is the number of consecutive columns sharing a scale/zero
	// pair (default 32).
	GroupSize int
	// PercDamp scales the Hessian damping (default 0.01).
	PercDamp float64
}

// DefaultBQOpts returns the defaults used in the experiments.
func DefaultBQOpts(bits int) BQOpts { return BQOpts{Bits: bits, GroupSize: 32, PercDamp: 0.01} }

// quantizeValue rounds x to the nearest level of an asymmetric uniform
// grid defined by (scale, zero, maxq) and returns the dequantized value.
func quantizeValue(x float32, scale, zero float32, maxq int) float32 {
	if scale == 0 {
		return 0
	}
	q := math.Round(float64(x/scale + zero))
	if q < 0 {
		q = 0
	}
	if q > float64(maxq) {
		q = float64(maxq)
	}
	return (float32(q) - zero) * scale
}

// groupParams derives min-max asymmetric scale/zero for a weight slice.
func groupParams(w []float64, maxq int) (scale, zero float32) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range w {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	if hi == lo {
		return 0, 0
	}
	scale = float32((hi - lo) / float64(maxq))
	zero = float32(math.Round(-lo / (hi - lo) * float64(maxq)))
	return scale, zero
}

// BQMatrix quantizes w in place with GPTQ error propagation using the
// calibration inputs xs: columns are processed in order; the rounding
// error of each column is folded into the remaining columns through the
// inverse-Hessian Cholesky factor, exactly the SparseGPT update with
// "prune" replaced by "round".
func BQMatrix(w *tensor.Mat, xs []tensor.Vec, opts BQOpts) error {
	if opts.GroupSize <= 0 {
		opts.GroupSize = 32
	}
	if opts.PercDamp == 0 {
		opts.PercDamp = 0.01
	}
	n := w.Cols
	maxq := (1 << opts.Bits) - 1
	h := tensor.NewSymMat(n)
	for _, x := range xs {
		if len(x) != n {
			return fmt.Errorf("quant: calibration input length %d != cols %d", len(x), n)
		}
		h.AddOuterF64(2, x)
	}
	damp := opts.PercDamp * h.MeanDiag()
	if damp <= 0 {
		damp = 1e-4
	}
	h.AddDiag(damp)
	hinv, err := h.Inverse()
	if err != nil {
		return fmt.Errorf("quant: hessian inversion: %w", err)
	}
	u, err := hinv.CholUpper()
	if err != nil {
		return fmt.Errorf("quant: cholesky: %w", err)
	}
	rows := w.Rows
	wf := make([][]float64, rows)
	for r := 0; r < rows; r++ {
		wf[r] = make([]float64, n)
		for j := 0; j < n; j++ {
			wf[r][j] = float64(w.At(r, j))
		}
	}
	for g0 := 0; g0 < n; g0 += opts.GroupSize {
		g1 := g0 + opts.GroupSize
		if g1 > n {
			g1 = n
		}
		// Per-row scale/zero over the group's *current* (error-compensated)
		// weights.
		scales := make([]float32, rows)
		zeros := make([]float32, rows)
		for r := 0; r < rows; r++ {
			scales[r], zeros[r] = groupParams(wf[r][g0:g1], maxq)
		}
		for j := g0; j < g1; j++ {
			d := u.At(j, j)
			for r := 0; r < rows; r++ {
				orig := wf[r][j]
				q := float64(quantizeValue(float32(orig), scales[r], zeros[r], maxq))
				errv := (orig - q) / d
				wf[r][j] = q
				for k := j + 1; k < n; k++ {
					wf[r][k] -= errv * u.At(j, k)
				}
			}
		}
	}
	for r := 0; r < rows; r++ {
		for j := 0; j < n; j++ {
			w.Set(r, j, float32(wf[r][j]))
		}
	}
	return nil
}

// BQBytesPerWeight returns the effective storage per weight: payload bits
// plus fp16 scale and zero per group.
func BQBytesPerWeight(opts BQOpts) float64 {
	group := opts.GroupSize
	if group <= 0 {
		group = 32
	}
	bits := float64(opts.Bits) + 32.0/float64(group)
	return bits / 8
}

// VQOpts configures vector quantization.
type VQOpts struct {
	// Bits is the per-weight budget; with SubDim-sized sub-vectors the
	// codebook has 2^(Bits·SubDim) entries.
	Bits int
	// SubDim is the sub-vector length (default 2).
	SubDim int
	// Iters is the number of k-means iterations (default 15).
	Iters int
	// Seed seeds the k-means initialization.
	Seed uint64
}

// DefaultVQOpts returns the defaults used in the experiments.
func DefaultVQOpts(bits int) VQOpts { return VQOpts{Bits: bits, SubDim: 2, Iters: 15, Seed: 7} }

// VQMatrix vector-quantizes w in place: rows are cut into SubDim-length
// sub-vectors, a k-means codebook is fit over all sub-vectors, and each
// sub-vector is replaced by its nearest centroid.
func VQMatrix(w *tensor.Mat, opts VQOpts) {
	if opts.SubDim <= 0 {
		opts.SubDim = 2
	}
	if opts.Iters <= 0 {
		opts.Iters = 15
	}
	k := 1 << (opts.Bits * opts.SubDim)
	sd := opts.SubDim
	// Gather sub-vectors (pad the tail with zeros when cols % sd != 0).
	var subs [][]float32
	for r := 0; r < w.Rows; r++ {
		row := w.Row(r)
		for c := 0; c < len(row); c += sd {
			sub := make([]float32, sd)
			copy(sub, row[c:min(c+sd, len(row))])
			subs = append(subs, sub)
		}
	}
	if len(subs) == 0 {
		return
	}
	if k > len(subs) {
		k = len(subs)
	}
	cent := kmeans(subs, k, opts.Iters, opts.Seed)
	// Replace each sub-vector with its nearest centroid.
	i := 0
	for r := 0; r < w.Rows; r++ {
		row := w.Row(r)
		for c := 0; c < len(row); c += sd {
			best := nearest(subs[i], cent)
			for d := 0; d < sd && c+d < len(row); d++ {
				row[c+d] = cent[best][d]
			}
			i++
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func dist2(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i] - b[i])
		s += d * d
	}
	return s
}

func nearest(x []float32, cent [][]float32) int {
	best, bestD := 0, math.Inf(1)
	for i, c := range cent {
		if d := dist2(x, c); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// kmeans runs Lloyd's algorithm with k-means++-style seeded init.
func kmeans(xs [][]float32, k, iters int, seed uint64) [][]float32 {
	rng := tensor.NewRNG(seed)
	dim := len(xs[0])
	cent := make([][]float32, k)
	// Init: random distinct samples.
	perm := rng.Perm(len(xs))
	for i := 0; i < k; i++ {
		c := make([]float32, dim)
		copy(c, xs[perm[i%len(perm)]])
		cent[i] = c
	}
	assign := make([]int, len(xs))
	for it := 0; it < iters; it++ {
		changed := false
		for i, x := range xs {
			b := nearest(x, cent)
			if b != assign[i] {
				assign[i] = b
				changed = true
			}
		}
		sums := make([][]float64, k)
		counts := make([]int, k)
		for i := range sums {
			sums[i] = make([]float64, dim)
		}
		for i, x := range xs {
			a := assign[i]
			counts[a]++
			for d := 0; d < dim; d++ {
				sums[a][d] += float64(x[d])
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed empty clusters from a random sample.
				copy(cent[c], xs[rng.Intn(len(xs))])
				continue
			}
			for d := 0; d < dim; d++ {
				cent[c][d] = float32(sums[c][d] / float64(counts[c]))
			}
		}
		if !changed && it > 0 {
			break
		}
	}
	return cent
}

// VQBytesPerWeight returns the effective storage per weight: index bits
// per weight; the shared codebook is amortized to ~0 for realistic matrix
// sizes, plus a per-row fp16 scale would add 16/cols bits — negligible and
// omitted, matching the paper's accounting.
func VQBytesPerWeight(opts VQOpts) float64 {
	return float64(opts.Bits) / 8
}

// BQModel returns a copy of m with all MLP matrices blockwise-quantized
// using GPTQ error propagation on calibration tokens.
func BQModel(m *model.Model, tokens []int, win int, opts BQOpts) (*model.Model, error) {
	clone := model.New(m.Cfg, 0)
	copyParams(m, clone)
	mlpIn, gluAct := prune.CalibrationActivations(m, tokens, win, 256)
	for l, b := range clone.Blocks {
		if err := BQMatrix(b.MLP.Up.P.W, mlpIn[l], opts); err != nil {
			return nil, fmt.Errorf("layer %d up: %w", l, err)
		}
		if err := BQMatrix(b.MLP.Gate.P.W, mlpIn[l], opts); err != nil {
			return nil, fmt.Errorf("layer %d gate: %w", l, err)
		}
		if err := BQMatrix(b.MLP.Down.P.W, gluAct[l], opts); err != nil {
			return nil, fmt.Errorf("layer %d down: %w", l, err)
		}
	}
	return clone, nil
}

// VQModel returns a copy of m with all MLP matrices vector-quantized.
func VQModel(m *model.Model, opts VQOpts) *model.Model {
	clone := model.New(m.Cfg, 0)
	copyParams(m, clone)
	for _, b := range clone.Blocks {
		VQMatrix(b.MLP.Up.P.W, opts)
		VQMatrix(b.MLP.Gate.P.W, opts)
		VQMatrix(b.MLP.Down.P.W, opts)
	}
	return clone
}

func copyParams(src, dst *model.Model) {
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		copy(dp[i].W.Data, sp[i].W.Data)
	}
}
