package quant

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// calib generates correlated calibration inputs (shared low-rank mixing
// plus noise), matching the structure of real activations that GPTQ's
// error propagation exploits.
func calib(seed uint64, n, dim int) []tensor.Vec {
	rng := tensor.NewRNG(seed)
	rank := dim/4 + 1
	mix := tensor.NewMat(dim, rank)
	mix.RandNorm(rng, 1)
	xs := make([]tensor.Vec, n)
	for i := range xs {
		z := tensor.NewVec(rank)
		for j := range z {
			z[j] = rng.NormFloat32()
		}
		x := tensor.MatVec(mix, z, nil)
		for j := range x {
			x[j] += 0.3 * rng.NormFloat32()
		}
		xs[i] = x
	}
	return xs
}

func reconErr(orig, q *tensor.Mat, xs []tensor.Vec) float64 {
	var s float64
	for _, x := range xs {
		yo := tensor.MatVec(orig, x, nil)
		yq := tensor.MatVec(q, x, nil)
		for i := range yo {
			d := float64(yo[i] - yq[i])
			s += d * d
		}
	}
	return s
}

func TestBQMatrixErrorDecreasesWithBits(t *testing.T) {
	rng := tensor.NewRNG(1)
	orig := tensor.NewMat(16, 32)
	orig.RandNorm(rng, 1)
	xs := calib(2, 128, 32)
	var prev float64 = math.Inf(1)
	for _, bits := range []int{2, 3, 4, 8} {
		w := orig.Clone()
		if err := BQMatrix(w, xs, DefaultBQOpts(bits)); err != nil {
			t.Fatal(err)
		}
		e := reconErr(orig, w, xs)
		if e > prev {
			t.Fatalf("error at %d bits (%.4g) above %d-1 bits (%.4g)", bits, e, bits, prev)
		}
		prev = e
	}
	// 8-bit is near-lossless: orders of magnitude below the 2-bit error.
	w2 := orig.Clone()
	if err := BQMatrix(w2, xs, DefaultBQOpts(2)); err != nil {
		t.Fatal(err)
	}
	if e2 := reconErr(orig, w2, xs); prev > e2/50 {
		t.Fatalf("8-bit error %v not far below 2-bit error %v", prev, e2)
	}
}

func TestBQQuantizedValuesOnGrid(t *testing.T) {
	// With GroupSize == Cols and no error propagation possible in the last
	// column, check values land on a small set of levels per row group.
	rng := tensor.NewRNG(3)
	w := tensor.NewMat(4, 16)
	w.RandNorm(rng, 1)
	if err := BQMatrix(w, calib(4, 64, 16), BQOpts{Bits: 2, GroupSize: 16}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < w.Rows; r++ {
		levels := map[float32]bool{}
		for j := 0; j < w.Cols; j++ {
			levels[w.At(r, j)] = true
		}
		if len(levels) > 4 {
			t.Fatalf("row %d has %d distinct levels for 2-bit quant", r, len(levels))
		}
	}
}

func TestBQBeatsRTNStyleNoCompensation(t *testing.T) {
	// GPTQ error propagation should beat plain rounding at the same bit
	// width on the calibration objective.
	rng := tensor.NewRNG(5)
	orig := tensor.NewMat(24, 48)
	orig.RandNorm(rng, 1)
	xs := calib(6, 256, 48)
	gptq := orig.Clone()
	if err := BQMatrix(gptq, xs, DefaultBQOpts(2)); err != nil {
		t.Fatal(err)
	}
	// RTN: quantize each group without compensation.
	rtn := orig.Clone()
	maxq := (1 << 2) - 1
	for r := 0; r < rtn.Rows; r++ {
		row := rtn.Row(r)
		for g := 0; g < len(row); g += 32 {
			end := g + 32
			if end > len(row) {
				end = len(row)
			}
			grp := make([]float64, end-g)
			for i := g; i < end; i++ {
				grp[i-g] = float64(row[i])
			}
			scale, zero := groupParams(grp, maxq)
			for i := g; i < end; i++ {
				row[i] = quantizeValue(row[i], scale, zero, maxq)
			}
		}
	}
	eG, eR := reconErr(orig, gptq, xs), reconErr(orig, rtn, xs)
	if eG >= eR {
		t.Fatalf("GPTQ error %.4g not below RTN error %.4g", eG, eR)
	}
}

func TestVQMatrixCodebookSize(t *testing.T) {
	rng := tensor.NewRNG(7)
	w := tensor.NewMat(16, 32)
	w.RandNorm(rng, 1)
	VQMatrix(w, DefaultVQOpts(2)) // 2 bits × 2-dim → 16 centroids
	pairs := map[[2]float32]bool{}
	for r := 0; r < w.Rows; r++ {
		row := w.Row(r)
		for c := 0; c < len(row); c += 2 {
			pairs[[2]float32{row[c], row[c+1]}] = true
		}
	}
	if len(pairs) > 16 {
		t.Fatalf("found %d distinct pairs for a 16-entry codebook", len(pairs))
	}
	if len(pairs) < 2 {
		t.Fatal("degenerate codebook")
	}
}

func TestVQErrorDecreasesWithBits(t *testing.T) {
	rng := tensor.NewRNG(9)
	orig := tensor.NewMat(16, 32)
	orig.RandNorm(rng, 1)
	xs := calib(10, 64, 32)
	w2 := orig.Clone()
	VQMatrix(w2, DefaultVQOpts(2))
	w3 := orig.Clone()
	VQMatrix(w3, DefaultVQOpts(3))
	if reconErr(orig, w3, xs) >= reconErr(orig, w2, xs) {
		t.Fatal("3-bit VQ should beat 2-bit VQ")
	}
}

func TestBytesPerWeight(t *testing.T) {
	if got := BQBytesPerWeight(DefaultBQOpts(4)); math.Abs(got-(4+1.0)/8) > 1e-9 {
		t.Fatalf("BQ4 bytes/weight = %v", got)
	}
	if got := VQBytesPerWeight(DefaultVQOpts(3)); got != 3.0/8 {
		t.Fatalf("VQ3 bytes/weight = %v", got)
	}
	if MethodBQ4 := (Method{Kind: "bq", Bits: 4}); MethodBQ4.String() != "bq4" {
		t.Fatal("method name wrong")
	}
}

func TestModelQuantEndToEnd(t *testing.T) {
	tok := data.NewTokenizer()
	splits := data.NewSplits(31, 12000, 2500)
	cfg := model.Config{
		Name: "tiny-quant", Vocab: tok.VocabSize(), Dim: 16, Layers: 2,
		Heads: 2, KVHeads: 1, DFF: 32, MaxSeq: 32, Act: nn.ActSiLU,
	}
	m := model.New(cfg, 11)
	topts := model.DefaultTrainOpts()
	topts.Steps = 80
	topts.Batch = 2
	topts.SeqLen = 31
	if _, err := model.Train(m, tok.Encode(splits.Train), topts); err != nil {
		t.Fatal(err)
	}
	testToks := tok.Encode(splits.Test)[:1200]
	calibToks := tok.Encode(splits.Calib)
	dense := model.Perplexity(m, testToks, 31, nil)

	bq4, err := BQModel(m, calibToks, 31, DefaultBQOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	p4 := model.Perplexity(bq4, testToks, 31, nil)
	bq2, err := BQModel(m, calibToks, 31, DefaultBQOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	p2 := model.Perplexity(bq2, testToks, 31, nil)
	if p4 > p2 {
		t.Fatalf("BQ4 (%v) should beat BQ2 (%v)", p4, p2)
	}
	if p4 > dense*2 {
		t.Fatalf("BQ4 ppl %v too far above dense %v", p4, dense)
	}
	vq3 := VQModel(m, DefaultVQOpts(3))
	pv3 := model.Perplexity(vq3, testToks, 31, nil)
	if pv3 > dense*4 {
		t.Fatalf("VQ3 destroyed the model: %v vs %v", pv3, dense)
	}
	// Original untouched.
	again := model.Perplexity(m, testToks, 31, nil)
	if again != dense {
		t.Fatal("quantization modified the original model")
	}
}
