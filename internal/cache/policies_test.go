package cache

import (
	"testing"
	"testing/quick"
)

func TestFIFOEvictsOldestInsertion(t *testing.T) {
	g := NewGroupCache(PolicyFIFO, 2, 10)
	g.AccessSparse([]int{1})
	g.AccessSparse([]int{2})
	// Re-touching 1 must NOT refresh its FIFO position.
	g.AccessSparse([]int{1})
	g.AccessSparse([]int{3}) // evicts 1 (oldest insertion), not 2
	if g.Resident(1) || !g.Resident(2) || !g.Resident(3) {
		t.Fatalf("FIFO residency wrong: 1=%v 2=%v 3=%v", g.Resident(1), g.Resident(2), g.Resident(3))
	}
}

func TestFIFODiffersFromLRU(t *testing.T) {
	trace := [][]int{{1}, {2}, {1}, {3}, {1}, {2}}
	run := func(p Policy) (hits int64) {
		g := NewGroupCache(p, 2, 5)
		for _, u := range trace {
			g.AccessSparse(u)
		}
		return g.Stats().Hits
	}
	// On this trace LRU keeps the re-touched unit 1; FIFO evicts it.
	if run(PolicyLRU) <= run(PolicyFIFO) {
		t.Fatalf("expected LRU (%d hits) to beat FIFO (%d hits) on a recency-friendly trace",
			run(PolicyLRU), run(PolicyFIFO))
	}
}

func TestLFUAgedForgetsStalePopularity(t *testing.T) {
	// Unit 0 is hammered early, then never used again; units 1..20 cycle
	// slowly so no single one out-frequencies unit 0's stale count. Plain
	// LFU pins 0 forever; aged LFU decays the stale count and evicts it.
	build := func(p Policy) *GroupCache {
		g := NewGroupCache(p, 2, 25)
		for i := 0; i < 50; i++ {
			g.AccessSparse([]int{0})
		}
		for i := 0; i < 3*AgingPeriod; i++ {
			g.AccessSparse([]int{1 + i%20})
		}
		return g
	}
	plain := build(PolicyLFU)
	aged := build(PolicyLFUAged)
	if !plain.Resident(0) {
		t.Fatal("plain LFU should still pin the stale-hot unit")
	}
	if aged.Resident(0) {
		t.Fatal("aged LFU should have evicted the stale-hot unit")
	}
}

func TestNewPolicyNames(t *testing.T) {
	if PolicyFIFO.String() != "fifo" || PolicyLFUAged.String() != "lfu-aged" {
		t.Fatal("policy names wrong")
	}
}

// Property: for every policy, the resident count never exceeds capacity
// and hits+misses equals the number of accessed units.
func TestCacheInvariants(t *testing.T) {
	policies := []Policy{PolicyNone, PolicyLRU, PolicyLFU, PolicyFIFO, PolicyLFUAged}
	f := func(seed uint64) bool {
		state := seed
		next := func(n int) int {
			state = state*6364136223846793005 + 1
			return int((state >> 33) % uint64(n))
		}
		for _, p := range policies {
			cap := next(6)
			g := NewGroupCache(p, cap, 12)
			var accessed int64
			for step := 0; step < 100; step++ {
				n := 1 + next(4)
				seen := map[int]bool{}
				var units []int
				for len(units) < n {
					u := next(12)
					if !seen[u] {
						seen[u] = true
						units = append(units, u)
					}
				}
				h, m := g.AccessSparse(units)
				if h+m != len(units) {
					return false
				}
				accessed += int64(len(units))
				resident := 0
				for u := 0; u < 12; u++ {
					if g.Resident(u) {
						resident++
					}
				}
				if resident > g.Capacity() {
					return false
				}
			}
			st := g.Stats()
			if st.Hits+st.Misses != accessed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: a hit never changes residency; a miss either inserts the unit
// or bypasses, never removes an unrelated non-victim.
func TestLRURecencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		state := seed | 1
		next := func(n int) int {
			state = state*6364136223846793005 + 1
			return int((state >> 33) % uint64(n))
		}
		g := NewGroupCache(PolicyLRU, 3, 10)
		lastTouched := -1
		for step := 0; step < 200; step++ {
			u := next(10)
			g.AccessSparse([]int{u})
			lastTouched = u
			// The most recently touched unit must be resident (capacity>0
			// guarantees insertion or it was already there).
			if !g.Resident(lastTouched) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
