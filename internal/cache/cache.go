// Package cache simulates the DRAM weight cache of Section 5: weights are
// fetched from Flash at neuron/column granularity (the "units" of
// sparsity.GroupID groups), retained in a bounded DRAM budget, and evicted
// by a configurable policy — LRU, LFU, the clairvoyant Belady oracle, or no
// caching at all. The cache exposes the sparsity.CacheView interface so
// DIP-CA can bias its masks toward resident units, and reports hit/miss
// unit counts so the hardware simulator can price each token.
package cache

import (
	"fmt"

	"repro/internal/sparsity"
)

// Policy selects the eviction strategy.
type Policy int

const (
	// PolicyNone disables caching: every access is a miss.
	PolicyNone Policy = iota
	// PolicyLRU evicts the least recently used unit.
	PolicyLRU
	// PolicyLFU evicts the least frequently used unit (session counts).
	PolicyLFU
	// PolicyBelady evicts the unit whose next use is farthest in the
	// future, using a pre-recorded access trace (Belady, 1966). It is the
	// optimal eviction policy for a fixed access sequence.
	PolicyBelady
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyLRU:
		return "lru"
	case PolicyLFU:
		return "lfu"
	case PolicyBelady:
		return "belady"
	case PolicyFIFO:
		return "fifo"
	case PolicyLFUAged:
		return "lfu-aged"
	default:
		return "invalid"
	}
}

// Stats accumulates cache events in units.
type Stats struct {
	Hits, Misses, Evictions int64
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// GroupCache caches the units of one weight group at one layer.
type GroupCache struct {
	policy   Policy
	capacity int
	nunits   int
	resident []bool
	count    int

	clock   int64
	lastUse []int64 // LRU
	freq    []int64 // LFU

	// inflight[u] == clock marks u as part of the access being processed,
	// giving pickVictim an O(1) protection check instead of scanning the
	// current unit list per candidate (the dominant cost of cache-coupled
	// evaluation before this existed).
	inflight []int64

	// Belady state: for each unit, the (ascending) positions in the access
	// stream where it is used, and a cursor into that list.
	future  [][]int32
	cursor  []int
	syncPos int // current stream position

	stats Stats
}

// NewGroupCache returns a cache over nunits units holding at most capacity
// of them. capacity is clamped to [0, nunits].
func NewGroupCache(policy Policy, capacity, nunits int) *GroupCache {
	if capacity < 0 {
		capacity = 0
	}
	if capacity > nunits {
		capacity = nunits
	}
	if policy == PolicyNone {
		capacity = 0
	}
	return &GroupCache{
		policy:   policy,
		capacity: capacity,
		nunits:   nunits,
		resident: make([]bool, nunits),
		lastUse:  make([]int64, nunits),
		freq:     make([]int64, nunits),
		inflight: make([]int64, nunits),
	}
}

// Capacity returns the unit capacity.
func (g *GroupCache) Capacity() int { return g.capacity }

// Stats returns the accumulated statistics.
func (g *GroupCache) Stats() Stats { return g.stats }

// Resident reports whether unit u is in DRAM.
func (g *GroupCache) Resident(u int) bool { return g.resident[u] }

// Occupancy returns the number of resident units.
func (g *GroupCache) Occupancy() int { return g.count }

// SetTrace installs the future access stream for the Belady policy. Each
// stream element is the sparse unit list of one token's access. It panics
// for other policies.
func (g *GroupCache) SetTrace(stream [][]int) {
	if g.policy != PolicyBelady {
		panic("cache: SetTrace on non-Belady cache")
	}
	g.future = make([][]int32, g.nunits)
	for pos, units := range stream {
		for _, u := range units {
			g.future[u] = append(g.future[u], int32(pos))
		}
	}
	g.cursor = make([]int, g.nunits)
	g.syncPos = 0
}

// nextUse returns the next stream position at which unit u is used strictly
// after the current position, or a sentinel beyond any position.
func (g *GroupCache) nextUse(u int) int32 {
	const never = 1 << 30
	f := g.future[u]
	c := g.cursor[u]
	for c < len(f) && int(f[c]) <= g.syncPos {
		c++
	}
	g.cursor[u] = c
	if c == len(f) {
		return never
	}
	return f[c]
}

// AccessSparse processes one token's access to the listed units, updating
// residency per the policy, and returns the hit and miss unit counts.
func (g *GroupCache) AccessSparse(units []int) (hits, misses int) {
	if g.capacity == 0 {
		g.stats.Misses += int64(len(units))
		return 0, len(units)
	}
	g.clock++
	g.maybeAge()
	for _, u := range units {
		g.inflight[u] = g.clock
	}
	for _, u := range units {
		g.freq[u]++
		if g.policy != PolicyFIFO {
			g.lastUse[u] = g.clock
		}
		if g.resident[u] {
			hits++
			continue
		}
		misses++
		g.insert(u)
	}
	g.stats.Hits += int64(hits)
	g.stats.Misses += int64(misses)
	if g.policy == PolicyBelady {
		g.syncPos++
	}
	return hits, misses
}

// insert makes u resident, evicting per policy when full. Units of the
// in-flight access (stamped with the current clock) are protected from
// eviction — they are needed this token.
func (g *GroupCache) insert(u int) {
	if g.count < g.capacity {
		g.resident[u] = true
		g.count++
		g.noteInsert(u)
		return
	}
	victim := g.pickVictim()
	if victim < 0 {
		// Everything resident is needed this token; bypass the cache for u
		// (the paper's low-density regime where active neurons exceed the
		// cache and are loaded straight to the processing unit).
		return
	}
	if g.policy == PolicyBelady && g.nextUse(u) >= g.nextUse(victim) {
		// Optimal-with-bypass: the incoming unit is needed again no sooner
		// than the best victim, so caching it cannot help — stream it to
		// the processing unit and keep the cache contents.
		return
	}
	g.resident[victim] = false
	g.resident[u] = true
	g.noteInsert(u)
	g.stats.Evictions++
}

// pickVictim returns the resident unit to evict, or -1 when every resident
// unit is in the current access set.
func (g *GroupCache) pickVictim() int {
	inFlight := func(v int) bool { return g.inflight[v] == g.clock }
	best := -1
	switch g.policy {
	case PolicyLRU, PolicyFIFO:
		// For FIFO, lastUse holds the insertion stamp (never refreshed on
		// hits), so the same minimum-stamp scan implements both.
		var bestUse int64 = 1<<62 - 1
		for v := 0; v < g.nunits; v++ {
			if g.resident[v] && !inFlight(v) && g.lastUse[v] < bestUse {
				best, bestUse = v, g.lastUse[v]
			}
		}
	case PolicyLFU, PolicyLFUAged:
		var bestFreq int64 = 1<<62 - 1
		for v := 0; v < g.nunits; v++ {
			if g.resident[v] && !inFlight(v) && g.freq[v] < bestFreq {
				best, bestFreq = v, g.freq[v]
			}
		}
	case PolicyBelady:
		var bestNext int32 = -1
		for v := 0; v < g.nunits; v++ {
			if g.resident[v] && !inFlight(v) {
				if nu := g.nextUse(v); nu > bestNext {
					best, bestNext = v, nu
				}
			}
		}
	default:
		for v := 0; v < g.nunits; v++ {
			if g.resident[v] && !inFlight(v) {
				return v
			}
		}
	}
	return best
}

// AccessDense processes a token that reads every unit of the group. Dense
// groups behave like statically pinned weights: the first access fills the
// cache to capacity with units 0..capacity-1 and later accesses hit on the
// pinned set — no churn, because evicting under a cyclic full scan can
// never help.
func (g *GroupCache) AccessDense() (hits, misses int) {
	if g.count < g.capacity {
		for u := 0; u < g.capacity; u++ {
			if !g.resident[u] {
				g.resident[u] = true
				g.count++
			}
		}
	}
	hits = g.count
	misses = g.nunits - g.count
	g.stats.Hits += int64(hits)
	g.stats.Misses += int64(misses)
	if g.policy == PolicyBelady {
		g.syncPos++
	}
	return hits, misses
}

// ModelCache is the full per-layer, per-group cache hierarchy for one
// model. It implements sparsity.CacheView.
type ModelCache struct {
	Policy Policy
	groups [][sparsity.NumGroups]*GroupCache
}

// NewModelCache builds caches for layers × groups. caps and nunits give the
// per-layer per-group unit capacities and universes; a zero universe means
// the group is unused by the scheme and gets no cache.
func NewModelCache(policy Policy, caps, nunits [][sparsity.NumGroups]int) *ModelCache {
	if len(caps) != len(nunits) {
		panic("cache: caps/nunits layer count mismatch")
	}
	mc := &ModelCache{Policy: policy}
	mc.groups = make([][sparsity.NumGroups]*GroupCache, len(caps))
	for l := range caps {
		for g := 0; g < int(sparsity.NumGroups); g++ {
			if nunits[l][g] > 0 {
				mc.groups[l][g] = NewGroupCache(policy, caps[l][g], nunits[l][g])
			}
		}
	}
	return mc
}

// Cached implements sparsity.CacheView.
func (mc *ModelCache) Cached(layer int, g sparsity.GroupID, unit int) bool {
	gc := mc.groups[layer][g]
	if gc == nil {
		return false
	}
	return gc.Resident(unit)
}

// Group returns the cache for (layer, group), or nil when unused.
func (mc *ModelCache) Group(layer int, g sparsity.GroupID) *GroupCache {
	return mc.groups[layer][g]
}

// AccessResult reports one token's traffic for one layer in units.
type AccessResult struct {
	HitUnits, MissUnits [sparsity.NumGroups]int
}

// Access replays a TokenAccess against the layer's caches.
func (mc *ModelCache) Access(layer int, ta *sparsity.TokenAccess) AccessResult {
	var res AccessResult
	for g := 0; g < int(sparsity.NumGroups); g++ {
		acc := ta.Groups[g]
		if acc.Kind == sparsity.AccessUnused {
			continue
		}
		gc := mc.groups[layer][g]
		if gc == nil {
			panic(fmt.Sprintf("cache: access to unconfigured group %v at layer %d", sparsity.GroupID(g), layer))
		}
		var h, m int
		if acc.Kind == sparsity.AccessDense {
			h, m = gc.AccessDense()
		} else {
			h, m = gc.AccessSparse(acc.Units)
		}
		res.HitUnits[g] = h
		res.MissUnits[g] = m
	}
	return res
}

// Occupancy returns the total resident units across all layers and groups —
// a full fingerprint of cache fill, used by determinism tests.
func (mc *ModelCache) Occupancy() int {
	n := 0
	for l := range mc.groups {
		for g := 0; g < int(sparsity.NumGroups); g++ {
			if gc := mc.groups[l][g]; gc != nil {
				n += gc.Occupancy()
			}
		}
	}
	return n
}

// TotalStats sums statistics over all layers and groups.
func (mc *ModelCache) TotalStats() Stats {
	var s Stats
	for l := range mc.groups {
		for g := 0; g < int(sparsity.NumGroups); g++ {
			if gc := mc.groups[l][g]; gc != nil {
				st := gc.Stats()
				s.Hits += st.Hits
				s.Misses += st.Misses
				s.Evictions += st.Evictions
			}
		}
	}
	return s
}

// SetTraces installs Belady traces recorded by a TraceRecorder.
func (mc *ModelCache) SetTraces(tr *TraceRecorder) {
	for l := range mc.groups {
		for g := 0; g < int(sparsity.NumGroups); g++ {
			if gc := mc.groups[l][g]; gc != nil && gc.policy == PolicyBelady {
				gc.SetTrace(tr.Stream(l, sparsity.GroupID(g)))
			}
		}
	}
}

// TraceRecorder captures per-(layer, group) access streams for the Belady
// oracle's first pass. Dense accesses are recorded as empty entries (they
// produce no eviction decisions).
type TraceRecorder struct {
	streams map[traceKey][][]int
}

type traceKey struct {
	layer int
	group sparsity.GroupID
}

// NewTraceRecorder returns an empty recorder.
func NewTraceRecorder() *TraceRecorder {
	return &TraceRecorder{streams: make(map[traceKey][][]int)}
}

// Record appends one token's access at a layer.
func (tr *TraceRecorder) Record(layer int, ta *sparsity.TokenAccess) {
	for g := 0; g < int(sparsity.NumGroups); g++ {
		acc := ta.Groups[g]
		if acc.Kind == sparsity.AccessUnused {
			continue
		}
		k := traceKey{layer, sparsity.GroupID(g)}
		var units []int
		if acc.Kind == sparsity.AccessSparse {
			units = append([]int(nil), acc.Units...)
		}
		tr.streams[k] = append(tr.streams[k], units)
	}
}

// Stream returns the recorded stream for (layer, group).
func (tr *TraceRecorder) Stream(layer int, g sparsity.GroupID) [][]int {
	return tr.streams[traceKey{layer, g}]
}
