package cache

import (
	"testing"

	"repro/internal/sparsity"
)

func TestPolicyStrings(t *testing.T) {
	for _, p := range []Policy{PolicyNone, PolicyLRU, PolicyLFU, PolicyBelady} {
		if p.String() == "invalid" {
			t.Fatalf("policy %d has no name", p)
		}
	}
}

func TestNoCacheAllMisses(t *testing.T) {
	g := NewGroupCache(PolicyNone, 100, 10)
	h, m := g.AccessSparse([]int{1, 2, 3})
	if h != 0 || m != 3 {
		t.Fatalf("no-cache: hits=%d misses=%d", h, m)
	}
	if g.Capacity() != 0 {
		t.Fatal("PolicyNone should clamp capacity to 0")
	}
}

func TestCacheWarmupThenHits(t *testing.T) {
	g := NewGroupCache(PolicyLRU, 4, 10)
	h, m := g.AccessSparse([]int{1, 2, 3})
	if h != 0 || m != 3 {
		t.Fatalf("cold: hits=%d misses=%d", h, m)
	}
	h, m = g.AccessSparse([]int{1, 2, 3})
	if h != 3 || m != 0 {
		t.Fatalf("warm: hits=%d misses=%d", h, m)
	}
	if got := g.Stats().HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v", got)
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	g := NewGroupCache(PolicyLRU, 2, 10)
	g.AccessSparse([]int{1})
	g.AccessSparse([]int{2})
	g.AccessSparse([]int{1}) // 1 now more recent than 2
	g.AccessSparse([]int{3}) // must evict 2
	if !g.Resident(1) || g.Resident(2) || !g.Resident(3) {
		t.Fatalf("LRU residency wrong: 1=%v 2=%v 3=%v", g.Resident(1), g.Resident(2), g.Resident(3))
	}
}

func TestLFUEvictsRarest(t *testing.T) {
	g := NewGroupCache(PolicyLFU, 2, 10)
	g.AccessSparse([]int{1})
	g.AccessSparse([]int{1})
	g.AccessSparse([]int{1})
	g.AccessSparse([]int{2})
	g.AccessSparse([]int{3}) // 2 has freq 1, 1 has freq 3 → evict 2
	if !g.Resident(1) || g.Resident(2) || !g.Resident(3) {
		t.Fatal("LFU eviction wrong")
	}
	if g.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", g.Stats().Evictions)
	}
}

func TestInFlightUnitsProtected(t *testing.T) {
	g := NewGroupCache(PolicyLRU, 2, 10)
	// Access 3 units with capacity 2: the first two fill the cache; the
	// third finds all residents in-flight and bypasses.
	h, m := g.AccessSparse([]int{1, 2, 3})
	if h != 0 || m != 3 {
		t.Fatalf("hits=%d misses=%d", h, m)
	}
	if !g.Resident(1) || !g.Resident(2) || g.Resident(3) {
		t.Fatal("bypass behavior wrong")
	}
	if g.Stats().Evictions != 0 {
		t.Fatal("in-flight units must not be evicted")
	}
}

func TestBeladyOptimalOnKnownTrace(t *testing.T) {
	// Classic example: capacity 2, accesses 1,2,3,1,2. Belady keeps 1 and 2
	// (evicting nothing useful for 3) → misses: 1,2,3 cold; 1,2 hit.
	stream := [][]int{{1}, {2}, {3}, {1}, {2}}
	b := NewGroupCache(PolicyBelady, 2, 5)
	b.SetTrace(stream)
	var hits, misses int
	for _, units := range stream {
		h, m := b.AccessSparse(units)
		hits += h
		misses += m
	}
	if misses != 3 || hits != 2 {
		t.Fatalf("belady: hits=%d misses=%d, want 2/3", hits, misses)
	}
	// LRU on the same trace does worse: 1,2,3 cold; then 1 evicted? LRU:
	// after {1,2}, access 3 evicts 1; access 1 evicts 2; access 2 evicts 3
	// → 5 misses, 0 hits.
	l := NewGroupCache(PolicyLRU, 2, 5)
	var lhits int
	for _, units := range stream {
		h, _ := l.AccessSparse(units)
		lhits += h
	}
	if lhits >= hits {
		t.Fatalf("LRU (%d hits) should not beat Belady (%d hits) here", lhits, hits)
	}
}

func TestBeladyNeverWorseThanLRUOrLFU(t *testing.T) {
	// Randomized traces: Belady hit count must be >= LRU and LFU.
	streams := [][][]int{}
	seed := uint64(12345)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1
		return int((seed >> 33) % uint64(n))
	}
	for trial := 0; trial < 5; trial++ {
		var stream [][]int
		for i := 0; i < 200; i++ {
			units := []int{next(20)}
			if next(3) == 0 {
				units = append(units, next(20))
			}
			stream = append(stream, units)
		}
		streams = append(streams, stream)
	}
	for _, stream := range streams {
		run := func(p Policy) int64 {
			g := NewGroupCache(p, 5, 20)
			if p == PolicyBelady {
				g.SetTrace(stream)
			}
			for _, u := range stream {
				g.AccessSparse(u)
			}
			return g.Stats().Hits
		}
		b, l, f := run(PolicyBelady), run(PolicyLRU), run(PolicyLFU)
		if b < l || b < f {
			t.Fatalf("Belady hits %d below LRU %d or LFU %d", b, l, f)
		}
	}
}

func TestAccessDensePinsToCapacity(t *testing.T) {
	g := NewGroupCache(PolicyLFU, 3, 10)
	h, m := g.AccessDense()
	if h != 3 || m != 7 {
		t.Fatalf("dense first access: hits=%d misses=%d", h, m)
	}
	h, m = g.AccessDense()
	if h != 3 || m != 7 {
		t.Fatalf("dense steady state: hits=%d misses=%d", h, m)
	}
	if g.Stats().Evictions != 0 {
		t.Fatal("dense access should never churn")
	}
}

func TestCapacityClamp(t *testing.T) {
	g := NewGroupCache(PolicyLRU, 100, 10)
	if g.Capacity() != 10 {
		t.Fatalf("capacity = %d, want clamp to 10", g.Capacity())
	}
	g2 := NewGroupCache(PolicyLRU, -5, 10)
	if g2.Capacity() != 0 {
		t.Fatal("negative capacity should clamp to 0")
	}
}

func denseUniverse() ([][sparsity.NumGroups]int, [][sparsity.NumGroups]int) {
	caps := make([][sparsity.NumGroups]int, 2)
	nunits := make([][sparsity.NumGroups]int, 2)
	for l := 0; l < 2; l++ {
		nunits[l][sparsity.GroupUpGate] = 8
		nunits[l][sparsity.GroupDown] = 16
		caps[l][sparsity.GroupUpGate] = 4
		caps[l][sparsity.GroupDown] = 8
	}
	return caps, nunits
}

func TestModelCacheAccessAndView(t *testing.T) {
	caps, nunits := denseUniverse()
	mc := NewModelCache(PolicyLFU, caps, nunits)
	var ta sparsity.TokenAccess
	ta.Groups[sparsity.GroupUpGate] = sparsity.GroupAccess{Kind: sparsity.AccessSparse, Units: []int{1, 2}}
	ta.Groups[sparsity.GroupDown] = sparsity.GroupAccess{Kind: sparsity.AccessSparse, Units: []int{5}}
	res := mc.Access(0, &ta)
	if res.MissUnits[sparsity.GroupUpGate] != 2 || res.MissUnits[sparsity.GroupDown] != 1 {
		t.Fatalf("cold access result: %+v", res)
	}
	if !mc.Cached(0, sparsity.GroupUpGate, 1) || mc.Cached(1, sparsity.GroupUpGate, 1) {
		t.Fatal("CacheView residency wrong")
	}
	res = mc.Access(0, &ta)
	if res.HitUnits[sparsity.GroupUpGate] != 2 {
		t.Fatalf("warm access result: %+v", res)
	}
	st := mc.TotalStats()
	if st.Hits != 3 || st.Misses != 3 {
		t.Fatalf("total stats: %+v", st)
	}
}

func TestModelCacheUnconfiguredGroupPanics(t *testing.T) {
	caps, nunits := denseUniverse()
	mc := NewModelCache(PolicyLRU, caps, nunits)
	var ta sparsity.TokenAccess
	ta.Groups[sparsity.GroupUpRows] = sparsity.GroupAccess{Kind: sparsity.AccessDense}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unconfigured group")
		}
	}()
	mc.Access(0, &ta)
}

func TestTraceRecorderRoundTrip(t *testing.T) {
	tr := NewTraceRecorder()
	var ta sparsity.TokenAccess
	ta.Groups[sparsity.GroupDown] = sparsity.GroupAccess{Kind: sparsity.AccessSparse, Units: []int{3, 1}}
	tr.Record(0, &ta)
	ta.Groups[sparsity.GroupDown] = sparsity.GroupAccess{Kind: sparsity.AccessSparse, Units: []int{2}}
	tr.Record(0, &ta)
	stream := tr.Stream(0, sparsity.GroupDown)
	if len(stream) != 2 || stream[0][0] != 3 || stream[1][0] != 2 {
		t.Fatalf("stream = %v", stream)
	}
	if got := tr.Stream(5, sparsity.GroupDown); got != nil {
		t.Fatal("unknown stream should be nil")
	}
}

func TestModelCacheBeladyIntegration(t *testing.T) {
	caps := make([][sparsity.NumGroups]int, 1)
	nunits := make([][sparsity.NumGroups]int, 1)
	nunits[0][sparsity.GroupDown] = 10
	caps[0][sparsity.GroupDown] = 2
	// Record a trace, install it, replay with identical accesses.
	tr := NewTraceRecorder()
	accesses := [][]int{{1}, {2}, {3}, {1}, {2}}
	for _, u := range accesses {
		var ta sparsity.TokenAccess
		ta.Groups[sparsity.GroupDown] = sparsity.GroupAccess{Kind: sparsity.AccessSparse, Units: u}
		tr.Record(0, &ta)
	}
	mc := NewModelCache(PolicyBelady, caps, nunits)
	mc.SetTraces(tr)
	for _, u := range accesses {
		var ta sparsity.TokenAccess
		ta.Groups[sparsity.GroupDown] = sparsity.GroupAccess{Kind: sparsity.AccessSparse, Units: u}
		mc.Access(0, &ta)
	}
	st := mc.TotalStats()
	if st.Hits != 2 || st.Misses != 3 {
		t.Fatalf("belady integration: %+v", st)
	}
}

func TestSetTraceOnNonBeladyPanics(t *testing.T) {
	g := NewGroupCache(PolicyLRU, 2, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.SetTrace(nil)
}

func TestHitRateEmpty(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("empty hit rate should be 0")
	}
}
