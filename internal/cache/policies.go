package cache

// This file adds the eviction policies beyond the paper's main trio —
// FIFO and an aging LFU — used by the extended fig11-style ablations and
// cmd/dipsim. FIFO is the classic baseline the OS literature compares
// against; aging LFU addresses plain LFU's known failure mode (stale
// frequency counts pinning units whose hot phase has passed), which
// matters for long decoding sessions whose activation statistics drift.

const (
	// PolicyFIFO evicts the unit resident longest, regardless of use.
	PolicyFIFO Policy = iota + 100
	// PolicyLFUAged is LFU whose counts decay by half every AgingPeriod
	// accesses, so long-stale popularity cannot pin a unit forever.
	PolicyLFUAged
)

// AgingPeriod is the number of token-accesses between count halvings for
// PolicyLFUAged.
const AgingPeriod = 256

// fifoState augments GroupCache for insertion-order tracking. To keep the
// core struct small, FIFO reuses lastUse as the insertion stamp: the stamp
// is written only on insert, never on hit.
func (g *GroupCache) noteInsert(u int) {
	if g.policy == PolicyFIFO {
		g.lastUse[u] = g.clock
	}
}

// maybeAge halves all frequency counters once per aging period.
func (g *GroupCache) maybeAge() {
	if g.policy != PolicyLFUAged {
		return
	}
	if g.clock%AgingPeriod != 0 {
		return
	}
	for i := range g.freq {
		g.freq[i] /= 2
	}
}
