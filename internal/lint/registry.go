package lint

// Analyzers returns the full registered suite in name order — the same
// list `repolint -list` prints and the README "Static analysis" section
// documents (a keep-in-sync test holds all three together).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Goroutine,
		Maporder,
		Obsguard,
		Seededrand,
		Wallclock,
	}
}

// Names returns the registered check names in registry order.
func Names() []string {
	return names(Analyzers())
}
