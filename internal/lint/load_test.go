package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// The fixture trees double as loader tests: multi-package modules with
// module-internal imports must come back type-checked, in import-path
// order.
func TestLoadTreeResolvesModuleInternalImports(t *testing.T) {
	pkgs, err := LoadTree(filepath.Join("testdata", "obsguard"), "fixture")
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
		if p.Types == nil || p.Info == nil {
			t.Errorf("package %s loaded without type information", p.Path)
		}
		if len(p.Files) == 0 {
			t.Errorf("package %s has no files", p.Path)
		}
	}
	want := []string{"fixture", "fixture/obs"}
	if strings.Join(paths, " ") != strings.Join(want, " ") {
		t.Fatalf("loaded %v, want %v", paths, want)
	}
}

// Nested package trees load whole, so path-scoped analyzer exemptions
// (goroutine's internal/parallel carve-out) see the real import path.
func TestLoadTreeBuildsNestedImportPaths(t *testing.T) {
	pkgs, err := LoadTree(filepath.Join("testdata", "goroutine"), "fixture")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range pkgs {
		if p.Path == "fixture/internal/parallel" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fixture/internal/parallel not loaded; got %d packages", len(pkgs))
	}
}

// Pattern selection narrows the analysis set without breaking the import
// universe: selecting one subtree must not drag sibling packages in, and a
// pattern that matches nothing is an error, not silence.
func TestLoadModulePatternSelection(t *testing.T) {
	pkgs, err := LoadModule("../..", "./internal/lint")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if !strings.HasPrefix(p.Path, "repro/internal/lint") {
			t.Errorf("pattern ./internal/lint selected %s", p.Path)
		}
	}
	if len(pkgs) == 0 {
		t.Fatal("pattern selected nothing")
	}
	// The lint package's own tests are in-package: the unit must carry them.
	hasTests := false
	for _, f := range pkgs[0].Files {
		if strings.HasSuffix(pkgs[0].Fset.Position(f.Pos()).Filename, "_test.go") {
			hasTests = true
		}
	}
	if !hasTests {
		t.Error("analysis unit omits in-package test files")
	}
	if _, err := LoadModule("../..", "./does/not/exist"); err == nil {
		t.Fatal("pattern matching nothing must error")
	}
}

// ParseDir is the syntax-only path the keep-in-sync tests share: no type
// info, but full file and source coverage of one directory.
func TestParseDirSyntaxOnly(t *testing.T) {
	pkg, err := ParseDir(".")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Name != "lint" {
		t.Fatalf("package name %q, want lint", pkg.Name)
	}
	if pkg.Types != nil || pkg.Info != nil {
		t.Error("syntax-only load must not type-check")
	}
	if len(pkg.Files) < 8 {
		t.Errorf("parsed %d files, expected the full package", len(pkg.Files))
	}
}
