package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Goroutine keeps internal/parallel the single blessed concurrency layer:
// its worker pool is what the determinism contract is proven over
// (index-ordered collection, bit-identical to serial), so a stray go
// statement or hand-rolled sync.WaitGroup fan-out elsewhere is an
// unproven parallel path.
var Goroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "no go statements or raw sync.WaitGroup fan-out outside internal/parallel — the worker pool is the one proven-deterministic concurrency layer",
	Run: func(p *Pass) {
		if strings.HasSuffix(strings.TrimSuffix(p.Pkg.Path, "_test"), "internal/parallel") {
			return
		}
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					p.Reportf(n.Pos(), "go statement outside internal/parallel: route fan-out through the shared worker pool so the determinism contract covers it")
				case *ast.SelectorExpr:
					obj, ok := p.Pkg.Info.Uses[n.Sel].(*types.TypeName)
					if ok && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
						p.Reportf(n.Pos(), "sync.WaitGroup outside internal/parallel: hand-rolled fan-out bypasses the worker pool's determinism guarantees")
					}
				}
				return true
			})
		}
	},
}
