package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file is the syntax-only side of the loader: one parse pass over a
// package directory plus the source-inspection helpers the repo's
// keep-in-sync tests share (flag-declaration extraction, string-list
// literals, exported-function scans). Before these existed, dipbench's and
// the experiment registry's tests each hand-rolled their own ast.Inspect
// walkers over their own parser calls; now every AST-shaped test and the
// analyzer suite go through this one code path.

// ParseDir parses every .go file in one directory — test files included,
// no type-checking — into a single syntax-only Package. Tests use it to
// introspect their own package's source; Types and Info are nil.
func ParseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir, Fset: token.NewFileSet(), Src: make(map[string][]byte)}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(pkg.Fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", path, err)
		}
		pkg.Src[path] = src
		pkg.Files = append(pkg.Files, f)
		if pkg.Name == "" && !strings.HasSuffix(f.Name.Name, "_test") {
			pkg.Name = f.Name.Name
		}
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return pkg, nil
}

// FlagDecls returns every `flag.X("name", ..., "usage")` declaration in
// the package as name → usage. Any flag-package call whose first and last
// arguments are string literals counts, so Bool/Int/String/Duration and
// the Var forms are all caught.
func FlagDecls(pkg *Package) map[string]string {
	flags := make(map[string]string)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "flag" {
				return true
			}
			name, ok1 := StrLit(call.Args[0])
			usage, ok2 := StrLit(call.Args[len(call.Args)-1])
			if ok1 && ok2 {
				flags[name] = usage
			}
			return true
		})
	}
	return flags
}

// StringLists returns every `[]string{...}` composite literal in the
// package whose elements are all string literals, in source order.
func StringLists(pkg *Package) [][]string {
	var lists [][]string
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			at, ok := lit.Type.(*ast.ArrayType)
			if !ok {
				return true
			}
			if id, ok := at.Elt.(*ast.Ident); !ok || id.Name != "string" {
				return true
			}
			elems := make([]string, 0, len(lit.Elts))
			for _, e := range lit.Elts {
				s, ok := StrLit(e)
				if !ok {
					return true
				}
				elems = append(elems, s)
			}
			lists = append(lists, elems)
			return true
		})
	}
	return lists
}

// ExportedFuncs returns the names of every exported top-level function
// (methods excluded) whose type matches the predicate, sorted.
func ExportedFuncs(pkg *Package, match func(*ast.FuncType) bool) []string {
	var names []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !fd.Name.IsExported() {
				continue
			}
			if match(fd.Type) {
				names = append(names, fd.Name.Name)
			}
		}
	}
	sort.Strings(names)
	return names
}

// StrLit unquotes a string-literal expression; ok is false for anything
// else.
func StrLit(e ast.Expr) (string, bool) {
	bl, ok := e.(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	return s, err == nil
}
