package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Obsguard protects the zero-alloc disabled-observer pledge: a nil
// *obs.Recorder is the tracing-off state, and the engine's tick hot path is
// alloc-pinned on it. Every call to Emit or an Observe* method must
// therefore be dominated by a nil guard on the same receiver expression —
// either wrapped in `if recv != nil { ... }` or preceded by
// `if recv == nil { return }` in an enclosing block — so detail strings and
// event structs are never built when tracing is off. The obs package itself
// (where the methods live) is exempt.
var Obsguard = &Analyzer{
	Name: "obsguard",
	Doc:  "every obs Emit/Observe* call site nil-guards the recorder before building the event, keeping the disabled path zero-alloc",
	Run:  runObsguard,
}

func runObsguard(p *Pass) {
	for _, f := range p.Pkg.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || !isRecorderEmission(p, fn) {
				return true
			}
			recv := types.ExprString(sel.X)
			if !nilGuarded(call, sel.X, recv, stack) {
				p.Reportf(call.Pos(), "unguarded %s.%s: nil-check the recorder before building the event (a nil recorder is tracing off, pinned zero-alloc)", recv, sel.Sel.Name)
			}
			return true
		})
	}
}

// isRecorderEmission matches methods named Emit or Observe* whose receiver
// is *Recorder from a package named obs — excluding the defining package,
// whose own methods and tests hold the recorder by value.
func isRecorderEmission(p *Pass, fn *types.Func) bool {
	if fn.Name() != "Emit" && !strings.HasPrefix(fn.Name(), "Observe") {
		return false
	}
	recv := fn.Signature().Recv()
	if recv == nil {
		return false
	}
	ptr, ok := recv.Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "Recorder" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Name() == "obs" && pkg != p.Pkg.Types
}

// nilGuarded reports whether the call is dominated by a nil check on the
// receiver expression: an enclosing `if recv != nil` whose body holds the
// call, or an earlier `if recv == nil { return/continue/... }` in an
// enclosing block. The search stops at the innermost function boundary —
// a guard outside a closure does not dominate the closure's body.
func nilGuarded(call *ast.CallExpr, recvExpr ast.Expr, recv string, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		case *ast.IfStmt:
			if s.Body.Pos() <= call.Pos() && call.End() <= s.Body.End() &&
				condCompares(s.Cond, recv, token.NEQ, token.LAND) {
				return true
			}
		case *ast.BlockStmt:
			for _, st := range s.List {
				if st.End() > call.Pos() {
					break
				}
				ifs, ok := st.(*ast.IfStmt)
				if ok && condCompares(ifs.Cond, recv, token.EQL, token.LOR) && terminates(ifs.Body) {
					return true
				}
			}
		}
	}
	return false
}

// condCompares reports whether cond contains `recv <op> nil` as a
// combine-joined conjunct/disjunct (LAND for != guards: every branch into
// the body passed the check; LOR for == early exits: the nil case always
// takes the exit).
func condCompares(cond ast.Expr, recv string, op, combine token.Token) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if c.Op == combine {
			return condCompares(c.X, recv, op, combine) || condCompares(c.Y, recv, op, combine)
		}
		if c.Op != op {
			return false
		}
		return (isNilIdent(c.X) && types.ExprString(c.Y) == recv) ||
			(isNilIdent(c.Y) && types.ExprString(c.X) == recv)
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether the block always leaves the enclosing scope:
// its last statement is a return, branch, or panic.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}
