package lint

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// fixtureWantRe matches a `// want "regexp"` expectation comment in a
// testdata fixture: the line it sits on must produce an unsuppressed
// diagnostic whose message matches the pattern.
var fixtureWantRe = regexp.MustCompile(`// want ("(?:[^"\\]|\\.)*")`)

// CheckFixture loads the fixture tree at root as a miniature module
// (module path "fixture") and runs the analyzers over it, diffing produced
// diagnostics against the fixtures' `// want "regexp"` comments. It
// returns the number of suppressed findings (so directive tests can assert
// suppressions landed) and a list of mismatches; an empty problems list
// means the fixture behaved exactly as annotated.
func CheckFixture(root string, analyzers ...*Analyzer) (suppressed int, problems []string, err error) {
	pkgs, err := LoadTree(root, "fixture")
	if err != nil {
		return 0, nil, err
	}
	res := Run(pkgs, analyzers)

	type want struct {
		re      *regexp.Regexp
		raw     string
		line    int
		file    string
		matched bool
	}
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := fixtureWantRe.FindStringSubmatch(c.Text)
					if m == nil {
						if strings.Contains(c.Text, "// want ") {
							pos := pkg.Fset.Position(c.Pos())
							return 0, nil, fmt.Errorf("lint: malformed want comment at %s:%d: %s", pos.Filename, pos.Line, c.Text)
						}
						continue
					}
					raw, err := strconv.Unquote(m[1])
					if err != nil {
						return 0, nil, err
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						return 0, nil, fmt.Errorf("lint: bad want pattern %q: %w", raw, err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &want{re: re, raw: raw, line: pos.Line, file: pos.Filename})
				}
			}
		}
	}

	for _, d := range res.Diags {
		if d.Suppressed {
			suppressed++
			continue
		}
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched, matched = true, true
				break
			}
		}
		if !matched {
			problems = append(problems, "unexpected diagnostic: "+d.String())
		}
	}
	for _, w := range wants {
		if !w.matched {
			problems = append(problems, fmt.Sprintf("%s:%d: want %q matched no diagnostic", w.file, w.line, w.raw))
		}
	}
	return suppressed, problems, nil
}
