package lint

import (
	"testing"
)

// The suite's acceptance test on itself: `repolint ./...` is clean on this
// repo. Every violation an analyzer can catch has either been fixed or
// carries a justified //lint:allow directive — and those documented
// exemptions must exist (the Wall-annotation sites), so a suppression
// count of zero would mean the directives rotted away.
func TestRepolintIsCleanOnThisRepo(t *testing.T) {
	pkgs, err := LoadModule("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	res := Run(pkgs, Analyzers())
	for _, d := range res.Diags {
		if !d.Suppressed {
			t.Error(d.String())
		}
	}
	if res.Suppressed == 0 {
		t.Error("no suppressed findings: the justified Wall-annotation directives are gone")
	}
	if res.Packages < 25 {
		t.Errorf("only %d packages loaded; the module walk lost most of the tree", res.Packages)
	}
}
