package fixture

import "sync"

// Fan hand-rolls goroutine fan-out — outside the blessed worker pool, so
// nothing proves its collection order deterministic.
func Fan(n int) {
	var wg sync.WaitGroup // want "sync.WaitGroup outside internal/parallel"
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want "go statement outside internal/parallel"
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Mutexes and other sync primitives are not fan-out: no finding.
func Locked(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}
