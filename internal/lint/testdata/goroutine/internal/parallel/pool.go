// Package parallel stands in for the repo's one blessed concurrency layer:
// inside it, go statements and WaitGroups are the implementation, not a
// violation.
package parallel

import "sync"

// Fan is the worker pool itself: no findings here.
func Fan(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go wg.Done()
	}
	wg.Wait()
}
