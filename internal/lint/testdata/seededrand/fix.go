package fixture

import (
	"math/rand"
	rv2 "math/rand/v2"
)

// Draw uses the process-wide source — banned: the sequence depends on
// program-wide call order, not configuration.
func Draw() int {
	x := rand.Intn(10) // want "global math/rand function Intn"
	_ = rand.Float64() // want "global math/rand function Float64"
	rand.Shuffle(1, func(i, j int) {}) // want "global math/rand function Shuffle"
	return x
}

// DrawV2 reaches the v2 global source the same way.
func DrawV2() int {
	return rv2.IntN(3) // want "global math/rand function IntN"
}

// DrawSeeded builds generators from explicit seeds — the sanctioned path;
// method calls on the constructed generator are fine.
func DrawSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	_ = r.Float64()
	r2 := rv2.New(rv2.NewPCG(uint64(seed), 1))
	_ = r2.IntN(3)
	return r.Intn(10)
}
