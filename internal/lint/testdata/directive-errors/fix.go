package fixture

import "time"

// Typo names a check that does not exist: the directive is an error and
// the finding it meant to suppress survives.
func Typo() time.Time {
	return time.Now() //lint:allow warpclock Wall annotation only
}

// Bare has no justification: a suppression without a reason is an error,
// and the finding survives.
func Bare() time.Time {
	return time.Now() //lint:allow wallclock
}

// Stale allows a check that never fires here: the unused directive is an
// error so documented exemptions cannot rot in place.
func Stale() int {
	//lint:allow maporder stale exemption kept after a refactor
	return 1
}

// Mismatch suppresses nothing because it names the wrong check for the
// finding on its line: the finding survives and the directive is unused.
func Mismatch() time.Time {
	return time.Now() //lint:allow maporder wrong check for a wallclock site
}
