package fixture

import (
	"fmt"
	"sort"
	"strings"
)

// Keys collects then sorts — the sanctioned idiom, no finding: the order
// leak dies at the sort.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Rows sorts with sort.Slice — also recognized.
func Rows(m map[string]int) [][2]string {
	var rows [][2]string
	for k, v := range m {
		rows = append(rows, [2]string{k, fmt.Sprint(v)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i][0] < rows[j][0] })
	return rows
}

// Leak appends without sorting — iteration order escapes to the caller.
func Leak(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "appending to out inside a map range"
	}
	return out
}

// Sum accumulates floats — float addition does not commute bitwise, so the
// result depends on iteration order.
func Sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "accumulating floats into total"
	}
	return total
}

// Count accumulates ints — commutative, no finding.
func Count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Invert writes a map — order-insensitive, no finding.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Print writes output in iteration order.
func Print(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside a map range"
	}
}

// Render streams into a builder in iteration order.
func Render(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want "WriteString inside a map range"
	}
	return sb.String()
}

type bus struct{ events []string }

func (b *bus) Emit(ev string) { b.events = append(b.events, ev) }

// Events emits on a bus in iteration order.
func Events(b *bus, m map[string]int) {
	for k := range m {
		b.Emit(k) // want "emitting events inside a map range"
	}
}

// Scratch appends to a loop-local slice — reset every iteration, carries
// no order between iterations, no finding.
func Scratch(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// Allowed documents a deliberately order-free probe with a justified
// suppression.
func Allowed(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //lint:allow maporder the caller treats this as an unordered set
	}
	return out
}
