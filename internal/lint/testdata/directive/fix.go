package fixture

import "time"

// Inline suppresses on the finding's own line.
func Inline() time.Time {
	return time.Now() //lint:allow wallclock Wall annotation only
}

// Above uses the standalone-comment form: the directive documents the line
// directly below it.
func Above() time.Time {
	//lint:allow wallclock Wall annotation documented above the call
	return time.Now()
}

// Multi suppresses per-site across a map range: one wallclock probe and
// one append consumed as an unordered set, each justified where it fires.
func Multi(m map[string]time.Time) []time.Time {
	var out []time.Time
	for _, t := range m {
		_ = time.Since(t)    //lint:allow wallclock probe wall time per entry
		out = append(out, t) //lint:allow maporder,wallclock consumed as an unordered set
	}
	return out
}
