package fixture

import (
	"fmt"

	"fixture/obs"
)

type engine struct {
	obs *obs.Recorder
}

// Guarded wraps emission in the nil check — the sanctioned pattern.
func (e *engine) Guarded(tick int) {
	if e.obs != nil {
		e.obs.Emit(obs.Event{Tick: tick, Detail: fmt.Sprintf("t=%d", tick)})
	}
}

// GuardedConjunct passes when the nil check is one conjunct of the
// condition — every path into the body crossed it.
func (e *engine) GuardedConjunct(tick int) {
	if tick > 0 && e.obs != nil {
		e.obs.Emit(obs.Event{Tick: tick})
	}
}

// EarlyReturn guards with the helper idiom: bail out once, emit freely.
func (e *engine) EarlyReturn(tick int) {
	if e.obs == nil {
		return
	}
	e.obs.ObserveQueue(tick)
	e.obs.Emit(obs.Event{Tick: tick})
}

// Unguarded builds the event unconditionally — a nil recorder panics, and
// the disabled path pays the detail formatting.
func (e *engine) Unguarded(tick int) {
	e.obs.Emit(obs.Event{Tick: tick, Detail: fmt.Sprintf("t=%d", tick)}) // want "unguarded e.obs.Emit"
}

// WrongGuard nil-checks a different expression than it emits on.
func (e *engine) WrongGuard(tick int, other *obs.Recorder) {
	if other != nil {
		e.obs.Emit(obs.Event{Tick: tick}) // want "unguarded e.obs.Emit"
	}
}

// Closure loses the outer guard at the function boundary — the closure may
// run long after the guard was checked.
func (e *engine) Closure(tick int) func() {
	if e.obs == nil {
		return func() {}
	}
	return func() {
		e.obs.Emit(obs.Event{Tick: tick}) // want "unguarded e.obs.Emit"
	}
}

// Sample shows Observe* methods need the same guard as Emit.
func (e *engine) Sample(depth int) {
	e.obs.ObserveQueue(depth) // want "unguarded e.obs.ObserveQueue"
}

type cluster struct{ recs []*obs.Recorder }

// Indexed guards an indexed receiver with the same expression — the
// cluster's per-node recorder pattern.
func (c *cluster) Indexed(node, tick int) {
	if c.recs[node] != nil {
		c.recs[node].Emit(obs.Event{Tick: tick})
	}
}
