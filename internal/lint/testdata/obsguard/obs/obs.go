// Package obs is a miniature of the real recorder: a nil *Recorder means
// tracing is off, and every emission method dereferences the receiver, so
// call sites must nil-guard.
package obs

// Event is one record.
type Event struct {
	Tick   int
	Detail string
}

// Recorder collects events; nil is the disabled observer.
type Recorder struct {
	events []Event
	depths []int
}

// Emit appends one event.
func (r *Recorder) Emit(ev Event) { r.events = append(r.events, ev) }

// ObserveQueue records one depth sample.
func (r *Recorder) ObserveQueue(depth int) { r.depths = append(r.depths, depth) }
