package fixture

import (
	"time"

	clock "time"
)

// Elapsed reads the wall clock every way the analyzer bans.
func Elapsed(start time.Time) time.Duration {
	now := time.Now()            // want "wall-clock call time.Now"
	_ = time.Since(start)        // want "wall-clock call time.Since"
	_ = time.Until(start)        // want "wall-clock call time.Until"
	time.Sleep(time.Millisecond) // want "wall-clock call time.Sleep"
	return now.Sub(start)
}

// Aliased hides the import behind another name; the check resolves the
// object, not the identifier.
func Aliased() time.Time {
	return clock.Now() // want "wall-clock call time.Now"
}

// Pure time arithmetic on caller-supplied values is deterministic: no
// findings below.
func Pure(a, b time.Time, d time.Duration) time.Duration {
	return b.Sub(a) + d.Round(time.Millisecond)
}

// Wall is the sanctioned annotation pattern: a justified suppression.
func Wall() time.Time {
	return time.Now() //lint:allow wallclock Wall annotation only; everything below it stays bit-identical
}
