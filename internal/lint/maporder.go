package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Maporder flags `range` over a map whose body does something
// iteration-order dependent — appends to a slice, emits an event, writes
// output, or accumulates floats (float addition does not commute bitwise).
// Map iteration order is randomized per run, so any of these leaks
// nondeterminism straight into a report, log, or artifact. The sanctioned
// escape is the collect-keys-then-sort idiom: an append whose target is
// later passed to a sort/slices call in the same function is exempt, since
// the order leak dies at the sort.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "no order-dependent work (slice appends, event emission, output writes, float accumulation) inside a map range unless the result is sorted",
	Run:  runMaporder,
}

func runMaporder(p *Pass) {
	for _, f := range p.Pkg.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv := p.Pkg.Info.TypeOf(rng.X)
			if tv == nil {
				return true
			}
			if _, isMap := tv.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(p, rng, enclosingFuncBody(stack))
			return true
		})
	}
}

// enclosingFuncBody returns the innermost function body on the stack — the
// scope the sorted-afterwards exemption searches.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func checkMapRange(p *Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(p, rng, fnBody, n)
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if obj := p.Pkg.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" &&
				(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
				p.Reportf(n.Pos(), "fmt.%s inside a map range writes output in iteration order: iterate sorted keys instead", name)
				return true
			}
			switch name {
			case "Emit":
				p.Reportf(n.Pos(), "emitting events inside a map range makes the log iteration-order dependent: iterate sorted keys instead")
			case "Write", "WriteString", "WriteByte", "WriteRune":
				p.Reportf(n.Pos(), "%s inside a map range writes output in iteration order: iterate sorted keys instead", name)
			}
		}
		return true
	})
}

func checkMapRangeAssign(p *Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ASSIGN:
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok || fun.Name != "append" {
			return
		}
		target := as.Lhs[0]
		if !declaredBefore(p, target, rng.Pos()) || sortedAfter(p, fnBody, rng, target) {
			return
		}
		p.Reportf(as.Pos(), "appending to %s inside a map range records iteration order: sort the result afterwards or iterate sorted keys", types.ExprString(target))
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := as.Lhs[0]
		tv := p.Pkg.Info.TypeOf(lhs)
		if tv == nil {
			return
		}
		basic, ok := tv.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsFloat == 0 || !declaredBefore(p, lhs, rng.Pos()) {
			return
		}
		p.Reportf(as.Pos(), "accumulating floats into %s inside a map range is iteration-order dependent (float addition does not commute bitwise): iterate sorted keys", types.ExprString(lhs))
	}
}

// declaredBefore reports whether the assignment target outlives the range
// body — an identifier declared before the range, or any selector/index
// expression (whose base necessarily does). Targets scoped inside the loop
// body restart every iteration and carry no order between iterations.
func declaredBefore(p *Pass, target ast.Expr, rangePos token.Pos) bool {
	id, ok := target.(*ast.Ident)
	if !ok {
		return true
	}
	obj := p.Pkg.Info.Uses[id]
	if obj == nil {
		obj = p.Pkg.Info.Defs[id]
	}
	return obj == nil || obj.Pos() < rangePos
}

// sortedAfter reports whether the enclosing function sorts the append
// target after the range ends — the collect-then-sort idiom.
func sortedAfter(p *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, target ast.Expr) bool {
	if fnBody == nil {
		return false
	}
	want := types.ExprString(target)
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() < rng.End() || len(call.Args) == 0 {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := p.Pkg.Info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		if path := obj.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		if types.ExprString(call.Args[0]) == want {
			found = true
		}
		return !found
	})
	return found
}
