// Package lint is the repo's std-lib-only static-analysis framework: a
// shared package loader (go/parser + go/types, no external dependencies,
// matching the module's zero-dep stance), a small analyzer interface, and
// `//lint:allow <check> <justification>` suppression directives.
//
// The analyzers encode the invariants the runtime tests sample but cannot
// prove: the bit-identical contract (no wall-clock reads, no unseeded
// randomness, no iteration-order-dependent map ranges, all fan-out through
// internal/parallel) and the zero-alloc disabled-observer pledge (every obs
// emission site nil-guards the recorder). `cmd/repolint` runs the suite
// over ./... and exits nonzero on any unsuppressed finding, so every future
// package inherits the determinism contract at compile time instead of
// hoping a seed exercises the violation.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Analyzer is one named check over a loaded package. Name is the registry
// token that `//lint:allow` directives and `repolint -list` reference; Doc
// is the one-line contract the check enforces.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is one analyzer's view of one package: the type-checked unit plus
// the diagnostic sink.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records one finding at pos. Suppression directives are applied
// after the analyzer runs, so analyzers report unconditionally.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding. Suppressed findings stay in the result — the
// repolint summary counts them — but do not fail the run.
type Diagnostic struct {
	Check      string
	Pos        token.Position
	Message    string
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// DirectiveCheck is the pseudo-check name under which directive-parsing
// errors (unknown check name, missing justification, directive that
// suppresses nothing) are reported. It is not a registered analyzer and
// cannot itself be suppressed.
const DirectiveCheck = "directive"

// Result is one suite run: every diagnostic (suppressed included) in
// position order, plus the counts the repolint summary line prints.
type Result struct {
	Diags      []Diagnostic
	Findings   int // unsuppressed diagnostics, directive errors included
	Suppressed int
	Packages   int
}

// Run executes the analyzers over the packages, applies the packages'
// `//lint:allow` directives, and validates the directives themselves
// (unknown check names and missing justifications are findings; so is a
// directive that suppresses nothing from the analyzers that ran).
func Run(pkgs []*Package, analyzers []*Analyzer) *Result {
	res := &Result{Packages: len(pkgs)}
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
		diags = append(diags, applyDirectives(pkg, diags, analyzers)...)
		res.Diags = append(res.Diags, diags...)
	}
	sort.SliceStable(res.Diags, func(i, j int) bool {
		a, b := res.Diags[i], res.Diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	for _, d := range res.Diags {
		if d.Suppressed {
			res.Suppressed++
		} else {
			res.Findings++
		}
	}
	return res
}
