package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// Each analyzer runs over its fixture tree and must produce exactly the
// diagnostics the `// want "regexp"` comments annotate — a seeded
// violation per banned shape, plus clean shapes that must stay silent.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		analyzer   *Analyzer
		suppressed int // justified //lint:allow sites baked into the fixture
	}{
		{Wallclock, 1},
		{Seededrand, 0},
		{Maporder, 1},
		{Goroutine, 0},
		{Obsguard, 0},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.analyzer.Name)
			suppressed, problems, err := CheckFixture(dir, tc.analyzer)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range problems {
				t.Error(p)
			}
			if suppressed != tc.suppressed {
				t.Errorf("suppressed = %d, want %d", suppressed, tc.suppressed)
			}
		})
	}
}

// The suppression happy path: every directive form (inline, standalone
// line above, multi-check) suppresses its finding, so the directive
// fixture runs fully clean with all suppressions counted.
func TestDirectivesSuppressAndAreCounted(t *testing.T) {
	suppressed, problems, err := CheckFixture(filepath.Join("testdata", "directive"), Analyzers()...)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
	// Inline + Above + Multi's two sites = four suppressed findings.
	if suppressed != 4 {
		t.Errorf("suppressed = %d, want 4", suppressed)
	}
}

// Directive misuse is itself a finding: unknown check names, missing
// justifications, and directives that suppress nothing all surface, and
// the findings those directives failed to suppress survive.
func TestDirectiveErrors(t *testing.T) {
	pkgs, err := LoadTree(filepath.Join("testdata", "directive-errors"), "fixture")
	if err != nil {
		t.Fatal(err)
	}
	res := Run(pkgs, Analyzers())
	if res.Suppressed != 0 {
		t.Errorf("suppressed = %d, want 0: every directive in the fixture is broken", res.Suppressed)
	}
	wantMsgs := []string{
		`unknown check "warpclock"`,
		"no justification",
		"suppresses nothing",
	}
	for _, want := range wantMsgs {
		found := false
		for _, d := range res.Diags {
			if d.Check == DirectiveCheck && strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no directive error containing %q in:\n%s", want, render(res.Diags))
		}
	}
	// The three wallclock findings the broken directives covered survive
	// unsuppressed (Typo, Bare, Mismatch).
	wall := 0
	for _, d := range res.Diags {
		if d.Check == "wallclock" && !d.Suppressed {
			wall++
		}
	}
	if wall != 3 {
		t.Errorf("unsuppressed wallclock findings = %d, want 3:\n%s", wall, render(res.Diags))
	}
	// Two unused directives: Stale and Mismatch.
	unused := 0
	for _, d := range res.Diags {
		if d.Check == DirectiveCheck && strings.Contains(d.Message, "suppresses nothing") {
			unused++
		}
	}
	if unused != 2 {
		t.Errorf("unused-directive errors = %d, want 2:\n%s", unused, render(res.Diags))
	}
}

func render(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
