package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces a suppression comment:
//
//	//lint:allow <check>[,<check>...] <justification>
//
// The directive suppresses matching findings on its own line, or — when the
// comment stands alone on a line — on the line directly below it. The
// justification is mandatory: a suppression is a documented exemption, not
// an off switch. Unknown check names, missing justifications, and
// directives that suppress nothing are themselves findings.
const directivePrefix = "//lint:allow"

type directive struct {
	pos     token.Position
	checks  []string
	ownLine bool
	used    bool
}

// applyDirectives parses every suppression directive in the package, marks
// matching diagnostics suppressed in place, and returns the directive
// errors as additional diagnostics.
func applyDirectives(pkg *Package, diags []Diagnostic, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var dirs []*directive
	var errs []Diagnostic
	report := func(pos token.Position, msg string) {
		errs = append(errs, Diagnostic{Check: DirectiveCheck, Pos: pos, Message: msg})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if rest == "" || rest[0] != ' ' && rest[0] != '\t' {
					report(pos, "malformed directive: want //lint:allow <check> <justification>")
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(pos, "directive names no check: want //lint:allow <check> <justification>")
					continue
				}
				d := &directive{pos: pos, ownLine: ownLine(pkg, pos)}
				bad := false
				for _, name := range strings.Split(fields[0], ",") {
					if !known[name] {
						report(pos, "directive allows unknown check "+quote(name)+"; registered checks: "+strings.Join(names(analyzers), ", "))
						bad = true
						continue
					}
					d.checks = append(d.checks, name)
				}
				if len(fields) < 2 {
					report(pos, "directive has no justification: say why the site is exempt")
					bad = true
				}
				if !bad {
					dirs = append(dirs, d)
				}
			}
		}
	}
	for i := range diags {
		for _, d := range dirs {
			if d.covers(diags[i]) {
				diags[i].Suppressed = true
				d.used = true
				break
			}
		}
	}
	for _, d := range dirs {
		if !d.used {
			report(d.pos, "directive suppresses nothing: remove it or move it onto the finding's line")
		}
	}
	return errs
}

func (d *directive) covers(diag Diagnostic) bool {
	if diag.Pos.Filename != d.pos.Filename {
		return false
	}
	if diag.Pos.Line != d.pos.Line && !(d.ownLine && diag.Pos.Line == d.pos.Line+1) {
		return false
	}
	for _, c := range d.checks {
		if c == diag.Check {
			return true
		}
	}
	return false
}

// ownLine reports whether only whitespace precedes the comment on its line
// — such a directive documents the line below it.
func ownLine(pkg *Package, pos token.Position) bool {
	src, ok := pkg.Src[pos.Filename]
	if !ok || pos.Offset > len(src) {
		return false
	}
	line := src[pos.Offset-(pos.Column-1) : pos.Offset]
	return len(strings.TrimSpace(string(line))) == 0
}

func names(analyzers []*Analyzer) []string {
	out := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		out = append(out, a.Name)
	}
	return out
}

func quote(s string) string { return `"` + s + `"` }

// inspectStack walks the file like ast.Inspect but hands the callback the
// path of enclosing nodes (outermost first, current node excluded). The
// guard-seeking analyzers use it to find enclosing if statements and
// preceding early returns.
func inspectStack(f *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// No push: ast.Inspect skips the subtree and its nil pop.
			return false
		}
		stack = append(stack, n)
		return true
	})
}
