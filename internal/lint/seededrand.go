package lint

import (
	"go/ast"
	"go/types"
)

// seededrandCtors are the math/rand entry points that build a generator
// from a caller-supplied seed — the only sanctioned way to touch the
// package. Everything else at package level drives the shared global
// source, whose sequence depends on program-wide call order (and, unseeded,
// on the runtime), exactly the nondeterminism the stateless-hash discipline
// in faults/cluster exists to avoid.
var seededrandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Seededrand bans the global math/rand functions. Randomness must flow from
// an explicitly seeded generator (tensor.NewRNG, rand.New(rand.NewSource(
// seed))) or a stateless hash of (seed, coordinates), so every draw is a
// pure function of configuration.
var Seededrand = &Analyzer{
	Name: "seededrand",
	Doc:  "no global math/rand functions — randomness comes from explicitly seeded generators or stateless hashes of (seed, coordinates)",
	Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || obj.Pkg() == nil {
					return true
				}
				if path := obj.Pkg().Path(); path != "math/rand" && path != "math/rand/v2" {
					return true
				}
				// Methods on an explicitly constructed *rand.Rand are fine;
				// only package-level functions reach the global source.
				if obj.Signature().Recv() != nil || seededrandCtors[obj.Name()] {
					return true
				}
				p.Reportf(sel.Pos(), "global math/rand function %s draws from the process-wide source: construct a generator from an explicit seed instead", obj.Name())
				return true
			})
		}
	},
}
