package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one analysis unit: a type-checked set of files sharing a
// package clause. A directory yields up to two units — the package itself
// (library files plus in-package _test.go files, checked together) and the
// external test package (package foo_test), which imports the former.
type Package struct {
	// Path is the unit's import path within the module; external test
	// units carry the real compiler spelling, "<path>_test" on the
	// package-under-test's path.
	Path string
	Name string
	Dir  string

	Fset  *token.FileSet
	Files []*ast.File
	// Src holds each file's source bytes by filename — the directive
	// parser uses it to decide whether a comment stands on its own line.
	Src map[string][]byte

	// Types and Info are nil for syntax-only loads (ParseDir).
	Types *types.Package
	Info  *types.Info
}

// loader parses every directory under one module root once and
// type-checks units on demand, resolving module-internal imports from its
// own results and everything else through the toolchain importers.
type loader struct {
	fset    *token.FileSet
	root    string
	modpath string

	units map[string]*dirUnit // keyed by import path
	src   map[string][]byte

	gcImp  types.Importer
	srcImp types.Importer
	extern map[string]*types.Package

	checking map[string]bool // cycle detection
}

// dirUnit is one parsed directory, files split by package clause.
type dirUnit struct {
	dir, path string
	lib       []*ast.File // package P, non-_test.go
	inTest    []*ast.File // package P, _test.go
	extTest   []*ast.File // package P_test

	libOnly  *types.Package // lib files alone: the import universe entry
	libInfo  *types.Info
	combined *types.Package // lib + in-package tests: what extTest imports
	combInfo *types.Info
}

// LoadModule locates the module root at or above dir (via go.mod), parses
// and type-checks the whole module, and returns the analysis units selected
// by the patterns ("./..." for everything, "dir/..." for a subtree, or a
// plain directory), in import-path order. The entire tree is always parsed
// — an out-of-pattern package can still be an in-pattern package's import —
// but only in-pattern units are returned for analysis.
func LoadModule(dir string, patterns ...string) ([]*Package, error) {
	root, modpath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	return load(root, modpath, dir, patterns)
}

// LoadTree loads a bare source tree with an explicit module path and no
// go.mod — the fixture runner uses it to type-check each analyzer's
// testdata directory as a miniature module.
func LoadTree(root, modpath string) ([]*Package, error) {
	return load(root, modpath, root, []string{"./..."})
}

func load(root, modpath, base string, patterns []string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	base, err = filepath.Abs(base)
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:     token.NewFileSet(),
		root:     root,
		modpath:  modpath,
		units:    make(map[string]*dirUnit),
		src:      make(map[string][]byte),
		extern:   make(map[string]*types.Package),
		checking: make(map[string]bool),
	}
	l.gcImp = importer.Default()
	l.srcImp = importer.ForCompiler(l.fset, "source", nil)
	if err := l.parseTree(); err != nil {
		return nil, err
	}
	want, err := l.selectDirs(base, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, path := range sortedKeys(l.units) {
		u := l.units[path]
		if !want[u.dir] {
			continue
		}
		if len(u.lib)+len(u.inTest) > 0 {
			if _, err := l.combinedPackage(path); err != nil {
				return nil, err
			}
			pkgs = append(pkgs, &Package{
				Path: path, Name: u.combined.Name(), Dir: u.dir,
				Fset: l.fset, Files: append(append([]*ast.File(nil), u.lib...), u.inTest...),
				Src: l.src, Types: u.combined, Info: u.combInfo,
			})
		}
		if len(u.extTest) > 0 {
			tp, info, err := l.checkExternalTest(u)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, &Package{
				Path: path + "_test", Name: tp.Name(), Dir: u.dir,
				Fset: l.fset, Files: append([]*ast.File(nil), u.extTest...),
				Src: l.src, Types: tp, Info: info,
			})
		}
	}
	return pkgs, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modpath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
	}
}

// parseTree parses every .go file under the root, skipping testdata,
// vendor, hidden, and underscore directories.
func (l *loader) parseTree() error {
	return filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasPrefix(d.Name(), ".") {
			return nil
		}
		return l.parseFile(path)
	})
}

func (l *loader) parseFile(path string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	f, err := parser.ParseFile(l.fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return fmt.Errorf("lint: parse %s: %w", path, err)
	}
	l.src[path] = src
	dir := filepath.Dir(path)
	ipath, err := l.importPath(dir)
	if err != nil {
		return err
	}
	u := l.units[ipath]
	if u == nil {
		u = &dirUnit{dir: dir, path: ipath}
		l.units[ipath] = u
	}
	switch {
	case strings.HasSuffix(f.Name.Name, "_test"):
		u.extTest = append(u.extTest, f)
	case strings.HasSuffix(path, "_test.go"):
		u.inTest = append(u.inTest, f)
	default:
		u.lib = append(u.lib, f)
	}
	return nil
}

// importPath maps a directory under the root to its module import path.
func (l *loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modpath, nil
	}
	return l.modpath + "/" + filepath.ToSlash(rel), nil
}

// selectDirs expands the patterns (relative to base) into the set of
// directories whose units the caller wants analyzed.
func (l *loader) selectDirs(base string, patterns []string) (map[string]bool, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	want := make(map[string]bool)
	for _, pat := range patterns {
		sub, all := strings.CutSuffix(pat, "...")
		sub = strings.TrimSuffix(sub, "/")
		if sub == "" || sub == "." {
			sub = base
		} else if !filepath.IsAbs(sub) {
			sub = filepath.Join(base, sub)
		}
		abs, err := filepath.Abs(sub)
		if err != nil {
			return nil, err
		}
		matched := false
		for _, u := range l.units {
			if u.dir == abs || (all && (u.dir == abs || strings.HasPrefix(u.dir, abs+string(filepath.Separator)))) {
				want[u.dir] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("lint: pattern %q matches no packages under %s", pat, l.root)
		}
	}
	return want, nil
}

// libPackage type-checks a module-internal package's library files alone —
// the entry every other package's imports resolve against.
func (l *loader) libPackage(path string) (*types.Package, error) {
	u, ok := l.units[path]
	if !ok {
		return nil, fmt.Errorf("lint: import %q does not resolve to a directory under %s", path, l.root)
	}
	if u.libOnly != nil {
		return u.libOnly, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	if len(u.lib) == 0 {
		return nil, fmt.Errorf("lint: package %q has only test files and cannot be imported", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)
	tp, info, err := l.check(path, u.lib, nil)
	if err != nil {
		return nil, err
	}
	u.libOnly, u.libInfo = tp, info
	return tp, nil
}

// combinedPackage type-checks a unit's library and in-package test files
// together — the view analyzers walk, and the package external tests
// import (in-package test files may export identifiers external tests use).
func (l *loader) combinedPackage(path string) (*types.Package, error) {
	u := l.units[path]
	if u.combined != nil {
		return u.combined, nil
	}
	if len(u.inTest) == 0 {
		// No in-package tests: the combined unit is the library unit.
		if _, err := l.libPackage(path); err != nil {
			return nil, err
		}
		u.combined, u.combInfo = u.libOnly, u.libInfo
		return u.combined, nil
	}
	files := append(append([]*ast.File(nil), u.lib...), u.inTest...)
	tp, info, err := l.check(path, files, nil)
	if err != nil {
		return nil, err
	}
	u.combined, u.combInfo = tp, info
	return tp, nil
}

func (l *loader) checkExternalTest(u *dirUnit) (*types.Package, *types.Info, error) {
	under, err := l.combinedPackage(u.path)
	if err != nil && len(u.lib)+len(u.inTest) > 0 {
		return nil, nil, err
	}
	return l.check(u.path+"_test", u.extTest, map[string]*types.Package{u.path: under})
}

// check runs go/types over one file set. overrides pre-resolves specific
// import paths (the external-test view of the package under test).
func (l *loader) check(path string, files []*ast.File, overrides map[string]*types.Package) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var errs []error
	cfg := &types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) {
			if p, ok := overrides[ipath]; ok && p != nil {
				return p, nil
			}
			return l.importPkg(ipath)
		}),
		Error: func(err error) { errs = append(errs, err) },
	}
	tp, _ := cfg.Check(path, l.fset, files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for _, e := range errs {
			msgs = append(msgs, e.Error())
		}
		if len(msgs) > 10 {
			msgs = append(msgs[:10], fmt.Sprintf("... and %d more", len(errs)-10))
		}
		return nil, nil, fmt.Errorf("lint: type-checking %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	return tp, info, nil
}

// importPkg resolves one import: unsafe specially, module-internal paths
// from the loader's own units, and everything else through the compiled
// export data importer with a from-source fallback.
func (l *loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modpath || strings.HasPrefix(path, l.modpath+"/") {
		return l.libPackage(path)
	}
	if p, ok := l.extern[path]; ok {
		return p, nil
	}
	p, err := l.gcImp.Import(path)
	if err != nil {
		p, err = l.srcImp.Import(path)
		if err != nil {
			return nil, err
		}
	}
	l.extern[path] = p
	return p, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func sortedKeys(m map[string]*dirUnit) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
