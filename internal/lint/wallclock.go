package lint

import (
	"go/ast"
	"go/types"
)

// wallclockFuncs are the time-package functions that read or schedule
// against the wall clock. Everything else in package time (durations,
// formatting, arithmetic on caller-supplied values) is deterministic.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
}

// Wallclock enforces the repo's time model: the simulated tick clock is the
// only clock, and every report field below the Wall annotation is
// bit-identical across runs. A wall-clock read anywhere else silently
// breaks that contract, so each legitimate Wall-annotation site carries an
// explicit //lint:allow wallclock directive documenting why it is exempt.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "no time.Now/Since/Until/Sleep/timers outside Wall-annotated reporting sites — simulated ticks are the only clock",
	Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
					return true
				}
				if wallclockFuncs[obj.Name()] {
					p.Reportf(sel.Pos(), "wall-clock call time.%s: the simulated tick clock is the only time source; Wall-annotation sites must justify themselves with //lint:allow wallclock", obj.Name())
				}
				return true
			})
		}
	},
}
