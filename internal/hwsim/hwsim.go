// Package hwsim is the analytic hardware simulator of Appendix A: it prices
// each generated token by the weight bytes moved over the DRAM and Flash
// interfaces, the two transfer channels that bound on-device token
// generation. NPU compute is not modeled, matching the paper ("we do not
// simulate NPU inference times").
//
// Memory planning follows the paper's policy: everything that is not
// dynamically pruned — embeddings, attention, the KV cache, any predictor —
// is statically pinned in DRAM; the remaining DRAM budget is divided
// uniformly across the MLP layers as weight-cache capacity, and within a
// layer proportionally to each weight group's size.
//
// Byte counts are scaled so each simulated analog occupies the same number
// of bytes as its paper counterpart (a phi3med-sim token moves "7.4 GB
// model"-scale traffic); this is a uniform multiplier, so relative
// throughput between methods is unaffected, but absolute tok/s land in the
// same range the paper reports.
package hwsim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/model"
	"repro/internal/sparsity"
)

// Device describes the memory system under simulation.
type Device struct {
	Name string
	// DRAMBandwidth is the DRAM I/O speed in bytes/second.
	DRAMBandwidth float64
	// FlashBandwidth is the Flash read speed in bytes/second.
	FlashBandwidth float64
	// DRAMFraction is the available DRAM capacity expressed as a fraction
	// of the model's total weight bytes (the paper's Table 2 uses ≈ 0.5).
	DRAMFraction float64
}

// A18Like returns the default device of the paper's main experiments:
// Apple-A18-class DRAM at 60 GB/s, Flash at 1 GB/s, DRAM fitting half the
// model.
func A18Like() Device {
	return Device{Name: "a18", DRAMBandwidth: 60e9, FlashBandwidth: 1e9, DRAMFraction: 0.5}
}

// PaperModelBytes maps each analog to its paper counterpart's 4-bit
// footprint (Table 2 "Model size"), used to scale simulated byte counts.
var PaperModelBytes = map[string]float64{
	model.Phi3MedSim:   7.4e9,
	model.Phi3MiniSim:  2.4e9,
	model.Llama8BSim:   4.3e9,
	model.Mistral7BSim: 3.9e9,
	model.ReluFiedSim:  3.9e9,
}

// Plan is a memory layout for one (model, device, scheme-shape) triple.
type Plan struct {
	Dev Device
	// BytesPerWeight is the storage width (0.5 for INT4).
	BytesPerWeight float64
	// MLPByteScale is the multiplier mapping simulated MLP weight bytes to
	// paper-scale bytes.
	MLPByteScale float64
	// StaticBytes is pinned DRAM: non-MLP weights, predictor, KV cache.
	StaticBytes float64
	// KVBytes is the KV-cache allocation included in StaticBytes.
	KVBytes float64
	// ModelBytes is the total weight footprint (scaled).
	ModelBytes float64
	// CacheBudgetBytes is DRAM left for the MLP weight caches.
	CacheBudgetBytes float64
	// Caps and NUnits give per-layer per-group cache capacities and unit
	// universes (unit counts, not bytes).
	Caps, NUnits [][sparsity.NumGroups]int
	// unitBytes[g] is the scaled byte size of one unit of group g.
	unitBytes [sparsity.NumGroups]float64
	layers    int
}

// PlanOpts tunes planning.
type PlanOpts struct {
	// BytesPerWeight defaults to 0.5 (INT4).
	BytesPerWeight float64
	// ExtraStaticWeights adds predictor or adapter weights to the pinned
	// region (e.g. DejaVu predictors), expressed in simulated weights and
	// scaled like MLP weights.
	ExtraStaticWeights int
	// StaticFraction is the share of model bytes outside the MLPs when the
	// model maps to a paper counterpart. Real GQA LLMs of the Phi/Mistral
	// class keep ~15% of weights in embeddings+attention; the tiny analogs
	// would misreport this ratio, so the plan uses the paper-scale share.
	// Defaults to 0.15. Ignored for models with no PaperModelBytes entry
	// (their actual static weights are used unscaled).
	StaticFraction float64
	// KVFraction is the KV-cache DRAM share of model bytes (default 0.02,
	// the Phi-3-Medium @2k-context ratio).
	KVFraction float64
	// Groups marks which weight groups the scheme touches; unused groups
	// get no cache and their weights are not double-counted. Exactly one of
	// the two MLP representations must be used per matrix (see
	// sparsity.GroupID). Use ProbeGroups to derive this from a scheme.
	Groups [sparsity.NumGroups]bool
}

// ProbeGroups runs one scheme forward on a probe input to discover which
// groups the scheme touches.
func ProbeGroups(s sparsity.Scheme, m *model.Model) [sparsity.NumGroups]bool {
	mlp := m.Blocks[0].MLP
	x := make([]float32, mlp.Dim)
	for i := range x {
		x[i] = float32(i%7) - 3
	}
	_, ta := s.Forward(0, x, mlp, nil)
	var used [sparsity.NumGroups]bool
	for g := 0; g < int(sparsity.NumGroups); g++ {
		used[g] = ta.Groups[g].Kind != sparsity.AccessUnused
	}
	return used
}

// NewPlan lays out DRAM for the model on the device.
func NewPlan(m *model.Model, dev Device, opts PlanOpts) (*Plan, error) {
	if opts.BytesPerWeight == 0 {
		opts.BytesPerWeight = 0.5
	}
	anyGroup := false
	for _, u := range opts.Groups {
		anyGroup = anyGroup || u
	}
	if !anyGroup {
		return nil, fmt.Errorf("hwsim: no weight groups marked as used")
	}
	if opts.StaticFraction == 0 {
		opts.StaticFraction = 0.15
	}
	if opts.KVFraction == 0 {
		opts.KVFraction = 0.02
	}
	p := &Plan{Dev: dev, BytesPerWeight: opts.BytesPerWeight, layers: len(m.Blocks)}
	rawMLPBytes := float64(m.MLPWeightCount()) * opts.BytesPerWeight
	var staticWeightBytes float64
	if paper, ok := PaperModelBytes[m.Cfg.Name]; ok {
		// Map onto the paper counterpart's proportions: the tiny analogs
		// over-represent embeddings/attention, so byte shares come from the
		// paper-scale model while access *patterns* come from the analog.
		p.ModelBytes = paper
		p.MLPByteScale = (1 - opts.StaticFraction) * paper / rawMLPBytes
		staticWeightBytes = opts.StaticFraction * paper
		p.KVBytes = opts.KVFraction * paper
	} else {
		p.MLPByteScale = 1
		staticWeightBytes = float64(m.StaticWeightCount()) * opts.BytesPerWeight
		p.ModelBytes = rawMLPBytes + staticWeightBytes
		headDim := m.Cfg.Dim / m.Cfg.Heads
		p.KVBytes = float64(2*m.Cfg.KVHeads*headDim*m.Cfg.MaxSeq*len(m.Blocks)) * 2
	}
	bpw := opts.BytesPerWeight * p.MLPByteScale
	p.StaticBytes = staticWeightBytes + float64(opts.ExtraStaticWeights)*bpw + p.KVBytes
	budget := dev.DRAMFraction * p.ModelBytes
	p.CacheBudgetBytes = budget - p.StaticBytes
	if p.CacheBudgetBytes < 0 {
		p.CacheBudgetBytes = 0
	}
	// Per-layer uniform split, then proportional to group bytes in layer.
	dim, dff := m.Cfg.Dim, m.Cfg.DFF
	var groupBytes [sparsity.NumGroups]float64
	var layerBytes float64
	for g := sparsity.GroupID(0); g < sparsity.NumGroups; g++ {
		if !opts.Groups[g] {
			continue
		}
		units, per := sparsity.GroupUnits(g, dim, dff)
		p.unitBytes[g] = float64(per) * bpw
		groupBytes[g] = float64(units*per) * bpw
		layerBytes += groupBytes[g]
	}
	perLayer := p.CacheBudgetBytes / float64(p.layers)
	p.Caps = make([][sparsity.NumGroups]int, p.layers)
	p.NUnits = make([][sparsity.NumGroups]int, p.layers)
	for l := 0; l < p.layers; l++ {
		for g := sparsity.GroupID(0); g < sparsity.NumGroups; g++ {
			if !opts.Groups[g] {
				continue
			}
			units, _ := sparsity.GroupUnits(g, dim, dff)
			p.NUnits[l][g] = units
			share := perLayer * groupBytes[g] / layerBytes
			p.Caps[l][g] = int(share / p.unitBytes[g])
		}
	}
	return p, nil
}

// NewCache builds the cache hierarchy for the plan under a policy.
func (p *Plan) NewCache(policy cache.Policy) *cache.ModelCache {
	return cache.NewModelCache(policy, p.Caps, p.NUnits)
}

// UnitBytes returns the scaled byte size of one unit of group g.
func (p *Plan) UnitBytes(g sparsity.GroupID) float64 { return p.unitBytes[g] }

// Meter accumulates per-token transfer costs for a decoding run.
type Meter struct {
	plan   *Plan
	tokens int
	// DRAMBytes and FlashBytes are the cumulative traffic on each channel.
	DRAMBytes, FlashBytes float64
}

// NewMeter returns a meter for the plan.
func (p *Plan) NewMeter() *Meter { return &Meter{plan: p} }

// BeginToken accounts the per-token static reads: the pinned non-MLP
// weights stream from DRAM every token, plus on average half the KV cache.
func (mt *Meter) BeginToken() {
	mt.tokens++
	mt.DRAMBytes += (mt.plan.StaticBytes - mt.plan.KVBytes) + mt.plan.KVBytes/2
}

// AddAccess accounts one layer's cache access result.
func (mt *Meter) AddAccess(res cache.AccessResult) {
	for g := sparsity.GroupID(0); g < sparsity.NumGroups; g++ {
		ub := mt.plan.unitBytes[g]
		mt.DRAMBytes += float64(res.HitUnits[g]) * ub
		mt.FlashBytes += float64(res.MissUnits[g]) * ub
	}
}

// Tokens returns the number of tokens accounted.
func (mt *Meter) Tokens() int { return mt.tokens }

// Latency returns the mean seconds per token.
func (mt *Meter) Latency() float64 {
	if mt.tokens == 0 {
		return 0
	}
	total := mt.DRAMBytes/mt.plan.Dev.DRAMBandwidth + mt.FlashBytes/mt.plan.Dev.FlashBandwidth
	return total / float64(mt.tokens)
}

// Throughput returns tokens per second.
func (mt *Meter) Throughput() float64 {
	l := mt.Latency()
	if l == 0 {
		return 0
	}
	return 1 / l
}
