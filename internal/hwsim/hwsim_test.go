package hwsim

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/sparsity"
)

func testModel() *model.Model {
	cfg := model.Config{
		Name: model.Mistral7BSim, Vocab: 39, Dim: 16, Layers: 2, Heads: 2,
		KVHeads: 1, DFF: 32, MaxSeq: 32, Act: nn.ActSiLU,
	}
	return model.New(cfg, 3)
}

func dipGroups() [sparsity.NumGroups]bool {
	var g [sparsity.NumGroups]bool
	g[sparsity.GroupUpGate] = true
	g[sparsity.GroupDown] = true
	return g
}

func denseGroups() [sparsity.NumGroups]bool {
	var g [sparsity.NumGroups]bool
	g[sparsity.GroupUpRows] = true
	g[sparsity.GroupGateRows] = true
	g[sparsity.GroupDown] = true
	return g
}

func TestProbeGroups(t *testing.T) {
	m := testModel()
	gDIP := ProbeGroups(sparsity.NewDIP(0.5), m)
	if !gDIP[sparsity.GroupUpGate] || !gDIP[sparsity.GroupDown] || gDIP[sparsity.GroupUpRows] {
		t.Fatalf("DIP groups = %v", gDIP)
	}
	gDense := ProbeGroups(sparsity.Dense{}, m)
	if !gDense[sparsity.GroupUpRows] || !gDense[sparsity.GroupGateRows] || !gDense[sparsity.GroupDown] || gDense[sparsity.GroupUpGate] {
		t.Fatalf("dense groups = %v", gDense)
	}
}

func TestNewPlanBudgetAccounting(t *testing.T) {
	m := testModel()
	dev := A18Like()
	p, err := NewPlan(m, dev, PlanOpts{Groups: dipGroups()})
	if err != nil {
		t.Fatal(err)
	}
	// Scaled model bytes must match the paper counterpart.
	if math.Abs(p.ModelBytes-PaperModelBytes[model.Mistral7BSim]) > 1e-3*p.ModelBytes {
		t.Fatalf("model bytes %.3g, want %.3g", p.ModelBytes, PaperModelBytes[model.Mistral7BSim])
	}
	if p.CacheBudgetBytes <= 0 {
		t.Fatal("cache budget should be positive at 50% DRAM")
	}
	if p.StaticBytes+p.CacheBudgetBytes > dev.DRAMFraction*p.ModelBytes+1 {
		t.Fatal("plan exceeds DRAM budget")
	}
	// Cache capacities are positive and bounded by the unit universes.
	for l := range p.Caps {
		for g := sparsity.GroupID(0); g < sparsity.NumGroups; g++ {
			if p.NUnits[l][g] == 0 {
				if p.Caps[l][g] != 0 {
					t.Fatal("capacity for unused group")
				}
				continue
			}
			if p.Caps[l][g] < 0 || p.Caps[l][g] > p.NUnits[l][g] {
				// capacity may legitimately exceed universe only by clamp
				// at cache construction; the plan itself should not.
				if p.Caps[l][g] > p.NUnits[l][g] {
					continue // acceptable: cache clamps
				}
				t.Fatalf("capacity %d out of range for %d units", p.Caps[l][g], p.NUnits[l][g])
			}
		}
	}
}

func TestNewPlanRequiresGroups(t *testing.T) {
	m := testModel()
	if _, err := NewPlan(m, A18Like(), PlanOpts{}); err == nil {
		t.Fatal("expected error without groups")
	}
}

func TestTinyDRAMGivesZeroCache(t *testing.T) {
	m := testModel()
	dev := A18Like()
	dev.DRAMFraction = 0.01
	p, err := NewPlan(m, dev, PlanOpts{Groups: dipGroups()})
	if err != nil {
		t.Fatal(err)
	}
	if p.CacheBudgetBytes != 0 {
		t.Fatalf("cache budget = %v, want 0", p.CacheBudgetBytes)
	}
}

func TestExtraStaticWeightsShrinkCache(t *testing.T) {
	m := testModel()
	base, _ := NewPlan(m, A18Like(), PlanOpts{Groups: dipGroups()})
	with, _ := NewPlan(m, A18Like(), PlanOpts{Groups: dipGroups(), ExtraStaticWeights: 1000})
	if with.CacheBudgetBytes >= base.CacheBudgetBytes {
		t.Fatal("predictor weights should shrink the cache budget")
	}
}

func TestMeterDenseFromFlash(t *testing.T) {
	// With zero cache, a dense model reads all MLP bytes from Flash every
	// token plus static from DRAM; latency must match hand arithmetic.
	m := testModel()
	dev := A18Like()
	dev.DRAMFraction = 0.01 // forces zero cache budget
	p, err := NewPlan(m, dev, PlanOpts{Groups: denseGroups()})
	if err != nil {
		t.Fatal(err)
	}
	mc := p.NewCache(cache.PolicyNone)
	meter := p.NewMeter()
	scheme := sparsity.Dense{}
	x := make([]float32, m.Cfg.Dim)
	x[0] = 1
	const tokens = 3
	for tok := 0; tok < tokens; tok++ {
		meter.BeginToken()
		for l := range m.Blocks {
			_, ta := scheme.Forward(l, x, m.Blocks[l].MLP, nil)
			meter.AddAccess(mc.Access(l, &ta))
		}
	}
	if meter.Tokens() != tokens {
		t.Fatal("token count wrong")
	}
	bpw := 0.5 * p.MLPByteScale
	wantFlash := float64(m.MLPWeightCount()) * bpw * tokens
	if math.Abs(meter.FlashBytes-wantFlash) > 1e-6*wantFlash {
		t.Fatalf("flash bytes %.4g, want %.4g", meter.FlashBytes, wantFlash)
	}
	wantLatency := (meter.DRAMBytes/dev.DRAMBandwidth + meter.FlashBytes/dev.FlashBandwidth) / tokens
	if math.Abs(meter.Latency()-wantLatency) > 1e-12 {
		t.Fatal("latency arithmetic wrong")
	}
	if math.Abs(meter.Throughput()*meter.Latency()-1) > 1e-9 {
		t.Fatal("throughput is not 1/latency")
	}
}

func TestSparserIsFasterUnderSameCache(t *testing.T) {
	// DIP at lower density must achieve higher simulated throughput than at
	// higher density, all else equal.
	m := testModel()
	run := func(density float64) float64 {
		s := sparsity.NewDIP(density)
		p, err := NewPlan(m, A18Like(), PlanOpts{Groups: ProbeGroups(s, m)})
		if err != nil {
			t.Fatal(err)
		}
		mc := p.NewCache(cache.PolicyLFU)
		meter := p.NewMeter()
		rngState := uint64(7)
		for tok := 0; tok < 50; tok++ {
			meter.BeginToken()
			x := make([]float32, m.Cfg.Dim)
			for i := range x {
				rngState = rngState*6364136223846793005 + 1
				x[i] = float32(int(rngState>>40)%97)/97 - 0.5
			}
			for l := range m.Blocks {
				_, ta := s.Forward(l, x, m.Blocks[l].MLP, mc)
				meter.AddAccess(mc.Access(l, &ta))
			}
		}
		return meter.Throughput()
	}
	fast := run(0.3)
	slow := run(0.9)
	if fast <= slow {
		t.Fatalf("30%% density (%.3g tok/s) not faster than 90%% (%.3g tok/s)", fast, slow)
	}
}

func TestCacheAwareImprovesHitRate(t *testing.T) {
	// DIP-CA must achieve a higher cache hit rate than plain DIP on the
	// same token stream — the core mechanism of Section 5.
	m := testModel()
	run := func(s sparsity.Scheme) float64 {
		p, err := NewPlan(m, A18Like(), PlanOpts{Groups: ProbeGroups(s, m)})
		if err != nil {
			t.Fatal(err)
		}
		mc := p.NewCache(cache.PolicyLFU)
		rngState := uint64(99)
		for tok := 0; tok < 80; tok++ {
			x := make([]float32, m.Cfg.Dim)
			for i := range x {
				rngState = rngState*6364136223846793005 + 1
				x[i] = float32(int(rngState>>40)%97)/97 - 0.5
			}
			for l := range m.Blocks {
				_, ta := s.Forward(l, x, m.Blocks[l].MLP, mc)
				mc.Access(l, &ta)
			}
		}
		return mc.TotalStats().HitRate()
	}
	plain := run(sparsity.NewDIP(0.5))
	ca := run(sparsity.NewDIPCA(0.5, 0.2))
	if ca <= plain {
		t.Fatalf("DIP-CA hit rate %.3f not above DIP %.3f", ca, plain)
	}
}

func TestDeviceAblationDirections(t *testing.T) {
	// More DRAM → faster; faster flash → faster.
	m := testModel()
	s := sparsity.NewDIP(0.5)
	run := func(dev Device) float64 {
		p, err := NewPlan(m, dev, PlanOpts{Groups: ProbeGroups(s, m)})
		if err != nil {
			t.Fatal(err)
		}
		mc := p.NewCache(cache.PolicyLFU)
		meter := p.NewMeter()
		rngState := uint64(5)
		for tok := 0; tok < 60; tok++ {
			meter.BeginToken()
			x := make([]float32, m.Cfg.Dim)
			for i := range x {
				rngState = rngState*6364136223846793005 + 1
				x[i] = float32(int(rngState>>40)%97)/97 - 0.5
			}
			for l := range m.Blocks {
				_, ta := s.Forward(l, x, m.Blocks[l].MLP, mc)
				meter.AddAccess(mc.Access(l, &ta))
			}
		}
		return meter.Throughput()
	}
	base := A18Like()
	big := base
	big.DRAMFraction = 0.8
	if run(big) <= run(base) {
		t.Fatal("more DRAM should increase throughput")
	}
	fastFlash := base
	fastFlash.FlashBandwidth = 2e9
	if run(fastFlash) <= run(base) {
		t.Fatal("faster flash should increase throughput")
	}
}

func TestMeterEmpty(t *testing.T) {
	m := testModel()
	p, _ := NewPlan(m, A18Like(), PlanOpts{Groups: dipGroups()})
	meter := p.NewMeter()
	if meter.Latency() != 0 || meter.Throughput() != 0 {
		t.Fatal("empty meter should report zeros")
	}
}
