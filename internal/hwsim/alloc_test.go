package hwsim

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/sparsity"
)

func TestLayerWeightsFromTrace(t *testing.T) {
	tr := cache.NewTraceRecorder()
	// Layer 0 touches 3 units per token, layer 1 touches 1.
	for i := 0; i < 10; i++ {
		var ta sparsity.TokenAccess
		ta.Groups[sparsity.GroupDown] = sparsity.GroupAccess{Kind: sparsity.AccessSparse, Units: []int{1, 2, 3}}
		tr.Record(0, &ta)
		var tb sparsity.TokenAccess
		tb.Groups[sparsity.GroupDown] = sparsity.GroupAccess{Kind: sparsity.AccessSparse, Units: []int{4}}
		tr.Record(1, &tb)
	}
	w := LayerWeightsFromTrace(tr, 2)
	if math.Abs(w[0]+w[1]-2) > 1e-9 {
		t.Fatalf("weights not mean-1 normalized: %v", w)
	}
	if math.Abs(w[0]/w[1]-3) > 1e-9 {
		t.Fatalf("weight ratio = %v, want 3", w[0]/w[1])
	}
	// Empty trace → uniform.
	w2 := LayerWeightsFromTrace(cache.NewTraceRecorder(), 3)
	for _, x := range w2 {
		if x != 1 {
			t.Fatalf("empty trace weights = %v", w2)
		}
	}
}

func TestApplyLayerWeights(t *testing.T) {
	m := testModel()
	p, err := NewPlan(m, A18Like(), PlanOpts{Groups: dipGroups()})
	if err != nil {
		t.Fatal(err)
	}
	uniform := make([][sparsity.NumGroups]int, len(p.Caps))
	copy(uniform, p.Caps)
	// Skew everything toward layer 0.
	if err := p.ApplyLayerWeights([]float64{3, 1}); err != nil {
		t.Fatal(err)
	}
	if p.Caps[0][sparsity.GroupDown] <= uniform[0][sparsity.GroupDown] {
		t.Fatalf("layer 0 capacity did not grow: %d vs %d",
			p.Caps[0][sparsity.GroupDown], uniform[0][sparsity.GroupDown])
	}
	if p.Caps[1][sparsity.GroupDown] >= uniform[1][sparsity.GroupDown] {
		t.Fatalf("layer 1 capacity did not shrink: %d vs %d",
			p.Caps[1][sparsity.GroupDown], uniform[1][sparsity.GroupDown])
	}
	// Total capacity bytes conserved within rounding.
	bytesOf := func(caps [][sparsity.NumGroups]int) float64 {
		var total float64
		for l := range caps {
			for g := sparsity.GroupID(0); g < sparsity.NumGroups; g++ {
				total += float64(caps[l][g]) * p.UnitBytes(g)
			}
		}
		return total
	}
	before, after := bytesOf(uniform), bytesOf(p.Caps)
	if math.Abs(before-after) > 0.1*before {
		t.Fatalf("budget not conserved: %v -> %v", before, after)
	}
}

func TestApplyLayerWeightsValidation(t *testing.T) {
	m := testModel()
	p, _ := NewPlan(m, A18Like(), PlanOpts{Groups: dipGroups()})
	if err := p.ApplyLayerWeights([]float64{1}); err == nil {
		t.Fatal("expected length error")
	}
	if err := p.ApplyLayerWeights([]float64{-1, 1}); err == nil {
		t.Fatal("expected negativity error")
	}
	if err := p.ApplyLayerWeights([]float64{0, 0}); err == nil {
		t.Fatal("expected all-zero error")
	}
}
