package hwsim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/sparsity"
)

// This file implements non-uniform cache allocation, the alternative the
// paper's Appendix A reports exploring ("We did not find significant
// improvements when exploring non-uniform cache allocation"). The repo
// keeps it as a first-class option so that finding can be reproduced
// rather than assumed: derive per-layer weights from a recorded access
// trace and compare against the uniform default.

// LayerWeightsFromTrace derives per-layer allocation weights from a
// recorded access trace: each layer's weight is its total sparse-unit
// traffic, so layers whose masks churn more get more cache. Dense group
// accesses are excluded (pinning handles them). The result is normalized
// to mean 1.
func LayerWeightsFromTrace(tr *cache.TraceRecorder, layers int) []float64 {
	w := make([]float64, layers)
	var total float64
	for l := 0; l < layers; l++ {
		for g := sparsity.GroupID(0); g < sparsity.NumGroups; g++ {
			for _, units := range tr.Stream(l, g) {
				w[l] += float64(len(units))
			}
		}
		total += w[l]
	}
	if total == 0 {
		for l := range w {
			w[l] = 1
		}
		return w
	}
	scale := float64(layers) / total
	for l := range w {
		w[l] *= scale
	}
	return w
}

// ApplyLayerWeights rescales the plan's per-layer cache capacities by the
// given weights (mean-1 normalized internally), keeping the total cache
// budget constant. It returns an error on length mismatch.
func (p *Plan) ApplyLayerWeights(weights []float64) error {
	if len(weights) != p.layers {
		return fmt.Errorf("hwsim: %d weights for %d layers", len(weights), p.layers)
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			return fmt.Errorf("hwsim: negative layer weight %v", w)
		}
		sum += w
	}
	if sum == 0 {
		return fmt.Errorf("hwsim: all-zero layer weights")
	}
	norm := float64(p.layers) / sum
	perLayerBase := p.CacheBudgetBytes / float64(p.layers)
	for l := 0; l < p.layers; l++ {
		share := perLayerBase * weights[l] * norm
		// Redistribute within the layer proportionally to group bytes, as
		// NewPlan does.
		var layerBytes float64
		for g := sparsity.GroupID(0); g < sparsity.NumGroups; g++ {
			if p.NUnits[l][g] > 0 {
				layerBytes += float64(p.NUnits[l][g]) * p.unitBytes[g]
			}
		}
		for g := sparsity.GroupID(0); g < sparsity.NumGroups; g++ {
			if p.NUnits[l][g] == 0 {
				continue
			}
			groupBytes := float64(p.NUnits[l][g]) * p.unitBytes[g]
			p.Caps[l][g] = int(share * groupBytes / layerBytes / p.unitBytes[g])
		}
	}
	return nil
}
