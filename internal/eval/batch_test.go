package eval

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/hwsim"
	"repro/internal/sparsity"
)

func batchSysCfg() SystemConfig {
	return SystemConfig{Device: hwsim.A18Like(), Policy: cache.PolicyLFU, Win: 16}
}

// BatchStep over a set of independent streams must be bit-identical to
// stepping each stream alone: same CE sums, prediction counts, cache
// traffic, and final KPI points — with unequal stream lengths, so the
// batch drains (finished streams are skipped) and window boundaries land
// on different sub-steps per stream.
func TestBatchStepMatchesPerStreamStepBitForBit(t *testing.T) {
	trained(t)
	cfg := batchSysCfg()
	build := func(i int) (*Stream, error) {
		n := 48 + 16*(i%3) // 3–5 windows of 16
		return NewStream(zoo.m, sparsity.NewDIPCA(0.5, 0.2), zoo.test[i*160:i*160+n], cfg)
	}
	const B = 4
	batched := make([]*Stream, B)
	solo := make([]*Stream, B)
	for i := 0; i < B; i++ {
		var err error
		if batched[i], err = build(i); err != nil {
			t.Fatal(err)
		}
		if solo[i], err = build(i); err != nil {
			t.Fatal(err)
		}
	}
	var arena BatchArena
	steps := 0
	for BatchStep(batched, &arena) > 0 {
		steps++
		if steps > 10000 {
			t.Fatal("BatchStep never drained the batch")
		}
	}
	for _, st := range solo {
		for st.Step() {
		}
	}
	for i := 0; i < B; i++ {
		bc, bp := batched[i].CE()
		sc, sp := solo[i].CE()
		if bc != sc || bp != sp {
			t.Fatalf("stream %d CE diverged: batched (%v, %d) vs solo (%v, %d)", i, bc, bp, sc, sp)
		}
		bh, bm := batched[i].Traffic()
		sh, sm := solo[i].Traffic()
		if bh != sh || bm != sm {
			t.Fatalf("stream %d traffic diverged: batched (%d, %d) vs solo (%d, %d)", i, bh, bm, sh, sm)
		}
		if batched[i].Point() != solo[i].Point() {
			t.Fatalf("stream %d point diverged:\nbatched %+v\nsolo    %+v", i, batched[i].Point(), solo[i].Point())
		}
		if !batched[i].Done() {
			t.Fatalf("stream %d not drained", i)
		}
	}
	// The drain must have taken exactly as many fused steps as the longest
	// stream has tokens (shorter streams drop out, the batch keeps going).
	if want := solo[2].TotalTokens(); steps != want {
		t.Fatalf("drained in %d fused steps, want %d (longest stream)", steps, want)
	}
}

// A batch mixing schemes (fused DIP columns next to a dense column) must
// still match per-stream stepping — the scheme dispatch falls back without
// breaking per-stream accounting.
func TestBatchStepMixedSchemesMatchesPerStream(t *testing.T) {
	trained(t)
	cfg := batchSysCfg()
	mk := func(i int) sparsity.Scheme {
		if i == 1 {
			return sparsity.Dense{}
		}
		return sparsity.NewDIP(0.5)
	}
	const B = 3
	batched := make([]*Stream, B)
	solo := make([]*Stream, B)
	for i := 0; i < B; i++ {
		var err error
		if batched[i], err = NewStream(zoo.m, mk(i), zoo.test[i*100:i*100+32], cfg); err != nil {
			t.Fatal(err)
		}
		if solo[i], err = NewStream(zoo.m, mk(i), zoo.test[i*100:i*100+32], cfg); err != nil {
			t.Fatal(err)
		}
	}
	var arena BatchArena
	for BatchStep(batched, &arena) > 0 {
	}
	for _, st := range solo {
		for st.Step() {
		}
	}
	for i := 0; i < B; i++ {
		if batched[i].Point() != solo[i].Point() {
			t.Fatalf("stream %d point diverged:\nbatched %+v\nsolo    %+v", i, batched[i].Point(), solo[i].Point())
		}
	}
}

// Deferred streams must refuse a fused step while accesses are pending,
// exactly like Step.
func TestBatchStepPanicsOnUncommittedDeferredStream(t *testing.T) {
	trained(t)
	cfg := batchSysCfg()
	plan, err := hwsim.NewPlan(zoo.m, cfg.Device, hwsim.PlanOpts{
		Groups: hwsim.ProbeGroups(sparsity.NewDIP(0.5), zoo.m),
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStreamWith(zoo.m, sparsity.NewDIP(0.5), zoo.test[:32], cfg, StreamOpts{
		Plan: plan, Cache: plan.NewCache(cfg.Policy), Deferred: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var arena BatchArena
	if n := BatchStep([]*Stream{st}, &arena); n != 1 {
		t.Fatalf("first BatchStep advanced %d streams", n)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BatchStep on an uncommitted deferred stream must panic")
		}
	}()
	BatchStep([]*Stream{st}, &arena)
}
