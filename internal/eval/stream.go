package eval

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/hwsim"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// Validate reports the first invalid SystemConfig field by name. Zero values
// that have documented defaults (BytesPerWeight, Win, MaxTokens) are valid;
// everything else must describe a physically meaningful system.
func (cfg SystemConfig) Validate() error {
	switch {
	case cfg.Device.DRAMBandwidth <= 0:
		return fmt.Errorf("eval: SystemConfig.Device.DRAMBandwidth must be positive bytes/s, got %v", cfg.Device.DRAMBandwidth)
	case cfg.Device.FlashBandwidth <= 0:
		return fmt.Errorf("eval: SystemConfig.Device.FlashBandwidth must be positive bytes/s, got %v", cfg.Device.FlashBandwidth)
	case cfg.Device.DRAMFraction <= 0:
		return fmt.Errorf("eval: SystemConfig.Device.DRAMFraction must be positive, got %v", cfg.Device.DRAMFraction)
	case cfg.Policy.String() == "invalid":
		return fmt.Errorf("eval: SystemConfig.Policy %d is not a known cache policy", cfg.Policy)
	case cfg.BytesPerWeight < 0:
		return fmt.Errorf("eval: SystemConfig.BytesPerWeight must be non-negative (0 = INT4 default), got %v", cfg.BytesPerWeight)
	case cfg.ExtraStaticWeights < 0:
		return fmt.Errorf("eval: SystemConfig.ExtraStaticWeights must be non-negative, got %d", cfg.ExtraStaticWeights)
	case cfg.MaxTokens < 0:
		return fmt.Errorf("eval: SystemConfig.MaxTokens must be non-negative (0 = use all), got %d", cfg.MaxTokens)
	case cfg.Win < 0:
		return fmt.Errorf("eval: SystemConfig.Win must be non-negative (0 = model MaxSeq), got %d", cfg.Win)
	}
	return nil
}

// evalWindow resolves the effective (tokens, window, total) of a coupled
// evaluation: MaxTokens truncates the stream, Win defaults to the model's
// MaxSeq, and the stream is consumed in whole windows only (matching
// model.Perplexity's chunking).
func evalWindow(m *model.Model, tokens []int, cfg SystemConfig) (toks []int, win, total int) {
	if cfg.MaxTokens > 0 && len(tokens) > cfg.MaxTokens {
		tokens = tokens[:cfg.MaxTokens]
	}
	win = cfg.Win
	if win == 0 || win > m.Cfg.MaxSeq {
		win = m.Cfg.MaxSeq
	}
	nWin := 0
	if win > 0 {
		nWin = len(tokens) / win
	}
	return tokens, win, nWin * win
}

// Stream is a resumable cache-coupled evaluation of one token stream: the
// per-token Step API that SystemEvaluate and the serving engine share. Each
// Step feeds one token through an incremental decoder (per-layer KV caches,
// reset at window boundaries) with the scheme hooked into every MLP, scoring
// teacher-forced cross-entropy exactly like model.Perplexity's windowing.
//
// A stream owns all of its mutable state — scheme scratch, decoder, density
// accumulator, meter, CE sums — so independent streams may step concurrently.
// The cache is owned in the solo path (NewStream) and caller-provided in the
// serving path (NewStreamWith), where StreamOpts.Deferred additionally
// buffers each token's accesses for an explicitly ordered Commit instead of
// applying them inside Step.
type Stream struct {
	m      *model.Model
	s      sparsity.Scheme
	tokens []int
	win    int
	total  int

	plan  *hwsim.Plan
	mc    *cache.ModelCache
	meter *hwsim.Meter
	acc   *DensityAccumulator
	hook  model.MLPHook
	dec   *model.Decoder

	pos     int // tokens consumed
	decoded int // tokens ever stepped, including work a Restart discarded
	winPos  int // position within the current window
	winCE   float64
	ce      float64
	preds   int

	hits, misses int64 // this stream's cache traffic (mc may be shared)

	deferred bool
	pending  []sparsity.TokenAccess // per-layer buffer, valid when dirty
	dirty    bool
}

// StreamOpts configures NewStreamWith beyond the SystemConfig.
type StreamOpts struct {
	// Plan prices transfers; required.
	Plan *hwsim.Plan
	// Cache receives the stream's accesses; required. It may be sized
	// differently from Plan.Caps (cache-budget arbitration) or shared with
	// other streams (with Deferred set).
	Cache *cache.ModelCache
	// Deferred buffers each Step's accesses instead of applying them; the
	// caller applies them in its chosen order via Commit. The scheme still
	// sees Cache as its CacheView, so cache-aware masks read the state as of
	// the last Commit — the serving engine's tick-boundary semantics.
	Deferred bool
}

// NewStream builds a self-contained stream: the memory plan and cache are
// derived from cfg exactly as SystemEvaluate historically did, including the
// Belady recording pass (which replays the identical per-token access
// sequence because it runs through the same Step machinery).
func NewStream(m *model.Model, s sparsity.Scheme, tokens []int, cfg SystemConfig) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plan, err := hwsim.NewPlan(m, cfg.Device, hwsim.PlanOpts{
		BytesPerWeight:     cfg.BytesPerWeight,
		ExtraStaticWeights: cfg.ExtraStaticWeights,
		Groups:             hwsim.ProbeGroups(s, m),
	})
	if err != nil {
		return nil, err
	}
	tokens, win, total := evalWindow(m, tokens, cfg)
	if cfg.Policy == cache.PolicyBelady {
		if ca, ok := s.(interface{ IsCacheAware() bool }); ok && ca.IsCacheAware() {
			return nil, fmt.Errorf("eval: Belady policy cannot replay a cache-aware scheme")
		}
		rec := cache.NewTraceRecorder()
		recSt := &Stream{m: m, s: s, tokens: tokens, win: win, total: total}
		recSt.hook = Hook(m, s, HookOpts{Recorder: rec})
		for recSt.Step() {
		}
		mc := plan.NewCache(cache.PolicyBelady)
		mc.SetTraces(rec)
		return newCoupled(m, s, tokens, win, total, plan, mc), nil
	}
	return newCoupled(m, s, tokens, win, total, plan, plan.NewCache(cfg.Policy)), nil
}

// NewStreamWith builds a stream against a caller-owned plan and cache — the
// serving engine's entry point, where many streams arbitrate one budget.
// Belady is rejected: its oracle needs a fixed single-stream future, which
// an online multi-stream cache does not have.
func NewStreamWith(m *model.Model, s sparsity.Scheme, tokens []int, cfg SystemConfig, opts StreamOpts) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Plan == nil || opts.Cache == nil {
		return nil, fmt.Errorf("eval: StreamOpts.Plan and StreamOpts.Cache are required")
	}
	if cfg.Policy == cache.PolicyBelady {
		return nil, fmt.Errorf("eval: Belady policy is not available for shared-cache streams")
	}
	tokens, win, total := evalWindow(m, tokens, cfg)
	st := newCoupled(m, s, tokens, win, total, opts.Plan, opts.Cache)
	if opts.Deferred {
		st.deferred = true
		st.pending = make([]sparsity.TokenAccess, len(m.Blocks))
		st.hook = st.deferredHook()
	}
	return st, nil
}

// newCoupled wires a stream whose hook applies accesses to mc as they
// happen, with the meter and density accumulator attached.
func newCoupled(m *model.Model, s sparsity.Scheme, tokens []int, win, total int, plan *hwsim.Plan, mc *cache.ModelCache) *Stream {
	st := &Stream{
		m: m, s: s, tokens: tokens, win: win, total: total,
		plan: plan, mc: mc, meter: plan.NewMeter(), acc: NewDensityAccumulator(m),
	}
	st.hook = st.coupledHook()
	return st
}

// coupledHook is eval.Hook plus per-stream hit/miss accounting (the cache's
// own totals would mix streams when the cache is shared).
func (st *Stream) coupledHook() model.MLPHook {
	return func(layer int, x tensor.Vec) tensor.Vec {
		if layer == 0 {
			st.meter.BeginToken()
		}
		y, ta := st.s.Forward(layer, x, st.m.Blocks[layer].MLP, st.mc)
		st.acc.Add(&ta)
		res := st.mc.Access(layer, &ta)
		st.meter.AddAccess(res)
		st.note(res)
		return y
	}
}

// deferredHook evaluates the scheme against the cache's current (tick-start)
// state but buffers the accesses for Commit. Unit lists are copied because
// schemes reuse their scratch between calls; the buffers are reused across
// tokens, so steady-state stepping does not allocate.
func (st *Stream) deferredHook() model.MLPHook {
	return func(layer int, x tensor.Vec) tensor.Vec {
		y, ta := st.s.Forward(layer, x, st.m.Blocks[layer].MLP, st.mc)
		st.acc.Add(&ta)
		p := &st.pending[layer]
		for g := range ta.Groups {
			p.Groups[g].Kind = ta.Groups[g].Kind
			p.Groups[g].Units = append(p.Groups[g].Units[:0], ta.Groups[g].Units...)
		}
		return y
	}
}

func (st *Stream) note(res cache.AccessResult) {
	for g := 0; g < int(sparsity.NumGroups); g++ {
		st.hits += int64(res.HitUnits[g])
		st.misses += int64(res.MissUnits[g])
	}
}

// Step consumes the next token: one incremental decode through every layer
// with the scheme hooked in, plus cross-entropy scoring against the token
// that follows. It returns false once the stream is exhausted. In deferred
// mode the caller must Commit between Steps.
func (st *Stream) Step() bool {
	if st.pos >= st.total {
		return false
	}
	if st.deferred && st.dirty {
		panic("eval: deferred Stream stepped with uncommitted accesses")
	}
	if st.winPos == 0 {
		if st.dec == nil {
			st.dec = st.m.NewDecoder(st.hook)
		} else {
			st.dec.Reset()
		}
	}
	logits := st.dec.Step(st.tokens[st.pos])
	st.pos++
	st.decoded++
	st.winPos++
	if st.winPos < st.win {
		// This position predicts the next token of the same window; the
		// window's final logits are context-only, as in model.Perplexity.
		st.winCE += tensor.LogSumExp(logits) - float64(logits[st.tokens[st.pos]])
		st.preds++
	} else {
		st.ce += st.winCE
		st.winCE = 0
		st.winPos = 0
	}
	if st.deferred {
		st.dirty = true
	}
	return true
}

// Commit applies the deferred accesses of the last Step to the (shared)
// cache and prices them on this stream's meter. The caller chooses the
// cross-stream ordering; a fixed ordering makes shared-cache stats
// deterministic. Commit panics on a non-deferred stream.
func (st *Stream) Commit() {
	if !st.deferred {
		panic("eval: Commit on a non-deferred Stream")
	}
	if !st.dirty {
		return
	}
	st.meter.BeginToken()
	for l := range st.pending {
		res := st.mc.Access(l, &st.pending[l])
		st.meter.AddAccess(res)
		st.note(res)
	}
	st.dirty = false
}

// Release detaches the stream from its cache for a suspension: all decode
// state (decoder, KV caches, scheme scratch, CE sums, meter, traffic
// counters) is retained, so a later Regrant resumes the stream exactly
// where it stopped. Stepping a released stream fails loudly. Suspension is
// a tick-boundary operation — releasing with uncommitted deferred accesses
// panics.
func (st *Stream) Release() {
	if st.dirty {
		panic("eval: Release on a Stream with uncommitted accesses")
	}
	st.mc = nil
}

// Regrant couples a suspended stream to a (typically fresh) cache — the
// serving engine's resume hook after a preemption released the stream's
// partitioned cache grant. Cumulative traffic and meter state carry over;
// only the cache the scheme sees from the next Step onward changes.
func (st *Stream) Regrant(mc *cache.ModelCache) {
	if mc == nil {
		panic("eval: Regrant needs a cache")
	}
	st.mc = mc
}

// Restart rewinds the stream to token 0 for a from-scratch re-prefill after
// a destructive fault (a revoked cache grant takes the decode state built on
// it down too): position, window state, CE sums, and the density accumulator
// reset, and the decoder's KV state drops at the next Step. The meter,
// cumulative traffic counters, and the Decoded total are retained — the
// discarded prefix still cost simulated time and bytes, which is exactly the
// throughput-vs-goodput gap chaos reports measure. After a restarted stream
// drains, its CE, perplexity, and density equal a fresh run's (bit-identical
// for cache-independent schemes). Restart is a tick-boundary operation —
// restarting with uncommitted deferred accesses panics.
func (st *Stream) Restart() {
	if st.dirty {
		panic("eval: Restart on a Stream with uncommitted accesses")
	}
	st.pos, st.winPos = 0, 0
	st.winCE, st.ce = 0, 0
	st.preds = 0
	st.acc = NewDensityAccumulator(st.m)
}

// Done reports whether every token has been consumed.
func (st *Stream) Done() bool { return st.pos >= st.total }

// Pos returns the number of tokens consumed so far (Restart resets it).
func (st *Stream) Pos() int { return st.pos }

// Decoded returns the cumulative number of tokens ever stepped, including
// work discarded by Restart — the stream's throughput denominator, as
// opposed to Pos, which only counts the surviving prefix.
func (st *Stream) Decoded() int { return st.decoded }

// TotalTokens returns the number of tokens the stream will consume.
func (st *Stream) TotalTokens() int { return st.total }

// Cache returns the cache the stream is coupled to.
func (st *Stream) Cache() *cache.ModelCache { return st.mc }

// Deferred reports whether the stream buffers cache accesses for an
// explicit Commit (the shared-cache mode, fixed at construction). Callers
// moving a stream between owners — e.g. a cluster migrating a session —
// use this to check grant compatibility: a deferred stream can only ever
// be re-granted a shared cache, an undeferred one a private cache.
func (st *Stream) Deferred() bool { return st.deferred }

// Traffic returns this stream's cumulative cache traffic in units. Unlike
// the cache's own totals, these stay per-stream when the cache is shared.
func (st *Stream) Traffic() (hits, misses int64) { return st.hits, st.misses }

// CE returns the accumulated cross-entropy sum and prediction count —
// the raw per-stream output, useful for bit-exact comparisons.
func (st *Stream) CE() (float64, int) { return st.ce + st.winCE, st.preds }

// StreamStats is a point-in-time snapshot of the stream's integer counters
// — the per-tick feed for the serving engine's moving-window telemetry.
// All fields are cumulative, so a caller differencing two snapshots gets
// the interval's decode and traffic deltas.
type StreamStats struct {
	// Pos is the surviving consumed prefix; Decoded counts every token ever
	// stepped, including work a Restart discarded.
	Pos, Decoded int
	// Hits/Misses are this stream's cumulative cache traffic in units.
	Hits, Misses int64
}

// Stats snapshots the stream's counters without touching any float state,
// so sampling it never perturbs the evaluation.
func (st *Stream) Stats() StreamStats {
	return StreamStats{Pos: st.pos, Decoded: st.decoded, Hits: st.hits, Misses: st.misses}
}

// Point summarizes the stream's KPIs so far. After the final Step it equals
// what SystemEvaluate returns for the same configuration.
func (st *Stream) Point() Point {
	ppl := 0.0
	if st.preds > 0 {
		ppl = nn.Perplexity((st.ce + st.winCE) / float64(st.preds))
	}
	hitRate := 0.0
	if t := st.hits + st.misses; t > 0 {
		hitRate = float64(st.hits) / float64(t)
	}
	return Point{
		Scheme:     st.s.Name(),
		Density:    st.acc.Mean(),
		PPL:        ppl,
		Throughput: st.meter.Throughput(),
		HitRate:    hitRate,
		LatencyS:   st.meter.Latency(),
	}
}
