// Package eval is the measurement harness: it wires a sparsity scheme into
// a model's MLP hook — optionally coupled to the DRAM cache simulator and
// transfer-cost meter — and reports the paper's three KPIs: model quality
// (perplexity, multiple-choice accuracy), memory (measured MLP density),
// and throughput (simulated tokens/second).
package eval

import (
	"repro/internal/cache"
	"repro/internal/data"
	"repro/internal/hwsim"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// DensityAccumulator averages the measured MLP density over an evaluation.
type DensityAccumulator struct {
	sum      float64
	n        int
	dim, dff int
}

// NewDensityAccumulator sizes the accumulator for a model's MLP dims.
func NewDensityAccumulator(m *model.Model) *DensityAccumulator {
	return &DensityAccumulator{dim: m.Cfg.Dim, dff: m.Cfg.DFF}
}

// Add records one TokenAccess.
func (d *DensityAccumulator) Add(ta *sparsity.TokenAccess) {
	d.sum += ta.Density(d.dim, d.dff)
	d.n++
}

// Mean returns the average density, or 0 before any access.
func (d *DensityAccumulator) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// HookOpts couples optional instrumentation into a scheme hook.
type HookOpts struct {
	// Cache, when set, is accessed per (layer, token) and exposed to
	// cache-aware schemes.
	Cache *cache.ModelCache
	// Meter, when set, accumulates transfer costs (BeginToken fires on
	// each layer-0 call).
	Meter *hwsim.Meter
	// Recorder, when set, records access traces (for Belady's first pass).
	Recorder *cache.TraceRecorder
	// Density, when set, accumulates measured MLP density.
	Density *DensityAccumulator
}

// Hook builds a model.MLPHook evaluating the scheme with the requested
// instrumentation.
func Hook(m *model.Model, s sparsity.Scheme, opts HookOpts) model.MLPHook {
	var view sparsity.CacheView
	if opts.Cache != nil {
		view = opts.Cache
	}
	return func(layer int, x tensor.Vec) tensor.Vec {
		if opts.Meter != nil && layer == 0 {
			opts.Meter.BeginToken()
		}
		y, ta := s.Forward(layer, x, m.Blocks[layer].MLP, view)
		if opts.Density != nil {
			opts.Density.Add(&ta)
		}
		if opts.Recorder != nil {
			opts.Recorder.Record(layer, &ta)
		}
		if opts.Cache != nil {
			res := opts.Cache.Access(layer, &ta)
			if opts.Meter != nil {
				opts.Meter.AddAccess(res)
			}
		}
		return y
	}
}

// PerplexityUnderScheme evaluates windowed perplexity with the scheme and
// no hardware coupling, returning the perplexity and mean measured density.
func PerplexityUnderScheme(m *model.Model, s sparsity.Scheme, tokens []int, win int) (ppl, density float64) {
	acc := NewDensityAccumulator(m)
	hook := Hook(m, s, HookOpts{Density: acc})
	return model.Perplexity(m, tokens, win, hook), acc.Mean()
}

// MCAccuracy scores multiple-choice items under the scheme (no cache
// coupling — quality metrics in the paper's Tables 1/3/4/5 use plain
// masks) and returns the accuracy in percent. Items are independent, so
// they fan out across the worker pool; each worker clones the scheme so
// per-call scratch is never shared, and per-item verdicts are reduced in
// item order — results match a serial run exactly.
func MCAccuracy(m *model.Model, s sparsity.Scheme, tok *data.Tokenizer, items []data.MCItem) float64 {
	if len(items) == 0 {
		return 0
	}
	got := make([]bool, len(items))
	parallel.For(len(items), 1, func(lo, hi int) {
		var hook model.MLPHook
		if s != nil {
			hook = Hook(m, sparsity.Clone(s), HookOpts{})
		}
		for i := lo; i < hi; i++ {
			it := items[i]
			prompt := tok.Encode(it.Prompt)
			best, bestLP := -1, 0.0
			for c, choice := range it.Choices {
				lp := model.ContinuationLogProb(m, prompt, tok.Encode(choice), hook)
				if best < 0 || lp > bestLP {
					best, bestLP = c, lp
				}
			}
			got[i] = best == it.Answer
		}
	})
	correct := 0
	for _, ok := range got {
		if ok {
			correct++
		}
	}
	return 100 * float64(correct) / float64(len(items))
}

// Point is one operating point of the three-way KPI trade-off.
type Point struct {
	Scheme     string
	Density    float64 // measured mean MLP density
	PPL        float64
	Throughput float64 // simulated tok/s
	HitRate    float64
	LatencyS   float64
}

// SystemConfig drives a coupled quality+throughput evaluation.
type SystemConfig struct {
	Device hwsim.Device
	Policy cache.Policy
	// BytesPerWeight defaults to 0.5 (INT4, the Table 2 setting).
	BytesPerWeight float64
	// ExtraStaticWeights pins additional weights in DRAM (predictors).
	ExtraStaticWeights int
	// MaxTokens truncates the token stream (0 = use all).
	MaxTokens int
	// Win is the evaluation window length (defaults to model MaxSeq).
	Win int
}

// SystemEvaluate runs the scheme over the token stream with the cache and
// meter coupled, returning perplexity, measured density, hit rate, and
// simulated throughput. It is a Stream run to completion — the serving
// engine advances the identical per-token machinery, so a session evaluated
// alone reproduces this function bit for bit. For the Belady policy the
// stream construction runs a recording pass first and replays the identical
// token stream against the oracle; cache-aware schemes are rejected there
// because their masks would diverge between passes.
func SystemEvaluate(m *model.Model, s sparsity.Scheme, tokens []int, cfg SystemConfig) (Point, error) {
	st, err := NewStream(m, s, tokens, cfg)
	if err != nil {
		return Point{}, err
	}
	for st.Step() {
	}
	return st.Point(), nil
}

// BestThroughput returns the highest-throughput point whose perplexity is
// at most maxPPL, and whether any point qualified.
func BestThroughput(points []Point, maxPPL float64) (Point, bool) {
	var best Point
	found := false
	for _, p := range points {
		if p.PPL <= maxPPL && (!found || p.Throughput > best.Throughput) {
			best = p
			found = true
		}
	}
	return best, found
}
