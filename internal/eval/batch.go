package eval

import (
	"repro/internal/model"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// BatchArena owns the shared scratch of fused multi-stream stepping: the
// model-level decode arena, the per-slot scheme/view/access tables, and the
// sparsity batch scratch. One arena serves one batch of streams at a time
// (it is not safe for concurrent BatchStep calls); everything inside is
// sized lazily and reused, so steady-state batched decode allocates only
// the per-token KV-cache entries every decoder appends.
type BatchArena struct {
	db      model.DecodeBatch
	sps     sparsity.BatchScratch
	active  []*Stream
	decs    []*model.Decoder
	ids     []int
	schemes []sparsity.Scheme
	views   []sparsity.CacheView
	tas     []sparsity.TokenAccess
	lcol    tensor.Vec
	m       *model.Model
	hookFn  model.BatchMLPHook
}

// ensure sizes the arena tables for a batch of width B.
func (a *BatchArena) ensure(B int) {
	for len(a.decs) < B {
		a.decs = append(a.decs, nil)
		a.ids = append(a.ids, 0)
		a.schemes = append(a.schemes, nil)
		a.views = append(a.views, nil)
		a.tas = append(a.tas, sparsity.TokenAccess{})
	}
	if a.hookFn == nil {
		a.hookFn = a.mlpHook
	}
}

// mlpHook is the batched MLP hook: one fused ForwardBatch per layer, then
// per-stream instrumentation in slot order — density accounting plus either
// an immediate cache access priced on the stream's meter (the coupled,
// per-session-cache mode) or a copy into the stream's pending buffer (the
// deferred, shared-cache mode). Per stream this is exactly what
// coupledHook/deferredHook do one token at a time.
func (a *BatchArena) mlpHook(layer int, xs *tensor.Mat, out *tensor.Mat) {
	B := len(a.active)
	sparsity.ForwardBatch(layer, a.schemes[:B], xs, a.m.Blocks[layer].MLP, a.views[:B], out, a.tas[:B], &a.sps)
	for b, st := range a.active {
		ta := &a.tas[b]
		st.acc.Add(ta)
		if st.deferred {
			p := &st.pending[layer]
			for g := range ta.Groups {
				p.Groups[g].Kind = ta.Groups[g].Kind
				p.Groups[g].Units = append(p.Groups[g].Units[:0], ta.Groups[g].Units...)
			}
		} else {
			if layer == 0 {
				st.meter.BeginToken()
			}
			res := st.mc.Access(layer, ta)
			st.meter.AddAccess(res)
			st.note(res)
		}
	}
}

// BatchStep advances every unfinished stream in sts by one token through a
// single fused decode step — the multi-RHS batched analogue of calling
// Step on each stream in order, and bit-identical to it: same outputs, same
// CE sums, same cache and meter traffic per stream. Streams must share one
// model; KV caches, window state, scheme state, and (possibly shared)
// caches stay per-stream. Finished streams are skipped, so a draining batch
// shrinks naturally. In deferred mode the caller must Commit every stepped
// stream between BatchSteps, exactly as with Step.
//
// It returns the number of streams advanced (0 when every stream is done).
func BatchStep(sts []*Stream, a *BatchArena) int {
	a.active = a.active[:0]
	for _, st := range sts {
		if st.pos >= st.total {
			continue
		}
		if st.deferred && st.dirty {
			panic("eval: deferred Stream stepped with uncommitted accesses")
		}
		a.active = append(a.active, st)
	}
	B := len(a.active)
	if B == 0 {
		return 0
	}
	a.ensure(B)
	m := a.active[0].m
	for b, st := range a.active {
		if st.m != m {
			panic("eval: BatchStep streams must share one model")
		}
		if st.winPos == 0 {
			if st.dec == nil {
				st.dec = st.m.NewDecoder(st.hook)
			} else {
				st.dec.Reset()
			}
		}
		a.decs[b] = st.dec
		a.ids[b] = st.tokens[st.pos]
		a.schemes[b] = st.s
		a.views[b] = st.mc
	}
	a.m = m
	logits := m.StepBatch(a.decs[:B], a.ids[:B], a.hookFn, &a.db)
	a.lcol = tensor.Reuse(a.lcol, logits.Rows)
	for b, st := range a.active {
		st.pos++
		st.decoded++
		st.winPos++
		if st.winPos < st.win {
			// This position predicts the next token of the same window; the
			// window's final logits are context-only, as in Stream.Step.
			lg := logits.Col(b, a.lcol)
			st.winCE += tensor.LogSumExp(lg) - float64(lg[st.tokens[st.pos]])
			st.preds++
		} else {
			st.ce += st.winCE
			st.winCE = 0
			st.winPos = 0
		}
		if st.deferred {
			st.dirty = true
		}
	}
	return B
}
