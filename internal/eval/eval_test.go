package eval

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/data"
	"repro/internal/hwsim"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// zoo holds one trained tiny model shared across the package's tests.
var zoo struct {
	m     *model.Model
	tok   *data.Tokenizer
	calib []int
	test  []int
}

func trained(t *testing.T) {
	t.Helper()
	if zoo.m != nil {
		return
	}
	tok := data.NewTokenizer()
	splits := data.NewSplits(61, 14000, 3000)
	cfg := model.Config{
		Name: model.Mistral7BSim, Vocab: tok.VocabSize(), Dim: 16, Layers: 2,
		Heads: 2, KVHeads: 1, DFF: 32, MaxSeq: 32, Act: nn.ActSiLU,
	}
	m := model.New(cfg, 17)
	opts := model.DefaultTrainOpts()
	opts.Steps = 100
	opts.Batch = 2
	opts.SeqLen = 31
	if _, err := model.Train(m, tok.Encode(splits.Train), opts); err != nil {
		t.Fatal(err)
	}
	zoo.m, zoo.tok = m, tok
	zoo.calib = tok.Encode(splits.Calib)
	zoo.test = tok.Encode(splits.Test)[:1500]
}

func TestPerplexityUnderSchemeDenseMatchesNilHook(t *testing.T) {
	trained(t)
	pplDense := model.Perplexity(zoo.m, zoo.test, 32, nil)
	ppl, density := PerplexityUnderScheme(zoo.m, sparsity.Dense{}, zoo.test, 32)
	if math.Abs(ppl-pplDense) > 1e-9 {
		t.Fatalf("dense scheme ppl %v != nil hook ppl %v", ppl, pplDense)
	}
	if math.Abs(density-1) > 1e-9 {
		t.Fatalf("dense density = %v", density)
	}
}

func TestSparserIsWorsePPL(t *testing.T) {
	trained(t)
	p80, d80 := PerplexityUnderScheme(zoo.m, sparsity.NewDIP(0.8), zoo.test, 32)
	p30, d30 := PerplexityUnderScheme(zoo.m, sparsity.NewDIP(0.3), zoo.test, 32)
	if p30 <= p80 {
		t.Fatalf("30%% density ppl %v should exceed 80%% density ppl %v", p30, p80)
	}
	if d30 >= d80 {
		t.Fatalf("measured densities inverted: %v vs %v", d30, d80)
	}
}

func TestMCAccuracy(t *testing.T) {
	trained(t)
	// Spelling corruption only needs character statistics, which even the
	// miniature test model learns; agreement needs the paper-scale models.
	items := data.GenerateTask(data.TaskSpelling, 30, tensor.NewRNG(71))
	dense := MCAccuracy(zoo.m, nil, zoo.tok, items)
	if dense < 40 {
		t.Fatalf("trained model near chance on spelling: %v%%", dense)
	}
	aggressive := MCAccuracy(zoo.m, sparsity.NewDIP(0.1), zoo.tok, items)
	if aggressive > dense+10 {
		t.Fatalf("10%% density (%v%%) should not beat dense (%v%%) by much", aggressive, dense)
	}
	if got := MCAccuracy(zoo.m, nil, zoo.tok, nil); got != 0 {
		t.Fatal("empty item list should score 0")
	}
}

func TestSystemEvaluateProducesCoherentPoint(t *testing.T) {
	trained(t)
	pt, err := SystemEvaluate(zoo.m, sparsity.NewDIP(0.5), zoo.test, SystemConfig{
		Device: hwsim.A18Like(), Policy: cache.PolicyLFU, MaxTokens: 800,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.PPL <= 1 || pt.Throughput <= 0 || pt.LatencyS <= 0 {
		t.Fatalf("incoherent point: %+v", pt)
	}
	if pt.HitRate <= 0 || pt.HitRate >= 1 {
		t.Fatalf("hit rate %v out of open interval", pt.HitRate)
	}
	if math.Abs(pt.Density-0.5) > 0.08 {
		t.Fatalf("measured density %v far from target", pt.Density)
	}
	if pt.Scheme != "dip" {
		t.Fatalf("scheme name %q", pt.Scheme)
	}
}

func TestSystemEvaluateBeladyMatchesAccessStream(t *testing.T) {
	trained(t)
	cfgFor := func(p cache.Policy) SystemConfig {
		return SystemConfig{Device: hwsim.A18Like(), Policy: p, MaxTokens: 600}
	}
	dip := sparsity.NewDIP(0.5)
	bel, err := SystemEvaluate(zoo.m, dip, zoo.test, cfgFor(cache.PolicyBelady))
	if err != nil {
		t.Fatal(err)
	}
	lru, err := SystemEvaluate(zoo.m, dip, zoo.test, cfgFor(cache.PolicyLRU))
	if err != nil {
		t.Fatal(err)
	}
	lfu, err := SystemEvaluate(zoo.m, dip, zoo.test, cfgFor(cache.PolicyLFU))
	if err != nil {
		t.Fatal(err)
	}
	// Identical model quality (masks don't depend on the cache)...
	if math.Abs(bel.PPL-lru.PPL) > 1e-9 || math.Abs(bel.PPL-lfu.PPL) > 1e-9 {
		t.Fatal("policy must not affect plain-DIP perplexity")
	}
	// ...but the oracle's hit rate upper-bounds the practical policies.
	if bel.HitRate < lru.HitRate-1e-9 || bel.HitRate < lfu.HitRate-1e-9 {
		t.Fatalf("Belady hit rate %.4f below LRU %.4f or LFU %.4f", bel.HitRate, lru.HitRate, lfu.HitRate)
	}
}

func TestSystemEvaluateRejectsCacheAwareBelady(t *testing.T) {
	trained(t)
	_, err := SystemEvaluate(zoo.m, sparsity.NewDIPCA(0.5, 0.2), zoo.test, SystemConfig{
		Device: hwsim.A18Like(), Policy: cache.PolicyBelady, MaxTokens: 200,
	})
	if err == nil {
		t.Fatal("expected rejection of DIP-CA under Belady")
	}
}

func TestDIPCABeatsDIPThroughputAtSimilarPPL(t *testing.T) {
	trained(t)
	cfg := SystemConfig{Device: hwsim.A18Like(), Policy: cache.PolicyLFU, MaxTokens: 800}
	plain, err := SystemEvaluate(zoo.m, sparsity.NewDIP(0.5), zoo.test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := SystemEvaluate(zoo.m, sparsity.NewDIPCA(0.5, 0.2), zoo.test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("DIP: ppl %.3f tput %.3f hit %.3f | DIP-CA: ppl %.3f tput %.3f hit %.3f",
		plain.PPL, plain.Throughput, plain.HitRate, ca.PPL, ca.Throughput, ca.HitRate)
	if ca.Throughput <= plain.Throughput {
		t.Fatalf("DIP-CA throughput %.4f not above DIP %.4f", ca.Throughput, plain.Throughput)
	}
	// The accuracy cost of re-weighting must be modest at γ=0.2.
	if ca.PPL > plain.PPL*1.5 {
		t.Fatalf("DIP-CA ppl %.3f blew up vs DIP %.3f", ca.PPL, plain.PPL)
	}
}

func TestSystemConfigValidateNamesBadField(t *testing.T) {
	base := SystemConfig{Device: hwsim.A18Like(), Policy: cache.PolicyLFU}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		mutate func(*SystemConfig)
		field  string
	}{
		{func(c *SystemConfig) { c.Device.DRAMBandwidth = 0 }, "DRAMBandwidth"},
		{func(c *SystemConfig) { c.Device.FlashBandwidth = -1 }, "FlashBandwidth"},
		{func(c *SystemConfig) { c.Device.DRAMFraction = 0 }, "DRAMFraction"},
		{func(c *SystemConfig) { c.Policy = cache.Policy(99) }, "Policy"},
		{func(c *SystemConfig) { c.BytesPerWeight = -0.5 }, "BytesPerWeight"},
		{func(c *SystemConfig) { c.ExtraStaticWeights = -1 }, "ExtraStaticWeights"},
		{func(c *SystemConfig) { c.MaxTokens = -1 }, "MaxTokens"},
		{func(c *SystemConfig) { c.Win = -1 }, "Win"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Fatalf("bad %s accepted", tc.field)
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Fatalf("error %q does not name field %s", err, tc.field)
		}
	}
	// SystemEvaluate and the serving stream path both enforce validation.
	if _, err := SystemEvaluate(zoo.m, sparsity.Dense{}, nil, SystemConfig{}); err == nil {
		t.Fatal("SystemEvaluate accepted a zero SystemConfig")
	}
	if _, err := NewStreamWith(zoo.m, sparsity.Dense{}, nil, SystemConfig{}, StreamOpts{}); err == nil {
		t.Fatal("NewStreamWith accepted a zero SystemConfig")
	}
}

// The Stream API is the machinery under SystemEvaluate; stepping one by
// hand must land on the same point, and its incremental (KV-cached)
// perplexity must agree with the windowed teacher-forced evaluation.
func TestStreamStepsMatchSystemEvaluate(t *testing.T) {
	trained(t)
	cfg := SystemConfig{Device: hwsim.A18Like(), Policy: cache.PolicyLFU, MaxTokens: 640}
	st, err := NewStream(zoo.m, sparsity.NewDIPCA(0.5, 0.2), zoo.test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for st.Step() {
		steps++
	}
	if steps != st.TotalTokens() || !st.Done() || st.Pos() != steps {
		t.Fatalf("stepped %d, total %d, pos %d", steps, st.TotalTokens(), st.Pos())
	}
	pt, err := SystemEvaluate(zoo.m, sparsity.NewDIPCA(0.5, 0.2), zoo.test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Point() != pt {
		t.Fatalf("manual stepping %+v != SystemEvaluate %+v", st.Point(), pt)
	}
	hits, misses := st.Traffic()
	if hits <= 0 || misses <= 0 {
		t.Fatalf("traffic %d/%d", hits, misses)
	}
	// Incremental decoding vs teacher-forced windows: same math, only
	// float accumulation order differs.
	ppl := model.Perplexity(zoo.m, zoo.test[:640], zoo.m.Cfg.MaxSeq, Hook(zoo.m, sparsity.NewDIP(0.5), HookOpts{}))
	stDip, err := NewStream(zoo.m, sparsity.NewDIP(0.5), zoo.test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for stDip.Step() {
	}
	if math.Abs(stDip.Point().PPL-ppl)/ppl > 1e-3 {
		t.Fatalf("incremental ppl %v far from windowed ppl %v", stDip.Point().PPL, ppl)
	}
}

func TestBestThroughput(t *testing.T) {
	points := []Point{
		{PPL: 5.0, Throughput: 1.0},
		{PPL: 5.4, Throughput: 2.0},
		{PPL: 6.0, Throughput: 3.0},
	}
	best, ok := BestThroughput(points, 5.5)
	if !ok || best.Throughput != 2.0 {
		t.Fatalf("best = %+v ok=%v", best, ok)
	}
	if _, ok := BestThroughput(points, 4.0); ok {
		t.Fatal("no point should qualify")
	}
}

func TestDensityAccumulator(t *testing.T) {
	trained(t)
	acc := NewDensityAccumulator(zoo.m)
	if acc.Mean() != 0 {
		t.Fatal("empty accumulator should be 0")
	}
	var ta sparsity.TokenAccess
	ta.Groups[sparsity.GroupUpRows] = sparsity.GroupAccess{Kind: sparsity.AccessDense}
	ta.Groups[sparsity.GroupGateRows] = sparsity.GroupAccess{Kind: sparsity.AccessDense}
	ta.Groups[sparsity.GroupDown] = sparsity.GroupAccess{Kind: sparsity.AccessDense}
	acc.Add(&ta)
	if acc.Mean() != 1 {
		t.Fatalf("mean = %v", acc.Mean())
	}
}

// Restart rewinds a stream for a from-scratch re-prefill (the serving
// engine's destructive-fault recovery): the rerun's CE, prediction count,
// and density must equal a fresh stream's bit for bit, while Decoded keeps
// counting the discarded prefix that Pos forgets.
func TestStreamRestartReplaysFromScratch(t *testing.T) {
	trained(t)
	cfg := SystemConfig{Device: hwsim.A18Like(), Policy: cache.PolicyLFU}
	toks := zoo.test[:96]
	st, err := NewStream(zoo.m, sparsity.NewDIP(0.5), toks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !st.Step() {
			t.Fatal("stream drained during the discarded prefix")
		}
	}
	st.Restart()
	if st.Pos() != 0 || st.Decoded() != 10 {
		t.Fatalf("after Restart: Pos %d (want 0), Decoded %d (want 10)", st.Pos(), st.Decoded())
	}
	for st.Step() {
	}
	fresh, err := NewStream(zoo.m, sparsity.NewDIP(0.5), toks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for fresh.Step() {
	}
	ceA, pA := st.CE()
	ceB, pB := fresh.CE()
	if ceA != ceB || pA != pB {
		t.Fatalf("restarted CE (%v, %d) != fresh CE (%v, %d)", ceA, pA, ceB, pB)
	}
	if a, b := st.Point(), fresh.Point(); a.PPL != b.PPL || a.Density != b.Density {
		t.Fatalf("restarted Point diverged from fresh run:\nrestarted %+v\nfresh     %+v", a, b)
	}
	if st.Pos() != 96 || st.Decoded() != 96+10 {
		t.Fatalf("final Pos %d / Decoded %d, want 96 / 106", st.Pos(), st.Decoded())
	}
}

// Restart is a tick-boundary operation: a deferred stream with uncommitted
// accesses must refuse it, exactly like Release.
func TestStreamRestartPanicsOnUncommittedAccesses(t *testing.T) {
	trained(t)
	cfg := SystemConfig{Device: hwsim.A18Like(), Policy: cache.PolicyLFU}
	plan, err := hwsim.NewPlan(zoo.m, cfg.Device, hwsim.PlanOpts{
		Groups: hwsim.ProbeGroups(sparsity.NewDIP(0.5), zoo.m),
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStreamWith(zoo.m, sparsity.NewDIP(0.5), zoo.test[:32], cfg, StreamOpts{
		Plan: plan, Cache: plan.NewCache(cfg.Policy), Deferred: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Step() {
		t.Fatal("first Step failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Restart on an uncommitted deferred stream must panic")
		}
	}()
	st.Restart()
}
