package nn

import "math"

// Adam is the Adam optimizer with optional global gradient-norm clipping.
type Adam struct {
	LR, Beta1, Beta2, Eps float32
	Clip                  float32 // global grad-norm clip; 0 disables
	step                  int
	m, v                  map[*Param][]float32
}

// NewAdam returns an optimizer with the usual defaults (β1=0.9, β2=0.999).
func NewAdam(lr float32) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Clip: 1.0,
		m: make(map[*Param][]float32), v: make(map[*Param][]float32),
	}
}

// Step applies one update to every parameter using accumulated gradients,
// then zeroes the gradients. lrScale multiplies the base learning rate,
// allowing cosine schedules without mutating the optimizer.
func (a *Adam) Step(params []*Param, lrScale float32) {
	a.step++
	if a.Clip > 0 {
		var ss float64
		for _, p := range params {
			for _, g := range p.G.Data {
				ss += float64(g) * float64(g)
			}
		}
		norm := float32(math.Sqrt(ss))
		if norm > a.Clip {
			scale := a.Clip / norm
			for _, p := range params {
				for i := range p.G.Data {
					p.G.Data[i] *= scale
				}
			}
		}
	}
	bc1 := float32(1 - math.Pow(float64(a.Beta1), float64(a.step)))
	bc2 := float32(1 - math.Pow(float64(a.Beta2), float64(a.step)))
	lr := a.LR * lrScale
	for _, p := range params {
		m := a.m[p]
		if m == nil {
			m = make([]float32, p.Size())
			a.m[p] = m
			a.v[p] = make([]float32, p.Size())
		}
		v := a.v[p]
		for i, g := range p.G.Data {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mhat := m[i] / bc1
			vhat := v[i] / bc2
			p.W.Data[i] -= lr * mhat / (float32(math.Sqrt(float64(vhat))) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// CosineLR returns the cosine-decay multiplier for step t of total, with a
// linear warmup over the first warmup steps.
func CosineLR(t, warmup, total int) float32 {
	if t < warmup {
		return float32(t+1) / float32(warmup)
	}
	if t >= total {
		return 0.05
	}
	prog := float64(t-warmup) / float64(total-warmup)
	return float32(0.05 + 0.95*0.5*(1+math.Cos(math.Pi*prog)))
}

// GradCheck compares the analytic gradient of param entry (i) against a
// central finite difference of loss(). It is test infrastructure exposed
// here so the model package can reuse it.
func GradCheck(p *Param, i int, loss func() float64, h float32) (analytic, numeric float64) {
	analytic = float64(p.G.Data[i])
	orig := p.W.Data[i]
	p.W.Data[i] = orig + h
	up := loss()
	p.W.Data[i] = orig - h
	down := loss()
	p.W.Data[i] = orig
	numeric = (up - down) / (2 * float64(h))
	return analytic, numeric
}
