package nn

import (
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Batched (multi-RHS) decode-step entry points: B concurrent sessions step
// through the same weights in one fused pass, walking each projection
// matrix once instead of B times. The batch layout matches internal/tensor:
// column b of every Mat is session b's vector. Every batched method is
// bit-identical per column to its single-vector counterpart (enforced in
// tests) — the fusion changes traversal order over *sessions*, never the
// per-output floating-point accumulation order.

// MLPBatchScratch holds the reusable intermediates of one fused dense
// GLU-MLP evaluation over B sessions. A zero value is ready to use; buffers
// are sized lazily and reused across steps, so steady-state fused decode
// does not allocate here.
type MLPBatchScratch struct {
	U, G *tensor.Mat
}

// ApplyBatch computes the dense MLP output for every column of xs (Dim × B)
// into out (Dim × B, allocated when nil): one fused walk over W_u, W_g, and
// W_d for the whole batch. Bit-identical per column to ApplyInto.
func (m *GLUMLP) ApplyBatch(xs, out *tensor.Mat, s *MLPBatchScratch) *tensor.Mat {
	var local MLPBatchScratch
	if s == nil {
		s = &local
	}
	B := xs.Cols
	s.U = tensor.MatVecBatch(m.Up.P.W, xs, tensor.ReuseMat(s.U, m.DFF, B))
	s.G = tensor.MatVecBatch(m.Gate.P.W, xs, tensor.ReuseMat(s.G, m.DFF, B))
	// H = U ⊙ σ(G), written over U in place (same element order as the
	// single-vector path, so the float32 results are identical).
	for i, g := range s.G.Data {
		s.U.Data[i] *= m.Act.Apply(g)
	}
	if out == nil {
		out = tensor.NewMat(m.Dim, B)
	}
	return tensor.MatVecBatch(m.Down.P.W, s.U, out)
}

// attnBatchSlot is one session's private buffers inside a fused attention
// step: slot b is only ever touched by the goroutine handling column b.
type attnBatchSlot struct {
	q, cat, scores tensor.Vec
}

// AttnBatchScratch holds the fused attention-step buffers for a batch of
// sessions. A zero value is ready to use; buffers grow lazily and are
// reused across steps.
type AttnBatchScratch struct {
	Q, K, V, Cat *tensor.Mat
	slots        []attnBatchSlot
}

// StepBatch runs one incremental attention step for B independent sessions
// sharing the projection weights: xs (Dim × B) holds the post-norm inputs,
// caches[b] is session b's KV history (appended to, exactly as Step does),
// and the outputs land in the columns of out (Dim × B, allocated when nil).
// The four projections are fused multi-RHS products; the per-session
// score/softmax/context loops — which read disjoint KV caches — fan out
// over the worker pool with per-slot scratch. Bit-identical per column to B
// independent Step calls.
func (a *Attention) StepBatch(xs *tensor.Mat, caches []*KVCache, out *tensor.Mat, s *AttnBatchScratch) *tensor.Mat {
	B := xs.Cols
	if len(caches) != B {
		panic("nn: Attention.StepBatch cache count mismatch")
	}
	hd := a.HeadDim
	s.Q = tensor.MatVecBatch(a.Wq.P.W, xs, tensor.ReuseMat(s.Q, a.NHeads*hd, B))
	s.K = tensor.MatVecBatch(a.Wk.P.W, xs, tensor.ReuseMat(s.K, a.NKV*hd, B))
	s.V = tensor.MatVecBatch(a.Wv.P.W, xs, tensor.ReuseMat(s.V, a.NKV*hd, B))
	// Appended keys/values are retained by the caches, so they are the one
	// genuine per-step allocation — the same two the single path makes.
	for b, c := range caches {
		c.Ks = append(c.Ks, s.K.Col(b, tensor.NewVec(a.NKV*hd)))
		c.Vs = append(c.Vs, s.V.Col(b, tensor.NewVec(a.NKV*hd)))
	}
	for len(s.slots) < B {
		s.slots = append(s.slots, attnBatchSlot{})
	}
	s.Cat = tensor.ReuseMat(s.Cat, a.NHeads*hd, B)
	group := a.NHeads / a.NKV
	parallel.For(B, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			sl := &s.slots[b]
			c := caches[b]
			T := len(c.Ks)
			q := s.Q.Col(b, tensor.Grow(sl.q, a.NHeads*hd))
			sl.q = q
			cat := tensor.Grow(sl.cat, a.NHeads*hd)
			sl.cat = cat
			cat.Zero()
			sl.scores = tensor.Grow(sl.scores, T)
			for h := 0; h < a.NHeads; h++ {
				g := h / group
				qh := q[h*hd : (h+1)*hd]
				scores := sl.scores
				for t := 0; t < T; t++ {
					ks := c.Ks[t][g*hd : (g+1)*hd]
					var dot float32
					for i := 0; i < hd; i++ {
						dot += qh[i] * ks[i]
					}
					scores[t] = dot * a.scale
				}
				p := tensor.Softmax(scores, scores)
				o := cat[h*hd : (h+1)*hd]
				for t := 0; t < T; t++ {
					vs := c.Vs[t][g*hd : (g+1)*hd]
					ps := p[t]
					for i := 0; i < hd; i++ {
						o[i] += ps * vs[i]
					}
				}
			}
			s.Cat.SetCol(b, cat)
		}
	})
	if out == nil {
		out = tensor.NewMat(a.Dim, B)
	}
	return tensor.MatVecBatch(a.Wo.P.W, s.Cat, out)
}
