package nn

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/tensor"
)

func randSeq(rng *tensor.RNG, T, dim int) []tensor.Vec {
	xs := make([]tensor.Vec, T)
	for t := range xs {
		x := tensor.NewVec(dim)
		for i := range x {
			x[i] = rng.NormFloat32()
		}
		xs[t] = x
	}
	return xs
}

// checkGrads verifies analytic parameter gradients against central finite
// differences for a sampled subset of entries.
func checkGrads(t *testing.T, params []*Param, loss func() float64, run func(), tol float64) {
	t.Helper()
	for _, p := range params {
		p.ZeroGrad()
	}
	run()
	rng := tensor.NewRNG(99)
	for _, p := range params {
		n := p.Size()
		checks := 6
		if n < checks {
			checks = n
		}
		for c := 0; c < checks; c++ {
			i := rng.Intn(n)
			analytic, numeric := GradCheck(p, i, loss, 1e-2)
			scale := math.Max(math.Abs(analytic), math.Abs(numeric))
			if scale < 1e-4 {
				continue
			}
			if math.Abs(analytic-numeric)/scale > tol {
				t.Fatalf("%s[%d]: analytic %.6f vs numeric %.6f", p.Name, i, analytic, numeric)
			}
		}
	}
}

func TestLinearGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	lin := NewLinear("lin", 5, 4, rng)
	xs := randSeq(rng, 3, 4)
	target := randSeq(rng, 3, 5)
	loss := func() float64 {
		ys, _ := lin.Forward(xs)
		var s float64
		for t := range ys {
			for i := range ys[t] {
				d := float64(ys[t][i] - target[t][i])
				s += 0.5 * d * d
			}
		}
		return s
	}
	run := func() {
		ys, ctx := lin.Forward(xs)
		dys := make([]tensor.Vec, len(ys))
		for t := range ys {
			dys[t] = tensor.NewVec(len(ys[t]))
			for i := range ys[t] {
				dys[t][i] = ys[t][i] - target[t][i]
			}
		}
		lin.Backward(dys, ctx)
	}
	checkGrads(t, lin.Params(), loss, run, 0.03)
}

func TestLinearInputGradient(t *testing.T) {
	rng := tensor.NewRNG(2)
	lin := NewLinear("lin", 4, 3, rng)
	xs := randSeq(rng, 1, 3)
	ys, ctx := lin.Forward(xs)
	dys := []tensor.Vec{tensor.NewVec(4)}
	for i := range dys[0] {
		dys[0][i] = 1
	}
	dxs := lin.Backward(dys, ctx)
	// Finite difference on the input.
	for j := 0; j < 3; j++ {
		const h = 1e-3
		orig := xs[0][j]
		xs[0][j] = orig + h
		up, _ := lin.Forward(xs)
		xs[0][j] = orig - h
		down, _ := lin.Forward(xs)
		xs[0][j] = orig
		var num float64
		for i := range up[0] {
			num += float64(up[0][i]-down[0][i]) / (2 * h)
		}
		if math.Abs(num-float64(dxs[0][j])) > 1e-2 {
			t.Fatalf("input grad %d: analytic %v numeric %v", j, dxs[0][j], num)
		}
	}
	_ = ys
}

func TestRMSNormGradients(t *testing.T) {
	rng := tensor.NewRNG(3)
	norm := NewRMSNorm("norm", 6)
	// Perturb the gain so gradients aren't trivially symmetric.
	for i := range norm.Gain.W.Data {
		norm.Gain.W.Data[i] = 1 + 0.1*rng.NormFloat32()
	}
	xs := randSeq(rng, 2, 6)
	target := randSeq(rng, 2, 6)
	loss := func() float64 {
		ys, _ := norm.Forward(xs)
		var s float64
		for t := range ys {
			for i := range ys[t] {
				d := float64(ys[t][i] - target[t][i])
				s += 0.5 * d * d
			}
		}
		return s
	}
	run := func() {
		ys, ctx := norm.Forward(xs)
		dys := make([]tensor.Vec, len(ys))
		for t := range ys {
			dys[t] = tensor.NewVec(len(ys[t]))
			for i := range ys[t] {
				dys[t][i] = ys[t][i] - target[t][i]
			}
		}
		norm.Backward(dys, ctx)
	}
	checkGrads(t, norm.Params(), loss, run, 0.03)
}

func TestRMSNormInputGradient(t *testing.T) {
	rng := tensor.NewRNG(4)
	norm := NewRMSNorm("norm", 5)
	xs := randSeq(rng, 1, 5)
	_, ctx := norm.Forward(xs)
	dys := []tensor.Vec{{0.3, -0.2, 0.5, 0.1, -0.4}}
	dxs := norm.Backward(dys, ctx)
	for j := 0; j < 5; j++ {
		const h = 1e-3
		orig := xs[0][j]
		eval := func(v float32) float64 {
			xs[0][j] = v
			ys, _ := norm.Forward(xs)
			var s float64
			for i := range ys[0] {
				s += float64(dys[0][i] * ys[0][i])
			}
			return s
		}
		num := (eval(orig+h) - eval(orig-h)) / (2 * h)
		xs[0][j] = orig
		if math.Abs(num-float64(dxs[0][j])) > 1e-2 {
			t.Fatalf("RMSNorm input grad %d: analytic %v numeric %v", j, dxs[0][j], num)
		}
	}
}

func TestRMSNormApplyMatchesForward(t *testing.T) {
	rng := tensor.NewRNG(5)
	norm := NewRMSNorm("norm", 8)
	xs := randSeq(rng, 3, 8)
	ys, _ := norm.Forward(xs)
	for t2, x := range xs {
		y := norm.Apply(x, nil)
		for i := range y {
			if math.Abs(float64(y[i]-ys[t2][i])) > 1e-6 {
				t.Fatal("Apply and Forward disagree")
			}
		}
	}
}

func TestGLUMLPGradients(t *testing.T) {
	for _, act := range []Activation{ActSiLU, ActReLU} {
		rng := tensor.NewRNG(6)
		mlp := NewGLUMLP("mlp", 5, 8, act, rng)
		xs := randSeq(rng, 2, 5)
		target := randSeq(rng, 2, 5)
		loss := func() float64 {
			ys, _ := mlp.Forward(xs)
			var s float64
			for t := range ys {
				for i := range ys[t] {
					d := float64(ys[t][i] - target[t][i])
					s += 0.5 * d * d
				}
			}
			return s
		}
		run := func() {
			ys, ctx := mlp.Forward(xs)
			dys := make([]tensor.Vec, len(ys))
			for t := range ys {
				dys[t] = tensor.NewVec(len(ys[t]))
				for i := range ys[t] {
					dys[t][i] = ys[t][i] - target[t][i]
				}
			}
			mlp.Backward(dys, ctx)
		}
		checkGrads(t, mlp.Params(), loss, run, 0.05)
	}
}

func TestGLUMLPApplyMatchesForward(t *testing.T) {
	rng := tensor.NewRNG(7)
	mlp := NewGLUMLP("mlp", 6, 10, ActSiLU, rng)
	xs := randSeq(rng, 4, 6)
	ys, _ := mlp.Forward(xs)
	for t2, x := range xs {
		y := mlp.Apply(x)
		for i := range y {
			if math.Abs(float64(y[i]-ys[t2][i])) > 1e-5 {
				t.Fatal("Apply and Forward disagree")
			}
		}
	}
}

func TestAttentionGradients(t *testing.T) {
	rng := tensor.NewRNG(8)
	attn := NewAttention("attn", 8, 2, 1, rng)
	xs := randSeq(rng, 3, 8)
	target := randSeq(rng, 3, 8)
	loss := func() float64 {
		ys, _ := attn.Forward(xs)
		var s float64
		for t := range ys {
			for i := range ys[t] {
				d := float64(ys[t][i] - target[t][i])
				s += 0.5 * d * d
			}
		}
		return s
	}
	run := func() {
		ys, ctx := attn.Forward(xs)
		dys := make([]tensor.Vec, len(ys))
		for t := range ys {
			dys[t] = tensor.NewVec(len(ys[t]))
			for i := range ys[t] {
				dys[t][i] = ys[t][i] - target[t][i]
			}
		}
		attn.Backward(dys, ctx)
	}
	checkGrads(t, attn.Params(), loss, run, 0.05)
}

func TestAttentionCausality(t *testing.T) {
	rng := tensor.NewRNG(9)
	attn := NewAttention("attn", 8, 4, 2, rng)
	xs := randSeq(rng, 5, 8)
	ys, _ := attn.Forward(xs)
	// Changing a future input must not change a past output.
	xs2 := make([]tensor.Vec, len(xs))
	for i, x := range xs {
		xs2[i] = x.Clone()
	}
	xs2[4].Fill(99)
	ys2, _ := attn.Forward(xs2)
	for t2 := 0; t2 < 4; t2++ {
		for i := range ys[t2] {
			if ys[t2][i] != ys2[t2][i] {
				t.Fatalf("output %d changed when future input changed", t2)
			}
		}
	}
}

func TestAttentionStepMatchesForward(t *testing.T) {
	rng := tensor.NewRNG(10)
	attn := NewAttention("attn", 12, 4, 2, rng)
	xs := randSeq(rng, 6, 12)
	ys, _ := attn.Forward(xs)
	cache := &KVCache{}
	for t2, x := range xs {
		y := attn.Step(x, cache)
		for i := range y {
			if math.Abs(float64(y[i]-ys[t2][i])) > 1e-5 {
				t.Fatalf("Step diverges from Forward at position %d", t2)
			}
		}
	}
}

func TestEmbeddingForwardBackward(t *testing.T) {
	rng := tensor.NewRNG(11)
	emb := NewEmbedding(10, 8, 4, rng)
	ids := []int{3, 7, 3}
	xs := emb.Forward(ids)
	if len(xs) != 3 {
		t.Fatal("wrong length")
	}
	// Same token at different positions differs by positional embedding.
	diff := false
	for i := range xs[0] {
		if xs[0][i] != xs[2][i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("positional embedding has no effect")
	}
	// Backward accumulates into the right rows (token 3 gets two updates).
	dxs := []tensor.Vec{{1, 0, 0, 0}, {0, 1, 0, 0}, {1, 0, 0, 0}}
	emb.Backward(dxs, ids)
	if emb.Tok.G.At(3, 0) != 2 {
		t.Fatalf("token grad wrong: %v", emb.Tok.G.At(3, 0))
	}
	if emb.Tok.G.At(7, 1) != 1 {
		t.Fatal("token grad wrong for id 7")
	}
	if emb.Pos.G.At(1, 1) != 1 {
		t.Fatal("positional grad wrong")
	}
}

func TestEmbeddingAtMatchesForward(t *testing.T) {
	rng := tensor.NewRNG(12)
	emb := NewEmbedding(10, 8, 4, rng)
	ids := []int{1, 2, 3}
	xs := emb.Forward(ids)
	for t2, id := range ids {
		x := emb.At(id, t2)
		for i := range x {
			if x[i] != xs[t2][i] {
				t.Fatal("At disagrees with Forward")
			}
		}
	}
}

func TestCrossEntropyGradient(t *testing.T) {
	rng := tensor.NewRNG(13)
	logits := randSeq(rng, 3, 5)
	targets := []int{1, 4, 0}
	dl := make([]tensor.Vec, 3)
	for i := range dl {
		dl[i] = tensor.NewVec(5)
	}
	CrossEntropy(logits, targets, dl)
	for t2 := 0; t2 < 3; t2++ {
		for i := 0; i < 5; i++ {
			const h = 1e-3
			orig := logits[t2][i]
			logits[t2][i] = orig + h
			up := CrossEntropy(logits, targets, nil)
			logits[t2][i] = orig - h
			down := CrossEntropy(logits, targets, nil)
			logits[t2][i] = orig
			num := (up - down) / (2 * h)
			if math.Abs(num-float64(dl[t2][i])) > 1e-2 {
				t.Fatalf("CE grad (%d,%d): analytic %v numeric %v", t2, i, dl[t2][i], num)
			}
		}
	}
}

func TestCrossEntropyUniform(t *testing.T) {
	logits := []tensor.Vec{tensor.NewVec(8)}
	ce := CrossEntropy(logits, []int{3}, nil)
	if math.Abs(ce-math.Log(8)) > 1e-5 {
		t.Fatalf("uniform CE = %v, want ln 8", ce)
	}
	if p := Perplexity(ce); math.Abs(p-8) > 1e-3 {
		t.Fatalf("uniform perplexity = %v, want 8", p)
	}
}

func TestKLDivergence(t *testing.T) {
	a := []tensor.Vec{{1, 2, 3}}
	// Identical distributions have zero KL.
	if kl := KLDivergence(a, a, nil); math.Abs(kl) > 1e-6 {
		t.Fatalf("KL(p,p) = %v", kl)
	}
	b := []tensor.Vec{{3, 2, 1}}
	if kl := KLDivergence(a, b, nil); kl <= 0 {
		t.Fatalf("KL of different distributions should be positive, got %v", kl)
	}
	// Gradient check.
	rng := tensor.NewRNG(14)
	teacher := randSeq(rng, 2, 4)
	student := randSeq(rng, 2, 4)
	dl := []tensor.Vec{tensor.NewVec(4), tensor.NewVec(4)}
	KLDivergence(teacher, student, dl)
	for t2 := 0; t2 < 2; t2++ {
		for i := 0; i < 4; i++ {
			const h = 1e-3
			orig := student[t2][i]
			student[t2][i] = orig + h
			up := KLDivergence(teacher, student, nil)
			student[t2][i] = orig - h
			down := KLDivergence(teacher, student, nil)
			student[t2][i] = orig
			num := (up - down) / (2 * h)
			if math.Abs(num-float64(dl[t2][i])) > 1e-2 {
				t.Fatalf("KL grad (%d,%d): analytic %v numeric %v", t2, i, dl[t2][i], num)
			}
		}
	}
}

func TestAdamReducesLoss(t *testing.T) {
	rng := tensor.NewRNG(15)
	lin := NewLinear("lin", 3, 3, rng)
	target := tensor.Vec{1, -2, 0.5}
	x := tensor.Vec{0.3, 0.7, -0.2}
	lossAt := func() float64 {
		y := lin.Apply(x, nil)
		var s float64
		for i := range y {
			d := float64(y[i] - target[i])
			s += 0.5 * d * d
		}
		return s
	}
	opt := NewAdam(0.05)
	first := lossAt()
	for step := 0; step < 200; step++ {
		ys, ctx := lin.Forward([]tensor.Vec{x})
		dys := []tensor.Vec{tensor.NewVec(3)}
		for i := range ys[0] {
			dys[0][i] = ys[0][i] - target[i]
		}
		lin.Backward(dys, ctx)
		opt.Step(lin.Params(), 1)
	}
	last := lossAt()
	if last > first/100 {
		t.Fatalf("Adam failed to optimize: %v -> %v", first, last)
	}
}

func TestAdamGradClip(t *testing.T) {
	rng := tensor.NewRNG(16)
	lin := NewLinear("lin", 2, 2, rng)
	before := make([]float32, 4)
	copy(before, lin.P.W.Data)
	// Gigantic gradient must be clipped to norm 1, so the update is bounded
	// by lr per entry (times Adam's unit-scale normalization).
	for i := range lin.P.G.Data {
		lin.P.G.Data[i] = 1e9
	}
	opt := NewAdam(0.01)
	opt.Step(lin.Params(), 1)
	for i := range lin.P.W.Data {
		delta := math.Abs(float64(lin.P.W.Data[i] - before[i]))
		if delta > 0.011 {
			t.Fatalf("clipped update too large: %v", delta)
		}
	}
}

func TestCosineLR(t *testing.T) {
	if CosineLR(0, 10, 100) >= CosineLR(9, 10, 100) {
		t.Fatal("warmup should increase")
	}
	if CosineLR(10, 10, 100) < CosineLR(99, 10, 100) {
		t.Fatal("decay should decrease")
	}
	if CosineLR(1000, 10, 100) != 0.05 {
		t.Fatal("post-schedule floor wrong")
	}
}

func TestSaveLoadParams(t *testing.T) {
	rng := tensor.NewRNG(17)
	mlp := NewGLUMLP("mlp", 4, 6, ActSiLU, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, mlp.Params()); err != nil {
		t.Fatal(err)
	}
	mlp2 := NewGLUMLP("mlp", 4, 6, ActSiLU, tensor.NewRNG(999))
	if err := LoadParams(bytes.NewReader(buf.Bytes()), mlp2.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range mlp.Params() {
		q := mlp2.Params()[i]
		for j := range p.W.Data {
			if p.W.Data[j] != q.W.Data[j] {
				t.Fatal("round trip mismatch")
			}
		}
	}
}

func TestLoadParamsDimensionMismatch(t *testing.T) {
	rng := tensor.NewRNG(18)
	a := NewLinear("x", 3, 3, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, a.Params()); err != nil {
		t.Fatal(err)
	}
	b := NewLinear("x", 4, 3, rng)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), b.Params()); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestLoadParamsMissing(t *testing.T) {
	rng := tensor.NewRNG(19)
	a := NewLinear("x", 2, 2, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, a.Params()); err != nil {
		t.Fatal(err)
	}
	b := NewLinear("y", 2, 2, rng)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), b.Params()); err == nil {
		t.Fatal("expected missing-parameter error")
	}
}

func TestLoadParamsBadMagic(t *testing.T) {
	rng := tensor.NewRNG(20)
	a := NewLinear("x", 2, 2, rng)
	if err := LoadParams(bytes.NewReader([]byte("nope")), a.Params()); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestCheckFinite(t *testing.T) {
	rng := tensor.NewRNG(21)
	lin := NewLinear("lin", 2, 2, rng)
	if err := CheckFinite(lin); err != nil {
		t.Fatalf("healthy params flagged: %v", err)
	}
	lin.P.W.Data[0] = float32(math.NaN())
	if err := CheckFinite(lin); err == nil {
		t.Fatal("NaN not detected")
	}
}

func TestCountParams(t *testing.T) {
	rng := tensor.NewRNG(22)
	mlp := NewGLUMLP("m", 4, 8, ActSiLU, rng)
	if got := CountParams(mlp); got != 3*4*8 {
		t.Fatalf("CountParams = %d", got)
	}
	if mlp.WeightCount() != 3*4*8 {
		t.Fatal("WeightCount wrong")
	}
}

func TestActivationString(t *testing.T) {
	if ActSiLU.String() != "silu" || ActReLU.String() != "relu" {
		t.Fatal("activation names wrong")
	}
}
