package nn

import (
	"math"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// tokenGrain is the minimum tokens per parallel block in sequence loops: a
// token's MLP/attention work is tens of microseconds at analog scale, so a
// few tokens per block amortize the scheduling cost.
const tokenGrain = 4

// Activation selects the MLP non-linearity σ in GLU(x) = W_u x ⊙ σ(W_g x).
type Activation int

const (
	// ActSiLU is the SwiGLU configuration used by modern LLMs.
	ActSiLU Activation = iota
	// ActReLU is the "ReLU-fied" configuration (TurboSparse-style) that
	// exhibits natural activation sparsity.
	ActReLU
)

// String names the activation.
func (a Activation) String() string {
	if a == ActReLU {
		return "relu"
	}
	return "silu"
}

// Apply evaluates the activation.
func (a Activation) Apply(x float32) float32 {
	if a == ActReLU {
		return tensor.ReLU(x)
	}
	return tensor.SiLU(x)
}

// Grad evaluates the activation derivative.
func (a Activation) Grad(x float32) float32 {
	if a == ActReLU {
		return tensor.ReLUGrad(x)
	}
	return tensor.SiLUGrad(x)
}

// GLUMLP is the gated MLP block MLP(x) = W_d (W_u x ⊙ σ(W_g x)) of Eq. 1–2.
// The three matrices are exposed because every sparsity scheme in the paper
// is defined directly on their rows/columns.
type GLUMLP struct {
	Up, Gate *Linear // dff × dim
	Down     *Linear // dim × dff
	Act      Activation
	Dim, DFF int
}

// NewGLUMLP allocates the block with fan-in initialization.
func NewGLUMLP(name string, dim, dff int, act Activation, rng *tensor.RNG) *GLUMLP {
	return &GLUMLP{
		Up:   NewLinear(name+".up", dff, dim, rng),
		Gate: NewLinear(name+".gate", dff, dim, rng),
		Down: NewLinear(name+".down", dim, dff, rng),
		Act:  act,
		Dim:  dim,
		DFF:  dff,
	}
}

// Params implements Module.
func (m *GLUMLP) Params() []*Param {
	return []*Param{m.Up.P, m.Gate.P, m.Down.P}
}

// MLPScratch holds the reusable intermediate buffers of one dense GLU-MLP
// evaluation. A zero value is ready to use; buffers are sized lazily on
// first call. One scratch must not be shared across concurrent callers —
// per-worker arenas hand each worker its own.
type MLPScratch struct {
	U, G, H tensor.Vec
}

// GLU computes the intermediate activations W_u x ⊙ σ(W_g x) for a single
// vector into out (allocated when nil). Used by calibration and the
// sparsity oracles.
func (m *GLUMLP) GLU(x, out tensor.Vec) tensor.Vec {
	return m.GLUInto(x, out, nil)
}

// GLUInto is GLU with caller-owned scratch for the two projection buffers,
// eliminating the per-token allocations of the dense hot path. s may be nil.
func (m *GLUMLP) GLUInto(x, out tensor.Vec, s *MLPScratch) tensor.Vec {
	var local MLPScratch
	if s == nil {
		s = &local
	}
	s.U = tensor.MatVec(m.Up.P.W, x, tensor.Reuse(s.U, m.DFF))
	s.G = tensor.MatVec(m.Gate.P.W, x, tensor.Reuse(s.G, m.DFF))
	if out == nil {
		out = tensor.NewVec(m.DFF)
	}
	for i := range out {
		out[i] = s.U[i] * m.Act.Apply(s.G[i])
	}
	return out
}

// Apply computes the dense MLP output for a single vector.
func (m *GLUMLP) Apply(x tensor.Vec) tensor.Vec {
	return m.ApplyInto(x, nil, nil)
}

// ApplyInto is Apply with a caller-provided output buffer and scratch;
// either may be nil. With both non-nil the dense forward is allocation-free.
func (m *GLUMLP) ApplyInto(x, out tensor.Vec, s *MLPScratch) tensor.Vec {
	var local MLPScratch
	if s == nil {
		s = &local
	}
	s.H = m.GLUInto(x, tensor.Reuse(s.H, m.DFF), s)
	return tensor.MatVec(m.Down.P.W, s.H, out)
}

// mlpCtx retains per-position intermediates for Backward.
type mlpCtx struct {
	x, u, g, h tensor.Vec
}

// Forward evaluates the block over a sequence. Tokens are independent, so
// the loop fans out over the worker pool; every per-token intermediate is
// retained for Backward, so outputs are written to disjoint slots and
// results are bit-identical to a serial run.
func (m *GLUMLP) Forward(xs []tensor.Vec) (ys []tensor.Vec, ctx []mlpCtx) {
	ys = make([]tensor.Vec, len(xs))
	ctx = make([]mlpCtx, len(xs))
	parallel.For(len(xs), tokenGrain, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			x := xs[t]
			u := tensor.MatVec(m.Up.P.W, x, nil)
			g := tensor.MatVec(m.Gate.P.W, x, nil)
			h := tensor.NewVec(m.DFF)
			for i := range h {
				h[i] = u[i] * m.Act.Apply(g[i])
			}
			ys[t] = tensor.MatVec(m.Down.P.W, h, nil)
			ctx[t] = mlpCtx{x: x, u: u, g: g, h: h}
		}
	})
	return ys, ctx
}

// Backward accumulates weight gradients and returns input gradients. The
// token loop stays serial so gradients accumulate into the parameters in a
// fixed order (bit-reproducible training); the per-token scratch vectors
// are reused across iterations instead of reallocated.
func (m *GLUMLP) Backward(dys []tensor.Vec, ctx []mlpCtx) []tensor.Vec {
	dxs := make([]tensor.Vec, len(dys))
	dh := tensor.NewVec(m.DFF)
	du := tensor.NewVec(m.DFF)
	dg := tensor.NewVec(m.DFF)
	for t, dy := range dys {
		c := ctx[t]
		// Down projection.
		tensor.AddOuter(m.Down.P.G, 1, dy, c.h)
		dh.Zero()
		tensor.MatTVec(m.Down.P.W, dy, dh)
		// Gate product.
		for i := range dh {
			act := m.Act.Apply(c.g[i])
			du[i] = dh[i] * act
			dg[i] = dh[i] * c.u[i] * m.Act.Grad(c.g[i])
		}
		tensor.AddOuter(m.Up.P.G, 1, du, c.x)
		tensor.AddOuter(m.Gate.P.G, 1, dg, c.x)
		dx := tensor.MatTVec(m.Up.P.W, du, nil)
		tensor.MatTVec(m.Gate.P.W, dg, dx)
		dxs[t] = dx
	}
	return dxs
}

// WeightCount returns the number of scalar weights across the three
// matrices — the denominator of every MLP-density figure.
func (m *GLUMLP) WeightCount() int { return 3 * m.Dim * m.DFF }

// CrossEntropy computes mean token cross-entropy of logits against targets
// and, when dlogits is non-nil, writes ∂loss/∂logits (softmax − onehot,
// scaled by 1/T) into it.
func CrossEntropy(logits []tensor.Vec, targets []int, dlogits []tensor.Vec) float64 {
	if len(logits) != len(targets) {
		panic("nn: CrossEntropy length mismatch")
	}
	var total float64
	scale := float32(1 / float64(len(logits)))
	for t, lg := range logits {
		lse := tensor.LogSumExp(lg)
		total += lse - float64(lg[targets[t]])
		if dlogits != nil {
			p := tensor.Softmax(lg, dlogits[t])
			p[targets[t]] -= 1
			p.Scale(scale)
		}
	}
	return total / float64(len(logits))
}

// KLDivergence computes mean KL(teacher ‖ student) over positions from
// teacher and student logits and optionally writes the student-logit
// gradient (p_student − p_teacher, scaled by 1/T). This is the knowledge
// distillation loss used for LoRA fine-tuning.
func KLDivergence(teacher, student []tensor.Vec, dstudent []tensor.Vec) float64 {
	if len(teacher) != len(student) {
		panic("nn: KLDivergence length mismatch")
	}
	var total float64
	scale := float32(1 / float64(len(student)))
	for t := range student {
		pt := tensor.Softmax(teacher[t], nil)
		lseS := tensor.LogSumExp(student[t])
		lseT := tensor.LogSumExp(teacher[t])
		var kl float64
		for i, p := range pt {
			if p > 0 {
				logPT := float64(teacher[t][i]) - lseT
				logPS := float64(student[t][i]) - lseS
				kl += float64(p) * (logPT - logPS)
			}
		}
		total += kl
		if dstudent != nil {
			ps := tensor.Softmax(student[t], dstudent[t])
			for i := range ps {
				ps[i] = (ps[i] - pt[i]) * scale
			}
		}
	}
	return total / float64(len(student))
}

// Perplexity converts a mean cross-entropy (nats/token) to perplexity.
func Perplexity(meanCE float64) float64 { return math.Exp(meanCE) }
