package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// magic header for the parameter container format.
var paramMagic = [4]byte{'D', 'I', 'P', '1'}

// SaveParams writes the parameters of a module to w in a simple
// length-prefixed little-endian binary container: magic, count, then for
// each parameter its name, dimensions and float32 payload.
func SaveParams(w io.Writer, params []*Param) error {
	if _, err := w.Write(paramMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		name := []byte(p.Name)
		if err := binary.Write(w, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := w.Write(name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(p.W.Rows)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(p.W.Cols)); err != nil {
			return err
		}
		buf := make([]byte, 4*len(p.W.Data))
		for i, x := range p.W.Data {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(x))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// LoadParams reads a container written by SaveParams into the given
// parameters, matching by name. Every parameter in params must be present
// in the stream with identical dimensions.
func LoadParams(r io.Reader, params []*Param) error {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("nn: reading magic: %w", err)
	}
	if magic != paramMagic {
		return fmt.Errorf("nn: bad magic %q", magic[:])
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}
	byName := make(map[string]*Param, len(params))
	for _, p := range params {
		byName[p.Name] = p
	}
	loaded := make(map[string]bool)
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		if nameLen > 1<<16 {
			return fmt.Errorf("nn: implausible name length %d", nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(r, nameBuf); err != nil {
			return err
		}
		var rows, cols uint32
		if err := binary.Read(r, binary.LittleEndian, &rows); err != nil {
			return err
		}
		if err := binary.Read(r, binary.LittleEndian, &cols); err != nil {
			return err
		}
		payload := make([]byte, 4*rows*cols)
		if _, err := io.ReadFull(r, payload); err != nil {
			return err
		}
		p, ok := byName[string(nameBuf)]
		if !ok {
			continue // tolerate extra parameters in the stream
		}
		if uint32(p.W.Rows) != rows || uint32(p.W.Cols) != cols {
			return fmt.Errorf("nn: parameter %s dimension mismatch: file %dx%d, model %dx%d",
				nameBuf, rows, cols, p.W.Rows, p.W.Cols)
		}
		for j := range p.W.Data {
			p.W.Data[j] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*j:]))
		}
		loaded[string(nameBuf)] = true
	}
	for _, p := range params {
		if !loaded[p.Name] {
			return fmt.Errorf("nn: parameter %s missing from stream", p.Name)
		}
	}
	return nil
}
