// Package nn implements the neural-network substrate: linear, embedding,
// RMSNorm, gated-MLP and causal grouped-query attention layers, each with
// hand-written forward and backward passes, plus the Adam optimizer and
// binary parameter serialization. There is no autograd graph — the model
// package composes these layers explicitly, which keeps the inner loops
// allocation-free and the gradient code auditable (and gradient-checked in
// the tests).
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is one learnable weight matrix with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Mat
	G    *tensor.Mat
}

// NewParam allocates a named rows×cols parameter with zeroed weights and
// gradient.
func NewParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: tensor.NewMat(rows, cols), G: tensor.NewMat(rows, cols)}
}

// Init fills the weights with N(0, std²) noise.
func (p *Param) Init(rng *tensor.RNG, std float32) { p.W.RandNorm(rng, std) }

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.G.Zero() }

// Size returns the number of scalar weights.
func (p *Param) Size() int { return p.W.Rows * p.W.Cols }

// Module is anything owning parameters.
type Module interface {
	Params() []*Param
}

// CountParams sums the parameter sizes of a module.
func CountParams(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += p.Size()
	}
	return n
}

// CheckFinite panics if any weight is NaN or Inf; used by tests and the
// training loop to fail fast on divergence.
func CheckFinite(m Module) error {
	for _, p := range m.Params() {
		for i, x := range p.W.Data {
			if x != x || x > 1e30 || x < -1e30 {
				return fmt.Errorf("nn: parameter %s has non-finite value at %d: %v", p.Name, i, x)
			}
		}
	}
	return nil
}
