package nn

import (
	"testing"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

func batchCols(vecs []tensor.Vec) *tensor.Mat {
	m := tensor.NewMat(len(vecs[0]), len(vecs))
	for b, v := range vecs {
		m.SetCol(b, v)
	}
	return m
}

// ApplyBatch must reproduce ApplyInto bit for bit in every column.
func TestGLUMLPApplyBatchMatchesApplyBitForBit(t *testing.T) {
	rng := tensor.NewRNG(3)
	mlp := NewGLUMLP("m", 24, 72, ActSiLU, rng)
	const B = 5
	xs := make([]tensor.Vec, B)
	for b := range xs {
		xs[b] = tensor.NewVec(24)
		for i := range xs[b] {
			xs[b][i] = rng.NormFloat32()
		}
	}
	var scratch MLPBatchScratch
	out := mlp.ApplyBatch(batchCols(xs), nil, &scratch)
	for b, x := range xs {
		want := mlp.Apply(x)
		for i := range want {
			if out.At(i, b) != want[i] {
				t.Fatalf("ApplyBatch[%d,%d] = %v, Apply %v", i, b, out.At(i, b), want[i])
			}
		}
	}
}

// A fused attention step over B sessions must match B independent Step
// calls bit for bit — outputs and the appended KV entries — across a run
// of steps with diverging per-session histories, for any worker count.
func TestAttentionStepBatchMatchesStepBitForBit(t *testing.T) {
	defer parallel.SetProcs(parallel.Procs())
	for _, procs := range []int{1, 8} {
		parallel.SetProcs(procs)
		rng := tensor.NewRNG(11)
		attn := NewAttention("a", 16, 4, 2, rng)
		const B, steps = 3, 6
		batched := make([]*KVCache, B)
		single := make([]*KVCache, B)
		for b := range batched {
			batched[b] = &KVCache{}
			single[b] = &KVCache{}
		}
		var scratch AttnBatchScratch
		for st := 0; st < steps; st++ {
			xs := make([]tensor.Vec, B)
			for b := range xs {
				xs[b] = tensor.NewVec(16)
				for i := range xs[b] {
					xs[b][i] = rng.NormFloat32()
				}
			}
			out := attn.StepBatch(batchCols(xs), batched, nil, &scratch)
			for b := range xs {
				want := attn.Step(xs[b], single[b])
				for i := range want {
					if out.At(i, b) != want[i] {
						t.Fatalf("procs=%d step %d: StepBatch[%d,%d] = %v, Step %v",
							procs, st, i, b, out.At(i, b), want[i])
					}
				}
				k, wk := batched[b].Ks[st], single[b].Ks[st]
				v, wv := batched[b].Vs[st], single[b].Vs[st]
				for i := range wk {
					if k[i] != wk[i] || v[i] != wv[i] {
						t.Fatalf("procs=%d step %d session %d: KV entry %d diverged", procs, st, b, i)
					}
				}
			}
		}
	}
}
