package nn

import (
	"math"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Linear is a bias-free affine map y = W x, following the LLaMA/Phi
// convention of no biases in transformer blocks.
type Linear struct {
	P *Param
}

// NewLinear returns a Linear with out×in weights initialized to
// N(0, 1/in) scaled — the usual fan-in init.
func NewLinear(name string, out, in int, rng *tensor.RNG) *Linear {
	l := &Linear{P: NewParam(name, out, in)}
	l.P.Init(rng, float32(1/math.Sqrt(float64(in))))
	return l
}

// Params implements Module.
func (l *Linear) Params() []*Param { return []*Param{l.P} }

// Apply computes W x into out (allocated when nil).
func (l *Linear) Apply(x, out tensor.Vec) tensor.Vec {
	return tensor.MatVec(l.P.W, x, out)
}

// Forward maps each vector of the sequence and returns the outputs along
// with the retained inputs needed by Backward. Tokens fan out over the
// worker pool (disjoint output slots, bit-identical to serial).
func (l *Linear) Forward(xs []tensor.Vec) (ys []tensor.Vec, ctx []tensor.Vec) {
	ys = make([]tensor.Vec, len(xs))
	parallel.For(len(xs), tokenGrain, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			ys[t] = tensor.MatVec(l.P.W, xs[t], nil)
		}
	})
	return ys, xs
}

// Backward consumes the upstream gradients dys and the ctx from Forward,
// accumulates the weight gradient and returns gradients w.r.t. inputs.
func (l *Linear) Backward(dys []tensor.Vec, ctx []tensor.Vec) []tensor.Vec {
	dxs := make([]tensor.Vec, len(dys))
	for t, dy := range dys {
		tensor.AddOuter(l.P.G, 1, dy, ctx[t])
		dxs[t] = tensor.MatTVec(l.P.W, dy, nil)
	}
	return dxs
}

// Embedding combines a token-embedding table with learned absolute
// positional embeddings. Forward output at position t is Tok[id_t] + Pos[t].
type Embedding struct {
	Tok *Param // vocab × dim
	Pos *Param // maxSeq × dim
}

// NewEmbedding allocates tables for the given vocabulary, maximum sequence
// length and embedding dimension.
func NewEmbedding(vocab, maxSeq, dim int, rng *tensor.RNG) *Embedding {
	e := &Embedding{Tok: NewParam("embed.tok", vocab, dim), Pos: NewParam("embed.pos", maxSeq, dim)}
	e.Tok.Init(rng, 0.08)
	e.Pos.Init(rng, 0.02)
	return e
}

// Params implements Module.
func (e *Embedding) Params() []*Param { return []*Param{e.Tok, e.Pos} }

// Forward embeds the token ids. len(ids) must be ≤ maxSeq.
func (e *Embedding) Forward(ids []int) []tensor.Vec {
	if len(ids) > e.Pos.W.Rows {
		panic("nn: sequence longer than positional table")
	}
	xs := make([]tensor.Vec, len(ids))
	for t, id := range ids {
		x := e.Tok.W.Row(id).Clone()
		x.Add(e.Pos.W.Row(t))
		xs[t] = x
	}
	return xs
}

// At returns the embedding for a single (id, position) pair, used by the
// incremental decoder.
func (e *Embedding) At(id, pos int) tensor.Vec {
	x := e.Tok.W.Row(id).Clone()
	x.Add(e.Pos.W.Row(pos))
	return x
}

// Backward scatter-adds the position-wise gradients into both tables.
func (e *Embedding) Backward(dxs []tensor.Vec, ids []int) {
	for t, dx := range dxs {
		e.Tok.G.Row(ids[t]).Add(dx)
		e.Pos.G.Row(t).Add(dx)
	}
}

// RMSNorm normalizes a vector by its root-mean-square and applies a learned
// per-channel gain, as used by LLaMA-family models.
type RMSNorm struct {
	Gain *Param // 1 × dim
	eps  float32
}

// NewRMSNorm returns an RMSNorm over dim channels with gain initialized to 1.
func NewRMSNorm(name string, dim int) *RMSNorm {
	n := &RMSNorm{Gain: NewParam(name, 1, dim), eps: 1e-5}
	n.Gain.W.Row(0).Fill(1)
	return n
}

// Params implements Module.
func (n *RMSNorm) Params() []*Param { return []*Param{n.Gain} }

// Apply normalizes a single vector into out (allocated when nil).
func (n *RMSNorm) Apply(x, out tensor.Vec) tensor.Vec {
	if out == nil {
		out = tensor.NewVec(len(x))
	}
	var ss float64
	for _, v := range x {
		ss += float64(v) * float64(v)
	}
	inv := float32(1 / math.Sqrt(ss/float64(len(x))+float64(n.eps)))
	g := n.Gain.W.Row(0)
	for i, v := range x {
		out[i] = v * inv * g[i]
	}
	return out
}

// rmsCtx retains what RMSNorm.Backward needs per position.
type rmsCtx struct {
	x   tensor.Vec
	inv float32
}

// Forward normalizes the sequence.
func (n *RMSNorm) Forward(xs []tensor.Vec) (ys []tensor.Vec, ctx []rmsCtx) {
	ys = make([]tensor.Vec, len(xs))
	ctx = make([]rmsCtx, len(xs))
	g := n.Gain.W.Row(0)
	for t, x := range xs {
		var ss float64
		for _, v := range x {
			ss += float64(v) * float64(v)
		}
		inv := float32(1 / math.Sqrt(ss/float64(len(x))+float64(n.eps)))
		y := tensor.NewVec(len(x))
		for i, v := range x {
			y[i] = v * inv * g[i]
		}
		ys[t] = y
		ctx[t] = rmsCtx{x: x, inv: inv}
	}
	return ys, ctx
}

// Backward propagates gradients through the normalization.
//
// With x̂ = x·inv and y = g ⊙ x̂:
//
//	dg += dy ⊙ x̂
//	dx  = inv·(g⊙dy) − x·inv³·⟨g⊙dy, x⟩/n
func (n *RMSNorm) Backward(dys []tensor.Vec, ctx []rmsCtx) []tensor.Vec {
	g := n.Gain.W.Row(0)
	gGrad := n.Gain.G.Row(0)
	dxs := make([]tensor.Vec, len(dys))
	for t, dy := range dys {
		x, inv := ctx[t].x, ctx[t].inv
		dim := len(x)
		var dot float64
		for i := range dy {
			gd := g[i] * dy[i]
			dot += float64(gd) * float64(x[i])
			gGrad[i] += dy[i] * x[i] * inv
		}
		coef := float32(dot) * inv * inv * inv / float32(dim)
		dx := tensor.NewVec(dim)
		for i := range dy {
			dx[i] = g[i]*dy[i]*inv - x[i]*coef
		}
		dxs[t] = dx
	}
	return dxs
}
