package nn

import (
	"math"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Attention is causal multi-head self-attention with grouped-query heads:
// NHeads query heads share NKV key/value heads (NHeads % NKV == 0), the GQA
// scheme that makes MLPs dominate the parameter budget in modern LLMs
// (Section 3 of the paper).
type Attention struct {
	Wq, Wk, Wv, Wo *Linear
	Dim            int
	NHeads, NKV    int
	HeadDim        int
	scale          float32
}

// NewAttention allocates the four projections. dim must be divisible by
// nHeads, and nHeads by nKV.
func NewAttention(name string, dim, nHeads, nKV int, rng *tensor.RNG) *Attention {
	if dim%nHeads != 0 {
		panic("nn: dim must be divisible by nHeads")
	}
	if nHeads%nKV != 0 {
		panic("nn: nHeads must be divisible by nKV")
	}
	hd := dim / nHeads
	return &Attention{
		Wq:      NewLinear(name+".wq", nHeads*hd, dim, rng),
		Wk:      NewLinear(name+".wk", nKV*hd, dim, rng),
		Wv:      NewLinear(name+".wv", nKV*hd, dim, rng),
		Wo:      NewLinear(name+".wo", dim, nHeads*hd, rng),
		Dim:     dim,
		NHeads:  nHeads,
		NKV:     nKV,
		HeadDim: hd,
		scale:   float32(1 / math.Sqrt(float64(hd))),
	}
}

// Params implements Module.
func (a *Attention) Params() []*Param {
	return []*Param{a.Wq.P, a.Wk.P, a.Wv.P, a.Wo.P}
}

// WeightCount returns the number of scalar weights in the projections.
func (a *Attention) WeightCount() int {
	return CountParams(a)
}

// attnCtx retains the intermediates Backward needs.
type attnCtx struct {
	xs         []tensor.Vec   // inputs
	qs, ks, vs []tensor.Vec   // projected sequences
	probs      [][]tensor.Vec // probs[t][h] over s ≤ t
	cat        []tensor.Vec   // concatenated head contexts per t
}

// Forward runs causal attention over the sequence. The projection loop and
// the per-position attention loop both fan out over the worker pool: every
// position writes only its own slots (qs/ks/vs[t], probs[t], cat[t], ys[t])
// and reads earlier positions' projections, which are complete before the
// second loop starts, so results are bit-identical to a serial run.
func (a *Attention) Forward(xs []tensor.Vec) (ys []tensor.Vec, ctx *attnCtx) {
	T := len(xs)
	c := &attnCtx{xs: xs}
	c.qs = make([]tensor.Vec, T)
	c.ks = make([]tensor.Vec, T)
	c.vs = make([]tensor.Vec, T)
	parallel.For(T, tokenGrain, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			c.qs[t] = tensor.MatVec(a.Wq.P.W, xs[t], nil)
			c.ks[t] = tensor.MatVec(a.Wk.P.W, xs[t], nil)
			c.vs[t] = tensor.MatVec(a.Wv.P.W, xs[t], nil)
		}
	})
	group := a.NHeads / a.NKV
	hd := a.HeadDim
	c.probs = make([][]tensor.Vec, T)
	c.cat = make([]tensor.Vec, T)
	ys = make([]tensor.Vec, T)
	parallel.For(T, tokenGrain, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			c.probs[t] = make([]tensor.Vec, a.NHeads)
			cat := tensor.NewVec(a.NHeads * hd)
			for h := 0; h < a.NHeads; h++ {
				g := h / group
				q := c.qs[t][h*hd : (h+1)*hd]
				scores := tensor.NewVec(t + 1)
				for s := 0; s <= t; s++ {
					k := c.ks[s][g*hd : (g+1)*hd]
					var dot float32
					for i := 0; i < hd; i++ {
						dot += q[i] * k[i]
					}
					scores[s] = dot * a.scale
				}
				p := tensor.Softmax(scores, scores)
				c.probs[t][h] = p
				out := cat[h*hd : (h+1)*hd]
				for s := 0; s <= t; s++ {
					v := c.vs[s][g*hd : (g+1)*hd]
					ps := p[s]
					for i := 0; i < hd; i++ {
						out[i] += ps * v[i]
					}
				}
			}
			c.cat[t] = cat
			ys[t] = tensor.MatVec(a.Wo.P.W, cat, nil)
		}
	})
	return ys, c
}

// Backward propagates gradients through the attention computed by Forward.
func (a *Attention) Backward(dys []tensor.Vec, c *attnCtx) []tensor.Vec {
	T := len(dys)
	group := a.NHeads / a.NKV
	hd := a.HeadDim
	dqs := make([]tensor.Vec, T)
	dks := make([]tensor.Vec, T)
	dvs := make([]tensor.Vec, T)
	for t := 0; t < T; t++ {
		dqs[t] = tensor.NewVec(a.NHeads * hd)
		dks[t] = tensor.NewVec(a.NKV * hd)
		dvs[t] = tensor.NewVec(a.NKV * hd)
	}
	for t := 0; t < T; t++ {
		dy := dys[t]
		tensor.AddOuter(a.Wo.P.G, 1, dy, c.cat[t])
		dcat := tensor.MatTVec(a.Wo.P.W, dy, nil)
		for h := 0; h < a.NHeads; h++ {
			g := h / group
			dctx := dcat[h*hd : (h+1)*hd]
			p := c.probs[t][h]
			// dp and the softmax Jacobian.
			dp := tensor.NewVec(t + 1)
			var pdot float32
			for s := 0; s <= t; s++ {
				v := c.vs[s][g*hd : (g+1)*hd]
				var d float32
				for i := 0; i < hd; i++ {
					d += dctx[i] * v[i]
				}
				dp[s] = d
				pdot += p[s] * d
				// dv accumulation
				dv := dvs[s][g*hd : (g+1)*hd]
				ps := p[s]
				for i := 0; i < hd; i++ {
					dv[i] += ps * dctx[i]
				}
			}
			q := c.qs[t][h*hd : (h+1)*hd]
			dq := dqs[t][h*hd : (h+1)*hd]
			for s := 0; s <= t; s++ {
				ds := p[s] * (dp[s] - pdot) * a.scale
				if ds == 0 {
					continue
				}
				k := c.ks[s][g*hd : (g+1)*hd]
				dk := dks[s][g*hd : (g+1)*hd]
				for i := 0; i < hd; i++ {
					dq[i] += ds * k[i]
					dk[i] += ds * q[i]
				}
			}
		}
	}
	dxs := make([]tensor.Vec, T)
	for t := 0; t < T; t++ {
		tensor.AddOuter(a.Wq.P.G, 1, dqs[t], c.xs[t])
		tensor.AddOuter(a.Wk.P.G, 1, dks[t], c.xs[t])
		tensor.AddOuter(a.Wv.P.G, 1, dvs[t], c.xs[t])
		dx := tensor.MatTVec(a.Wq.P.W, dqs[t], nil)
		tensor.MatTVec(a.Wk.P.W, dks[t], dx)
		tensor.MatTVec(a.Wv.P.W, dvs[t], dx)
		dxs[t] = dx
	}
	return dxs
}

// KVCache holds the per-layer key/value history for incremental decoding.
type KVCache struct {
	Ks, Vs []tensor.Vec
}

// Step runs attention for one new position given the cache, appends the new
// key/value, and returns the attention output. It matches Forward exactly
// (verified in tests), so perplexity measured incrementally equals the
// teacher-forced value.
func (a *Attention) Step(x tensor.Vec, cache *KVCache) tensor.Vec {
	q := tensor.MatVec(a.Wq.P.W, x, nil)
	k := tensor.MatVec(a.Wk.P.W, x, nil)
	v := tensor.MatVec(a.Wv.P.W, x, nil)
	cache.Ks = append(cache.Ks, k)
	cache.Vs = append(cache.Vs, v)
	T := len(cache.Ks)
	group := a.NHeads / a.NKV
	hd := a.HeadDim
	cat := tensor.NewVec(a.NHeads * hd)
	for h := 0; h < a.NHeads; h++ {
		g := h / group
		qh := q[h*hd : (h+1)*hd]
		scores := tensor.NewVec(T)
		for s := 0; s < T; s++ {
			ks := cache.Ks[s][g*hd : (g+1)*hd]
			var dot float32
			for i := 0; i < hd; i++ {
				dot += qh[i] * ks[i]
			}
			scores[s] = dot * a.scale
		}
		p := tensor.Softmax(scores, scores)
		out := cat[h*hd : (h+1)*hd]
		for s := 0; s < T; s++ {
			vs := cache.Vs[s][g*hd : (g+1)*hd]
			ps := p[s]
			for i := 0; i < hd; i++ {
				out[i] += ps * vs[i]
			}
		}
	}
	return tensor.MatVec(a.Wo.P.W, cat, nil)
}
