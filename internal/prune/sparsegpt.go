// Package prune implements the static one-shot pruning baselines of the
// paper's evaluation: SparseGPT (Frantar & Alistarh, 2023) in unstructured
// and semi-structured (N:M) variants, and plain magnitude pruning. Pruned
// models are evaluated densely; their memory advantage is accounted
// separately (1 extra bit per weight for the sparsity mask, following
// Kuzmin et al., 2024).
package prune

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/tensor"
)

// Pattern selects the sparsity structure.
type Pattern int

const (
	// Unstructured prunes the p smallest-saliency weights per block.
	Unstructured Pattern = iota
	// Semi2of4 zeroes 2 weights in every group of 4 (50% sparsity).
	Semi2of4
	// Semi4of8 zeroes 4 weights in every group of 8 (50% sparsity).
	Semi4of8
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Unstructured:
		return "unstructured"
	case Semi2of4:
		return "2:4"
	case Semi4of8:
		return "4:8"
	default:
		return "invalid"
	}
}

// Opts configures SparseGPT.
type Opts struct {
	// Sparsity is the pruned fraction for Unstructured (N:M patterns fix it
	// at 0.5).
	Sparsity float64
	// BlockSize is the lazy-update column block (default 32).
	BlockSize int
	// PercDamp scales the Hessian damping λ = PercDamp · mean(diag(H)).
	PercDamp float64
}

// DefaultOpts mirrors the reference implementation's defaults.
func DefaultOpts() Opts { return Opts{Sparsity: 0.5, BlockSize: 32, PercDamp: 0.01} }

// SparseGPTMatrix prunes W (out×in, row-major) in place given the
// calibration inputs xs (each of length in). It implements the OBS
// column-sweep: using the upper Cholesky factor U of (XXᵀ + λI)⁻¹, each
// pruned weight's error is propagated into the not-yet-processed columns,
// which is what lets one-shot pruning reach 50% with modest damage.
func SparseGPTMatrix(w *tensor.Mat, xs []tensor.Vec, pattern Pattern, opts Opts) error {
	n := w.Cols
	if opts.BlockSize <= 0 {
		opts.BlockSize = 32
	}
	h := tensor.NewSymMat(n)
	for _, x := range xs {
		if len(x) != n {
			return fmt.Errorf("prune: calibration input length %d != cols %d", len(x), n)
		}
		h.AddOuterF64(2, x)
	}
	damp := opts.PercDamp * h.MeanDiag()
	if damp <= 0 {
		damp = 1e-4
	}
	h.AddDiag(damp)
	hinv, err := h.Inverse()
	if err != nil {
		return fmt.Errorf("prune: hessian inversion: %w", err)
	}
	u, err := hinv.CholUpper()
	if err != nil {
		return fmt.Errorf("prune: cholesky of inverse hessian: %w", err)
	}
	// Work in float64 rows for the update sweep.
	rows := w.Rows
	wf := make([][]float64, rows)
	for r := 0; r < rows; r++ {
		wf[r] = make([]float64, n)
		for j := 0; j < n; j++ {
			wf[r][j] = float64(w.At(r, j))
		}
	}
	groupLen, groupPrune := 0, 0
	switch pattern {
	case Semi2of4:
		groupLen, groupPrune = 4, 2
	case Semi4of8:
		groupLen, groupPrune = 8, 4
	}
	for b0 := 0; b0 < n; b0 += opts.BlockSize {
		b1 := b0 + opts.BlockSize
		if b1 > n {
			b1 = n
		}
		// Select the mask for this block per row.
		masks := make([][]bool, rows) // true = prune
		for r := 0; r < rows; r++ {
			masks[r] = make([]bool, b1-b0)
			score := make(tensor.Vec, b1-b0)
			for j := b0; j < b1; j++ {
				d := u.At(j, j)
				score[j-b0] = float32(-(wf[r][j] * wf[r][j]) / (d * d)) // negate: top-k of negated = smallest saliency
			}
			switch pattern {
			case Unstructured:
				k := int(opts.Sparsity*float64(b1-b0) + 0.5)
				for _, idx := range tensor.TopKIndices(score, k) {
					masks[r][idx] = true
				}
			default:
				for g0 := 0; g0 < b1-b0; g0 += groupLen {
					g1 := g0 + groupLen
					if g1 > b1-b0 {
						g1 = b1 - b0
					}
					sub := score[g0:g1]
					kp := groupPrune
					if kp > len(sub) {
						kp = len(sub)
					}
					for _, idx := range tensor.TopKIndices(sub, kp) {
						masks[r][g0+idx] = true
					}
				}
			}
		}
		// Sweep columns in the block, zeroing masked weights and
		// compensating survivors to the right.
		for j := b0; j < b1; j++ {
			d := u.At(j, j)
			for r := 0; r < rows; r++ {
				if !masks[r][j-b0] {
					continue
				}
				err := wf[r][j] / d
				wf[r][j] = 0
				for k := j + 1; k < n; k++ {
					wf[r][k] -= err * u.At(j, k)
				}
			}
		}
	}
	for r := 0; r < rows; r++ {
		for j := 0; j < n; j++ {
			w.Set(r, j, float32(wf[r][j]))
		}
	}
	return nil
}

// MagnitudeMatrix zeroes the p smallest-magnitude weights of w in place
// (the no-compensation baseline).
func MagnitudeMatrix(w *tensor.Mat, sparsity float64) {
	n := len(w.Data)
	k := int(sparsity*float64(n) + 0.5)
	score := make(tensor.Vec, n)
	for i, x := range w.Data {
		if x < 0 {
			x = -x
		}
		score[i] = -x
	}
	for _, i := range tensor.TopKIndices(score, k) {
		w.Data[i] = 0
	}
}

// CalibrationActivations collects, for every layer, the MLP input vectors
// (inputs to W_u/W_g) and the GLU activation vectors (inputs to W_d) over
// the calibration tokens.
func CalibrationActivations(m *model.Model, tokens []int, win, maxTokens int) (mlpIn, gluAct [][]tensor.Vec) {
	L := len(m.Blocks)
	mlpIn = make([][]tensor.Vec, L)
	gluAct = make([][]tensor.Vec, L)
	count := 0
	hook := func(layer int, x tensor.Vec) tensor.Vec {
		mlp := m.Blocks[layer].MLP
		if layer == 0 {
			count++
		}
		if count <= maxTokens {
			h := mlp.GLU(x, nil)
			mlpIn[layer] = append(mlpIn[layer], x.Clone())
			gluAct[layer] = append(gluAct[layer], h)
			return tensor.MatVec(mlp.Down.P.W, h, nil)
		}
		return mlp.Apply(x)
	}
	for start := 0; start+win <= len(tokens) && count < maxTokens; start += win {
		m.Forward(tokens[start:start+win], hook)
	}
	return mlpIn, gluAct
}

// SparseGPTModel returns a copy of m whose MLP matrices are pruned with
// SparseGPT using calibration tokens. Attention and embeddings are left
// dense, matching the paper's MLP-only sparsification.
func SparseGPTModel(m *model.Model, tokens []int, win int, pattern Pattern, opts Opts) (*model.Model, error) {
	clone, err := cloneModel(m)
	if err != nil {
		return nil, err
	}
	mlpIn, gluAct := CalibrationActivations(m, tokens, win, 256)
	for l, b := range clone.Blocks {
		if err := SparseGPTMatrix(b.MLP.Up.P.W, mlpIn[l], pattern, opts); err != nil {
			return nil, fmt.Errorf("layer %d up: %w", l, err)
		}
		if err := SparseGPTMatrix(b.MLP.Gate.P.W, mlpIn[l], pattern, opts); err != nil {
			return nil, fmt.Errorf("layer %d gate: %w", l, err)
		}
		if err := SparseGPTMatrix(b.MLP.Down.P.W, gluAct[l], pattern, opts); err != nil {
			return nil, fmt.Errorf("layer %d down: %w", l, err)
		}
	}
	return clone, nil
}

// MagnitudeModel returns a copy of m with magnitude-pruned MLPs.
func MagnitudeModel(m *model.Model, sparsity float64) (*model.Model, error) {
	clone, err := cloneModel(m)
	if err != nil {
		return nil, err
	}
	for _, b := range clone.Blocks {
		MagnitudeMatrix(b.MLP.Up.P.W, sparsity)
		MagnitudeMatrix(b.MLP.Gate.P.W, sparsity)
		MagnitudeMatrix(b.MLP.Down.P.W, sparsity)
	}
	return clone, nil
}

// MLPSparsity measures the achieved zero fraction across MLP weights.
func MLPSparsity(m *model.Model) float64 {
	var zero, total int
	for _, b := range m.Blocks {
		for _, p := range b.MLP.Params() {
			for _, x := range p.W.Data {
				if x == 0 {
					zero++
				}
				total++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(zero) / float64(total)
}

// cloneModel deep-copies a model by rebuilding it and copying parameters.
func cloneModel(m *model.Model) (*model.Model, error) {
	clone := model.New(m.Cfg, 0)
	src := m.Params()
	dst := clone.Params()
	if len(src) != len(dst) {
		return nil, fmt.Errorf("prune: clone parameter count mismatch")
	}
	for i := range src {
		if src[i].Size() != dst[i].Size() {
			return nil, fmt.Errorf("prune: clone parameter %s size mismatch", src[i].Name)
		}
		copy(dst[i].W.Data, src[i].W.Data)
	}
	return clone, nil
}

// MaskOverheadBits is the per-weight bookkeeping cost of static sparsity: 1
// bit per weight to record the mask (Kuzmin et al., 2024).
const MaskOverheadBits = 1.0
