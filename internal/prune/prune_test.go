package prune

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// calib generates correlated calibration inputs (x = M z + ε with a shared
// low-rank mixing matrix). Correlation is what gives the OBS compensation
// room to work — i.i.d. inputs make the Hessian diagonal and SparseGPT
// degenerates to magnitude pruning, which real activations never do.
func calib(seed uint64, n, dim int) []tensor.Vec {
	rng := tensor.NewRNG(seed)
	rank := dim/4 + 1
	mix := tensor.NewMat(dim, rank)
	mix.RandNorm(rng, 1)
	xs := make([]tensor.Vec, n)
	for i := range xs {
		z := tensor.NewVec(rank)
		for j := range z {
			z[j] = rng.NormFloat32()
		}
		x := tensor.MatVec(mix, z, nil)
		for j := range x {
			x[j] += 0.3 * rng.NormFloat32()
		}
		xs[i] = x
	}
	return xs
}

func matrixSparsity(w *tensor.Mat) float64 {
	zero := 0
	for _, x := range w.Data {
		if x == 0 {
			zero++
		}
	}
	return float64(zero) / float64(len(w.Data))
}

func TestSparseGPTUnstructuredSparsityLevel(t *testing.T) {
	rng := tensor.NewRNG(1)
	w := tensor.NewMat(16, 32)
	w.RandNorm(rng, 1)
	xs := calib(2, 128, 32)
	if err := SparseGPTMatrix(w, xs, Unstructured, Opts{Sparsity: 0.5, BlockSize: 16, PercDamp: 0.01}); err != nil {
		t.Fatal(err)
	}
	if got := matrixSparsity(w); math.Abs(got-0.5) > 0.05 {
		t.Fatalf("sparsity = %v, want ~0.5", got)
	}
}

func TestSparseGPT24Pattern(t *testing.T) {
	rng := tensor.NewRNG(3)
	w := tensor.NewMat(8, 32)
	w.RandNorm(rng, 1)
	xs := calib(4, 128, 32)
	if err := SparseGPTMatrix(w, xs, Semi2of4, DefaultOpts()); err != nil {
		t.Fatal(err)
	}
	// Every aligned group of 4 must have exactly 2 zeros.
	for r := 0; r < w.Rows; r++ {
		for g := 0; g < w.Cols; g += 4 {
			zeros := 0
			for j := g; j < g+4; j++ {
				if w.At(r, j) == 0 {
					zeros++
				}
			}
			if zeros != 2 {
				t.Fatalf("row %d group %d has %d zeros, want 2", r, g, zeros)
			}
		}
	}
}

func TestSparseGPT48Pattern(t *testing.T) {
	rng := tensor.NewRNG(5)
	w := tensor.NewMat(4, 32)
	w.RandNorm(rng, 1)
	xs := calib(6, 96, 32)
	if err := SparseGPTMatrix(w, xs, Semi4of8, DefaultOpts()); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < w.Rows; r++ {
		for g := 0; g < w.Cols; g += 8 {
			zeros := 0
			for j := g; j < g+8; j++ {
				if w.At(r, j) == 0 {
					zeros++
				}
			}
			if zeros != 4 {
				t.Fatalf("row %d group %d has %d zeros, want 4", r, g, zeros)
			}
		}
	}
}

// The whole point of SparseGPT: error compensation beats magnitude pruning
// on the calibration objective ‖W X − Ŵ X‖².
func TestSparseGPTBeatsMagnitudeOnCalibrationLoss(t *testing.T) {
	rng := tensor.NewRNG(7)
	orig := tensor.NewMat(24, 48)
	orig.RandNorm(rng, 1)
	xs := calib(8, 256, 48)
	reconErr := func(w *tensor.Mat) float64 {
		var s float64
		for _, x := range xs {
			yo := tensor.MatVec(orig, x, nil)
			yp := tensor.MatVec(w, x, nil)
			for i := range yo {
				d := float64(yo[i] - yp[i])
				s += d * d
			}
		}
		return s
	}
	sgpt := orig.Clone()
	if err := SparseGPTMatrix(sgpt, xs, Unstructured, Opts{Sparsity: 0.5, BlockSize: 16, PercDamp: 0.01}); err != nil {
		t.Fatal(err)
	}
	mag := orig.Clone()
	MagnitudeMatrix(mag, 0.5)
	eS, eM := reconErr(sgpt), reconErr(mag)
	if eS >= eM {
		t.Fatalf("SparseGPT error %.4g not below magnitude error %.4g", eS, eM)
	}
}

func TestMagnitudeMatrix(t *testing.T) {
	w := tensor.NewMatFrom(1, 4, []float32{0.1, -5, 0.2, 3})
	MagnitudeMatrix(w, 0.5)
	if w.Data[0] != 0 || w.Data[2] != 0 || w.Data[1] == 0 || w.Data[3] == 0 {
		t.Fatalf("magnitude pruning wrong: %v", w.Data)
	}
}

func trainedTiny(t *testing.T) (*model.Model, []int, []int) {
	t.Helper()
	tok := data.NewTokenizer()
	splits := data.NewSplits(21, 12000, 2500)
	cfg := model.Config{
		Name: "tiny-prune", Vocab: tok.VocabSize(), Dim: 16, Layers: 2,
		Heads: 2, KVHeads: 1, DFF: 32, MaxSeq: 32, Act: nn.ActSiLU,
	}
	m := model.New(cfg, 9)
	opts := model.DefaultTrainOpts()
	opts.Steps = 80
	opts.Batch = 2
	opts.SeqLen = 31
	if _, err := model.Train(m, tok.Encode(splits.Train), opts); err != nil {
		t.Fatal(err)
	}
	return m, tok.Encode(splits.Calib), tok.Encode(splits.Test)
}

func TestSparseGPTModelEndToEnd(t *testing.T) {
	m, calibToks, testToks := trainedTiny(t)
	pruned, err := SparseGPTModel(m, calibToks, 31, Unstructured, Opts{Sparsity: 0.5, BlockSize: 16, PercDamp: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if got := MLPSparsity(pruned); math.Abs(got-0.5) > 0.05 {
		t.Fatalf("model MLP sparsity %v", got)
	}
	if got := MLPSparsity(m); got > 0.01 {
		t.Fatal("original model was modified")
	}
	dense := model.Perplexity(m, testToks[:1200], 31, nil)
	sparse := model.Perplexity(pruned, testToks[:1200], 31, nil)
	if sparse < dense {
		t.Fatalf("pruned model improbably better: %v < %v", sparse, dense)
	}
	// It should still be a language model, not noise.
	if sparse > dense*6 {
		t.Fatalf("pruned model destroyed: %v vs dense %v", sparse, dense)
	}
	// Semi-structured 2:4 hurts more than unstructured (paper Table 1).
	semi, err := SparseGPTModel(m, calibToks, 31, Semi2of4, DefaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	semiPPL := model.Perplexity(semi, testToks[:1200], 31, nil)
	if semiPPL < sparse {
		t.Fatalf("2:4 (%v) should not beat unstructured (%v)", semiPPL, sparse)
	}
}

func TestMagnitudeModel(t *testing.T) {
	m, _, _ := trainedTiny(t)
	pruned, err := MagnitudeModel(m, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if got := MLPSparsity(pruned); math.Abs(got-0.3) > 0.02 {
		t.Fatalf("sparsity = %v", got)
	}
}

func TestPatternString(t *testing.T) {
	if Unstructured.String() != "unstructured" || Semi2of4.String() != "2:4" || Semi4of8.String() != "4:8" {
		t.Fatal("pattern names wrong")
	}
}

func TestCalibrationActivationsShape(t *testing.T) {
	m, calibToks, _ := trainedTiny(t)
	mlpIn, gluAct := CalibrationActivations(m, calibToks, 31, 64)
	if len(mlpIn) != 2 || len(gluAct) != 2 {
		t.Fatal("wrong layer count")
	}
	if len(mlpIn[0]) == 0 || len(mlpIn[0]) > 64+31 {
		t.Fatalf("sample count %d out of range", len(mlpIn[0]))
	}
	if len(mlpIn[0][0]) != 16 || len(gluAct[0][0]) != 32 {
		t.Fatal("activation dimensions wrong")
	}
}
