package serving

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/parallel"
	"repro/internal/serving/faults"
	"repro/internal/serving/obs"
	"repro/internal/sparsity"
)

// chaosObsRun executes the chaos determinism scenario with a fresh recorder
// and returns the report plus the serialized JSONL event log.
func chaosObsRun(t *testing.T, arb ArbPolicy, noFuse bool) (*Report, []byte) {
	t.Helper()
	plan, err := faults.Mix(0.08, 99)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(obs.Config{Window: 16})
	e, err := NewEngine(zoo.m, Config{
		System: sysCfg(), Arb: arb, Sched: EDF(), Preempt: DeadlinePreempt(),
		MaxActive: 2, Quantum: 4, Seed: 5, NoFuse: noFuse,
		Faults: plan, Retry: faults.RetryPolicy{MaxAttempts: 3},
		ShedQueueBudget: 3, Degrade: true, DegradeTicks: 2,
		Obs: rec,
	}, mixedPressureTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	return rep, buf.Bytes()
}

// The observability acceptance test: the full event log — not just the
// aggregate Report — must be bit-identical across worker counts and the
// fused/per-session decode paths, for every arbitration policy, under
// chaos. Run under -race this also proves emissions never leave the
// serial engine loop.
func TestEventLogDeterministicAcrossWorkerCountsAndFuse(t *testing.T) {
	trained(t)
	defer parallel.SetProcs(parallel.Procs())
	for _, arb := range Policies() {
		parallel.SetProcs(4)
		_, fused := chaosObsRun(t, arb, false)
		_, unfused := chaosObsRun(t, arb, true)
		if !bytes.Equal(fused, unfused) {
			t.Fatalf("arb=%v: event log diverged between fused and per-session paths", arb)
		}
		parallel.SetProcs(1)
		_, serial := chaosObsRun(t, arb, false)
		if !bytes.Equal(fused, serial) {
			t.Fatalf("arb=%v: event log depends on worker count", arb)
		}
		if len(fused) == 0 {
			t.Fatalf("arb=%v: scenario produced an empty event log", arb)
		}
	}
}

// Every aggregate the recorder derives from the event stream must agree
// exactly with the Report counters the engine maintains independently; a
// divergence means an emission site was dropped or double-fired.
func TestEventCountsReconcileWithReport(t *testing.T) {
	trained(t)
	for _, arb := range Policies() {
		rep, _ := chaosObsRun(t, arb, false)
		if err := rep.ReconcileObs(); err != nil {
			t.Errorf("arb=%v: %v", arb, err)
		}
	}
}

func TestReconcileObsNamesTheFirstDivergentCounter(t *testing.T) {
	trained(t)
	rep, _ := chaosObsRun(t, ArbShared, false)
	if rep.Obs == nil {
		t.Fatal("report carries no snapshot")
	}
	rep.Obs.Counts.Retries++
	err := rep.ReconcileObs()
	if err == nil {
		t.Fatal("tampered counts reconciled cleanly")
	}
	if !strings.Contains(err.Error(), "retry events vs Report.Retries") {
		t.Fatalf("error does not name the divergent counter: %v", err)
	}

	var bare Report
	if err := bare.ReconcileObs(); err == nil {
		t.Fatal("ReconcileObs on a report without a snapshot must error")
	}
}

// Golden-file test: the JSONL event log is a published artifact (the CI
// smoke and downstream timeline tooling parse it), so byte drift must be
// deliberate. Regenerate with
//
//	UPDATE_EVENTS_GOLDEN=1 go test ./internal/serving -run TestEventLogGolden
func TestEventLogGolden(t *testing.T) {
	trained(t)
	script, err := faults.Scripted(
		faults.Event{Tick: 2, Kind: faults.Step, Slot: 0},
		faults.Event{Tick: 4, Kind: faults.Revoke, Slot: 1},
		faults.Event{Tick: 7, Kind: faults.Cancel, Slot: 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(obs.Config{Window: 8})
	e, err := NewEngine(zoo.m, Config{
		System: sysCfg(), Arb: ArbShared, Sched: EDF(), Preempt: DeadlinePreempt(),
		MaxActive: 2, Quantum: 4, Seed: 5,
		Faults: script, Retry: faults.RetryPolicy{MaxAttempts: 3},
		ShedQueueBudget: 3, Degrade: true, DegradeTicks: 2,
		Obs: rec,
	}, mixedPressureTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "events.golden")
	if os.Getenv("UPDATE_EVENTS_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("event log drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, buf.Bytes(), want)
	}
}

// Attaching a recorder must not perturb the engine: the report minus the
// snapshot itself (and the wall-clock annotation, which is outside the
// determinism contract) must match an unobserved run bit for bit.
func TestObserverDoesNotPerturbReport(t *testing.T) {
	trained(t)
	run := func(rec *obs.Recorder) *Report {
		plan, err := faults.Mix(0.08, 99)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(zoo.m, Config{
			System: sysCfg(), Arb: ArbFairShare, Sched: EDF(), Preempt: DeadlinePreempt(),
			MaxActive: 2, Quantum: 4, Seed: 5,
			Faults: plan, Retry: faults.RetryPolicy{MaxAttempts: 3},
			ShedQueueBudget: 3, Degrade: true, DegradeTicks: 2,
			Obs: rec,
		}, mixedPressureTrace(t))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		rep.Obs = nil
		return stripWall(rep)
	}
	observed := run(obs.NewRecorder(obs.Config{}))
	plain := run(nil)
	if !reflect.DeepEqual(observed, plain) {
		t.Fatalf("observer perturbed the report:\nobserved %+v\nplain    %+v", observed, plain)
	}
}

// The zero-overhead contract: with no recorder attached, the observability
// hooks on the tick hot path must not allocate at all.
func TestDisabledObserverAddsNoTickAllocations(t *testing.T) {
	trained(t)
	const k = 2
	reqs := requests(t, k,
		func(int) sparsity.Scheme { return sparsity.NewDIPCA(0.5, 0.2) },
		func(int) int { return 6 })
	e, err := NewEngine(zoo.m, Config{
		System: sysCfg(), Arb: ArbShared, MaxActive: k, Quantum: 4, Seed: 1,
	}, FixedBatch(reqs))
	if err != nil {
		t.Fatal(err)
	}
	active := make([]*Session, 0, k)
	for i := range reqs {
		qe := &QueueEntry{Req: e.reqs[i], Index: i, ArriveTick: 0, Order: i, Deadline: NoDeadline}
		sess, err := e.admit(qe, i, 0)
		if err != nil {
			t.Fatal(err)
		}
		active = append(active, sess)
	}
	if e.obs != nil {
		t.Fatal("engine bound a recorder nobody configured")
	}
	allocs := testing.AllocsPerRun(10, func() {
		tok, hits, misses := e.obsTickStart(0, active, 0)
		e.obsTickEnd(0, active, tok, hits, misses)
		e.emitFinish(0, 0, active[0])
	})
	if allocs != 0 {
		t.Fatalf("disabled observer allocates %.0f objects per tick, want 0", allocs)
	}
}
