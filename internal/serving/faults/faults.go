// Package faults schedules deterministic failure injection for the serving
// engine. A fault plan is a pure function of (seed, tick, slot): every
// decision is drawn by hashing the fault kind into the simulated tick clock
// instead of consuming a stateful RNG stream, so a chaos run is
// bit-identical across worker counts, across the fused and per-session
// decode paths, and regardless of how many idle ticks the engine
// fast-forwards — the determinism contract chaos reports are built on.
//
// Four fault kinds cover the failure modes a serving fleet treats as the
// normal case: transient step faults (a session's decode quantum aborts
// this tick; its stream state survives), grant revocations (a session's
// partitioned cache grant or greedy claim is forcibly released — an
// eviction storm — and its decode state is torn down with it), request
// cancellations (the client hangs up mid-stream), and capacity dips (slots
// go offline for a tick window, simulating a degraded node). Recovery is
// governed by RetryPolicy: a bounded attempt budget with seeded exponential
// backoff measured in simulated ticks.
package faults

import "fmt"

// Kind labels a fault class.
type Kind int

const (
	// Step aborts the target slot's decode quantum for one tick; the
	// session's stream state survives and it retries after backoff.
	Step Kind = iota
	// Revoke forcibly releases the target slot's cache grant (or greedy
	// claim) and tears down the decode state behind it; the session
	// re-prefills from scratch on retry. Under a shared cache there is no
	// per-session grant to revoke, so the engine skips Revoke events there.
	Revoke
	// Cancel withdraws the target slot's request outright — no retry.
	Cancel
	// Dip takes batch slots offline for a tick window; displaced sessions
	// are suspended (stream retained) and resume when capacity returns.
	Dip
	// Crash is a node-level kind (see NodePlan): the whole node freezes for
	// a restart window. Slot scripts reject it — it has no slot target.
	Crash
	// Gray is a node-level kind: the node answers heartbeats late and
	// decodes at dipped capacity for a window, without going down.
	Gray
	// HeartbeatDrop is a node-level kind: a healthy node's heartbeat is
	// lost in flight, feeding false-positive pressure into a detector.
	HeartbeatDrop
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Step:
		return "step"
	case Revoke:
		return "revoke"
	case Cancel:
		return "cancel"
	case Dip:
		return "dip"
	case Crash:
		return "crash"
	case Gray:
		return "gray"
	case HeartbeatDrop:
		return "hb-drop"
	default:
		return "invalid"
	}
}

// Injector is the engine's view of a fault source. The engine consults it
// once per executed tick, in slot order, before the decode step: fault
// decisions must be pure functions of (tick, slot) so they commute with
// worker count and decode-path choice. Slots index the engine's active
// batch at tick start (0-based).
type Injector interface {
	// Name identifies the plan for reports.
	Name() string
	// StepFault reports whether the session in the given slot aborts its
	// decode quantum this tick.
	StepFault(tick, slot int) bool
	// Revoke reports whether the session in the given slot loses its cache
	// grant this tick.
	Revoke(tick, slot int) bool
	// Cancel reports whether the session in the given slot is cancelled
	// this tick.
	Cancel(tick, slot int) bool
	// Offline returns how many batch slots are offline at tick (0 = full
	// capacity).
	Offline(tick int) int
}

// Config tunes a seeded Plan. Rates are probabilities in [0, 1]; the zero
// value injects nothing.
type Config struct {
	// Seed drives every draw; a fixed seed fixes the whole fault schedule.
	Seed uint64
	// StepRate/RevokeRate/CancelRate are per-slot-per-tick probabilities.
	StepRate   float64
	RevokeRate float64
	CancelRate float64
	// DipRate is the per-tick probability that a capacity dip begins.
	DipRate float64
	// DipSlots is how many slots each dip takes offline (default 1).
	DipSlots int
	// DipTicks is how long each dip lasts in ticks (default 4).
	DipTicks int
}

// Validate reports the first invalid Config field by name.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"StepRate", c.StepRate}, {"RevokeRate", c.RevokeRate},
		{"CancelRate", c.CancelRate}, {"DipRate", c.DipRate}} {
		if r.v < 0 || r.v > 1 || r.v != r.v {
			return fmt.Errorf("faults: Config.%s must be a probability in [0, 1], got %v", r.name, r.v)
		}
	}
	if c.DipSlots < 0 {
		return fmt.Errorf("faults: Config.DipSlots must be non-negative (0 = default 1), got %d", c.DipSlots)
	}
	if c.DipTicks < 0 {
		return fmt.Errorf("faults: Config.DipTicks must be non-negative (0 = default 4), got %d", c.DipTicks)
	}
	return nil
}

// Plan is a seeded fault schedule over the simulated tick clock.
type Plan struct {
	cfg Config
}

// New validates cfg and builds a seeded plan, applying the DipSlots /
// DipTicks defaults.
func New(cfg Config) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.DipSlots == 0 {
		cfg.DipSlots = 1
	}
	if cfg.DipTicks == 0 {
		cfg.DipTicks = 4
	}
	return &Plan{cfg: cfg}, nil
}

// Mix builds the canonical chaos mix at one intensity: step faults at rate,
// revocations at rate/2, cancellations at rate/4, and dips starting at
// rate/2 (one slot, four ticks). This is what dipbench -faults uses.
func Mix(rate float64, seed uint64) (*Plan, error) {
	if rate < 0 || rate > 1 || rate != rate {
		return nil, fmt.Errorf("faults: mix rate must be a probability in [0, 1], got %v", rate)
	}
	return New(Config{
		Seed:     seed,
		StepRate: rate, RevokeRate: rate / 2, CancelRate: rate / 4,
		DipRate: rate / 2,
	})
}

// Name identifies the plan.
func (p *Plan) Name() string { return "seeded" }

// Config returns the plan's (defaulted) configuration.
func (p *Plan) Config() Config { return p.cfg }

// StepFault draws the slot's transient-fault decision for this tick.
func (p *Plan) StepFault(tick, slot int) bool {
	return draw(p.cfg.Seed, Step, tick, slot) < p.cfg.StepRate
}

// Revoke draws the slot's grant-revocation decision for this tick.
func (p *Plan) Revoke(tick, slot int) bool {
	return draw(p.cfg.Seed, Revoke, tick, slot) < p.cfg.RevokeRate
}

// Cancel draws the slot's cancellation decision for this tick.
func (p *Plan) Cancel(tick, slot int) bool {
	return draw(p.cfg.Seed, Cancel, tick, slot) < p.cfg.CancelRate
}

// Offline reports how many slots are down at tick: a dip starting at tick s
// (drawn per tick from the seed) covers [s, s+DipTicks). Overlapping dips
// do not stack — the deepest one wins — so offline capacity is bounded by
// DipSlots regardless of rate.
func (p *Plan) Offline(tick int) int {
	if p.cfg.DipRate == 0 {
		return 0
	}
	from := tick - p.cfg.DipTicks + 1
	if from < 0 {
		from = 0
	}
	for s := from; s <= tick; s++ {
		if draw(p.cfg.Seed, Dip, s, 0) < p.cfg.DipRate {
			return p.cfg.DipSlots
		}
	}
	return 0
}

// draw hashes (seed, kind, tick, slot) to a uniform float64 in [0, 1). The
// finalizer is splitmix64's: every input bit avalanches, so neighboring
// ticks and slots draw independently.
func draw(seed uint64, kind Kind, tick, slot int) float64 {
	x := seed
	x ^= (uint64(kind) + 1) * 0x9E3779B97F4A7C15
	x ^= (uint64(tick) + 1) * 0xBF58476D1CE4E5B9
	x ^= (uint64(slot) + 1) * 0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// Event is one explicitly scheduled fault for a Scripted injector.
type Event struct {
	// Tick is when the fault fires; Kind what it does.
	Tick int
	Kind Kind
	// Slot targets Step/Revoke/Cancel events (the batch slot at tick start).
	Slot int
	// Slots/Ticks shape Dip events (defaults 1 slot, 1 tick).
	Slots int
	Ticks int
}

// Script replays an explicit fault schedule — the controlled counterpart to
// a seeded Plan, used by tests and examples to place one fault exactly.
type Script struct {
	events []Event
}

// Scripted validates and wraps an explicit fault schedule.
func Scripted(events ...Event) (*Script, error) {
	for i, e := range events {
		if e.Tick < 0 {
			return nil, fmt.Errorf("faults: event %d: negative tick %d", i, e.Tick)
		}
		if e.Kind < Step || e.Kind > Dip {
			// Node-level kinds (Crash, Gray, HeartbeatDrop) have no slot
			// target; they belong to a cluster NodePlan, not a slot script.
			return nil, fmt.Errorf("faults: event %d: kind %d is not a slot-level fault", i, e.Kind)
		}
		if e.Slot < 0 {
			return nil, fmt.Errorf("faults: event %d: negative slot %d", i, e.Slot)
		}
		if e.Slots < 0 || e.Ticks < 0 {
			return nil, fmt.Errorf("faults: event %d: negative dip shape %d slots × %d ticks", i, e.Slots, e.Ticks)
		}
	}
	return &Script{events: append([]Event(nil), events...)}, nil
}

// Name identifies the script.
func (s *Script) Name() string { return "scripted" }

func (s *Script) fires(kind Kind, tick, slot int) bool {
	for _, e := range s.events {
		if e.Kind == kind && e.Tick == tick && e.Slot == slot {
			return true
		}
	}
	return false
}

// StepFault reports a scripted step fault at (tick, slot).
func (s *Script) StepFault(tick, slot int) bool { return s.fires(Step, tick, slot) }

// Revoke reports a scripted revocation at (tick, slot).
func (s *Script) Revoke(tick, slot int) bool { return s.fires(Revoke, tick, slot) }

// Cancel reports a scripted cancellation at (tick, slot).
func (s *Script) Cancel(tick, slot int) bool { return s.fires(Cancel, tick, slot) }

// Offline reports the deepest scripted dip covering tick.
func (s *Script) Offline(tick int) int {
	off := 0
	for _, e := range s.events {
		if e.Kind != Dip {
			continue
		}
		slots, ticks := e.Slots, e.Ticks
		if slots == 0 {
			slots = 1
		}
		if ticks == 0 {
			ticks = 1
		}
		if tick >= e.Tick && tick < e.Tick+ticks && slots > off {
			off = slots
		}
	}
	return off
}

// RetryPolicy governs recovery of faulted sessions: how many placement
// attempts a session gets and how long it backs off between them. The zero
// value means "use the defaults" (3 attempts, base 2, cap 16); MaxAttempts
// 1 disables recovery entirely — the no-recovery baseline chaos reports
// compare against.
type RetryPolicy struct {
	// MaxAttempts is the total placement budget including the first
	// admission (0 = default 3; 1 = a fault is fatal).
	MaxAttempts int
	// BackoffBase is the backoff before the first retry in ticks; each
	// further retry doubles it (0 = default 2).
	BackoffBase int
	// BackoffMax caps the exponential growth (0 = default 16).
	BackoffMax int
}

// Validate reports the first invalid RetryPolicy field by name.
func (p RetryPolicy) Validate() error {
	if p.MaxAttempts < 0 {
		return fmt.Errorf("faults: RetryPolicy.MaxAttempts must be non-negative (0 = default 3), got %d", p.MaxAttempts)
	}
	if p.BackoffBase < 0 {
		return fmt.Errorf("faults: RetryPolicy.BackoffBase must be non-negative (0 = default 2), got %d", p.BackoffBase)
	}
	if p.BackoffMax < 0 {
		return fmt.Errorf("faults: RetryPolicy.BackoffMax must be non-negative (0 = default 16), got %d", p.BackoffMax)
	}
	return nil
}

// WithDefaults resolves the zero fields to the documented defaults.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.BackoffBase == 0 {
		p.BackoffBase = 2
	}
	if p.BackoffMax == 0 {
		p.BackoffMax = 16
	}
	return p
}

// NodeChaos tunes unscripted node-level chaos for a cluster: whole-node
// crashes with timed restarts, "gray" degradation windows (late heartbeats
// plus dipped decode capacity), and in-flight heartbeat drops. Rates are
// probabilities in [0, 1]; the zero value injects nothing. Like the
// slot-level Config, every decision is a pure hash of (seed, kind, tick,
// node), so a chaos schedule is bit-identical across worker counts, decode
// paths, and REPRO_PROCS.
type NodeChaos struct {
	// Seed drives every draw; a fixed seed fixes the whole node schedule.
	Seed uint64
	// CrashRate is the per-node-per-tick probability a crash begins.
	CrashRate float64
	// RecoverTicks is the restart delay: a crash beginning at tick s keeps
	// the node down over [s, s+RecoverTicks) (0 = default 24).
	RecoverTicks int
	// GrayRate is the per-node-per-tick probability a gray window begins.
	GrayRate float64
	// GrayTicks is each gray window's length (0 = default 8).
	GrayTicks int
	// GraySlots is how many batch slots a gray node loses (0 = default 1).
	GraySlots int
	// GrayLag is how many ticks late a gray node's heartbeats arrive
	// (0 = default 2).
	GrayLag int
	// DropRate is the per-node-per-tick probability a healthy node's
	// heartbeat is lost in flight — false-positive detector pressure.
	DropRate float64
}

// Validate reports the first invalid NodeChaos field by name.
func (c NodeChaos) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"CrashRate", c.CrashRate}, {"GrayRate", c.GrayRate}, {"DropRate", c.DropRate}} {
		if r.v < 0 || r.v > 1 || r.v != r.v {
			return fmt.Errorf("faults: NodeChaos.%s must be a probability in [0, 1], got %v", r.name, r.v)
		}
	}
	if c.RecoverTicks < 0 {
		return fmt.Errorf("faults: NodeChaos.RecoverTicks must be non-negative (0 = default 24), got %d", c.RecoverTicks)
	}
	if c.GrayTicks < 0 {
		return fmt.Errorf("faults: NodeChaos.GrayTicks must be non-negative (0 = default 8), got %d", c.GrayTicks)
	}
	if c.GraySlots < 0 {
		return fmt.Errorf("faults: NodeChaos.GraySlots must be non-negative (0 = default 1), got %d", c.GraySlots)
	}
	if c.GrayLag < 0 {
		return fmt.Errorf("faults: NodeChaos.GrayLag must be non-negative (0 = default 2), got %d", c.GrayLag)
	}
	return nil
}

// WithDefaults resolves the zero shape fields to the documented defaults.
func (c NodeChaos) WithDefaults() NodeChaos {
	if c.RecoverTicks == 0 {
		c.RecoverTicks = 24
	}
	if c.GrayTicks == 0 {
		c.GrayTicks = 8
	}
	if c.GraySlots == 0 {
		c.GraySlots = 1
	}
	if c.GrayLag == 0 {
		c.GrayLag = 2
	}
	return c
}

// Enabled reports whether the config injects anything at all.
func (c NodeChaos) Enabled() bool {
	return c.CrashRate > 0 || c.GrayRate > 0 || c.DropRate > 0
}

// NodeMix builds the canonical node-chaos mix at one intensity: crashes at
// rate, gray windows at 2·rate, and heartbeat drops at rate/2, with the
// default shapes. This is what dipbench -node-chaos uses.
func NodeMix(rate float64, seed uint64) (NodeChaos, error) {
	if rate < 0 || rate > 1 || rate != rate {
		return NodeChaos{}, fmt.Errorf("faults: node mix rate must be a probability in [0, 1], got %v", rate)
	}
	gray := 2 * rate
	if gray > 1 {
		gray = 1
	}
	c := NodeChaos{Seed: seed, CrashRate: rate, GrayRate: gray, DropRate: rate / 2}
	return c, nil
}

// NodePlan is a seeded node-lifecycle chaos schedule over the simulated
// tick clock — the node-level sibling of Plan. Every method is a pure
// retroactive window scan (the same trick Plan.Offline uses), so the
// cluster can ask "is node n down at tick t?" from any tick without
// replaying history and the answer never depends on execution order.
type NodePlan struct {
	cfg NodeChaos
}

// NewNodePlan validates cfg and builds a seeded plan with defaults applied.
func NewNodePlan(cfg NodeChaos) (*NodePlan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &NodePlan{cfg: cfg.WithDefaults()}, nil
}

// Config returns the plan's (defaulted) configuration.
func (p *NodePlan) Config() NodeChaos { return p.cfg }

// Dead reports whether a crash window covers (tick, node): a crash drawn at
// tick s keeps the node down over [s, s+RecoverTicks). Overlapping crashes
// do not stack — the node is simply down until the last window ends.
func (p *NodePlan) Dead(tick, node int) bool {
	if p.cfg.CrashRate == 0 {
		return false
	}
	from := tick - p.cfg.RecoverTicks + 1
	if from < 0 {
		from = 0
	}
	for s := from; s <= tick; s++ {
		if draw(p.cfg.Seed, Crash, s, node) < p.cfg.CrashRate {
			return true
		}
	}
	return false
}

// Gray reports whether a gray window covers (tick, node). A dead node is
// not gray — callers check Dead first.
func (p *NodePlan) Gray(tick, node int) bool {
	if p.cfg.GrayRate == 0 {
		return false
	}
	from := tick - p.cfg.GrayTicks + 1
	if from < 0 {
		from = 0
	}
	for s := from; s <= tick; s++ {
		if draw(p.cfg.Seed, Gray, s, node) < p.cfg.GrayRate {
			return true
		}
	}
	return false
}

// DropHeartbeat reports whether the heartbeat the node emits at tick is
// lost in flight.
func (p *NodePlan) DropHeartbeat(tick, node int) bool {
	if p.cfg.DropRate == 0 {
		return false
	}
	return draw(p.cfg.Seed, HeartbeatDrop, tick, node) < p.cfg.DropRate
}

// Backoff returns the simulated-tick delay before retry number attempt
// (1-based) of the session with the given submission index: exponential in
// the attempt, capped at BackoffMax, plus a seeded jitter in [0,
// BackoffBase) hashed from (seed, index, attempt) so contending sessions
// de-synchronize deterministically. Always at least 1 tick, so a faulted
// session can never be re-placed on the tick it faulted.
func (p RetryPolicy) Backoff(seed uint64, index, attempt int) int {
	p = p.WithDefaults()
	if attempt < 1 {
		attempt = 1
	}
	shift := attempt - 1
	if shift > 30 {
		shift = 30
	}
	d := p.BackoffBase << shift
	if d > p.BackoffMax {
		d = p.BackoffMax
	}
	if p.BackoffBase > 1 {
		d += int(draw(seed, Kind(17), index, attempt) * float64(p.BackoffBase))
	}
	if d < 1 {
		d = 1
	}
	return d
}
