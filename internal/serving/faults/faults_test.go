package faults

import (
	"strings"
	"testing"
)

// Fault draws must be pure functions of (seed, tick, slot): the same plan
// queried twice — or via a second instance — answers identically, and the
// query order cannot matter. This is what lets the engine fast-forward idle
// ticks and reorder nothing.
func TestPlanDrawsAreStateless(t *testing.T) {
	p1, err := Mix(0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := Mix(0.3, 42)
	// Query p1 forward and p2 backward; answers must agree pointwise.
	type key struct{ tick, slot int }
	ans := map[key][4]bool{}
	for tick := 0; tick < 64; tick++ {
		for slot := 0; slot < 4; slot++ {
			ans[key{tick, slot}] = [4]bool{
				p1.StepFault(tick, slot), p1.Revoke(tick, slot),
				p1.Cancel(tick, slot), p1.Offline(tick) > 0,
			}
		}
	}
	for tick := 63; tick >= 0; tick-- {
		for slot := 3; slot >= 0; slot-- {
			got := [4]bool{
				p2.StepFault(tick, slot), p2.Revoke(tick, slot),
				p2.Cancel(tick, slot), p2.Offline(tick) > 0,
			}
			if got != ans[key{tick, slot}] {
				t.Fatalf("draws at (%d,%d) depend on query order: %v vs %v", tick, slot, got, ans[key{tick, slot}])
			}
		}
	}
}

// Different seeds, kinds, ticks, and slots must decorrelate, and the
// empirical rate over a long horizon must track the configured one.
func TestPlanRatesAndIndependence(t *testing.T) {
	p, err := New(Config{Seed: 7, StepRate: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	const n = 20000
	for tick := 0; tick < n/4; tick++ {
		for slot := 0; slot < 4; slot++ {
			if p.StepFault(tick, slot) {
				hits++
			}
		}
	}
	rate := float64(hits) / n
	if rate < 0.22 || rate > 0.28 {
		t.Fatalf("empirical step-fault rate %.3f far from configured 0.25", rate)
	}
	// A different seed must give a different schedule.
	q, _ := New(Config{Seed: 8, StepRate: 0.25})
	same := 0
	for tick := 0; tick < 1000; tick++ {
		if p.StepFault(tick, 0) == q.StepFault(tick, 0) {
			same++
		}
	}
	if same > 950 {
		t.Fatalf("seeds 7 and 8 agree on %d/1000 draws — draws are not seed-sensitive", same)
	}
	// Zero rates never fire.
	z, _ := New(Config{Seed: 7})
	for tick := 0; tick < 100; tick++ {
		if z.StepFault(tick, 0) || z.Revoke(tick, 0) || z.Cancel(tick, 0) || z.Offline(tick) != 0 {
			t.Fatalf("zero-rate plan fired at tick %d", tick)
		}
	}
}

// A dip drawn at tick s must cover exactly [s, s+DipTicks) at DipSlots deep.
func TestPlanDipWindow(t *testing.T) {
	p, err := New(Config{Seed: 3, DipRate: 0.05, DipSlots: 2, DipTicks: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Find a tick where a dip starts (the draw itself, not the window).
	start := -1
	for tick := 0; tick < 500; tick++ {
		if draw(3, Dip, tick, 0) < 0.05 {
			start = tick
			break
		}
	}
	if start < 0 {
		t.Fatal("no dip drawn in 500 ticks at rate 0.05")
	}
	for off := 0; off < 3; off++ {
		if got := p.Offline(start + off); got != 2 {
			t.Fatalf("tick %d (dip started %d): offline %d, want 2", start+off, start, got)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; "" = valid
	}{
		{"zero value", Config{}, ""},
		{"full rates", Config{StepRate: 1, RevokeRate: 1, CancelRate: 1, DipRate: 1}, ""},
		{"negative step rate", Config{StepRate: -0.1}, "StepRate"},
		{"step rate above one", Config{StepRate: 1.1}, "StepRate"},
		{"NaN revoke rate", Config{RevokeRate: nan()}, "RevokeRate"},
		{"negative cancel rate", Config{CancelRate: -1}, "CancelRate"},
		{"dip rate above one", Config{DipRate: 2}, "DipRate"},
		{"negative dip slots", Config{DipSlots: -1}, "DipSlots"},
		{"negative dip ticks", Config{DipTicks: -2}, "DipTicks"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not name %q", err, tc.want)
			}
		})
	}
	if _, err := Mix(-0.5, 1); err == nil {
		t.Fatal("Mix accepted a negative rate")
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

func TestScriptedEvents(t *testing.T) {
	s, err := Scripted(
		Event{Tick: 3, Kind: Step, Slot: 1},
		Event{Tick: 5, Kind: Revoke, Slot: 0},
		Event{Tick: 5, Kind: Cancel, Slot: 2},
		Event{Tick: 8, Kind: Dip, Slots: 2, Ticks: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !s.StepFault(3, 1) || s.StepFault(3, 0) || s.StepFault(4, 1) {
		t.Fatal("scripted step fault fired at the wrong (tick, slot)")
	}
	if !s.Revoke(5, 0) || !s.Cancel(5, 2) || s.Revoke(5, 2) || s.Cancel(5, 0) {
		t.Fatal("scripted revoke/cancel fired at the wrong (tick, slot)")
	}
	for tick, want := range map[int]int{7: 0, 8: 2, 9: 2, 10: 2, 11: 0} {
		if got := s.Offline(tick); got != want {
			t.Fatalf("Offline(%d) = %d, want %d", tick, got, want)
		}
	}
	for _, bad := range [][]Event{
		{{Tick: -1, Kind: Step}},
		{{Tick: 0, Kind: Kind(9)}},
		{{Tick: 0, Kind: Step, Slot: -1}},
		{{Tick: 0, Kind: Dip, Slots: -1}},
	} {
		if _, err := Scripted(bad...); err == nil {
			t.Fatalf("Scripted accepted invalid event %+v", bad[0])
		}
	}
}

func TestRetryPolicy(t *testing.T) {
	// Defaults resolve as documented.
	d := RetryPolicy{}.WithDefaults()
	if d.MaxAttempts != 3 || d.BackoffBase != 2 || d.BackoffMax != 16 {
		t.Fatalf("unexpected defaults: %+v", d)
	}
	// Negative fields are named errors.
	for _, tc := range []struct {
		p    RetryPolicy
		want string
	}{
		{RetryPolicy{MaxAttempts: -1}, "MaxAttempts"},
		{RetryPolicy{BackoffBase: -1}, "BackoffBase"},
		{RetryPolicy{BackoffMax: -1}, "BackoffMax"},
	} {
		if err := tc.p.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("error %v does not name %q", err, tc.want)
		}
	}
	// Backoff grows exponentially up to the cap, stays ≥ 1, and is
	// deterministic in (seed, index, attempt).
	p := RetryPolicy{MaxAttempts: 5, BackoffBase: 2, BackoffMax: 8}
	prevBase := 0
	for attempt := 1; attempt <= 5; attempt++ {
		b := p.Backoff(11, 0, attempt)
		if b != p.Backoff(11, 0, attempt) {
			t.Fatal("Backoff is not deterministic")
		}
		if b < 1 {
			t.Fatalf("attempt %d: backoff %d < 1", attempt, b)
		}
		if b > p.BackoffMax+p.BackoffBase {
			t.Fatalf("attempt %d: backoff %d above cap+jitter %d", attempt, b, p.BackoffMax+p.BackoffBase)
		}
		base := p.BackoffBase << (attempt - 1)
		if base > p.BackoffMax {
			base = p.BackoffMax
		}
		if base < prevBase {
			t.Fatal("exponential base shrank")
		}
		prevBase = base
		if b < base {
			t.Fatalf("attempt %d: backoff %d below exponential base %d", attempt, b, base)
		}
	}
	// Different sessions jitter apart at least somewhere in a small range.
	varies := false
	for idx := 1; idx < 16 && !varies; idx++ {
		varies = p.Backoff(11, idx, 1) != p.Backoff(11, 0, 1)
	}
	if !varies {
		t.Fatal("backoff jitter never separates sessions")
	}
	// Minimum-delay policy: base 1 has no jitter room but still delays.
	one := RetryPolicy{MaxAttempts: 2, BackoffBase: 1, BackoffMax: 1}
	if got := one.Backoff(1, 0, 1); got != 1 {
		t.Fatalf("base-1 backoff = %d, want exactly 1", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Step: "step", Revoke: "revoke", Cancel: "cancel", Dip: "dip", Kind(9): "invalid"} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
