package serving

import (
	"strings"
	"testing"

	"repro/internal/serving/obs"
	"repro/internal/sparsity"
)

// Keep-in-sync check: every registry entry must round-trip through its CLI
// parser — Schedulers/Preemptors/Policies are what NewEngine consumes, and
// ParseX is what dipbench feeds it, so a name in one but not the other is a
// policy users can't reach (or a flag value that explodes downstream).
func TestRegistryNamesRoundTripThroughParsers(t *testing.T) {
	for _, s := range Schedulers() {
		got, err := ParseScheduler(s.Name())
		if err != nil || got.Name() != s.Name() {
			t.Errorf("scheduler %q does not round-trip: %v", s.Name(), err)
		}
	}
	for _, p := range Preemptors() {
		got, err := ParsePreemptor(p.Name())
		if err != nil || got.Name() != p.Name() {
			t.Errorf("preemptor %q does not round-trip: %v", p.Name(), err)
		}
	}
	for _, a := range Policies() {
		got, err := ParseArbPolicy(a.String())
		if err != nil || got != a {
			t.Errorf("arbitration policy %q does not round-trip: %v", a, err)
		}
	}
	// Unknown names are errors that enumerate the alternatives.
	if _, err := ParseScheduler("nope"); err == nil || !strings.Contains(err.Error(), "edf") {
		t.Errorf("unknown scheduler error does not list known names: %v", err)
	}
	if _, err := ParsePreemptor("nope"); err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Errorf("unknown preemptor error does not list known names: %v", err)
	}
	if _, err := ParseArbPolicy("nope"); err == nil || !strings.Contains(err.Error(), "fair") {
		t.Errorf("unknown arbitration error does not list known names: %v", err)
	}
	// The exporter-format registry feeds dipbench -events-format the same
	// way: every listed format must round-trip, and each must map to a
	// distinct file extension (per-cell event files disambiguate by ext).
	exts := map[string]string{}
	for _, f := range obs.FormatNames() {
		got, err := obs.ParseFormat(f)
		if err != nil || got != f {
			t.Errorf("event-log format %q does not round-trip: %v", f, err)
		}
		ext := obs.FormatExt(f)
		if prev, dup := exts[ext]; dup {
			t.Errorf("formats %q and %q share file extension %q", prev, f, ext)
		}
		exts[ext] = f
	}
	if _, err := obs.ParseFormat("nope"); err == nil || !strings.Contains(err.Error(), "jsonl") {
		t.Errorf("unknown event-log format error does not list known names: %v", err)
	}
}

// Keep-in-sync check: the suspend-cause → event-detail mapping must stay
// injective and disjoint from the cluster's migration detail — the obs
// reconcilers (single-engine and cluster) classify KindSuspend events by
// Detail string, so two causes sharing a detail, or a cause colliding with
// DetailMigrate, would silently double-count one bucket.
func TestSuspendCauseDetailsAreDistinct(t *testing.T) {
	seen := map[string]suspendCause{}
	for _, by := range []suspendCause{byPreempt, byFault, byDip} {
		d := causeDetail(by)
		if d == "" {
			t.Errorf("suspend cause %d maps to an empty event detail", by)
		}
		if prev, dup := seen[d]; dup {
			t.Errorf("suspend causes %d and %d share event detail %q", prev, by, d)
		}
		seen[d] = by
		if d == obs.DetailMigrate {
			t.Errorf("suspend cause %d collides with the cluster migration detail %q", by, d)
		}
	}
}

// Keep-in-sync check: WorkloadNames must list exactly the Name()s the
// built-in workload constructors produce — it is the list dipbench
// validates -workload against, so an orphan on either side is a reachable
// kind users can't select or a selectable kind that doesn't exist.
func TestWorkloadNamesMatchConstructors(t *testing.T) {
	trained(t)
	one := requests(t, 1,
		func(int) sparsity.Scheme { return sparsity.NewDIP(0.5) },
		func(int) int { return 1 })
	poi, err := PoissonArrivals(one, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	closed, err := ClosedLoop([][]Request{one}, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TraceWorkload([]TraceEntry{{ID: "x", Tokens: 32}}, testBinder(t))
	if err != nil {
		t.Fatal(err)
	}
	built := map[string]bool{}
	for _, w := range []Workload{FixedBatch(one), poi, closed, tr} {
		built[w.Name()] = true
	}
	listed := map[string]bool{}
	for _, n := range WorkloadNames() {
		if listed[n] {
			t.Errorf("WorkloadNames lists %q twice", n)
		}
		listed[n] = true
		if !built[n] {
			t.Errorf("WorkloadNames lists %q but no built-in constructor produces it", n)
		}
	}
	for n := range built {
		if !listed[n] {
			t.Errorf("constructor produces workload %q missing from WorkloadNames", n)
		}
	}
}
