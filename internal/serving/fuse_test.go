package serving

import (
	"reflect"
	"testing"

	"repro/internal/parallel"
	"repro/internal/sparsity"
)

// runFuse runs one K-session DIP-CA workload with the fused path on or off.
func runFuse(t *testing.T, arb ArbPolicy, seed uint64, noFuse bool) *Report {
	t.Helper()
	const k = 5
	reqs := requests(t, k,
		func(int) sparsity.Scheme { return sparsity.NewDIPCA(0.5, 0.2) },
		func(i int) int { return 2 + i%3 })
	e, err := NewEngine(zoo.m, Config{
		System: sysCfg(), Arb: arb, MaxActive: 3, Quantum: 4, Seed: seed, NoFuse: noFuse,
	}, FixedBatch(reqs))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// stripWall zeroes the host annotation, the one Report block excluded from
// the determinism contract.
func stripWall(r *Report) *Report {
	r.Wall = WallClock{}
	return r
}

// The tentpole acceptance test: the fused multi-RHS path must reproduce
// the per-session path bit for bit — the whole Report, every session, every
// cache statistic — across arbitration policies, seeds, and worker counts
// (run under -race this also proves the fused step phase never races the
// shared-cache commits).
func TestFusedEngineMatchesPerSessionEngineBitForBit(t *testing.T) {
	trained(t)
	defer parallel.SetProcs(parallel.Procs())
	for _, arb := range Policies() {
		for _, seed := range []uint64{3, 17} {
			parallel.SetProcs(4)
			fused := stripWall(runFuse(t, arb, seed, false))
			unfused := stripWall(runFuse(t, arb, seed, true))
			if !reflect.DeepEqual(fused, unfused) {
				t.Fatalf("arb=%v seed=%d: fused and per-session reports diverged:\nfused   %+v\nunfused %+v",
					arb, seed, fused, unfused)
			}
			parallel.SetProcs(1)
			serialFused := stripWall(runFuse(t, arb, seed, false))
			if !reflect.DeepEqual(fused, serialFused) {
				t.Fatalf("arb=%v seed=%d: fused report depends on worker count", arb, seed)
			}
		}
	}
}

// The fused tick's steady-state allocations: everything engine-side is
// reused across ticks, so the only per-tick allocations are the KV-cache
// entries every decoder inherently appends (two per layer per stream per
// token) plus whatever the cache simulator's eviction bookkeeping needs.
// The budget below is deliberately tight — a regression that reintroduces
// per-tick scratch (per-step logits, attention scores, batch tables) blows
// straight past it.
func TestFusedTickSteadyStateAllocations(t *testing.T) {
	trained(t)
	const k, quantum = 4, 4
	reqs := requests(t, k,
		func(int) sparsity.Scheme { return sparsity.NewDIPCA(0.5, 0.2) },
		func(int) int { return 6 }) // long enough to stay active throughout
	e, err := NewEngine(zoo.m, Config{
		System: sysCfg(), Arb: ArbShared, MaxActive: k, Quantum: quantum, Seed: 1,
	}, FixedBatch(reqs))
	if err != nil {
		t.Fatal(err)
	}
	active := make([]*Session, 0, k)
	for i := range reqs {
		qe := &QueueEntry{Req: e.reqs[i], Index: i, ArriveTick: 0, Order: i, Deadline: NoDeadline}
		sess, err := e.admit(qe, i, 0)
		if err != nil {
			t.Fatal(err)
		}
		active = append(active, sess)
	}
	for i := 0; i < 3; i++ { // warm the arenas and KV capacity
		e.tickFused(active)
	}
	allocs := testing.AllocsPerRun(5, func() { e.tickFused(active) })
	layers := len(zoo.m.Blocks)
	kvBudget := float64(quantum * k * layers * 2)
	// Slack covers KV slice regrowth, sparse-gather regrowth, and
	// cache-policy bookkeeping; it is far below the per-step scratch the
	// unfused path allocates (pinned by the relative check below).
	budget := kvBudget * 2.5
	if allocs > budget {
		t.Fatalf("fused steady-state tick allocates %.0f objects, budget %.0f (KV floor %.0f)",
			allocs, budget, kvBudget)
	}
	for _, s := range active {
		if s.stream.Done() {
			t.Fatal("measurement ran off the end of a stream; lengthen the requests")
		}
	}

	// The same workload through the unfused tick must allocate several times
	// more — the fusion satellite's whole point is that batch/slot scratch
	// is reused across ticks instead of reallocated per session step.
	e2, err := NewEngine(zoo.m, Config{
		System: sysCfg(), Arb: ArbShared, MaxActive: k, Quantum: quantum, Seed: 1, NoFuse: true,
	}, FixedBatch(requests(t, k,
		func(int) sparsity.Scheme { return sparsity.NewDIPCA(0.5, 0.2) },
		func(int) int { return 6 })))
	if err != nil {
		t.Fatal(err)
	}
	active2 := make([]*Session, 0, k)
	for i := range e2.reqs {
		qe := &QueueEntry{Req: e2.reqs[i], Index: i, ArriveTick: 0, Order: i, Deadline: NoDeadline}
		sess, err := e2.admit(qe, i, 0)
		if err != nil {
			t.Fatal(err)
		}
		active2 = append(active2, sess)
	}
	for i := 0; i < 3; i++ {
		e2.tickShared(active2)
	}
	unfused := testing.AllocsPerRun(5, func() { e2.tickShared(active2) })
	if allocs*2 > unfused {
		t.Fatalf("fused tick allocates %.0f objects, unfused %.0f — fusion no longer pays its way", allocs, unfused)
	}
}
