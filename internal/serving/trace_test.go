package serving

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sparsity"
)

func testBinder(t *testing.T) TraceBinder {
	t.Helper()
	return TraceBinder{
		Corpus: zoo.tokens,
		Scheme: func(name string) (sparsity.Scheme, error) {
			switch name {
			case "", "dip":
				return sparsity.NewDIP(0.5), nil
			case "dipca":
				return sparsity.NewDIPCA(0.5, 0.2), nil
			}
			return nil, fmt.Errorf("unknown scheme %q", name)
		},
	}
}

func TestParseTraceJSONAndCSVAgree(t *testing.T) {
	jsonSrc := `[
		{"id": "a", "tick": 0, "tokens": 32, "class": "interactive", "priority": 2, "deadline_ticks": 40},
		{"id": "b", "tick": 3, "tokens": 64, "start": 256, "scheme": "dipca"}
	]`
	csvSrc := "id,tick,tokens,start,class,priority,deadline_ticks,scheme\n" +
		"a,0,32,0,interactive,2,40,\n" +
		"b,3,64,256,,,,dipca\n"
	je, err := ParseTrace(strings.NewReader(jsonSrc))
	if err != nil {
		t.Fatal(err)
	}
	ce, err := ParseTrace(strings.NewReader(csvSrc))
	if err != nil {
		t.Fatal(err)
	}
	if len(je) != 2 || len(ce) != 2 {
		t.Fatalf("entry counts: json %d csv %d", len(je), len(ce))
	}
	for i := range je {
		if je[i] != ce[i] {
			t.Fatalf("entry %d differs between formats:\njson %+v\ncsv  %+v", i, je[i], ce[i])
		}
	}
	want := TraceEntry{ID: "a", Tick: 0, Tokens: 32, Class: "interactive", Priority: 2, DeadlineTicks: 40}
	if je[0] != want {
		t.Fatalf("parsed %+v, want %+v", je[0], want)
	}
}

func TestParseTraceRejections(t *testing.T) {
	for name, src := range map[string]string{
		"empty":          "",
		"bad json":       `[{"id":}]`,
		"unknown field":  `[{"id": "a", "tick": 0, "tokens": 1, "wat": 2}]`,
		"missing column": "id,tick\nx,0\n",
		"unknown column": "id,tick,tokens,wat\nx,0,1,2\n",
		"non-numeric":    "id,tick,tokens\nx,zero,1\n",
		"ragged csv":     "id,tick,tokens\nx,0\n",
		"negative tick":  `[{"id": "a", "tick": -3, "tokens": 1}]`,
		"unsorted json":  `[{"id": "a", "tick": 5, "tokens": 1}, {"id": "b", "tick": 2, "tokens": 1}]`,
		"unsorted csv":   "id,tick,tokens\na,5,1\nb,2,1\n",
	} {
		if _, err := ParseTrace(strings.NewReader(src)); err == nil {
			t.Fatalf("%s: expected parse error", name)
		}
	}
	// Ordering violations must name the offending record, so a bad line in
	// a million-entry trace is findable.
	_, err := ParseTrace(strings.NewReader("id,tick,tokens\na,5,1\nb,2,1\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), `"b"`) {
		t.Fatalf("unsorted CSV error should name line 3 and id b: %v", err)
	}
	_, err = ParseTrace(strings.NewReader(`[{"id": "a", "tick": 1, "tokens": 1}, {"id": "b", "tick": -2, "tokens": 1}]`))
	if err == nil || !strings.Contains(err.Error(), "entry 2") || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative JSON tick error should name entry 2: %v", err)
	}
}

// A replayed trace drives the engine end to end: arrivals land on the
// file's ticks (in order, stable within a tick), SLO classes come through,
// and binding errors are loud.
func TestTraceWorkloadReplay(t *testing.T) {
	trained(t)
	entries := []TraceEntry{
		{ID: "late", Tick: 9, Tokens: 32, Start: 0, Class: "batch"},
		{ID: "first", Tick: 0, Tokens: 32, Start: 256, Class: "interactive", Priority: 1, DeadlineTicks: 400},
		{ID: "second", Tick: 0, Tokens: 32, Start: 512, Scheme: "dipca"},
	}
	w, err := TraceWorkload(entries, testBinder(t))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(zoo.m, Config{System: sysCfg(), Arb: ArbFairShare, MaxActive: 2, Quantum: 8, Seed: 4}, w)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "trace" {
		t.Fatalf("workload name %q", rep.Workload)
	}
	byID := map[string]SessionMetrics{}
	for _, sm := range rep.Sessions {
		byID[sm.ID] = sm
	}
	if byID["first"].ArriveTick != 0 || byID["second"].ArriveTick != 0 || byID["late"].ArriveTick != 9 {
		t.Fatalf("arrival ticks wrong: %+v", rep.Sessions)
	}
	// Stable sort: within tick 0 the file order (first, second) is kept as
	// submission order.
	if byID["first"].Index != 0 || byID["second"].Index != 1 || byID["late"].Index != 2 {
		t.Fatalf("submission order not stable by tick: %+v", rep.Sessions)
	}
	if byID["first"].SLO != (SLO{Class: "interactive", Priority: 1, DeadlineTicks: 400}) {
		t.Fatalf("SLO lost in binding: %+v", byID["first"].SLO)
	}
	if !byID["first"].Attained {
		t.Fatalf("generous traced deadline missed: %+v", byID["first"])
	}

	bad := []struct {
		name    string
		entries []TraceEntry
		binder  TraceBinder
	}{
		{"no entries", nil, testBinder(t)},
		{"no binder scheme", []TraceEntry{{Tokens: 1}}, TraceBinder{Corpus: zoo.tokens}},
		{"negative tick", []TraceEntry{{Tick: -1, Tokens: 1}}, testBinder(t)},
		{"zero tokens", []TraceEntry{{Tick: 0, Tokens: 0}}, testBinder(t)},
		{"outside corpus", []TraceEntry{{Tick: 0, Tokens: 1, Start: len(zoo.tokens)}}, testBinder(t)},
		{"unknown scheme", []TraceEntry{{Tick: 0, Tokens: 1, Scheme: "wat"}}, testBinder(t)},
	}
	for _, tc := range bad {
		if _, err := TraceWorkload(tc.entries, tc.binder); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}

// A buggy workload (out-of-range or duplicate indices) must fail loudly,
// not corrupt the run.
type brokenWorkload struct {
	reqs []Request
	emit [][]int
	tick int
}

func (b *brokenWorkload) Name() string        { return "broken" }
func (b *brokenWorkload) Requests() []Request { return b.reqs }
func (b *brokenWorkload) Done() bool          { return b.tick >= len(b.emit) }

// NextArrival lies (a past tick, never delivered) — the engine must detect
// the stall instead of fast-forwarding in place forever.
func (b *brokenWorkload) NextArrival() (int, bool) { return 0, true }
func (b *brokenWorkload) Next(int, []Finished) []int {
	if b.tick < len(b.emit) {
		out := b.emit[b.tick]
		b.tick++
		return out
	}
	return nil
}

func TestEngineRejectsBrokenWorkloads(t *testing.T) {
	trained(t)
	reqs := requests(t, 2,
		func(int) sparsity.Scheme { return sparsity.NewDIP(0.5) },
		func(int) int { return 1 })
	for name, emit := range map[string][][]int{
		"out of range": {{0}, {5}},
		"duplicate":    {{0}, {0}, {1}},
		"stalled":      {{}, {}}, // not done, nothing active, no credible next arrival
	} {
		e, err := NewEngine(zoo.m, Config{System: sysCfg(), Seed: 1}, &brokenWorkload{reqs: reqs, emit: emit})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err == nil {
			t.Fatalf("%s: expected run error", name)
		}
	}
}

// Sparse traces must not cost one engine iteration per idle tick: a
// million-tick arrival gap fast-forwards the simulated clock in one jump,
// and the reported timeline still reflects the gap.
func TestEngineFastForwardsSparseGaps(t *testing.T) {
	trained(t)
	const gap = 50_000_000
	entries := []TraceEntry{
		{ID: "early", Tick: 0, Tokens: 32, Start: 0},
		{ID: "late", Tick: gap, Tokens: 32, Start: 256},
	}
	w, err := TraceWorkload(entries, testBinder(t))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(zoo.m, Config{System: sysCfg(), Arb: ArbFairShare, MaxActive: 1, Quantum: 8, Seed: 1}, w)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions[1].ArriveTick != gap || rep.Sessions[1].FinishTick <= gap {
		t.Fatalf("late session timeline wrong: %+v", rep.Sessions[1])
	}
	if rep.Ticks <= gap {
		t.Fatalf("tick clock did not advance past the gap: %d", rep.Ticks)
	}
}
