package serving

import (
	"fmt"

	"repro/internal/sparsity"
)

// ArbPolicy decides how the plan's DRAM cache budget is divided among
// concurrent sessions.
type ArbPolicy int

const (
	// ArbExclusive gives every session the full solo budget (over-committed
	// — the no-contention upper bound). A session under ArbExclusive is
	// bit-identical to a solo SystemEvaluate of the same stream.
	ArbExclusive ArbPolicy = iota
	// ArbFairShare partitions the budget equally across the batch width:
	// each session's private cache holds budget/MaxActive.
	ArbFairShare
	// ArbGreedy is first-come-first-served: each admitted session claims
	// all remaining budget; sessions arriving after exhaustion decode
	// cache-less (every access a Flash miss) until a claim is released.
	ArbGreedy
	// ArbShared backs every session with one shared cache at the full
	// budget. Accesses are committed in slot order at every token, so
	// sessions genuinely contend — and statistics stay deterministic for a
	// fixed admission order.
	ArbShared
)

// String names the policy (CLI-compatible: see ParseArbPolicy).
func (p ArbPolicy) String() string {
	switch p {
	case ArbExclusive:
		return "exclusive"
	case ArbFairShare:
		return "fair"
	case ArbGreedy:
		return "greedy"
	case ArbShared:
		return "shared"
	default:
		return "invalid"
	}
}

// ParseArbPolicy maps a CLI name to its policy.
func ParseArbPolicy(s string) (ArbPolicy, error) {
	for p := ArbExclusive; p <= ArbShared; p++ {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("serving: unknown arbitration policy %q (exclusive|fair|greedy|shared)", s)
}

// Policies lists every arbitration policy in declaration order.
func Policies() []ArbPolicy {
	return []ArbPolicy{ArbExclusive, ArbFairShare, ArbGreedy, ArbShared}
}

// grant reserves a budget fraction for a newly admitted (or resumed)
// session under the partitioned policies, recording greedy claims on the
// engine pool. The pool is clamped to [0, 1] on every mutation: repeated
// admit/suspend/retire cycles accumulate floating-point error in
// `claimed`, and an unclamped pool would eventually grant late sessions
// shares slightly above 1 or below 0.
func (e *Engine) grant(sess *Session) float64 {
	switch e.cfg.Arb {
	case ArbFairShare:
		return 1 / float64(e.cfg.MaxActive)
	case ArbGreedy:
		share := 1 - e.claimed
		if share < 0 {
			share = 0
		}
		if share > 0 {
			e.claimants++
		}
		e.claimed = clamp01(e.claimed + share)
		sess.claim = share
		return share
	default: // ArbExclusive
		return 1
	}
}

// releaseClaim returns a session's greedy claim to the pool. Whenever no
// live session holds a claim the pool is reset to exactly 0, so drift from
// long admit/retire cycles can never compound across pool generations.
func (e *Engine) releaseClaim(sess *Session) {
	if sess.claim > 0 {
		e.claimants--
		e.claimed -= sess.claim
	}
	sess.claim = 0
	if e.claimants == 0 {
		e.claimed = 0
		return
	}
	e.claimed = clamp01(e.claimed)
}

// clamp01 pins a budget fraction into [0, 1].
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// scaledCaps scales per-layer per-group unit capacities by a budget
// fraction. frac == 1 returns the capacities untouched, keeping the
// exclusive path bit-identical to the solo plan.
func scaledCaps(caps [][sparsity.NumGroups]int, frac float64) [][sparsity.NumGroups]int {
	if frac >= 1 {
		return caps
	}
	out := make([][sparsity.NumGroups]int, len(caps))
	for l := range caps {
		for g := range caps[l] {
			out[l][g] = int(frac * float64(caps[l][g]))
		}
	}
	return out
}
