package serving

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/hwsim"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/sparsity"
)

// zoo holds one trained tiny model shared across the package's tests.
var zoo struct {
	m      *model.Model
	tokens []int
}

func trained(t *testing.T) {
	t.Helper()
	if zoo.m != nil {
		return
	}
	tok := data.NewTokenizer()
	splits := data.NewSplits(73, 14000, 6000)
	cfg := model.Config{
		Name: model.Mistral7BSim, Vocab: tok.VocabSize(), Dim: 16, Layers: 2,
		Heads: 2, KVHeads: 1, DFF: 32, MaxSeq: 32, Act: nn.ActSiLU,
	}
	m := model.New(cfg, 29)
	opts := model.DefaultTrainOpts()
	opts.Steps = 100
	opts.Batch = 2
	opts.SeqLen = 31
	if _, err := model.Train(m, tok.Encode(splits.Train), opts); err != nil {
		t.Fatal(err)
	}
	zoo.m = m
	zoo.tokens = tok.Encode(splits.Test)
}

// streamFor carves session i's token stream out of the test split so every
// session decodes distinct content. nWin is its length in 32-token windows.
func streamFor(t *testing.T, i, nWin int) []int {
	t.Helper()
	lo, hi := i*256, i*256+nWin*32
	if hi > len(zoo.tokens) {
		t.Fatalf("test split too short for session %d (%d > %d)", i, hi, len(zoo.tokens))
	}
	return zoo.tokens[lo:hi]
}

func sysCfg() eval.SystemConfig {
	return eval.SystemConfig{Device: hwsim.A18Like(), Policy: cache.PolicyLFU}
}

func requests(t *testing.T, n int, scheme func(i int) sparsity.Scheme, wins func(i int) int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{ID: string(rune('a' + i)), Scheme: scheme(i), Tokens: streamFor(t, i, wins(i))}
	}
	return reqs
}

func pointsEqual(a, b eval.Point) bool {
	return a == b
}

// The headline acceptance test: under exclusive arbitration every session
// must reproduce a solo SystemEvaluate of its stream bit for bit — same
// perplexity, density, simulated throughput, hit rate, latency. DIP-CA is
// the hard case: its masks read the session's cache state every token.
func TestExclusiveSessionsMatchSoloSystemEvaluateBitForBit(t *testing.T) {
	trained(t)
	const k = 4
	reqs := requests(t, k,
		func(int) sparsity.Scheme { return sparsity.NewDIPCA(0.5, 0.2) },
		func(i int) int { return 3 + i%2 })
	e, err := NewEngine(zoo.m, Config{System: sysCfg(), Arb: ArbExclusive, MaxActive: k, Quantum: 5, Seed: 11}, FixedBatch(reqs))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sessions) != k {
		t.Fatalf("%d sessions reported, want %d", len(rep.Sessions), k)
	}
	for _, sm := range rep.Sessions {
		solo, err := eval.SystemEvaluate(zoo.m, sparsity.NewDIPCA(0.5, 0.2), reqs[sm.Index].Tokens, sysCfg())
		if err != nil {
			t.Fatal(err)
		}
		if !pointsEqual(sm.Point, solo) {
			t.Fatalf("session %q diverged from solo evaluation:\nserved %+v\nsolo   %+v", sm.ID, sm.Point, solo)
		}
		if sm.Tokens != len(reqs[sm.Index].Tokens) {
			t.Fatalf("session %q decoded %d of %d tokens", sm.ID, sm.Tokens, len(reqs[sm.Index].Tokens))
		}
	}
}

// runShared runs K DIP-CA sessions against one genuinely shared cache and
// returns the report plus the shared cache's final fingerprint.
func runShared(t *testing.T, seed uint64) (*Report, cache.Stats, int) {
	t.Helper()
	const k = 5
	reqs := requests(t, k,
		func(int) sparsity.Scheme { return sparsity.NewDIPCA(0.5, 0.2) },
		func(i int) int { return 2 + i%3 })
	e, err := NewEngine(zoo.m, Config{System: sysCfg(), Arb: ArbShared, MaxActive: 3, Quantum: 4, Seed: seed}, FixedBatch(reqs))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep, e.SharedCache().TotalStats(), e.SharedCache().Occupancy()
}

// Sessions contending for one ModelCache must leave bit-identical final
// occupancy, statistics, and per-session outputs for a fixed admission
// order, no matter how many workers step the batch. Run under -race this
// also proves the parallel step phase never races the serial commits.
func TestSharedCacheDeterministicAcrossWorkerCounts(t *testing.T) {
	trained(t)
	defer parallel.SetProcs(parallel.Procs())

	parallel.SetProcs(1)
	repSer, statsSer, occSer := runShared(t, 7)
	parallel.SetProcs(8)
	repPar, statsPar, occPar := runShared(t, 7)

	if statsSer != statsPar {
		t.Fatalf("shared cache stats depend on worker count: %+v vs %+v", statsSer, statsPar)
	}
	if occSer != occPar {
		t.Fatalf("shared cache occupancy depends on worker count: %d vs %d", occSer, occPar)
	}
	for i := range repSer.Sessions {
		a, b := repSer.Sessions[i], repPar.Sessions[i]
		if !pointsEqual(a.Point, b.Point) || a.AdmitRank != b.AdmitRank ||
			a.AdmitTick != b.AdmitTick || a.FinishTick != b.FinishTick {
			t.Fatalf("session %d not deterministic:\nserial   %+v\nparallel %+v", i, a, b)
		}
	}
	if occSer == 0 || statsSer.Hits == 0 {
		t.Fatalf("shared cache never filled (occupancy %d, stats %+v)", occSer, statsSer)
	}
}

// A different seed must produce a different admission order (and the same
// seed must reproduce it exactly). With one batch slot the engine is a
// seeded serial queue: finish ticks follow admission ranks.
func TestAdmissionOrderIsSeededAndReproducible(t *testing.T) {
	trained(t)
	run := func(seed uint64) *Report {
		reqs := requests(t, 5,
			func(int) sparsity.Scheme { return sparsity.NewDIP(0.5) },
			func(int) int { return 2 })
		e, err := NewEngine(zoo.m, Config{System: sysCfg(), Arb: ArbFairShare, MaxActive: 1, Quantum: 16, Seed: seed}, FixedBatch(reqs))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	ranks := func(r *Report) []int {
		out := make([]int, len(r.Sessions))
		for i, sm := range r.Sessions {
			out[i] = sm.AdmitRank
		}
		return out
	}
	a, b, c := run(1), run(1), run(99)
	ra, rb, rc := ranks(a), ranks(b), ranks(c)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("same seed, different admission order: %v vs %v", ra, rb)
		}
	}
	same := true
	for i := range ra {
		same = same && ra[i] == rc[i]
	}
	if same {
		t.Fatalf("seeds 1 and 99 produced identical admission order %v", ra)
	}
	for _, sm := range a.Sessions {
		// One slot: session with rank r is the (r+1)-th to finish.
		for _, other := range a.Sessions {
			if other.AdmitRank < sm.AdmitRank && other.FinishTick > sm.FinishTick {
				t.Fatalf("serial queue finished out of admission order: %+v before %+v", sm, other)
			}
		}
	}
}

// Continuous batching: with two slots and unequal stream lengths, a queued
// session must be admitted the moment a slot frees mid-run — not at a
// global barrier — and the whole batch must finish in fewer ticks than a
// one-slot queue.
func TestContinuousBatchingBackfillsFreedSlots(t *testing.T) {
	trained(t)
	build := func(maxActive int) *Engine {
		reqs := requests(t, 4,
			func(int) sparsity.Scheme { return sparsity.NewDIP(0.5) },
			func(i int) int { return []int{4, 1, 1, 2}[i] })
		e, err := NewEngine(zoo.m, Config{System: sysCfg(), Arb: ArbFairShare, MaxActive: maxActive, Quantum: 8, Seed: 3}, FixedBatch(reqs))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	rep, err := build(2).Run()
	if err != nil {
		t.Fatal(err)
	}
	backfilled := 0
	for _, sm := range rep.Sessions {
		if sm.AdmitRank >= 2 {
			if sm.AdmitTick == 0 {
				t.Fatalf("session %q admitted at tick 0 despite full batch: %+v", sm.ID, sm)
			}
			backfilled++
		}
		if sm.FinishTick <= sm.AdmitTick {
			t.Fatalf("session %q has empty run interval: %+v", sm.ID, sm)
		}
	}
	if backfilled != 2 {
		t.Fatalf("expected 2 backfilled sessions, got %d", backfilled)
	}
	serial, err := build(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ticks >= serial.Ticks {
		t.Fatalf("batched run took %d ticks, serial queue %d", rep.Ticks, serial.Ticks)
	}
}

// Arbitration grants: fair-share hands every session budget/MaxActive;
// greedy hands the first arrival everything and starves the rest while the
// claim is held, which must show up as a zero hit rate for the starved
// sessions and a positive one for the hog.
func TestFairShareAndGreedyGrants(t *testing.T) {
	trained(t)
	run := func(arb ArbPolicy) *Report {
		reqs := requests(t, 3,
			func(int) sparsity.Scheme { return sparsity.NewDIP(0.5) },
			func(int) int { return 3 })
		e, err := NewEngine(zoo.m, Config{System: sysCfg(), Arb: arb, MaxActive: 3, Quantum: 8, Seed: 5}, FixedBatch(reqs))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	fair := run(ArbFairShare)
	for _, sm := range fair.Sessions {
		if sm.Share != 1.0/3 {
			t.Fatalf("fair-share grant %v for %q, want 1/3", sm.Share, sm.ID)
		}
		if sm.Point.HitRate <= 0 {
			t.Fatalf("fair-share session %q starved: %+v", sm.ID, sm.Point)
		}
	}
	greedy := run(ArbGreedy)
	for _, sm := range greedy.Sessions {
		switch sm.AdmitRank {
		case 0:
			if sm.Share != 1 {
				t.Fatalf("greedy first arrival got share %v, want 1", sm.Share)
			}
			if sm.Point.HitRate <= 0 {
				t.Fatalf("greedy hog has no cache hits: %+v", sm.Point)
			}
		default:
			if sm.Share != 0 || sm.Point.HitRate != 0 {
				t.Fatalf("greedy rank-%d session should be cache-less, got share %v hit rate %v",
					sm.AdmitRank, sm.Share, sm.Point.HitRate)
			}
		}
	}
	// Contention ordering: equal partitions cannot beat the over-committed
	// exclusive upper bound, and must beat total starvation of 2/3 of the
	// batch.
	excl := run(ArbExclusive)
	if fair.HitRate > excl.HitRate {
		t.Fatalf("fair-share hit rate %v above exclusive upper bound %v", fair.HitRate, excl.HitRate)
	}
	if fair.HitRate <= greedy.HitRate {
		t.Fatalf("fair-share hit rate %v not above greedy %v", fair.HitRate, greedy.HitRate)
	}
}

// Report coherence: token totals, simulated aggregate throughput, and
// percentile ordering.
func TestReportAggregates(t *testing.T) {
	trained(t)
	reqs := requests(t, 4,
		func(int) sparsity.Scheme { return sparsity.NewDIP(0.5) },
		func(i int) int { return 1 + i%2 })
	e, err := NewEngine(zoo.m, Config{System: sysCfg(), Arb: ArbFairShare, MaxActive: 2, Quantum: 8, Seed: 2}, FixedBatch(reqs))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range reqs {
		want += len(r.Tokens)
	}
	if rep.TotalTokens != want {
		t.Fatalf("TotalTokens %d, want %d", rep.TotalTokens, want)
	}
	if rep.SimTokS <= 0 || rep.Wall.TokS <= 0 || rep.Wall.Seconds <= 0 {
		t.Fatalf("non-positive throughput aggregates: %+v", rep)
	}
	if rep.Workload != "fixed" || rep.Sched != "fcfs" {
		t.Fatalf("report names wrong workload/scheduler: %q/%q", rep.Workload, rep.Sched)
	}
	if rep.SimLatencyP50 > rep.SimLatencyP90 || rep.SimLatencyP90 > rep.SimLatencyP99 {
		t.Fatalf("latency percentiles out of order: %v %v %v", rep.SimLatencyP50, rep.SimLatencyP90, rep.SimLatencyP99)
	}
	if rep.SimLatencyP50 <= 0 {
		t.Fatal("zero simulated latency percentile")
	}
}

func TestEngineRejections(t *testing.T) {
	trained(t)
	good := requests(t, 1,
		func(int) sparsity.Scheme { return sparsity.NewDIP(0.5) },
		func(int) int { return 1 })
	bad := sysCfg()
	bad.Policy = cache.PolicyBelady
	if _, err := NewEngine(zoo.m, Config{System: bad}, FixedBatch(good)); err == nil {
		t.Fatal("Belady eviction must be rejected for serving")
	}
	if _, err := NewEngine(zoo.m, Config{System: sysCfg()}, nil); err == nil {
		t.Fatal("nil workload must be rejected")
	}
	if _, err := NewEngine(zoo.m, Config{System: sysCfg()}, FixedBatch(nil)); err == nil {
		t.Fatal("empty request batch must be rejected")
	}
	if _, err := NewEngine(zoo.m, Config{System: sysCfg()}, FixedBatch([]Request{{ID: "x", Tokens: []int{1}}})); err == nil {
		t.Fatal("nil scheme must be rejected")
	}
	if _, err := NewEngine(zoo.m, Config{System: sysCfg()}, FixedBatch([]Request{
		{ID: "x", Scheme: sparsity.NewDIP(0.5), Tokens: []int{1}, SLO: SLO{DeadlineTicks: -1}},
	})); err == nil {
		t.Fatal("negative deadline must be rejected")
	}
	invalid := sysCfg()
	invalid.Device.FlashBandwidth = 0
	if _, err := NewEngine(zoo.m, Config{System: invalid}, FixedBatch(good)); err == nil {
		t.Fatal("invalid SystemConfig must be rejected")
	}
	e, err := NewEngine(zoo.m, Config{System: sysCfg()}, FixedBatch(good))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("second Run must be rejected")
	}
}

func TestParseArbPolicy(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParseArbPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round-trip %v: got %v err %v", p, got, err)
		}
	}
	if _, err := ParseArbPolicy("belady"); err == nil {
		t.Fatal("unknown policy name must error")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	if got := Percentile(vals, 0.5); got != 2 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(vals, 0.99); got != 4 {
		t.Fatalf("p99 = %v", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	if vals[0] != 4 {
		t.Fatal("Percentile mutated its input")
	}
}
