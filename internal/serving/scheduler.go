package serving

import "fmt"

// QueueEntry is one request waiting for a batch slot.
type QueueEntry struct {
	Req   Request
	Index int // submission index
	// ArriveTick is when the workload released the request.
	ArriveTick int
	// Order is the seeded admission tiebreak: entries arriving on the same
	// tick are ranked by a shuffle drawn from the engine's seeded RNG, and
	// Order increases monotonically across ticks — so sorting by Order alone
	// is seeded FCFS.
	Order int
	// Deadline is the absolute SLO deadline tick (ArriveTick +
	// SLO.DeadlineTicks), or NoDeadline when the request has none.
	Deadline int
	// Sess is non-nil for a preempted session waiting to resume: admission
	// continues its retained stream instead of building a new one. The
	// entry keeps the session's original Order, ArriveTick, and Deadline,
	// so schedulers rank a suspended session exactly as they ranked the
	// fresh request.
	Sess *Session
	// NotBefore is the earliest tick the entry may be (re-)placed — a
	// faulted session's retry backoff. The engine's backfill and preemption
	// scans skip entries still backing off; schedulers never see the field.
	NotBefore int
}

// NoDeadline is the Deadline of a request without an SLO deadline; it sorts
// after every real deadline under EDF.
const NoDeadline = int(^uint(0) >> 1)

// Scheduler orders the admission queue. Whenever a batch slot frees, the
// engine admits the queued entry that Less ranks first. Implementations
// must be total orders over live entries — Order is unique, so ending every
// comparison with it guarantees that (and keeps admission deterministic).
type Scheduler interface {
	// Name identifies the policy (CLI-compatible: see ParseScheduler).
	Name() string
	// Less reports whether a should be admitted before b.
	Less(a, b *QueueEntry) bool
}

// fcfs admits in arrival order with the seeded same-tick shuffle — exactly
// PR 2's seeded admission when every request arrives at tick 0.
type fcfs struct{}

// FCFS returns the first-come-first-served scheduler (the default).
func FCFS() Scheduler { return fcfs{} }

func (fcfs) Name() string               { return "fcfs" }
func (fcfs) Less(a, b *QueueEntry) bool { return a.Order < b.Order }

// priority admits the highest SLO priority first, FCFS within a class.
type priority struct{}

// Priority returns the strict-priority scheduler.
func Priority() Scheduler { return priority{} }

func (priority) Name() string { return "prio" }
func (priority) Less(a, b *QueueEntry) bool {
	if pa, pb := a.Req.SLO.Priority, b.Req.SLO.Priority; pa != pb {
		return pa > pb
	}
	return a.Order < b.Order
}

// edf admits the earliest absolute deadline first; deadline-less requests
// rank last, FCFS among themselves.
type edf struct{}

// EDF returns the earliest-deadline-first scheduler.
func EDF() Scheduler { return edf{} }

func (edf) Name() string { return "edf" }
func (edf) Less(a, b *QueueEntry) bool {
	if a.Deadline != b.Deadline {
		return a.Deadline < b.Deadline
	}
	return a.Order < b.Order
}

// Schedulers lists every built-in scheduler in declaration order.
func Schedulers() []Scheduler { return []Scheduler{FCFS(), Priority(), EDF()} }

// ParseScheduler maps a CLI name to its scheduler.
func ParseScheduler(s string) (Scheduler, error) {
	for _, sched := range Schedulers() {
		if sched.Name() == s {
			return sched, nil
		}
	}
	return nil, fmt.Errorf("serving: unknown scheduler %q (fcfs|prio|edf)", s)
}
