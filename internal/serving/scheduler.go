package serving

import (
	"fmt"
	"time"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Run executes every request to completion under continuous batching and
// returns the aggregate report. The admission order is a seeded permutation
// of the submission order; slots refill the tick a session finishes.
func (e *Engine) Run() (*Report, error) {
	if e.ran {
		return nil, fmt.Errorf("serving: engine already ran")
	}
	e.ran = true
	queue := tensor.NewRNG(e.cfg.Seed).Perm(len(e.reqs))
	active := make([]*Session, 0, e.cfg.MaxActive)
	e.wallStart = time.Now()
	tick, rank := 0, 0
	for len(queue) > 0 || len(active) > 0 {
		for len(active) < e.cfg.MaxActive && len(queue) > 0 {
			sess, err := e.admit(queue[0], rank, tick)
			if err != nil {
				return nil, err
			}
			queue = queue[1:]
			rank++
			active = append(active, sess)
		}
		if e.cfg.Arb == ArbShared {
			e.tickShared(active)
		} else {
			e.tickPartitioned(active)
		}
		tick++
		live := active[:0]
		for _, s := range active {
			if s.stream.Done() {
				e.retire(s, tick)
			} else {
				live = append(live, s)
			}
		}
		active = live
	}
	return e.report(tick, time.Since(e.wallStart)), nil
}

// tickPartitioned advances each active session by up to Quantum tokens.
// Partitioned sessions share no mutable state — each owns its scheme clone,
// decoder, cache, and meter — so the batch fans out over the worker pool
// and per-session results cannot depend on scheduling.
func (e *Engine) tickPartitioned(active []*Session) {
	parallel.For(len(active), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			st := active[i].stream
			for q := 0; q < e.cfg.Quantum && st.Step(); q++ {
			}
		}
	})
}

// tickShared advances the batch in lockstep sub-steps: every sub-step
// computes all sessions' token forwards in parallel — reading the shared
// cache's state as of the previous commit — then applies their buffered
// accesses serially in slot order. The shared cache therefore sees one
// deterministic interleaving for a fixed admission order, independent of
// worker count, and the parallel phase never races the serial writes.
func (e *Engine) tickShared(active []*Session) {
	for q := 0; q < e.cfg.Quantum; q++ {
		parallel.For(len(active), 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				active[i].stream.Step()
			}
		})
		for _, s := range active {
			s.stream.Commit()
		}
	}
}
