package serving

import (
	"fmt"
	"time"

	"repro/internal/eval"
	"repro/internal/parallel"
	"repro/internal/serving/obs"
)

// Run drains the workload to completion under continuous batching and
// returns the aggregate report. Each tick the engine (1) collects the
// workload's arrivals, shuffling same-tick groups with the seeded RNG and
// queueing them — shedding arrivals beyond the admission budget and, under
// sustained pressure with Degrade set, queued optional work — (2) applies
// the fault plan to the running batch in slot order and parks sessions
// displaced by a capacity dip, (3) fills free batch slots with the
// scheduler's picks among entries not still backing off — resuming
// suspended sessions exactly like fresh entries — (4) lets the preemptor
// displace running sessions that queued entries strictly outrank, (5)
// advances every active session by the token quantum, and (6) retires
// drained sessions, reporting them back to the workload (closed-loop
// feedback). Everything runs on the simulated tick clock, so reports are
// bit-identical across runs and worker counts; only the Wall annotation
// varies.
func (e *Engine) Run() (*Report, error) {
	if err := e.Begin(); err != nil {
		return nil, err
	}
	var finished []Finished
	tick := 0
	for !e.w.Done() || len(e.queue) > 0 || len(e.active) > 0 {
		arrivals := e.w.Next(tick, finished)
		finished = finished[:0]
		for _, idx := range e.shuffleArrivals(arrivals) {
			shed, err := e.Inject(idx, tick, e.order)
			if err != nil {
				return nil, err
			}
			if shed {
				finished = append(finished, Finished{Index: idx, ID: e.reqs[idx].ID, Tick: tick})
			} else {
				e.order++
			}
		}
		fin, stepped, err := e.StepTick(tick)
		if err != nil {
			return nil, err
		}
		finished = append(finished, fin...)
		if !stepped {
			// Nothing to decode: an arrival gap, a closed-loop think pause,
			// every queued session backing off after a fault, or a full
			// capacity dip. Fast-forward the simulated clock to the earliest
			// event that can change that — no spinning through sparse gaps.
			next, ok := e.w.NextArrival()
			if ok && next <= tick {
				ok = false // scheduled in the past yet not yielded: no help
			}
			if nt, nok := e.NextEvent(tick); nok && (!ok || nt < next) {
				next, ok = nt, true
			}
			if len(finished) > 0 && (!ok || tick+1 < next) {
				// Terminations (cancel, retry exhaustion, shedding) this tick
				// have not been reported yet; a closed-loop workload may
				// schedule follow-ups once it hears. Deliver them next tick.
				next, ok = tick+1, true
			}
			if !ok {
				if e.w.Done() && len(e.queue) == 0 {
					break // faults drained the last sessions this tick
				}
				return nil, fmt.Errorf("serving: workload %q stalled at tick %d: not done, nothing active, next arrival %d (ok=%v)",
					e.w.Name(), tick, next, ok)
			}
			tick = next
			continue
		}
		tick++
	}
	return e.report(tick, time.Since(e.wallStart)), nil //lint:allow wallclock feeds Report.Wall only; every other report field is tick-clocked
}

// shuffleArrivals applies the seeded same-tick arrival shuffle that makes
// ties deterministic without privileging workload emission order.
func (e *Engine) shuffleArrivals(arrivals []int) []int {
	if len(arrivals) <= 1 {
		return arrivals
	}
	perm := e.rng.Perm(len(arrivals))
	e.shuffle = e.shuffle[:0]
	for _, j := range perm {
		e.shuffle = append(e.shuffle, arrivals[j])
	}
	return e.shuffle
}

// emitFinish records a session's terminal event (no-op with tracing off).
// OK finishes carry the 1-based sub-quantum drain step, the same
// path-identical offset the report's FinishSubStep uses.
func (e *Engine) emitFinish(tick, slot int, sess *Session) {
	if e.obs == nil {
		return
	}
	detail := obs.DetailOK
	sub := sess.finishSub
	switch sess.outcome {
	case OutcomeFailed:
		detail, sub = obs.DetailFailed, 0
	case OutcomeCancelled:
		detail, sub = obs.DetailCancelled, 0
	}
	e.obs.Emit(obs.Event{Tick: tick, SubStep: sub, Slot: slot, Kind: obs.KindFinish, Session: sess.ID, Detail: detail})
}

// obsTickStart feeds the tick-start telemetry (queue depth, per-class SLO
// slack, the step-batch event) and snapshots the active streams' counters
// so obsTickEnd can difference them. With tracing off it is a
// zero-allocation no-op (pinned by TestDisabledObserverAddsNoTickAllocations).
func (e *Engine) obsTickStart(tick int, active []*Session, queued int) (tok int, hits, misses int64) {
	if e.obs == nil {
		return 0, 0, 0
	}
	e.obs.ObserveQueue(tick, queued)
	for _, s := range active {
		st := s.stream.Stats()
		tok += st.Decoded
		hits += st.Hits
		misses += st.Misses
		if s.deadlineTick != NoDeadline {
			e.obs.ObserveSlack(tick, className(s.SLO), s.deadlineTick-tick)
		}
	}
	e.obs.Emit(obs.Event{Tick: tick, Slot: -1, Kind: obs.KindStepBatch, Detail: widthDetail(len(active))})
	return tok, hits, misses
}

// obsTickEnd feeds the executed tick's decode deltas and, under ArbShared,
// records the slot-order commit of the tick's buffered accesses.
func (e *Engine) obsTickEnd(tick int, active []*Session, tokPre int, hitPre, missPre int64) {
	if e.obs == nil {
		return
	}
	var tok int
	var hits, misses int64
	for _, s := range active {
		st := s.stream.Stats()
		tok += st.Decoded
		hits += st.Hits
		misses += st.Misses
	}
	e.obs.ObserveDecode(tick, tok-tokPre, hits-hitPre, misses-missPre)
	if e.cfg.Arb == ArbShared {
		e.obs.Emit(obs.Event{Tick: tick, Slot: -1, Kind: obs.KindCommit, Detail: widthDetail(len(active))})
	}
}

// widthDetail renders a batch width for the event log.
func widthDetail(n int) string { return fmt.Sprintf("width=%d", n) }

// degrade sheds queued optional work under sustained pressure: fresh,
// deadline-less entries (never-admitted best-effort requests) are dropped
// newest-first until the queue dips below the shed budget. Suspended
// sessions are never degraded away — work already invested is kept — and
// deadlined entries are exactly what degradation is making room for.
func (e *Engine) degrade(queue []*QueueEntry, tick int, finished *[]Finished) []*QueueEntry {
	for len(queue) >= e.cfg.ShedQueueBudget {
		drop := -1
		for i, qe := range queue {
			if qe.Sess == nil && qe.Deadline == NoDeadline && (drop < 0 || qe.Order > queue[drop].Order) {
				drop = i
			}
		}
		if drop < 0 {
			break
		}
		qe := queue[drop]
		e.shedArrive[qe.Index], e.shedTick[qe.Index] = qe.ArriveTick, tick
		e.shedCount++
		if e.obs != nil {
			e.obs.Emit(obs.Event{Tick: tick, Slot: -1, Kind: obs.KindDegrade, Session: qe.Req.ID})
		}
		*finished = append(*finished, Finished{Index: qe.Index, ID: qe.Req.ID, Tick: tick})
		queue = append(queue[:drop], queue[drop+1:]...)
	}
	return queue
}

// deadlineOf resolves a request's absolute deadline tick at arrival.
func deadlineOf(arriveTick int, slo SLO) int {
	if slo.DeadlineTicks <= 0 {
		return NoDeadline
	}
	return arriveTick + slo.DeadlineTicks
}

// tickPartitioned advances each active session by up to Quantum tokens.
// Partitioned sessions share no mutable state — each owns its scheme clone,
// decoder, cache, and meter — so the batch fans out over the worker pool
// and per-session results cannot depend on scheduling. A session that
// drains mid-quantum records the 1-based sub-step it drained on: every
// session's q-th step of a tick is sub-step q in all three tick paths, so
// the offset is bit-identical fused or not.
func (e *Engine) tickPartitioned(active []*Session) {
	parallel.For(len(active), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := active[i]
			for q := 1; q <= e.cfg.Quantum; q++ {
				if !s.stream.Step() {
					break
				}
				if s.stream.Done() {
					s.finishSub = q
					break
				}
			}
		}
	})
}

// tickFused advances the active batch by the token quantum through the
// fused multi-RHS decode path: each sub-step collects the unfinished slots
// in slot order and issues one eval.BatchStep, which walks every weight
// matrix once for the whole batch instead of once per session. Under
// ArbShared the buffered accesses are then committed serially in slot order
// — the same deterministic interleaving as tickShared — while partitioned
// sessions apply their accesses to their private caches inside the fused
// step. Either way the per-session outputs, cache traffic, and meters are
// bit-identical to the unfused ticks (enforced by the fuse tests).
func (e *Engine) tickFused(active []*Session) {
	for q := 0; q < e.cfg.Quantum; q++ {
		e.batch = e.batch[:0]
		e.batchSess = e.batchSess[:0]
		for _, s := range active {
			if !s.stream.Done() {
				e.batch = append(e.batch, s.stream)
				e.batchSess = append(e.batchSess, s)
			}
		}
		if len(e.batch) == 0 {
			return
		}
		if len(e.batch) == 1 {
			// A one-session "batch" has nothing to fuse — the multi-RHS
			// gather/scatter would be pure overhead. Both paths are
			// bit-identical (the fuse tests pin it), so degenerate batches
			// take the single-stream step. Common under open-loop workloads
			// whose arrival gaps drain the batch.
			e.batch[0].Step()
		} else {
			eval.BatchStep(e.batch, &e.arena)
		}
		if e.cfg.Arb == ArbShared {
			for _, st := range e.batch {
				st.Commit()
			}
		}
		for _, s := range e.batchSess {
			if s.stream.Done() {
				s.finishSub = q + 1
			}
		}
	}
}

// tickShared advances the batch in lockstep sub-steps: every sub-step
// computes all sessions' token forwards in parallel — reading the shared
// cache's state as of the previous commit — then applies their buffered
// accesses serially in slot order. The shared cache therefore sees one
// deterministic interleaving for a fixed admission order, independent of
// worker count, and the parallel phase never races the serial writes.
func (e *Engine) tickShared(active []*Session) {
	for q := 0; q < e.cfg.Quantum; q++ {
		parallel.For(len(active), 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				// Each worker owns a disjoint session range, so recording
				// the finish sub-step here cannot race.
				s := active[i]
				if s.stream.Step() && s.stream.Done() {
					s.finishSub = q + 1
				}
			}
		})
		for _, s := range active {
			s.stream.Commit()
		}
	}
}
