package serving

import (
	"fmt"
	"time"

	"repro/internal/eval"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Run drains the workload to completion under continuous batching and
// returns the aggregate report. Each tick the engine (1) collects the
// workload's arrivals, shuffling same-tick groups with the seeded RNG and
// queueing them, (2) fills free batch slots with the scheduler's picks —
// resuming suspended sessions exactly like fresh entries — (3) lets the
// preemptor displace running sessions that queued entries strictly
// outrank, (4) advances every active session by the token quantum, and
// (5) retires drained sessions, reporting them back to the workload
// (closed-loop feedback). Everything runs on the simulated tick clock, so
// reports are bit-identical across runs and worker counts; only the Wall
// annotation varies.
func (e *Engine) Run() (*Report, error) {
	if e.ran {
		return nil, fmt.Errorf("serving: engine already ran")
	}
	e.ran = true
	rng := tensor.NewRNG(e.cfg.Seed)
	var queue []*QueueEntry
	var finished []Finished
	active := make([]*Session, 0, e.cfg.MaxActive)
	e.wallStart = time.Now()
	tick, rank, order := 0, 0, 0
	for !e.w.Done() || len(queue) > 0 || len(active) > 0 {
		arrivals := e.w.Next(tick, finished)
		finished = finished[:0]
		if len(arrivals) > 1 {
			perm := rng.Perm(len(arrivals))
			e.shuffle = e.shuffle[:0]
			for _, j := range perm {
				e.shuffle = append(e.shuffle, arrivals[j])
			}
			arrivals = e.shuffle
		}
		for _, idx := range arrivals {
			if idx < 0 || idx >= len(e.reqs) {
				return nil, fmt.Errorf("serving: workload %q yielded request index %d outside its %d-request universe",
					e.w.Name(), idx, len(e.reqs))
			}
			if e.arrived[idx] {
				return nil, fmt.Errorf("serving: workload %q yielded request %d (%q) twice", e.w.Name(), idx, e.reqs[idx].ID)
			}
			e.arrived[idx] = true
			queue = append(queue, &QueueEntry{
				Req: e.reqs[idx], Index: idx, ArriveTick: tick, Order: order,
				Deadline: deadlineOf(tick, e.reqs[idx].SLO),
			})
			order++
		}
		for len(active) < e.cfg.MaxActive && len(queue) > 0 {
			best := 0
			for i := 1; i < len(queue); i++ {
				if e.sched.Less(queue[i], queue[best]) {
					best = i
				}
			}
			qe := queue[best]
			queue = append(queue[:best], queue[best+1:]...)
			sess, err := e.place(qe, &rank, tick)
			if err != nil {
				return nil, err
			}
			active = append(active, sess)
		}
		// Preemption: with the batch full and entries still queued, let the
		// preemptor pull rank. Each round suspends the named victim in
		// place (the slot keeps its position, so shared-cache commit order
		// stays the slot order) and admits the scheduler-best entry among
		// those able to preempt; the loop re-scans because a suspended
		// session re-enters the queue and may itself outrank a third
		// session. Strict preemptors guarantee termination: every takeover
		// strictly lowers the displaced slot's pressure rank.
		for len(queue) > 0 {
			slot := e.pre.Victim(active)
			if slot < 0 {
				break
			}
			qi := -1
			for i, qe := range queue {
				if e.pre.Outranks(qe, active[slot]) && (qi < 0 || e.sched.Less(queue[i], queue[qi])) {
					qi = i
				}
			}
			if qi < 0 {
				break
			}
			qe := queue[qi]
			queue = append(queue[:qi], queue[qi+1:]...)
			queue = append(queue, e.suspend(active[slot], tick))
			sess, err := e.place(qe, &rank, tick)
			if err != nil {
				return nil, err
			}
			active[slot] = sess
		}
		if len(active) == 0 {
			// Nothing to decode: an arrival gap in an open-loop trace or a
			// closed-loop think pause. Fast-forward the simulated clock to
			// the next scheduled arrival — no spinning through sparse gaps.
			next, ok := e.w.NextArrival()
			if !ok || next <= tick {
				// Nothing scheduled (or scheduled in the past yet not
				// yielded): with an empty batch no completion can ever
				// unblock the workload, so this is a stall, not a gap.
				return nil, fmt.Errorf("serving: workload %q stalled at tick %d: not done, nothing active, next arrival %d (ok=%v)",
					e.w.Name(), tick, next, ok)
			}
			tick = next
			continue
		}
		switch {
		case !e.cfg.NoFuse:
			e.tickFused(active)
		case e.cfg.Arb == ArbShared:
			e.tickShared(active)
		default:
			e.tickPartitioned(active)
		}
		tick++
		live := active[:0]
		for _, s := range active {
			if s.stream.Done() {
				e.retire(s, tick)
				finished = append(finished, Finished{Index: s.Index, ID: s.ID, Tick: tick})
			} else {
				live = append(live, s)
			}
		}
		active = live
	}
	return e.report(tick, time.Since(e.wallStart)), nil
}

// deadlineOf resolves a request's absolute deadline tick at arrival.
func deadlineOf(arriveTick int, slo SLO) int {
	if slo.DeadlineTicks <= 0 {
		return NoDeadline
	}
	return arriveTick + slo.DeadlineTicks
}

// tickPartitioned advances each active session by up to Quantum tokens.
// Partitioned sessions share no mutable state — each owns its scheme clone,
// decoder, cache, and meter — so the batch fans out over the worker pool
// and per-session results cannot depend on scheduling. A session that
// drains mid-quantum records the 1-based sub-step it drained on: every
// session's q-th step of a tick is sub-step q in all three tick paths, so
// the offset is bit-identical fused or not.
func (e *Engine) tickPartitioned(active []*Session) {
	parallel.For(len(active), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := active[i]
			for q := 1; q <= e.cfg.Quantum; q++ {
				if !s.stream.Step() {
					break
				}
				if s.stream.Done() {
					s.finishSub = q
					break
				}
			}
		}
	})
}

// tickFused advances the active batch by the token quantum through the
// fused multi-RHS decode path: each sub-step collects the unfinished slots
// in slot order and issues one eval.BatchStep, which walks every weight
// matrix once for the whole batch instead of once per session. Under
// ArbShared the buffered accesses are then committed serially in slot order
// — the same deterministic interleaving as tickShared — while partitioned
// sessions apply their accesses to their private caches inside the fused
// step. Either way the per-session outputs, cache traffic, and meters are
// bit-identical to the unfused ticks (enforced by the fuse tests).
func (e *Engine) tickFused(active []*Session) {
	for q := 0; q < e.cfg.Quantum; q++ {
		e.batch = e.batch[:0]
		e.batchSess = e.batchSess[:0]
		for _, s := range active {
			if !s.stream.Done() {
				e.batch = append(e.batch, s.stream)
				e.batchSess = append(e.batchSess, s)
			}
		}
		if len(e.batch) == 0 {
			return
		}
		if len(e.batch) == 1 {
			// A one-session "batch" has nothing to fuse — the multi-RHS
			// gather/scatter would be pure overhead. Both paths are
			// bit-identical (the fuse tests pin it), so degenerate batches
			// take the single-stream step. Common under open-loop workloads
			// whose arrival gaps drain the batch.
			e.batch[0].Step()
		} else {
			eval.BatchStep(e.batch, &e.arena)
		}
		if e.cfg.Arb == ArbShared {
			for _, st := range e.batch {
				st.Commit()
			}
		}
		for _, s := range e.batchSess {
			if s.stream.Done() {
				s.finishSub = q + 1
			}
		}
	}
}

// tickShared advances the batch in lockstep sub-steps: every sub-step
// computes all sessions' token forwards in parallel — reading the shared
// cache's state as of the previous commit — then applies their buffered
// accesses serially in slot order. The shared cache therefore sees one
// deterministic interleaving for a fixed admission order, independent of
// worker count, and the parallel phase never races the serial writes.
func (e *Engine) tickShared(active []*Session) {
	for q := 0; q < e.cfg.Quantum; q++ {
		parallel.For(len(active), 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				// Each worker owns a disjoint session range, so recording
				// the finish sub-step here cannot race.
				s := active[i]
				if s.stream.Step() && s.stream.Done() {
					s.finishSub = q + 1
				}
			}
		})
		for _, s := range active {
			s.stream.Commit()
		}
	}
}
