package serving

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sparsity"
)

// TraceEntry is one record of a serving trace: a request's arrival tick,
// its stream shape (an offset and length into the binder's token corpus),
// and its SLO class. Traces carry no model state — a TraceBinder
// materializes entries into Requests — so the same file replays against any
// model, corpus, or scheme table.
type TraceEntry struct {
	ID   string `json:"id"`
	Tick int    `json:"tick"`
	// Tokens is the stream length; Start is the offset into the binder's
	// corpus (entries may overlap).
	Tokens int `json:"tokens"`
	Start  int `json:"start,omitempty"`
	// Class/Priority/DeadlineTicks form the request's SLO.
	Class         string `json:"class,omitempty"`
	Priority      int    `json:"priority,omitempty"`
	DeadlineTicks int    `json:"deadline_ticks,omitempty"`
	// Scheme names the sparsity scheme in the binder's table ("" = default).
	Scheme string `json:"scheme,omitempty"`
}

// traceColumns is the CSV header, in order; the first three are required.
var traceColumns = []string{"id", "tick", "tokens", "start", "class", "priority", "deadline_ticks", "scheme"}

// ParseTrace reads a trace from JSON (an array of entries) or CSV (header
// row "id,tick,tokens[,start,class,priority,deadline_ticks,scheme]"),
// sniffing the format from the first non-space byte. Arrival ticks must be
// non-negative and nondecreasing; a violation is a hard error naming the
// offending line (CSV) or entry (JSON), not a silent re-sort.
func ParseTrace(r io.Reader) ([]TraceEntry, error) {
	br := bufio.NewReader(r)
	for {
		b, err := br.Peek(1)
		if err != nil {
			return nil, fmt.Errorf("serving: empty trace: %w", err)
		}
		if b[0] == ' ' || b[0] == '\t' || b[0] == '\n' || b[0] == '\r' {
			br.ReadByte()
			continue
		}
		if b[0] == '[' {
			return parseTraceJSON(br)
		}
		return parseTraceCSV(br)
	}
}

func parseTraceJSON(r io.Reader) ([]TraceEntry, error) {
	var entries []TraceEntry
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&entries); err != nil {
		return nil, fmt.Errorf("serving: JSON trace: %w", err)
	}
	prev := 0
	for i, e := range entries {
		if err := checkTick(e, prev, fmt.Sprintf("entry %d", i+1)); err != nil {
			return nil, err
		}
		prev = e.Tick
	}
	return entries, nil
}

// checkTick rejects a trace record whose arrival tick is negative or runs
// backwards. A file is required to be arrival-sorted: silently reordering
// (or replaying as-is) would let the workload's NextArrival claim a tick
// already in the past, which the engine reports as a stall — a much less
// actionable error than the offending line.
func checkTick(e TraceEntry, prev int, at string) error {
	if e.Tick < 0 {
		return fmt.Errorf("serving: trace %s (id %q): negative arrival tick %d", at, e.ID, e.Tick)
	}
	if e.Tick < prev {
		return fmt.Errorf("serving: trace %s (id %q): arrival tick %d before the preceding entry's %d — traces must be sorted by tick",
			at, e.ID, e.Tick, prev)
	}
	return nil
}

func parseTraceCSV(r io.Reader) ([]TraceEntry, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("serving: CSV trace header: %w", err)
	}
	col := make(map[string]int, len(header))
	for i, h := range header {
		col[strings.TrimSpace(h)] = i
	}
	for _, req := range traceColumns[:3] {
		if _, ok := col[req]; !ok {
			return nil, fmt.Errorf("serving: CSV trace missing required column %q (header %v)", req, header)
		}
	}
	for name := range col {
		known := false
		for _, c := range traceColumns {
			known = known || c == name
		}
		if !known {
			return nil, fmt.Errorf("serving: CSV trace has unknown column %q", name)
		}
	}
	atoi := func(rec []string, name string, line int) (int, error) {
		i, ok := col[name]
		if !ok || i >= len(rec) || rec[i] == "" {
			return 0, nil
		}
		v, err := strconv.Atoi(strings.TrimSpace(rec[i]))
		if err != nil {
			return 0, fmt.Errorf("serving: CSV trace line %d: column %q: %w", line, name, err)
		}
		return v, nil
	}
	str := func(rec []string, name string) string {
		if i, ok := col[name]; ok && i < len(rec) {
			return strings.TrimSpace(rec[i])
		}
		return ""
	}
	var entries []TraceEntry
	prev := 0
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return entries, nil
		}
		if err != nil {
			return nil, fmt.Errorf("serving: CSV trace line %d: %w", line, err)
		}
		e := TraceEntry{ID: str(rec, "id"), Class: str(rec, "class"), Scheme: str(rec, "scheme")}
		for _, f := range []struct {
			name string
			dst  *int
		}{{"tick", &e.Tick}, {"tokens", &e.Tokens}, {"start", &e.Start},
			{"priority", &e.Priority}, {"deadline_ticks", &e.DeadlineTicks}} {
			if *f.dst, err = atoi(rec, f.name, line); err != nil {
				return nil, err
			}
		}
		if err := checkTick(e, prev, fmt.Sprintf("line %d", line)); err != nil {
			return nil, err
		}
		prev = e.Tick
		entries = append(entries, e)
	}
}

// TraceBinder materializes TraceEntry records into Requests.
type TraceBinder struct {
	// Corpus is the token pool entry streams are carved from:
	// Corpus[Start : Start+Tokens].
	Corpus []int
	// Scheme returns a scheme instance for an entry's scheme name (the empty
	// name selects the binder's default). The engine clones schemes at
	// admission, so returning a shared instance is fine.
	Scheme func(name string) (sparsity.Scheme, error)
}

// TraceWorkload binds parsed entries and replays them in tick order (stable
// within a tick, preserving file order). Submission indices follow the
// replay order.
func TraceWorkload(entries []TraceEntry, b TraceBinder) (Workload, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("serving: trace has no entries")
	}
	if b.Scheme == nil {
		return nil, fmt.Errorf("serving: TraceBinder.Scheme is required")
	}
	sorted := append([]TraceEntry(nil), entries...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Tick < sorted[j].Tick })
	reqs := make([]Request, len(sorted))
	ticks := make([]int, len(sorted))
	for i, e := range sorted {
		if e.Tick < 0 {
			return nil, fmt.Errorf("serving: trace entry %q: negative tick %d", e.ID, e.Tick)
		}
		if e.Tokens <= 0 {
			return nil, fmt.Errorf("serving: trace entry %q: tokens must be positive, got %d", e.ID, e.Tokens)
		}
		if e.Start < 0 || e.Start+e.Tokens > len(b.Corpus) {
			return nil, fmt.Errorf("serving: trace entry %q: tokens [%d:%d) outside corpus of %d",
				e.ID, e.Start, e.Start+e.Tokens, len(b.Corpus))
		}
		scheme, err := b.Scheme(e.Scheme)
		if err != nil {
			return nil, fmt.Errorf("serving: trace entry %q: %w", e.ID, err)
		}
		id := e.ID
		if id == "" {
			id = fmt.Sprintf("t%03d", i)
		}
		reqs[i] = Request{
			ID:     id,
			Scheme: scheme,
			Tokens: b.Corpus[e.Start : e.Start+e.Tokens],
			SLO:    SLO{Class: e.Class, Priority: e.Priority, DeadlineTicks: e.DeadlineTicks},
		}
		ticks[i] = e.Tick
	}
	return &traceWL{reqs: reqs, ticks: ticks}, nil
}

// traceWL replays a bound trace; identical mechanics to poisson, with
// arrival ticks read from the file instead of drawn from an RNG.
type traceWL struct {
	reqs   []Request
	ticks  []int
	cursor int
}

func (w *traceWL) Name() string        { return "trace" }
func (w *traceWL) Requests() []Request { return w.reqs }
func (w *traceWL) Done() bool          { return w.cursor == len(w.reqs) }

func (w *traceWL) NextArrival() (int, bool) {
	if w.cursor == len(w.ticks) {
		return 0, false
	}
	return w.ticks[w.cursor], true
}

func (w *traceWL) Next(tick int, _ []Finished) []int {
	var out []int
	for w.cursor < len(w.ticks) && w.ticks[w.cursor] <= tick {
		out = append(out, w.cursor)
		w.cursor++
	}
	return out
}
