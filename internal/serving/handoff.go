package serving

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/serving/obs"
	"repro/internal/tensor"
)

// This file is the engine's stepped drive surface: the same tick loop Run
// executes, decomposed so an external clock — internal/cluster's shared
// cluster tick — can drive many engines in lockstep. Begin/Inject/StepTick/
// NextEvent/Finalize partition Run exactly (Run is a thin wrapper over
// them), and ExtractQueue/Evacuate/Accept move queued or suspended sessions
// between engines for drain and failover, carrying private cache state
// through the eval.Stream Release/Regrant hooks.

// Begin arms the engine for stepped driving: it claims the single run,
// seeds the arrival-shuffle RNG, and starts the wall clock. Run calls it
// internally; external drivers call it once before the first Inject or
// StepTick.
func (e *Engine) Begin() error {
	if e.ran {
		return fmt.Errorf("serving: engine already ran")
	}
	e.ran = true
	e.rng = tensor.NewRNG(e.cfg.Seed)
	e.active = make([]*Session, 0, e.cfg.MaxActive)
	e.wallStart = time.Now() //lint:allow wallclock Wall annotation origin; the run itself advances only on simulated ticks
	return nil
}

// Inject delivers one workload arrival to the admission queue at the given
// tick. The order stamp is the caller's monotone arrival counter — Run owns
// its own; a cluster passes one global counter so FCFS order stays total
// across nodes — and is consumed only when the arrival is queued. Inject
// reports shed=true when admission control drops the arrival at the door
// (the caller reports it back to the workload as finished); the engine has
// already done the shed accounting and event emission either way.
func (e *Engine) Inject(idx, tick, order int) (shed bool, err error) {
	if !e.ran {
		return false, fmt.Errorf("serving: Inject before Begin")
	}
	if idx < 0 || idx >= len(e.reqs) {
		return false, fmt.Errorf("serving: workload %q yielded request index %d outside its %d-request universe",
			e.w.Name(), idx, len(e.reqs))
	}
	if e.arrived[idx] {
		return false, fmt.Errorf("serving: workload %q yielded request %d (%q) twice", e.w.Name(), idx, e.reqs[idx].ID)
	}
	e.arrived[idx] = true
	if e.obs != nil {
		e.obs.Emit(obs.Event{Tick: tick, Slot: -1, Kind: obs.KindArrive,
			Session: e.reqs[idx].ID, Detail: className(e.reqs[idx].SLO)})
	}
	if e.cfg.ShedQueueBudget > 0 && len(e.queue) >= e.cfg.ShedQueueBudget {
		// Admission control: the queue is at budget, so the arrival
		// is shed outright — it never holds a slot, never decodes,
		// and reports back to the workload as finished next tick.
		e.shedArrive[idx], e.shedTick[idx] = tick, tick
		e.shedCount++
		if e.obs != nil {
			e.obs.Emit(obs.Event{Tick: tick, Slot: -1, Kind: obs.KindShed, Session: e.reqs[idx].ID})
		}
		return true, nil
	}
	e.queue = append(e.queue, &QueueEntry{
		Req: e.reqs[idx], Index: idx, ArriveTick: tick, Order: order,
		Deadline: deadlineOf(tick, e.reqs[idx].SLO),
	})
	return false, nil
}

// StepTick executes one engine tick after the tick's arrivals have been
// injected: degradation under sustained pressure, the fault plan in slot
// order, backfill, preemption, and — when anything is active — one decode
// quantum with retirements stamped at tick+1. It returns the sessions that
// terminated this tick (sheds via Inject excluded; the caller already has
// those) and stepped=false when nothing decoded, in which case the caller
// decides how far to fast-forward (see NextEvent). The returned slice is
// scratch reused by the next call.
func (e *Engine) StepTick(tick int) (fin []Finished, stepped bool, err error) {
	if !e.ran {
		return nil, false, fmt.Errorf("serving: StepTick before Begin")
	}
	e.fin = e.fin[:0]
	if e.cfg.Degrade {
		if len(e.queue) >= e.cfg.ShedQueueBudget {
			e.pressure++
		} else {
			e.pressure = 0
		}
		if e.pressure >= e.cfg.DegradeTicks {
			e.queue = e.degrade(e.queue, tick, &e.fin)
		}
	}
	// Fault application, in slot order on the batch as of tick start, so
	// decisions are pure functions of (seed, tick, slot) and the chaos
	// schedule commutes with worker count and decode-path choice.
	offline := 0
	if e.cfg.Faults != nil {
		if offline = e.cfg.Faults.Offline(tick); offline < 0 {
			offline = 0
		}
		if offline > e.cfg.MaxActive {
			offline = e.cfg.MaxActive
		}
		if offline > 0 && (len(e.active) > 0 || len(e.queue) > 0) {
			e.dipSlotTicks += offline
		}
		live := e.active[:0]
		for slot, s := range e.active {
			switch {
			case e.cfg.Faults.Cancel(tick, slot):
				e.cancels++
				if e.obs != nil {
					e.obs.Emit(obs.Event{Tick: tick, Slot: slot, Kind: obs.KindFault, Session: s.ID, Detail: obs.DetailCancel})
				}
				e.finish(s, tick, OutcomeCancelled)
				e.emitFinish(tick, slot, s)
				e.fin = append(e.fin, Finished{Index: s.Index, ID: s.ID, Tick: tick})
			case e.cfg.Faults.Revoke(tick, slot) && e.cfg.Arb != ArbShared:
				// An eviction storm takes the session's grant (or greedy
				// claim) and the decode state built on it; under ArbShared
				// there is no per-session grant to revoke.
				e.revokes++
				if e.obs != nil {
					e.obs.Emit(obs.Event{Tick: tick, Slot: slot, Kind: obs.KindFault, Session: s.ID, Detail: obs.DetailRevoke})
				}
				if qe := e.faultSuspend(s, tick, slot, true); qe != nil {
					e.queue = append(e.queue, qe)
				} else {
					e.failed++
					e.finish(s, tick, OutcomeFailed)
					e.emitFinish(tick, slot, s)
					e.fin = append(e.fin, Finished{Index: s.Index, ID: s.ID, Tick: tick})
				}
			case e.cfg.Faults.StepFault(tick, slot):
				e.stepFaults++
				if e.obs != nil {
					e.obs.Emit(obs.Event{Tick: tick, Slot: slot, Kind: obs.KindFault, Session: s.ID, Detail: obs.DetailStep})
				}
				if qe := e.faultSuspend(s, tick, slot, false); qe != nil {
					e.queue = append(e.queue, qe)
				} else {
					e.failed++
					e.finish(s, tick, OutcomeFailed)
					e.emitFinish(tick, slot, s)
					e.fin = append(e.fin, Finished{Index: s.Index, ID: s.ID, Tick: tick})
				}
			default:
				live = append(live, s)
			}
		}
		e.active = live
		// A capacity dip takes the highest-numbered slots offline;
		// displaced sessions park (stream retained) until capacity
		// returns or another slot frees.
		for len(e.active) > e.cfg.MaxActive-offline {
			last := len(e.active) - 1
			e.queue = append(e.queue, e.dipSuspend(e.active[last], tick, last))
			e.active = e.active[:last]
		}
	}
	for len(e.active) < e.cfg.MaxActive-offline {
		best := -1
		for i := range e.queue {
			if e.queue[i].NotBefore > tick {
				continue // still backing off after a fault
			}
			if best < 0 || e.sched.Less(e.queue[i], e.queue[best]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		qe := e.queue[best]
		e.queue = append(e.queue[:best], e.queue[best+1:]...)
		sess, err := e.place(qe, &e.rank, tick, len(e.active))
		if err != nil {
			return nil, false, err
		}
		e.active = append(e.active, sess)
	}
	// Preemption: with the batch full and entries still queued, let the
	// preemptor pull rank. Each round suspends the named victim in
	// place (the slot keeps its position, so shared-cache commit order
	// stays the slot order) and admits the scheduler-best entry among
	// those able to preempt; the loop re-scans because a suspended
	// session re-enters the queue and may itself outrank a third
	// session. Strict preemptors guarantee termination: every takeover
	// strictly lowers the displaced slot's pressure rank. Entries still
	// backing off cannot preempt — their backoff gates placement however
	// the slot would be obtained.
	for len(e.queue) > 0 && len(e.active) > 0 {
		slot := e.pre.Victim(e.active)
		if slot < 0 {
			break
		}
		qi := -1
		for i, qe := range e.queue {
			if qe.NotBefore > tick {
				continue
			}
			if e.pre.Outranks(qe, e.active[slot]) && (qi < 0 || e.sched.Less(e.queue[i], e.queue[qi])) {
				qi = i
			}
		}
		if qi < 0 {
			break
		}
		qe := e.queue[qi]
		e.queue = append(e.queue[:qi], e.queue[qi+1:]...)
		e.queue = append(e.queue, e.suspend(e.active[slot], tick, slot))
		sess, err := e.place(qe, &e.rank, tick, slot)
		if err != nil {
			return nil, false, err
		}
		e.active[slot] = sess
	}
	if len(e.active) == 0 {
		return e.fin, false, nil
	}
	// Telemetry brackets the decode switch from the serial loop: the
	// parallel tick paths themselves never touch the recorder, so the
	// event stream and tracker feed are identical for any worker count
	// and either decode path.
	tokPre, hitPre, missPre := e.obsTickStart(tick, e.active, len(e.queue))
	switch {
	case !e.cfg.NoFuse:
		e.tickFused(e.active)
	case e.cfg.Arb == ArbShared:
		e.tickShared(e.active)
	default:
		e.tickPartitioned(e.active)
	}
	e.obsTickEnd(tick, e.active, tokPre, hitPre, missPre)
	post := tick + 1
	live := e.active[:0]
	for slot, s := range e.active {
		if s.stream.Done() {
			e.retire(s, post)
			if e.obs != nil {
				e.emitFinish(post, slot, s)
				e.obs.ObserveGood(post, s.stream.Pos())
			}
			e.fin = append(e.fin, Finished{Index: s.Index, ID: s.ID, Tick: post})
		} else {
			live = append(live, s)
		}
	}
	e.active = live
	return e.fin, true, nil
}

// NextEvent reports the earliest future tick at which this engine's queue
// can change state on its own: the soonest post-backoff eligibility, or
// tick+1 when an eligible entry is parked behind a capacity dip. ok=false
// means the queue holds nothing that a clock advance alone would unstick
// (the engine then waits on arrivals or migrations).
func (e *Engine) NextEvent(tick int) (next int, ok bool) {
	for _, qe := range e.queue {
		switch {
		case qe.NotBefore > tick:
			if !ok || qe.NotBefore < next {
				next, ok = qe.NotBefore, true
			}
		default:
			// Eligible but unplaced: only a dip can cause that; step
			// one tick and re-check capacity.
			if !ok || tick+1 < next {
				next, ok = tick+1, true
			}
		}
	}
	return next, ok
}

// Busy reports whether the engine still holds queued or active sessions.
func (e *Engine) Busy() bool { return len(e.queue) > 0 || len(e.active) > 0 }

// QueueDepth is the current admission-queue length (router load signal).
func (e *Engine) QueueDepth() int { return len(e.queue) }

// ActiveCount is the number of occupied batch slots (router load signal).
func (e *Engine) ActiveCount() int { return len(e.active) }

// Slots is the configured batch width.
func (e *Engine) Slots() int { return e.cfg.MaxActive }

// Finalize closes a stepped run at the given tick count and builds the
// report, exactly as Run does when the workload drains.
func (e *Engine) Finalize(ticks int) *Report {
	return e.report(ticks, time.Since(e.wallStart)) //lint:allow wallclock feeds Report.Wall only; every other report field is tick-clocked
}

// Migrant is a session in flight between engines: the queue entry (fresh,
// or suspended with its live stream) plus any private cache the stream
// held, released on the source and re-granted verbatim on the target —
// the simulated analogue of shipping KV/cache state with the session.
// Shared-arbitration sessions never carry a cache; they re-attach to the
// target's shared cache. Fair/greedy sessions re-acquire a grant from the
// target's pool at placement, and a revoked exclusive session migrates
// stateless and is re-granted a full budget on resume.
type Migrant struct {
	Entry *QueueEntry
	Cache *cache.ModelCache
}

// extract detaches one queue entry from this engine for migration. A
// suspended session logs a KindSuspend/DetailMigrate event, releases its
// claim and cache (carrying a private cache with it), and is struck from
// this engine's session table so exactly one node reports it.
func (e *Engine) extract(qe *QueueEntry, tick int) *Migrant {
	mig := &Migrant{Entry: qe}
	if sess := qe.Sess; sess != nil {
		if e.obs != nil {
			e.obs.Emit(obs.Event{Tick: tick, Slot: -1, Kind: obs.KindSuspend, Session: sess.ID, Detail: obs.DetailMigrate})
		}
		e.releaseClaim(sess)
		if mc := sess.stream.Cache(); mc != nil {
			sess.stream.Release()
			if mc != e.shared {
				mig.Cache = mc
			}
		}
		e.sessions[sess.Index] = nil
	}
	// The request no longer lives on this engine: clear the duplicate-
	// arrival guard so a later failover can migrate it back (a node that
	// crashed, recovered, and rejoined may legitimately re-host a request
	// it held before the crash).
	e.arrived[qe.Index] = false
	return mig
}

// ExtractQueue removes every queued entry — fresh and suspended — in queue
// order for placement elsewhere. Used by administrative drain: the node
// stops holding waiting work but keeps decoding its active sessions to
// completion.
func (e *Engine) ExtractQueue(tick int) []*Migrant {
	if len(e.queue) == 0 {
		return nil
	}
	migs := make([]*Migrant, 0, len(e.queue))
	for _, qe := range e.queue {
		migs = append(migs, e.extract(qe, tick))
	}
	e.queue = e.queue[:0]
	return migs
}

// Evacuate fails the node: every active session is parked in slot order
// through the capacity-dip suspension machinery (stream retained, grant
// released per policy), then the whole queue — the parked sessions
// included — is extracted for failover placement on surviving nodes.
func (e *Engine) Evacuate(tick int) []*Migrant {
	if n := len(e.active); n > 0 {
		e.dipSlotTicks += n
	}
	for len(e.active) > 0 {
		last := len(e.active) - 1
		e.queue = append(e.queue, e.dipSuspend(e.active[last], tick, last))
		e.active = e.active[:last]
	}
	return e.ExtractQueue(tick)
}

// Accept adopts a migrant into this engine's queue. Suspended sessions are
// re-registered under their original submission index (so reports stay
// keyed by the workload universe), re-granted their carried cache or this
// engine's shared cache, and resume through the ordinary backfill path with
// their suspension cause intact. Fresh entries keep their arrival stamp,
// order, and deadline — their arrival was already admitted and logged on
// the source, so migration bypasses this node's shed budget.
func (e *Engine) Accept(mig *Migrant, tick int) error {
	if !e.ran {
		return fmt.Errorf("serving: Accept before Begin")
	}
	qe := mig.Entry
	if qe == nil {
		return fmt.Errorf("serving: Accept of empty migrant")
	}
	if qe.Index < 0 || qe.Index >= len(e.reqs) {
		return fmt.Errorf("serving: migrant %q index %d outside this engine's %d-request universe",
			qe.Req.ID, qe.Index, len(e.reqs))
	}
	if sess := qe.Sess; sess != nil {
		if e.sessions[qe.Index] != nil {
			return fmt.Errorf("serving: migrant %q collides with a live session at index %d", qe.Req.ID, qe.Index)
		}
		if sess.stream.Deferred() != (e.cfg.Arb == ArbShared) {
			return fmt.Errorf("serving: session %q cannot migrate between shared and partitioned arbitration", qe.Req.ID)
		}
		switch {
		case mig.Cache != nil:
			sess.stream.Regrant(mig.Cache)
		case e.cfg.Arb == ArbShared:
			sess.stream.Regrant(e.shared)
		case e.cfg.Arb == ArbExclusive:
			// No state arrived (the grant was revoked before migration):
			// placement issues a fresh full-budget grant.
			sess.needGrant = true
		}
		e.arrived[qe.Index] = true
		e.sessions[qe.Index] = sess
	} else if e.arrived[qe.Index] {
		return fmt.Errorf("serving: migrant %q duplicates request index %d", qe.Req.ID, qe.Index)
	} else {
		e.arrived[qe.Index] = true
	}
	e.queue = append(e.queue, qe)
	return nil
}
