package serving

import (
	"testing"

	"repro/internal/sparsity"
)

// The acceptance scenario on an open-loop workload: Poisson arrivals of
// short deadlined interactive requests interleaved with long best-effort
// batch streams through one slot. Admission-only EDF leaves interactive
// arrivals stuck behind whichever batch stream holds the slot, so some
// deadlines miss; DeadlinePreempt at the same seed strictly improves the
// deadlined class's attainment.
func TestDeadlinePreemptImprovesPoissonAttainment(t *testing.T) {
	trained(t)
	run := func(pre Preemptor) *Report {
		reqs := make([]Request, 6)
		for i := range reqs {
			if i%2 == 0 {
				reqs[i] = Request{
					ID: string(rune('a' + i)), Scheme: sparsity.NewDIP(0.5),
					Tokens: streamFor(t, i, 1),
					SLO:    SLO{Class: "interactive", Priority: 2, DeadlineTicks: 8},
				}
			} else {
				reqs[i] = Request{
					ID: string(rune('a' + i)), Scheme: sparsity.NewDIP(0.5),
					Tokens: streamFor(t, i, 3),
					SLO:    SLO{Class: "batch"},
				}
			}
		}
		w, err := PoissonArrivals(reqs, 0.1, 21)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(zoo.m, Config{
			System: sysCfg(), Arb: ArbFairShare, Sched: EDF(), Preempt: pre,
			MaxActive: 1, Quantum: 8, Seed: 2,
		}, w)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base, pre := run(NoPreempt()), run(DeadlinePreempt())
	attain := func(r *Report) float64 {
		for _, cm := range r.Classes {
			if cm.Class == "interactive" {
				return cm.AttainRate
			}
		}
		t.Fatalf("no interactive class in %+v", r.Classes)
		return 0
	}
	if a := attain(base); a >= 1 {
		t.Fatalf("scenario broken: admission-only EDF should miss deadlines, attained %v", a)
	}
	if ab, ap := attain(base), attain(pre); ap <= ab {
		t.Fatalf("DeadlinePreempt did not strictly improve the deadlined class: %v vs %v", ap, ab)
	}
	if pre.Preemptions == 0 {
		t.Fatalf("no preemptions recorded: %+v", pre)
	}
	// Every stream still decodes to completion, preempted or not.
	for _, sm := range pre.Sessions {
		if sm.Tokens == 0 || sm.FinishTick == 0 {
			t.Fatalf("session lost under preemption: %+v", sm)
		}
	}
}
