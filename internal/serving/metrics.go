package serving

import (
	"sort"
	"time"

	"repro/internal/eval"
)

// SessionMetrics is one finished session's record.
type SessionMetrics struct {
	ID    string
	Index int
	// Point carries the session's KPIs: perplexity, measured density,
	// simulated tok/s and latency, and this session's cache hit rate.
	Point  eval.Point
	Tokens int
	// Share is the granted cache-budget fraction.
	Share     float64
	AdmitRank int
	// AdmitTick/FinishTick are scheduler-time bounds (deterministic).
	AdmitTick, FinishTick int
	// WallQueue/WallRun are wall-clock queue wait and run time (not
	// deterministic; excluded from the determinism contract).
	WallQueue, WallRun time.Duration
}

// Report aggregates one engine run.
type Report struct {
	Arb      ArbPolicy
	Sessions []SessionMetrics // in submission order
	Ticks    int

	// TotalTokens is the token count decoded across all sessions.
	TotalTokens int
	// WallSeconds and WallTokS are measured on the host: total runtime and
	// aggregate decoded tokens per wall second across all sessions.
	WallSeconds float64
	WallTokS    float64
	// SimTokS is the simulated aggregate throughput: all sessions' traffic
	// time-shares one memory system, so their simulated transfer times
	// serialize.
	SimTokS float64
	// HitRate is the unit-weighted cache hit rate across sessions.
	HitRate float64
	// SimLatencyP50/P90/P99 are percentiles, across sessions, of the mean
	// simulated seconds per token.
	SimLatencyP50, SimLatencyP90, SimLatencyP99 float64
	// WallRunP50/P90/P99 are percentiles of per-session wall run time in
	// seconds.
	WallRunP50, WallRunP90, WallRunP99 float64
}

// report assembles the Report after the scheduler loop drains.
func (e *Engine) report(ticks int, wall time.Duration) *Report {
	r := &Report{Arb: e.cfg.Arb, Ticks: ticks, WallSeconds: wall.Seconds()}
	var simSeconds float64
	var hits, misses int64
	simLats := make([]float64, 0, len(e.sessions))
	wallRuns := make([]float64, 0, len(e.sessions))
	for _, s := range e.sessions {
		if s == nil { // admission failed mid-run; Run already returned an error
			continue
		}
		pt := s.stream.Point()
		sm := SessionMetrics{
			ID: s.ID, Index: s.Index, Point: pt,
			Tokens: s.stream.Pos(), Share: s.Share, AdmitRank: s.AdmitRank,
			AdmitTick: s.admitTick, FinishTick: s.finishTick,
			WallQueue: s.wallAdmit.Sub(e.wallStart), WallRun: s.wallFinish.Sub(s.wallAdmit),
		}
		r.Sessions = append(r.Sessions, sm)
		r.TotalTokens += sm.Tokens
		simSeconds += pt.LatencyS * float64(sm.Tokens)
		h, m := s.stream.Traffic()
		hits += h
		misses += m
		simLats = append(simLats, pt.LatencyS)
		wallRuns = append(wallRuns, sm.WallRun.Seconds())
	}
	if r.WallSeconds > 0 {
		r.WallTokS = float64(r.TotalTokens) / r.WallSeconds
	}
	if simSeconds > 0 {
		r.SimTokS = float64(r.TotalTokens) / simSeconds
	}
	if t := hits + misses; t > 0 {
		r.HitRate = float64(hits) / float64(t)
	}
	r.SimLatencyP50 = Percentile(simLats, 0.50)
	r.SimLatencyP90 = Percentile(simLats, 0.90)
	r.SimLatencyP99 = Percentile(simLats, 0.99)
	r.WallRunP50 = Percentile(wallRuns, 0.50)
	r.WallRunP90 = Percentile(wallRuns, 0.90)
	r.WallRunP99 = Percentile(wallRuns, 0.99)
	return r
}

// Percentile returns the nearest-rank p-quantile (p in [0,1]) of vals,
// or 0 when empty. The input is not modified.
func Percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	i := int(p*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
