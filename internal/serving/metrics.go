package serving

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/eval"
	"repro/internal/serving/obs"
)

// SessionMetrics is one finished session's record. Every field is measured
// on the simulated tick clock (or the simulated device model) and is
// bit-identical across runs and worker counts for a fixed seed.
type SessionMetrics struct {
	ID    string
	Index int
	// Point carries the session's KPIs: perplexity, measured density,
	// simulated tok/s and latency, and this session's cache hit rate.
	Point eval.Point
	// Tokens is the surviving decoded prefix; Decoded additionally counts
	// work discarded by destructive-fault restarts (equal without faults).
	Tokens  int
	Decoded int
	// Share is the granted cache-budget fraction.
	Share float64
	SLO   SLO
	// AdmitRank is the session's admission position (0 = first admitted).
	AdmitRank int
	// ArriveTick/AdmitTick/FinishTick are the session's simulated timeline.
	ArriveTick, AdmitTick, FinishTick int
	// QueueTicks is the arrival→admission queueing delay; TurnaroundTicks is
	// the arrival→finish span in whole ticks (FinishTick − ArriveTick).
	QueueTicks, TurnaroundTicks int
	// FinishSubStep is the 1-based sub-quantum step the stream drained on
	// (Quantum = the tick's last step; 0 only for a degenerate stream that
	// never stepped). FinishTime is the de-quantized finish instant,
	// FinishTick−1 + FinishSubStep/Quantum, and Turnaround the fractional
	// arrival→finish span used for percentiles — a session draining on
	// sub-step 1 of an 8-token quantum no longer pays for the 7 steps it
	// never ran.
	FinishSubStep int
	FinishTime    float64
	Turnaround    float64
	// DeadlineTick is the absolute SLO deadline (NoDeadline when the request
	// has none); Attained reports FinishTime ≤ DeadlineTick, vacuously true
	// without a deadline. Only completed sessions attain: a failed or shed
	// deadlined request is a miss, and cancelled sessions are excluded from
	// attainment entirely.
	DeadlineTick int
	Attained     bool
	// Preemptions counts how often the session was suspended mid-run;
	// ResumeDelayTicks is the total ticks it spent suspended.
	Preemptions, ResumeDelayTicks int
	// Outcome is the session's terminal state ("ok", "failed", "cancelled",
	// or "shed"); Faults counts injected faults it suffered, Retries the
	// re-placements it was granted, and RecoverTicks the total ticks from
	// each fault to its re-placement.
	Outcome               Outcome
	Faults                int
	Retries, RecoverTicks int
}

// ClassMetrics aggregates one SLO class.
type ClassMetrics struct {
	// Class is the SLO class label ("default" for unlabeled requests).
	Class    string
	Sessions int
	// Deadlined counts sessions with a real deadline (cancelled ones are
	// excluded); Attained counts those that finished by it — failed or shed
	// deadlined requests count as misses. AttainRate is Attained/Deadlined
	// (1 when the class has no deadlines).
	Deadlined, Attained int
	AttainRate          float64
	// Queue/Turnaround percentiles are in simulated ticks.
	QueueP50, QueueP99           float64
	TurnaroundP50, TurnaroundP99 float64
}

// WallClock is the report's host-measured annotation — the only block
// excluded from the determinism contract.
type WallClock struct {
	// Seconds is the total engine runtime on the host; TokS is aggregate
	// decoded tokens per wall second.
	Seconds float64
	TokS    float64
}

// Report aggregates one engine run. Apart from Wall, every field is
// deterministic: bit-identical across runs and worker counts for a fixed
// seed.
type Report struct {
	// Workload, Sched, and Preemptor name the run's request source,
	// admission policy, and preemption policy.
	Workload  string
	Sched     string
	Preemptor string
	Arb       ArbPolicy
	Sessions  []SessionMetrics // in submission order
	Ticks     int
	// Preemptions is the aggregate mid-run suspension count.
	Preemptions int

	// TotalTokens is the token count decoded across all sessions.
	TotalTokens int
	// SimTokS is the simulated aggregate throughput: all sessions' traffic
	// time-shares one memory system, so their simulated transfer times
	// serialize.
	SimTokS float64
	// HitRate is the unit-weighted cache hit rate across sessions.
	// CacheHits/CacheMisses are the raw totals behind it, kept so
	// multi-node rollups (internal/cluster) can recompute an exact
	// cluster-wide rate instead of averaging ratios.
	HitRate                float64
	CacheHits, CacheMisses int64
	// SimLatencyP50/P90/P99 are percentiles, across sessions, of the mean
	// simulated seconds per token.
	SimLatencyP50, SimLatencyP90, SimLatencyP99 float64
	// QueueP50/P90/P99 are percentiles of arrival→admission delay in ticks.
	QueueP50, QueueP90, QueueP99 float64
	// TurnaroundP50/P90/P99 are percentiles of arrival→finish span in ticks
	// at sub-quantum resolution (see SessionMetrics.Turnaround).
	TurnaroundP50, TurnaroundP90, TurnaroundP99 float64
	// SLOAttainRate is attained/deadlined over sessions with real deadlines
	// (1 when none have one). Classes breaks attainment and delay down per
	// SLO class, sorted by class label.
	SLOAttainRate float64
	Classes       []ClassMetrics

	// Robustness block — all zero on reliable hardware. Injector names the
	// fault plan ("none" without one). StepFaults / Revocations /
	// Cancellations count injected events that landed on running sessions;
	// Retries counts granted re-placements, Failed sessions that exhausted
	// their attempt budget, and Shed arrivals rejected by admission control
	// or degraded away. DipSlotTicks is capacity lost to dips (slot·ticks
	// while work existed); MeanRecoverTicks averages fault → re-placement
	// delay over granted retries.
	Injector                             string
	StepFaults, Revocations, Cancellations int
	Retries, Failed, Shed                int
	DipSlotTicks                         int
	MeanRecoverTicks                     float64
	// GoodTokens counts tokens of completed sessions' surviving work;
	// Goodput is GoodTokens per simulated second. TotalTokens / SimTokS
	// above count *all* decoded tokens — including work discarded by
	// destructive-fault restarts and partial streams of failed or cancelled
	// sessions — so (SimTokS − Goodput) prices the wasted work.
	GoodTokens int
	Goodput    float64

	// Obs is the drain-time moving-window snapshot when a Config.Obs
	// recorder was attached (nil with tracing off). Every field in it runs
	// on the simulated clock, so it is inside the determinism contract —
	// fused and unfused reports carry identical snapshots.
	Obs *obs.Snapshot

	// Wall is the host-measured annotation (see WallClock).
	Wall WallClock
}

// ReconcileObs cross-checks the observer's aggregate event counts against
// the report's own counters and session outcomes, failing on the first
// divergent counter by name. The two are computed by independent code
// paths (per-decision event emissions vs the engine's running totals), so
// a pass means the event stream accounts for every counted decision — the
// guard against silent metrics drift.
func (r *Report) ReconcileObs() error {
	if r.Obs == nil {
		return fmt.Errorf("serving: report carries no observer snapshot (run with Config.Obs set)")
	}
	var okFinishes, shedSessions, admitted int
	for _, sm := range r.Sessions {
		switch sm.Outcome {
		case OutcomeOK:
			okFinishes++
			admitted++
		case OutcomeShed:
			shedSessions++
		default:
			admitted++
		}
	}
	c := r.Obs.Counts
	checks := []struct {
		name            string
		events, counter int
	}{
		{"arrivals vs reported sessions", c.Arrivals, len(r.Sessions)},
		{"admit events vs admitted sessions", c.Admits, admitted},
		{"step-fault events vs Report.StepFaults", c.StepFaults, r.StepFaults},
		{"revocation events vs Report.Revocations", c.Revocations, r.Revocations},
		{"cancel-fault events vs Report.Cancellations", c.Cancellations, r.Cancellations},
		{"cancelled finish events vs Report.Cancellations", c.Cancelled, r.Cancellations},
		{"retry events vs Report.Retries", c.Retries, r.Retries},
		{"fault-suspend events vs Report.Retries", c.FaultSuspends, r.Retries},
		{"failed finish events vs Report.Failed", c.Failed, r.Failed},
		{"preemption suspend events vs Report.Preemptions", c.Preemptions, r.Preemptions},
		{"shed+degrade events vs Report.Shed", c.ShedArrivals + c.Degraded, r.Shed},
		{"shed+degrade events vs shed sessions", c.ShedArrivals + c.Degraded, shedSessions},
		{"ok finish events vs ok sessions", c.FinishedOK, okFinishes},
	}
	for _, ck := range checks {
		if ck.events != ck.counter {
			return fmt.Errorf("serving: observability reconciliation failed on %s: %d event(s) vs %d",
				ck.name, ck.events, ck.counter)
		}
	}
	return nil
}

// report assembles the Report after the engine loop drains.
func (e *Engine) report(ticks int, wall time.Duration) *Report {
	r := &Report{
		Workload: e.w.Name(), Sched: e.sched.Name(), Preemptor: e.pre.Name(), Arb: e.cfg.Arb,
		Ticks: ticks, Preemptions: e.preempts, Wall: WallClock{Seconds: wall.Seconds()},
		Injector:   "none",
		StepFaults: e.stepFaults, Revocations: e.revokes, Cancellations: e.cancels,
		Retries: e.retries, Failed: e.failed, Shed: e.shedCount,
		DipSlotTicks: e.dipSlotTicks,
	}
	if e.cfg.Faults != nil {
		r.Injector = e.cfg.Faults.Name()
	}
	if e.obs != nil {
		snap := e.obs.Snapshot(ticks)
		r.Obs = &snap
	}
	if e.recoveries > 0 {
		r.MeanRecoverTicks = float64(e.recoverTicks) / float64(e.recoveries)
	}
	var simSeconds float64
	var hits, misses int64
	var deadlined, attained int
	simLats := make([]float64, 0, len(e.sessions))
	queues := make([]float64, 0, len(e.sessions))
	turns := make([]float64, 0, len(e.sessions))
	byClass := make(map[string][]SessionMetrics)
	for i, s := range e.sessions {
		if s == nil {
			if e.shedTick[i] < 0 {
				continue // admission failed mid-run; Run already returned an error
			}
			// Shed at admission control (or degraded away): never admitted,
			// never decoded. A deadlined shed request is an SLO miss.
			req := e.reqs[i]
			sm := SessionMetrics{
				ID: req.ID, Index: i, SLO: req.SLO, Outcome: OutcomeShed,
				ArriveTick: e.shedArrive[i], FinishTick: e.shedTick[i],
				FinishTime:   float64(e.shedTick[i]),
				Turnaround:   float64(e.shedTick[i] - e.shedArrive[i]),
				DeadlineTick: deadlineOf(e.shedArrive[i], req.SLO),
			}
			r.Sessions = append(r.Sessions, sm)
			if sm.DeadlineTick != NoDeadline {
				deadlined++
			}
			byClass[className(req.SLO)] = append(byClass[className(req.SLO)], sm)
			continue
		}
		pt := s.stream.Point()
		finishTime := float64(s.finishTick)
		if s.finishSub > 0 && s.finishSub < e.cfg.Quantum {
			finishTime = float64(s.finishTick-1) + float64(s.finishSub)/float64(e.cfg.Quantum)
		}
		outcome := s.outcome
		if outcome == "" {
			outcome = OutcomeOK
		}
		sm := SessionMetrics{
			ID: s.ID, Index: s.Index, Point: pt,
			Tokens: s.stream.Pos(), Decoded: s.stream.Decoded(),
			Share: s.Share, SLO: s.SLO, AdmitRank: s.AdmitRank,
			ArriveTick: s.arriveTick, AdmitTick: s.admitTick, FinishTick: s.finishTick,
			QueueTicks:       s.admitTick - s.arriveTick,
			TurnaroundTicks:  s.finishTick - s.arriveTick,
			FinishSubStep:    s.finishSub,
			FinishTime:       finishTime,
			Turnaround:       finishTime - float64(s.arriveTick),
			DeadlineTick:     s.deadlineTick,
			Attained:         outcome == OutcomeOK && finishTime <= float64(s.deadlineTick),
			Preemptions:      s.preempts,
			ResumeDelayTicks: s.resumeDelay,
			Outcome:          outcome,
			Faults:           s.faultCount,
			Retries:          s.attempts - 1,
			RecoverTicks:     s.recoverTicks,
		}
		r.Sessions = append(r.Sessions, sm)
		r.TotalTokens += sm.Decoded
		simSeconds += pt.LatencyS * float64(sm.Decoded)
		h, m := s.stream.Traffic()
		hits += h
		misses += m
		simLats = append(simLats, pt.LatencyS)
		queues = append(queues, float64(sm.QueueTicks))
		if outcome == OutcomeOK {
			r.GoodTokens += sm.Tokens
			turns = append(turns, sm.Turnaround)
		}
		if sm.DeadlineTick != NoDeadline && outcome != OutcomeCancelled {
			deadlined++
			if sm.Attained {
				attained++
			}
		}
		byClass[className(s.SLO)] = append(byClass[className(s.SLO)], sm)
	}
	if r.Wall.Seconds > 0 {
		r.Wall.TokS = float64(r.TotalTokens) / r.Wall.Seconds
	}
	if simSeconds > 0 {
		r.SimTokS = float64(r.TotalTokens) / simSeconds
		r.Goodput = float64(r.GoodTokens) / simSeconds
	}
	r.CacheHits, r.CacheMisses = hits, misses
	if t := hits + misses; t > 0 {
		r.HitRate = float64(hits) / float64(t)
	}
	r.SimLatencyP50 = Percentile(simLats, 0.50)
	r.SimLatencyP90 = Percentile(simLats, 0.90)
	r.SimLatencyP99 = Percentile(simLats, 0.99)
	r.QueueP50 = Percentile(queues, 0.50)
	r.QueueP90 = Percentile(queues, 0.90)
	r.QueueP99 = Percentile(queues, 0.99)
	r.TurnaroundP50 = Percentile(turns, 0.50)
	r.TurnaroundP90 = Percentile(turns, 0.90)
	r.TurnaroundP99 = Percentile(turns, 0.99)
	r.SLOAttainRate = attainRate(attained, deadlined)
	names := make([]string, 0, len(byClass))
	for name := range byClass {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r.Classes = append(r.Classes, classMetrics(name, byClass[name]))
	}
	return r
}

// className resolves an SLO's reporting label.
func className(slo SLO) string {
	if slo.Class == "" {
		return "default"
	}
	return slo.Class
}

// attainRate is attained/deadlined, vacuously 1 with no deadlines.
func attainRate(attained, deadlined int) float64 {
	if deadlined == 0 {
		return 1
	}
	return float64(attained) / float64(deadlined)
}

// classMetrics aggregates one SLO class's sessions.
func classMetrics(name string, sms []SessionMetrics) ClassMetrics {
	cm := ClassMetrics{Class: name, Sessions: len(sms)}
	queues := make([]float64, 0, len(sms))
	turns := make([]float64, 0, len(sms))
	for _, sm := range sms {
		if sm.Outcome != OutcomeShed {
			queues = append(queues, float64(sm.QueueTicks))
		}
		if sm.Outcome == OutcomeOK {
			turns = append(turns, sm.Turnaround)
		}
		if sm.DeadlineTick != NoDeadline && sm.Outcome != OutcomeCancelled {
			cm.Deadlined++
			if sm.Attained {
				cm.Attained++
			}
		}
	}
	cm.AttainRate = attainRate(cm.Attained, cm.Deadlined)
	cm.QueueP50 = Percentile(queues, 0.50)
	cm.QueueP99 = Percentile(queues, 0.99)
	cm.TurnaroundP50 = Percentile(turns, 0.50)
	cm.TurnaroundP99 = Percentile(turns, 0.99)
	return cm
}

// Percentile returns the nearest-rank p-quantile (p in [0,1]) of vals,
// or 0 when empty. The input is not modified.
func Percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	i := int(p*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
