package serving

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Workload is a deterministic source of timestamped requests on the
// engine's simulated tick clock. A workload declares its full request
// universe up front (Requests — the engine needs it to lay out the shared
// memory plan) and then releases submission indices tick by tick through
// Next. Timing may depend on completions (closed-loop think time), which
// the engine reports through the finished argument, so a workload is a
// deterministic function of its construction parameters and the engine's
// (deterministic) retirement ticks.
type Workload interface {
	// Name identifies the workload kind (CLI-compatible: fixed, poisson,
	// closed, trace).
	Name() string
	// Requests returns every request the workload will ever yield. The slice
	// position is the request's submission Index; the engine validates and
	// plans over it once and never mutates it.
	Requests() []Request
	// Next is called once per simulated tick, in tick order, with the
	// sessions retired since the previous call (nil-safe; the slice is
	// reused — do not retain it). It returns the submission indices arriving
	// this tick. When the engine is idle it fast-forwards the clock over
	// ticks NextArrival rules out, so those are skipped.
	Next(tick int, finished []Finished) []int
	// NextArrival returns the earliest tick at which a currently scheduled
	// request arrives (ok = false when none is scheduled — either the
	// workload is done, or future arrivals depend on completions not yet
	// reported). The engine uses it to fast-forward idle gaps in sparse
	// traces instead of spinning tick by tick.
	NextArrival() (tick int, ok bool)
	// Done reports that no current or future arrivals remain.
	Done() bool
}

// Finished notifies a workload that one session retired.
type Finished struct {
	Index int // submission index
	ID    string
	Tick  int // retirement tick
}

// WorkloadNames lists the built-in workload kinds in CLI order.
func WorkloadNames() []string { return []string{"fixed", "poisson", "closed", "trace"} }

// fixedBatch releases every request at tick 0 — PR 2's fixed-batch serving
// as a Workload adapter. Combined with the FCFS scheduler it reproduces the
// old engine bit for bit: same-tick arrivals are shuffled by the engine's
// seeded RNG, which for one batch at tick 0 is exactly the old seeded
// admission permutation.
type fixedBatch struct {
	reqs    []Request
	emitted bool
}

// FixedBatch wraps a request slice as an all-arrive-at-tick-0 workload.
func FixedBatch(reqs []Request) Workload { return &fixedBatch{reqs: reqs} }

func (f *fixedBatch) Name() string        { return "fixed" }
func (f *fixedBatch) Requests() []Request { return f.reqs }
func (f *fixedBatch) Done() bool          { return f.emitted }

func (f *fixedBatch) NextArrival() (int, bool) { return 0, !f.emitted }

func (f *fixedBatch) Next(tick int, _ []Finished) []int {
	if f.emitted {
		return nil
	}
	f.emitted = true
	out := make([]int, len(f.reqs))
	for i := range out {
		out[i] = i
	}
	return out
}

// poisson is an open-loop arrival process: requests arrive in submission
// order with exponential inter-arrival gaps at a fixed mean rate. Arrival
// ticks are drawn once at construction from a dedicated seeded RNG, so the
// trace is independent of engine state.
type poisson struct {
	reqs   []Request
	ticks  []int // nondecreasing arrival tick per submission index
	cursor int
}

// PoissonArrivals builds a seeded open-loop trace over reqs: arrivals are a
// Poisson process with the given mean rate in requests per tick.
func PoissonArrivals(reqs []Request, rate float64, seed uint64) (Workload, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("serving: poisson workload has no requests")
	}
	if rate <= 0 || math.IsInf(rate, 0) || math.IsNaN(rate) {
		return nil, fmt.Errorf("serving: poisson rate must be a positive requests/tick, got %v", rate)
	}
	rng := tensor.NewRNG(seed)
	ticks := make([]int, len(reqs))
	t := 0.0
	for i := range ticks {
		u := rng.Float64()
		t += -math.Log(1-u) / rate
		ticks[i] = int(t)
	}
	return &poisson{reqs: reqs, ticks: ticks}, nil
}

func (p *poisson) Name() string        { return "poisson" }
func (p *poisson) Requests() []Request { return p.reqs }
func (p *poisson) Done() bool          { return p.cursor == len(p.reqs) }

func (p *poisson) NextArrival() (int, bool) {
	if p.cursor == len(p.ticks) {
		return 0, false
	}
	return p.ticks[p.cursor], true
}

func (p *poisson) Next(tick int, _ []Finished) []int {
	var out []int
	for p.cursor < len(p.ticks) && p.ticks[p.cursor] <= tick {
		out = append(out, p.cursor)
		p.cursor++
	}
	return out
}

// closedLoop models N users replaying per-user scripts: each user issues
// their first request at tick 0, then issues the next one thinkTicks after
// the previous one retires. The request universe is the scripts flattened
// in user order, so arrival *timing* is feedback-driven while the universe
// (and therefore the memory plan) is fixed.
type closedLoop struct {
	reqs    []Request
	user    []int // submission index -> user
	cursor  []int // user -> next submission index to issue, or -1
	last    []int // user -> last submission index of their script
	think   int
	due     map[int][]int // tick -> submission indices, in schedule order
	emitted int
}

// ClosedLoop builds an N-user think-time workload from per-user scripts.
// Empty scripts are allowed (the user never issues anything).
func ClosedLoop(scripts [][]Request, thinkTicks int) (Workload, error) {
	if thinkTicks < 0 {
		return nil, fmt.Errorf("serving: closed-loop think time must be non-negative ticks, got %d", thinkTicks)
	}
	c := &closedLoop{think: thinkTicks, due: make(map[int][]int)}
	for u, script := range scripts {
		if len(script) == 0 {
			continue
		}
		first := len(c.reqs)
		for _, r := range script {
			c.user = append(c.user, u)
			c.reqs = append(c.reqs, r)
		}
		for len(c.cursor) <= u {
			c.cursor = append(c.cursor, -1)
			c.last = append(c.last, -1)
		}
		c.cursor[u] = first + 1
		c.last[u] = len(c.reqs) - 1
		c.due[0] = append(c.due[0], first)
	}
	if len(c.reqs) == 0 {
		return nil, fmt.Errorf("serving: closed-loop workload has no requests")
	}
	return c, nil
}

func (c *closedLoop) Name() string        { return "closed" }
func (c *closedLoop) Requests() []Request { return c.reqs }
func (c *closedLoop) Done() bool          { return c.emitted == len(c.reqs) }

func (c *closedLoop) NextArrival() (int, bool) {
	best, ok := 0, false
	for tick := range c.due {
		if !ok || tick < best {
			best, ok = tick, true
		}
	}
	return best, ok
}

func (c *closedLoop) Next(tick int, finished []Finished) []int {
	// Schedule follow-ups first so a zero think time re-issues this tick.
	for _, f := range finished {
		u := c.user[f.Index]
		if next := c.cursor[u]; next >= 0 && next <= c.last[u] {
			c.cursor[u] = next + 1
			c.due[tick+c.think] = append(c.due[tick+c.think], next)
		}
	}
	out := c.due[tick]
	delete(c.due, tick)
	c.emitted += len(out)
	return out
}
