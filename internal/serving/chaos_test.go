package serving

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/eval"
	"repro/internal/parallel"
	"repro/internal/serving/faults"
	"repro/internal/sparsity"
)

// The acceptance test for transient-fault recovery: under ArbExclusive a
// session's private cache survives a step fault, so the faulted-then-retried
// session must be bit-identical to an uninterrupted solo run — DIP-CA is the
// hard case, its masks read the cache every token.
func TestStepFaultRetryExclusiveMatchesSoloBitForBit(t *testing.T) {
	trained(t)
	script, err := faults.Scripted(faults.Event{Tick: 2, Kind: faults.Step, Slot: 0})
	if err != nil {
		t.Fatal(err)
	}
	reqs := requests(t, 1,
		func(int) sparsity.Scheme { return sparsity.NewDIPCA(0.5, 0.2) },
		func(int) int { return 4 }) // 128 tokens
	e, err := NewEngine(zoo.m, Config{
		System: sysCfg(), Arb: ArbExclusive, MaxActive: 1, Quantum: 8, Seed: 1,
		Faults: script,
	}, FixedBatch(reqs))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.StepFaults != 1 || rep.Retries != 1 || rep.Injector != "scripted" {
		t.Fatalf("fault accounting wrong: %+v", rep)
	}
	if rep.MeanRecoverTicks <= 0 {
		t.Fatalf("no time-to-recover recorded: %+v", rep)
	}
	sm := rep.Sessions[0]
	if sm.Outcome != OutcomeOK || sm.Faults != 1 || sm.Retries != 1 || sm.RecoverTicks <= 0 {
		t.Fatalf("session fault accounting wrong: %+v", sm)
	}
	solo, err := eval.SystemEvaluate(zoo.m, sparsity.NewDIPCA(0.5, 0.2), reqs[0].Tokens, sysCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !pointsEqual(sm.Point, solo) {
		t.Fatalf("faulted-and-retried session diverged from uninterrupted solo run:\nserved %+v\nsolo   %+v", sm.Point, solo)
	}
	// A transient fault wastes no decode work: the stream resumed in place.
	if sm.Tokens != 128 || sm.Decoded != 128 || rep.GoodTokens != 128 {
		t.Fatalf("transient fault discarded work: %+v", sm)
	}
	if rep.Goodput != rep.SimTokS {
		t.Fatalf("goodput %v != throughput %v despite zero waste", rep.Goodput, rep.SimTokS)
	}
}

// A revocation is destructive: the grant and the decode state built on it
// are torn down, and the session re-prefills from scratch. With a
// cache-independent scheme (plain DIP) the rerun's quality metrics are still
// bit-identical to a solo run, while the discarded prefix shows up in
// Decoded and as the throughput−goodput gap.
func TestRevocationRestartsFromScratch(t *testing.T) {
	trained(t)
	script, err := faults.Scripted(faults.Event{Tick: 2, Kind: faults.Revoke, Slot: 0})
	if err != nil {
		t.Fatal(err)
	}
	reqs := requests(t, 1,
		func(int) sparsity.Scheme { return sparsity.NewDIP(0.5) },
		func(int) int { return 2 }) // 64 tokens
	e, err := NewEngine(zoo.m, Config{
		System: sysCfg(), Arb: ArbExclusive, MaxActive: 1, Quantum: 8, Seed: 1,
		Faults: script,
	}, FixedBatch(reqs))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Revocations != 1 || rep.Retries != 1 {
		t.Fatalf("revocation accounting wrong: %+v", rep)
	}
	sm := rep.Sessions[0]
	// Two full ticks of quantum 8 ran before the revocation discarded them.
	if sm.Tokens != 64 || sm.Decoded != 64+16 {
		t.Fatalf("restart bookkeeping wrong: Tokens %d Decoded %d, want 64 / 80", sm.Tokens, sm.Decoded)
	}
	solo, err := eval.SystemEvaluate(zoo.m, sparsity.NewDIP(0.5), reqs[0].Tokens, sysCfg())
	if err != nil {
		t.Fatal(err)
	}
	if sm.Point.PPL != solo.PPL || sm.Point.Density != solo.Density {
		t.Fatalf("re-prefilled run's quality diverged from solo:\nserved %+v\nsolo   %+v", sm.Point, solo)
	}
	if rep.GoodTokens != 64 || rep.Goodput >= rep.SimTokS {
		t.Fatalf("wasted work not priced: good %d, goodput %v, throughput %v",
			rep.GoodTokens, rep.Goodput, rep.SimTokS)
	}
}

// Cancellations remove the session outright (no retry, excluded from
// attainment); an exhausted retry budget fails the session (a deadlined
// failure is an SLO miss). Both must keep the engine draining and both are
// excluded from the completed-session turnaround percentiles.
func TestCancelAndFailOutcomes(t *testing.T) {
	trained(t)
	script, err := faults.Scripted(
		faults.Event{Tick: 1, Kind: faults.Cancel, Slot: 0},
		faults.Event{Tick: 1, Kind: faults.Step, Slot: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	reqs := requests(t, 2,
		func(int) sparsity.Scheme { return sparsity.NewDIP(0.5) },
		func(int) int { return 2 })
	for i := range reqs {
		reqs[i].SLO = SLO{Class: "interactive", DeadlineTicks: 50}
	}
	e, err := NewEngine(zoo.m, Config{
		System: sysCfg(), Arb: ArbFairShare, MaxActive: 2, Quantum: 8, Seed: 3,
		Faults: script, Retry: faults.RetryPolicy{MaxAttempts: 1},
	}, FixedBatch(reqs))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cancellations != 1 || rep.Failed != 1 || rep.Retries != 0 {
		t.Fatalf("outcome accounting wrong: %+v", rep)
	}
	got := map[Outcome]int{}
	for _, sm := range rep.Sessions {
		got[sm.Outcome]++
		if sm.Attained {
			t.Fatalf("terminated session reported attained: %+v", sm)
		}
		if sm.Tokens >= len(reqs[sm.Index].Tokens) {
			t.Fatalf("terminated session decoded its whole stream: %+v", sm)
		}
	}
	if got[OutcomeCancelled] != 1 || got[OutcomeFailed] != 1 {
		t.Fatalf("outcomes %v, want one cancelled and one failed", got)
	}
	// Attainment: the failure is a deadlined miss; the cancellation is
	// excluded, not counted as a miss.
	if rep.SLOAttainRate != 0 {
		t.Fatalf("attain rate %v, want 0 (one deadlined miss)", rep.SLOAttainRate)
	}
	var deadlined int
	for _, cm := range rep.Classes {
		deadlined += cm.Deadlined
	}
	if deadlined != 1 {
		t.Fatalf("deadlined count %d, want 1 (cancelled excluded)", deadlined)
	}
	if rep.TurnaroundP50 != 0 {
		t.Fatalf("turnaround percentiles include terminated sessions: %v", rep.TurnaroundP50)
	}
}

// A capacity dip parks the tail slots' sessions without consuming retry
// attempts; they resume when capacity returns and still complete.
func TestCapacityDipParksAndResumes(t *testing.T) {
	trained(t)
	script, err := faults.Scripted(faults.Event{Tick: 1, Kind: faults.Dip, Slots: 1, Ticks: 2})
	if err != nil {
		t.Fatal(err)
	}
	reqs := requests(t, 2,
		func(int) sparsity.Scheme { return sparsity.NewDIP(0.5) },
		func(int) int { return 2 })
	e, err := NewEngine(zoo.m, Config{
		System: sysCfg(), Arb: ArbFairShare, MaxActive: 2, Quantum: 8, Seed: 2,
		Faults: script,
	}, FixedBatch(reqs))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.DipSlotTicks != 2 {
		t.Fatalf("DipSlotTicks %d, want 2 (one slot for two ticks)", rep.DipSlotTicks)
	}
	if rep.Retries != 0 || rep.Preemptions != 0 || rep.Failed != 0 {
		t.Fatalf("a dip must not consume retries or count as preemption: %+v", rep)
	}
	parked := 0
	for _, sm := range rep.Sessions {
		if sm.Outcome != OutcomeOK || sm.Tokens != 64 {
			t.Fatalf("session did not complete across the dip: %+v", sm)
		}
		if sm.ResumeDelayTicks > 0 {
			parked++
		}
	}
	if parked != 1 {
		t.Fatalf("%d sessions parked, want exactly the displaced tail slot", parked)
	}
}

// The determinism acceptance test for chaos runs: with a fixed fault seed,
// the full report — faults injected, retries, sheds, outcomes, every session
// metric — must be bit-identical across worker counts and fused/unfused
// decode paths, for every arbitration policy. Run under -race this also
// proves fault-driven batch recomposition never races the decode phases.
func TestChaosDeterministicAcrossWorkerCountsAndFuse(t *testing.T) {
	trained(t)
	defer parallel.SetProcs(parallel.Procs())
	plan, err := faults.Mix(0.08, 99)
	if err != nil {
		t.Fatal(err)
	}
	run := func(arb ArbPolicy, noFuse bool) *Report {
		e, err := NewEngine(zoo.m, Config{
			System: sysCfg(), Arb: arb, Sched: EDF(), Preempt: DeadlinePreempt(),
			MaxActive: 2, Quantum: 4, Seed: 5, NoFuse: noFuse,
			Faults: plan, Retry: faults.RetryPolicy{MaxAttempts: 3},
			ShedQueueBudget: 3, Degrade: true, DegradeTicks: 2,
		}, mixedPressureTrace(t))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	injected := false
	for _, arb := range Policies() {
		parallel.SetProcs(4)
		fused := stripWall(run(arb, false))
		unfused := stripWall(run(arb, true))
		if !reflect.DeepEqual(fused, unfused) {
			t.Fatalf("arb=%v: chaos reports diverged between fused and per-session paths:\nfused   %+v\nunfused %+v",
				arb, fused, unfused)
		}
		parallel.SetProcs(1)
		serial := stripWall(run(arb, false))
		if !reflect.DeepEqual(fused, serial) {
			t.Fatalf("arb=%v: chaos report depends on worker count", arb)
		}
		injected = injected || fused.StepFaults+fused.Revocations+fused.Cancellations+fused.DipSlotTicks > 0
	}
	if !injected {
		t.Fatal("scenario broken: the seeded plan injected nothing anywhere")
	}
}

// Admission-control shedding and graceful degradation: arrivals beyond the
// queue budget are rejected at the door (shed tick = arrival tick), and
// under sustained pressure the degrade pass sheds queued best-effort
// backlog (shed tick > arrival tick) instead of letting it rot.
func TestAdmissionShedAndDegrade(t *testing.T) {
	trained(t)
	entries := []TraceEntry{
		{ID: "hog", Tick: 0, Tokens: 192, Start: 0, Class: "batch"},
		{ID: "q1", Tick: 1, Tokens: 32, Start: 512, Class: "batch"},
		{ID: "q2", Tick: 2, Tokens: 32, Start: 768, Class: "batch"},
		{ID: "q3", Tick: 3, Tokens: 32, Start: 1024, Class: "batch"},
		{ID: "q4", Tick: 4, Tokens: 32, Start: 1280, Class: "batch"},
	}
	w, err := TraceWorkload(entries, testBinder(t))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(zoo.m, Config{
		System: sysCfg(), Arb: ArbExclusive, MaxActive: 1, Quantum: 8, Seed: 1,
		ShedQueueBudget: 2, Degrade: true, DegradeTicks: 2,
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Fatalf("nothing shed: %+v", rep)
	}
	atDoor, degraded := 0, 0
	for _, sm := range rep.Sessions {
		if sm.Outcome != OutcomeShed {
			continue
		}
		if sm.Tokens != 0 || sm.Decoded != 0 {
			t.Fatalf("shed session decoded tokens: %+v", sm)
		}
		if sm.FinishTick == sm.ArriveTick {
			atDoor++
		} else {
			degraded++
		}
	}
	if atDoor == 0 || degraded == 0 {
		t.Fatalf("want both shed kinds, got %d at admission and %d degraded (shed %d)", atDoor, degraded, rep.Shed)
	}
	if atDoor+degraded != rep.Shed {
		t.Fatalf("shed rows %d+%d do not match Shed %d", atDoor, degraded, rep.Shed)
	}
}

// Shedding must notify the workload like a completion, or a closed-loop
// user whose request was shed would never issue their next one and the
// engine would stall.
func TestShedNotifiesClosedLoopWorkload(t *testing.T) {
	trained(t)
	scripts := [][]Request{
		{{ID: "u0r0", Scheme: sparsity.NewDIP(0.5), Tokens: streamFor(t, 0, 2)}},
		{
			{ID: "u1r0", Scheme: sparsity.NewDIP(0.5), Tokens: streamFor(t, 1, 1)},
			{ID: "u1r1", Scheme: sparsity.NewDIP(0.5), Tokens: streamFor(t, 2, 1)},
		},
	}
	w, err := ClosedLoop(scripts, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(zoo.m, Config{
		System: sysCfg(), Arb: ArbExclusive, MaxActive: 1, Quantum: 8, Seed: 1,
		ShedQueueBudget: 1,
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Fatalf("scenario broken: nothing shed: %+v", rep)
	}
	byID := map[string]SessionMetrics{}
	for _, sm := range rep.Sessions {
		byID[sm.ID] = sm
	}
	if len(rep.Sessions) != 3 {
		t.Fatalf("%d sessions reported, want all 3 (shed included): %+v", len(rep.Sessions), rep.Sessions)
	}
	// u1's follow-up must have been issued even though u1r0 was shed.
	if _, ok := byID["u1r1"]; !ok {
		t.Fatalf("closed-loop user stalled after shed: %+v", rep.Sessions)
	}
}

// The recovery acceptance test: on a seeded Poisson chaos trace, retry +
// shedding must strictly beat the no-recovery baseline's SLO attainment,
// with positive goodput and at least one granted retry.
func TestRetryAndSheddingBeatNoRecoveryBaseline(t *testing.T) {
	trained(t)
	plan, err := faults.Mix(0.06, 17)
	if err != nil {
		t.Fatal(err)
	}
	run := func(retry faults.RetryPolicy, shed int) *Report {
		reqs := make([]Request, 8)
		for i := range reqs {
			if i%2 == 0 {
				reqs[i] = Request{
					ID: string(rune('a' + i)), Scheme: sparsity.NewDIP(0.5),
					Tokens: streamFor(t, i, 1),
					SLO:    SLO{Class: "interactive", Priority: 2, DeadlineTicks: 24},
				}
			} else {
				reqs[i] = Request{
					ID: string(rune('a' + i)), Scheme: sparsity.NewDIP(0.5),
					Tokens: streamFor(t, i, 2),
					SLO:    SLO{Class: "batch"},
				}
			}
		}
		w, err := PoissonArrivals(reqs, 0.25, 21)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(zoo.m, Config{
			System: sysCfg(), Arb: ArbFairShare, Sched: EDF(), Preempt: DeadlinePreempt(),
			MaxActive: 2, Quantum: 8, Seed: 2,
			Faults: plan, Retry: retry, ShedQueueBudget: shed, Degrade: shed > 0,
		}, w)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := run(faults.RetryPolicy{MaxAttempts: 1}, 0)
	rec := run(faults.RetryPolicy{MaxAttempts: 3}, 6)
	if base.Failed == 0 {
		t.Fatalf("scenario broken: no session failed without recovery: %+v", base)
	}
	if rec.Retries == 0 {
		t.Fatalf("recovery run granted no retries: %+v", rec)
	}
	if rec.Goodput <= 0 {
		t.Fatalf("recovery run has no goodput: %+v", rec)
	}
	if rec.SLOAttainRate <= base.SLOAttainRate {
		t.Fatalf("retry+shedding did not strictly beat the no-recovery baseline: %v vs %v",
			rec.SLOAttainRate, base.SLOAttainRate)
	}
}

// Satellite: the resume spec beyond ArbExclusive. Under fair-share and
// greedy arbitration a suspended session's partition is released, so the
// resumed run re-fills a cold cache at a fresh grant: with a
// cache-independent scheme the quality metrics stay bit-identical to an
// uninterrupted run, while the cache hit rate strictly drops — the
// documented re-prefill cost fault-triggered restarts inherit.
func TestSuspendResumeSpecUnderFairAndGreedy(t *testing.T) {
	trained(t)
	for _, arb := range []ArbPolicy{ArbFairShare, ArbGreedy} {
		run := func(pre Preemptor) *Report {
			e, err := NewEngine(zoo.m, Config{
				System: sysCfg(), Arb: arb, Sched: EDF(), Preempt: pre,
				MaxActive: 1, Quantum: 8, Seed: 3,
			}, preemptTrace(t))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}
		base := run(NoPreempt())
		pre := run(DeadlinePreempt())
		if pre.Preemptions == 0 {
			t.Fatalf("arb=%v: scenario broken, no preemption", arb)
		}
		again := run(DeadlinePreempt())
		if !reflect.DeepEqual(stripWall(pre), stripWall(again)) {
			t.Fatalf("arb=%v: suspend/resume run not reproducible", arb)
		}
		sess := func(r *Report, id string) SessionMetrics {
			for _, sm := range r.Sessions {
				if sm.ID == id {
					return sm
				}
			}
			t.Fatalf("no session %q in %+v", id, r.Sessions)
			return SessionMetrics{}
		}
		bgPre, bgBase := sess(pre, "bg"), sess(base, "bg")
		if bgPre.Preemptions == 0 {
			t.Fatalf("arb=%v: bg was not the victim: %+v", arb, bgPre)
		}
		// With one slot, both policies grant the full budget, so the
		// uninterrupted baseline is the within-policy reference. Quality is
		// untouched by the cold resume; the hit rate strictly pays for it.
		if bgPre.Point.PPL != bgBase.Point.PPL || bgPre.Point.Density != bgBase.Point.Density {
			t.Fatalf("arb=%v: resume changed decode quality:\npre  %+v\nbase %+v", arb, bgPre.Point, bgBase.Point)
		}
		if bgPre.Point.HitRate >= bgBase.Point.HitRate {
			t.Fatalf("arb=%v: cold resume did not cost hit rate: %v vs %v",
				arb, bgPre.Point.HitRate, bgBase.Point.HitRate)
		}
		if bgPre.Tokens != 128 || bgPre.Outcome != OutcomeOK {
			t.Fatalf("arb=%v: victim did not complete: %+v", arb, bgPre)
		}
		// The re-granted share is the policy's current one (full budget at
		// one slot for both fair-share and greedy).
		if bgPre.Share != 1 {
			t.Fatalf("arb=%v: resume share %v, want the policy's full single-slot grant", arb, bgPre.Share)
		}
	}
}

// Satellite: Config and workload-constructor validation — zero/negative
// parameters must come back as named errors, not silent defaults (zero
// keeps its documented default where one exists).
func TestConfigValidationNamedErrors(t *testing.T) {
	trained(t)
	good := requests(t, 1,
		func(int) sparsity.Scheme { return sparsity.NewDIP(0.5) },
		func(int) int { return 1 })
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative MaxActive", func(c *Config) { c.MaxActive = -1 }, "MaxActive"},
		{"negative Quantum", func(c *Config) { c.Quantum = -8 }, "Quantum"},
		{"negative shed budget", func(c *Config) { c.ShedQueueBudget = -2 }, "ShedQueueBudget"},
		{"degrade without budget", func(c *Config) { c.Degrade = true }, "Degrade"},
		{"negative degrade window", func(c *Config) { c.ShedQueueBudget = 2; c.Degrade = true; c.DegradeTicks = -1 }, "DegradeTicks"},
		{"negative retry attempts", func(c *Config) { c.Retry.MaxAttempts = -1 }, "MaxAttempts"},
		{"negative retry backoff", func(c *Config) { c.Retry.BackoffBase = -1 }, "BackoffBase"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{System: sysCfg()}
			tc.mut(&cfg)
			_, err := NewEngine(zoo.m, cfg, FixedBatch(good))
			if err == nil || !containsStr(err.Error(), tc.want) {
				t.Fatalf("error %v does not name %q", err, tc.want)
			}
		})
	}
	// Zero MaxActive/Quantum keep their documented defaults.
	e, err := NewEngine(zoo.m, Config{System: sysCfg()}, FixedBatch(good))
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.MaxActive != 4 || e.cfg.Quantum != 8 {
		t.Fatalf("zero-value defaults changed: MaxActive %d Quantum %d", e.cfg.MaxActive, e.cfg.Quantum)
	}
}

// Satellite: workload constructors reject nonsense parameters with named
// errors.
func TestWorkloadConstructorValidation(t *testing.T) {
	trained(t)
	good := requests(t, 1,
		func(int) sparsity.Scheme { return sparsity.NewDIP(0.5) },
		func(int) int { return 1 })
	t.Run("poisson", func(t *testing.T) {
		for _, rate := range []float64{0, -0.5, inf(), -inf(), nanF()} {
			if _, err := PoissonArrivals(good, rate, 1); err == nil || !containsStr(err.Error(), "rate") {
				t.Fatalf("rate %v: error %v does not name the rate", rate, err)
			}
		}
		if _, err := PoissonArrivals(nil, 0.5, 1); err == nil || !containsStr(err.Error(), "request") {
			t.Fatalf("empty universe: %v", err)
		}
		if _, err := PoissonArrivals(good, 0.5, 1); err != nil {
			t.Fatalf("valid poisson rejected: %v", err)
		}
	})
	t.Run("closed", func(t *testing.T) {
		if _, err := ClosedLoop([][]Request{good}, -1); err == nil || !containsStr(err.Error(), "think") {
			t.Fatal("negative think time must be a named error")
		}
		if _, err := ClosedLoop(nil, 1); err == nil || !containsStr(err.Error(), "request") {
			t.Fatal("empty closed-loop universe must be a named error")
		}
	})
	t.Run("trace", func(t *testing.T) {
		if _, err := TraceWorkload(nil, testBinder(t)); err == nil {
			t.Fatal("empty trace must be rejected")
		}
		if _, err := TraceWorkload([]TraceEntry{{ID: "x", Tokens: 0}}, testBinder(t)); err == nil {
			t.Fatal("zero-token trace entry must be rejected")
		}
	})
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func inf() float64  { return math.Inf(1) }
func nanF() float64 { return math.NaN() }
