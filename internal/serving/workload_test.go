package serving

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/parallel"
	"repro/internal/sparsity"
)

// slotted builds n single-window DIP requests with per-request SLOs.
func slotted(t *testing.T, n int, slo func(i int) SLO) []Request {
	t.Helper()
	reqs := requests(t, n,
		func(int) sparsity.Scheme { return sparsity.NewDIP(0.5) },
		func(int) int { return 1 })
	for i := range reqs {
		reqs[i].SLO = slo(i)
	}
	return reqs
}

// admitOrder maps admission rank -> submission index.
func admitOrder(rep *Report) []int {
	out := make([]int, len(rep.Sessions))
	for _, sm := range rep.Sessions {
		out[sm.AdmitRank] = sm.Index
	}
	return out
}

// Poisson arrivals must be seeded (same seed ⇒ same trace, different seed ⇒
// different trace), spread over time (nonzero arrival ticks), and induce
// arrival-dependent queueing that the report surfaces in simulated ticks.
func TestPoissonArrivalsAreSeededAndSpread(t *testing.T) {
	trained(t)
	run := func(seed uint64) *Report {
		reqs := slotted(t, 6, func(int) SLO { return SLO{} })
		w, err := PoissonArrivals(reqs, 0.05, seed)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(zoo.m, Config{System: sysCfg(), Arb: ArbFairShare, MaxActive: 2, Quantum: 8, Seed: 1}, w)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b, c := run(3), run(3), run(4)
	lastArrive := 0
	for i := range a.Sessions {
		if a.Sessions[i].ArriveTick != b.Sessions[i].ArriveTick ||
			a.Sessions[i].Point != b.Sessions[i].Point {
			t.Fatalf("same seed, different run:\n%+v\n%+v", a.Sessions[i], b.Sessions[i])
		}
		if a.Sessions[i].ArriveTick > lastArrive {
			lastArrive = a.Sessions[i].ArriveTick
		}
		if sm := a.Sessions[i]; sm.AdmitTick < sm.ArriveTick || sm.QueueTicks != sm.AdmitTick-sm.ArriveTick {
			t.Fatalf("inconsistent simulated timeline: %+v", sm)
		}
	}
	if lastArrive == 0 {
		t.Fatal("poisson arrivals all at tick 0 — not an open-loop trace")
	}
	diff := false
	for i := range a.Sessions {
		diff = diff || a.Sessions[i].ArriveTick != c.Sessions[i].ArriveTick
	}
	if !diff {
		t.Fatal("seeds 3 and 4 produced identical arrival traces")
	}
	if _, err := PoissonArrivals(nil, 0, 1); err == nil {
		t.Fatal("non-positive rate must be rejected")
	}
}

// The acceptance determinism test: Poisson arrivals scheduled EDF against
// the genuinely shared cache must be bit-identical across worker counts —
// per-session outputs, queueing delays, SLO verdicts, and cache statistics.
// Run under -race this also covers the parallel step phase.
func TestPoissonEDFDeterministicAcrossWorkerCounts(t *testing.T) {
	trained(t)
	defer parallel.SetProcs(parallel.Procs())
	run := func() (*Report, cache.Stats, int) {
		reqs := slotted(t, 6, func(i int) SLO {
			return SLO{Class: []string{"interactive", "batch"}[i%2], Priority: 1 - i%2, DeadlineTicks: 10 + 5*i}
		})
		w, err := PoissonArrivals(reqs, 0.2, 17)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(zoo.m, Config{
			System: sysCfg(), Arb: ArbShared, Sched: EDF(), MaxActive: 3, Quantum: 4, Seed: 9,
		}, w)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep, e.SharedCache().TotalStats(), e.SharedCache().Occupancy()
	}
	parallel.SetProcs(1)
	repSer, statsSer, occSer := run()
	parallel.SetProcs(8)
	repPar, statsPar, occPar := run()
	if statsSer != statsPar || occSer != occPar {
		t.Fatalf("shared cache depends on worker count: %+v/%d vs %+v/%d", statsSer, occSer, statsPar, occPar)
	}
	for i := range repSer.Sessions {
		a, b := repSer.Sessions[i], repPar.Sessions[i]
		if a != b {
			t.Fatalf("session %d not deterministic:\nserial   %+v\nparallel %+v", i, a, b)
		}
	}
	if repSer.SLOAttainRate != repPar.SLOAttainRate || repSer.QueueP99 != repPar.QueueP99 {
		t.Fatalf("aggregates differ: %+v vs %+v", repSer, repPar)
	}
	if occSer == 0 || statsSer.Hits == 0 {
		t.Fatalf("shared cache never filled (occupancy %d, stats %+v)", occSer, statsSer)
	}
}

// A closed loop with one user and positive think time is a strict sequence:
// request k+1 arrives exactly thinkTicks after request k retires, and the
// queue never forms.
func TestClosedLoopThinkTime(t *testing.T) {
	trained(t)
	reqs := slotted(t, 3, func(int) SLO { return SLO{} })
	const think = 5
	w, err := ClosedLoop([][]Request{reqs}, think)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(zoo.m, Config{System: sysCfg(), Arb: ArbFairShare, MaxActive: 2, Quantum: 8, Seed: 1}, w)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sessions) != 3 {
		t.Fatalf("%d sessions, want 3", len(rep.Sessions))
	}
	for i, sm := range rep.Sessions {
		if i > 0 {
			prev := rep.Sessions[i-1]
			if sm.ArriveTick != prev.FinishTick+think {
				t.Fatalf("request %d arrived at %d, want finish(%d)+think(%d)", i, sm.ArriveTick, prev.FinishTick, think)
			}
		}
		if sm.QueueTicks != 0 {
			t.Fatalf("single-user closed loop queued: %+v", sm)
		}
	}
	if _, err := ClosedLoop(nil, 0); err == nil {
		t.Fatal("empty closed loop must be rejected")
	}
	if _, err := ClosedLoop([][]Request{reqs}, -1); err == nil {
		t.Fatal("negative think time must be rejected")
	}
}

// Scheduler policies, exercised with one batch slot so admission order is
// fully observable: priority admits by SLO priority, EDF by absolute
// deadline, and FCFS by the seeded arrival order regardless of either.
func TestSchedulerOrdering(t *testing.T) {
	trained(t)
	run := func(sched Scheduler, slo func(i int) SLO) *Report {
		reqs := slotted(t, 4, slo)
		e, err := NewEngine(zoo.m, Config{
			System: sysCfg(), Arb: ArbFairShare, Sched: sched, MaxActive: 1, Quantum: 16, Seed: 6,
		}, FixedBatch(reqs))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	// Priorities 0..3 ascending by submission index. All four requests are
	// queued before the first admission scan, so the seeded shuffle only
	// breaks ties and priority admits 3,2,1,0.
	prio := run(Priority(), func(i int) SLO { return SLO{Priority: i} })
	if got := admitOrder(prio); got[0] != 3 || got[1] != 2 || got[2] != 1 || got[3] != 0 {
		t.Fatalf("priority admission order %v, want [3 2 1 0]", got)
	}
	// Deadlines descending by submission index: EDF admits 3,2,1,0.
	edf := run(EDF(), func(i int) SLO { return SLO{DeadlineTicks: 100 - 10*i} })
	if got := admitOrder(edf); got[0] != 3 || got[1] != 2 || got[2] != 1 || got[3] != 0 {
		t.Fatalf("EDF admission order %v, want [3 2 1 0]", got)
	}
	// EDF ranks deadline-less requests after every real deadline.
	mixed := run(EDF(), func(i int) SLO {
		if i == 0 {
			return SLO{}
		}
		return SLO{DeadlineTicks: 10 * i}
	})
	if got := admitOrder(mixed); got[len(got)-1] != 0 {
		t.Fatalf("EDF should admit the deadline-less request last, got %v", got)
	}
	// FCFS ignores both and follows the seeded arrival shuffle: identical to
	// a run with no SLOs at all.
	fcfsSLO := run(FCFS(), func(i int) SLO { return SLO{Priority: i, DeadlineTicks: 100 - 10*i} })
	fcfsPlain := run(FCFS(), func(int) SLO { return SLO{} })
	for i := range fcfsSLO.Sessions {
		if fcfsSLO.Sessions[i].AdmitRank != fcfsPlain.Sessions[i].AdmitRank {
			t.Fatalf("FCFS admission depends on SLO: %+v vs %+v", fcfsSLO.Sessions[i], fcfsPlain.Sessions[i])
		}
	}
}

// SLO attainment: impossible deadlines miss, generous ones hold, and the
// report's class breakdown separates the two.
func TestSLOAttainmentPerClass(t *testing.T) {
	trained(t)
	reqs := slotted(t, 4, func(i int) SLO {
		if i%2 == 0 {
			return SLO{Class: "tight", DeadlineTicks: 1}
		}
		return SLO{Class: "loose", DeadlineTicks: 10000}
	})
	e, err := NewEngine(zoo.m, Config{System: sysCfg(), Arb: ArbFairShare, MaxActive: 1, Quantum: 4, Seed: 2}, FixedBatch(reqs))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Classes) != 2 || rep.Classes[0].Class != "loose" || rep.Classes[1].Class != "tight" {
		t.Fatalf("class breakdown wrong: %+v", rep.Classes)
	}
	loose, tight := rep.Classes[0], rep.Classes[1]
	if loose.AttainRate != 1 || loose.Deadlined != 2 || loose.Attained != 2 {
		t.Fatalf("generous deadlines should all hold: %+v", loose)
	}
	// With one slot and a 1-tick deadline, at most the first admitted tight
	// session could conceivably attain; the queued one cannot.
	if tight.Attained >= tight.Deadlined {
		t.Fatalf("impossible deadlines should miss: %+v", tight)
	}
	want := attainRate(loose.Attained+tight.Attained, 4)
	if rep.SLOAttainRate != want {
		t.Fatalf("overall attainment %v, want %v", rep.SLOAttainRate, want)
	}
	for _, sm := range rep.Sessions {
		if sm.SLO.Class == "loose" && !sm.Attained {
			t.Fatalf("loose session missed: %+v", sm)
		}
		if sm.TurnaroundTicks != sm.FinishTick-sm.ArriveTick {
			t.Fatalf("turnaround mismatch: %+v", sm)
		}
	}
	// Sessions without deadlines are vacuously attained and excluded from
	// the rate.
	plain, err := NewEngine(zoo.m, Config{System: sysCfg(), Arb: ArbFairShare, Seed: 2},
		FixedBatch(slotted(t, 2, func(int) SLO { return SLO{} })))
	if err != nil {
		t.Fatal(err)
	}
	prep, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	if prep.SLOAttainRate != 1 || len(prep.Classes) != 1 || prep.Classes[0].Class != "default" {
		t.Fatalf("deadline-less run should be vacuously attained under 'default': %+v", prep.Classes)
	}
}

func TestParseSchedulerAndWorkloadNames(t *testing.T) {
	for _, s := range Schedulers() {
		got, err := ParseScheduler(s.Name())
		if err != nil || got.Name() != s.Name() {
			t.Fatalf("round-trip %v: got %v err %v", s.Name(), got, err)
		}
	}
	if _, err := ParseScheduler("lifo"); err == nil {
		t.Fatal("unknown scheduler name must error")
	}
	names := strings.Join(WorkloadNames(), ",")
	if names != "fixed,poisson,closed,trace" {
		t.Fatalf("workload names %q", names)
	}
}
