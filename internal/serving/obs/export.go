package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Exporter format registry — the names dipbench's -events-format accepts.
const (
	// FormatJSONL writes one JSON object per event, in emission order —
	// grep/jq-friendly, and byte-stable for a fixed seed (the golden-file
	// tests pin exact bytes).
	FormatJSONL = "jsonl"
	// FormatChrome writes Chrome trace-event JSON loadable in Perfetto or
	// chrome://tracing: one track per batch slot with spans for session
	// residency, instant markers for faults/preemptions/retries, and a
	// batch-width counter track.
	FormatChrome = "chrome"
)

// FormatNames lists the registered exporter formats.
func FormatNames() []string { return []string{FormatJSONL, FormatChrome} }

// ParseFormat validates an exporter-format name, echoing the registry in
// the error like the serving parsers do.
func ParseFormat(name string) (string, error) {
	for _, f := range FormatNames() {
		if name == f {
			return f, nil
		}
	}
	return "", fmt.Errorf("obs: unknown event-log format %q (known: %v)", name, FormatNames())
}

// FormatExt returns the file extension (with dot) conventionally used for
// a format's output.
func FormatExt(format string) string {
	if format == FormatChrome {
		return ".json"
	}
	return ".jsonl"
}

// Export writes the event log in the named format.
func Export(w io.Writer, format string, events []Event) error {
	f, err := ParseFormat(format)
	if err != nil {
		return err
	}
	if f == FormatChrome {
		return WriteChromeTrace(w, events)
	}
	return WriteJSONL(w, events)
}

// WriteJSONL writes one JSON object per line in emission order. Every
// field is an integer or a registry string, so for a fixed seed the bytes
// are identical across platforms, worker counts, and decode paths.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(data); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// traceEvent is one Chrome trace-event record (the subset of the spec the
// exporter uses: B/E duration pairs, i instants, C counters, M metadata).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container format; displayTimeUnit keeps
// the viewer's axis readable (1 simulated tick = 1 ms on screen).
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

const tracePid = 1

// traceTs maps a simulated instant to microseconds for the viewer: one
// tick spans 1000 µs, with sub-quantum finish offsets nudging events
// inside it so a mid-tick drain renders mid-tick.
func traceTs(tick, subStep int) int64 {
	return int64(tick)*1000 + int64(subStep)
}

// WriteChromeTrace renders the event log as Chrome trace-event JSON: tid 0
// is the engine's control track (batch-width counter, shed/degrade
// instants), tid s+1 is batch slot s. A session's residency is a span from
// its admit/resume to its suspend/finish; because slots compact as
// neighbors retire, the span closes on the track it opened on even if the
// engine has since renumbered the slot.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := chromeTrace{DisplayTimeUnit: "ms"}
	add := func(te traceEvent) {
		te.Pid = tracePid
		out.TraceEvents = append(out.TraceEvents, te)
	}
	add(traceEvent{Name: "process_name", Ph: "M", Args: map[string]any{"name": "serving engine"}})
	add(traceEvent{Name: "thread_name", Ph: "M", Tid: 0, Args: map[string]any{"name": "engine"}})
	maxSlot := -1
	for _, ev := range events {
		if ev.Slot > maxSlot {
			maxSlot = ev.Slot
		}
	}
	for s := 0; s <= maxSlot; s++ {
		add(traceEvent{Name: "thread_name", Ph: "M", Tid: s + 1, Args: map[string]any{"name": "slot " + strconv.Itoa(s)}})
	}
	openTid := make(map[string]int) // session → tid its residency span opened on
	for _, ev := range events {
		ts := traceTs(ev.Tick, ev.SubStep)
		switch ev.Kind {
		case KindAdmit, KindResume:
			tid := ev.Slot + 1
			openTid[ev.Session] = tid
			add(traceEvent{Name: ev.Session, Ph: "B", Ts: ts, Tid: tid,
				Args: map[string]any{"kind": ev.Kind.String(), "detail": ev.Detail}})
		case KindSuspend, KindFinish:
			tid, open := openTid[ev.Session]
			add(traceEvent{Name: ev.Kind.String() + ":" + ev.Detail, Ph: "i", Ts: ts, Tid: ev.Slot + 1, S: "t",
				Args: map[string]any{"session": ev.Session}})
			if open {
				delete(openTid, ev.Session)
				add(traceEvent{Name: ev.Session, Ph: "E", Ts: ts, Tid: tid})
			}
		case KindStepBatch:
			add(traceEvent{Name: "batch width", Ph: "C", Ts: ts, Tid: 0,
				Args: map[string]any{"width": detailInt(ev.Detail, "width=")}})
		case KindFault, KindRetry, KindGrant, KindRelease:
			add(traceEvent{Name: ev.Kind.String() + ":" + ev.Detail, Ph: "i", Ts: ts, Tid: ev.Slot + 1, S: "t",
				Args: map[string]any{"session": ev.Session}})
		case KindArrive, KindShed, KindDegrade:
			add(traceEvent{Name: ev.Kind.String() + ":" + ev.Session, Ph: "i", Ts: ts, Tid: 0, S: "t",
				Args: map[string]any{"detail": ev.Detail}})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// detailInt extracts the integer payload of a "key=N" detail (0 if absent
// or malformed — the viewer shows a flat counter rather than erroring).
func detailInt(detail, prefix string) int {
	v, ok := strings.CutPrefix(detail, prefix)
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0
	}
	return n
}
