package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTrackerTrimsTheTail(t *testing.T) {
	tr := NewTracker(4)
	tr.Observe(0, 10)
	tr.Observe(1, 5)
	if got := tr.Sum(1); got != 15 {
		t.Fatalf("Sum(1) = %d, want 15", got)
	}
	// Window (0, 4]: tick 0 has aged out, tick 1 survives.
	if got := tr.Sum(4); got != 5 {
		t.Fatalf("Sum(4) = %d, want 5 (tick 0 outside the window)", got)
	}
	// Far future: every bucket is stale even though the ring still holds
	// the old sums.
	if got := tr.Sum(100); got != 0 {
		t.Fatalf("Sum(100) = %d, want 0", got)
	}
}

func TestTrackerRingReusesBucketsAcrossWraps(t *testing.T) {
	tr := NewTracker(3)
	tr.Observe(0, 7)
	tr.Observe(3, 2) // same ring index as tick 0: must reset, not add
	if got := tr.Sum(3); got != 2 {
		t.Fatalf("Sum(3) = %d, want 2 (tick 0's bucket must have been reset)", got)
	}
	tr.Observe(3, 2)
	if got := tr.Sum(3); got != 4 {
		t.Fatalf("repeat observations at one tick must accumulate: Sum(3) = %d, want 4", got)
	}
}

func TestTrackerSpanClampsToElapsedTicks(t *testing.T) {
	tr := NewTracker(32)
	if got := tr.Span(3); got != 4 {
		t.Fatalf("Span(3) = %d, want 4", got)
	}
	if got := tr.Span(100); got != 32 {
		t.Fatalf("Span(100) = %d, want 32", got)
	}
}

func TestRecorderCountsFollowKindAndDetail(t *testing.T) {
	r := NewRecorder(Config{Window: 8})
	for _, ev := range []Event{
		{Tick: 0, Slot: -1, Kind: KindArrive, Session: "a"},
		{Tick: 0, Slot: -1, Kind: KindShed, Session: "b"},
		{Tick: 0, Slot: 0, Kind: KindAdmit, Session: "a"},
		{Tick: 0, Slot: 0, Kind: KindGrant, Session: "a", Detail: "share=1"},
		{Tick: 1, Slot: 0, Kind: KindFault, Session: "a", Detail: DetailStep},
		{Tick: 1, Slot: 0, Kind: KindSuspend, Session: "a", Detail: DetailFault},
		{Tick: 1, Slot: 0, Kind: KindRetry, Session: "a", Detail: "attempt=2 backoff=1"},
		{Tick: 2, Slot: 0, Kind: KindResume, Session: "a", Detail: DetailFault},
		{Tick: 3, Slot: -1, Kind: KindStepBatch, Detail: "width=1"},
		{Tick: 4, SubStep: 3, Slot: 0, Kind: KindFinish, Session: "a", Detail: DetailOK},
	} {
		r.Emit(ev)
	}
	c := r.Counts()
	want := Counts{Arrivals: 1, ShedArrivals: 1, Admits: 1, Grants: 1,
		StepFaults: 1, FaultSuspends: 1, Retries: 1, Resumes: 1, StepTicks: 1, FinishedOK: 1}
	if c != want {
		t.Fatalf("Counts = %+v, want %+v", c, want)
	}
	if len(r.Events()) != 10 {
		t.Fatalf("event log holds %d events, want 10", len(r.Events()))
	}
}

func TestSnapshotRatesUseEffectiveWindow(t *testing.T) {
	r := NewRecorder(Config{Window: 16})
	r.ObserveDecode(0, 8, 6, 2)
	r.ObserveDecode(1, 8, 7, 1)
	r.ObserveQueue(0, 2)
	r.ObserveQueue(1, 4)
	r.ObserveSlack(0, "interactive", 10)
	r.ObserveSlack(1, "interactive", 8)
	r.ObserveGood(1, 16)
	s := r.Snapshot(1)
	if s.TokensPerTick != 8 {
		t.Errorf("TokensPerTick = %v, want 8 (16 tokens over 2 elapsed ticks)", s.TokensPerTick)
	}
	if s.GoodTokensPerTick != 8 {
		t.Errorf("GoodTokensPerTick = %v, want 8", s.GoodTokensPerTick)
	}
	if s.MeanQueueDepth != 3 {
		t.Errorf("MeanQueueDepth = %v, want 3", s.MeanQueueDepth)
	}
	if want := 13.0 / 16.0; s.HitRate != want {
		t.Errorf("HitRate = %v, want %v", s.HitRate, want)
	}
	if len(s.ClassSlack) != 1 || s.ClassSlack[0].Class != "interactive" || s.ClassSlack[0].MeanSlackTicks != 9 {
		t.Errorf("ClassSlack = %+v, want one interactive entry at mean 9", s.ClassSlack)
	}
}

func TestBindRejectsRecorderReuse(t *testing.T) {
	r := NewRecorder(Config{})
	if err := r.Bind(); err != nil {
		t.Fatalf("first Bind: %v", err)
	}
	if err := r.Bind(); err == nil {
		t.Fatal("second Bind succeeded; a recorder must be single-run")
	}
}

func TestFormatRegistryRoundTrips(t *testing.T) {
	for _, name := range FormatNames() {
		got, err := ParseFormat(name)
		if err != nil || got != name {
			t.Errorf("format %q does not round-trip: %v", name, err)
		}
	}
	if _, err := ParseFormat("nope"); err == nil || !strings.Contains(err.Error(), FormatJSONL) {
		t.Errorf("unknown format error does not list known names: %v", err)
	}
}

func TestWriteJSONLIsParseableAndOrdered(t *testing.T) {
	events := []Event{
		{Tick: 0, Slot: -1, Kind: KindArrive, Session: "a", Detail: "default"},
		{Tick: 2, SubStep: 5, Slot: 0, Kind: KindFinish, Session: "a", Detail: DetailOK},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	var got struct {
		Tick    int    `json:"tick"`
		SubStep int    `json:"substep"`
		Slot    int    `json:"slot"`
		Kind    string `json:"kind"`
		Session string `json:"session"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &got); err != nil {
		t.Fatal(err)
	}
	if got.Tick != 2 || got.SubStep != 5 || got.Slot != 0 || got.Kind != "finish" || got.Session != "a" {
		t.Fatalf("second line decoded to %+v", got)
	}
}

func TestChromeTraceBalancesResidencySpans(t *testing.T) {
	events := []Event{
		{Tick: 0, Slot: -1, Kind: KindArrive, Session: "a"},
		{Tick: 0, Slot: 0, Kind: KindAdmit, Session: "a"},
		{Tick: 0, Slot: 1, Kind: KindAdmit, Session: "b"},
		{Tick: 1, Slot: -1, Kind: KindStepBatch, Detail: "width=2"},
		{Tick: 2, Slot: 1, Kind: KindSuspend, Session: "b", Detail: DetailPreempt},
		{Tick: 2, Slot: 1, Kind: KindAdmit, Session: "c"},
		{Tick: 3, SubStep: 4, Slot: 0, Kind: KindFinish, Session: "a", Detail: DetailOK},
		// "a" retired slot 0, so "b" resumes there — a different track from
		// the one its first span lived on.
		{Tick: 3, Slot: 0, Kind: KindResume, Session: "b", Detail: DetailPreempt},
		{Tick: 4, SubStep: 2, Slot: 0, Kind: KindFinish, Session: "b", Detail: DetailOK},
		{Tick: 4, Slot: 1, Kind: KindFinish, Session: "c", Detail: DetailOK},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatal(err)
	}
	open := make(map[int][]string) // tid → span stack
	counters := 0
	for _, te := range trace.TraceEvents {
		switch te.Ph {
		case "B":
			open[te.Tid] = append(open[te.Tid], te.Name)
		case "E":
			stack := open[te.Tid]
			if len(stack) == 0 {
				t.Fatalf("E event on tid %d with no open span", te.Tid)
			}
			open[te.Tid] = stack[:len(stack)-1]
		case "C":
			counters++
		}
	}
	for tid, stack := range open {
		if len(stack) > 0 {
			t.Errorf("tid %d left spans open: %v", tid, stack)
		}
	}
	if counters != 1 {
		t.Errorf("emitted %d batch-width counter events, want 1", counters)
	}
}
