// Package obs is the serving engine's deterministic observability layer: a
// structured event bus on the simulated tick clock plus tick-bucketed
// moving-window telemetry.
//
// The engine emits one Event per control-plane decision — arrivals,
// admission, suspensions, faults, retries, grants, releases, per-tick batch
// steps and shared-cache commits, and terminal finishes — always from the
// serial engine loop, never from inside a parallel decode phase. Event
// order is therefore the engine loop's own deterministic order: for a fixed
// seed the full event log is bit-identical across runs, worker counts, and
// the fused/unfused decode paths, so a trace file is a reproducible
// artifact, not a sample.
//
// On top of the bus, a Recorder keeps moving-window trackers (throughput,
// goodput, queue depth, cache hit rate, per-class SLO slack) with windows
// measured in simulated ticks, exposed through Snapshot — the observed-stats
// substrate the adaptive arbiter and a future /metrics endpoint consume.
// Exporters serialize the event log as JSONL or as Chrome trace-event JSON
// (see export.go).
//
// A nil *Recorder is the disabled observer: the engine guards every
// emission site on it, so tracing off adds zero allocations and no detail
// formatting to the tick hot path.
package obs

import (
	"fmt"
	"sort"
)

// Kind classifies an engine decision.
type Kind int

const (
	// KindArrive: a request arrived from the workload (detail: SLO class).
	KindArrive Kind = iota
	// KindShed: an arrival was rejected by admission control at the door.
	KindShed
	// KindDegrade: a queued best-effort entry was shed by graceful
	// degradation under sustained pressure.
	KindDegrade
	// KindAdmit: a fresh queue entry was admitted to a slot (detail: class).
	KindAdmit
	// KindResume: a suspended session was re-placed into a slot (detail:
	// the suspension cause it returns from — preempt, fault, or dip).
	KindResume
	// KindGrant: the arbiter granted a cache share (detail: "share=F").
	KindGrant
	// KindRelease: a partitioned cache grant or greedy claim was released.
	KindRelease
	// KindSuspend: a running session left its slot with its stream retained
	// (detail: preempt, fault, dip, or migrate — the latter emitted by the
	// source node when a cluster moves the session elsewhere; Slot is -1,
	// the session was already parked in the queue).
	KindSuspend
	// KindFault: an injected fault landed on a running session (detail:
	// step, revoke, or cancel).
	KindFault
	// KindRetry: a faulted session was granted a re-placement (detail:
	// "attempt=N backoff=B").
	KindRetry
	// KindStepBatch: the engine advanced the active batch one tick
	// (detail: "width=N"; Slot is -1 — a batch-level event).
	KindStepBatch
	// KindCommit: the tick's buffered shared-cache accesses were committed
	// in slot order (ArbShared only; detail: "width=N").
	KindCommit
	// KindFinish: a session reached its terminal state (detail: the
	// Outcome — ok, failed, or cancelled; SubStep carries the 1-based
	// sub-quantum drain step for ok finishes).
	KindFinish
	// KindHeartbeatMiss: the cluster's failure detector saw no heartbeat
	// from this node at an executed tick (Slot is -1 — a node-level event,
	// like every detector kind below).
	KindHeartbeatMiss
	// KindSuspect: consecutive misses crossed the suspicion threshold; the
	// router stops preferring the node (detail: DetailSuspect).
	KindSuspect
	// KindConfirm: misses crossed the confirmation threshold; the node is
	// declared down and its work evacuates (detail: DetailDown; Session
	// carries "lag=N" when the node was genuinely dead — the measured
	// detection lag in ticks).
	KindConfirm
	// KindRejoin: a down node's heartbeat returned (detail:
	// DetailRejoining — warm-up probation begins) or its probation ended
	// (detail: DetailHealthy — full candidate again).
	KindRejoin
	// KindStrand: the router placed a request on a node that was already
	// dead but not yet confirmed — the request is stranded until the
	// detector confirms and re-routes it with backoff.
	KindStrand

	numKinds
)

var kindNames = [numKinds]string{
	"arrive", "shed", "degrade", "admit", "resume", "grant", "release",
	"suspend", "fault", "retry", "step-batch", "commit", "finish",
	"hb-miss", "suspect", "confirm", "rejoin", "strand",
}

func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// MarshalJSON serializes the kind as its registry name, so JSONL logs and
// Chrome traces are self-describing.
func (k Kind) MarshalJSON() ([]byte, error) {
	if k < 0 || k >= numKinds {
		return nil, fmt.Errorf("obs: cannot marshal unknown event kind %d", int(k))
	}
	return []byte(`"` + kindNames[k] + `"`), nil
}

// Detail constants for the kinds whose detail field is an enumeration; the
// Recorder's aggregate Counts switch on these.
const (
	DetailPreempt   = "preempt"
	DetailFault     = "fault"
	DetailDip       = "dip"
	DetailMigrate   = "migrate"
	DetailStep      = "step"
	DetailRevoke    = "revoke"
	DetailCancel    = "cancel"
	DetailOK        = "ok"
	DetailFailed    = "failed"
	DetailCancelled = "cancelled"
	DetailHealthy   = "healthy"
	DetailSuspect   = "suspect"
	DetailDown      = "down"
	DetailRejoining = "rejoining"
)

// DetailNames lists every enumerated Detail value, in declaration order —
// the registry keep-in-sync tests check emitters (e.g. the cluster's
// health-state names) against.
func DetailNames() []string {
	return []string{
		DetailPreempt, DetailFault, DetailDip, DetailMigrate,
		DetailStep, DetailRevoke, DetailCancel,
		DetailOK, DetailFailed, DetailCancelled,
		DetailHealthy, DetailSuspect, DetailDown, DetailRejoining,
	}
}

// Event is one engine decision on the simulated tick clock.
type Event struct {
	// Tick is the simulated tick the decision was made on. SubStep is the
	// 1-based sub-quantum offset within the tick where one is defined
	// (finish events); 0 means tick granularity.
	Tick    int `json:"tick"`
	SubStep int `json:"substep,omitempty"`
	// Node identifies the engine that emitted the event in a multi-node
	// merge (see MergeEvents). Single-engine logs leave it 0, and the
	// omitempty keeps their serialized form unchanged.
	Node int `json:"node,omitempty"`
	// Slot is the batch slot the event concerns at the time of the event
	// (slots compact as sessions retire), or -1 for engine-level events
	// (arrivals, shedding, batch steps, commits).
	Slot int `json:"slot"`
	// Kind classifies the decision; Session names the request it concerns
	// ("" for batch-level events); Detail carries the kind-specific
	// qualifier documented on each Kind constant.
	Kind    Kind   `json:"kind"`
	Session string `json:"session,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// Counts aggregates the event log by kind (and detail, where the detail is
// an enumeration). The serving report reconciles these against its own
// counters — see serving.Report.ReconcileObs — so silent metrics drift
// between the event stream and the aggregate report fails loudly.
type Counts struct {
	Arrivals      int `json:"arrivals"`
	ShedArrivals  int `json:"shed_arrivals"`
	Degraded      int `json:"degraded"`
	Admits        int `json:"admits"`
	Resumes       int `json:"resumes"`
	Grants        int `json:"grants"`
	Releases      int `json:"releases"`
	Preemptions   int `json:"preemptions"`
	FaultSuspends int `json:"fault_suspends"`
	DipParks      int `json:"dip_parks"`
	Migrations    int `json:"migrations"`
	StepFaults    int `json:"step_faults"`
	Revocations   int `json:"revocations"`
	Cancellations int `json:"cancellations"`
	Retries       int `json:"retries"`
	StepTicks     int `json:"step_ticks"`
	Commits       int `json:"commits"`
	FinishedOK    int `json:"finished_ok"`
	Failed        int `json:"failed"`
	Cancelled     int `json:"cancelled"`
	// Failure-detector kinds (cluster runs only; zero for single engines).
	// Rejoins counts probation starts (DetailRejoining), not probation ends.
	HeartbeatMisses int `json:"heartbeat_misses,omitempty"`
	Suspects        int `json:"suspects,omitempty"`
	Confirms        int `json:"confirms,omitempty"`
	Rejoins         int `json:"rejoins,omitempty"`
	Stranded        int `json:"stranded,omitempty"`
}

// Add accumulates another recorder's counts — the cluster rollup merging
// per-node tallies into one cluster-wide Counts.
func (c *Counts) Add(o Counts) {
	c.Arrivals += o.Arrivals
	c.ShedArrivals += o.ShedArrivals
	c.Degraded += o.Degraded
	c.Admits += o.Admits
	c.Resumes += o.Resumes
	c.Grants += o.Grants
	c.Releases += o.Releases
	c.Preemptions += o.Preemptions
	c.FaultSuspends += o.FaultSuspends
	c.DipParks += o.DipParks
	c.Migrations += o.Migrations
	c.StepFaults += o.StepFaults
	c.Revocations += o.Revocations
	c.Cancellations += o.Cancellations
	c.Retries += o.Retries
	c.StepTicks += o.StepTicks
	c.Commits += o.Commits
	c.FinishedOK += o.FinishedOK
	c.Failed += o.Failed
	c.Cancelled += o.Cancelled
	c.HeartbeatMisses += o.HeartbeatMisses
	c.Suspects += o.Suspects
	c.Confirms += o.Confirms
	c.Rejoins += o.Rejoins
	c.Stranded += o.Stranded
}

// ClassSlack is one SLO class's observed deadline slack over the window.
type ClassSlack struct {
	Class string `json:"class"`
	// MeanSlackTicks averages (deadline − now) over every active deadlined
	// session-tick observed in the window; negative means the class is
	// running past its deadlines.
	MeanSlackTicks float64 `json:"mean_slack_ticks"`
}

// Snapshot is the moving-window view at a tick — every field derives from
// simulated-clock observations, so snapshots are bit-identical across
// worker counts and decode paths.
type Snapshot struct {
	// Tick is the snapshot instant; Window the configured width in ticks.
	// Rates divide by the effective window min(Window, Tick+1), so early
	// snapshots are not diluted by ticks that never happened.
	Tick   int `json:"tick"`
	Window int `json:"window"`
	// TokensPerTick is decoded throughput over the window (all sessions,
	// including work later discarded); GoodTokensPerTick counts only tokens
	// of sessions that finished OK, credited at their finish tick.
	TokensPerTick     float64 `json:"tokens_per_tick"`
	GoodTokensPerTick float64 `json:"good_tokens_per_tick"`
	// ArrivalsPerTick and FinishesPerTick are workload flow rates (finishes
	// count every terminal outcome).
	ArrivalsPerTick float64 `json:"arrivals_per_tick"`
	FinishesPerTick float64 `json:"finishes_per_tick"`
	// MeanQueueDepth averages the admission-queue depth at decode time over
	// the window; ticks the engine fast-forwarded past count as empty.
	MeanQueueDepth float64 `json:"mean_queue_depth"`
	// HitRate is the window's cache hit fraction (0 with no traffic).
	HitRate float64 `json:"hit_rate"`
	// ClassSlack breaks observed SLO slack down per class, sorted by label;
	// classes with no deadlined session-ticks in the window are omitted.
	ClassSlack []ClassSlack `json:"class_slack,omitempty"`
	// Counts aggregates the full event log since the start of the run.
	Counts Counts `json:"counts"`
}

// DefaultWindow is the moving-window width, in simulated ticks, when the
// Config leaves it zero.
const DefaultWindow = 32

// Config tunes a Recorder.
type Config struct {
	// Window is the moving-window width in simulated ticks (0 = the
	// DefaultWindow, 32).
	Window int
}

// Recorder collects the event log and feeds the moving-window trackers. It
// is bound to a single engine run (NewEngine rejects reuse via Bind) and is
// not safe for concurrent use — the engine only touches it from the serial
// control loop, which is exactly what keeps the event order deterministic.
type Recorder struct {
	window int
	bound  bool

	events []Event
	counts Counts

	tokens   *Tracker
	good     *Tracker
	arrivals *Tracker
	finishes *Tracker
	queue    *Tracker
	hits     *Tracker
	misses   *Tracker

	// Per-class slack trackers (sum and observation count), with the class
	// list kept sorted so snapshots never depend on map iteration order.
	slackSum map[string]*Tracker
	slackN   map[string]*Tracker
	classes  []string
}

// NewRecorder builds a recorder; a negative window is rejected at Bind
// time via NewEngine's validation path, so it panics here to fail fast in
// direct use.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Window < 0 {
		panic(fmt.Sprintf("obs: Config.Window must be non-negative (0 = default %d), got %d", DefaultWindow, cfg.Window))
	}
	w := cfg.Window
	if w == 0 {
		w = DefaultWindow
	}
	return &Recorder{
		window:   w,
		tokens:   NewTracker(w),
		good:     NewTracker(w),
		arrivals: NewTracker(w),
		finishes: NewTracker(w),
		queue:    NewTracker(w),
		hits:     NewTracker(w),
		misses:   NewTracker(w),
		slackSum: make(map[string]*Tracker),
		slackN:   make(map[string]*Tracker),
	}
}

// Window returns the configured moving-window width in ticks.
func (r *Recorder) Window() int { return r.window }

// Bind marks the recorder as owned by one engine run. A recorder carries
// cumulative counts and an append-only log, so sharing one across engines
// would silently merge two runs' telemetry; NewEngine calls Bind and
// surfaces the error as a Config validation failure.
func (r *Recorder) Bind() error {
	if r.bound {
		return fmt.Errorf("obs: recorder already bound to an engine run; build one Recorder per run")
	}
	r.bound = true
	return nil
}

// Emit appends one event to the log and folds it into the aggregate counts
// and the arrival/finish flow trackers.
func (r *Recorder) Emit(ev Event) {
	r.events = append(r.events, ev)
	switch ev.Kind {
	case KindArrive:
		r.counts.Arrivals++
		r.arrivals.Observe(ev.Tick, 1)
	case KindShed:
		r.counts.ShedArrivals++
	case KindDegrade:
		r.counts.Degraded++
	case KindAdmit:
		r.counts.Admits++
	case KindResume:
		r.counts.Resumes++
	case KindGrant:
		r.counts.Grants++
	case KindRelease:
		r.counts.Releases++
	case KindSuspend:
		switch ev.Detail {
		case DetailPreempt:
			r.counts.Preemptions++
		case DetailFault:
			r.counts.FaultSuspends++
		case DetailDip:
			r.counts.DipParks++
		case DetailMigrate:
			r.counts.Migrations++
		}
	case KindFault:
		switch ev.Detail {
		case DetailStep:
			r.counts.StepFaults++
		case DetailRevoke:
			r.counts.Revocations++
		case DetailCancel:
			r.counts.Cancellations++
		}
	case KindRetry:
		r.counts.Retries++
	case KindStepBatch:
		r.counts.StepTicks++
	case KindCommit:
		r.counts.Commits++
	case KindFinish:
		r.finishes.Observe(ev.Tick, 1)
		switch ev.Detail {
		case DetailOK:
			r.counts.FinishedOK++
		case DetailFailed:
			r.counts.Failed++
		case DetailCancelled:
			r.counts.Cancelled++
		}
	case KindHeartbeatMiss:
		r.counts.HeartbeatMisses++
	case KindSuspect:
		r.counts.Suspects++
	case KindConfirm:
		r.counts.Confirms++
	case KindRejoin:
		if ev.Detail == DetailRejoining {
			r.counts.Rejoins++
		}
	case KindStrand:
		r.counts.Stranded++
	}
}

// ObserveDecode records one executed tick's decoded tokens and cache
// traffic deltas.
func (r *Recorder) ObserveDecode(tick int, tokens int, hits, misses int64) {
	r.tokens.Observe(tick, int64(tokens))
	r.hits.Observe(tick, hits)
	r.misses.Observe(tick, misses)
}

// ObserveGood credits a completed session's surviving tokens at its finish
// tick.
func (r *Recorder) ObserveGood(tick, tokens int) {
	r.good.Observe(tick, int64(tokens))
}

// ObserveQueue records the admission-queue depth at decode time.
func (r *Recorder) ObserveQueue(tick, depth int) {
	r.queue.Observe(tick, int64(depth))
}

// ObserveSlack records one active deadlined session's remaining slack
// (deadline − now, in ticks; negative past the deadline) under its class.
func (r *Recorder) ObserveSlack(tick int, class string, slackTicks int) {
	sum, ok := r.slackSum[class]
	if !ok {
		sum = NewTracker(r.window)
		n := NewTracker(r.window)
		r.slackSum[class], r.slackN[class] = sum, n
		r.classes = append(r.classes, class)
		sort.Strings(r.classes)
	}
	sum.Observe(tick, int64(slackTicks))
	r.slackN[class].Observe(tick, 1)
}

// Events returns the full event log in emission order. The slice is the
// recorder's own backing store; callers must not mutate it.
func (r *Recorder) Events() []Event { return r.events }

// Counts returns the aggregate event counts so far.
func (r *Recorder) Counts() Counts { return r.counts }

// Snapshot assembles the moving-window view at the given tick. The engine
// takes one at drain time and attaches it to the Report; callers holding
// the recorder may also sample mid-run between ticks.
func (r *Recorder) Snapshot(tick int) Snapshot {
	s := Snapshot{Tick: tick, Window: r.window, Counts: r.counts}
	span := float64(r.tokens.Span(tick))
	if span > 0 {
		s.TokensPerTick = float64(r.tokens.Sum(tick)) / span
		s.GoodTokensPerTick = float64(r.good.Sum(tick)) / span
		s.ArrivalsPerTick = float64(r.arrivals.Sum(tick)) / span
		s.FinishesPerTick = float64(r.finishes.Sum(tick)) / span
		s.MeanQueueDepth = float64(r.queue.Sum(tick)) / span
	}
	if h, m := r.hits.Sum(tick), r.misses.Sum(tick); h+m > 0 {
		s.HitRate = float64(h) / float64(h+m)
	}
	for _, class := range r.classes {
		n := r.slackN[class].Sum(tick)
		if n == 0 {
			continue
		}
		s.ClassSlack = append(s.ClassSlack, ClassSlack{
			Class:          class,
			MeanSlackTicks: float64(r.slackSum[class].Sum(tick)) / float64(n),
		})
	}
	return s
}

// MergeEvents interleaves per-node event logs into one cluster-wide log:
// each event is stamped with its log's index as Node, and the logs are
// k-way merged by (Tick, node index) with intra-node order preserved.
// Engine logs are non-decreasing in Tick, so the merge is a total,
// deterministic order — the cluster's analogue of one engine's log, safe
// to byte-compare across worker counts.
func MergeEvents(logs ...[]Event) []Event {
	total := 0
	for _, l := range logs {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	out := make([]Event, 0, total)
	pos := make([]int, len(logs))
	for len(out) < total {
		best := -1
		for n, l := range logs {
			if pos[n] >= len(l) {
				continue
			}
			if best < 0 || l[pos[n]].Tick < logs[best][pos[best]].Tick {
				best = n
			}
		}
		ev := logs[best][pos[best]]
		ev.Node = best
		out = append(out, ev)
		pos[best]++
	}
	return out
}
