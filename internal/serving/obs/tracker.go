package obs

// Tracker is a moving-window accumulator over the simulated tick clock:
// one integer bucket per tick in a fixed ring, stamped with the tick it
// belongs to. Observe is O(1) and allocation-free; Sum walks the ring once
// and counts only buckets whose stamp falls inside (now−window, now] — the
// trimmed-tail discipline that keeps stale buckets from leaking into a
// window the clock has moved past (ticks the engine fast-forwarded over
// simply have no bucket and contribute zero).
//
// All arithmetic is integer, so tracker output is bit-identical across
// worker counts and decode paths by construction.
type Tracker struct {
	window int
	sums   []int64
	stamps []int
}

// NewTracker builds a tracker over a positive window of simulated ticks.
func NewTracker(window int) *Tracker {
	if window <= 0 {
		window = DefaultWindow
	}
	t := &Tracker{window: window, sums: make([]int64, window), stamps: make([]int, window)}
	for i := range t.stamps {
		t.stamps[i] = -1 // no tick observed yet; tick 0 must not match
	}
	return t
}

// Observe adds v into the bucket for tick, resetting the bucket first if
// the ring has wrapped past its previous owner.
func (t *Tracker) Observe(tick int, v int64) {
	i := tick % t.window
	if t.stamps[i] != tick {
		t.stamps[i] = tick
		t.sums[i] = 0
	}
	t.sums[i] += v
}

// Sum totals the buckets observed in (now−window, now].
func (t *Tracker) Sum(now int) int64 {
	lo := now - t.window
	var total int64
	for i, stamp := range t.stamps {
		if stamp > lo && stamp <= now {
			total += t.sums[i]
		}
	}
	return total
}

// Span is the effective window at now: min(window, now+1), the denominator
// for per-tick rates — a snapshot at tick 3 of a 32-tick window averages
// over the 4 ticks that exist, not 32.
func (t *Tracker) Span(now int) int {
	if now+1 < t.window {
		return now + 1
	}
	return t.window
}
