package serving

import "fmt"

// Preemptor decides whether a queued entry's scheduling pressure justifies
// suspending a running session to make room for it. The engine consults it
// every tick, after continuous batching has filled any free slots: while
// some queued entry can name a victim, the victim is suspended — its
// eval.Stream state is retained, its partitioned cache grant (and greedy
// claim) is released, and under ArbShared only the slot frees — re-queued
// with its original Order and ArriveTick, and the entry takes its slot. A
// suspended session is resumed later through the ordinary admission path
// and continues the same stream where it stopped.
//
// Implementations must be deterministic pure functions of the entry and the
// sessions' scheduling state (deadline, priority, order) — the preemption
// scan runs serially in the engine loop, so any such policy keeps reports
// bit-identical across runs and worker counts. They must also be strict:
// an entry may only displace a session it strictly outranks, so a freshly
// suspended victim can never preempt its preemptor back and every
// within-tick preemption chain terminates.
type Preemptor interface {
	// Name identifies the policy (CLI-compatible: see ParsePreemptor).
	Name() string
	// Victim returns the index into active of the most preemptable running
	// session under this policy (the loosest deadline, the lowest
	// priority, …), or -1 when nothing is ever preemptable. The choice is
	// entry-independent: the loosest victim is maximal, so an entry that
	// cannot displace it cannot displace anyone. The engine computes it
	// once per preemption round.
	Victim(active []*Session) int
	// Outranks reports whether the queued entry's pressure strictly
	// exceeds the session's — the admission test against Victim's pick.
	Outranks(qe *QueueEntry, s *Session) bool
}

// noPreempt never preempts — the engine's default, and PR 3's behavior.
type noPreempt struct{}

// NoPreempt returns the do-nothing preemptor (the default).
func NoPreempt() Preemptor { return noPreempt{} }

func (noPreempt) Name() string                        { return "none" }
func (noPreempt) Victim([]*Session) int               { return -1 }
func (noPreempt) Outranks(*QueueEntry, *Session) bool { return false }

// deadlinePreempt suspends the running session with the latest absolute
// deadline (deadline-less sessions rank loosest of all) whenever the queued
// entry's deadline is strictly earlier — EDF pressure extended from the
// admission queue into the running batch. Strict inequality means
// equal-deadline sessions never displace each other, and a preempted
// session (whose deadline is by construction later than its preemptor's)
// can only ever preempt a third, still-later session.
type deadlinePreempt struct{}

// DeadlinePreempt returns the earliest-deadline-first preemptor.
func DeadlinePreempt() Preemptor { return deadlinePreempt{} }

func (deadlinePreempt) Name() string { return "deadline" }
func (deadlinePreempt) Victim(active []*Session) int {
	v := -1
	for i, s := range active {
		// The loosest victim: latest deadline, then latest Order (the most
		// recent arrival yields first among equals).
		if v < 0 || s.deadlineTick > active[v].deadlineTick ||
			(s.deadlineTick == active[v].deadlineTick && s.order > active[v].order) {
			v = i
		}
	}
	return v
}
func (deadlinePreempt) Outranks(qe *QueueEntry, s *Session) bool {
	return qe.Deadline < s.deadlineTick
}

// priorityPreempt suspends the lowest-priority running session whenever the
// queued entry's SLO priority is strictly higher.
type priorityPreempt struct{}

// PriorityPreempt returns the strict-priority preemptor.
func PriorityPreempt() Preemptor { return priorityPreempt{} }

func (priorityPreempt) Name() string { return "prio" }
func (priorityPreempt) Victim(active []*Session) int {
	v := -1
	for i, s := range active {
		if v < 0 || s.SLO.Priority < active[v].SLO.Priority ||
			(s.SLO.Priority == active[v].SLO.Priority && s.order > active[v].order) {
			v = i
		}
	}
	return v
}
func (priorityPreempt) Outranks(qe *QueueEntry, s *Session) bool {
	return qe.Req.SLO.Priority > s.SLO.Priority
}

// Preemptors lists every built-in preemptor in declaration order.
func Preemptors() []Preemptor { return []Preemptor{NoPreempt(), DeadlinePreempt(), PriorityPreempt()} }

// ParsePreemptor maps a CLI name to its preemptor.
func ParsePreemptor(s string) (Preemptor, error) {
	for _, p := range Preemptors() {
		if p.Name() == s {
			return p, nil
		}
	}
	return nil, fmt.Errorf("serving: unknown preemptor %q (none|deadline|prio)", s)
}
