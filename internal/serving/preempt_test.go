package serving

import (
	"reflect"
	"testing"

	"repro/internal/eval"
	"repro/internal/parallel"
	"repro/internal/sparsity"
)

// preemptTrace is the canonical inversion scenario: a long best-effort
// session arrives first and hogs the only slot, then a short deadlined
// interactive request arrives one tick later. Without preemption the
// interactive request waits out the whole background stream and misses;
// with DeadlinePreempt it displaces the background session and attains.
func preemptTrace(t *testing.T) Workload {
	t.Helper()
	entries := []TraceEntry{
		{ID: "bg", Tick: 0, Tokens: 128, Start: 0, Class: "batch"},
		{ID: "urgent", Tick: 1, Tokens: 32, Start: 512, Class: "interactive", Priority: 2, DeadlineTicks: 8},
	}
	w, err := TraceWorkload(entries, testBinder(t))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// The tentpole acceptance test: on a workload where admission ordering
// alone cannot save a late deadlined arrival, DeadlinePreempt+EDF must
// strictly improve the deadlined class's attainment over NoPreempt at the
// same seed, and the report must carry the preemption accounting.
func TestDeadlinePreemptImprovesAttainment(t *testing.T) {
	trained(t)
	run := func(pre Preemptor) *Report {
		e, err := NewEngine(zoo.m, Config{
			System: sysCfg(), Arb: ArbExclusive, Sched: EDF(), Preempt: pre,
			MaxActive: 1, Quantum: 8, Seed: 11,
		}, preemptTrace(t))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := run(NoPreempt())
	pre := run(DeadlinePreempt())
	if base.Preemptions != 0 || base.Preemptor != "none" {
		t.Fatalf("NoPreempt run reports preemptions: %+v", base)
	}
	if base.SLOAttainRate != 0 {
		t.Fatalf("scenario broken: the deadlined session should miss without preemption (attain %v)", base.SLOAttainRate)
	}
	if pre.SLOAttainRate <= base.SLOAttainRate {
		t.Fatalf("DeadlinePreempt did not improve attainment: %v vs %v", pre.SLOAttainRate, base.SLOAttainRate)
	}
	if pre.Preemptions == 0 || pre.Preemptor != "deadline" {
		t.Fatalf("preempting run reports no preemptions: %+v", pre)
	}
	byID := map[string]SessionMetrics{}
	for _, sm := range pre.Sessions {
		byID[sm.ID] = sm
	}
	bg, urgent := byID["bg"], byID["urgent"]
	if bg.Preemptions == 0 || bg.ResumeDelayTicks <= 0 {
		t.Fatalf("victim accounting missing: %+v", bg)
	}
	if urgent.Preemptions != 0 || !urgent.Attained {
		t.Fatalf("urgent session should run to its deadline unpreempted: %+v", urgent)
	}
	// The victim still decodes its whole stream, after the interruption.
	if bg.Tokens != 128 || bg.FinishTick <= urgent.FinishTick {
		t.Fatalf("victim did not resume and finish after the urgent session: %+v", bg)
	}
}

// Resume fidelity: under ArbExclusive a preempted-then-resumed session
// keeps its private cache across the suspension, so its Point and traffic
// must be bit-identical to an uninterrupted solo run of the same stream —
// DIP-CA is the hard case, its masks read the cache every token.
func TestPreemptedSessionMatchesUninterruptedSolo(t *testing.T) {
	trained(t)
	e, err := NewEngine(zoo.m, Config{
		System: sysCfg(), Arb: ArbExclusive, Sched: EDF(), Preempt: DeadlinePreempt(),
		MaxActive: 1, Quantum: 8, Seed: 3,
	}, preemptCATrace(t))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Preemptions == 0 {
		t.Fatalf("scenario broken: no preemption occurred: %+v", rep)
	}
	for _, sm := range rep.Sessions {
		toks := e.reqs[sm.Index].Tokens
		solo, err := eval.SystemEvaluate(zoo.m, sparsity.NewDIPCA(0.5, 0.2), toks, sysCfg())
		if err != nil {
			t.Fatal(err)
		}
		if !pointsEqual(sm.Point, solo) {
			t.Fatalf("session %q (preemptions %d) diverged from uninterrupted solo run:\nserved %+v\nsolo   %+v",
				sm.ID, sm.Preemptions, sm.Point, solo)
		}
		if sm.Tokens != len(toks) {
			t.Fatalf("session %q decoded %d of %d tokens", sm.ID, sm.Tokens, len(toks))
		}
	}
}

// preemptCATrace is preemptTrace with the cache-aware scheme.
func preemptCATrace(t *testing.T) Workload {
	t.Helper()
	entries := []TraceEntry{
		{ID: "bg", Tick: 0, Tokens: 128, Start: 0, Scheme: "dipca", Class: "batch"},
		{ID: "urgent", Tick: 1, Tokens: 32, Start: 512, Scheme: "dipca", Class: "interactive", Priority: 2, DeadlineTicks: 8},
	}
	w, err := TraceWorkload(entries, testBinder(t))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// mixedPressureTrace staggers five DIP-CA sessions with interleaved
// deadlines and priorities so every preemptor has inversions to act on.
func mixedPressureTrace(t *testing.T) Workload {
	t.Helper()
	entries := []TraceEntry{
		{ID: "a", Tick: 0, Tokens: 96, Start: 0, Scheme: "dipca", Class: "batch"},
		{ID: "b", Tick: 0, Tokens: 96, Start: 256, Scheme: "dipca", Class: "batch", Priority: 1},
		{ID: "c", Tick: 2, Tokens: 32, Start: 512, Scheme: "dipca", Class: "interactive", Priority: 3, DeadlineTicks: 9},
		{ID: "d", Tick: 3, Tokens: 64, Start: 768, Scheme: "dipca", Class: "interactive", Priority: 2, DeadlineTicks: 30},
		{ID: "e", Tick: 4, Tokens: 32, Start: 1024, Scheme: "dipca", Class: "interactive", Priority: 3, DeadlineTicks: 12},
	}
	w, err := TraceWorkload(entries, testBinder(t))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// The determinism acceptance test: for every preemptor × arbitration ×
// fuse combination, the report must be bit-identical across worker counts
// (run under -race this also proves preemption-driven batch recomposition
// never races the shared-cache commits).
func TestPreemptionDeterministicAcrossWorkerCountsAndFuse(t *testing.T) {
	trained(t)
	defer parallel.SetProcs(parallel.Procs())
	run := func(pre Preemptor, arb ArbPolicy, noFuse bool) *Report {
		e, err := NewEngine(zoo.m, Config{
			System: sysCfg(), Arb: arb, Sched: EDF(), Preempt: pre,
			MaxActive: 2, Quantum: 4, Seed: 5, NoFuse: noFuse,
		}, mixedPressureTrace(t))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	preempted := false
	for _, pre := range Preemptors() {
		for _, arb := range Policies() {
			parallel.SetProcs(4)
			fused := stripWall(run(pre, arb, false))
			unfused := stripWall(run(pre, arb, true))
			if !reflect.DeepEqual(fused, unfused) {
				t.Fatalf("pre=%s arb=%v: fused and per-session reports diverged:\nfused   %+v\nunfused %+v",
					pre.Name(), arb, fused, unfused)
			}
			parallel.SetProcs(1)
			serial := stripWall(run(pre, arb, false))
			if !reflect.DeepEqual(fused, serial) {
				t.Fatalf("pre=%s arb=%v: report depends on worker count", pre.Name(), arb)
			}
			if pre.Name() == "none" && fused.Preemptions != 0 {
				t.Fatalf("NoPreempt preempted: %+v", fused)
			}
			preempted = preempted || fused.Preemptions > 0
		}
	}
	if !preempted {
		t.Fatal("scenario broken: no combination triggered a preemption")
	}
}

// Schedulers and preemptors compose: the preemption scan picks the
// scheduler-best entry among those able to preempt, so the report stays
// deterministic under every scheduler too.
func TestPreemptionUnderEverySchedulerIsDeterministic(t *testing.T) {
	trained(t)
	run := func(sched Scheduler) *Report {
		e, err := NewEngine(zoo.m, Config{
			System: sysCfg(), Arb: ArbShared, Sched: sched, Preempt: DeadlinePreempt(),
			MaxActive: 2, Quantum: 4, Seed: 5,
		}, mixedPressureTrace(t))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	for _, sched := range Schedulers() {
		a, b := stripWall(run(sched)), stripWall(run(sched))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("sched=%s: preempting run not reproducible", sched.Name())
		}
	}
}

// Regression: the greedy claim pool must stay clamped to [0, 1] through
// long admit/suspend/resume/retire cycles and drain back to exactly 0 when
// the last claim is released — no floating-point drift across pool
// generations.
func TestGreedyClaimPoolClampsAndDrains(t *testing.T) {
	trained(t)
	scripts := make([][]Request, 3)
	for u := range scripts {
		for k := 0; k < 4; k++ {
			i := u*4 + k
			slo := SLO{Class: "batch"}
			if i%2 == 0 {
				slo = SLO{Class: "interactive", Priority: 2, DeadlineTicks: 6}
			}
			scripts[u] = append(scripts[u], Request{
				ID:     string(rune('a'+u)) + string(rune('0'+k)),
				Scheme: sparsity.NewDIP(0.5),
				Tokens: streamFor(t, i, 1+i%2),
				SLO:    slo,
			})
		}
	}
	w, err := ClosedLoop(scripts, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(zoo.m, Config{
		System: sysCfg(), Arb: ArbGreedy, Sched: EDF(), Preempt: DeadlinePreempt(),
		MaxActive: 2, Quantum: 4, Seed: 13,
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if e.claimed != 0 || e.claimants != 0 {
		t.Fatalf("greedy pool did not drain: claimed %v, claimants %d", e.claimed, e.claimants)
	}
	for _, sm := range rep.Sessions {
		if sm.Share < 0 || sm.Share > 1 {
			t.Fatalf("session %q granted out-of-range share %v", sm.ID, sm.Share)
		}
	}
}

// Sub-quantum finish offsets: a stream whose length is not a multiple of
// the quantum drains mid-tick, and the report records the fractional
// finish instead of quantizing to the tick boundary — identically on the
// fused and per-session paths.
func TestFinishSubStepDeQuantizesTurnaround(t *testing.T) {
	trained(t)
	run := func(noFuse bool) *Report {
		reqs := requests(t, 1,
			func(int) sparsity.Scheme { return sparsity.NewDIP(0.5) },
			func(int) int { return 1 }) // 32 tokens
		e, err := NewEngine(zoo.m, Config{
			System: sysCfg(), Arb: ArbExclusive, MaxActive: 1, Quantum: 5, Seed: 1, NoFuse: noFuse,
		}, FixedBatch(reqs))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	fused, unfused := run(false), run(true)
	if !reflect.DeepEqual(stripWall(fused), stripWall(unfused)) {
		t.Fatalf("sub-quantum finish differs between paths:\nfused   %+v\nunfused %+v", fused.Sessions, unfused.Sessions)
	}
	sm := fused.Sessions[0]
	// 32 tokens at quantum 5: six full ticks (30) plus 2 sub-steps.
	if sm.FinishTick != 7 || sm.FinishSubStep != 2 {
		t.Fatalf("finish timeline wrong: %+v", sm)
	}
	if want := 6 + 2.0/5; sm.FinishTime != want || sm.Turnaround != want {
		t.Fatalf("de-quantized finish wrong: got %v/%v, want %v", sm.FinishTime, sm.Turnaround, want)
	}
	if sm.TurnaroundTicks != 7 {
		t.Fatalf("whole-tick turnaround changed: %+v", sm)
	}
	if fused.TurnaroundP50 != 6+2.0/5 {
		t.Fatalf("percentiles still quantized: %v", fused.TurnaroundP50)
	}
	// A stream draining exactly on the quantum boundary keeps integral time.
	whole := func() *Report {
		reqs := requests(t, 1,
			func(int) sparsity.Scheme { return sparsity.NewDIP(0.5) },
			func(int) int { return 1 })
		e, err := NewEngine(zoo.m, Config{
			System: sysCfg(), Arb: ArbExclusive, MaxActive: 1, Quantum: 8, Seed: 1,
		}, FixedBatch(reqs))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}()
	if sm := whole.Sessions[0]; sm.FinishSubStep != 8 || sm.FinishTime != float64(sm.FinishTick) {
		t.Fatalf("boundary finish should stay integral: %+v", sm)
	}
}

func TestParsePreemptor(t *testing.T) {
	for _, p := range Preemptors() {
		got, err := ParsePreemptor(p.Name())
		if err != nil || got.Name() != p.Name() {
			t.Fatalf("round-trip %v: got %v err %v", p.Name(), got, err)
		}
	}
	if _, err := ParsePreemptor("edf"); err == nil {
		t.Fatal("unknown preemptor name must error")
	}
}
