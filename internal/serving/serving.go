// Package serving is the multi-stream decode engine: many independent
// sessions — each its own token stream, scheme state, KV caches, and
// transfer meter — run against one shared DRAM cache budget. It models the
// server-side analogue of the paper's on-device setting: per-user decode
// streams contending for a fixed weight-cache allocation.
//
// Requests enter through a Workload — a deterministic source of timestamped
// arrivals on the simulated tick clock (FixedBatch, PoissonArrivals,
// ClosedLoop, or a replayed Trace) — each carrying an SLO class (priority
// and deadline ticks). A pluggable Scheduler (FCFS, strict priority, or
// earliest-deadline-first) orders the admission queue; continuous batching
// refills a slot the moment its session finishes; and a pluggable
// Preemptor (none, deadline, prio) may suspend a running session whose
// pressure a queued entry strictly outranks, resuming its retained stream
// later (see Preemptor). Each tick the engine fans
// the active batch out over the shared worker pool and advances every
// session by a token quantum through eval.Stream — the same per-token
// machinery SystemEvaluate uses, so a session evaluated alone is
// bit-identical to a solo SystemEvaluate run.
//
// Cache arbitration (see ArbPolicy) decides how the plan's DRAM cache
// budget is split across concurrent sessions: over-committed per-session
// caches (exclusive), equal partitions (fair-share), first-come-first-served
// claims (greedy), or one genuinely shared cache with tick-ordered access
// commits (shared).
//
// Determinism contract: the engine runs on simulated time. Given a fixed
// seed (same-tick arrivals are shuffled by a seeded RNG) every arrival,
// admission, per-session output, queueing delay, SLO verdict, and cache
// statistic is bit-identical for any worker count. Partitioned sessions
// share no mutable state; the shared cache is only written in the serial
// commit phase, in slot order. Wall-clock time appears only in the Report's
// Wall annotation.
package serving

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/cache"
	"repro/internal/eval"
	"repro/internal/hwsim"
	"repro/internal/model"
	"repro/internal/serving/faults"
	"repro/internal/serving/obs"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// SLO is a request's service-level objective class.
type SLO struct {
	// Class labels the request for per-class reporting ("" reports as
	// "default"). Classes are free-form — "interactive", "batch", ….
	Class string
	// Priority orders admission under the priority scheduler (higher wins).
	Priority int
	// DeadlineTicks is the budget, in simulated ticks after arrival, for the
	// session to finish; 0 means no deadline (vacuously attained).
	DeadlineTicks int
}

// Request is one decode job: a token stream evaluated under a sparsity
// scheme, with an SLO class. The scheme is cloned at admission, so the same
// instance may back many requests.
type Request struct {
	ID     string
	Scheme sparsity.Scheme
	Tokens []int
	SLO    SLO
}

// Config tunes the engine.
type Config struct {
	// System supplies the device, eviction policy, window, and stream
	// truncation — the same knobs as a solo SystemEvaluate. Belady is
	// rejected: its oracle needs a fixed single-stream future.
	System eval.SystemConfig
	// Arb selects the cache-budget arbitration policy.
	Arb ArbPolicy
	// Sched orders the admission queue (nil = FCFS).
	Sched Scheduler
	// Preempt decides mid-run slot takeovers (nil = NoPreempt): when a
	// queued entry's deadline or priority pressure strictly exceeds a
	// running session's, the victim is suspended (its stream state kept,
	// its cache grant released per Arb) and re-queued for a later resume.
	Preempt Preemptor
	// MaxActive is the batch width: how many sessions decode concurrently.
	// Defaults to 4. It is deliberately not derived from the worker-pool
	// size — batch width shapes cache arbitration (fair shares are
	// budget/MaxActive) and admission ticks, so tying it to the host would
	// break the bit-identical-for-any-worker-count contract.
	MaxActive int
	// Quantum is how many tokens each active session advances per tick
	// (default 8). Under ArbShared every token is individually committed to
	// the shared cache in slot order, regardless of quantum.
	Quantum int
	// Seed drives the same-tick arrival shuffle. Fixed seed ⇒ fixed
	// admission tiebreaks ⇒ bit-identical outputs and cache statistics.
	Seed uint64
	// NoFuse disables the fused multi-RHS decode path and falls back to
	// stepping each session independently. The default (fused) tick
	// collects the active slots and issues one batched step per token
	// sub-quantum, walking every weight matrix once for the whole batch.
	// Reports are bit-identical either way (enforced in tests); the flag
	// exists to measure the fusion win and to pin the equivalence in CI.
	NoFuse bool

	// Faults injects seeded failures into the engine loop (nil = reliable
	// hardware). Fault draws are pure functions of (seed, tick, slot), so a
	// chaos run keeps the full determinism contract: bit-identical across
	// worker counts and fused/unfused paths. See internal/serving/faults.
	Faults faults.Injector
	// Retry governs recovery of faulted sessions. The zero value resolves
	// to the faults.RetryPolicy defaults (3 attempts, seeded exponential
	// backoff); MaxAttempts 1 disables recovery — the no-recovery baseline.
	Retry faults.RetryPolicy
	// ShedQueueBudget, when positive, is the admission-control budget: an
	// arrival finding the queue already holding that many entries is shed
	// (rejected, never admitted) instead of queued. 0 = never shed.
	ShedQueueBudget int
	// Degrade enables graceful degradation: when the queue has sat at the
	// shed budget for DegradeTicks consecutive ticks, the engine sheds
	// queued *optional* work — fresh, deadline-less entries, newest first —
	// to keep slack for deadlined requests instead of missing their SLOs.
	// Requires a positive ShedQueueBudget.
	Degrade bool
	// DegradeTicks is the sustained-pressure window before Degrade acts
	// (default 4).
	DegradeTicks int

	// Obs attaches a structured-event recorder (see internal/serving/obs):
	// the engine emits one event per control-plane decision — always from
	// the serial loop, never inside a parallel decode phase — and feeds the
	// recorder's moving-window trackers once per executed tick, then
	// attaches the drain-time obs.Snapshot to the Report. The event log is
	// part of the determinism contract: bit-identical across worker counts
	// and fused/unfused decode. nil disables observability entirely; every
	// emission site is guarded on it, so the disabled path adds zero
	// allocations to the tick (pinned by TestDisabledObserverAddsNoTickAllocations).
	// A recorder is single-run: NewEngine rejects one already bound to
	// another engine.
	Obs *obs.Recorder
}

// Session is one admitted request's live state.
type Session struct {
	ID    string
	Index int // submission index in the workload's request universe
	SLO   SLO
	// AdmitRank is the session's admission position (0 = first admitted).
	AdmitRank int
	// Share is the granted fraction of the cache budget (1 under ArbShared:
	// the whole cache, shared).
	Share float64

	stream *eval.Stream
	claim  float64 // greedy pool claim, released at suspension/retirement
	order  int     // the request's queue Order, kept for re-queueing

	// Simulated-clock timeline: arrival (workload), admission (scheduler),
	// finish (retirement), and the absolute SLO deadline (NoDeadline = none).
	arriveTick, admitTick, finishTick, deadlineTick int
	// finishSub is the 1-based sub-quantum step on which the stream drained
	// (0 only for degenerate streams that never stepped): the sub-tick
	// finish offset that de-quantizes turnaround and SLO accounting.
	finishSub int
	// Preemption bookkeeping: how often this session was suspended, the
	// tick of the most recent suspension, and the cumulative ticks spent
	// suspended (suspend → resume).
	preempts, suspendTick, resumeDelay int
	// Robustness bookkeeping: placement attempts consumed (1 after the
	// first admission), faults suffered, ticks spent fault-suspended
	// (fault → re-place), why the session last left its slot, and whether a
	// revocation demands a fresh full-budget grant at resume (exclusive).
	attempts, faultCount, recoverTicks int
	suspendedBy                        suspendCause
	needGrant                          bool
	outcome                            Outcome
}

// suspendCause records why a session left its slot — resume accounting
// differs between a preemption, an injected fault, and a capacity dip.
type suspendCause int

const (
	byPreempt suspendCause = iota
	byFault
	byDip
)

// Outcome is a session's terminal state in the report.
type Outcome string

const (
	// OutcomeOK: the stream drained to completion.
	OutcomeOK Outcome = "ok"
	// OutcomeFailed: faulted with the retry budget exhausted.
	OutcomeFailed Outcome = "failed"
	// OutcomeCancelled: the request was cancelled mid-stream by a fault
	// event; cancelled sessions are excluded from SLO attainment.
	OutcomeCancelled Outcome = "cancelled"
	// OutcomeShed: rejected at admission control, never admitted.
	OutcomeShed Outcome = "shed"
)

// Engine drains one workload to completion.
type Engine struct {
	m         *model.Model
	cfg       Config
	w         Workload
	reqs      []Request // the workload's request universe
	sched     Scheduler
	pre       Preemptor
	plan      *hwsim.Plan
	shared    *cache.ModelCache // non-nil under ArbShared
	sessions  []*Session        // by submission index, filled at admission
	arrived   []bool            // duplicate-arrival guard, by submission index
	claimed   float64           // greedy pool state: granted budget fraction
	claimants int               // live sessions holding a nonzero greedy claim
	preempts  int               // aggregate preemption count
	ran       bool
	wallStart time.Time

	// Tick-loop run state, owned by Begin and shared by Run and the
	// stepped API (Inject/StepTick) so a cluster can drive many engines on
	// one clock: the seeded arrival-shuffle RNG, the admission queue, the
	// active batch, the admission-rank counter, the engine-owned arrival
	// order counter (Run's; a cluster passes its own global order), and
	// the per-tick Finished scratch returned by StepTick.
	rng    *tensor.RNG
	queue  []*QueueEntry
	active []*Session
	rank   int
	order  int
	fin    []Finished

	// Robustness state: the resolved retry policy, aggregate fault/recovery
	// counters, shed requests by submission index (arrival and shed tick,
	// -1 = not shed), and the sustained-pressure tick counter driving
	// graceful degradation.
	retry                        faults.RetryPolicy
	stepFaults, revokes, cancels int
	failed, retries              int
	dipSlotTicks                 int
	recoverTicks, recoveries     int
	shedArrive, shedTick         []int
	shedCount                    int
	pressure                     int

	// obs is the optional structured-event recorder (nil = tracing off; the
	// engine guards every emission on it so the disabled path costs nothing
	// on the tick).
	obs *obs.Recorder

	// Per-tick scratch, reused across the run so steady-state ticks do not
	// allocate engine-side: the fused-step batch (streams plus their
	// sessions, for sub-quantum finish accounting) and arena, and the
	// same-tick arrival shuffle buffer.
	arena     eval.BatchArena
	batch     []*eval.Stream
	batchSess []*Session
	shuffle   []int
}

// NewEngine validates the configuration and lays out the shared memory
// plan. The plan's weight groups are the union over the workload's full
// request universe, so heterogeneous scheme mixes are priced consistently
// no matter when each request arrives.
func NewEngine(m *model.Model, cfg Config, w Workload) (*Engine, error) {
	if err := cfg.System.Validate(); err != nil {
		return nil, err
	}
	if cfg.System.Policy == cache.PolicyBelady {
		return nil, fmt.Errorf("serving: Belady eviction needs a fixed single-stream future; use lru/lfu")
	}
	if cfg.Arb < ArbExclusive || cfg.Arb > ArbShared {
		return nil, fmt.Errorf("serving: unknown arbitration policy %d", cfg.Arb)
	}
	if w == nil {
		return nil, fmt.Errorf("serving: no workload")
	}
	if cfg.Sched == nil {
		cfg.Sched = FCFS()
	}
	if cfg.Preempt == nil {
		cfg.Preempt = NoPreempt()
	}
	reqs := w.Requests()
	if len(reqs) == 0 {
		return nil, fmt.Errorf("serving: workload %q has no requests", w.Name())
	}
	if cfg.MaxActive < 0 {
		return nil, fmt.Errorf("serving: Config.MaxActive must be non-negative (0 = default 4), got %d", cfg.MaxActive)
	}
	if cfg.Quantum < 0 {
		return nil, fmt.Errorf("serving: Config.Quantum must be non-negative (0 = default 8), got %d", cfg.Quantum)
	}
	if cfg.MaxActive == 0 {
		cfg.MaxActive = 4
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 8
	}
	if err := cfg.Retry.Validate(); err != nil {
		return nil, fmt.Errorf("serving: Config.Retry: %w", err)
	}
	if cfg.ShedQueueBudget < 0 {
		return nil, fmt.Errorf("serving: Config.ShedQueueBudget must be non-negative (0 = never shed), got %d", cfg.ShedQueueBudget)
	}
	if cfg.Degrade && cfg.ShedQueueBudget == 0 {
		return nil, fmt.Errorf("serving: Config.Degrade needs a positive ShedQueueBudget to define pressure")
	}
	if cfg.DegradeTicks < 0 {
		return nil, fmt.Errorf("serving: Config.DegradeTicks must be non-negative (0 = default 4), got %d", cfg.DegradeTicks)
	}
	if cfg.DegradeTicks == 0 {
		cfg.DegradeTicks = 4
	}
	if cfg.Obs != nil {
		if err := cfg.Obs.Bind(); err != nil {
			return nil, fmt.Errorf("serving: Config.Obs: %w", err)
		}
	}
	var groups [sparsity.NumGroups]bool
	for i, r := range reqs {
		if r.Scheme == nil {
			return nil, fmt.Errorf("serving: request %d (%q) has no scheme", i, r.ID)
		}
		if len(r.Tokens) == 0 {
			return nil, fmt.Errorf("serving: request %d (%q) has no tokens", i, r.ID)
		}
		if r.SLO.DeadlineTicks < 0 {
			return nil, fmt.Errorf("serving: request %d (%q) has negative deadline %d", i, r.ID, r.SLO.DeadlineTicks)
		}
		used := hwsim.ProbeGroups(sparsity.Clone(r.Scheme), m)
		for g := range groups {
			groups[g] = groups[g] || used[g]
		}
	}
	plan, err := hwsim.NewPlan(m, cfg.System.Device, hwsim.PlanOpts{
		BytesPerWeight:     cfg.System.BytesPerWeight,
		ExtraStaticWeights: cfg.System.ExtraStaticWeights,
		Groups:             groups,
	})
	if err != nil {
		return nil, err
	}
	e := &Engine{
		m: m, cfg: cfg, w: w, reqs: reqs, sched: cfg.Sched, pre: cfg.Preempt, plan: plan,
		obs:      cfg.Obs,
		retry:    cfg.Retry.WithDefaults(),
		sessions: make([]*Session, len(reqs)), arrived: make([]bool, len(reqs)),
		shedArrive: make([]int, len(reqs)),
		shedTick:   make([]int, len(reqs)),
		batch:      make([]*eval.Stream, 0, cfg.MaxActive),
		batchSess:  make([]*Session, 0, cfg.MaxActive),
	}
	for i := range e.shedArrive {
		e.shedArrive[i], e.shedTick[i] = -1, -1
	}
	if cfg.Arb == ArbShared {
		e.shared = plan.NewCache(cfg.System.Policy)
	}
	return e, nil
}

// Plan exposes the engine's memory layout (for reporting).
func (e *Engine) Plan() *hwsim.Plan { return e.plan }

// SharedCache returns the shared cache under ArbShared, else nil.
func (e *Engine) SharedCache() *cache.ModelCache { return e.shared }

// admit builds the live session for a queued entry with an arbitrated cache.
func (e *Engine) admit(qe *QueueEntry, rank, tick int) (*Session, error) {
	req := qe.Req
	sess := &Session{
		ID: req.ID, Index: qe.Index, SLO: req.SLO, AdmitRank: rank, order: qe.Order,
		arriveTick: qe.ArriveTick, admitTick: tick, deadlineTick: qe.Deadline,
	}
	scheme := sparsity.Clone(req.Scheme)
	var (
		mc       *cache.ModelCache
		deferred bool
	)
	if e.cfg.Arb == ArbShared {
		mc, sess.Share, deferred = e.shared, 1, true
	} else {
		share := e.grant(sess)
		mc = cache.NewModelCache(e.cfg.System.Policy, scaledCaps(e.plan.Caps, share), e.plan.NUnits)
		sess.Share = share
	}
	st, err := eval.NewStreamWith(e.m, scheme, req.Tokens, e.cfg.System, eval.StreamOpts{
		Plan: e.plan, Cache: mc, Deferred: deferred,
	})
	if err != nil {
		return nil, fmt.Errorf("serving: admitting %q: %w", req.ID, err)
	}
	sess.stream = st
	sess.attempts = 1
	e.sessions[qe.Index] = sess
	return sess, nil
}

// place admits a fresh queue entry (consuming one admission rank) or
// resumes a suspended one: the session's retained stream picks up where it
// stopped, and under the partitioned pool policies a fresh cache is granted
// at the policy's current share. ArbExclusive sessions keep their private
// over-committed cache across the suspension (a resumed run is
// bit-identical to an uninterrupted one), and ArbShared sessions keep the
// shared cache — only the slot was freed.
func (e *Engine) place(qe *QueueEntry, rank *int, tick, slot int) (*Session, error) {
	if qe.Sess == nil {
		sess, err := e.admit(qe, *rank, tick)
		if err != nil {
			return nil, err
		}
		*rank++
		if e.obs != nil {
			e.obs.Emit(obs.Event{Tick: tick, Slot: slot, Kind: obs.KindAdmit, Session: sess.ID, Detail: className(sess.SLO)})
			e.obs.Emit(obs.Event{Tick: tick, Slot: slot, Kind: obs.KindGrant, Session: sess.ID, Detail: shareDetail(sess.Share)})
		}
		return sess, nil
	}
	sess := qe.Sess
	delay := tick - sess.suspendTick
	sess.resumeDelay += delay
	if sess.suspendedBy == byFault {
		// Time-to-recover: fault tick → the tick the session is re-placed.
		sess.recoverTicks += delay
		e.recoverTicks += delay
		e.recoveries++
	}
	regranted := true
	switch {
	case e.cfg.Arb == ArbFairShare || e.cfg.Arb == ArbGreedy:
		share := e.grant(sess)
		sess.Share = share
		sess.stream.Regrant(cache.NewModelCache(e.cfg.System.Policy, scaledCaps(e.plan.Caps, share), e.plan.NUnits))
	case sess.needGrant:
		// A revoked ArbExclusive session lost its private cache; grant a
		// fresh one at the full over-committed budget, as at admission.
		sess.Share = 1
		sess.stream.Regrant(cache.NewModelCache(e.cfg.System.Policy, e.plan.Caps, e.plan.NUnits))
	default:
		regranted = false // exclusive/shared resume keeps its cache
	}
	sess.needGrant = false
	if e.obs != nil {
		e.obs.Emit(obs.Event{Tick: tick, Slot: slot, Kind: obs.KindResume, Session: sess.ID, Detail: causeDetail(sess.suspendedBy)})
		if regranted {
			e.obs.Emit(obs.Event{Tick: tick, Slot: slot, Kind: obs.KindGrant, Session: sess.ID, Detail: shareDetail(sess.Share)})
		}
	}
	return sess, nil
}

// shareDetail renders a grant's budget fraction for the event log; -1
// formats shortest-round-trip, so the detail is bit-stable wherever the
// report itself is.
func shareDetail(share float64) string {
	return "share=" + strconv.FormatFloat(share, 'g', -1, 64)
}

// causeDetail maps a suspension cause to its event-detail constant.
func causeDetail(c suspendCause) string {
	switch c {
	case byFault:
		return obs.DetailFault
	case byDip:
		return obs.DetailDip
	default:
		return obs.DetailPreempt
	}
}

// suspend preempts a running session: its stream state is retained for a
// later resume, its partitioned cache grant (fair/greedy) is released —
// preemption frees real memory, so the partition's contents are lost and
// the resume starts a cold cache at a fresh grant — and the session is
// wrapped back into a queue entry carrying its original Order, ArriveTick,
// and deadline so schedulers rank it exactly as before.
func (e *Engine) suspend(sess *Session, tick, slot int) *QueueEntry {
	sess.preempts++
	e.preempts++
	sess.suspendTick = tick
	sess.suspendedBy = byPreempt
	if e.obs != nil {
		e.obs.Emit(obs.Event{Tick: tick, Slot: slot, Kind: obs.KindSuspend, Session: sess.ID, Detail: obs.DetailPreempt})
	}
	switch e.cfg.Arb {
	case ArbFairShare, ArbGreedy:
		e.releaseClaim(sess)
		sess.stream.Release()
		e.emitRelease(tick, slot, sess)
	}
	return e.requeue(sess, 0)
}

// emitRelease records a cache grant / greedy claim release in the event
// log (no-op with tracing off).
func (e *Engine) emitRelease(tick, slot int, sess *Session) {
	if e.obs != nil {
		e.obs.Emit(obs.Event{Tick: tick, Slot: slot, Kind: obs.KindRelease, Session: sess.ID})
	}
}

// dipSuspend parks a session displaced by a capacity dip: the same retained
// stream and cache semantics as a preemption, but it is not counted as one
// (nothing outranked the session — its slot went away) and costs no retry
// attempt. The session is eligible for re-placement as soon as a slot frees.
func (e *Engine) dipSuspend(sess *Session, tick, slot int) *QueueEntry {
	sess.suspendTick = tick
	sess.suspendedBy = byDip
	if e.obs != nil {
		e.obs.Emit(obs.Event{Tick: tick, Slot: slot, Kind: obs.KindSuspend, Session: sess.ID, Detail: obs.DetailDip})
	}
	switch e.cfg.Arb {
	case ArbFairShare, ArbGreedy:
		e.releaseClaim(sess)
		sess.stream.Release()
		e.emitRelease(tick, slot, sess)
	}
	return e.requeue(sess, 0)
}

// faultSuspend pulls a faulted session out of its slot, consuming one retry
// attempt, or reports that the attempt budget is exhausted (nil). A
// transient step fault retains decode state under the same cache semantics
// as a preemption: exclusive and shared caches survive (warm resume — the
// exclusive case stays bit-identical to an uninterrupted solo run), while
// fair/greedy grants are released and resume cold. A destructive fault
// (revocation) additionally tears down the stream's decode state with the
// grant: the stream Restarts and re-prefills from scratch on resume,
// keeping its meter and traffic — wasted work shows up as the
// throughput−goodput gap. Either way the session re-enters the queue with
// its original scheduler rank, gated by the retry policy's seeded backoff.
func (e *Engine) faultSuspend(sess *Session, tick, slot int, destructive bool) *QueueEntry {
	sess.faultCount++
	if sess.attempts >= e.retry.MaxAttempts {
		return nil
	}
	sess.attempts++
	e.retries++
	sess.suspendTick = tick
	sess.suspendedBy = byFault
	if e.obs != nil {
		e.obs.Emit(obs.Event{Tick: tick, Slot: slot, Kind: obs.KindSuspend, Session: sess.ID, Detail: obs.DetailFault})
	}
	if destructive {
		e.releaseClaim(sess)
		sess.stream.Release()
		sess.stream.Restart()
		sess.needGrant = e.cfg.Arb == ArbExclusive
		e.emitRelease(tick, slot, sess)
	} else {
		switch e.cfg.Arb {
		case ArbFairShare, ArbGreedy:
			e.releaseClaim(sess)
			sess.stream.Release()
			e.emitRelease(tick, slot, sess)
		}
	}
	backoff := e.retry.Backoff(e.cfg.Seed, sess.Index, sess.attempts-1)
	if e.obs != nil {
		e.obs.Emit(obs.Event{Tick: tick, Slot: slot, Kind: obs.KindRetry, Session: sess.ID,
			Detail: fmt.Sprintf("attempt=%d backoff=%d", sess.attempts, backoff)})
	}
	return e.requeue(sess, tick+backoff)
}

// requeue wraps a suspended session back into a queue entry carrying its
// original Order, ArriveTick, and deadline so schedulers rank it exactly as
// before; notBefore gates re-placement (retry backoff).
func (e *Engine) requeue(sess *Session, notBefore int) *QueueEntry {
	return &QueueEntry{
		Req: e.reqs[sess.Index], Index: sess.Index, Sess: sess,
		ArriveTick: sess.arriveTick, Order: sess.order, Deadline: sess.deadlineTick,
		NotBefore: notBefore,
	}
}

// finish finalizes a session with its terminal outcome and releases any
// greedy claim. Failed and cancelled sessions keep their stream, so the
// report still prices the partial work they did.
func (e *Engine) finish(sess *Session, tick int, oc Outcome) {
	sess.finishTick = tick
	sess.outcome = oc
	e.releaseClaim(sess)
}

// retire finalizes a successfully drained session.
func (e *Engine) retire(sess *Session, tick int) {
	e.finish(sess, tick, OutcomeOK)
}
