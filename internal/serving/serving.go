// Package serving is the multi-stream decode engine: many independent
// sessions — each its own token stream, scheme state, KV caches, and
// transfer meter — run against one shared DRAM cache budget. It models the
// server-side analogue of the paper's on-device setting: per-user decode
// streams contending for a fixed weight-cache allocation.
//
// The engine advances sessions in ticks. Each tick it admits queued
// sessions into free batch slots (continuous batching: a slot refills the
// moment its session finishes, in an admission order drawn from a seeded
// RNG), fans the active batch out over the shared worker pool, and advances
// every active session by a token quantum through eval.Stream — the same
// per-token machinery SystemEvaluate uses, so a session evaluated alone is
// bit-identical to a solo SystemEvaluate run.
//
// Cache arbitration (see ArbPolicy) decides how the plan's DRAM cache
// budget is split across concurrent sessions: over-committed per-session
// caches (exclusive), equal partitions (fair-share), first-come-first-served
// claims (greedy), or one genuinely shared cache with tick-ordered access
// commits (shared).
//
// Determinism contract: given a fixed seed (and therefore admission order),
// every per-session output and every cache statistic is bit-identical for
// any worker count. Partitioned sessions share no mutable state; the shared
// cache is only written in the serial commit phase, in slot order. Only the
// wall-clock fields of the Report vary between runs.
package serving

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/eval"
	"repro/internal/hwsim"
	"repro/internal/model"
	"repro/internal/sparsity"
)

// Request is one queued decode job: a token stream evaluated under a
// sparsity scheme. The scheme is cloned at admission, so the same instance
// may back many requests.
type Request struct {
	ID     string
	Scheme sparsity.Scheme
	Tokens []int
}

// Config tunes the engine.
type Config struct {
	// System supplies the device, eviction policy, window, and stream
	// truncation — the same knobs as a solo SystemEvaluate. Belady is
	// rejected: its oracle needs a fixed single-stream future.
	System eval.SystemConfig
	// Arb selects the cache-budget arbitration policy.
	Arb ArbPolicy
	// MaxActive is the batch width: how many sessions decode concurrently.
	// Defaults to 4. It is deliberately not derived from the worker-pool
	// size — batch width shapes cache arbitration (fair shares are
	// budget/MaxActive) and admission ticks, so tying it to the host would
	// break the bit-identical-for-any-worker-count contract.
	MaxActive int
	// Quantum is how many tokens each active session advances per tick
	// (default 8). Under ArbShared every token is individually committed to
	// the shared cache in slot order, regardless of quantum.
	Quantum int
	// Seed drives the admission-order RNG. Fixed seed ⇒ fixed admission
	// order ⇒ bit-identical outputs and cache statistics.
	Seed uint64
}

// Session is one admitted request's live state.
type Session struct {
	ID    string
	Index int // submission index in the request slice
	// AdmitRank is the session's position in the seeded admission order.
	AdmitRank int
	// Share is the granted fraction of the cache budget (1 under ArbShared:
	// the whole cache, shared).
	Share float64

	stream *eval.Stream
	claim  float64 // greedy pool claim, released at retirement

	admitTick, finishTick int
	wallAdmit, wallFinish time.Time
}

// Engine runs a fixed batch of requests to completion.
type Engine struct {
	m         *model.Model
	cfg       Config
	reqs      []Request
	plan      *hwsim.Plan
	shared    *cache.ModelCache // non-nil under ArbShared
	sessions  []*Session        // by submission index, filled at admission
	claimed   float64           // greedy pool state
	ran       bool
	wallStart time.Time
}

// NewEngine validates the configuration and lays out the shared memory
// plan. The plan's weight groups are the union over all request schemes, so
// heterogeneous scheme mixes are priced consistently.
func NewEngine(m *model.Model, cfg Config, reqs []Request) (*Engine, error) {
	if err := cfg.System.Validate(); err != nil {
		return nil, err
	}
	if cfg.System.Policy == cache.PolicyBelady {
		return nil, fmt.Errorf("serving: Belady eviction needs a fixed single-stream future; use lru/lfu")
	}
	if cfg.Arb < ArbExclusive || cfg.Arb > ArbShared {
		return nil, fmt.Errorf("serving: unknown arbitration policy %d", cfg.Arb)
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("serving: no requests")
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 4
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 8
	}
	var groups [sparsity.NumGroups]bool
	for i, r := range reqs {
		if r.Scheme == nil {
			return nil, fmt.Errorf("serving: request %d (%q) has no scheme", i, r.ID)
		}
		if len(r.Tokens) == 0 {
			return nil, fmt.Errorf("serving: request %d (%q) has no tokens", i, r.ID)
		}
		used := hwsim.ProbeGroups(sparsity.Clone(r.Scheme), m)
		for g := range groups {
			groups[g] = groups[g] || used[g]
		}
	}
	plan, err := hwsim.NewPlan(m, cfg.System.Device, hwsim.PlanOpts{
		BytesPerWeight:     cfg.System.BytesPerWeight,
		ExtraStaticWeights: cfg.System.ExtraStaticWeights,
		Groups:             groups,
	})
	if err != nil {
		return nil, err
	}
	e := &Engine{m: m, cfg: cfg, reqs: reqs, plan: plan, sessions: make([]*Session, len(reqs))}
	if cfg.Arb == ArbShared {
		e.shared = plan.NewCache(cfg.System.Policy)
	}
	return e, nil
}

// Plan exposes the engine's memory layout (for reporting).
func (e *Engine) Plan() *hwsim.Plan { return e.plan }

// SharedCache returns the shared cache under ArbShared, else nil.
func (e *Engine) SharedCache() *cache.ModelCache { return e.shared }

// admit builds the live session for request idx with an arbitrated cache.
func (e *Engine) admit(idx, rank, tick int) (*Session, error) {
	req := e.reqs[idx]
	sess := &Session{
		ID: req.ID, Index: idx, AdmitRank: rank,
		admitTick: tick, wallAdmit: time.Now(),
	}
	scheme := sparsity.Clone(req.Scheme)
	var (
		mc       *cache.ModelCache
		deferred bool
	)
	if e.cfg.Arb == ArbShared {
		mc, sess.Share, deferred = e.shared, 1, true
	} else {
		share := e.grant(sess)
		mc = cache.NewModelCache(e.cfg.System.Policy, scaledCaps(e.plan.Caps, share), e.plan.NUnits)
		sess.Share = share
	}
	st, err := eval.NewStreamWith(e.m, scheme, req.Tokens, e.cfg.System, eval.StreamOpts{
		Plan: e.plan, Cache: mc, Deferred: deferred,
	})
	if err != nil {
		return nil, fmt.Errorf("serving: admitting %q: %w", req.ID, err)
	}
	sess.stream = st
	e.sessions[idx] = sess
	return sess, nil
}

// retire finalizes a finished session and releases any greedy claim.
func (e *Engine) retire(sess *Session, tick int) {
	sess.finishTick = tick
	sess.wallFinish = time.Now()
	e.claimed -= sess.claim
	sess.claim = 0
}
