// Command repolint runs the repo's determinism/alloc static-analysis suite
// (internal/lint) over the module and exits nonzero on any unsuppressed
// finding. CI runs it before the test jobs, so the bit-identical contract
// — no wall-clock reads, no unseeded randomness, no order-dependent map
// ranges, fan-out only through internal/parallel, nil-guarded obs emission
// — is a checked property of the code, not a hope backed by seed sampling.
//
// Usage:
//
//	go run ./cmd/repolint ./...          # whole module (the CI invocation)
//	go run ./cmd/repolint ./internal/... # one subtree
//	go run ./cmd/repolint -list          # registered checks
//
// Suppress a finding with a justified directive on (or directly above) the
// offending line:
//
//	e.wallStart = time.Now() //lint:allow wallclock Wall annotation only
//
// Unknown check names, missing justifications, and directives that
// suppress nothing are themselves findings.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the registered checks and exit")
	flag.Parse()
	if *list {
		listChecks(os.Stdout)
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadModule(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	res := lint.Run(pkgs, lint.Analyzers())
	for _, d := range res.Diags {
		if !d.Suppressed {
			fmt.Println(d)
		}
	}
	fmt.Println(summary(res))
	if res.Findings > 0 {
		os.Exit(1)
	}
}

// listChecks prints one "name: doc" line per registered check — the output
// the registry keep-in-sync test holds against the README's check list.
func listChecks(w io.Writer) {
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(w, "%s: %s\n", a.Name, a.Doc)
	}
}

// summary renders the one-line verdict, counting suppressions so a quiet
// run still shows how many documented exemptions are in force.
func summary(res *lint.Result) string {
	return fmt.Sprintf("repolint: %d findings, %d suppressed, %d packages",
		res.Findings, res.Suppressed, res.Packages)
}
