package main

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

var readmeCheckRe = regexp.MustCompile(`^- \*\*([a-z]+)\*\* —`)

// readmeChecks parses the bullet list under README's "## Static analysis"
// section: every `- **name** — ...` bullet until the next section header.
func readmeChecks(t *testing.T) []string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	in := false
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "## "):
			in = line == "## Static analysis"
		case in:
			if m := readmeCheckRe.FindStringSubmatch(line); m != nil {
				names = append(names, m[1])
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal(`README has no "## Static analysis" check bullets`)
	}
	return names
}

// Keep-in-sync check: the analyzer registry, the README's documented check
// list, and `repolint -list` must name the same checks in the same order —
// adding an analyzer without documenting it (or documenting one that does
// not run) fails here, not in a reader's mental model.
func TestRegistryReadmeAndListNameTheSameChecks(t *testing.T) {
	reg := lint.Names()
	if len(reg) == 0 {
		t.Fatal("analyzer registry is empty")
	}

	readme := readmeChecks(t)
	if strings.Join(readme, " ") != strings.Join(reg, " ") {
		t.Errorf("README check list %v != registry %v", readme, reg)
	}

	var buf bytes.Buffer
	listChecks(&buf)
	var listed []string
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		name, doc, ok := strings.Cut(line, ": ")
		if !ok || doc == "" {
			t.Errorf("-list line %q is not in name: doc form", line)
			continue
		}
		listed = append(listed, name)
	}
	if strings.Join(listed, " ") != strings.Join(reg, " ") {
		t.Errorf("-list output %v != registry %v", listed, reg)
	}
}
