// Command dipsim is a standalone hardware-simulator explorer: it sweeps
// cache policies and device parameters for one model and scheme and prints
// the resulting operating points, useful for what-if deployment questions
// without rerunning full experiments.
//
// Usage:
//
//	dipsim -model mistral7b-sim -density 0.5 -gamma 0.2
//	dipsim -model phi3med-sim -dram 0.3,0.5,0.8 -flash 0.5e9,1e9,2e9
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/hwsim"
	"repro/internal/model"
	"repro/internal/sparsity"
)

func main() {
	var (
		name    = flag.String("model", model.Mistral7BSim, "model analog name")
		density = flag.Float64("density", 0.5, "target MLP density")
		gamma   = flag.Float64("gamma", 0.2, "DIP-CA penalty (1 = plain DIP)")
		drams   = flag.String("dram", "0.5", "comma-separated DRAM fractions of model bytes")
		flashes = flag.String("flash", "1e9", "comma-separated flash bandwidths (bytes/s)")
		scale   = flag.String("scale", "paper", "paper | test")
		ckpt    = flag.String("ckpt", "", "checkpoint directory")
	)
	flag.Parse()
	sc := model.ScalePaper
	if *scale == "test" {
		sc = model.ScaleTest
	}
	lab := experiments.NewLab(sc)
	lab.CheckpointDir = *ckpt
	lab.Log = os.Stderr
	m := lab.Model(*name)
	test := lab.TestTokens(0)

	var scheme sparsity.Scheme
	if *gamma >= 1 {
		scheme = sparsity.NewDIP(*density)
	} else {
		scheme = sparsity.NewDIPCA(*density, *gamma)
	}
	policies := []cache.Policy{cache.PolicyNone, cache.PolicyLRU, cache.PolicyLFU}
	if ca, ok := scheme.(interface{ IsCacheAware() bool }); !ok || !ca.IsCacheAware() {
		policies = append(policies, cache.PolicyBelady)
	}
	fmt.Printf("%-10s %-8s %-8s %-8s %-10s %-10s %-8s\n",
		"dram_frac", "flash", "policy", "ppl", "tok_s", "latency_s", "hit_rate")
	for _, df := range parseFloats(*drams) {
		for _, fb := range parseFloats(*flashes) {
			dev := hwsim.A18Like()
			dev.DRAMFraction = df
			dev.FlashBandwidth = fb
			for _, pol := range policies {
				pt, err := eval.SystemEvaluate(m, scheme, test, eval.SystemConfig{
					Device: dev, Policy: pol, MaxTokens: 2048,
				})
				if err != nil {
					fmt.Fprintf(os.Stderr, "dipsim: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("%-10.2f %-8.1e %-8s %-8.3f %-10.3f %-10.4f %-8.3f\n",
					df, fb, pol, pt.PPL, pt.Throughput, pt.LatencyS, pt.HitRate)
			}
		}
	}
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dipsim: bad number %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
