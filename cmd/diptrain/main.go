// Command diptrain pretrains the model analogs and saves checkpoints that
// cmd/dipbench can reuse, so repeated experiment runs skip training.
//
// Usage:
//
//	diptrain -ckpt ckpts/                  # all analogs at paper scale
//	diptrain -ckpt ckpts/ -models phi3med-sim,relufied-sim
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/model"
)

func main() {
	var (
		ckpt   = flag.String("ckpt", "checkpoints", "checkpoint directory")
		scale  = flag.String("scale", "paper", "paper | test")
		models = flag.String("models", "", "comma-separated analog names (default: all)")
	)
	flag.Parse()
	sc := model.ScalePaper
	if *scale == "test" {
		sc = model.ScaleTest
	}
	names := append(model.AnalogNames(), model.ReluFiedSim)
	if *models != "" {
		names = strings.Split(*models, ",")
	}
	lab := experiments.NewLab(sc)
	lab.CheckpointDir = *ckpt
	lab.Log = os.Stderr
	for _, name := range names {
		start := time.Now() //lint:allow wallclock training progress annotation; checkpoints and ppl are seed-deterministic
		m := lab.Model(name)
		test := lab.TestTokens(0)
		ppl := model.Perplexity(m, test, lab.EvalWin(), nil)
		fmt.Printf("%-16s params %7d  test ppl %6.3f  (%v)\n",
			name, paramCount(m), ppl,
			time.Since(start).Round(time.Millisecond)) //lint:allow wallclock training progress annotation; checkpoints and ppl are seed-deterministic
	}
	fmt.Printf("checkpoints in %s\n", *ckpt)
}

func paramCount(m *model.Model) int {
	n := 0
	for _, p := range m.Params() {
		n += p.Size()
	}
	return n
}
