// Command dipbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dipbench -list
//	dipbench -exp tab1                # one experiment at paper scale
//	dipbench -exp all -out results/   # everything, one file per experiment
//	dipbench -exp tab2 -scale test    # fast miniature run
//	dipbench -exp tab1 -ckpt ckpts/   # reuse checkpoints from diptrain
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
	"repro/internal/model"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		scale   = flag.String("scale", "paper", "paper | test")
		ckpt    = flag.String("ckpt", "", "checkpoint directory (shared with diptrain)")
		outDir  = flag.String("out", "", "write each experiment's tables to <out>/<id>.txt as well as stdout")
		csvOut  = flag.Bool("csv", false, "also write <out>/<id>-<table>.csv for plotting")
		verbose = flag.Bool("v", true, "log lab progress to stderr")
	)
	flag.Parse()
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "dipbench: -exp required (try -list)")
		os.Exit(2)
	}
	sc := model.ScalePaper
	if *scale == "test" {
		sc = model.ScaleTest
	} else if *scale != "paper" {
		fmt.Fprintf(os.Stderr, "dipbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	lab := experiments.NewLab(sc)
	lab.CheckpointDir = *ckpt
	if *verbose {
		lab.Log = os.Stderr
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		tables, err := experiments.Run(lab, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dipbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		var sink *os.File
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "dipbench: %v\n", err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*outDir, id+".txt"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "dipbench: %v\n", err)
				os.Exit(1)
			}
			sink = f
		}
		for _, tab := range tables {
			tab.Render(os.Stdout)
			if sink != nil {
				tab.Render(sink)
			}
			if *csvOut && *outDir != "" {
				f, err := os.Create(filepath.Join(*outDir, tab.ID+".csv"))
				if err != nil {
					fmt.Fprintf(os.Stderr, "dipbench: %v\n", err)
					os.Exit(1)
				}
				if err := tab.RenderCSV(f); err != nil {
					fmt.Fprintf(os.Stderr, "dipbench: %v\n", err)
				}
				f.Close()
			}
		}
		if sink != nil {
			sink.Close()
		}
		fmt.Fprintf(os.Stderr, "dipbench: %s done in %v\n", id, time.Since(start).Round(time.Millisecond))
	}
}
