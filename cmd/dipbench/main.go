// Command dipbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dipbench -list
//	dipbench -exp tab1                # one experiment at paper scale
//	dipbench -exp all -out results/   # everything, one file per experiment
//	dipbench -exp tab2 -scale test    # fast miniature run
//	dipbench -exp tab1 -ckpt ckpts/   # reuse checkpoints from diptrain
//	dipbench -exp tab2 -procs 1       # pin the worker pool (serial run)
//	dipbench -exp tab2 -cpuprofile cpu.out -memprofile mem.out
//	dipbench -serve                   # serving grid: workload × scheduler × arbitration
//	dipbench -serve -small            # CI-sized serving smoke run
//	dipbench -serve -seed 42          # reproducible arrivals and admission order
//	dipbench -serve -workload poisson -rate 0.2 -sched edf -slo 200
//	dipbench -serve -workload trace -trace trace.json -arb shared
//	dipbench -serve -small -fuse both  # fused vs per-session decode, one report
//	dipbench -serve -sched edf -preempt deadline  # deadline-aware preemption
//	dipbench -serve -small -faults 0.05 -retry 3 -shed 8  # seeded chaos on the grid
//	dipbench -exp chaos -small        # fault-injection grid: recovery vs baseline
//	dipbench -serve -small -events out/ev            # one JSONL event log per grid cell
//	dipbench -serve -small -events out/ev -events-format chrome -obs-window 64
//	dipbench -serve -nodes 3                  # sim-cluster: 3 replica engines behind a router
//	dipbench -serve -small -nodes 3 -router least-loaded -seed 7
//	dipbench -serve -small -nodes 3 -drain-tick 40   # drain the last node at tick 40
//	dipbench -serve -small -nodes 3 -node-chaos 0.02  # unscripted crash+recover chaos
//	dipbench -serve -small -nodes 3 -node-chaos 0.02 -detect-miss 4 -recover-ticks 30
//
// The serving-only flags (-small, -seed, -workload, -rate, -slo, -trace,
// -sched, -preempt, -arb, -fuse, -faults, -retry, -shed, -events,
// -events-format, -obs-window, -nodes, -router, -drain-tick, -node-chaos,
// -detect-miss, -recover-ticks) are rejected without -serve (or -exp serve
// / -exp chaos / -exp all), -small conflicts with an explicit -scale paper,
// and -slo/-rate are rejected where they would be ignored (trace files
// carry their own deadlines; only poisson has a rate) — all hard errors,
// not silent overrides. -nodes routes -serve to the cluster scenario
// (router × arbitration over N replica engines with drain and failover
// replays); -router and -drain-tick shape it, and -node-chaos adds a
// chaos replay per multi-node cell (seeded unscripted node crashes with
// timed restarts) run through the heartbeat failure detector, the zero-lag
// oracle, and with detection off — -detect-miss and -recover-ticks tune
// the detector threshold and outage length.
//
// Every run also emits a machine-readable BENCH_results.json (per
// experiment: wall time in ns and the headline row of each table) into -out
// when set, else the working directory; -json overrides the path and
// -json none disables it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/serving"
	"repro/internal/serving/obs"
)

// benchTable is the JSON record of one rendered table.
type benchTable struct {
	ID          string            `json:"id"`
	Rows        int               `json:"rows"`
	HeadlineRow map[string]string `json:"headline_row,omitempty"`
}

// benchResult is the JSON record of one experiment run.
type benchResult struct {
	ID     string       `json:"id"`
	NS     int64        `json:"ns"`
	Tables []benchTable `json:"tables"`
}

// benchReport is the BENCH_results.json document.
type benchReport struct {
	Scale   string        `json:"scale"`
	Procs   int           `json:"procs"`
	Results []benchResult `json:"results"`
}

// fail reports an error and returns the process exit code; callers return
// it up through run so deferred cleanup (CPU profile flushing) still fires.
func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "dipbench: "+format+"\n", args...)
	return 1
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp        = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		scale      = flag.String("scale", "paper", "paper | test")
		ckpt       = flag.String("ckpt", "", "checkpoint directory (shared with diptrain)")
		outDir     = flag.String("out", "", "write each experiment's tables to <out>/<id>.txt as well as stdout")
		csvOut     = flag.Bool("csv", false, "also write <out>/<id>-<table>.csv for plotting")
		verbose    = flag.Bool("v", true, "log lab progress to stderr")
		procs      = flag.Int("procs", 0, "worker-pool size (0 = GOMAXPROCS / $REPRO_PROCS; 1 = serial)")
		serve      = flag.Bool("serve", false, "run the multi-stream serving scenario (shorthand for -exp serve)")
		small      = flag.Bool("small", false, "with -serve: CI-sized smoke run (runs at -scale test, fewer sessions)")
		seed       = flag.Uint64("seed", 0, "with -serve: seed for the arrival trace and admission tiebreak RNG")
		workload   = flag.String("workload", "", "with -serve: restrict the grid to one workload (fixed|poisson|closed|trace)")
		rate       = flag.Float64("rate", 0, "with -serve: poisson arrival rate in requests/tick (0 = arrival ≈ service rate)")
		slo        = flag.Int("slo", 0, "with -serve: interactive-class SLO deadline in ticks (0 = scale default)")
		tracePath  = flag.String("trace", "", "with -serve -workload trace: trace file (JSON or CSV) to replay")
		sched      = flag.String("sched", "", "with -serve: restrict the grid to one scheduler (fcfs|prio|edf)")
		preempt    = flag.String("preempt", "", "with -serve: restrict the grid to one preemption policy (none|deadline|prio)")
		fuse       = flag.String("fuse", "", "with -serve: batched decode path (on|off|both; both runs each cell through both paths, checks the reports match bit for bit, and records both wall throughputs)")
		arb        = flag.String("arb", "", "with -serve: restrict the grid to one arbitration policy (exclusive|fair|greedy|shared)")
		faultRate  = flag.Float64("faults", 0, "with -serve or -exp chaos: seeded fault-injection rate in [0,1] (faults.Mix; 0 = off for -serve, the default sweep for chaos)")
		retry      = flag.Int("retry", 0, "with -serve or -exp chaos: retry budget in total attempts under fault injection (0 = engine default 3; 1 = no recovery)")
		shed       = flag.Int("shed", 0, "with -serve or -exp chaos: admission-control queue budget (0 = no shedding; positive also enables graceful degradation)")
		nodes      = flag.Int("nodes", 0, "with -serve: replica node count for the sim-cluster grid (setting it routes -serve to the cluster scenario; 0 = the single-engine serve grid)")
		router     = flag.String("router", "", "with -serve -nodes N: restrict the cluster grid to one session router (hash|least-loaded|slo)")
		drainTick  = flag.Int("drain-tick", 0, "with -serve -nodes N: tick at which the cluster drain scenario drains its last node (0 = one service time into the run)")
		nodeChaos  = flag.Float64("node-chaos", 0, "with -serve -nodes N: unscripted node-chaos crash rate per node per tick, in (0, 1] (adds a chaos replay per multi-node cell: heartbeat detector vs zero-lag oracle vs detection off)")
		detectMiss = flag.Int("detect-miss", 0, "with -serve -nodes N: consecutive heartbeat misses before the failure detector confirms a node down (0 = cluster default 4)")
		recoverT   = flag.Int("recover-ticks", 0, "with -serve -nodes N: ticks a chaos-crashed node stays down before restarting (0 = half a service time)")
		events     = flag.String("events", "", "with -serve or -exp chaos: enable event tracing and write one event log per grid cell to <PREFIX>-<cell>.<ext>")
		eventsFmt  = flag.String("events-format", "", "with -serve or -exp chaos: event-log format (jsonl|chrome; default jsonl; needs -events)")
		obsWindow  = flag.Int("obs-window", 0, "with -serve or -exp chaos: moving-window width in simulated ticks for windowed telemetry (0 = serving default; enables tracing)")
		jsonPath   = flag.String("json", "", "BENCH_results.json path ('' = <out>/BENCH_results.json or ./BENCH_results.json; 'none' disables)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return 0
	}
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *serve {
		if *exp != "" && *exp != "serve" {
			fmt.Fprintln(os.Stderr, "dipbench: -serve conflicts with -exp")
			return 2
		}
		*exp = "serve"
	}
	// -nodes N turns the serving run into the sim-cluster scenario: N
	// replica engines behind a session router instead of one engine.
	if set["nodes"] && *exp == "serve" {
		*exp = "cluster"
	}
	// The serving-only flags are hard errors outside the serving scenario —
	// silently ignoring them would let a typo'd invocation masquerade as a
	// reproducible run. -exp all includes the serve experiment, so the
	// shaping flags pass through; -small stays serve-only because it forces
	// the scale, which would rescale every other experiment too.
	servesToo := *exp == "serve" || *exp == "chaos" || *exp == "cluster" || *exp == "all"
	for _, f := range []string{"seed", "workload", "rate", "slo", "trace", "sched", "preempt", "arb", "fuse", "faults", "retry", "shed", "events", "events-format", "obs-window", "nodes", "router", "drain-tick", "node-chaos", "detect-miss", "recover-ticks"} {
		if set[f] && !servesToo {
			fmt.Fprintf(os.Stderr, "dipbench: -%s only applies to the serving scenarios; add -serve (or -exp serve / -exp chaos / -exp all)\n", f)
			return 2
		}
	}
	if *small && *exp != "serve" && *exp != "chaos" && *exp != "cluster" {
		fmt.Fprintln(os.Stderr, "dipbench: -small only applies to the serving scenarios; add -serve (or -exp serve / -exp chaos)")
		return 2
	}
	if *small {
		// -small runs at test scale; overriding an explicit -scale paper
		// silently would report miniature numbers as paper-scale ones.
		if set["scale"] && *scale != "test" {
			fmt.Fprintf(os.Stderr, "dipbench: -small runs at -scale test but -scale %s was requested; drop one of the two\n", *scale)
			return 2
		}
		*scale = "test"
	}
	if *fuse != "" && *fuse != "on" && *fuse != "off" && *fuse != "both" {
		fmt.Fprintf(os.Stderr, "dipbench: -fuse must be on, off, or both, got %q\n", *fuse)
		return 2
	}
	if *workload != "" {
		known := false
		for _, w := range serving.WorkloadNames() {
			known = known || w == *workload
		}
		if !known {
			fmt.Fprintf(os.Stderr, "dipbench: unknown workload %q (known: %v)\n", *workload, serving.WorkloadNames())
			return 2
		}
	}
	if *sched != "" {
		if _, err := serving.ParseScheduler(*sched); err != nil {
			fmt.Fprintf(os.Stderr, "dipbench: %v\n", err)
			return 2
		}
	}
	if *preempt != "" {
		if _, err := serving.ParsePreemptor(*preempt); err != nil {
			fmt.Fprintf(os.Stderr, "dipbench: %v\n", err)
			return 2
		}
	}
	if *arb != "" {
		if _, err := serving.ParseArbPolicy(*arb); err != nil {
			fmt.Fprintf(os.Stderr, "dipbench: %v\n", err)
			return 2
		}
	}
	if set["faults"] && (math.IsNaN(*faultRate) || *faultRate <= 0 || *faultRate > 1) {
		fmt.Fprintf(os.Stderr, "dipbench: -faults must be a rate in (0, 1], got %v\n", *faultRate)
		return 2
	}
	if set["retry"] && *retry <= 0 {
		fmt.Fprintf(os.Stderr, "dipbench: -retry must be a positive total attempt count (1 = no recovery), got %d\n", *retry)
		return 2
	}
	if set["shed"] && *shed <= 0 {
		fmt.Fprintf(os.Stderr, "dipbench: -shed must be a positive queue budget, got %d\n", *shed)
		return 2
	}
	if set["events"] && *events == "" {
		fmt.Fprintln(os.Stderr, "dipbench: -events needs a path prefix for the per-cell event logs")
		return 2
	}
	if *eventsFmt != "" {
		if _, err := obs.ParseFormat(*eventsFmt); err != nil {
			fmt.Fprintf(os.Stderr, "dipbench: %v\n", err)
			return 2
		}
		if *events == "" {
			fmt.Fprintln(os.Stderr, "dipbench: -events-format shapes the event-log files; add -events PREFIX")
			return 2
		}
	}
	if set["obs-window"] && *obsWindow <= 0 {
		fmt.Fprintf(os.Stderr, "dipbench: -obs-window must be a positive width in simulated ticks, got %d\n", *obsWindow)
		return 2
	}
	if *exp == "chaos" {
		// The chaos grid pins its workload (poisson) and scheduler (EDF) so
		// the recovery comparison is apples to apples; flags that would be
		// silently ignored are hard errors, as everywhere else.
		for _, f := range []string{"workload", "trace", "sched", "fuse", "nodes", "router", "drain-tick", "node-chaos", "detect-miss", "recover-ticks"} {
			if set[f] {
				fmt.Fprintf(os.Stderr, "dipbench: -%s does not apply to the chaos scenario (fixed poisson workload, EDF admission, single engine)\n", f)
				return 2
			}
		}
	}
	if set["nodes"] && *nodes <= 0 {
		fmt.Fprintf(os.Stderr, "dipbench: -nodes must be a positive replica count, got %d\n", *nodes)
		return 2
	}
	if *router != "" {
		if _, err := cluster.ParseRouter(*router); err != nil {
			fmt.Fprintf(os.Stderr, "dipbench: %v\n", err)
			return 2
		}
	}
	if set["drain-tick"] && *drainTick <= 0 {
		fmt.Fprintf(os.Stderr, "dipbench: -drain-tick must be a positive tick, got %d\n", *drainTick)
		return 2
	}
	if set["drain-tick"] && set["nodes"] && *nodes == 1 {
		fmt.Fprintln(os.Stderr, "dipbench: -drain-tick needs at least two nodes (a one-node cluster has nowhere to migrate the drained queue)")
		return 2
	}
	if set["node-chaos"] && (math.IsNaN(*nodeChaos) || *nodeChaos <= 0 || *nodeChaos > 1) {
		fmt.Fprintf(os.Stderr, "dipbench: -node-chaos must be a crash rate in (0, 1], got %v\n", *nodeChaos)
		return 2
	}
	if set["node-chaos"] && set["nodes"] && *nodes == 1 {
		fmt.Fprintln(os.Stderr, "dipbench: -node-chaos needs at least two nodes (a one-node cluster has nowhere to fail over)")
		return 2
	}
	if set["detect-miss"] && *detectMiss <= 0 {
		fmt.Fprintf(os.Stderr, "dipbench: -detect-miss must be a positive heartbeat-miss count, got %d\n", *detectMiss)
		return 2
	}
	if set["recover-ticks"] && *recoverT <= 0 {
		fmt.Fprintf(os.Stderr, "dipbench: -recover-ticks must be a positive outage length in ticks, got %d\n", *recoverT)
		return 2
	}
	if *exp == "cluster" {
		// The cluster grid pins its workload (poisson), scheduler (EDF), and
		// fault plan (the scripted node failure) the same way.
		for _, f := range []string{"workload", "trace", "sched", "preempt", "faults", "retry", "shed"} {
			if set[f] {
				fmt.Fprintf(os.Stderr, "dipbench: -%s does not apply to the cluster scenario (fixed poisson workload, EDF admission, scripted node failures)\n", f)
				return 2
			}
		}
	}
	if set["slo"] && *slo <= 0 {
		fmt.Fprintf(os.Stderr, "dipbench: -slo must be a positive deadline in ticks, got %d\n", *slo)
		return 2
	}
	if *tracePath != "" && *workload != "" && *workload != "trace" {
		fmt.Fprintf(os.Stderr, "dipbench: -trace conflicts with -workload %s; use -workload trace\n", *workload)
		return 2
	}
	if *tracePath != "" && *workload == "" {
		*workload = "trace"
	}
	if *workload == "trace" && *tracePath == "" {
		fmt.Fprintln(os.Stderr, "dipbench: -workload trace needs a trace file (-trace path.json|path.csv)")
		return 2
	}
	if set["rate"] && *rate <= 0 {
		fmt.Fprintf(os.Stderr, "dipbench: -rate must be a positive requests/tick, got %v\n", *rate)
		return 2
	}
	if set["rate"] && *workload != "" && *workload != "poisson" {
		fmt.Fprintf(os.Stderr, "dipbench: -rate only shapes the poisson workload, not %q\n", *workload)
		return 2
	}
	if set["slo"] && *workload == "trace" {
		fmt.Fprintln(os.Stderr, "dipbench: -slo does not apply to traces — deadlines come from the file's deadline_ticks column")
		return 2
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "dipbench: -exp required (try -list)")
		return 2
	}
	sc := model.ScalePaper
	if *scale == "test" {
		sc = model.ScaleTest
	} else if *scale != "paper" {
		fmt.Fprintf(os.Stderr, "dipbench: unknown scale %q\n", *scale)
		return 2
	}
	if *procs > 0 {
		parallel.SetProcs(*procs)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	lab := experiments.NewLab(sc)
	lab.CheckpointDir = *ckpt
	lab.ServeSeed = *seed
	lab.ServeSmoke = *small
	lab.ServeWorkload = *workload
	lab.ServeSched = *sched
	lab.ServePreempt = *preempt
	lab.ServeArb = *arb
	lab.ServeRate = *rate
	lab.ServeSLO = *slo
	lab.ServeTrace = *tracePath
	lab.ServeFuse = *fuse
	lab.ServeFaults = *faultRate
	lab.ServeRetry = *retry
	lab.ServeShed = *shed
	lab.ServeEvents = *events
	lab.ServeEventsFormat = *eventsFmt
	lab.ServeObsWindow = *obsWindow
	lab.ServeNodes = *nodes
	lab.ServeRouter = *router
	lab.ServeDrainTick = *drainTick
	lab.ServeNodeChaos = *nodeChaos
	lab.ServeDetectMiss = *detectMiss
	lab.ServeRecoverTicks = *recoverT
	if *verbose {
		lab.Log = os.Stderr
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	report := benchReport{Scale: *scale, Procs: parallel.Procs()}
	for _, id := range ids {
		start := time.Now() //lint:allow wallclock ns/op benchmark annotation; the tables themselves are tick-clocked
		tables, err := experiments.Run(lab, id)
		if err != nil {
			return fail("%s: %v", id, err)
		}
		elapsed := time.Since(start) //lint:allow wallclock ns/op benchmark annotation; the tables themselves are tick-clocked
		res := benchResult{ID: id, NS: elapsed.Nanoseconds()}
		var sink *os.File
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return fail("%v", err)
			}
			f, err := os.Create(filepath.Join(*outDir, id+".txt"))
			if err != nil {
				return fail("%v", err)
			}
			sink = f
		}
		for _, tab := range tables {
			tab.Render(os.Stdout)
			if sink != nil {
				tab.Render(sink)
			}
			if *csvOut && *outDir != "" {
				f, err := os.Create(filepath.Join(*outDir, tab.ID+".csv"))
				if err != nil {
					sink.Close()
					return fail("%v", err)
				}
				if err := tab.RenderCSV(f); err != nil {
					fmt.Fprintf(os.Stderr, "dipbench: %v\n", err)
				}
				f.Close()
			}
			bt := benchTable{ID: tab.ID, Rows: len(tab.Rows)}
			if len(tab.Rows) > 0 {
				last := tab.Rows[len(tab.Rows)-1]
				bt.HeadlineRow = make(map[string]string, len(tab.Columns))
				for ci, col := range tab.Columns {
					if ci < len(last) {
						bt.HeadlineRow[col] = last[ci]
					}
				}
			}
			res.Tables = append(res.Tables, bt)
		}
		if sink != nil {
			sink.Close()
		}
		report.Results = append(report.Results, res)
		fmt.Fprintf(os.Stderr, "dipbench: %s done in %v\n", id, elapsed.Round(time.Millisecond))
	}
	if err := writeReport(&report, *jsonPath, *outDir); err != nil {
		return fail("results json: %v", err)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fail("%v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fail("memprofile: %v", err)
		}
		f.Close()
	}
	return 0
}

// writeReport emits BENCH_results.json. An explicit -json path wins; with
// -out set the report lands beside the per-experiment files; otherwise it
// goes to the working directory.
func writeReport(report *benchReport, jsonPath, outDir string) error {
	if jsonPath == "none" {
		return nil
	}
	path := jsonPath
	if path == "" {
		path = "BENCH_results.json"
		if outDir != "" {
			path = filepath.Join(outDir, "BENCH_results.json")
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dipbench: wrote %s\n", path)
	return nil
}
