package main

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/lint"
	"repro/internal/serving"
	"repro/internal/serving/obs"
)

// srcPkg parses this package's source exactly once, through the shared
// lint loader — the same parse code path the repolint analyzers use, so
// the keep-in-sync checks and the static-analysis suite cannot drift onto
// different views of the tree.
var srcPkg = sync.OnceValues(func() (*lint.Package, error) { return lint.ParseDir(".") })

func sourcePkg(t *testing.T) *lint.Package {
	t.Helper()
	pkg, err := srcPkg()
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// declaredFlags returns every flag declaration's name → usage string.
func declaredFlags(t *testing.T) map[string]string {
	t.Helper()
	flags := lint.FlagDecls(sourcePkg(t))
	if len(flags) == 0 {
		t.Fatal("found no flag declarations in the package source")
	}
	return flags
}

// servingGuardList extracts the []string literal driving the serving-only
// flag guard (the one list that includes "seed").
func servingGuardList(t *testing.T) []string {
	t.Helper()
	for _, list := range lint.StringLists(sourcePkg(t)) {
		for _, s := range list {
			if s == "seed" {
				return list
			}
		}
	}
	t.Fatal("found no serving-only guard list (the []string containing \"seed\") in the package source")
	return nil
}

// Keep-in-sync check: every flag documented as serving-scoped ("with
// -serve" usage prefix) must be caught by the serving-only guard — a new
// serving flag that skips the guard would be silently ignored outside
// -serve, exactly the failure mode the guard exists to prevent — and the
// guard must not name flags that do not exist or are not serving-scoped.
// -small is the one sanctioned exception: it has its own dedicated check
// because it also forces the scale.
func TestServingFlagsAreGuarded(t *testing.T) {
	flags := declaredFlags(t)
	guard := servingGuardList(t)
	guarded := map[string]bool{"small": true}
	for _, f := range guard {
		if guarded[f] {
			t.Errorf("guard lists -%s twice", f)
		}
		guarded[f] = true
	}
	for name, usage := range flags {
		if strings.HasPrefix(usage, "with -serve") && !guarded[name] {
			t.Errorf("flag -%s is documented as serving-scoped but missing from the serving-only guard list", name)
		}
	}
	for _, f := range guard {
		usage, ok := flags[f]
		if !ok {
			t.Errorf("guard names -%s, which is not a declared flag", f)
			continue
		}
		if !strings.HasPrefix(usage, "with -serve") {
			t.Errorf("guarded flag -%s does not declare itself serving-scoped (usage %q)", f, usage)
		}
	}
}

// Keep-in-sync check: the name enumerations baked into flag usage strings
// must track the serving package's registries, so -list-style discovery in
// `dipbench -h` never drifts from what the parsers (and therefore
// NewEngine) accept.
func TestFlagUsageEnumerationsMatchServingRegistries(t *testing.T) {
	flags := declaredFlags(t)
	check := func(flagName string, names []string) {
		usage, ok := flags[flagName]
		if !ok {
			t.Fatalf("flag -%s not declared", flagName)
		}
		for _, n := range names {
			if !strings.Contains(usage, n) {
				t.Errorf("-%s usage %q omits registered name %q", flagName, usage, n)
			}
		}
	}
	check("workload", serving.WorkloadNames())
	var scheds, pres, arbs []string
	for _, s := range serving.Schedulers() {
		scheds = append(scheds, s.Name())
	}
	for _, p := range serving.Preemptors() {
		pres = append(pres, p.Name())
	}
	for _, a := range serving.Policies() {
		arbs = append(arbs, a.String())
	}
	check("sched", scheds)
	check("preempt", pres)
	check("arb", arbs)
	check("events-format", obs.FormatNames())
	check("router", cluster.RouterNames())
	// The robustness flags reach the chaos scenario too; their usage must
	// say so, since the guard error message points users at it.
	for _, f := range []string{"faults", "retry", "shed"} {
		if !strings.Contains(flags[f], "chaos") {
			t.Errorf("-%s usage %q does not mention the chaos scenario", f, flags[f])
		}
	}
}

// Keep-in-sync check: the cluster health-state names double as obs event
// details (-events logs carry them verbatim on the detector's suspect/
// confirm/rejoin events), so every health state must be a registered obs
// detail, and every detector mode the -node-chaos replay sweeps must
// validate.
func TestClusterHealthStatesAreRegisteredObsDetails(t *testing.T) {
	details := map[string]bool{}
	for _, d := range obs.DetailNames() {
		details[d] = true
	}
	for _, h := range cluster.HealthNames() {
		if !details[h] {
			t.Errorf("cluster health state %q is not a registered obs detail", h)
		}
	}
	for _, mode := range cluster.DetectModes() {
		if err := (cluster.Detect{Mode: mode}).Validate(); err != nil {
			t.Errorf("detector mode %q does not validate: %v", mode, err)
		}
	}
}
