// Package repro_test hosts the benchmark harness: one testing.B benchmark
// per table and figure of the paper. Each benchmark executes the full
// experiment driver (at miniature scale, so `go test -bench=.` completes on
// a laptop); `cmd/dipbench -exp <id>` runs the same drivers at paper scale.
// Reported metrics: ns/op is the wall time of regenerating the artifact,
// and custom metrics surface the headline quantity of each experiment.
package repro_test

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/hwsim"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/serving"
	"repro/internal/serving/faults"
	"repro/internal/serving/obs"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

var (
	benchLab  *experiments.Lab
	benchOnce sync.Once
)

func lab(b *testing.B) *experiments.Lab {
	b.Helper()
	benchOnce.Do(func() {
		benchLab = experiments.NewLab(model.ScaleTest)
		// Warm the two analogs most drivers touch (concurrently, across the
		// worker pool) so their training cost is excluded from
		// per-experiment timings.
		benchLab.Warm(model.Phi3MedSim, model.Mistral7BSim)
	})
	return benchLab
}

// runExperiment is the shared benchmark body.
func runExperiment(b *testing.B, id string) []*experiments.Table {
	l := lab(b)
	var tables []*experiments.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = experiments.Run(l, id)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	b.StopTimer()
	return tables
}

// metric extracts a float cell from the first row matching the filters.
func metric(tables []*experiments.Table, tableID string, match map[string]string, col string) (float64, bool) {
	for _, t := range tables {
		if t.ID != tableID {
			continue
		}
		colIdx := -1
		for i, c := range t.Columns {
			if c == col {
				colIdx = i
			}
		}
		if colIdx < 0 {
			return 0, false
		}
		for _, row := range t.Rows {
			ok := true
			for mc, mv := range match {
				mi := -1
				for i, c := range t.Columns {
					if c == mc {
						mi = i
					}
				}
				if mi < 0 || row[mi] != mv {
					ok = false
					break
				}
			}
			if ok {
				if v, err := strconv.ParseFloat(row[colIdx], 64); err == nil {
					return v, true
				}
				return 0, false
			}
		}
	}
	return 0, false
}

func report(b *testing.B, tables []*experiments.Table, tableID string, match map[string]string, col, unit string) {
	if v, ok := metric(tables, tableID, match, col); ok {
		b.ReportMetric(v, unit)
	}
}

// serveBenchModel is the bandwidth-bound miniature analog the serving
// benchmarks decode: two layers at dim 256 / dff 768, so each MLP matrix is
// ~768 KB — past the on-core caches, in the weight-streaming regime the
// paper's batching economics are about — while a session still decodes in
// milliseconds. Weights are random (throughput does not care) and built
// once, shared by both benchmark variants.
var (
	serveBenchM    *model.Model
	serveBenchOnce sync.Once
)

func serveBenchModel() *model.Model {
	serveBenchOnce.Do(func() {
		serveBenchM = model.New(model.Config{
			Name: "bench-bw-sim", Vocab: model.DefaultVocab, Dim: 256, Layers: 2,
			Heads: 4, KVHeads: 2, DFF: 768, MaxSeq: 64, Act: nn.ActSiLU,
		}, 5)
	})
	return serveBenchM
}

// serveBench runs one batch-8 DIP-CA serving engine to completion with the
// fused decode path on or off, reporting aggregate decoded tokens per wall
// second as a custom metric. Engines are single-shot, so each iteration
// builds a fresh one; construction cost (plan probe, admission) is shared
// by both variants and small next to the decode loop. With observed set,
// each engine gets a fresh event recorder — the tracing-on overhead the CI
// compares against the plain fused run.
func serveBench(b *testing.B, noFuse, observed bool) {
	m := serveBenchModel()
	const batch = 8
	const win = 32
	rng := tensor.NewRNG(9)
	toks := make([]int, 4096)
	for i := range toks {
		toks[i] = int(rng.Uint64() % uint64(m.Cfg.Vocab))
	}
	sys := eval.SystemConfig{Device: hwsim.A18Like(), Policy: cache.PolicyLFU, Win: win}
	scheme := sparsity.NewDIPCA(0.5, 0.2)
	makeReqs := func() []serving.Request {
		reqs := make([]serving.Request, batch)
		for i := range reqs {
			n := 2*win + (i%2)*win
			reqs[i] = serving.Request{
				ID:     fmt.Sprintf("s%d", i),
				Scheme: scheme,
				Tokens: toks[i*128 : i*128+n],
			}
		}
		return reqs
	}
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rec *obs.Recorder
		if observed {
			rec = obs.NewRecorder(obs.Config{})
		}
		e, err := serving.NewEngine(m, serving.Config{
			System: sys, Arb: serving.ArbShared, MaxActive: batch,
			Quantum: 8, Seed: 1, NoFuse: noFuse, Obs: rec,
		}, serving.FixedBatch(makeReqs()))
		if err != nil {
			b.Fatal(err)
		}
		rep, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		total += rep.TotalTokens
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "tok/s")
}

// BenchmarkServeBatched is the serving engine's fused multi-RHS decode path
// at batch 8: one batched step per token sub-quantum walks every weight
// matrix once for all eight sessions.
func BenchmarkServeBatched(b *testing.B) { serveBench(b, false, false) }

// BenchmarkServeUnbatched is the same workload through the per-session
// path (each session steps independently) — the PR 3 baseline the fused
// path is measured against.
func BenchmarkServeUnbatched(b *testing.B) { serveBench(b, true, false) }

// BenchmarkServeObserved is BenchmarkServeBatched with an event recorder
// attached: every scheduling decision is logged and the windowed telemetry
// trackers run. The CI asserts its tok/s stays within a bounded fraction of
// the plain fused run — observability must be cheap when on, free when off
// (the off path is pinned to zero allocations by the serving tests).
func BenchmarkServeObserved(b *testing.B) { serveBench(b, false, true) }

// BenchmarkClusterRouted decodes the BenchmarkServeBatched workload through
// the three-node sim-cluster instead of one engine: a skewed tenant mix
// (three of four sessions share a tenant) placed by the least-loaded
// router, node ticks fanned out over the worker pool. Reported tok/s is
// aggregate decoded tokens per wall second across all replicas — the
// cluster-path overhead (routing, per-node stepping, report rollup) is
// priced against the single-engine runs above.
func BenchmarkClusterRouted(b *testing.B) {
	m := serveBenchModel()
	const nodes = 3
	const perNode = 8
	const win = 32
	rng := tensor.NewRNG(9)
	toks := make([]int, 8192)
	for i := range toks {
		toks[i] = int(rng.Uint64() % uint64(m.Cfg.Vocab))
	}
	sys := eval.SystemConfig{Device: hwsim.A18Like(), Policy: cache.PolicyLFU, Win: win}
	scheme := sparsity.NewDIPCA(0.5, 0.2)
	makeReqs := func() []serving.Request {
		reqs := make([]serving.Request, nodes*perNode)
		for i := range reqs {
			n := 2*win + (i%2)*win
			tenant := fmt.Sprintf("t%d", i)
			if i%4 != 3 {
				tenant = "hot"
			}
			reqs[i] = serving.Request{
				ID:     fmt.Sprintf("%s/s%d", tenant, i),
				Scheme: scheme,
				Tokens: toks[i*128 : i*128+n],
			}
		}
		return reqs
	}
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodeCfgs := make([]serving.Config, nodes)
		for n := range nodeCfgs {
			nodeCfgs[n] = serving.Config{
				System: sys, Arb: serving.ArbShared, MaxActive: perNode,
				Quantum: 8, Seed: 1,
			}
		}
		c, err := cluster.New(m, cluster.Config{
			Nodes: nodeCfgs, Router: cluster.LeastLoaded(), Seed: 1,
		}, serving.FixedBatch(makeReqs()))
		if err != nil {
			b.Fatal(err)
		}
		rep, err := c.Run()
		if err != nil {
			b.Fatal(err)
		}
		total += rep.TotalTokens
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "tok/s")
}

// BenchmarkClusterChaos is BenchmarkClusterRouted under unscripted node
// chaos with the heartbeat failure detector on: seeded per-tick crash
// draws take nodes down mid-decode, the detector confirms them after its
// miss budget, live streams fail over to survivors, and crashed nodes
// restart through rejoin probation. Reported tok/s prices the whole
// detect/evacuate/re-prefill/rejoin machinery against the chaos-free
// routed run above. The draws are deterministic, so every iteration
// replays the identical crash schedule; the guard asserts the schedule
// actually exercises a crash and a rejoin.
func BenchmarkClusterChaos(b *testing.B) {
	m := serveBenchModel()
	const nodes = 3
	const perNode = 8
	const win = 32
	rng := tensor.NewRNG(9)
	toks := make([]int, 8192)
	for i := range toks {
		toks[i] = int(rng.Uint64() % uint64(m.Cfg.Vocab))
	}
	sys := eval.SystemConfig{Device: hwsim.A18Like(), Policy: cache.PolicyLFU, Win: win}
	scheme := sparsity.NewDIPCA(0.5, 0.2)
	makeReqs := func() []serving.Request {
		reqs := make([]serving.Request, nodes*perNode)
		for i := range reqs {
			n := 2*win + (i%2)*win
			tenant := fmt.Sprintf("t%d", i)
			if i%4 != 3 {
				tenant = "hot"
			}
			reqs[i] = serving.Request{
				ID:     fmt.Sprintf("%s/s%d", tenant, i),
				Scheme: scheme,
				Tokens: toks[i*128 : i*128+n],
			}
		}
		return reqs
	}
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodeCfgs := make([]serving.Config, nodes)
		for n := range nodeCfgs {
			nodeCfgs[n] = serving.Config{
				System: sys, Arb: serving.ArbShared, MaxActive: perNode,
				Quantum: 8, Seed: 1,
			}
		}
		c, err := cluster.New(m, cluster.Config{
			Nodes: nodeCfgs, Router: cluster.LeastLoaded(), Seed: 1,
			Chaos:  faults.NodeChaos{Seed: 13, CrashRate: 0.02, RecoverTicks: 12},
			Detect: cluster.Detect{Mode: "heartbeat"},
		}, serving.FixedBatch(makeReqs()))
		if err != nil {
			b.Fatal(err)
		}
		rep, err := c.Run()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failures == 0 || rep.Rejoins == 0 {
			b.Fatalf("chaos schedule did not exercise crash+rejoin (failures=%d rejoins=%d)",
				rep.Failures, rep.Rejoins)
		}
		total += rep.TotalTokens
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "tok/s")
}

// BenchmarkFig2Trends regenerates the Figure-2 trend fits.
func BenchmarkFig2Trends(b *testing.B) {
	tables := runExperiment(b, "fig2")
	report(b, tables, "fig2-fits", map[string]string{"series": "model_b_params"}, "annual_rate", "model-growth/yr")
}

// BenchmarkFig3ActivationHist regenerates the activation histograms.
func BenchmarkFig3ActivationHist(b *testing.B) {
	tables := runExperiment(b, "fig3")
	report(b, tables, "fig3-zeros", map[string]string{"model": model.ReluFiedSim}, "exact_zero_frac", "relu-zero-frac")
}

// BenchmarkFig4Thresholding regenerates the thresholding comparison.
func BenchmarkFig4Thresholding(b *testing.B) {
	tables := runExperiment(b, "fig4")
	report(b, tables, "fig4-ppl", map[string]string{"strategy": "global"}, "ppl", "global-ppl")
	report(b, tables, "fig4-ppl", map[string]string{"strategy": "per-token"}, "ppl", "per-token-ppl")
}

// BenchmarkFig6Predictability regenerates the predictor-gap figure.
func BenchmarkFig6Predictability(b *testing.B) {
	tables := runExperiment(b, "fig6")
	report(b, tables, "fig6", map[string]string{"model": model.ReluFiedSim, "strategy": "glu-predictive", "glu_density": "0.500"}, "pred_recall", "relu-recall")
}

// BenchmarkTable1Methods50 regenerates the 50%-density method grid.
func BenchmarkTable1Methods50(b *testing.B) {
	tables := runExperiment(b, "tab1")
	report(b, tables, "tab1", map[string]string{"model": model.Phi3MedSim, "method": "dip"}, "ppl", "dip-ppl")
}

// BenchmarkTable3Methods60 regenerates the 60%-density grid.
func BenchmarkTable3Methods60(b *testing.B) {
	tables := runExperiment(b, "tab3")
	report(b, tables, "tab3", map[string]string{"model": model.Phi3MedSim, "method": "dip"}, "ppl", "dip-ppl")
}

// BenchmarkTable4Methods40 regenerates the 40%-density grid.
func BenchmarkTable4Methods40(b *testing.B) {
	tables := runExperiment(b, "tab4")
	report(b, tables, "tab4", map[string]string{"model": model.Phi3MedSim, "method": "dip"}, "ppl", "dip-ppl")
}

// BenchmarkTable5Tasks regenerates the task battery.
func BenchmarkTable5Tasks(b *testing.B) {
	tables := runExperiment(b, "tab5")
	report(b, tables, "tab5", map[string]string{"model": model.Phi3MedSim, "method": "dip", "task": "spelling"}, "acc_%", "dip-spelling-acc%")
}

// BenchmarkFig8Pareto regenerates the density-sweep Pareto curves.
func BenchmarkFig8Pareto(b *testing.B) {
	tables := runExperiment(b, "fig8")
	report(b, tables, "fig8", map[string]string{"method": "dip", "density": "0.600"}, "ppl", "dip-ppl@0.6")
}

// BenchmarkFig14ParetoOthers regenerates the remaining analogs' sweeps.
func BenchmarkFig14ParetoOthers(b *testing.B) {
	runExperiment(b, "fig14")
}

// BenchmarkTable2Throughput regenerates the throughput table.
func BenchmarkTable2Throughput(b *testing.B) {
	tables := runExperiment(b, "tab2")
	report(b, tables, "tab2", map[string]string{"model": model.Phi3MedSim, "method": "dip-ca"}, "tok_s_@+0.5ppl", "dipca-tok/s")
	report(b, tables, "tab2", map[string]string{"model": model.Phi3MedSim, "method": "dense"}, "tok_s_@+0.5ppl", "dense-tok/s")
}

// BenchmarkFig9Quant regenerates the quantization comparison.
func BenchmarkFig9Quant(b *testing.B) {
	tables := runExperiment(b, "fig9")
	report(b, tables, "fig9", map[string]string{"config": "bq4"}, "ppl", "bq4-ppl")
}

// BenchmarkFig10Gamma regenerates the γ ablation.
func BenchmarkFig10Gamma(b *testing.B) {
	tables := runExperiment(b, "fig10")
	report(b, tables, "fig10", map[string]string{"gamma": "0.200"}, "tok_s", "tok/s@γ=0.2")
}

// BenchmarkFig11Policies regenerates the eviction-policy comparison.
func BenchmarkFig11Policies(b *testing.B) {
	tables := runExperiment(b, "fig11")
	report(b, tables, "fig11", map[string]string{"config": "dip-belady", "density": "0.600"}, "hit_rate", "belady-hit-rate")
	report(b, tables, "fig11", map[string]string{"config": "dip-ca-lfu", "density": "0.600"}, "hit_rate", "dipca-hit-rate")
}

// BenchmarkFig12Allocation regenerates the allocation calibration.
func BenchmarkFig12Allocation(b *testing.B) {
	runExperiment(b, "fig12")
}

// BenchmarkTable6DRAM regenerates the DRAM-size ablation.
func BenchmarkTable6DRAM(b *testing.B) {
	tables := runExperiment(b, "tab6")
	report(b, tables, "tab6", map[string]string{"device": "dram-6gb", "method": "dip-ca"}, "tok_s_@+0.5ppl", "dipca-6gb-tok/s")
}

// BenchmarkAblAllocation regenerates the uniform-vs-weighted cache
// allocation ablation (paper Appendix A's negative finding).
func BenchmarkAblAllocation(b *testing.B) {
	tables := runExperiment(b, "abl-alloc")
	report(b, tables, "abl-alloc", map[string]string{"allocation": "uniform", "density": "0.500"}, "hit_rate", "uniform-hit-rate")
	report(b, tables, "abl-alloc", map[string]string{"allocation": "trace-weighted", "density": "0.500"}, "hit_rate", "weighted-hit-rate")
}

// BenchmarkTable7Flash regenerates the Flash-speed ablation.
func BenchmarkTable7Flash(b *testing.B) {
	tables := runExperiment(b, "tab7")
	report(b, tables, "tab7", map[string]string{"device": "flash-2GBs", "method": "dip-ca"}, "tok_s_@+0.5ppl", "dipca-2GBs-tok/s")
}
