// Quickstart: train a small SwiGLU language model on the synthetic corpus,
// apply Dynamic Input Pruning at 50% MLP density, and compare perplexity
// and effective weight traffic against the dense model — the minimal
// end-to-end tour of the library.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
)

func main() {
	// 1. Data: a deterministic synthetic corpus with train/test splits.
	tok := data.NewTokenizer()
	splits := data.NewSplits(42, 60000, 10000)
	trainToks := tok.Encode(splits.Train)
	testToks := tok.Encode(splits.Test)[:4000]

	// 2. Model: a small SwiGLU transformer trained from scratch (~20 s).
	cfg := model.Config{
		Name: model.Mistral7BSim, Vocab: tok.VocabSize(),
		Dim: 48, Layers: 3, Heads: 4, KVHeads: 2, DFF: 144,
		MaxSeq: 96, Act: nn.ActSiLU,
	}
	m := model.New(cfg, 7)
	opts := model.DefaultTrainOpts()
	opts.Steps = 200
	opts.Log = os.Stderr
	fmt.Println("training the base model...")
	if _, err := model.Train(m, trainToks, opts); err != nil {
		log.Fatal(err)
	}

	// 3. Quality: dense vs DIP at 50% MLP density.
	win := 64
	densePPL, _ := core.Quality(m, core.Dense(), testToks, win)
	dipPPL, density := core.Quality(m, core.NewDIP(0.5), testToks, win)
	fmt.Printf("\ndense ppl     : %6.3f (density 1.00)\n", densePPL)
	fmt.Printf("DIP   ppl     : %6.3f (density %.2f)\n", dipPPL, density)

	// 4. System: coupled cache + transfer simulation on an A18-class
	//    device with DRAM fitting half the 4-bit model.
	sys := core.DefaultSystem()
	sys.MaxTokens = 2000
	densePt, err := core.Evaluate(m, core.Dense(), testToks, sys)
	if err != nil {
		log.Fatal(err)
	}
	dipPt, err := core.Evaluate(m, core.NewDIP(0.5), testToks, sys)
	if err != nil {
		log.Fatal(err)
	}
	caPt, err := core.Evaluate(m, core.NewDIPCA(0.5, 0.2), testToks, sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-8s %8s %10s %10s\n", "scheme", "ppl", "tok/s", "hit rate")
	for _, pt := range []core.Point{densePt, dipPt, caPt} {
		fmt.Printf("%-8s %8.3f %10.3f %9.1f%%\n", pt.Scheme, pt.PPL, pt.Throughput, 100*pt.HitRate)
	}
	fmt.Println("\nDIP-CA trades a small perplexity increase for cache hits and throughput.")
}
