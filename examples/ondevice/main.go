// Ondevice simulates the paper's motivating scenario: an assistant
// generating text on a DRAM-constrained phone. It decodes token-by-token
// with the KV cache, while DIP-CA masks each MLP against the live DRAM
// weight-cache state and the transfer meter prices every token — printing
// the generated text alongside the simulated tokens/second as the cache
// warms up.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cache"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/hwsim"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/sparsity"
)

func main() {
	tok := data.NewTokenizer()
	splits := data.NewSplits(1234, 60000, 4000)

	cfg := model.Config{
		Name: model.Phi3MiniSim, Vocab: tok.VocabSize(),
		Dim: 32, Layers: 3, Heads: 4, KVHeads: 2, DFF: 96,
		MaxSeq: 96, Act: nn.ActSiLU,
	}
	m := model.New(cfg, 99)
	opts := model.DefaultTrainOpts()
	opts.Steps = 200
	opts.Log = os.Stderr
	fmt.Println("training the assistant model...")
	if _, err := model.Train(m, tok.Encode(splits.Train), opts); err != nil {
		log.Fatal(err)
	}

	// Plan DRAM for a budget phone: only 40% of the model fits.
	dev := hwsim.A18Like()
	dev.DRAMFraction = 0.4
	scheme := sparsity.NewDIPCA(0.6, 0.2)
	plan, err := hwsim.NewPlan(m, dev, hwsim.PlanOpts{Groups: hwsim.ProbeGroups(scheme, m)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: DRAM %.0f%% of model (%.2f GB of %.2f GB), flash %.1f GB/s\n",
		100*dev.DRAMFraction, dev.DRAMFraction*plan.ModelBytes/1e9, plan.ModelBytes/1e9, dev.FlashBandwidth/1e9)

	mc := plan.NewCache(cache.PolicyLFU)
	meter := plan.NewMeter()
	hook := eval.Hook(m, scheme, eval.HookOpts{Cache: mc, Meter: meter})

	prompt := "the fox "
	fmt.Printf("\nprompt: %q\n", prompt)
	dec := m.NewDecoder(hook)
	var logits []float32
	for _, id := range tok.Encode(prompt) {
		logits = dec.Step(id)
	}
	fmt.Println("generation (tok/s is the simulated device rate):")
	out := make([]int, 0, 64)
	prevTokens := meter.Tokens()
	_ = prevTokens
	for i := 0; i < 64 && dec.Pos() < cfg.MaxSeq-1; i++ {
		next := argmax(logits)
		out = append(out, next)
		logits = dec.Step(next)
		if (i+1)%16 == 0 {
			stats := mc.TotalStats()
			fmt.Printf("  after %2d tokens: %6.2f tok/s, hit rate %4.1f%%\n",
				i+1, meter.Throughput(), 100*stats.HitRate())
		}
	}
	fmt.Printf("\noutput: %q\n", prompt+tok.Decode(out))
	fmt.Printf("final: %.2f tok/s at %.1f%% cache hit rate over %d decoded tokens\n",
		meter.Throughput(), 100*mc.TotalStats().HitRate(), meter.Tokens())
}

func argmax(v []float32) int {
	best, bestV := 0, v[0]
	for i, x := range v {
		if x > bestV {
			best, bestV = i, x
		}
	}
	return best
}
