// Hwsweep explores deployment what-ifs in the style of the paper's Tables
// 6–7: for a trained model and a grid of DRAM sizes and Flash speeds, it
// compares the dense baseline, plain DIP, and DIP-CA and prints the
// throughput landscape — showing where caching saturates (big DRAM) and
// where Flash bandwidth is the binding constraint (small DRAM).
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cache"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/hwsim"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/sparsity"
)

func main() {
	tok := data.NewTokenizer()
	splits := data.NewSplits(77, 60000, 8000)
	cfg := model.Config{
		Name: model.Mistral7BSim, Vocab: tok.VocabSize(),
		Dim: 48, Layers: 3, Heads: 4, KVHeads: 2, DFF: 144,
		MaxSeq: 96, Act: nn.ActSiLU,
	}
	m := model.New(cfg, 5)
	opts := model.DefaultTrainOpts()
	opts.Steps = 200
	opts.Log = os.Stderr
	fmt.Println("training...")
	if _, err := model.Train(m, tok.Encode(splits.Train), opts); err != nil {
		log.Fatal(err)
	}
	test := tok.Encode(splits.Test)[:2500]

	schemes := []sparsity.Scheme{
		sparsity.Dense{},
		sparsity.NewDIP(0.5),
		sparsity.NewDIPCA(0.5, 0.2),
	}
	fmt.Printf("\n%-10s %-10s | %-22s %-22s %-22s\n", "dram_frac", "flash_gbs",
		"dense tok/s (ppl)", "dip tok/s (ppl)", "dip-ca tok/s (ppl)")
	for _, df := range []float64{0.3, 0.5, 0.8} {
		for _, fgbs := range []float64{0.5, 1, 2} {
			dev := hwsim.A18Like()
			dev.DRAMFraction = df
			dev.FlashBandwidth = fgbs * 1e9
			fmt.Printf("%-10.2f %-10.1f |", df, fgbs)
			for _, s := range schemes {
				pt, err := eval.SystemEvaluate(m, s, test, eval.SystemConfig{
					Device: dev, Policy: cache.PolicyLFU, MaxTokens: 1200,
				})
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf(" %8.3f (%6.3f)     ", pt.Throughput, pt.PPL)
			}
			fmt.Println()
		}
	}
	fmt.Println("\ntakeaway: sparsity buys the most where DRAM is scarce and flash is slow;")
	fmt.Println("with ample DRAM the dense model catches up because everything is cached.")
}
